(** Intermediate representation of entangled queries (Appendix A):
    a query is [{C} H <- B] where [H] (head) is the query's own
    contribution to the answer relations, [C] (postcondition) is what it
    requires other queries to contribute, and [B] (body) is a condition
    over database relations that binds the variables. *)

open Ent_storage

type term =
  | Const of Value.t
  | Var of string

(** An atom over an ANSWER relation, e.g. [R('Mickey', x, y)]. *)
type atom = {
  rel : string;
  args : term list;
}

(** A ground atom: relation name plus constant tuple. *)
type ground_atom = string * Value.t list

type t = {
  head : atom list;  (** usually a single atom; the IR permits several *)
  post : atom list;
  body : Ent_sql.Ast.cond;  (** no [In_answer] inside *)
  binds : (string * int) list;
      (** host-variable bindings [(var, i)]: after answering, position
          [i] of the first head atom's tuple is stored into [@var] *)
  choose : int;
}

val atom_vars : atom -> string list

(** All variables of the head and postcondition. *)
val answer_vars : t -> string list

(** Variables bound by the body: variables appearing in the binding
    positions of [IN (SELECT ...)] conjuncts or equated to a constant
    or host variable at the top level. *)
val body_bound_vars : t -> string list

exception Unsafe of string

(** Range-restriction check: every answer variable must be bound by the
    body. @raise Unsafe otherwise. *)
val validate : t -> unit

(** [unifiable a b] — can patterns [a] and [b] denote the same ground
    atom for some assignment of their (disjoint) variables? Used for
    the database-independent partner check of Appendix B. *)
val unifiable : atom -> atom -> bool

(** Substitute a valuation into an atom.
    @raise Not_found if a variable is unassigned. *)
val substitute : (string -> Value.t) -> atom -> ground_atom

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
