open Ent_storage

type term =
  | Const of Value.t
  | Var of string

type atom = {
  rel : string;
  args : term list;
}

type ground_atom = string * Value.t list

type t = {
  head : atom list;
  post : atom list;
  body : Ent_sql.Ast.cond;
  binds : (string * int) list;
  choose : int;
}

let atom_vars atom =
  List.filter_map
    (function
      | Var v -> Some v
      | Const _ -> None)
    atom.args

let answer_vars t =
  List.concat_map atom_vars (t.head @ t.post) |> List.sort_uniq String.compare

(* Variables of an expression that are free at the top level of an
   entangled query (i.e. plain identifiers — there is no FROM scope). *)
let rec expr_vars (e : Ent_sql.Ast.expr) =
  match e with
  | Lit _ | Host _ -> []
  | Col (_, name) -> [ name ]
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Agg (_, _) -> []

let rec cond_bound_vars (c : Ent_sql.Ast.cond) =
  match c with
  | And (a, b) -> cond_bound_vars a @ cond_bound_vars b
  | In_select (exprs, _) -> List.concat_map expr_vars exprs
  | Cmp (Eq, Col (None, v), (Lit _ | Host _)) -> [ v ]
  | Cmp (Eq, (Lit _ | Host _), Col (None, v)) -> [ v ]
  | True | Cmp _ | Or _ | Not _ | In_list _ | Between _ | In_answer _ -> []

let body_bound_vars t = List.sort_uniq String.compare (cond_bound_vars t.body)

exception Unsafe of string

let validate t =
  if t.choose <> 1 then
    raise (Unsafe (Printf.sprintf "CHOOSE %d is not supported (only CHOOSE 1)" t.choose));
  if t.head = [] then raise (Unsafe "entangled query with empty head");
  let bound = body_bound_vars t in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        raise
          (Unsafe
             (Printf.sprintf
                "variable %s appears in the head or postcondition but is not \
                 bound by the body (range restriction)"
                v)))
    (answer_vars t)

let unifiable a b =
  a.rel = b.rel
  && List.length a.args = List.length b.args
  && List.for_all2
       (fun ta tb ->
         match ta, tb with
         | Const va, Const vb -> Value.equal va vb
         | Var _, _ | _, Var _ -> true)
       a.args b.args

let substitute valuation atom =
  ( atom.rel,
    List.map
      (function
        | Const v -> v
        | Var x -> valuation x)
      atom.args )

let pp_term ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x

let pp_atom ppf atom =
  Format.fprintf ppf "%s(%a)" atom.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_term)
    atom.args

let pp ppf t =
  let pp_atoms = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp_atom in
  Format.fprintf ppf "{%a} %a <- %a" pp_atoms t.post pp_atoms t.head
    Ent_sql.Pretty.pp_cond t.body
