(** Combined-query evaluation — the strategy of the companion paper [6]
    ("Entangled queries: enabling declarative data-driven
    coordination", SIGMOD 2011), which this paper's prototype uses
    (§5.1: "entangled queries are evaluated using the algorithm
    described in [6]").

    Instead of searching over groundings ({!Coordinate}), the query set
    is compiled: postcondition atom *patterns* are matched against head
    atom *patterns* (unification); a complete matching for a connected
    component induces one *combined query* — conceptually the
    conjunction of the member bodies plus the equality constraints of
    the matching — which is then evaluated as an ordinary join over the
    members' groundings. Any result of the combined query is a
    coordinated answer for every member at once.

    The two strategies implement the same declarative semantics
    (Appendix A); a QCheck property in the test suite checks that they
    answer the same queries on random workloads. *)

type outcome = Coordinate.outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

(** One combined query: a connected component of the pattern-match
    graph together with a chosen complete matching. *)
type combined = {
  member_ids : int list;
  constraints : ((int * int) * (int * int)) list;
      (** [((qi, post index in qi), (qj, head index in qj))]: the chosen
          provider for each postcondition *)
}

(** Enumerate combined queries: decompose the query set into connected
    components of the pattern-match graph and enumerate complete
    matchings per component, up to [max_matchings] (default 64) each.
    Queries that appear in no combined query are the [No_partner] ones
    (the Appendix B failure criterion — this is where the
    database-independence of the criterion is manifest: matchings are
    computed on patterns, never on data). *)
val compile : ?max_matchings:int -> (int * Ir.t) list -> combined list

(** [evaluate queries] — same interface and outcome classification as
    {!Coordinate.evaluate}, implemented by compiling combined queries
    and joining member groundings. Deterministic. *)
val evaluate :
  ?max_matchings:int ->
  (int * Ir.t * Ground.grounding list) list ->
  (int * outcome) list
