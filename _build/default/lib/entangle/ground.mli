(** Grounding of entangled queries (Appendix A).

    A grounding is the query with its variables replaced by constants
    following a valuation — an assignment of database values to
    variables that satisfies the body. Groundings identify the set of
    acceptable answers for one query in isolation; coordination then
    chooses among them.

    The body is evaluated through the caller's {!Ent_sql.Eval.access},
    so when the access comes from [Engine.access ~grounding:true] the
    reads are automatically table-S-locked and recorded as grounding
    reads. *)


type grounding = {
  g_head : Ir.ground_atom list;  (** the query's own answer tuples *)
  g_post : Ir.ground_atom list;  (** ground postconditions to be met by partners *)
}

exception Ground_error of string

(** [compute ~access ~env query] enumerates all groundings of [query]
    on the current database, in deterministic order, de-duplicated.
    [limit] caps the number of valuations explored (default 10_000).
    @raise Ground_error when the body is not evaluable left-to-right
    (a filter mentions a variable no binder binds). *)
val compute :
  ?limit:int ->
  access:Ent_sql.Eval.access ->
  env:Ent_sql.Eval.env ->
  Ir.t ->
  grounding list

val pp_grounding : Format.formatter -> grounding -> unit
