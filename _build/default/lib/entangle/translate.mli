(** Translation of extended-SQL entangled SELECTs into the IR.

    Host variables ([@var]) are resolved against the transaction's
    environment at translation time, because an entangled query is
    translated at the moment the executing transaction reaches it —
    e.g. in Figure 2 the hotel query mentions [@ArrivalDay], whose
    value is known only after the flight query has been answered. *)

exception Translate_error of string

(** @raise Translate_error on unresolvable host variables or
    projection expressions that mix variables with arithmetic.
    @raise Ir.Unsafe when the result fails validation. *)
val of_ast : env:Ent_sql.Eval.env -> Ent_sql.Ast.entangled_select -> Ir.t
