open Ent_storage

exception Translate_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Translate_error s)) fmt

(* An expression in head/postcondition position becomes a term:
   literals and (resolved) host variables become constants; a bare
   identifier is a variable; constant arithmetic is folded. *)
let rec term_of_expr env (e : Ent_sql.Ast.expr) =
  match e with
  | Lit v -> Ir.Const v
  | Host name -> (
    match Hashtbl.find_opt env name with
    | Some v -> Ir.Const v
    | None -> fail "unbound host variable @%s in entangled query" name)
  | Col (None, name) -> Ir.Var name
  | Col (Some q, name) ->
    fail "qualified column %s.%s cannot appear in an answer tuple" q name
  | Agg _ -> fail "aggregates cannot appear in an answer tuple"
  | Binop (op, a, b) -> (
    match term_of_expr env a, term_of_expr env b with
    | Const va, Const vb ->
      Ir.Const
        (match op with
        | Add -> Value.add va vb
        | Sub -> Value.sub va vb
        | Mul -> Value.mul va vb
        | Div -> Value.div va vb)
    | _ -> fail "arithmetic over variables in an answer tuple is not supported")

(* Split the WHERE clause into postconditions (IN ANSWER atoms) and the
   grounding body. IN ANSWER under OR/NOT has no coordination
   semantics, so it is rejected. *)
let rec split_where env (c : Ent_sql.Ast.cond) =
  match c with
  | And (a, b) ->
    let posts_a, body_a = split_where env a in
    let posts_b, body_b = split_where env b in
    let body =
      match body_a, body_b with
      | Ent_sql.Ast.True, b -> b
      | a, Ent_sql.Ast.True -> a
      | a, b -> Ent_sql.Ast.And (a, b)
    in
    (posts_a @ posts_b, body)
  | In_answer (exprs, rel) ->
    ([ { Ir.rel; args = List.map (term_of_expr env) exprs } ], Ent_sql.Ast.True)
  | Or _ | Not _ ->
    if contains_in_answer c then
      fail "IN ANSWER may not appear under OR or NOT"
    else ([], c)
  | True | Cmp _ | In_select _ | In_list _ | Between _ -> ([], c)

and contains_in_answer (c : Ent_sql.Ast.cond) =
  match c with
  | In_answer _ -> true
  | And (a, b) | Or (a, b) -> contains_in_answer a || contains_in_answer b
  | Not a -> contains_in_answer a
  | True | Cmp _ | In_select _ | In_list _ | Between _ -> false

let of_ast ~env (e : Ent_sql.Ast.entangled_select) =
  let head_args =
    List.map (fun (p : Ent_sql.Ast.proj) -> term_of_expr env p.pexpr) e.eprojs
  in
  let binds =
    List.concat
      (List.mapi
         (fun i (p : Ent_sql.Ast.proj) ->
           match p.pbind with
           | Some v -> [ (v, i) ]
           | None -> [])
         e.eprojs)
  in
  let post, body = split_where env e.ewhere in
  let query =
    {
      Ir.head = [ { Ir.rel = e.into; args = head_args } ];
      post;
      body;
      binds;
      choose = e.choose;
    }
  in
  Ir.validate query;
  query
