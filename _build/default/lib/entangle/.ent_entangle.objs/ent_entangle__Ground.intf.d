lib/entangle/ground.mli: Ent_sql Format Ir
