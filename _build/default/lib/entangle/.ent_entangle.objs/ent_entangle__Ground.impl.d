lib/entangle/ground.ml: Array Ent_sql Ent_storage Format Hashtbl Ir List Map String Value
