lib/entangle/combined.ml: Coordinate Ground Hashtbl Int Ir List Option
