lib/entangle/combined.mli: Coordinate Ground Ir
