lib/entangle/coordinate.mli: Ground Ir
