lib/entangle/coordinate.ml: Ground Hashtbl Ir List Option
