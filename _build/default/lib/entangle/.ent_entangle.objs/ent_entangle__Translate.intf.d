lib/entangle/translate.mli: Ent_sql Ir
