lib/entangle/translate.ml: Ent_sql Ent_storage Format Hashtbl Ir List Value
