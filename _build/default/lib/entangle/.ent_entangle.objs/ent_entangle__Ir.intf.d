lib/entangle/ir.mli: Ent_sql Ent_storage Format Value
