lib/entangle/ir.ml: Ent_sql Ent_storage Format List Printf String Value
