(** Isolation levels for entangled transactions (§3.3).

    Full entangled isolation needs all three mechanisms:
    - classical Strict 2PL read/write locking (classical anomalies),
    - table-level shared locks held by grounding reads until commit
      (unrepeatable quasi-reads, Figure 3b),
    - group commit over entanglement groups (widowed transactions,
      Figure 3a).

    Relaxing a flag re-admits exactly the corresponding anomaly class,
    which is how the ablation experiments expose each anomaly. *)

type t = {
  lock_classical_reads : bool;
  lock_grounding_reads : bool;
  group_commit : bool;
}

(** Everything on: entangled-isolated executions (Definition C.5). *)
val full : t

(** No group commit: widowed transactions become possible. *)
val no_group_commit : t

(** No grounding-read table locks: unrepeatable quasi-reads possible. *)
val no_grounding_locks : t

(** Write locks only (reads unlocked): classical read anomalies too. *)
val read_uncommitted : t

val pp : Format.formatter -> t -> unit
