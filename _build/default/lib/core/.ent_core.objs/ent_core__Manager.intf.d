lib/core/manager.mli: Catalog Ent_entangle Ent_storage Ent_txn Program Scheduler Schema Value
