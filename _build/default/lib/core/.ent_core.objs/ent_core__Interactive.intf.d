lib/core/interactive.mli: Ent_entangle Ent_sql Ent_storage Ent_txn Ir Isolation
