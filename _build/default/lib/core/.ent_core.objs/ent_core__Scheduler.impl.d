lib/core/scheduler.ml: Combined Coordinate Ent_entangle Ent_sim Ent_txn Executor Ground Group Hashtbl Ir Isolation List Option Program
