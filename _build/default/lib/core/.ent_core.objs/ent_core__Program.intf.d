lib/core/program.mli: Ent_sql
