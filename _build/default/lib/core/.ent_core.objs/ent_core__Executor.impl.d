lib/core/executor.ml: Coordinate Ent_entangle Ent_sim Ent_sql Ent_storage Ent_txn Format Hashtbl Ir Isolation List Option Program Translate Value
