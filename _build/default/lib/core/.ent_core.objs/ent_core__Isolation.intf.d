lib/core/isolation.mli: Format
