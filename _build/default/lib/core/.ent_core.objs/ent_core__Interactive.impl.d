lib/core/interactive.ml: Coordinate Ent_entangle Ent_sql Ent_storage Ent_txn Ground Group Hashtbl Ir Isolation List Translate
