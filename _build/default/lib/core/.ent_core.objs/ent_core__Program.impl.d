lib/core/program.ml: Ent_sql Format List Option String
