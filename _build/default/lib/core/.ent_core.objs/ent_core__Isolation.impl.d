lib/core/isolation.ml: Format
