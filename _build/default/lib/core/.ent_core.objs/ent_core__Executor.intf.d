lib/core/executor.mli: Coordinate Ent_entangle Ent_sim Ent_sql Ent_txn Format Ir Isolation Program
