lib/core/scheduler.mli: Ent_entangle Ent_sim Ent_txn Isolation Program
