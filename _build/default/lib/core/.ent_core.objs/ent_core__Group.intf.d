lib/core/group.mli:
