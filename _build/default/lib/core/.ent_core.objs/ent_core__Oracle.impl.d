lib/core/oracle.ml: Coordinate Ent_entangle Ent_sim Ent_txn Executor Ground Ir Isolation List Program
