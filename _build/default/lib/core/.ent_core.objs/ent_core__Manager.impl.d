lib/core/manager.ml: Array Catalog Ent_sql Ent_storage Ent_txn List Program Scheduler Schema Table
