lib/core/oracle.mli: Ent_entangle Ent_txn Ir Program
