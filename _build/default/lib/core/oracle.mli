(** Entangled query oracles (Definitions 3.2–3.4).

    An oracle is a process that runs alongside a single entangled
    transaction and answers its entangled queries without touching the
    database. Oracles make an entangled transaction executable *by
    itself*, which is what the consistency assumption (3.5) and
    oracle-serializability (§C.3) are defined against. *)

open Ent_entangle

type t

(** An oracle answering queries from a fixed script, in order. Each
    entry is the set of answer tuples to return ([None] = empty
    answer). Running out of script raises [Failure]. *)
val scripted : Ir.ground_atom list option list -> t

(** An oracle computed from a callback. *)
val of_fn : (Ir.t -> Ir.ground_atom list option) -> t

type solo_outcome =
  | Solo_committed
  | Solo_rolled_back
  | Solo_error of string

type solo_result = {
  outcome : solo_outcome;
  valid : bool;
      (** true when every oracle answer was valid (Definition 3.3):
          it corresponded to a grounding of the query on the database
          state at the time it was posed *)
  answers_given : Ir.ground_atom list list;  (** in query order *)
}

(** [run_solo engine program oracle] executes the program to completion
    as the only transaction in the system, taking entangled query
    answers from the oracle, and commits. This is the "valid oracle
    execution" machinery used to test Assumption 3.5 and to replay
    oracle-serializations. *)
val run_solo : Ent_txn.Engine.t -> Program.t -> t -> solo_result
