(** Entanglement groups: a union-find over task ids, built up as
    entanglement operations happen during a run. The group of a task is
    the set of tasks it has entangled with, directly or transitively —
    the unit of group commit and group abort (§3.3.3).

    Groups never outlive a run: answers only happen inside a run, and
    at run end every group either commits or aborts entirely, so the
    scheduler resets the structure between runs. *)

type t

val create : unit -> t

(** [join t ids] merges all listed tasks into one group. *)
val join : t -> int list -> unit

(** All known members of [id]'s group, including [id] itself (a task
    that never entangled is its own singleton group). *)
val members : t -> int -> int list

val same_group : t -> int -> int -> bool

(** True when the task has entangled with at least one other task. *)
val entangled : t -> int -> bool

(** Drop all groups (between runs). *)
val reset : t -> unit
