(** Entangled transaction programs: a labelled {!Ent_sql.Ast.program}
    that can be serialized (for dormant-pool persistence) and parsed
    back. *)

type t = {
  label : string;
  ast : Ent_sql.Ast.program;
  transactional : bool;
      (** [false] models the paper's -Q workloads: the same code
          without a transaction block, i.e. every statement commits by
          itself (MySQL autocommit). Entangled queries still
          coordinate, but atomicity, group commit and held locks only
          span one statement. *)
}

val make : ?label:string -> ?transactional:bool -> Ent_sql.Ast.program -> t

(** Parse a [BEGIN TRANSACTION ... COMMIT] block. *)
val of_string : ?label:string -> ?transactional:bool -> string -> t

(** Serialize to re-parseable SQL. The label is carried in a leading
    comment. *)
val to_string : t -> string

(** Inverse of {!to_string} (label recovered from the comment). *)
val of_serialized : string -> t

(** Number of entangled queries in the program. *)
val entangled_count : t -> int
