type t = { parent : (int, int) Hashtbl.t }

let create () = { parent = Hashtbl.create 32 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None ->
    Hashtbl.replace t.parent x x;
    x
  | Some p when p = x -> x
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root

let join t ids =
  match ids with
  | [] -> ()
  | first :: rest ->
    let root = find t first in
    List.iter (fun id -> Hashtbl.replace t.parent (find t id) root) rest

let members t id =
  let root = find t id in
  let out =
    Hashtbl.fold
      (fun x _ acc -> if find t x = root then x :: acc else acc)
      t.parent []
  in
  let out = if List.mem id out then out else id :: out in
  List.sort_uniq Int.compare out

let same_group t a b = find t a = find t b
let entangled t id = List.length (members t id) > 1
let reset t = Hashtbl.reset t.parent
