type t = {
  lock_classical_reads : bool;
  lock_grounding_reads : bool;
  group_commit : bool;
}

let full =
  { lock_classical_reads = true; lock_grounding_reads = true; group_commit = true }

let no_group_commit = { full with group_commit = false }
let no_grounding_locks = { full with lock_grounding_reads = false }

let read_uncommitted =
  { lock_classical_reads = false; lock_grounding_reads = false; group_commit = false }

let pp ppf t =
  Format.fprintf ppf "{classical-read-locks=%b; grounding-locks=%b; group-commit=%b}"
    t.lock_classical_reads t.lock_grounding_reads t.group_commit
