(** Interactive entangled transactions (§4, "Interactivity" — future
    work in the paper, implemented here as an extension).

    Interactive transactions are created by users online, statement by
    statement; subsequent statements are constructed dynamically from
    earlier results. An interactive user is willing to wait a while at
    an entangled query: the query parks at the hub and is re-evaluated
    whenever new entangled queries arrive, until a partner shows up or
    the user gives up ({!cancel}). This is the model the paper suggests
    for social games.

    A {!hub} owns the shared engine and the set of parked queries. Each
    user holds a {!session}. Classical statements execute immediately
    (their replies carry rows/counts); an entangled query either
    answers immediately (a partner was already parked) or returns
    [Parked], after which {!poll} reports progress. Commit respects
    group commit: a session that entangled commits only together with
    its partners — [commit] returns [Commit_pending] until the whole
    group has asked to commit, at which point all commit atomically. *)

open Ent_entangle

type hub
type session

type reply =
  | Rows of Ent_storage.Value.t array list
  | Affected of int
  | Answered of Ir.ground_atom list  (** entangled answer tuples *)
  | Parked  (** entangled query waiting for partners *)
  | Committed
  | Commit_pending  (** waiting for entanglement partners to commit *)
  | Blocked  (** lock conflict: retry the statement via {!poll} or later *)
  | Aborted of string

val create_hub : ?isolation:Isolation.t -> Ent_txn.Engine.t -> hub

(** Open a new interactive transaction. *)
val start : hub -> session

(** Execute one statement. [Entangled] statements may answer
    immediately, park, or block; [Rollback] aborts the session.
    @raise Invalid_argument if the session already finished. *)
val execute : session -> string -> reply

(** Re-check a parked entangled query, a blocked statement, or a
    pending commit. *)
val poll : session -> reply

(** Ask to commit. Returns [Committed], [Commit_pending] (entangled
    partners not ready), or [Aborted] if the group has failed. *)
val commit : session -> reply

(** Abort the transaction. Entanglement partners are aborted too
    (widowed-transaction prevention), and their next {!poll} reports
    [Aborted]. *)
val cancel : session -> unit

(** Answer tuples received so far. *)
val answers : session -> Ir.ground_atom list

(** Host-variable environment (to inspect [@var] bindings). *)
val env : session -> Ent_sql.Eval.env

(** Number of queries currently parked at the hub. *)
val parked_count : hub -> int
