(** Crash recovery from the write-ahead log.

    Recovery is redo-based: after a crash the volatile database is
    rebuilt by replaying, in log order, the writes of every transaction
    that *effectively* committed. "Effectively" implements the paper's
    entanglement-aware rule (§4): a committed transaction whose
    entanglement group contains a member that did not commit before the
    crash is rolled back too, together with (transitively) any later
    committed transaction that read or overwrote its writes. *)

open Ent_storage

type analysis = {
  committed : int list;  (** transactions with a [Commit] record *)
  aborted : int list;
  incomplete : int list;  (** begun, neither committed nor aborted *)
  groups : int list list;  (** transitive entanglement groups *)
  survivors : int list;  (** transactions whose effects are replayed *)
  group_victims : int list;
      (** committed transactions rolled back by the entanglement rule
          or by cascading from one *)
  pool : string list;  (** latest dormant-pool snapshot, oldest first *)
}

(** Classify the transactions of a log. The bootstrap pseudo-transaction
    (id 0) is always considered committed. *)
val analyze : Wal.record list -> analysis

(** [replay records] rebuilds the database: creates tables from
    [Create] records and applies the writes of [survivors] in log
    order. Returns the catalog and the analysis. *)
val replay : Wal.record list -> Catalog.t * analysis
