lib/txn/engine.ml: Catalog Ent_sql Ent_storage Hashtbl Int List Lock Printf Schema Table Tuple Wal
