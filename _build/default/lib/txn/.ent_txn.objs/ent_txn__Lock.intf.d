lib/txn/lock.mli:
