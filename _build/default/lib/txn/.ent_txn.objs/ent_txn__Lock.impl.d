lib/txn/lock.ml: Hashtbl Int List Option
