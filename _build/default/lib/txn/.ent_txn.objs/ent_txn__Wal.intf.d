lib/txn/wal.mli: Ent_storage Schema Tuple
