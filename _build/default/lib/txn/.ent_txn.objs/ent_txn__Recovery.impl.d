lib/txn/recovery.ml: Catalog Ent_storage Hashtbl Int List Option Schema Set Table Wal
