lib/txn/wal.ml: Ent_storage Fun List Marshal Schema String Tuple
