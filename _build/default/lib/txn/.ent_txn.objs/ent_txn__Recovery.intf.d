lib/txn/recovery.mli: Catalog Ent_storage Wal
