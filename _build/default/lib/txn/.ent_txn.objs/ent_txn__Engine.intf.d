lib/txn/engine.mli: Catalog Ent_sql Ent_storage Lock Schema Table Value Wal
