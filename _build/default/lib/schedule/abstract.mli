(** An abstract execution machine over schedules, used to check
    oracle-serializability (§C.3) concretely.

    Objects hold integers (initially 0). Transactions are deterministic
    in the sense of §C.4: the value a transaction writes is a fixed
    function of its identity and everything it has observed so far
    (values read plus entangled query answers). Entangled answers are a
    fixed function of the grounding reads of all participants at the
    moment of the entanglement operation. Aborts roll their writes
    back.

    Replaying the committed transactions serially with the recorded
    answers (the oracle O_sigma of §C.3.1) and validating reads then
    lets us test Theorem 3.6: an entangled-isolated schedule replayed
    in conflict-graph order is a valid oracle execution producing the
    same final database. *)

type store = (History.obj * int) list
(** Final database: object values, zeroes omitted, sorted. *)

type execution = {
  final : store;
  (* per entanglement event: the grounding-read observations
     ((txn, obj), value) it answered from, and the answer value *)
  event_grounds : (int * ((int * History.obj) * int) list) list;
  event_answers : (int * int) list;
}

(** Execute a schedule directly (the "real" interleaved execution). *)
val execute : History.t -> execution

type replay = {
  replay_final : store;
  replay_valid : bool;
      (** every validating read matched the recorded grounding value
          (Definition 3.3 validity at each oracle call) *)
}

(** [replay sched exec order] runs the committed transactions serially
    in [order] alongside the oracle built from [exec]. *)
val replay : History.t -> execution -> int list -> replay

(** Definition C.7, checked constructively: find a serialization order
    (the conflict-graph topological order when it exists, otherwise all
    permutations of up to 7 committed transactions) whose replay is
    valid and produces the same final store. *)
val oracle_serializable : History.t -> bool
