(** Recording real executions as formal schedules.

    Subscribe {!on_engine_event} to [Ent_txn.Engine.set_on_event] and
    {!on_entangle} to the scheduler's entanglement hook; {!history}
    then returns the execution as a {!History.t} (quasi-reads not yet
    expanded — use {!History.expand_quasi_reads}). *)

type t

val create : unit -> t
val on_engine_event : t -> Ent_txn.Engine.event -> unit

(** [on_entangle t ~event participants] where each participant is
    [(txn, grounding_tables)] — matching the scheduler hook's payload. *)
val on_entangle : t -> event:int -> (int * string list) list -> unit

(** Operations recorded so far, oldest first. Transactions still
    running have no terminal operation yet; filter or complete before
    validity checking. *)
val history : t -> History.t

(** The recorded history restricted to transactions that terminated,
    i.e. a complete schedule suitable for the checkers. *)
val completed_history : t -> History.t
