lib/schedule/conflict.ml: Hashtbl History Int List
