lib/schedule/history.mli: Format
