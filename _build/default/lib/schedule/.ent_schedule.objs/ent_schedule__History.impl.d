lib/schedule/history.ml: Array Format Hashtbl Int List Option
