lib/schedule/recorder.mli: Ent_txn History
