lib/schedule/abstract.mli: History
