lib/schedule/anomaly.mli: Format History
