lib/schedule/recorder.ml: Ent_txn Hashtbl History List
