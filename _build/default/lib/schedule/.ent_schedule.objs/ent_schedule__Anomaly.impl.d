lib/schedule/anomaly.ml: Array Conflict Format Hashtbl History List Option String
