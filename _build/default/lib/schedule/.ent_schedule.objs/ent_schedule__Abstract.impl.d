lib/schedule/abstract.ml: Conflict Hashtbl History List Option
