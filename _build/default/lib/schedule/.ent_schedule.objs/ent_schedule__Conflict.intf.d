lib/schedule/conflict.mli: History
