type store = (History.obj * int) list

type execution = {
  final : store;
  event_grounds : (int * ((int * History.obj) * int) list) list;
  event_answers : (int * int) list;
}

(* The store is a list of cells because objects overlap structurally
   (a Table object covers its rows); reads of a Table observe the
   combined value of every overlapping cell. *)
module Cells = struct
  type t = (History.obj, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let read (t : t) obj =
    (* combine all overlapping cells deterministically *)
    let hits =
      Hashtbl.fold
        (fun o v acc -> if History.overlaps obj o then (o, v) :: acc else acc)
        t []
    in
    match List.sort compare hits with
    | [] -> 0
    | sorted -> Hashtbl.hash sorted

  let write (t : t) obj v = Hashtbl.replace t obj v

  let snapshot (t : t) : store =
    Hashtbl.fold (fun o v acc -> if v = 0 then acc else (o, v) :: acc) t []
    |> List.sort compare
end

let write_value txn observations = Hashtbl.hash (txn, observations)

(* §C.1 defines the final database as "exactly the writes of all the
   committed transactions in σ, in the order in which these writes
   occurred" — aborted writes simply never count; there is no undo
   pass. During execution, reads observe the live store (which may
   contain uncommitted writes — dirty reads are possible and are what
   Requirement C.3 excludes for committed readers). *)
let execute schedule =
  let cells = Cells.create () in
  let obs : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let observe i v =
    Hashtbl.replace obs i (v :: Option.value ~default:[] (Hashtbl.find_opt obs i))
  in
  let ground_buf : (int, ((int * History.obj) * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let write_log = ref [] in  (* (txn, obj, value), newest first *)
  let event_grounds = ref [] in
  let event_answers = ref [] in
  List.iter
    (fun (op : History.op) ->
      match op with
      | Read (i, x) -> observe i (Cells.read cells x)
      | Ground_read (i, x) ->
        (* Grounding reads are performed by the system on the
           transaction's behalf; the transaction itself observes their
           effect only through the entangled answer (so replay, where
           the oracle substitutes for grounding, stays deterministic). *)
        let v = Cells.read cells x in
        Hashtbl.replace ground_buf i
          (Option.value ~default:[] (Hashtbl.find_opt ground_buf i)
          @ [ ((i, x), v) ])
      | Quasi_read _ -> ()  (* information flows via the answer *)
      | Write (i, x) ->
        let value = write_value i (Option.value ~default:[] (Hashtbl.find_opt obs i)) in
        write_log := (i, x, value) :: !write_log;
        Cells.write cells x value
      | Entangle (k, participants) ->
        let grounds =
          List.concat_map
            (fun j -> Option.value ~default:[] (Hashtbl.find_opt ground_buf j))
            participants
        in
        List.iter (fun j -> Hashtbl.remove ground_buf j) participants;
        let answer = Hashtbl.hash (List.sort compare grounds) in
        event_grounds := (k, grounds) :: !event_grounds;
        event_answers := (k, answer) :: !event_answers;
        List.iter (fun i -> observe i answer) participants
      | Commit _ | Abort _ -> ())
    schedule;
  let committed = History.committed schedule in
  let final_cells = Cells.create () in
  List.iter
    (fun (i, x, value) ->
      if List.mem i committed then Cells.write final_cells x value)
    (List.rev !write_log);
  {
    final = Cells.snapshot final_cells;
    event_grounds = List.rev !event_grounds;
    event_answers = List.rev !event_answers;
  }

type replay = {
  replay_final : store;
  replay_valid : bool;
}

let replay schedule exec order =
  let cells = Cells.create () in
  let valid = ref true in
  List.iter
    (fun txn ->
      let observations = ref [] in
      let observe v = observations := v :: !observations in
      List.iter
        (fun (op : History.op) ->
          match op with
          | Read (i, x) when i = txn -> observe (Cells.read cells x)
          | Ground_read (_, _) | Quasi_read (_, _) ->
            ()  (* replaced by the oracle call at the entangle op *)
          | Write (i, x) when i = txn ->
            Cells.write cells x (write_value txn !observations)
          | Entangle (k, participants) when List.mem txn participants ->
            (* Validating reads (proof of Theorem 3.6): re-perform this
               transaction's own grounding reads and compare with the
               values its answer was computed from. Partners' grounding
               reads are their own validating reads at their oracle
               calls. *)
            let grounds = List.assoc k exec.event_grounds in
            List.iter
              (fun ((j, x), recorded) ->
                if j = txn && Cells.read cells x <> recorded then valid := false)
              grounds;
            observe (List.assoc k exec.event_answers)
          | Read _ | Write _ | Entangle _ | Commit _ | Abort _ -> ())
        schedule)
    order;
  { replay_final = Cells.snapshot cells; replay_valid = !valid }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest)
          (permutations (List.filter (fun y -> y <> x) l)))
      l

let oracle_serializable schedule =
  let exec = execute schedule in
  let committed = History.committed schedule in
  let check order =
    let r = replay schedule exec order in
    r.replay_valid && r.replay_final = exec.final
  in
  let expanded = History.expand_quasi_reads schedule in
  let topo = Conflict.topo_order (Conflict.of_schedule expanded) in
  match topo with
  | Some order when check order -> true
  | _ ->
    if List.length committed <= 7 then List.exists check (permutations committed)
    else false
