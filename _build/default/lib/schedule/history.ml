type obj =
  | Named of string
  | Table of string
  | Row of string * int

let overlaps a b =
  match a, b with
  | Named x, Named y -> x = y
  | Table t, Table u -> t = u
  | Table t, Row (u, _) | Row (u, _), Table t -> t = u
  | Row (t, i), Row (u, j) -> t = u && i = j
  | Named _, (Table _ | Row _) | (Table _ | Row _), Named _ -> false

let group_key = function
  | Named s -> s
  | Table t | Row (t, _) -> t

type op =
  | Read of int * obj
  | Ground_read of int * obj
  | Quasi_read of int * obj
  | Write of int * obj
  | Entangle of int * int list
  | Commit of int
  | Abort of int

type t = op list

let txns_of_op = function
  | Read (i, _) | Ground_read (i, _) | Quasi_read (i, _) | Write (i, _)
  | Commit i | Abort i -> [ i ]
  | Entangle (_, participants) -> participants

let txns schedule =
  List.sort_uniq Int.compare (List.concat_map txns_of_op schedule)

let committed schedule =
  List.filter_map
    (function
      | Commit i -> Some i
      | _ -> None)
    schedule

let aborted schedule =
  List.filter_map
    (function
      | Abort i -> Some i
      | _ -> None)
    schedule

let validity_errors schedule =
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* one terminal op per transaction, in last position *)
  List.iter
    (fun txn ->
      let ops =
        List.filter (fun op -> List.mem txn (txns_of_op op)) schedule
      in
      let terminals =
        List.filter
          (function
            | Commit _ | Abort _ -> true
            | _ -> false)
          ops
      in
      (match terminals with
      | [ _ ] -> ()
      | [] -> error "transaction %d has no commit or abort" txn
      | _ -> error "transaction %d has several terminal operations" txn);
      (match List.rev ops with
      | (Commit _ | Abort _) :: _ -> ()
      | _ :: _ -> error "transaction %d continues after its terminal operation" txn
      | [] -> ()))
    (txns schedule);
  (* grounding-read blocks *)
  let pending : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun op ->
      match op with
      | Ground_read (i, _) -> Hashtbl.replace pending i ()
      | Quasi_read _ -> ()
      | Entangle (_, participants) ->
        List.iter (fun i -> Hashtbl.remove pending i) participants
      | Abort i -> Hashtbl.remove pending i
      | Read (i, _) | Write (i, _) ->
        if Hashtbl.mem pending i then
          error
            "transaction %d performs a read or write between a grounding read \
             and its entanglement"
            i
      | Commit i ->
        if Hashtbl.mem pending i then
          error "transaction %d commits with an unanswered grounding read" i)
    schedule;
  List.rev !errors

let expand_quasi_reads schedule =
  let n = List.length schedule in
  let ops = Array.of_list schedule in
  (* per-transaction buffer of grounding reads not yet entangled *)
  let buffers : (int, (int * obj) list) Hashtbl.t = Hashtbl.create 8 in
  let insertions : (int, op list) Hashtbl.t = Hashtbl.create 8 in
  let add_insertion pos op =
    let existing = Option.value ~default:[] (Hashtbl.find_opt insertions pos) in
    Hashtbl.replace insertions pos (existing @ [ op ])
  in
  for pos = 0 to n - 1 do
    match ops.(pos) with
    | Ground_read (i, x) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt buffers i) in
      Hashtbl.replace buffers i (existing @ [ (pos, x) ])
    | Entangle (_, participants) ->
      List.iter
        (fun j ->
          let reads = Option.value ~default:[] (Hashtbl.find_opt buffers j) in
          List.iter
            (fun (read_pos, x) ->
              List.iter
                (fun i -> if i <> j then add_insertion read_pos (Quasi_read (i, x)))
                participants)
            reads;
          Hashtbl.remove buffers j)
        participants
    | Abort i -> Hashtbl.remove buffers i
    | Read _ | Quasi_read _ | Write _ | Commit _ -> ()
  done;
  List.concat
    (List.mapi
       (fun pos op ->
         op :: Option.value ~default:[] (Hashtbl.find_opt insertions pos))
       schedule)

let pp_obj ppf = function
  | Named x -> Format.pp_print_string ppf x
  | Table t -> Format.pp_print_string ppf t
  | Row (t, i) -> Format.fprintf ppf "%s[%d]" t i

let pp_op ppf = function
  | Read (i, x) -> Format.fprintf ppf "R%d(%a)" i pp_obj x
  | Ground_read (i, x) -> Format.fprintf ppf "RG%d(%a)" i pp_obj x
  | Quasi_read (i, x) -> Format.fprintf ppf "RQ%d(%a)" i pp_obj x
  | Write (i, x) -> Format.fprintf ppf "W%d(%a)" i pp_obj x
  | Entangle (k, participants) ->
    Format.fprintf ppf "E%d{%a}" k
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      participants
  | Commit i -> Format.fprintf ppf "C%d" i
  | Abort i -> Format.fprintf ppf "A%d" i

let pp ppf schedule =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
    pp_op ppf schedule
