lib/sql/ast.ml: Ent_storage Schema Value
