lib/sql/parser.ml: Array Ast Ent_storage Format Lexer List Schema String Value
