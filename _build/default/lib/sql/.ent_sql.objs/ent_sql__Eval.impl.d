lib/sql/eval.ml: Array Ast Buffer Catalog Ent_storage Format Hashtbl List Ordered_index Printf Schema String Table Tuple Value
