lib/sql/lexer.ml: Array Buffer Format List Printf String
