lib/sql/pretty.ml: Ast Ent_storage Format List Schema String Value
