lib/sql/eval.mli: Ast Catalog Ent_storage Hashtbl Ordered_index Schema Tuple Value
