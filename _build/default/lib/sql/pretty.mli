(** Printers for the SQL AST; output re-parses to an equal AST. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_select : Format.formatter -> Ast.select -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
