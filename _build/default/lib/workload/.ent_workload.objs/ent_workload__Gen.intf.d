lib/workload/gen.mli: Ent_core Travel
