lib/workload/social_graph.ml: Array Hashtbl Int List Random String
