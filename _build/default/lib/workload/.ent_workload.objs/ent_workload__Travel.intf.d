lib/workload/travel.mli: Ent_core Social_graph
