lib/workload/social_graph.mli:
