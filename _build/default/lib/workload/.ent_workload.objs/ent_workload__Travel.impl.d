lib/workload/travel.ml: Array Ent_core Ent_storage List Printf Schema Social_graph
