lib/workload/gen.ml: Ent_core List Printf Social_graph String Travel
