type t = {
  adjacency : int list array;  (* sorted, no duplicates *)
}

let users t = Array.length t.adjacency
let friends t u = if u < 0 || u >= users t then [] else t.adjacency.(u)
let degree t u = List.length (friends t u)

let nth_friend t u k =
  match friends t u with
  | [] -> None
  | fs -> Some (List.nth fs (k mod List.length fs))

let edge_count t = Array.fold_left (fun acc fs -> acc + List.length fs) 0 t.adjacency

let of_edge_list ~n edges =
  let sets = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a <> b && a >= 0 && a < n && b >= 0 && b < n then begin
        if not (List.mem b sets.(a)) then sets.(a) <- b :: sets.(a);
        if not (List.mem a sets.(b)) then sets.(b) <- a :: sets.(b)
      end)
    edges;
  { adjacency = Array.map (List.sort Int.compare) sets }

let generate ?(seed = 1) ~users ~edges_per_node () =
  if users < 2 then invalid_arg "Social_graph.generate: need at least 2 users";
  let rng = Random.State.make [| seed; users; edges_per_node |] in
  (* Preferential attachment via the repeated-endpoints urn. *)
  let urn = ref [ 0; 1 ] in
  let urn_size = ref 2 in
  let edges = ref [ (0, 1) ] in
  for v = 2 to users - 1 do
    let m = min v (max 1 edges_per_node) in
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 20 * m do
      incr attempts;
      let idx = Random.State.int rng !urn_size in
      let target = List.nth !urn idx in
      if target <> v then Hashtbl.replace chosen target ()
    done;
    Hashtbl.iter
      (fun target () ->
        edges := (v, target) :: !edges;
        urn := target :: !urn;
        incr urn_size)
      chosen;
    urn := v :: !urn;
    incr urn_size
  done;
  of_edge_list ~n:users !edges

let parse_edges text =
  let lines = String.split_on_char '\n' text in
  let raw =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match
            String.split_on_char '\t' line
            |> List.concat_map (String.split_on_char ' ')
            |> List.filter (fun s -> s <> "")
          with
          | [ a; b ] -> (
            match int_of_string_opt a, int_of_string_opt b with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
          | _ -> None)
      lines
  in
  (* dense remap *)
  let mapping = Hashtbl.create 1024 in
  let next = ref 0 in
  let map x =
    match Hashtbl.find_opt mapping x with
    | Some i -> i
    | None ->
      let i = !next in
      Hashtbl.replace mapping x i;
      incr next;
      i
  in
  let edges =
    List.map
      (fun (a, b) ->
        let a = map a in
        let b = map b in
        (a, b))
      raw
  in
  of_edge_list ~n:!next edges

let load_edges path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_edges text
