type kind =
  | No_social
  | Social
  | Entangled

let kind_name = function
  | No_social -> "nosocial"
  | Social -> "social"
  | Entangled -> "entangled"

(* Appendix D, first workload: look up the hometown, find a flight to
   the destination, reserve it. *)
let no_social_body world ~uid ~tag =
  let dest = Travel.destination_for world uid ~salt:tag in
  Printf.sprintf
    "SELECT @uid, @hometown FROM User WHERE uid=%d;\n\
     SELECT @fid FROM Flight WHERE source=@hometown AND destination='%s' LIMIT 1;\n\
     INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);"
    uid dest

(* Appendix D, second workload: additionally look up a friend from the
   same hometown who might be flying. *)
let social_body world ~uid ~tag =
  let dest = Travel.destination_for world uid ~salt:tag in
  Printf.sprintf
    "SELECT @uid, @hometown FROM User WHERE uid=%d;\n\
     SELECT uid2 FROM Friends, User AS u1, User AS u2\n\
     WHERE Friends.uid1=@uid AND Friends.uid2=u2.uid AND u1.uid=@uid\n\
     AND u1.hometown=u2.hometown LIMIT 1;\n\
     SELECT @fid FROM Flight WHERE source=@hometown AND destination='%s' LIMIT 1;\n\
     INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);"
    uid dest

(* Appendix D, third workload: coordinate the destination with a
   specific friend through an entangled query, then book a flight
   there. The friendship is verified in the grounding (as in the
   paper's example); the pair tag keeps concurrent coordinations with
   the same user apart. *)
let entangled_body world ~uid ~partner ~tag =
  let friendship_check =
    if partner >= 0 then
      Printf.sprintf
        "AND (%d) IN (SELECT uid2 FROM Friends WHERE uid1=%d AND uid2=%d)\n"
        partner uid partner
    else ""
  in
  ignore world;
  Printf.sprintf
    "SELECT @uid, @hometown FROM User WHERE uid=%d;\n\
     SELECT %d, %d, dst AS @destination INTO ANSWER Meet\n\
     WHERE (dst) IN (SELECT destination FROM Flight WHERE source=@hometown)\n\
     %sAND (%d, %d, dst) IN ANSWER Meet\n\
     CHOOSE 1;\n\
     SELECT @fid FROM Flight WHERE source=@hometown AND destination=@destination LIMIT 1;\n\
     INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);"
    uid uid tag friendship_check partner tag

let wrap ~label ~transactional ?(timeout = "") body =
  Ent_core.Program.of_string ~label ~transactional
    (Printf.sprintf "BEGIN TRANSACTION%s;\n%s\nCOMMIT;" timeout body)

let program world ~transactional kind ~uid ~partner ~tag =
  let label = Printf.sprintf "%s-%d-%d" (kind_name kind) uid tag in
  match kind with
  | No_social -> wrap ~label ~transactional (no_social_body world ~uid ~tag)
  | Social -> wrap ~label ~transactional (social_body world ~uid ~tag)
  | Entangled ->
    wrap ~label ~transactional ~timeout:" WITH TIMEOUT 2 DAYS"
      (entangled_body world ~uid ~partner ~tag)

(* Friend pairs, cycling over the graph deterministically. *)
let friend_pair world k =
  let n = Social_graph.users world.Travel.graph in
  let rec find u tries =
    if tries > n then (0, 1)  (* degenerate graph fallback *)
    else
      match Social_graph.nth_friend world.Travel.graph u k with
      | Some v -> (u, v)
      | None -> find ((u + 1) mod n) (tries + 1)
  in
  find (k * 7 mod n) 0

let batch world ~transactional kind ~n ~tag_base =
  match kind with
  | No_social | Social ->
    List.init n (fun i ->
        let uid = i * 13 mod Social_graph.users world.Travel.graph in
        program world ~transactional kind ~uid ~partner:(-1) ~tag:(tag_base + i))
  | Entangled ->
    List.concat
      (List.init ((n + 1) / 2) (fun k ->
           let u, v = friend_pair world (tag_base + k) in
           let tag = tag_base + k in
           [ program world ~transactional Entangled ~uid:u ~partner:v ~tag;
             program world ~transactional Entangled ~uid:v ~partner:u ~tag ]))
    |> List.filteri (fun i _ -> i < n)

let lonely world ~n ~tag_base =
  List.init n (fun i ->
      let uid = i mod Social_graph.users world.Travel.graph in
      program world ~transactional:true Entangled ~uid ~partner:(-1)
        ~tag:(tag_base + i))

(* --- Figure 6(c) coordination structures --- *)

let structured_query world ~me ~tag ~partner =
  Printf.sprintf
    "SELECT %d, %d, dst AS @destination INTO ANSWER Meet\n\
     WHERE (dst) IN (SELECT destination FROM Flight WHERE source='%s')\n\
     AND (%d, %d, dst) IN ANSWER Meet\n\
     CHOOSE 1"
    me tag (Travel.hometown world me) partner tag

let structured_program world ~label ~uid queries =
  let home = Travel.hometown world uid in
  let body =
    String.concat ";\n" queries
    ^ ";\n"
    ^ Printf.sprintf
        "SELECT @fid FROM Flight WHERE source='%s' AND destination=@destination \
         LIMIT 1;\nINSERT INTO Reserve (uid, fid) VALUES (%d, @fid);"
        home uid
  in
  wrap ~label ~transactional:true ~timeout:" WITH TIMEOUT 2 DAYS" body

let spoke_hub world ~set_size ~tag_base =
  if set_size < 2 then invalid_arg "Gen.spoke_hub: set_size must be >= 2";
  let users = Social_graph.users world.Travel.graph in
  let hub = tag_base * 31 mod users in
  let spoke i = (hub + 1 + i) mod users in
  let hub_queries =
    List.init (set_size - 1) (fun i ->
        structured_query world ~me:hub ~tag:(tag_base + i) ~partner:(spoke i))
  in
  let hub_program =
    structured_program world
      ~label:(Printf.sprintf "hub-%d" tag_base)
      ~uid:hub hub_queries
  in
  let spokes =
    List.init (set_size - 1) (fun i ->
        structured_program world
          ~label:(Printf.sprintf "spoke-%d-%d" tag_base i)
          ~uid:(spoke i)
          [ structured_query world ~me:(spoke i) ~tag:(tag_base + i) ~partner:hub ])
  in
  hub_program :: spokes

(* A ring of entanglement dependencies: member i's query requires
   member i+1 (mod s) to choose the same destination, so the whole ring
   is one coordination component that must be answered together.
   A common destination exists as long as the city count exceeds the
   number of distinct member hometowns. *)
let cycle world ~set_size ~tag_base =
  if set_size < 2 then invalid_arg "Gen.cycle: set_size must be >= 2";
  let users = Social_graph.users world.Travel.graph in
  let member i = (tag_base * 37 + i) mod users in
  List.init set_size (fun i ->
      let me = member i in
      let next = member ((i + 1) mod set_size) in
      structured_program world
        ~label:(Printf.sprintf "cycle-%d-%d" tag_base i)
        ~uid:me
        [ structured_query world ~me ~tag:tag_base ~partner:next ])
