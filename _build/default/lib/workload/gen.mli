(** The six evaluation workloads (§5.2.1, Appendix D) and the
    coordination structures of the entanglement-complexity experiment.

    Transactional variants ([transactional:true]) are the -T workloads;
    [false] gives the -Q variants (same code, autocommit).

    Entangled workload atoms carry a per-pair tag so that concurrent
    pairs involving the same user cannot cross-match; the tag plays the
    role of the booking context (which trip is being coordinated). *)

type kind =
  | No_social  (** individual booking *)
  | Social  (** booking + friend lookup *)
  | Entangled  (** booking coordinated with a friend via an entangled query *)

(** [program world ~transactional kind ~uid ~partner ~tag] builds one
    transaction. [partner] is used by [Entangled] only. A negative
    partner produces a permanently partnerless query (used for the
    pending-transactions experiment). *)
val program :
  Travel.t ->
  transactional:bool ->
  kind ->
  uid:int ->
  partner:int ->
  tag:int ->
  Ent_core.Program.t

(** [batch world ~transactional kind ~n ~tag_base] builds [n]
    transactions. For [Entangled], consecutive transactions form
    partner pairs (n should be even) over friend edges of the graph, so
    every transaction can coordinate within the batch — the Figure 6(a)
    setup. *)
val batch :
  Travel.t ->
  transactional:bool ->
  kind ->
  n:int ->
  tag_base:int ->
  Ent_core.Program.t list

(** [lonely world ~n ~tag_base] builds [n] entangled transactions whose
    partners never arrive (the pending transactions of Figure 6(b)). *)
val lonely : Travel.t -> n:int -> tag_base:int -> Ent_core.Program.t list

(** Spoke-hub structure of coordinating-set size [set_size]: one hub
    transaction with [set_size - 1] entangled queries, each entangling
    with a distinct spoke transaction (Figure 6(c)). *)
val spoke_hub : Travel.t -> set_size:int -> tag_base:int -> Ent_core.Program.t list

(** Cyclic structure of size [set_size]: a ring of [set_size]
    transactions where each requires its successor (mod [set_size]) to
    choose the same destination — one coordination component that can
    only be answered all at once (Figure 6(c)). A coordinated choice
    exists as long as the world has more cities than the ring has
    distinct hometowns; otherwise the ring succeeds with an empty
    answer. *)
val cycle : Travel.t -> set_size:int -> tag_base:int -> Ent_core.Program.t list
