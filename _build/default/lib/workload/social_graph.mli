(** Social graphs for the evaluation workloads.

    The paper uses the SNAP Slashdot0902 social network. That file is
    not available in the sealed build environment, so the default is a
    synthetic preferential-attachment graph with the properties the
    workload actually consumes: reciprocated friend edges and a
    heavy-tailed degree distribution (see DESIGN.md §2.2). A loader for
    the SNAP edge-list format is provided for users who have the data. *)

type t

(** [generate ~seed ~users ~edges_per_node] builds a deterministic
    preferential-attachment graph. Edges are reciprocated. *)
val generate : ?seed:int -> users:int -> edges_per_node:int -> unit -> t

(** Parse SNAP edge-list text ([#] comments, one [from<TAB>to] pair per
    line). Node ids are remapped densely; edges are reciprocated. *)
val parse_edges : string -> t

(** Read a SNAP edge-list file. *)
val load_edges : string -> t

val users : t -> int
val friends : t -> int -> int list
val degree : t -> int -> int

(** [nth_friend t u k] picks a friend deterministically ([]: none). *)
val nth_friend : t -> int -> int -> int option

(** Total number of (directed) friendship pairs. *)
val edge_count : t -> int
