(** The travel-scenario world of the evaluation (§5.2.1 / Appendix D):
    a social network of users with hometowns, a complete flight network
    between cities, and a reservations table. *)

type t = {
  manager : Ent_core.Manager.t;
  graph : Social_graph.t;
  cities : string array;
}

(** [build ()] creates a fresh world.
    - [users]: social-network size (default 500)
    - [cities]: number of cities (default 12); one flight exists
      between every ordered pair
    - [edges_per_node]: average out-degree of the friendship graph
    - [config]: scheduler configuration
    - [wal]: log for recovery (default false — benchmarks don't pay
      for logging, matching the prototype's reliance on the DBMS) *)
val build :
  ?seed:int ->
  ?users:int ->
  ?cities:int ->
  ?edges_per_node:int ->
  ?config:Ent_core.Scheduler.config ->
  ?wal:bool ->
  unit ->
  t

(** City of a user (deterministic). *)
val hometown : t -> int -> string

(** A destination city different from the user's hometown
    (deterministic in [salt]). *)
val destination_for : t -> int -> salt:int -> string

(** Number of committed reservations. *)
val reservations : t -> int
