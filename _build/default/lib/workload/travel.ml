open Ent_storage

type t = {
  manager : Ent_core.Manager.t;
  graph : Social_graph.t;
  cities : string array;
}

let hometown_index ~cities uid = uid mod cities

let build ?(seed = 1) ?(users = 500) ?(cities = 12) ?(edges_per_node = 4)
    ?config ?(wal = false) () =
  if cities < 3 then invalid_arg "Travel.build: need at least 3 cities";
  let manager = Ent_core.Manager.create ~wal ?config () in
  let graph = Social_graph.generate ~seed ~users ~edges_per_node () in
  let city_names = Array.init cities (fun i -> Printf.sprintf "C%02d" i) in
  let open Ent_core.Manager in
  define_table manager "User" [ ("uid", Schema.T_int); ("hometown", Schema.T_str) ];
  define_table manager "Friends" [ ("uid1", Schema.T_int); ("uid2", Schema.T_int) ];
  define_table manager "Flight"
    [ ("source", Schema.T_str); ("destination", Schema.T_str); ("fid", Schema.T_int) ];
  define_table manager "Reserve" [ ("uid", Schema.T_int); ("fid", Schema.T_int) ];
  for uid = 0 to users - 1 do
    load_row manager "User"
      [ Int uid; Str city_names.(hometown_index ~cities uid) ]
  done;
  for uid = 0 to users - 1 do
    List.iter
      (fun friend -> load_row manager "Friends" [ Int uid; Int friend ])
      (Social_graph.friends graph uid)
  done;
  let fid = ref 0 in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            load_row manager "Flight" [ Str src; Str dst; Int !fid ];
            incr fid
          end)
        city_names)
    city_names;
  add_index manager "User" [ "uid" ];
  add_index manager "User" [ "uid"; "hometown" ];
  add_index manager "Friends" [ "uid1" ];
  add_index manager "Friends" [ "uid1"; "uid2" ];
  add_index manager "Flight" [ "source" ];
  add_index manager "Flight" [ "source"; "destination" ];
  { manager; graph; cities = city_names }

let hometown t uid = t.cities.(hometown_index ~cities:(Array.length t.cities) uid)

let destination_for t uid ~salt =
  let cities = Array.length t.cities in
  let home = hometown_index ~cities uid in
  let candidate = (uid + salt) mod cities in
  t.cities.(if candidate = home then (candidate + 1) mod cities else candidate)

let reservations t =
  List.length (Ent_core.Manager.query t.manager "SELECT uid FROM Reserve")
