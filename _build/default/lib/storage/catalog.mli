(** The catalog: the named tables of a database instance. *)

type t

val create : unit -> t

(** [create_table t name schema] makes and registers a fresh table.
    @raise Invalid_argument when [name] already exists. *)
val create_table : t -> string -> Schema.t -> Table.t

(** Table names are case-sensitive, as in the paper's examples. *)
val find : t -> string -> Table.t option

(** @raise Not_found when absent. *)
val find_exn : t -> string -> Table.t

val mem : t -> string -> bool
val drop : t -> string -> unit
val table_names : t -> string list
val iter : (string -> Table.t -> unit) -> t -> unit
