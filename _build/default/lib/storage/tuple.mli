(** Tuples (rows): immutable arrays of values checked against a schema. *)

type t = Value.t array

(** [make schema values] checks arity and column types.
    @raise Invalid_argument on arity or type mismatch. *)
val make : Schema.t -> Value.t list -> t

val of_array : Schema.t -> Value.t array -> t
val arity : t -> int
val get : t -> int -> Value.t

(** [project t positions] extracts the listed positions, in order. *)
val project : t -> int list -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_list : t -> Value.t list
val pp : Format.formatter -> t -> unit
