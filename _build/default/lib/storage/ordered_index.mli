(** Ordered (single-column) indexes supporting range lookups, for
    BETWEEN and inequality probes. Backed by a balanced map from value
    to row-id set. *)

type t

(** [create ~position] indexes rows on the column at [position]. *)
val create : position:int -> t

val position : t -> int
val insert : t -> Value.t -> int -> unit
val remove : t -> Value.t -> int -> unit

type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

(** [range t ~lo ~hi] is the row ids whose key lies in the interval, in
    ascending (key, id) order. *)
val range : t -> lo:bound -> hi:bound -> int list

val cardinal : t -> int
