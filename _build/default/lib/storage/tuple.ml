type t = Value.t array

let of_array schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Tuple: arity mismatch (got %d, schema has %d)"
         (Array.length values) (Schema.arity schema));
  List.iteri
    (fun i (c : Schema.column) ->
      if not (Schema.check_value c.ty values.(i)) then
        invalid_arg
          (Printf.sprintf "Tuple: column %s expects %s, got %s" c.name
             (Schema.type_name c.ty)
             (Value.type_name values.(i))))
    (Schema.columns schema);
  values

let make schema values = of_array schema (Array.of_list values)
let arity = Array.length
let get t i = t.(i)
let project t positions = Array.of_list (List.map (fun i -> t.(i)) positions)

let compare a b =
  let rec go i =
    if i >= Array.length a && i >= Array.length b then 0
    else if i >= Array.length a then -1
    else if i >= Array.length b then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0
let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
let to_list = Array.to_list

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (to_list t)
