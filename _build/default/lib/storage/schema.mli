(** Table schemas: ordered, named, typed columns. *)

type col_type = T_bool | T_int | T_str | T_date | T_any

type column = {
  name : string;
  ty : col_type;
}

type t

(** [make cols] builds a schema. Raises [Invalid_argument] on duplicate
    column names. *)
val make : column list -> t

(** Convenience: [of_names ["a"; "b"]] builds an untyped ([T_any])
    schema. *)
val of_names : string list -> t

val columns : t -> column list
val arity : t -> int

(** [index_of schema name] is the position of column [name].
    @raise Not_found if absent. *)
val index_of : t -> string -> int

val mem : t -> string -> bool
val column_names : t -> string list

(** [check_value ty v] is true when value [v] inhabits column type [ty]
    ([Null] inhabits every type; every value inhabits [T_any]). *)
val check_value : col_type -> Value.t -> bool

val type_name : col_type -> string
val pp : Format.formatter -> t -> unit
