module Key = struct
  type t = Value.t list

  let equal a b = List.equal Value.equal a b
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module H = Hashtbl.Make (Key)

module Int_set = Set.Make (Int)

type t = {
  positions : int list;
  entries : Int_set.t ref H.t;
  mutable cardinal : int;
}

let create ~positions = { positions; entries = H.create 64; cardinal = 0 }
let positions t = t.positions
let key_of t row = List.map (fun i -> Tuple.get row i) t.positions

let insert t key row_id =
  (match H.find_opt t.entries key with
  | Some set ->
    if not (Int_set.mem row_id !set) then begin
      set := Int_set.add row_id !set;
      t.cardinal <- t.cardinal + 1
    end
  | None ->
    H.add t.entries key (ref (Int_set.singleton row_id));
    t.cardinal <- t.cardinal + 1)

let remove t key row_id =
  match H.find_opt t.entries key with
  | None -> ()
  | Some set ->
    if Int_set.mem row_id !set then begin
      set := Int_set.remove row_id !set;
      t.cardinal <- t.cardinal - 1;
      if Int_set.is_empty !set then H.remove t.entries key
    end

let lookup t key =
  match H.find_opt t.entries key with
  | None -> []
  | Some set -> Int_set.elements !set

let cardinal t = t.cardinal
