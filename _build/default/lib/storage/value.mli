(** Dynamically typed SQL values.

    Values are the atoms stored in tuples and manipulated by the SQL
    evaluator and the entangled query engine. Dates are first-class
    because the paper's travel scenario computes stay lengths as date
    differences ([SET @StayLength = '2011-05-06' - @ArrivalDay]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Date of int  (** days since 1970-01-01 (may be negative) *)

(** Total order over values. [Null] sorts first; values of different
    runtime types are ordered by type. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [date_of_ymd ~y ~m ~d] builds a date value from a civil date
    (proleptic Gregorian calendar). *)
val date_of_ymd : y:int -> m:int -> d:int -> t

(** [ymd_of_date days] is the civil date for a day count, the inverse of
    {!date_of_ymd}. *)
val ymd_of_date : int -> int * int * int

(** [parse_date "2011-05-03"] is [Some (Date _)], [None] when the string
    is not a valid [YYYY-MM-DD] date. *)
val parse_date : string -> t option

(** SQL-ish addition: int+int, date+int (days), int+date. Raises
    [Type_error] otherwise. *)
val add : t -> t -> t

(** SQL-ish subtraction: int-int, date-int, and date-date which yields
    the signed number of days as an [Int]. *)
val sub : t -> t -> t

val mul : t -> t -> t
val div : t -> t -> t

exception Type_error of string

(** [is_truthy v] interprets a value as a condition result: [Bool b] is
    [b]; every other non-null value is an error; [Null] is false. *)
val is_truthy : t -> bool

(** Type name used in error messages ("int", "date", ...). *)
val type_name : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse a literal as it appears in data files: ints, [YYYY-MM-DD]
    dates, [true]/[false], anything else as a string. *)
val of_literal : string -> t
