type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let create_table t name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Catalog.create_table: table exists: " ^ name);
  let table = Table.create ~name schema in
  Hashtbl.add t.tables name table;
  table

let find t name = Hashtbl.find_opt t.tables name
let find_exn t name = Hashtbl.find t.tables name
let mem t name = Hashtbl.mem t.tables name
let drop t name = Hashtbl.remove t.tables name

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [])

let iter f t =
  List.iter (fun name -> f name (Hashtbl.find t.tables name)) (table_names t)
