lib/storage/index.mli: Tuple Value
