lib/storage/table.mli: Ordered_index Schema Tuple Value
