lib/storage/value.ml: Bool Format Hashtbl Int Printf String
