lib/storage/ordered_index.ml: Int List Map Option Set Value
