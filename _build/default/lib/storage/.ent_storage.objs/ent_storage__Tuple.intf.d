lib/storage/tuple.mli: Format Schema Value
