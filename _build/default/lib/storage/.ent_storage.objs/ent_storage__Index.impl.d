lib/storage/index.ml: Hashtbl Int List Set Tuple Value
