lib/storage/tuple.ml: Array Format List Printf Schema Value
