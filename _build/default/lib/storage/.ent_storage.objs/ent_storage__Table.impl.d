lib/storage/table.ml: Array Index List Option Ordered_index Schema Tuple Value
