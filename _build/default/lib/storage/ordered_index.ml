module Value_map = Map.Make (Value)
module Int_set = Set.Make (Int)

type t = {
  position : int;
  mutable entries : Int_set.t Value_map.t;
  mutable cardinal : int;
}

let create ~position = { position; entries = Value_map.empty; cardinal = 0 }
let position t = t.position

let insert t key row_id =
  let existing =
    Option.value ~default:Int_set.empty (Value_map.find_opt key t.entries)
  in
  if not (Int_set.mem row_id existing) then begin
    t.entries <- Value_map.add key (Int_set.add row_id existing) t.entries;
    t.cardinal <- t.cardinal + 1
  end

let remove t key row_id =
  match Value_map.find_opt key t.entries with
  | None -> ()
  | Some existing ->
    if Int_set.mem row_id existing then begin
      let remaining = Int_set.remove row_id existing in
      t.entries <-
        (if Int_set.is_empty remaining then Value_map.remove key t.entries
         else Value_map.add key remaining t.entries);
      t.cardinal <- t.cardinal - 1
    end

type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

let in_lo lo key =
  match lo with
  | Unbounded -> true
  | Inclusive v -> Value.compare key v >= 0
  | Exclusive v -> Value.compare key v > 0

let in_hi hi key =
  match hi with
  | Unbounded -> true
  | Inclusive v -> Value.compare key v <= 0
  | Exclusive v -> Value.compare key v < 0

let range t ~lo ~hi =
  (* Walk only the sub-map above the lower bound; stop at the upper. *)
  let exception Done of int list in
  let start =
    match lo with
    | Unbounded -> t.entries
    | Inclusive v | Exclusive v ->
      let _, eq, above = Value_map.split v t.entries in
      (match lo, eq with
      | Inclusive _, Some set -> Value_map.add v set above
      | _ -> above)
  in
  try
    let acc =
      Value_map.fold
        (fun key set acc ->
          if not (in_hi hi key) then raise (Done acc)
          else if in_lo lo key then
            List.rev_append (Int_set.elements set) acc
          else acc)
        start []
    in
    List.rev acc
  with Done acc -> List.rev acc

let cardinal t = t.cardinal
