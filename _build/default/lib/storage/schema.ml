type col_type = T_bool | T_int | T_str | T_date | T_any

type column = {
  name : string;
  ty : col_type;
}

type t = {
  cols : column array;
  positions : (string, int) Hashtbl.t;
}

let make cols =
  let cols = Array.of_list cols in
  let positions = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem positions c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add positions c.name i)
    cols;
  { cols; positions }

let of_names names = make (List.map (fun name -> { name; ty = T_any }) names)
let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let index_of t name = Hashtbl.find t.positions name
let mem t name = Hashtbl.mem t.positions name
let column_names t = List.map (fun c -> c.name) (columns t)

let check_value ty (v : Value.t) =
  match ty, v with
  | T_any, _ -> true
  | _, Null -> true
  | T_bool, Bool _ -> true
  | T_int, Int _ -> true
  | T_str, Str _ -> true
  | T_date, Date _ -> true
  | (T_bool | T_int | T_str | T_date), _ -> false

let type_name = function
  | T_bool -> "bool"
  | T_int -> "int"
  | T_str -> "string"
  | T_date -> "date"
  | T_any -> "any"

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s:%s" c.name (type_name c.ty)))
    (columns t)
