(** Hash indexes mapping a key (a projection of a row) to row ids. *)

type t

(** [create ~positions] indexes rows on the columns at [positions]. *)
val create : positions:int list -> t

val positions : t -> int list

(** [key_of index row] is the index key of a row. *)
val key_of : t -> Tuple.t -> Value.t list

val insert : t -> Value.t list -> int -> unit
val remove : t -> Value.t list -> int -> unit

(** [lookup index key] is the row ids whose key equals [key], in
    ascending id order. *)
val lookup : t -> Value.t list -> int list

val cardinal : t -> int
