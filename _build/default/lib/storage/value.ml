type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Date of int

exception Type_error of string

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Date _ -> 4

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Str _ -> "string"
  | Date _ -> "date"

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash i
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d, 'D')

(* Civil-date conversions after Howard Hinnant's algorithms. *)
let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let date_of_ymd ~y ~m ~d = Date (days_from_civil ~y ~m ~d)
let ymd_of_date = civil_from_days

let parse_date s =
  if String.length s = 10 && s.[4] = '-' && s.[7] = '-' then
    match
      ( int_of_string_opt (String.sub s 0 4),
        int_of_string_opt (String.sub s 5 2),
        int_of_string_opt (String.sub s 8 2) )
    with
    | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
      Some (date_of_ymd ~y ~m ~d)
    | _ -> None
  else None

let arith_error op a b =
  raise
    (Type_error
       (Printf.sprintf "cannot %s %s and %s" op (type_name a) (type_name b)))

let add a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | Date x, Int y | Int y, Date x -> Date (x + y)
  | Str x, Str y -> Str (x ^ y)
  | _ -> arith_error "add" a b

let sub a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x - y)
  | Date x, Int y -> Date (x - y)
  | Date x, Date y -> Int (x - y)
  | _ -> arith_error "subtract" a b

let mul a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x * y)
  | _ -> arith_error "multiply" a b

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> raise (Type_error "division by zero")
  | Int x, Int y -> Int (x / y)
  | _ -> arith_error "divide" a b

let is_truthy = function
  | Bool b -> b
  | Null -> false
  | v -> raise (Type_error ("condition evaluated to " ^ type_name v))

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Str s -> s
  | Date d ->
    let y, m, dd = civil_from_days d in
    Printf.sprintf "%04d-%02d-%02d" y m dd

let pp ppf v =
  match v with
  | Str s -> Format.fprintf ppf "'%s'" s
  | _ -> Format.pp_print_string ppf (to_string v)

let of_literal s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match parse_date s with
    | Some d -> d
    | None -> (
      match s with
      | "true" -> Bool true
      | "false" -> Bool false
      | "NULL" | "null" -> Null
      | _ -> Str s))
