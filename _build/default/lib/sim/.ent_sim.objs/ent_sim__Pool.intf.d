lib/sim/pool.mli:
