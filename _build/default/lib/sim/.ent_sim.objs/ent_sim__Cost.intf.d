lib/sim/cost.mli:
