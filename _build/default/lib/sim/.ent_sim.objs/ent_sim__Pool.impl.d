lib/sim/pool.ml: Array Float
