lib/sim/cost.ml:
