type t = { clocks : float array }

let create ~connections =
  if connections <= 0 then invalid_arg "Pool.create: connections must be positive";
  { clocks = Array.make connections 0.0 }

let connections t = Array.length t.clocks

let least_loaded t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c < t.clocks.(!best) then best := i) t.clocks;
  !best

let add_work t conn work = t.clocks.(conn) <- t.clocks.(conn) +. work

let now t = Array.fold_left Float.max 0.0 t.clocks

let barrier t work =
  let m = now t +. work in
  Array.fill t.clocks 0 (Array.length t.clocks) m

let advance_to t time =
  Array.iteri (fun i c -> if c < time then t.clocks.(i) <- time) t.clocks

let reset t = Array.fill t.clocks 0 (Array.length t.clocks) 0.0

let loads t = Array.copy t.clocks
