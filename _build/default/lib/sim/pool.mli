(** A simulated connection pool.

    As in MySQL (§5.2.1), one transaction runs per connection, so the
    number of connections caps concurrency. Each connection carries a
    virtual clock; work assigned to a connection extends its clock.
    Middle-tier phases that involve every in-flight transaction
    (entangled query evaluation) are barriers: all connections
    synchronize to the latest clock first. *)

type t

val create : connections:int -> t
val connections : t -> int

(** Pick the connection that frees up earliest (deterministic
    tie-break: lowest index). *)
val least_loaded : t -> int

(** Add [work] seconds to connection [conn]'s clock. *)
val add_work : t -> int -> float -> unit

(** Advance every connection to the maximum clock (barrier), then add
    [work] seconds of centralized middle-tier time to all. *)
val barrier : t -> float -> unit

(** Current simulated time: the maximum connection clock. *)
val now : t -> float

(** Advance every connection at least to [time] (e.g. when a new run
    starts at an arrival timestamp later than all current work). *)
val advance_to : t -> float -> unit

(** Reset all clocks to zero. *)
val reset : t -> unit

(** Per-connection clock snapshot (diagnostics). *)
val loads : t -> float array
