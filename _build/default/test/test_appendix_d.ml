(* The exact Appendix D workload transactions, near-verbatim (tuple
   parentheses added where the paper's informal SQL omits them), over
   the paper's schema:

     Reserve(uid, fid)   Friends(uid1, uid2)
     Flight(source, destination, fid)   User(uid, hometown)

   Notable details exercised here: the ANSWER relation is called
   Reserve, the same name as a database table — answer relations are
   conceptual and must not collide with the catalog; and the entangled
   example coordinates users 36513 and 45747 on DIFFERENT destinations
   ('CAT' vs 'PHF'): each books their trip only if the friend books
   theirs. *)

open Ent_storage
open Ent_core

let build () =
  let m = Manager.create () in
  Manager.define_table m "User" [ ("uid", Schema.T_int); ("hometown", Schema.T_str) ];
  Manager.define_table m "Friends" [ ("uid1", Schema.T_int); ("uid2", Schema.T_int) ];
  Manager.define_table m "Flight"
    [ ("source", Schema.T_str); ("destination", Schema.T_str); ("fid", Schema.T_int) ];
  Manager.define_table m "Reserve" [ ("uid", Schema.T_int); ("fid", Schema.T_int) ];
  List.iter
    (fun (uid, home) -> Manager.load_row m "User" [ Int uid; Str home ])
    [ (36513, "ITH"); (45747, "ITH"); (99999, "SFO") ];
  List.iter
    (fun (a, b) -> Manager.load_row m "Friends" [ Int a; Int b ])
    [ (36513, 45747); (45747, 36513); (36513, 99999) ];
  List.iter
    (fun (src, dst, fid) -> Manager.load_row m "Flight" [ Str src; Str dst; Int fid ])
    [ ("ITH", "FAT", 1); ("ITH", "CAT", 2); ("ITH", "PHF", 3); ("SFO", "FAT", 4) ];
  m

let reservations m =
  List.map
    (fun row -> (Value.to_string row.(0), Value.to_string row.(1)))
    (Manager.query m "SELECT uid, fid FROM Reserve ORDER BY uid")

(* Appendix D, first workload (No-Social) — verbatim. *)
let nosocial =
  "BEGIN TRANSACTION;\n\
   SELECT @uid, @hometown FROM User WHERE uid=36513;\n\
   SELECT @fid FROM Flight WHERE source=@hometown AND destination='FAT';\n\
   INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);\n\
   COMMIT;"

let test_nosocial_verbatim () =
  let m = build () in
  let id = Manager.submit_string m nosocial in
  Manager.drain m;
  Alcotest.(check bool) "committed" true
    (Manager.outcome m id = Some Scheduler.Committed);
  Alcotest.(check (list (pair string string))) "reserved ITH->FAT"
    [ ("36513", "1") ] (reservations m)

(* Appendix D, second workload (Social) — verbatim. *)
let social =
  "BEGIN TRANSACTION;\n\
   SELECT @uid, @hometown FROM User WHERE uid=36513;\n\
   SELECT uid2 FROM Friends, User as u1, User as u2\n\
   WHERE Friends.uid1=@uid\n\
   AND Friends.uid2=u2.uid\n\
   AND u1.uid=@uid\n\
   AND u1.hometown=u2.hometown\n\
   LIMIT 1;\n\
   SELECT @fid FROM Flight WHERE source=@hometown AND destination='FAT';\n\
   INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);\n\
   COMMIT;"

let test_social_verbatim () =
  let m = build () in
  let id = Manager.submit_string m social in
  Manager.drain m;
  Alcotest.(check bool) "committed" true
    (Manager.outcome m id = Some Scheduler.Committed);
  Alcotest.(check (list (pair string string))) "reserved"
    [ ("36513", "1") ] (reservations m)

(* Appendix D, third workload (Entangled) — near-verbatim: user 45747
   coordinates with friend 36513; 36513 will fly to 'CAT' iff 45747
   flies to 'PHF'. *)
let entangled_45747 =
  "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
   SELECT @hometown FROM User WHERE uid=45747;\n\
   SELECT 45747 AS @uid, 'PHF' AS @destination\n\
   INTO ANSWER Reserve\n\
   WHERE (45747, 36513) IN\n\
  \   (SELECT uid1, uid2 FROM Friends, User as u1, User as u2\n\
  \    WHERE Friends.uid1=45747 AND Friends.uid2=36513\n\
  \    AND u1.uid=45747 AND u2.uid=36513\n\
  \    AND u1.hometown=u2.hometown)\n\
   AND (36513, 'CAT') IN ANSWER Reserve\n\
   CHOOSE 1;\n\
   SELECT @fid FROM Flight WHERE source=@hometown AND destination=@destination;\n\
   INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);\n\
   COMMIT;"

(* The paper shows one side; the partner's symmetric intent. *)
let entangled_36513 =
  "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
   SELECT @hometown FROM User WHERE uid=36513;\n\
   SELECT 36513 AS @uid, 'CAT' AS @destination\n\
   INTO ANSWER Reserve\n\
   WHERE (36513, 45747) IN\n\
  \   (SELECT uid1, uid2 FROM Friends, User as u1, User as u2\n\
  \    WHERE Friends.uid1=36513 AND Friends.uid2=45747\n\
  \    AND u1.uid=36513 AND u2.uid=45747\n\
  \    AND u1.hometown=u2.hometown)\n\
   AND (45747, 'PHF') IN ANSWER Reserve\n\
   CHOOSE 1;\n\
   SELECT @fid FROM Flight WHERE source=@hometown AND destination=@destination;\n\
   INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);\n\
   COMMIT;"

let test_entangled_verbatim () =
  let m = build () in
  let a = Manager.submit_string m entangled_45747 in
  let b = Manager.submit_string m entangled_36513 in
  Manager.drain m;
  Alcotest.(check bool) "45747 committed" true
    (Manager.outcome m a = Some Scheduler.Committed);
  Alcotest.(check bool) "36513 committed" true
    (Manager.outcome m b = Some Scheduler.Committed);
  (* 36513 flies ITH->CAT (fid 2); 45747 flies ITH->PHF (fid 3) *)
  Alcotest.(check (list (pair string string))) "cross-destination trips"
    [ ("36513", "2"); ("45747", "3") ]
    (reservations m)

let test_entangled_alone_waits () =
  let m = build () in
  let a = Manager.submit_string m entangled_45747 in
  Manager.drain m;
  Alcotest.(check bool) "no outcome yet" true (Manager.outcome m a = None);
  Alcotest.(check (list (pair string string))) "no reservations" [] (reservations m);
  (* two days pass: the paper's timeout expires *)
  Manager.advance_time m (2.0 *. 86400.0);
  Manager.drain m;
  Alcotest.(check bool) "timed out" true
    (Manager.outcome m a = Some Scheduler.Timed_out)

let test_answer_relation_name_does_not_collide () =
  (* the ANSWER relation Reserve is conceptual: coordinating through it
     must not touch the Reserve TABLE until the booking inserts run *)
  let m = build () in
  let a = Manager.submit_string m entangled_45747 in
  let b = Manager.submit_string m entangled_36513 in
  Manager.drain m;
  ignore (a, b);
  Alcotest.(check int) "exactly the two booked rows" 2
    (List.length (reservations m));
  (* answer tuples carried (uid, destination); table rows carry (uid, fid) *)
  match Manager.answers_of m a with
  | [ ("Reserve", [ Value.Int 45747; Value.Str "PHF" ]) ] -> ()
  | _ -> Alcotest.fail "answer tuple shape"

let () =
  Alcotest.run "appendix-d"
    [ ( "workloads",
        [ Alcotest.test_case "no-social verbatim" `Quick test_nosocial_verbatim;
          Alcotest.test_case "social verbatim" `Quick test_social_verbatim;
          Alcotest.test_case "entangled verbatim" `Quick test_entangled_verbatim;
          Alcotest.test_case "entangled alone + timeout" `Quick test_entangled_alone_waits;
          Alcotest.test_case "answer relation vs table name" `Quick
            test_answer_relation_name_does_not_collide ] ) ]
