(* Tests for interactive entangled transactions (the §4 "Interactivity"
   extension): statement-at-a-time sessions, online partner matching,
   group commit across sessions, widowed-transaction prevention. *)

open Ent_storage
open Ent_core

let fresh_hub () =
  let catalog = Catalog.create () in
  let engine = Ent_txn.Engine.create ~wal:true catalog in
  ignore
    (Ent_txn.Engine.create_table engine "Flights"
       (Schema.make [ { name = "fno"; ty = T_int }; { name = "dest"; ty = T_str } ]));
  ignore
    (Ent_txn.Engine.create_table engine "Bookings"
       (Schema.make [ { name = "who"; ty = T_str }; { name = "fno"; ty = T_int } ]));
  for i = 1 to 3 do
    ignore (Ent_txn.Engine.load engine "Flights" [| Value.Int i; Value.Str "LA" |])
  done;
  (engine, Interactive.create_hub engine)

let entangled_query me partner =
  Printf.sprintf
    "SELECT '%s', fno AS @fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
     Flights WHERE dest='LA') AND ('%s', fno) IN ANSWER R CHOOSE 1"
    me partner

let bookings engine =
  let access = Ent_sql.Eval.direct_access (Ent_txn.Engine.catalog engine) in
  match
    Ent_sql.Eval.exec_stmt access (Ent_sql.Eval.fresh_env ())
      (Ent_sql.Parser.parse_stmt "SELECT who, fno FROM Bookings")
  with
  | Ent_sql.Eval.Rows rows -> rows
  | _ -> Alcotest.fail "expected rows"

let test_classical_session () =
  let engine, hub = fresh_hub () in
  let s = Interactive.start hub in
  (match Interactive.execute s "INSERT INTO Bookings VALUES ('solo', 1)" with
  | Interactive.Affected 1 -> ()
  | _ -> Alcotest.fail "insert");
  (match Interactive.execute s "SELECT fno FROM Bookings WHERE who = 'solo'" with
  | Interactive.Rows [ [| Value.Int 1 |] ] -> ()
  | _ -> Alcotest.fail "read own write");
  (match Interactive.commit s with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "solo commit should be immediate");
  Alcotest.(check int) "booking persisted" 1 (List.length (bookings engine))

let test_online_coordination () =
  let engine, hub = fresh_hub () in
  let mickey = Interactive.start hub in
  let minnie = Interactive.start hub in
  (* Mickey asks first: no partner online yet. *)
  (match Interactive.execute mickey (entangled_query "Mickey" "Minnie") with
  | Interactive.Parked -> ()
  | _ -> Alcotest.fail "mickey should park");
  Alcotest.(check int) "one parked" 1 (Interactive.parked_count hub);
  (* Minnie arrives: both answered immediately. *)
  (match Interactive.execute minnie (entangled_query "Minnie" "Mickey") with
  | Interactive.Answered [ ("R", [ Value.Str "Minnie"; fno ]) ] ->
    (* Mickey sees the same flight at his next poll. *)
    (match Interactive.poll mickey with
    | Interactive.Answered [ ("R", [ Value.Str "Mickey"; fno' ]) ] ->
      Alcotest.(check string) "same flight" (Value.to_string fno)
        (Value.to_string fno')
    | _ -> Alcotest.fail "mickey not answered")
  | _ -> Alcotest.fail "minnie should be answered immediately");
  (* They book and commit; commit is grouped. *)
  ignore (Interactive.execute mickey "INSERT INTO Bookings VALUES ('Mickey', @fno)");
  ignore (Interactive.execute minnie "INSERT INTO Bookings VALUES ('Minnie', @fno)");
  (match Interactive.commit mickey with
  | Interactive.Commit_pending -> ()
  | _ -> Alcotest.fail "mickey must wait for minnie");
  (match Interactive.commit minnie with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "group should commit now");
  (match Interactive.poll mickey with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "mickey committed too");
  Alcotest.(check int) "both bookings" 2 (List.length (bookings engine))

let test_cancel_while_parked () =
  let _, hub = fresh_hub () in
  let mickey = Interactive.start hub in
  ignore (Interactive.execute mickey (entangled_query "Mickey" "Minnie"));
  Interactive.cancel mickey;
  (match Interactive.poll mickey with
  | Interactive.Aborted _ -> ()
  | _ -> Alcotest.fail "cancelled session should be aborted");
  Alcotest.(check int) "nothing parked" 0 (Interactive.parked_count hub);
  (* A later partner parks instead of matching the cancelled query. *)
  let minnie = Interactive.start hub in
  match Interactive.execute minnie (entangled_query "Minnie" "Mickey") with
  | Interactive.Parked -> ()
  | _ -> Alcotest.fail "minnie should park (mickey is gone)"

let test_widow_prevention_interactive () =
  let engine, hub = fresh_hub () in
  let mickey = Interactive.start hub in
  let minnie = Interactive.start hub in
  ignore (Interactive.execute mickey (entangled_query "Mickey" "Minnie"));
  ignore (Interactive.execute minnie (entangled_query "Minnie" "Mickey"));
  ignore (Interactive.execute mickey "INSERT INTO Bookings VALUES ('Mickey', @fno)");
  (* Minnie changes her mind after entangling. *)
  Interactive.cancel minnie;
  (match Interactive.poll mickey with
  | Interactive.Aborted _ -> ()
  | _ -> Alcotest.fail "mickey must be aborted with his partner");
  Alcotest.(check int) "no orphan booking" 0 (List.length (bookings engine))

let test_blocked_statement_retry () =
  let _, hub = fresh_hub () in
  let writer = Interactive.start hub in
  ignore (Interactive.execute writer "UPDATE Flights SET dest = 'SF' WHERE fno = 1");
  let reader = Interactive.start hub in
  (* full scan needs a table S lock; writer holds IX *)
  (match Interactive.execute reader "SELECT fno FROM Flights" with
  | Interactive.Blocked -> ()
  | _ -> Alcotest.fail "reader should block");
  (match Interactive.commit writer with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "writer commits");
  match Interactive.poll reader with
  | Interactive.Rows rows -> Alcotest.(check int) "reader retried" 3 (List.length rows)
  | _ -> Alcotest.fail "reader should succeed after writer commit"

let test_empty_answer_interactive () =
  (* partner present but no acceptable common value: both proceed with
     NULL bindings (Appendix B empty success) *)
  let _, hub = fresh_hub () in
  let a = Interactive.start hub in
  let b = Interactive.start hub in
  let q me partner =
    Printf.sprintf
      "SELECT '%s', fno AS @fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
       Flights WHERE dest='Mars') AND ('%s', fno) IN ANSWER R CHOOSE 1"
      me partner
  in
  ignore (Interactive.execute a (q "a" "b"));
  (match Interactive.execute b (q "b" "a") with
  | Interactive.Answered [] -> ()
  | _ -> Alcotest.fail "empty success for b");
  match Hashtbl.find_opt (Interactive.env b) "fno" with
  | Some Value.Null -> ()
  | _ -> Alcotest.fail "null binding"

let test_three_way_cycle_interactive () =
  let engine, hub = fresh_hub () in
  ignore engine;
  let users = [ "a"; "b"; "c" ] in
  let sessions = List.map (fun _ -> Interactive.start hub) users in
  let next i = List.nth users ((i + 1) mod 3) in
  List.iteri
    (fun i s ->
      let r = Interactive.execute s (entangled_query (List.nth users i) (next i)) in
      if i < 2 then
        match r with
        | Interactive.Parked -> ()
        | _ -> Alcotest.fail "early members park"
      else
        match r with
        | Interactive.Answered _ -> ()
        | _ -> Alcotest.fail "cycle should close on the last arrival")
    sessions;
  List.iter
    (fun s ->
      match Interactive.poll s with
      | Interactive.Answered _ -> ()
      | _ -> Alcotest.fail "all members answered")
    sessions

let test_api_misuse () =
  let _, hub = fresh_hub () in
  let s = Interactive.start hub in
  ignore (Interactive.execute s "INSERT INTO Bookings VALUES ('x', 1)");
  ignore (Interactive.commit s);
  (* executing on a finished session is a programming error *)
  (try
     ignore (Interactive.execute s "SELECT fno FROM Flights");
     Alcotest.fail "execute after commit accepted"
   with Invalid_argument _ -> ());
  (* committing again is idempotent, polling reports Committed *)
  (match Interactive.commit s with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "re-commit should report Committed");
  (* executing while parked is rejected (poll instead) *)
  let p = Interactive.start hub in
  ignore (Interactive.execute p (entangled_query "P" "Q"));
  (try
     ignore (Interactive.execute p "SELECT fno FROM Flights");
     Alcotest.fail "execute while parked accepted"
   with Invalid_argument _ -> ());
  Interactive.cancel p

let test_parse_error_aborts_session () =
  let _, hub = fresh_hub () in
  let s = Interactive.start hub in
  (match Interactive.execute s "SELEKT nonsense" with
  | Interactive.Aborted _ -> ()
  | _ -> Alcotest.fail "garbage should abort the session");
  match Interactive.poll s with
  | Interactive.Aborted _ -> ()
  | _ -> Alcotest.fail "stays aborted"

let test_constraint_in_interactive () =
  let engine, hub = fresh_hub () in
  Ent_txn.Engine.add_constraint engine ~name:"max-one-booking" (fun catalog ->
      match Ent_storage.Catalog.find catalog "Bookings" with
      | Some t -> Ent_storage.Table.cardinal t <= 1
      | None -> true);
  let a = Interactive.start hub in
  ignore (Interactive.execute a "INSERT INTO Bookings VALUES ('a', 1)");
  (match Interactive.commit a with
  | Interactive.Committed -> ()
  | _ -> Alcotest.fail "first booking fine");
  let b = Interactive.start hub in
  ignore (Interactive.execute b "INSERT INTO Bookings VALUES ('b', 2)");
  match Interactive.commit b with
  | Interactive.Aborted _ -> ()
  | _ -> Alcotest.fail "second booking must violate"

let () =
  Alcotest.run "interactive"
    [ ( "sessions",
        [ Alcotest.test_case "classical" `Quick test_classical_session;
          Alcotest.test_case "online coordination" `Quick test_online_coordination;
          Alcotest.test_case "cancel while parked" `Quick test_cancel_while_parked;
          Alcotest.test_case "widow prevention" `Quick test_widow_prevention_interactive;
          Alcotest.test_case "blocked retry" `Quick test_blocked_statement_retry;
          Alcotest.test_case "empty answer" `Quick test_empty_answer_interactive;
          Alcotest.test_case "three-way cycle" `Quick test_three_way_cycle_interactive;
          Alcotest.test_case "api misuse" `Quick test_api_misuse;
          Alcotest.test_case "parse error aborts" `Quick test_parse_error_aborts_session;
          Alcotest.test_case "constraints" `Quick test_constraint_in_interactive ] ) ]
