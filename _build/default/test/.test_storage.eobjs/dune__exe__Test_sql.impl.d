test/test_sql.ml: Alcotest Array Ast Catalog Ent_sql Ent_storage Eval Hashtbl Lexer List Parser Pretty Printf QCheck2 QCheck_alcotest Schema String Table Tuple Value
