test/test_storage.ml: Alcotest Catalog Ent_storage Hashtbl Int List Option Ordered_index Printf QCheck2 QCheck_alcotest Schema Stdlib Table Tuple Value
