test/test_sim.ml: Alcotest Array Cost Ent_core Ent_sim Fun List Pool QCheck2 QCheck_alcotest
