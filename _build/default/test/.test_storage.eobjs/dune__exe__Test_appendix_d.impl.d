test/test_appendix_d.ml: Alcotest Array Ent_core Ent_storage List Manager Scheduler Schema Value
