test/test_workload.ml: Alcotest Ent_core Ent_storage Ent_workload Filename Fun Gen List Manager Printf Program QCheck2 QCheck_alcotest Scheduler Social_graph Sys Travel
