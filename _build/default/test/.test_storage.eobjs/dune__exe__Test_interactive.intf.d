test/test_interactive.mli:
