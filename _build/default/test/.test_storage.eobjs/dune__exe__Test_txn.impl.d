test/test_txn.ml: Alcotest Array Catalog Engine Ent_core Ent_sql Ent_storage Ent_txn List Lock Option Printf Program QCheck2 QCheck_alcotest Recovery Schema String Table Tuple Value Wal
