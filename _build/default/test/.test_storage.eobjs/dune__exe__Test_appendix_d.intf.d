test/test_appendix_d.mli:
