test/test_entangle.mli:
