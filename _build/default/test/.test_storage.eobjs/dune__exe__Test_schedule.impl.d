test/test_schedule.ml: Abstract Alcotest Anomaly Array Conflict Ent_core Ent_schedule Ent_storage Ent_txn Format History List Manager Option Printf QCheck2 QCheck_alcotest Recorder Scheduler
