test/test_interactive.ml: Alcotest Catalog Ent_core Ent_sql Ent_storage Ent_txn Hashtbl Interactive List Printf Schema Value
