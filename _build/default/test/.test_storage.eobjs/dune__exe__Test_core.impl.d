test/test_core.ml: Alcotest Catalog Ent_core Ent_storage Ent_txn Isolation List Manager Oracle Printf Program QCheck2 QCheck_alcotest Scheduler Schema String Table Tuple Value
