test/test_entangle.ml: Alcotest Ast Catalog Combined Coordinate Ent_entangle Ent_sql Ent_storage Eval Ground Hashtbl Int Ir List Parser Printf QCheck2 QCheck_alcotest Schema Table Translate Value
