(* Social game: Farmville-style collaborative gameplay (one of the
   paper's motivating domains, §1).

   Four players build a communal barn. Each contributes one resource,
   but only if the whole circle agrees on the SAME resource type —
   player i pledges "I chip in resource r if my left neighbour does
   too". That is a cyclic entanglement structure: the choice must go
   all the way around, and the only resource every player owns is wood,
   so coordination must discover it. A fifth player tries to join a
   different circle that doesn't exist and times out.

   Run with: dune exec examples/social_game.exe *)

open Ent_storage
open Ent_core

let players = [| "alice"; "bob"; "carol"; "dave" |]

let pledge me neighbour =
  Printf.sprintf
    "BEGIN TRANSACTION WITH TIMEOUT 1 HOURS;\n\
     SELECT '%s', res AS @resource INTO ANSWER Barn\n\
     WHERE (res) IN (SELECT resource FROM Inventory WHERE player='%s')\n\
     AND ('%s', res) IN ANSWER Barn\n\
     CHOOSE 1;\n\
     DELETE FROM Inventory WHERE player='%s' AND resource=@resource;\n\
     INSERT INTO Barn_contributions VALUES ('%s', @resource);\n\
     COMMIT;"
    me me neighbour me me

let () =
  let m = Manager.create () in
  Manager.define_table m "Inventory"
    [ ("player", Schema.T_str); ("resource", Schema.T_str) ];
  Manager.define_table m "Barn_contributions"
    [ ("player", Schema.T_str); ("resource", Schema.T_str) ];
  (* Everyone owns wood; the rest of the inventories diverge. *)
  List.iter
    (fun (p, r) -> Manager.load_row m "Inventory" [ Str p; Str r ])
    [ ("alice", "stone"); ("alice", "wood");
      ("bob", "wood"); ("bob", "wheat");
      ("carol", "bricks"); ("carol", "wood");
      ("dave", "wood"); ("dave", "stone") ];

  let ids =
    Array.to_list
      (Array.mapi
         (fun i me ->
           let neighbour = players.((i + Array.length players - 1) mod Array.length players) in
           (me, Manager.submit_string m ~label:me (pledge me neighbour)))
         players)
  in
  let loner =
    Manager.submit_string m ~label:"eve"
      "BEGIN TRANSACTION WITH TIMEOUT 0 SECONDS;\n\
       SELECT 'eve', res AS @resource INTO ANSWER Greenhouse\n\
       WHERE (res) IN (SELECT resource FROM Inventory WHERE player='eve')\n\
       AND ('mallory', res) IN ANSWER Greenhouse\n\
       CHOOSE 1;\n\
       INSERT INTO Barn_contributions VALUES ('eve', @resource);\n\
       COMMIT;"
  in
  Manager.drain m;

  List.iter
    (fun (name, id) ->
      match Manager.outcome m id with
      | Some Scheduler.Committed -> Printf.printf "%-6s contributed\n" name
      | _ -> Printf.printf "%-6s failed to contribute\n" name)
    ids;
  (match Manager.outcome m loner with
  | Some Scheduler.Timed_out ->
    print_endline "eve    timed out (her circle never formed)"
  | _ -> print_endline "eve    unexpected outcome");

  print_endline "\nBarn contributions (everyone agreed on one resource):";
  List.iter
    (fun row ->
      Printf.printf "   %-6s -> %s\n"
        (Value.to_string row.(0)) (Value.to_string row.(1)))
    (Manager.query m "SELECT player, resource FROM Barn_contributions");
  print_endline "\nRemaining inventory:";
  List.iter
    (fun row ->
      Printf.printf "   %-6s %s\n"
        (Value.to_string row.(0)) (Value.to_string row.(1)))
    (Manager.query m "SELECT player, resource FROM Inventory")
