examples/charity_matching.mli:
