examples/course_enrollment.ml: Array Ent_core Ent_storage List Manager Printf Scheduler Schema Value
