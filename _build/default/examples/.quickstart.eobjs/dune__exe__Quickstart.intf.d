examples/quickstart.mli:
