examples/social_game.mli:
