examples/travel_planning.ml: Array Ent_core Ent_storage List Manager Printf Scheduler Schema Value
