examples/quickstart.ml: Ent_core Ent_storage List Manager Printf Scheduler Schema String Value
