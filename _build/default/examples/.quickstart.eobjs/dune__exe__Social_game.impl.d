examples/social_game.ml: Array Ent_core Ent_storage List Manager Printf Scheduler Schema Value
