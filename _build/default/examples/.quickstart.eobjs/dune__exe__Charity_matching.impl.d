examples/charity_matching.ml: Array Ent_core Ent_storage List Manager Printf Scheduler Schema String Value
