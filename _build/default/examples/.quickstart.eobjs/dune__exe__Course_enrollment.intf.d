examples/course_enrollment.mli:
