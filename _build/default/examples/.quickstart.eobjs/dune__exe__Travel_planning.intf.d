examples/travel_planning.mli:
