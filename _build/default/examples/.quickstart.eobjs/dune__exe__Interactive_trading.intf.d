examples/interactive_trading.mli:
