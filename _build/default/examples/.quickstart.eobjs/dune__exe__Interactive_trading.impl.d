examples/interactive_trading.ml: Array Catalog Ent_core Ent_sql Ent_storage Ent_txn Interactive List Printf Schema String Value
