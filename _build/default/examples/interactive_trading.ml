(* Interactive entangled transactions (the §4 "Interactivity" model,
   suited to social games): players come online one at a time, type
   statements, and wait at entangled queries until a partner shows up.

   Pat wants to trade a resource with Quinn: each gives one item iff
   the other gives one back at an agreed price. Pat arrives first and
   parks; Quinn arrives later and the trade clears online. Meanwhile
   Riley parks a trade request nobody answers, gets bored, and cancels.

   Run with: dune exec examples/interactive_trading.exe *)

open Ent_storage
open Ent_core

let trade_query me partner =
  Printf.sprintf
    "SELECT '%s', price AS @price INTO ANSWER Trade\n\
     WHERE (price) IN (SELECT price FROM Offers WHERE player='%s')\n\
     AND ('%s', price) IN ANSWER Trade\n\
     CHOOSE 1"
    me me partner

let show who reply =
  (match reply with
  | Interactive.Rows rows ->
    Printf.printf "%-6s rows: %d\n" who (List.length rows)
  | Interactive.Affected n -> Printf.printf "%-6s ok (%d row)\n" who n
  | Interactive.Answered atoms ->
    Printf.printf "%-6s matched! answers:" who;
    List.iter
      (fun (rel, values) ->
        Printf.printf " %s(%s)" rel
          (String.concat ", " (List.map Value.to_string values)))
      atoms;
    print_newline ()
  | Interactive.Parked -> Printf.printf "%-6s waiting for a partner...\n" who
  | Interactive.Committed -> Printf.printf "%-6s committed\n" who
  | Interactive.Commit_pending -> Printf.printf "%-6s waiting for partner's commit\n" who
  | Interactive.Blocked -> Printf.printf "%-6s blocked on a lock\n" who
  | Interactive.Aborted reason -> Printf.printf "%-6s aborted (%s)\n" who reason);
  reply

let () =
  let catalog = Catalog.create () in
  let engine = Ent_txn.Engine.create ~wal:true catalog in
  ignore
    (Ent_txn.Engine.create_table engine "Offers"
       (Schema.make [ { name = "player"; ty = T_str }; { name = "price"; ty = T_int } ]));
  ignore
    (Ent_txn.Engine.create_table engine "Trades"
       (Schema.make [ { name = "player"; ty = T_str }; { name = "price"; ty = T_int } ]));
  (* acceptable prices per player: they overlap at 30 *)
  List.iter
    (fun (p, price) ->
      ignore (Ent_txn.Engine.load engine "Offers" [| Value.Str p; Value.Int price |]))
    [ ("pat", 25); ("pat", 30); ("quinn", 30); ("quinn", 35); ("riley", 99) ];
  let hub = Interactive.create_hub engine in

  print_endline "-- Pat comes online and asks to trade with Quinn:";
  let pat = Interactive.start hub in
  ignore (show "pat" (Interactive.execute pat (trade_query "pat" "quinn")));

  print_endline "-- Riley asks to trade with someone who never shows up:";
  let riley = Interactive.start hub in
  ignore (show "riley" (Interactive.execute riley (trade_query "riley" "sam")));

  print_endline "-- Quinn comes online; the trade clears at the common price:";
  let quinn = Interactive.start hub in
  ignore (show "quinn" (Interactive.execute quinn (trade_query "quinn" "pat")));
  ignore (show "pat" (Interactive.poll pat));

  print_endline "-- both record the trade and commit (group commit):";
  ignore (Interactive.execute pat "INSERT INTO Trades VALUES ('pat', @price)");
  ignore (Interactive.execute quinn "INSERT INTO Trades VALUES ('quinn', @price)");
  ignore (show "pat" (Interactive.commit pat));
  ignore (show "quinn" (Interactive.commit quinn));
  ignore (show "pat" (Interactive.poll pat));

  print_endline "-- Riley gives up:";
  Interactive.cancel riley;
  ignore (show "riley" (Interactive.poll riley));

  print_endline "\nTrades table:";
  let access = Ent_sql.Eval.direct_access catalog in
  (match
     Ent_sql.Eval.exec_stmt access (Ent_sql.Eval.fresh_env ())
       (Ent_sql.Parser.parse_stmt "SELECT player, price FROM Trades")
   with
  | Ent_sql.Eval.Rows rows ->
    List.iter
      (fun row ->
        Printf.printf "   %-6s at price %s\n" (Value.to_string row.(0))
          (Value.to_string row.(1)))
      rows
  | _ -> ())
