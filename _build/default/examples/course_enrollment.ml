(* Course enrollment (the paper cites CourseRank-style social course
   planning as a coordination domain): friends want to enroll in the
   same section of a course, subject to individual schedule
   constraints, and seats are limited.

   Alice is free only in the morning; Ben avoids Friday sections; the
   entangled queries find the section satisfying everyone, and the
   enrollment updates seat counts transactionally. A second pair then
   tries to coordinate on the last remaining seat pair — and succeeds
   in a different section because coordination checks capacity in the
   grounding.

   Run with: dune exec examples/course_enrollment.exe *)

open Ent_storage
open Ent_core

let enroll_program me partner course constraint_sql =
  Printf.sprintf
    "BEGIN TRANSACTION WITH TIMEOUT 1 DAYS;\n\
     SELECT '%s', sec AS @sec INTO ANSWER Enroll\n\
     WHERE (sec) IN (SELECT section FROM Sections\n\
    \                WHERE course='%s' AND seats >= 2%s)\n\
     AND ('%s', sec) IN ANSWER Enroll\n\
     CHOOSE 1;\n\
     UPDATE Sections SET seats = seats - 1 WHERE section = @sec;\n\
     INSERT INTO Enrolled VALUES ('%s', @sec);\n\
     COMMIT;"
    me course constraint_sql partner me

let () =
  let m = Manager.create () in
  Manager.define_table m "Sections"
    [ ("course", Schema.T_str);
      ("section", Schema.T_int);
      ("slot", Schema.T_str);
      ("day", Schema.T_str);
      ("seats", Schema.T_int) ];
  Manager.define_table m "Enrolled"
    [ ("student", Schema.T_str); ("section", Schema.T_int) ];
  List.iter
    (fun (sec, slot, day, seats) ->
      Manager.load_row m "Sections"
        [ Str "CS4320"; Int sec; Str slot; Str day; Int seats ])
    [ (1, "morning", "Mon", 2); (2, "afternoon", "Wed", 30); (3, "morning", "Fri", 30) ];

  (* Alice: mornings only. Ben: not Friday. Only section 1 fits both. *)
  let alice =
    Manager.submit_string m
      (enroll_program "alice" "ben" "CS4320" " AND slot='morning'")
  in
  let ben =
    Manager.submit_string m
      (enroll_program "ben" "alice" "CS4320" " AND NOT day='Fri'")
  in
  Manager.drain m;

  (* Section 1 is now full (2 seats taken): the next pair with the same
     constraints cannot use it; Carol is flexible, Dan avoids Friday, so
     they land in section 2. *)
  let carol = Manager.submit_string m (enroll_program "carol" "dan" "CS4320" "") in
  let dan =
    Manager.submit_string m (enroll_program "dan" "carol" "CS4320" " AND NOT day='Fri'")
  in
  Manager.drain m;

  List.iter
    (fun (name, id) ->
      match Manager.outcome m id with
      | Some Scheduler.Committed -> Printf.printf "%-6s enrolled\n" name
      | _ -> Printf.printf "%-6s NOT enrolled\n" name)
    [ ("alice", alice); ("ben", ben); ("carol", carol); ("dan", dan) ];

  print_endline "\nEnrollments:";
  List.iter
    (fun row ->
      Printf.printf "   %-6s section %s\n" (Value.to_string row.(0))
        (Value.to_string row.(1)))
    (Manager.query m "SELECT student, section FROM Enrolled ORDER BY section");
  print_endline "Remaining seats:";
  List.iter
    (fun row ->
      Printf.printf "   section %s: %s seat(s)\n" (Value.to_string row.(0))
        (Value.to_string row.(1)))
    (Manager.query m "SELECT section, seats FROM Sections ORDER BY section")
