(* Charity gift matching (the paper cites Conitzer & Sandholm's
   expressive negotiation over donations as a motivating domain).

   A matcher pledges to match donations, but only to a charity some
   donor actually gives to — and each donor only gives if the matcher
   matches them. This is a spoke-hub entanglement: the matcher's
   transaction carries one entangled query per donor. The coordinated
   choice picks, per donor, a charity acceptable to both sides.

   Run with: dune exec examples/charity_matching.exe *)

open Ent_storage
open Ent_core

let donors = [ ("dana", 50); ("eli", 30); ("fay", 20) ]

(* The matcher accepts any charity from its approved list, one query
   per donor; tags keep the per-donor coordinations apart. *)
let matcher_transaction =
  let query i (donor, _) =
    Printf.sprintf
      "SELECT 'matchco', %d, c AS @c%d INTO ANSWER Match\n\
       WHERE (c) IN (SELECT name FROM Charities WHERE approved_by='matchco')\n\
       AND ('%s', %d, c) IN ANSWER Match\n\
       CHOOSE 1;\n\
       INSERT INTO Donations VALUES ('matchco', @c%d, 100)"
      i i donor i i
  in
  "BEGIN TRANSACTION WITH TIMEOUT 1 DAYS;\n"
  ^ String.concat ";\n" (List.mapi query donors)
  ^ ";\nCOMMIT;"

let donor_transaction i (donor, amount) =
  Printf.sprintf
    "BEGIN TRANSACTION WITH TIMEOUT 1 DAYS;\n\
     SELECT '%s', %d, c AS @c INTO ANSWER Match\n\
     WHERE (c) IN (SELECT name FROM Charities WHERE approved_by='%s')\n\
     AND ('matchco', %d, c) IN ANSWER Match\n\
     CHOOSE 1;\n\
     INSERT INTO Donations VALUES ('%s', @c, %d);\n\
     COMMIT;"
    donor i donor i donor amount

let () =
  let m = Manager.create () in
  Manager.define_table m "Charities"
    [ ("name", Schema.T_str); ("approved_by", Schema.T_str) ];
  Manager.define_table m "Donations"
    [ ("who", Schema.T_str); ("charity", Schema.T_str); ("amount", Schema.T_int) ];
  (* matchco approves two charities; each donor has their own list
     overlapping it in exactly one. *)
  List.iter
    (fun (c, by) -> Manager.load_row m "Charities" [ Str c; Str by ])
    [ ("redcross", "matchco"); ("unicef", "matchco");
      ("redcross", "dana");
      ("unicef", "eli");
      ("redcross", "fay"); ("unicef", "fay") ];

  let matcher = Manager.submit_string m ~label:"matchco" matcher_transaction in
  let donor_ids =
    List.mapi
      (fun i d -> Manager.submit_string m ~label:(fst d) (donor_transaction i d))
      donors
  in
  Manager.drain m;

  let name_of = function
    | Some Scheduler.Committed -> "committed"
    | Some Scheduler.Timed_out -> "timed out"
    | Some Scheduler.Rolled_back -> "rolled back"
    | Some (Scheduler.Errored e) -> "error: " ^ e
    | None -> "pending"
  in
  Printf.printf "matcher: %s\n" (name_of (Manager.outcome m matcher));
  List.iteri
    (fun i id ->
      Printf.printf "%-6s: %s\n" (fst (List.nth donors i))
        (name_of (Manager.outcome m id)))
    donor_ids;

  print_endline "\nDonations:";
  let total = ref 0 in
  List.iter
    (fun row ->
      (match row.(2) with
      | Value.Int a -> total := !total + a
      | _ -> ());
      Printf.printf "   %-8s %-9s %s\n"
        (Value.to_string row.(0)) (Value.to_string row.(1))
        (Value.to_string row.(2)))
    (Manager.query m "SELECT who, charity, amount FROM Donations");
  Printf.printf "total raised: %d (donors gave %d, matching added the rest)\n"
    !total
    (List.fold_left (fun acc (_, a) -> acc + a) 0 donors)
