(* Quickstart: the paper's running example (Section 2 / Figure 1).

   Mickey and Minnie want to fly to Los Angeles on the same flight.
   Each submits an entangled transaction; the system answers both
   queries with a coordinated choice of flight and commits the two
   bookings atomically as a group.

   Run with: dune exec examples/quickstart.exe *)

open Ent_storage
open Ent_core

let date y m d = Value.date_of_ymd ~y ~m ~d

let () =
  (* 1. Build a system and load the Figure 1 database. *)
  let m = Manager.create () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Airlines"
    [ ("fno", Schema.T_int); ("airline", Schema.T_str) ];
  Manager.define_table m "Bookings"
    [ ("passenger", Schema.T_str); ("fno", Schema.T_int); ("fdate", Schema.T_date) ];
  List.iter
    (fun (fno, d, dest) -> Manager.load_row m "Flights" [ Int fno; d; Str dest ])
    [ (122, date 2011 5 3, "LA");
      (123, date 2011 5 4, "LA");
      (124, date 2011 5 3, "LA");
      (235, date 2011 5 5, "Paris") ];
  List.iter
    (fun (fno, airline) -> Manager.load_row m "Airlines" [ Int fno; Str airline ])
    [ (122, "United"); (123, "United"); (124, "USAir"); (235, "Delta") ];

  (* 2. Mickey's entangled transaction: any flight to LA, as long as
        Minnie is on it. *)
  let mickey =
    Manager.submit_string m ~label:"mickey"
      "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
       SELECT 'Mickey', fno AS @fno, fdate AS @fdate INTO ANSWER Reservation\n\
       WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
       AND ('Minnie', fno, fdate) IN ANSWER Reservation\n\
       CHOOSE 1;\n\
       INSERT INTO Bookings VALUES ('Mickey', @fno, @fdate);\n\
       COMMIT;"
  in

  (* 3. Minnie agrees to coordinate — but flies United only. *)
  let minnie =
    Manager.submit_string m ~label:"minnie"
      "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
       SELECT 'Minnie', fno AS @fno, fdate AS @fdate INTO ANSWER Reservation\n\
       WHERE (fno, fdate) IN\n\
      \  (SELECT F.fno, F.fdate FROM Flights F, Airlines A\n\
      \   WHERE F.dest='LA' AND F.fno = A.fno AND A.airline = 'United')\n\
       AND ('Mickey', fno, fdate) IN ANSWER Reservation\n\
       CHOOSE 1;\n\
       INSERT INTO Bookings VALUES ('Minnie', @fno, @fdate);\n\
       COMMIT;"
  in

  (* 4. Drive the system to completion. *)
  Manager.drain m;

  let show id name =
    match Manager.outcome m id with
    | Some Scheduler.Committed ->
      Printf.printf "%-7s committed; answer tuples:\n" name;
      List.iter
        (fun (rel, values) ->
          Printf.printf "   %s(%s)\n" rel
            (String.concat ", " (List.map Value.to_string values)))
        (Manager.answers_of m id)
    | Some other ->
      Printf.printf "%-7s did not commit (%s)\n" name
        (match other with
        | Scheduler.Timed_out -> "timed out"
        | Scheduler.Rolled_back -> "rolled back"
        | Scheduler.Errored e -> e
        | Scheduler.Committed -> assert false)
    | None -> Printf.printf "%-7s still waiting for a partner\n" name
  in
  show mickey "Mickey";
  show minnie "Minnie";

  print_endline "\nBookings table:";
  List.iter
    (fun row ->
      match row with
      | [| p; fno; fdate |] ->
        Printf.printf "   %-7s flight %s on %s\n" (Value.to_string p)
          (Value.to_string fno) (Value.to_string fdate)
      | _ -> ())
    (Manager.query m "SELECT passenger, fno, fdate FROM Bookings");

  let s = Manager.stats m in
  Printf.printf
    "\nruns: %d, entanglement events: %d, simulated time: %.2f ms\n"
    s.runs s.entangle_events (1000.0 *. Manager.now m)
