(* Travel planning: the Figure 2 / Figure 4 scenario.

   Mickey and Minnie coordinate on a flight AND a hotel — the hotel
   stay length depends on the arrival date chosen by the flight query,
   so the transaction needs two entangled queries with host-variable
   data flow between them. Donald, meanwhile, wants to coordinate with
   Daffy, who never shows up: his transaction cycles through the
   dormant pool and finally times out.

   Run with: dune exec examples/travel_planning.exe *)

open Ent_storage
open Ent_core

let date y m d = Value.date_of_ymd ~y ~m ~d

let travel_transaction me partner =
  Printf.sprintf
    "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
     SELECT '%s', fno AS @fno, fdate AS @ArrivalDay INTO ANSWER FlightRes\n\
     WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
     AND ('%s', fno, fdate) IN ANSWER FlightRes\n\
     CHOOSE 1;\n\
     INSERT INTO Tickets VALUES ('%s', @fno);\n\
     SET @StayLength = '2011-05-06' - @ArrivalDay;\n\
     SELECT '%s', hid AS @hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes\n\
     WHERE (hid) IN (SELECT hid FROM Hotels WHERE location='LA')\n\
     AND ('%s', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes\n\
     CHOOSE 1;\n\
     INSERT INTO Rooms VALUES ('%s', @hid, @ArrivalDay, @StayLength);\n\
     COMMIT;"
    me partner me me partner me

let () =
  let config =
    { Scheduler.default_config with trigger = Scheduler.Manual }
  in
  let m = Manager.create ~config () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Hotels"
    [ ("hid", Schema.T_int); ("location", Schema.T_str) ];
  Manager.define_table m "Tickets"
    [ ("passenger", Schema.T_str); ("fno", Schema.T_int) ];
  Manager.define_table m "Rooms"
    [ ("guest", Schema.T_str);
      ("hid", Schema.T_int);
      ("arrival", Schema.T_date);
      ("nights", Schema.T_int) ];
  List.iter
    (fun (fno, d) -> Manager.load_row m "Flights" [ Int fno; d; Str "LA" ])
    [ (122, date 2011 5 3); (123, date 2011 5 4); (124, date 2011 5 3) ];
  List.iter
    (fun hid -> Manager.load_row m "Hotels" [ Int hid; Str "LA" ])
    [ (7); (8) ];

  let mickey = Manager.submit_string m ~label:"mickey" (travel_transaction "Mickey" "Minnie") in
  let minnie = Manager.submit_string m ~label:"minnie" (travel_transaction "Minnie" "Mickey") in
  let donald =
    Manager.submit_string m ~label:"donald"
      ("BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
        SELECT 'Donald', fno AS @fno INTO ANSWER FlightRes2\n\
        WHERE (fno) IN (SELECT fno FROM Flights WHERE dest='LA')\n\
        AND ('Daffy', fno) IN ANSWER FlightRes2\n\
        CHOOSE 1;\n\
        INSERT INTO Tickets VALUES ('Donald', @fno);\n\
        COMMIT;")
  in

  print_endline "=== run 1 (Figure 4) ===";
  Manager.run_once m;
  let describe id name =
    match Manager.outcome m id with
    | Some Scheduler.Committed -> Printf.printf "%-7s COMMITTED\n" name
    | Some Scheduler.Timed_out -> Printf.printf "%-7s TIMED OUT\n" name
    | Some Scheduler.Rolled_back -> Printf.printf "%-7s ROLLED BACK\n" name
    | Some (Scheduler.Errored e) -> Printf.printf "%-7s ERROR: %s\n" name e
    | None -> Printf.printf "%-7s waiting in the dormant pool\n" name
  in
  describe mickey "Mickey";
  describe minnie "Minnie";
  describe donald "Donald";

  print_endline "\n=== later runs (Donald keeps retrying) ===";
  Manager.drain m;
  describe donald "Donald";

  print_endline "\n=== two days pass; Daffy never arrives ===";
  Manager.advance_time m (2.0 *. 86400.0);
  Manager.drain m;
  describe donald "Donald";

  print_endline "\nTickets:";
  List.iter
    (fun row ->
      Printf.printf "   %-7s flight %s\n"
        (Value.to_string row.(0)) (Value.to_string row.(1)))
    (Manager.query m "SELECT passenger, fno FROM Tickets");
  print_endline "Rooms:";
  List.iter
    (fun row ->
      Printf.printf "   %-7s hotel %s, arriving %s, %s night(s)\n"
        (Value.to_string row.(0)) (Value.to_string row.(1))
        (Value.to_string row.(2)) (Value.to_string row.(3)))
    (Manager.query m "SELECT guest, hid, arrival, nights FROM Rooms");

  let s = Manager.stats m in
  Printf.printf
    "\nruns: %d, coordination rounds: %d, entanglement events: %d, repooled: %d, timeouts: %d\n"
    s.runs s.coordination_rounds s.entangle_events s.repooled s.timeouts
