(* Tests for the transaction substrate: lock manager, engine (Strict
   2PL behaviour, savepoints, aborts), WAL and entanglement-aware
   recovery. *)

open Ent_storage
open Ent_txn

(* --- lock manager --- *)

let res_a = Lock.Table "A"
let res_row = Lock.Row ("A", 1)

let test_lock_shared_compatible () =
  let lm = Lock.create () in
  Alcotest.(check bool) "t1 S" true (Lock.request lm ~txn:1 res_a S = Granted);
  Alcotest.(check bool) "t2 S" true (Lock.request lm ~txn:2 res_a S = Granted);
  Alcotest.(check int) "two holders" 2 (List.length (Lock.holders lm res_a))

let test_lock_exclusive_conflicts () =
  let lm = Lock.create () in
  Alcotest.(check bool) "t1 X" true (Lock.request lm ~txn:1 res_a X = Granted);
  Alcotest.(check bool) "t2 S waits" true (Lock.request lm ~txn:2 res_a S = Waiting);
  Alcotest.(check (list int)) "t2 blocked by t1" [ 1 ] (Lock.blockers lm ~txn:2);
  let woken = Lock.release_all lm ~txn:1 in
  Alcotest.(check (list int)) "t2 woken" [ 2 ] woken;
  Alcotest.(check bool) "t2 now holds" true (Lock.held lm ~txn:2 res_a = Some S)

let test_lock_intention_modes () =
  let lm = Lock.create () in
  Alcotest.(check bool) "IS" true (Lock.request lm ~txn:1 res_a IS = Granted);
  Alcotest.(check bool) "IX compat IS" true (Lock.request lm ~txn:2 res_a IX = Granted);
  Alcotest.(check bool) "S conflicts IX" true (Lock.request lm ~txn:3 res_a S = Waiting);
  (* row locks under the intention locks *)
  Alcotest.(check bool) "row X" true (Lock.request lm ~txn:2 res_row X = Granted);
  Alcotest.(check bool) "row S waits" true (Lock.request lm ~txn:1 res_row S = Waiting)

let test_lock_upgrade () =
  let lm = Lock.create () in
  ignore (Lock.request lm ~txn:1 res_a S);
  Alcotest.(check bool) "upgrade S->X sole holder" true
    (Lock.request lm ~txn:1 res_a X = Granted);
  Alcotest.(check bool) "held X" true (Lock.held lm ~txn:1 res_a = Some X);
  let lm2 = Lock.create () in
  ignore (Lock.request lm2 ~txn:1 res_a S);
  ignore (Lock.request lm2 ~txn:2 res_a S);
  Alcotest.(check bool) "upgrade with reader waits" true
    (Lock.request lm2 ~txn:1 res_a X = Waiting)

let test_lock_covered_rerequest () =
  let lm = Lock.create () in
  ignore (Lock.request lm ~txn:1 res_a X);
  Alcotest.(check bool) "X covers S" true (Lock.request lm ~txn:1 res_a S = Granted);
  Alcotest.(check bool) "X covers IX" true (Lock.request lm ~txn:1 res_a IX = Granted)

let test_lock_fifo () =
  let lm = Lock.create () in
  ignore (Lock.request lm ~txn:1 res_a X);
  ignore (Lock.request lm ~txn:2 res_a X);
  ignore (Lock.request lm ~txn:3 res_a S);
  let woken = Lock.release_all lm ~txn:1 in
  (* FIFO: t2 gets X; t3 keeps waiting behind it. *)
  Alcotest.(check (list int)) "only t2" [ 2 ] woken;
  Alcotest.(check bool) "t3 still waiting" true (Lock.is_waiting lm ~txn:3);
  let woken2 = Lock.release_all lm ~txn:2 in
  Alcotest.(check (list int)) "now t3" [ 3 ] woken2

let test_lock_deadlock_detection () =
  let lm = Lock.create () in
  let res_b = Lock.Table "B" in
  ignore (Lock.request lm ~txn:1 res_a X);
  ignore (Lock.request lm ~txn:2 res_b X);
  Alcotest.(check bool) "t1 wants B" true (Lock.request lm ~txn:1 res_b X = Waiting);
  Alcotest.(check bool) "no cycle yet" true (Lock.deadlock_cycle lm ~txn:1 = None);
  Alcotest.(check bool) "t2 wants A" true (Lock.request lm ~txn:2 res_a X = Waiting);
  (match Lock.deadlock_cycle lm ~txn:2 with
  | Some _ -> ()
  | None -> Alcotest.fail "cycle not detected");
  (* Abort t2: t1 should get B. *)
  let woken = Lock.release_all lm ~txn:2 in
  Alcotest.(check (list int)) "t1 woken" [ 1 ] woken

let test_lock_waiter_removed_on_release () =
  let lm = Lock.create () in
  ignore (Lock.request lm ~txn:1 res_a X);
  ignore (Lock.request lm ~txn:2 res_a S);
  ignore (Lock.release_all lm ~txn:2);
  Alcotest.(check bool) "t2 dequeued" false (Lock.is_waiting lm ~txn:2);
  ignore (Lock.release_all lm ~txn:1);
  Alcotest.(check int) "no holders" 0 (List.length (Lock.holders lm res_a))

(* --- engine helpers --- *)

let base_schema =
  Schema.make [ { Schema.name = "k"; ty = T_int }; { Schema.name = "v"; ty = T_str } ]

let make_engine ?(wal = true) () =
  let catalog = Catalog.create () in
  let engine = Engine.create ~wal catalog in
  ignore (Engine.create_table engine "T" base_schema);
  ignore (Engine.load engine "T" [| Value.Int 1; Value.Str "one" |]);
  ignore (Engine.load engine "T" [| Value.Int 2; Value.Str "two" |]);
  engine

let exec engine txn input =
  let access = Engine.access engine txn ~grounding:false () in
  Ent_sql.Eval.exec_stmt access (Ent_sql.Eval.fresh_env ())
    (Ent_sql.Parser.parse_stmt input)

let count_rows engine txn =
  match exec engine txn "SELECT k FROM T" with
  | Ent_sql.Eval.Rows rows -> List.length rows
  | _ -> Alcotest.fail "expected rows"

(* --- engine --- *)

let test_engine_commit_visible () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  Engine.commit engine t1;
  let t2 = Engine.begin_txn engine in
  Alcotest.(check int) "sees committed insert" 3 (count_rows engine t2);
  Engine.commit engine t2

let test_engine_abort_undoes () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  ignore (exec engine t1 "UPDATE T SET v = 'ONE' WHERE k = 1");
  ignore (exec engine t1 "DELETE FROM T WHERE k = 2");
  Engine.abort engine t1;
  let t2 = Engine.begin_txn engine in
  (match exec engine t2 "SELECT v FROM T WHERE k = 1" with
  | Ent_sql.Eval.Rows [ [| Value.Str "one" |] ] -> ()
  | _ -> Alcotest.fail "update not undone");
  Alcotest.(check int) "cardinality restored" 2 (count_rows engine t2);
  Engine.commit engine t2

let test_engine_write_blocks_reader () =
  let engine = make_engine () in
  let writer = Engine.begin_txn engine in
  ignore (exec engine writer "UPDATE T SET v = 'uno' WHERE k = 1");
  let reader = Engine.begin_txn engine in
  (try
     ignore (count_rows engine reader);
     Alcotest.fail "reader not blocked by writer's IX lock"
   with Engine.Blocked b -> Alcotest.(check int) "blocked txn" reader b);
  Engine.commit engine writer;
  let woken = Engine.take_wakeups engine in
  Alcotest.(check (list int)) "reader woken" [ reader ] woken;
  Alcotest.(check int) "reader proceeds" 2 (count_rows engine reader);
  Engine.commit engine reader

let test_engine_readers_share () =
  let engine = make_engine () in
  let r1 = Engine.begin_txn engine in
  let r2 = Engine.begin_txn engine in
  Alcotest.(check int) "r1 scans" 2 (count_rows engine r1);
  Alcotest.(check int) "r2 scans" 2 (count_rows engine r2);
  Engine.commit engine r1;
  Engine.commit engine r2

let test_engine_row_locking_allows_disjoint_writes () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  let t2 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (10, 'a')");
  ignore (exec engine t2 "INSERT INTO T VALUES (11, 'b')");
  Engine.commit engine t1;
  Engine.commit engine t2;
  let t3 = Engine.begin_txn engine in
  Alcotest.(check int) "both inserts landed" 4 (count_rows engine t3);
  Engine.commit engine t3

let test_engine_deadlock_victim () =
  let engine = make_engine () in
  ignore (Engine.create_table engine "U" base_schema);
  ignore (Engine.load engine "U" [| Value.Int 1; Value.Str "u" |]);
  let t1 = Engine.begin_txn engine in
  let t2 = Engine.begin_txn engine in
  ignore (exec engine t1 "UPDATE T SET v = 'x' WHERE k = 1");
  ignore (exec engine t2 "UPDATE U SET v = 'y' WHERE k = 1");
  (try
     (* t1's table-S scan of U conflicts with t2's IX on U *)
     ignore (exec engine t1 "SELECT k FROM U");
     Alcotest.fail "t1 should block on U"
   with Engine.Blocked _ -> ());
  (try
     (* t2's table-S scan of T closes the cycle *)
     ignore (exec engine t2 "SELECT k FROM T");
     Alcotest.fail "t2 should be a deadlock victim"
   with
  | Engine.Deadlock_victim v -> Alcotest.(check int) "victim is t2" t2 v
  | Engine.Blocked _ -> Alcotest.fail "deadlock undetected");
  Engine.abort engine t2;
  let woken = Engine.take_wakeups engine in
  Alcotest.(check (list int)) "t1 woken after victim abort" [ t1 ] woken;
  (match exec engine t1 "SELECT k FROM U" with
  | Ent_sql.Eval.Rows rows -> Alcotest.(check int) "t1 proceeds" 1 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  Engine.commit engine t1

let test_engine_savepoint_rollback () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  let sp = Engine.savepoint engine t1 in
  ignore (exec engine t1 "INSERT INTO T VALUES (4, 'four')");
  ignore (exec engine t1 "UPDATE T SET v = 'THREE' WHERE k = 3");
  Engine.rollback_to engine t1 sp;
  (match exec engine t1 "SELECT v FROM T WHERE k = 3" with
  | Ent_sql.Eval.Rows [ [| Value.Str "three" |] ] -> ()
  | _ -> Alcotest.fail "partial rollback wrong");
  Alcotest.(check int) "row 4 gone" 3 (count_rows engine t1);
  Engine.commit engine t1

let test_engine_grounding_read_lock () =
  (* §3.3.3 / Figure 3(b): a grounding read must hold a table-level S
     lock so Donald's INSERT blocks until commit. *)
  let engine = make_engine () in
  let minnie = Engine.begin_txn engine in
  let access = Engine.access engine minnie ~grounding:true () in
  ignore
    (Ent_sql.Eval.select_rows access (Ent_sql.Eval.fresh_env ())
       (match Ent_sql.Parser.parse_stmt "SELECT k FROM T WHERE k = 1" with
       | Ent_sql.Ast.Select s -> s
       | _ -> assert false));
  Alcotest.(check (list string)) "grounding recorded" [ "T" ]
    (Engine.grounding_reads engine minnie);
  let donald = Engine.begin_txn engine in
  (try
     ignore (exec engine donald "INSERT INTO T VALUES (99, 'new')");
     Alcotest.fail "insert should block on grounding lock"
   with Engine.Blocked _ -> ());
  Engine.commit engine minnie;
  ignore (Engine.take_wakeups engine);
  ignore (exec engine donald "INSERT INTO T VALUES (99, 'new')");
  Engine.commit engine donald

let test_engine_unlocked_reads_relaxed () =
  (* With lock_reads:false (relaxed isolation), the reader does not
     block — this is the knob that re-admits quasi-read anomalies. *)
  let engine = make_engine () in
  let writer = Engine.begin_txn engine in
  ignore (exec engine writer "UPDATE T SET v = 'uno' WHERE k = 1");
  let reader = Engine.begin_txn engine in
  let access = Engine.access engine reader ~grounding:false ~lock_reads:false () in
  let rows =
    Ent_sql.Eval.select_rows access (Ent_sql.Eval.fresh_env ())
      (match Ent_sql.Parser.parse_stmt "SELECT v FROM T WHERE k = 1" with
      | Ent_sql.Ast.Select s -> s
      | _ -> assert false)
  in
  (* dirty read of the uncommitted value *)
  (match rows with
  | [ [| Value.Str "uno" |] ] -> ()
  | _ -> Alcotest.fail "expected dirty read at relaxed level");
  Engine.abort engine writer;
  Engine.commit engine reader

(* --- recovery --- *)

let test_recovery_replay_committed () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  Engine.commit engine t1;
  let t2 = Engine.begin_txn engine in
  ignore (exec engine t2 "INSERT INTO T VALUES (4, 'four')");
  Engine.abort engine t2;
  let t3 = Engine.begin_txn engine in
  ignore (exec engine t3 "UPDATE T SET v = 'TWO' WHERE k = 2");
  (* t3 incomplete at crash *)
  let wal = Option.get (Engine.log engine) in
  let catalog, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list int)) "committed" [ 0; t1 ] analysis.committed;
  Alcotest.(check (list int)) "aborted" [ t2 ] analysis.aborted;
  Alcotest.(check (list int)) "incomplete" [ t3 ] analysis.incomplete;
  let table = Catalog.find_exn catalog "T" in
  Alcotest.(check int) "rows after recovery" 3 (Table.cardinal table);
  (* t3's update must not survive *)
  let row2 =
    List.find (fun (_, r) -> Value.equal (Tuple.get r 0) (Int 2)) (Table.to_list table)
  in
  Alcotest.(check string) "t3 update lost" "two" (Value.to_string (Tuple.get (snd row2) 1))

let test_recovery_entangled_group_rollback () =
  (* Two transactions entangle; only one commits before the crash. The
     committed one must be rolled back during recovery (§4). *)
  let engine = make_engine () in
  let mickey = Engine.begin_txn engine in
  let minnie = Engine.begin_txn engine in
  Engine.log_entangle_group engine ~event:1 ~members:[ mickey; minnie ];
  ignore (exec engine mickey "INSERT INTO T VALUES (100, 'mickey-booking')");
  ignore (exec engine minnie "INSERT INTO T VALUES (200, 'minnie-booking')");
  Engine.commit engine mickey;
  (* crash before minnie commits *)
  let wal = Option.get (Engine.log engine) in
  let catalog, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list int)) "victims" [ mickey ] analysis.group_victims;
  Alcotest.(check bool) "mickey not survivor" false
    (List.mem mickey analysis.survivors);
  let table = Catalog.find_exn catalog "T" in
  Alcotest.(check int) "neither booking survives" 2 (Table.cardinal table)

let test_recovery_entangled_group_both_commit () =
  let engine = make_engine () in
  let mickey = Engine.begin_txn engine in
  let minnie = Engine.begin_txn engine in
  Engine.log_entangle_group engine ~event:1 ~members:[ mickey; minnie ];
  ignore (exec engine mickey "INSERT INTO T VALUES (100, 'm')");
  ignore (exec engine minnie "INSERT INTO T VALUES (200, 'n')");
  Engine.commit engine mickey;
  Engine.commit engine minnie;
  let wal = Option.get (Engine.log engine) in
  let catalog, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list int)) "no victims" [] analysis.group_victims;
  Alcotest.(check int) "both survive" 4 (Table.cardinal (Catalog.find_exn catalog "T"))

let test_recovery_transitive_groups () =
  (* a~b in event 1, b~c in event 2: all three form one group; if c
     does not commit, a and b are rolled back too. *)
  let engine = make_engine () in
  let a = Engine.begin_txn engine in
  let b = Engine.begin_txn engine in
  let c = Engine.begin_txn engine in
  Engine.log_entangle_group engine ~event:1 ~members:[ a; b ];
  Engine.log_entangle_group engine ~event:2 ~members:[ b; c ];
  ignore (exec engine a "INSERT INTO T VALUES (100, 'a')");
  ignore (exec engine b "INSERT INTO T VALUES (200, 'b')");
  ignore (exec engine c "INSERT INTO T VALUES (300, 'c')");
  Engine.commit engine a;
  Engine.commit engine b;
  (* crash before c *)
  let wal = Option.get (Engine.log engine) in
  let _, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list (list int))) "one group of three" [ [ a; b; c ] ] analysis.groups;
  Alcotest.(check (list int)) "a and b rolled back" [ a; b ] analysis.group_victims

let test_recovery_cascading_victims () =
  (* t_after updates a row inserted by a group victim; it must be rolled
     back as well even though it committed and is in no group. *)
  let engine = make_engine ~wal:true () in
  let victim = Engine.begin_txn engine in
  let partner = Engine.begin_txn engine in
  Engine.log_entangle_group engine ~event:1 ~members:[ victim; partner ];
  ignore (exec engine victim "INSERT INTO T VALUES (100, 'v')");
  Engine.commit engine victim;
  let after = Engine.begin_txn engine in
  ignore (exec engine after "UPDATE T SET v = 'overwritten' WHERE k = 100");
  Engine.commit engine after;
  (* crash: partner never commits *)
  let wal = Option.get (Engine.log engine) in
  let catalog, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list int)) "cascade" [ victim; after ] analysis.group_victims;
  Alcotest.(check int) "row gone entirely" 2
    (Table.cardinal (Catalog.find_exn catalog "T"))

let test_recovery_pool_snapshot () =
  let engine = make_engine () in
  Engine.log_pool_snapshot engine [ "program-1"; "program-2" ];
  Engine.log_pool_snapshot engine [ "program-2" ];
  let wal = Option.get (Engine.log engine) in
  let analysis = Recovery.analyze (Wal.records wal) in
  Alcotest.(check (list string)) "latest snapshot wins" [ "program-2" ] analysis.pool

let test_recovery_statement_rollback_compensated () =
  (* A statement-level rollback inside a committed transaction must be
     invisible after recovery (compensation records). *)
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  let sp = Engine.savepoint engine t1 in
  ignore (exec engine t1 "INSERT INTO T VALUES (4, 'four')");
  Engine.rollback_to engine t1 sp;
  Engine.commit engine t1;
  let wal = Option.get (Engine.log engine) in
  let catalog, _ = Recovery.replay (Wal.records wal) in
  Alcotest.(check int) "3 rows (no row 4)" 3
    (Table.cardinal (Catalog.find_exn catalog "T"))

let test_checkpoint_and_compact () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "INSERT INTO T VALUES (3, 'three')");
  (* sharp checkpoints are illegal while t1 is active *)
  (try
     Engine.checkpoint engine;
     Alcotest.fail "checkpoint with active txn accepted"
   with Invalid_argument _ -> ());
  Engine.commit engine t1;
  Engine.checkpoint engine;
  let wal = Option.get (Engine.log engine) in
  Wal.compact wal;
  Alcotest.(check int) "log reduced to the checkpoint" 1 (Wal.length wal);
  (* post-checkpoint work recovers on top of the snapshot *)
  let t2 = Engine.begin_txn engine in
  ignore (exec engine t2 "UPDATE T SET v = 'TWO' WHERE k = 2");
  ignore (exec engine t2 "DELETE FROM T WHERE k = 1");
  Engine.commit engine t2;
  let t3 = Engine.begin_txn engine in
  ignore (exec engine t3 "INSERT INTO T VALUES (4, 'four')");
  (* t3 incomplete at crash *)
  let catalog, _ = Recovery.replay (Wal.records wal) in
  let table = Catalog.find_exn catalog "T" in
  Alcotest.(check int) "rows after recovery" 2 (Table.cardinal table);
  let values =
    List.sort String.compare
      (List.map (fun (_, r) -> Value.to_string (Tuple.get r 1)) (Table.to_list table))
  in
  Alcotest.(check (list string)) "surviving values" [ "TWO"; "three" ] values

let test_checkpoint_preserves_groups_after () =
  (* the entanglement-aware rule still applies to post-checkpoint work *)
  let engine = make_engine () in
  Engine.checkpoint engine;
  let a = Engine.begin_txn engine in
  let b = Engine.begin_txn engine in
  Engine.log_entangle_group engine ~event:9 ~members:[ a; b ];
  ignore (exec engine a "INSERT INTO T VALUES (100, 'a')");
  Engine.commit engine a;
  (* crash before b *)
  let wal = Option.get (Engine.log engine) in
  let catalog, analysis = Recovery.replay (Wal.records wal) in
  Alcotest.(check (list int)) "a rolled back" [ a ] analysis.group_victims;
  Alcotest.(check int) "snapshot rows only" 2
    (Table.cardinal (Catalog.find_exn catalog "T"))

let test_recovery_idempotent () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  ignore (exec engine t1 "UPDATE T SET v = 'uno' WHERE k = 1");
  Engine.commit engine t1;
  let wal = Option.get (Engine.log engine) in
  let records = Wal.records wal in
  let cat1, _ = Recovery.replay records in
  let cat2, _ = Recovery.replay records in
  let dump cat =
    List.map
      (fun (id, r) -> (id, List.map Value.to_string (Tuple.to_list r)))
      (Table.to_list (Catalog.find_exn cat "T"))
  in
  Alcotest.(check bool) "same result twice" true (dump cat1 = dump cat2)

let test_recovery_empty_log () =
  let catalog, analysis = Recovery.replay [] in
  Alcotest.(check (list string)) "no tables" [] (Catalog.table_names catalog);
  Alcotest.(check (list int)) "bootstrap only" [ 0 ] analysis.committed;
  Alcotest.(check (list string)) "no pool" [] analysis.pool

let test_compact_without_checkpoint () =
  let wal = Wal.create () in
  ignore (Wal.append wal (Wal.Begin 1));
  ignore (Wal.append wal (Wal.Commit 1));
  Wal.compact wal;
  Alcotest.(check int) "untouched" 2 (Wal.length wal)

let test_program_transactional_roundtrip () =
  let open Ent_core in
  let p =
    Program.of_string ~label:"q" ~transactional:false
      "BEGIN TRANSACTION;\nINSERT INTO T VALUES (1, 'x');\nCOMMIT;"
  in
  let p' = Program.of_serialized (Program.to_string p) in
  Alcotest.(check bool) "flag survives" false p'.transactional;
  Alcotest.(check string) "label survives" "q" p'.label

let test_engine_api_misuse () =
  let engine = make_engine () in
  let t1 = Engine.begin_txn engine in
  Engine.commit engine t1;
  (* operations on a finished transaction are rejected *)
  (try
     Engine.commit engine t1;
     Alcotest.fail "double commit accepted"
   with Invalid_argument _ -> ());
  (try
     Engine.abort engine t1;
     Alcotest.fail "abort after commit accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Engine.savepoint engine t1);
     Alcotest.fail "savepoint on finished txn accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "not active" false (Engine.is_active engine t1);
  (* abort_group skips inactive members instead of failing *)
  let t2 = Engine.begin_txn engine in
  Engine.abort_group engine [ t1; t2 ];
  Alcotest.(check bool) "t2 aborted" false (Engine.is_active engine t2)

let test_group_abort_interleaved_writes () =
  (* Two group members interleave writes on the same row (group lock
     sharing permits it); aborting the group must restore the original
     value regardless of member order. *)
  let engine = make_engine () in
  let a = Engine.begin_txn engine in
  let b = Engine.begin_txn engine in
  Engine.set_lock_group engine ~txn:a ~group:1;
  Engine.set_lock_group engine ~txn:b ~group:1;
  ignore (exec engine a "UPDATE T SET v = 'a1' WHERE k = 1");
  ignore (exec engine b "UPDATE T SET v = 'b1' WHERE k = 1");
  ignore (exec engine a "UPDATE T SET v = 'a2' WHERE k = 1");
  Engine.abort_group engine [ a; b ];
  let t3 = Engine.begin_txn engine in
  (match exec engine t3 "SELECT v FROM T WHERE k = 1" with
  | Ent_sql.Eval.Rows [ [| Value.Str "one" |] ] -> ()
  | Ent_sql.Eval.Rows [ [| v |] ] ->
    Alcotest.failf "wrong restored value %s" (Value.to_string v)
  | _ -> Alcotest.fail "row missing");
  Engine.commit engine t3

(* --- properties --- *)

let prop_lock_no_incompatible_holders =
  (* Run random request/release traffic; after every step no two
     holders of a resource may be incompatible. *)
  let op_gen =
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (triple (int_range 1 5) (int_range 0 2) (int_range 0 3)))
  in
  QCheck2.Test.make ~name:"no incompatible lock holders" ~count:200 op_gen
    (fun ops ->
      let lm = Lock.create () in
      let resources = [| res_a; Lock.Table "B"; Lock.Row ("A", 7) |] in
      let modes = [| Lock.IS; Lock.IX; Lock.S; Lock.X |] in
      let compatible a b =
        match a, b with
        | Lock.IS, Lock.IS | Lock.IS, Lock.IX | Lock.IX, Lock.IS
        | Lock.IX, Lock.IX | Lock.IS, Lock.S | Lock.S, Lock.IS
        | Lock.S, Lock.S -> true
        | _ -> false
      in
      List.for_all
        (fun (txn, r, m) ->
          (if m = 3 && txn mod 2 = 0 then ignore (Lock.release_all lm ~txn)
           else ignore (Lock.request lm ~txn (resources.(r)) modes.(m)));
          Array.for_all
            (fun res ->
              let hs = Lock.holders lm res in
              List.for_all
                (fun (o1, m1) ->
                  List.for_all
                    (fun (o2, m2) -> o1 = o2 || compatible m1 m2)
                    hs)
                hs)
            resources)
        ops)

let prop_recovery_idempotent =
  (* Random committed/aborted transactions doing random writes: replay
     must equal replay-of-replay. *)
  let txn_gen =
    QCheck2.Gen.(
      list_size (int_range 1 10)
        (pair bool (list_size (int_range 1 5) (int_range 0 9))))
  in
  QCheck2.Test.make ~name:"recovery idempotent under random traffic"
    ~count:100 txn_gen
    (fun txns ->
      let catalog = Catalog.create () in
      let engine = Engine.create ~wal:true catalog in
      ignore (Engine.create_table engine "T" base_schema);
      for k = 0 to 9 do
        ignore
          (Engine.load engine "T" [| Value.Int k; Value.Str (string_of_int k) |])
      done;
      List.iter
        (fun (commit, keys) ->
          let txn = Engine.begin_txn engine in
          (try
             List.iter
               (fun k ->
                 ignore
                   (exec engine txn
                      (Printf.sprintf "UPDATE T SET v = 'x%d' WHERE k = %d" txn k)))
               keys
           with Engine.Blocked _ | Engine.Deadlock_victim _ ->
             Engine.abort engine txn);
          if Engine.is_active engine txn then
            if commit then Engine.commit engine txn else Engine.abort engine txn)
        txns;
      let wal = Option.get (Engine.log engine) in
      let records = Wal.records wal in
      let cat1, _ = Recovery.replay records in
      let dump cat =
        List.map
          (fun (id, r) -> (id, List.map Value.to_string (Tuple.to_list r)))
          (Table.to_list (Catalog.find_exn cat "T"))
      in
      (* recovered state matches the live state *)
      dump cat1 = dump catalog)

let properties =
  List.map Gen.to_alcotest
    [ prop_lock_no_incompatible_holders; prop_recovery_idempotent ]

let () =
  Alcotest.run "txn"
    [ ( "lock",
        [ Alcotest.test_case "shared compatible" `Quick test_lock_shared_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick test_lock_exclusive_conflicts;
          Alcotest.test_case "intention modes" `Quick test_lock_intention_modes;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "covered re-request" `Quick test_lock_covered_rerequest;
          Alcotest.test_case "fifo" `Quick test_lock_fifo;
          Alcotest.test_case "deadlock detection" `Quick test_lock_deadlock_detection;
          Alcotest.test_case "waiter removal" `Quick test_lock_waiter_removed_on_release ] );
      ( "engine",
        [ Alcotest.test_case "commit visible" `Quick test_engine_commit_visible;
          Alcotest.test_case "abort undoes" `Quick test_engine_abort_undoes;
          Alcotest.test_case "writer blocks reader" `Quick test_engine_write_blocks_reader;
          Alcotest.test_case "readers share" `Quick test_engine_readers_share;
          Alcotest.test_case "disjoint writes" `Quick test_engine_row_locking_allows_disjoint_writes;
          Alcotest.test_case "deadlock victim" `Quick test_engine_deadlock_victim;
          Alcotest.test_case "savepoint rollback" `Quick test_engine_savepoint_rollback;
          Alcotest.test_case "grounding read lock (Fig 3b)" `Quick test_engine_grounding_read_lock;
          Alcotest.test_case "relaxed reads" `Quick test_engine_unlocked_reads_relaxed;
          Alcotest.test_case "api misuse" `Quick test_engine_api_misuse;
          Alcotest.test_case "group abort interleaved" `Quick test_group_abort_interleaved_writes ] );
      ( "recovery",
        [ Alcotest.test_case "replay committed" `Quick test_recovery_replay_committed;
          Alcotest.test_case "widowed group rollback" `Quick test_recovery_entangled_group_rollback;
          Alcotest.test_case "group both commit" `Quick test_recovery_entangled_group_both_commit;
          Alcotest.test_case "transitive groups" `Quick test_recovery_transitive_groups;
          Alcotest.test_case "cascading victims" `Quick test_recovery_cascading_victims;
          Alcotest.test_case "pool snapshot" `Quick test_recovery_pool_snapshot;
          Alcotest.test_case "compensated rollback" `Quick test_recovery_statement_rollback_compensated;
          Alcotest.test_case "checkpoint + compact" `Quick test_checkpoint_and_compact;
          Alcotest.test_case "checkpoint + groups" `Quick test_checkpoint_preserves_groups_after;
          Alcotest.test_case "empty log" `Quick test_recovery_empty_log;
          Alcotest.test_case "compact w/o checkpoint" `Quick test_compact_without_checkpoint;
          Alcotest.test_case "program flag roundtrip" `Quick test_program_transactional_roundtrip;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent ] );
      ("properties", properties) ]
