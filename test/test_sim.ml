(* Unit tests for the simulation substrate (cost model, connection
   pool) and the entanglement-group union-find. *)

open Ent_sim

let test_cost_scale () =
  let c = Cost.scale 2.0 Cost.default in
  Alcotest.(check (float 1e-12)) "stmt doubled" (2.0 *. Cost.default.c_stmt) c.c_stmt;
  Alcotest.(check (float 1e-12)) "commit doubled" (2.0 *. Cost.default.c_commit) c.c_commit

let test_pool_basics () =
  let p = Pool.create ~connections:3 in
  Alcotest.(check int) "connections" 3 (Pool.connections p);
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Pool.now p);
  Pool.add_work p 0 5.0;
  Pool.add_work p 1 3.0;
  Alcotest.(check (float 0.0)) "now = max" 5.0 (Pool.now p);
  Alcotest.(check int) "least loaded is idle conn" 2 (Pool.least_loaded p);
  Pool.add_work p 2 4.0;
  Alcotest.(check int) "then the lighter one" 1 (Pool.least_loaded p)

let test_pool_barrier () =
  let p = Pool.create ~connections:2 in
  Pool.add_work p 0 2.0;
  Pool.barrier p 1.0;
  let loads = Pool.loads p in
  Alcotest.(check (float 0.0)) "conn 0 synced" 3.0 loads.(0);
  Alcotest.(check (float 0.0)) "conn 1 synced" 3.0 loads.(1)

let test_pool_advance_and_reset () =
  let p = Pool.create ~connections:2 in
  Pool.add_work p 0 2.0;
  Pool.advance_to p 5.0;
  Alcotest.(check (float 0.0)) "advanced" 5.0 (Pool.now p);
  Pool.advance_to p 1.0;
  Alcotest.(check (float 0.0)) "never goes back" 5.0 (Pool.now p);
  Pool.reset p;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Pool.now p)

let test_pool_rejects_zero_connections () =
  try
    ignore (Pool.create ~connections:0);
    Alcotest.fail "zero connections accepted"
  with Invalid_argument _ -> ()

(* --- Group --- *)

let test_group_union () =
  let g = Ent_core.Group.create () in
  Alcotest.(check (list int)) "singleton" [ 7 ] (Ent_core.Group.members g 7);
  Alcotest.(check bool) "not entangled" false (Ent_core.Group.entangled g 7);
  Ent_core.Group.join g [ 1; 2 ];
  Ent_core.Group.join g [ 2; 3 ];
  Alcotest.(check (list int)) "transitive" [ 1; 2; 3 ] (Ent_core.Group.members g 1);
  Alcotest.(check bool) "same group" true (Ent_core.Group.same_group g 1 3);
  Alcotest.(check bool) "entangled" true (Ent_core.Group.entangled g 2);
  Ent_core.Group.join g [ 4; 5 ];
  Alcotest.(check bool) "disjoint groups" false (Ent_core.Group.same_group g 1 4);
  Ent_core.Group.reset g;
  Alcotest.(check (list int)) "reset" [ 1 ] (Ent_core.Group.members g 1)

let prop_group_members_symmetric =
  QCheck2.Test.make ~name:"group membership is symmetric and transitive"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 9) (int_range 0 9)))
    (fun joins ->
      let g = Ent_core.Group.create () in
      List.iter (fun (a, b) -> Ent_core.Group.join g [ a; b ]) joins;
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              Ent_core.Group.same_group g x y
              = List.mem x (Ent_core.Group.members g y))
            (List.init 10 Fun.id))
        (List.init 10 Fun.id))

let () =
  Alcotest.run "sim"
    [ ( "cost", [ Alcotest.test_case "scale" `Quick test_cost_scale ] );
      ( "pool",
        [ Alcotest.test_case "basics" `Quick test_pool_basics;
          Alcotest.test_case "barrier" `Quick test_pool_barrier;
          Alcotest.test_case "advance/reset" `Quick test_pool_advance_and_reset;
          Alcotest.test_case "zero connections" `Quick test_pool_rejects_zero_connections ] );
      ( "group",
        [ Alcotest.test_case "union-find" `Quick test_group_union;
          Gen.to_alcotest prop_group_members_symmetric ] ) ]
