(* Tests for the formal model (Appendix C): schedule validity,
   quasi-read expansion, conflict graphs, the anomaly detectors on the
   paper's Figure 3 scenarios, oracle-serializability, Theorem 3.6 as a
   property over generated schedules, and checking recorded real
   executions. *)

open Ent_schedule
open History

let x = Named "x"
let y = Named "y"
let z = Named "z"
let w = Named "w"

(* The example schedule of §C.1:
   RG1(x) RG2(y) R3(z) E1{1,2} W1(z) W2(w) C1 C2 C3 *)
let example_c1 =
  [ Ground_read (1, x);
    Ground_read (2, y);
    Read (3, z);
    Entangle (1, [ 1; 2 ]);
    Write (1, z);
    Write (2, w);
    Commit 1;
    Commit 2;
    Commit 3 ]

let test_validity_ok () =
  Alcotest.(check (list string)) "example is valid" [] (validity_errors example_c1)

let test_validity_errors () =
  let missing_terminal = [ Read (1, x) ] in
  Alcotest.(check bool) "missing terminal" true
    (validity_errors missing_terminal <> []);
  let after_commit = [ Commit 1; Write (1, x); Commit 1 ] in
  Alcotest.(check bool) "op after terminal" true
    (validity_errors after_commit <> []);
  let write_in_grounding_block =
    [ Ground_read (1, x); Write (1, y); Entangle (1, [ 1; 2 ]);
      Ground_read (2, y); Commit 1; Commit 2 ]
  in
  Alcotest.(check bool) "write inside grounding block" true
    (validity_errors write_in_grounding_block <> []);
  let commit_while_grounding = [ Ground_read (1, x); Commit 1 ] in
  Alcotest.(check bool) "commit with pending grounding" true
    (validity_errors commit_while_grounding <> [])

let test_quasi_read_expansion () =
  (* §C.2.1: (RG1(x) RQ2(x)) (RG2(y) RQ1(y)) R3(z) E ... *)
  let expanded = expand_quasi_reads example_c1 in
  let expected_prefix =
    [ Ground_read (1, x);
      Quasi_read (2, x);
      Ground_read (2, y);
      Quasi_read (1, y) ]
  in
  let prefix = List.filteri (fun i _ -> i < 4) expanded in
  Alcotest.(check bool) "expansion positions" true (prefix = expected_prefix);
  Alcotest.(check int) "two ops added" (List.length example_c1 + 2)
    (List.length expanded)

let test_quasi_read_no_entangle_no_expansion () =
  (* a grounding read followed by an abort induces no quasi-reads *)
  let s = [ Ground_read (1, x); Abort 1 ] in
  Alcotest.(check bool) "no expansion" true (expand_quasi_reads s = s)

let test_conflict_graph () =
  let graph = Conflict.of_schedule (expand_quasi_reads example_c1) in
  Alcotest.(check (list int)) "nodes" [ 1; 2; 3 ] (Conflict.nodes graph);
  (* R3(z) before W1(z): edge 3 -> 1 *)
  Alcotest.(check (list (pair int int))) "edges" [ (3, 1) ] (Conflict.edges graph);
  Alcotest.(check bool) "acyclic" false (Conflict.has_cycle graph);
  match Conflict.topo_order graph with
  | Some order ->
    let pos v = Option.get (List.find_index (fun u -> u = v) order) in
    Alcotest.(check bool) "3 before 1" true (pos 3 < pos 1)
  | None -> Alcotest.fail "no topo order"

let test_example_isolated_and_serializable () =
  Alcotest.(check bool) "entangled isolated" true
    (Anomaly.entangled_isolated example_c1);
  Alcotest.(check bool) "oracle serializable" true
    (Abstract.oracle_serializable example_c1)

let test_appendix_serialization_order () =
  (* §C.3.2 serializes the example in the order 3, 1, 2:
     R3(z) C3 O1_1 W1(z) C1 O1_2 W2(w) C2 — the replay must be valid and
     reach the same final database. *)
  let exec = Abstract.execute example_c1 in
  let r = Abstract.replay example_c1 exec [ 3; 1; 2 ] in
  Alcotest.(check bool) "valid oracle execution" true r.replay_valid;
  Alcotest.(check bool) "same final database" true (r.replay_final = exec.final);
  (* the order 1, 3, 2 contradicts the conflict edge 3 -> 1: transaction
     1 overwrites z before 3 reads it, so 3 observes a different value —
     but final-state equivalence doesn't care about 3's reads since it
     writes nothing; the replay is still accepted. The conflict-graph
     order is the one the theorem guarantees. *)
  ignore (Abstract.replay example_c1 exec [ 1; 3; 2 ])

let test_unrepeatable_classical_read () =
  (* R1(x) W2(x) C2 R1(x) C1: the classical unrepeatable read shows up
     as a conflict cycle (Requirement C.2). *)
  let s =
    [ Read (1, x); Write (2, x); Commit 2; Read (1, x); Commit 1 ]
  in
  Alcotest.(check bool) "cycle detected" false (Anomaly.req_no_cycles s);
  Alcotest.(check bool) "not isolated" false (Anomaly.entangled_isolated s)

let test_entangle_between_grounding_blocks () =
  (* two entangled queries in sequence in the same transaction: the
     second grounding block associates with the second event only *)
  let s =
    [ Ground_read (1, x);
      Ground_read (2, x);
      Entangle (1, [ 1; 2 ]);
      Ground_read (1, y);
      Ground_read (2, y);
      Entangle (2, [ 1; 2 ]);
      Commit 1;
      Commit 2 ]
  in
  Alcotest.(check (list string)) "valid" [] (validity_errors s);
  let expanded = expand_quasi_reads s in
  (* each grounding read gains exactly one quasi-read *)
  Alcotest.(check int) "four quasi-reads" (List.length s + 4)
    (List.length expanded);
  Alcotest.(check bool) "isolated" true (Anomaly.entangled_isolated s);
  Alcotest.(check bool) "serializable" true (Abstract.oracle_serializable s)

(* Figure 3(a): Mickey (1) and Minnie (2) entangle; Minnie aborts while
   Mickey commits — a widowed transaction. *)
let figure_3a =
  [ Ground_read (1, x);
    Ground_read (2, x);
    Entangle (1, [ 1; 2 ]);
    Write (1, y);
    Write (2, z);
    Abort 2;
    Commit 1 ]

let test_widowed_detection () =
  Alcotest.(check bool) "requirement C.4 violated" false
    (Anomaly.req_no_widowed figure_3a);
  (match Anomaly.find_widowed figure_3a with
  | Some (2, 1) -> ()
  | Some (a, c) -> Alcotest.failf "wrong witness (%d,%d)" a c
  | None -> Alcotest.fail "widow not found");
  Alcotest.(check bool) "not isolated" false
    (Anomaly.entangled_isolated figure_3a);
  (* group commit turns the same history into an isolated one *)
  let both_commit =
    List.map
      (fun op ->
        match op with
        | Abort 2 -> Commit 2
        | op -> op)
      figure_3a
  in
  Alcotest.(check bool) "both-commit variant is isolated" true
    (Anomaly.entangled_isolated both_commit)

(* Figure 3(b): Minnie (2) grounds on Airlines; Mickey (1) entangles
   with her (so he quasi-reads Airlines); Donald (3) inserts into
   Airlines and commits; Mickey then reads Airlines himself and writes
   a summary based on it. Unrepeatable quasi-read. *)
let airlines = Named "Airlines"
let flights = Named "Flights"

let figure_3b =
  [ Ground_read (1, flights);
    Ground_read (2, flights);
    Ground_read (2, airlines);
    Entangle (1, [ 1; 2 ]);
    Write (3, airlines);
    Commit 3;
    Read (1, airlines);
    Write (1, w);
    Commit 1;
    Commit 2 ]

let test_unrepeatable_quasi_read_detection () =
  (match Anomaly.find_unrepeatable_quasi_read figure_3b with
  | Some (1, o) when o = airlines -> ()
  | Some (i, _) -> Alcotest.failf "wrong transaction %d" i
  | None -> Alcotest.fail "anomaly not found");
  (* the quasi-read makes the conflict graph cyclic: 1 -> 3 (RQ before
     W) and 3 -> 1 (W before R) *)
  Alcotest.(check bool) "cycle" true
    (Conflict.has_cycle (Conflict.of_schedule (expand_quasi_reads figure_3b)));
  Alcotest.(check bool) "not isolated" false
    (Anomaly.entangled_isolated figure_3b)
  (* Note: Theorem 3.6 is one-directional. This schedule is in fact
     still final-state oracle-serializable (order Minnie, Donald,
     Mickey validates), exactly like classical conflict- vs
     final-state-serializability. *)

let test_anomaly_report_and_level () =
  (match Anomaly.report example_c1 with
  | { conflict_cycle = false; read_from_aborted = false; widowed = false;
      unrepeatable_quasi_read = false } -> ()
  | _ -> Alcotest.fail "clean schedule misreported");
  Alcotest.(check bool) "full level" true (Anomaly.level example_c1 = `Full);
  (match Anomaly.report figure_3a with
  | { widowed = true; _ } -> ()
  | _ -> Alcotest.fail "widow not reported");
  Alcotest.(check bool) "3a is loose" true (Anomaly.level figure_3a = `Loose);
  (match Anomaly.report figure_3b with
  | { unrepeatable_quasi_read = true; conflict_cycle = true; widowed = false; _ } -> ()
  | _ -> Alcotest.fail "3b misreported");
  Alcotest.(check bool) "3b avoids widows" true (Anomaly.level figure_3b = `No_widow);
  Alcotest.(check string) "printer" "conflict-cycle, unrepeatable-quasi-read"
    (Format.asprintf "%a" Anomaly.pp_report (Anomaly.report figure_3b))

let test_dirty_read_detection () =
  let s = [ Write (1, x); Read (2, x); Abort 1; Commit 2 ] in
  (match Anomaly.find_dirty_read s with
  | Some (1, 2) -> ()
  | _ -> Alcotest.fail "dirty read not found");
  Alcotest.(check bool) "req C.3 violated" false (Anomaly.req_no_read_from_aborted s)

let test_read_from_aborted_ok_when_reader_aborts () =
  (* C.3 only protects committed readers *)
  let s = [ Write (1, x); Read (2, x); Abort 1; Abort 2 ] in
  Alcotest.(check bool) "no violation" true (Anomaly.req_no_read_from_aborted s)

(* --- abstract machine sanity --- *)

let test_abstract_execution_determinism () =
  let e1 = Abstract.execute example_c1 in
  let e2 = Abstract.execute example_c1 in
  Alcotest.(check bool) "same final" true (e1.final = e2.final);
  Alcotest.(check int) "one event" 1 (List.length e1.event_answers)

let test_abstract_serial_schedule_replays_itself () =
  let serial =
    [ Read (1, x); Write (1, y); Commit 1; Read (2, y); Write (2, z); Commit 2 ]
  in
  let exec = Abstract.execute serial in
  let r = Abstract.replay serial exec [ 1; 2 ] in
  Alcotest.(check bool) "valid" true r.replay_valid;
  Alcotest.(check bool) "same final" true (r.replay_final = exec.final)

let test_lost_update_not_serializable () =
  (* classical lost-update interleaving: R1(x) R2(x) W1(x) W2(x) —
     cyclic conflicts, and no serial order reproduces the final state
     with both reads seeing 0 *)
  let s = [ Read (1, x); Read (2, x); Write (1, x); Write (2, x); Commit 1; Commit 2 ] in
  Alcotest.(check bool) "not isolated" false (Anomaly.entangled_isolated s);
  Alcotest.(check bool) "not oracle-serializable" false (Abstract.oracle_serializable s)

(* --- Theorem 3.6 as a property --- *)

(* Generate valid schedules by simulating transactions with states
   Active / Grounding / Done. *)
let schedule_of_seed (n_txns, seed) =
  let objects = [| x; y; z; w |] in
  let state = Array.make (n_txns + 1) `Active in
  let ops = ref [] in
  let next_event = ref 1 in
  let emit op = ops := op :: !ops in
  let grounding_others me =
    List.filter
      (fun j -> j <> me && state.(j) = `Grounding)
      (List.init n_txns (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      let txn = 1 + (r mod n_txns) in
      let action = (r / 7) mod 10 in
      let obj = objects.((r / 3) mod Array.length objects) in
      match state.(txn) with
      | `Done -> ()
      | `Active ->
        if action < 4 then emit (Read (txn, obj))
        else if action < 7 then emit (Write (txn, obj))
        else if action < 9 then begin
          emit (Ground_read (txn, obj));
          state.(txn) <- `Grounding
        end
        else begin
          emit (if action = 9 then Commit txn else Abort txn);
          state.(txn) <- `Done
        end
      | `Grounding ->
        if action < 3 then emit (Ground_read (txn, obj))
        else if action < 8 then begin
          match grounding_others txn with
          | [] -> ()
          | others ->
            let participants = txn :: others in
            emit (Entangle (!next_event, participants));
            incr next_event;
            List.iter (fun j -> state.(j) <- `Active) participants
        end
        else begin
          emit (Abort txn);
          state.(txn) <- `Done
        end)
    seed;
  (* terminate the stragglers *)
  for txn = 1 to n_txns do
    match state.(txn) with
    | `Active -> emit (Commit txn)
    | `Grounding -> emit (Abort txn)
    | `Done -> ()
  done;
  List.rev !ops

let schedule_gen =
  QCheck2.Gen.(
    pair (int_range 2 4) (list_size (int_range 8 40) (int_range 0 10_000)))

let prop_generated_schedules_valid =
  QCheck2.Test.make ~name:"generator produces valid schedules" ~count:300
    schedule_gen
    (fun seed -> validity_errors (schedule_of_seed seed) = [])

let prop_theorem_3_6 =
  QCheck2.Test.make
    ~name:"Theorem 3.6: entangled-isolated implies oracle-serializable"
    ~count:800 schedule_gen
    (fun seed ->
      let s = schedule_of_seed seed in
      (not (Anomaly.entangled_isolated s)) || Abstract.oracle_serializable s)

let prop_serial_always_isolated =
  (* sanity: schedules where transactions run one after another (with a
     query oracle folded away, i.e. no entanglement) are isolated *)
  QCheck2.Test.make ~name:"serial schedules are entangled-isolated" ~count:200
    QCheck2.Gen.(list_size (int_range 1 5) (list_size (int_range 1 5) (int_range 0 100)))
    (fun txn_scripts ->
      let objects = [| x; y; z; w |] in
      let s =
        List.concat
          (List.mapi
             (fun i script ->
               let txn = i + 1 in
               List.map
                 (fun r ->
                   if r mod 2 = 0 then Read (txn, objects.(r mod 4))
                   else Write (txn, objects.(r mod 4)))
                 script
               @ [ Commit txn ])
             txn_scripts)
      in
      Anomaly.entangled_isolated s && Abstract.oracle_serializable s)

(* --- recorded real executions --- *)

let record_real_execution () =
  let open Ent_core in
  let m = Manager.create () in
  let recorder = Recorder.create () in
  Ent_txn.Engine.set_on_event (Manager.engine m)
    (Some (Recorder.on_engine_event recorder));
  Scheduler.set_on_entangle (Manager.scheduler m)
    (Some (fun ~event participants -> Recorder.on_entangle recorder ~event participants));
  Manager.define_table m "Flights"
    [ ("fno", Ent_storage.Schema.T_int); ("dest", Ent_storage.Schema.T_str) ];
  Manager.define_table m "Reserve"
    [ ("name", Ent_storage.Schema.T_str); ("fno", Ent_storage.Schema.T_int) ];
  for i = 1 to 3 do
    Manager.load_row m "Flights" [ Int i; Str "LA" ]
  done;
  let program me partner =
    Printf.sprintf
      "BEGIN TRANSACTION;\n\
       SELECT '%s', fno AS @fno INTO ANSWER R\n\
       WHERE (fno) IN (SELECT fno FROM Flights WHERE dest='LA')\n\
       AND ('%s', fno) IN ANSWER R CHOOSE 1;\n\
       INSERT INTO Reserve VALUES ('%s', @fno);\n\
       COMMIT;"
      me partner me
  in
  List.iter
    (fun (a, b) -> ignore (Manager.submit_string m (program a b)))
    [ ("Mickey", "Minnie"); ("Minnie", "Mickey");
      ("Donald", "Daffy"); ("Daffy", "Donald") ];
  Manager.drain m;
  recorder

let test_recorded_history_valid () =
  let recorder = record_real_execution () in
  let history = Recorder.completed_history recorder in
  Alcotest.(check (list string)) "valid" [] (validity_errors history);
  Alcotest.(check bool) "has entangle ops" true
    (List.exists
       (function
         | Entangle _ -> true
         | _ -> false)
       history)

let test_recorded_history_isolated () =
  let recorder = record_real_execution () in
  let history = Recorder.completed_history recorder in
  Alcotest.(check bool) "entangled isolated (full 2PL + group commit)" true
    (Anomaly.entangled_isolated history);
  Alcotest.(check bool) "oracle serializable" true
    (Abstract.oracle_serializable history)

let () =
  Alcotest.run "schedule"
    [ ( "history",
        [ Alcotest.test_case "validity ok" `Quick test_validity_ok;
          Alcotest.test_case "validity errors" `Quick test_validity_errors;
          Alcotest.test_case "quasi-read expansion" `Quick test_quasi_read_expansion;
          Alcotest.test_case "no expansion on abort" `Quick
            test_quasi_read_no_entangle_no_expansion ] );
      ( "conflict",
        [ Alcotest.test_case "graph of example" `Quick test_conflict_graph ] );
      ( "anomaly",
        [ Alcotest.test_case "example isolated" `Quick test_example_isolated_and_serializable;
          Alcotest.test_case "appendix serialization order" `Quick test_appendix_serialization_order;
          Alcotest.test_case "unrepeatable classical read" `Quick test_unrepeatable_classical_read;
          Alcotest.test_case "two grounding blocks" `Quick test_entangle_between_grounding_blocks;
          Alcotest.test_case "widowed (Fig 3a)" `Quick test_widowed_detection;
          Alcotest.test_case "unrepeatable quasi-read (Fig 3b)" `Quick
            test_unrepeatable_quasi_read_detection;
          Alcotest.test_case "anomaly report/level" `Quick test_anomaly_report_and_level;
          Alcotest.test_case "dirty read" `Quick test_dirty_read_detection;
          Alcotest.test_case "aborted reader ok" `Quick
            test_read_from_aborted_ok_when_reader_aborts ] );
      ( "abstract",
        [ Alcotest.test_case "determinism" `Quick test_abstract_execution_determinism;
          Alcotest.test_case "serial replay" `Quick test_abstract_serial_schedule_replays_itself;
          Alcotest.test_case "lost update" `Quick test_lost_update_not_serializable ] );
      ( "recorded",
        [ Alcotest.test_case "real history valid" `Quick test_recorded_history_valid;
          Alcotest.test_case "real history isolated" `Quick test_recorded_history_isolated ] );
      ( "properties",
        List.map Gen.to_alcotest
          [ prop_generated_schedules_valid;
            prop_theorem_3_6;
            prop_serial_always_isolated ] ) ]
