(* Crash-injection fuzzing: run entangled workloads with the WAL on,
   then simulate a crash after EVERY log record and recover. Recovery
   must never fail, must respect group atomicity (an entanglement group
   survives entirely or not at all), and recovering the complete log
   must reproduce the live database exactly. *)

(* [Gen] here is the shared test module, aliased before [open
   Ent_workload] shadows the name with the workload generators. *)
module Tgen = Gen
open Ent_core
open Ent_workload

(* the crash-workload builders are shared with test_fault and entsim *)
let run_workload = Tgen.run_workload
let dump_table = Tgen.dump_table
let group_atomic = Tgen.group_atomic

let test_every_prefix_recovers () =
  let world = run_workload ~pairs:6 ~with_rollbacks:true in
  let wal = Option.get (Ent_txn.Engine.log (Manager.engine world.manager)) in
  let total = Ent_txn.Wal.length wal in
  Alcotest.(check bool) "log is non-trivial" true (total > 50);
  for n = 0 to total do
    let prefix = Ent_txn.Wal.prefix wal n in
    match Ent_txn.Recovery.replay prefix with
    | _, analysis ->
      if not (group_atomic analysis) then
        Alcotest.failf "group atomicity violated at prefix %d/%d" n total
    | exception exn ->
      Alcotest.failf "recovery failed at prefix %d/%d: %s" n total
        (Printexc.to_string exn)
  done

let test_full_log_matches_live () =
  let world = run_workload ~pairs:5 ~with_rollbacks:false in
  let wal = Option.get (Ent_txn.Engine.log (Manager.engine world.manager)) in
  let recovered, analysis = Ent_txn.Recovery.replay (Ent_txn.Wal.records wal) in
  Alcotest.(check (list string)) "no victims on a clean log" []
    (List.map string_of_int analysis.group_victims);
  List.iter
    (fun table ->
      Alcotest.(check bool)
        (table ^ " identical after recovery")
        true
        (dump_table recovered table
        = dump_table (Manager.catalog world.manager) table))
    [ "User"; "Friends"; "Flight"; "Reserve" ]

let test_double_crash () =
  (* crash, recover, do more work, crash again, recover again *)
  let world = run_workload ~pairs:3 ~with_rollbacks:false in
  let before = List.length (Manager.query world.manager "SELECT uid FROM Reserve") in
  let m2 = Manager.crash_and_recover world.manager in
  List.iter
    (fun p -> ignore (Manager.submit m2 p))
    (Gen.batch
       { world with manager = m2 }
       ~transactional:true Gen.Entangled ~n:4 ~tag_base:500);
  Manager.drain m2;
  let m3 = Manager.crash_and_recover m2 in
  let after = List.length (Manager.query m3 "SELECT uid FROM Reserve") in
  Alcotest.(check int) "both generations of bookings survive" (before + 4) after

let test_wal_file_roundtrip () =
  let world = run_workload ~pairs:3 ~with_rollbacks:false in
  let wal = Option.get (Ent_txn.Engine.log (Manager.engine world.manager)) in
  let path = Filename.temp_file "entwal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ent_txn.Wal.save wal path;
      let loaded = Ent_txn.Wal.load path in
      Alcotest.(check int) "same length" (Ent_txn.Wal.length wal)
        (Ent_txn.Wal.length loaded);
      let cat1, _ = Ent_txn.Recovery.replay (Ent_txn.Wal.records wal) in
      let cat2, _ = Ent_txn.Recovery.replay (Ent_txn.Wal.records loaded) in
      Alcotest.(check bool) "identical recovery" true
        (dump_table cat1 "Reserve" = dump_table cat2 "Reserve"));
  (* rejects non-WAL files *)
  let garbage = Filename.temp_file "garbage" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove garbage)
    (fun () ->
      let oc = open_out garbage in
      output_string oc "not a wal";
      close_out oc;
      try
        ignore (Ent_txn.Wal.load garbage);
        Alcotest.fail "garbage accepted"
      with Failure _ | End_of_file -> ())

let test_checkpoint_file_boot () =
  (* checkpoint to a file with a waiting transaction in the pool; boot a
     fresh system from the file: data AND pool survive *)
  let world = run_workload ~pairs:2 ~with_rollbacks:false in
  let lonely = Gen.lonely world ~n:1 ~tag_base:77 in
  List.iter (fun p -> ignore (Manager.submit world.manager p)) lonely;
  Manager.drain world.manager;
  let before = List.length (Manager.query world.manager "SELECT uid FROM Reserve") in
  let path = Filename.temp_file "entckpt" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Manager.checkpoint_to_file world.manager path;
      let m2 = Manager.recover_from_file path in
      Alcotest.(check int) "bookings survive the file" before
        (List.length (Manager.query m2 "SELECT uid FROM Reserve"));
      Alcotest.(check int) "the waiting transaction is back in the pool" 1
        (List.length (Scheduler.dormant (Manager.scheduler m2))))

let prop_prefix_recovery_group_atomic =
  QCheck2.Test.make ~name:"every crash point recovers group-atomically"
    ~count:15
    QCheck2.Gen.(pair (int_range 1 6) bool)
    (fun (pairs, with_rollbacks) ->
      let world = run_workload ~pairs ~with_rollbacks in
      let wal = Option.get (Ent_txn.Engine.log (Manager.engine world.manager)) in
      let total = Ent_txn.Wal.length wal in
      (* sample prefixes: all would be O(total^2) work *)
      let points =
        List.sort_uniq Int.compare
          [ 0; 1; total / 4; total / 2; (3 * total) / 4; total - 1; total ]
      in
      List.for_all
        (fun n ->
          if n < 0 then true
          else
            match Ent_txn.Recovery.replay (Ent_txn.Wal.prefix wal n) with
            | _, analysis -> group_atomic analysis
            | exception _ -> false)
        points)

let () =
  Alcotest.run "crash"
    [ ( "injection",
        [ Alcotest.test_case "every prefix recovers" `Slow test_every_prefix_recovers;
          Alcotest.test_case "full log matches live" `Quick test_full_log_matches_live;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "wal file roundtrip" `Quick test_wal_file_roundtrip;
          Alcotest.test_case "checkpoint file boot" `Quick test_checkpoint_file_boot ] );
      ( "properties",
        [ Tgen.to_alcotest prop_prefix_recovery_group_atomic ] ) ]
