(* Multicore execution (DESIGN.md §9): shard boundaries of the sharded
   lock manager, agreement of the static (entlint) lock order with what
   a transaction acquires through the sharded manager, and equivalence
   of parallel (--parallel N) and deterministic runs over the same
   workload. *)

(* alias the shared test module before [open Ent_workload] shadows [Gen] *)
module Tgen = Gen
open Ent_core
open Ent_workload
module Lock = Ent_txn.Lock
module Pool = Ent_par.Pool
module Certify = Ent_schedule.Certify

(* --- shard boundaries --- *)

(* A row of [table] on a different shard than [r], and one on the same
   shard; both exist because the shard map is a hash of the whole
   resource, and we probe as many keys as shards. *)
let row_on ~table ~same r =
  let target = Lock.shard_of r in
  let rec go i =
    if i > 100 * Lock.shard_count then
      Alcotest.failf "no row of %s with same-shard=%b found" table same
    else if (Lock.shard_of (Lock.Row (table, i)) = target) = same
            && Lock.Row (table, i) <> r
    then Lock.Row (table, i)
    else go (i + 1)
  in
  go 0

let test_shard_map () =
  Alcotest.(check bool) "at least two shards" true (Lock.shard_count > 1);
  List.iter
    (fun r ->
      let s = Lock.shard_of r in
      Alcotest.(check bool) "in range" true (s >= 0 && s < Lock.shard_count);
      Alcotest.(check int) "pure" s (Lock.shard_of r))
    [ Lock.Table "Flights"; Lock.Row ("Flights", 3); Lock.Row ("Reserve", 17) ]

let test_cross_shard_no_contention () =
  let lm = Lock.create () in
  let a = Lock.Row ("Reserve", 0) in
  let b = row_on ~table:"Reserve" ~same:false a in
  Alcotest.(check bool) "X on a granted" true
    (Lock.request lm ~txn:1 a X = Lock.Granted);
  Alcotest.(check bool) "X on b granted" true
    (Lock.request lm ~txn:2 b X = Lock.Granted);
  Alcotest.(check (list int)) "txn 1 blocked by nobody" []
    (Lock.blockers lm ~txn:1);
  Alcotest.(check (list int)) "txn 2 blocked by nobody" []
    (Lock.blockers lm ~txn:2);
  Alcotest.(check bool) "txn 2 not waiting" false (Lock.is_waiting lm ~txn:2);
  Alcotest.(check int) "both entries live" 2 (List.length (Lock.dump lm))

let test_same_shard_disjoint_rows () =
  (* same shard means shared internal synchronization, never a false
     lock conflict *)
  let lm = Lock.create () in
  let a = Lock.Row ("Reserve", 0) in
  let b = row_on ~table:"Reserve" ~same:true a in
  Alcotest.(check bool) "X on a granted" true
    (Lock.request lm ~txn:1 a X = Lock.Granted);
  Alcotest.(check bool) "X on b granted" true
    (Lock.request lm ~txn:2 b X = Lock.Granted);
  Alcotest.(check (list int)) "no blockers" [] (Lock.blockers lm ~txn:2)

let test_same_resource_still_conflicts () =
  let lm = Lock.create () in
  let a = Lock.Row ("Reserve", 0) in
  Alcotest.(check bool) "first X granted" true
    (Lock.request lm ~txn:1 a X = Lock.Granted);
  Alcotest.(check bool) "second X waits" true
    (Lock.request lm ~txn:2 a X = Lock.Waiting);
  Alcotest.(check (list int)) "blocked by txn 1" [ 1 ]
    (Lock.blockers lm ~txn:2);
  let woken = Lock.release_all lm ~txn:1 in
  Alcotest.(check (list int)) "txn 2 woken" [ 2 ] woken

(* --- static lock order vs the sharded manager --- *)

(* Replay entlint's statically-computed lock sequence (Summary, the
   same order the conflict matrix's lock-order edges are built from)
   through a sharded lock manager: every acquisition must be granted
   immediately and in the static order, even across shard boundaries,
   and every matrix lock-order edge must agree with the replayed
   first-acquisition order. *)
let test_static_lock_order_across_shards () =
  let src = Tgen.travel_program "Mickey" "Minnie" in
  let program = Program.make ~label:"travel" (Ent_sql.Parser.parse_program src) in
  let summary = Ent_analysis.Summary.of_program program in
  let seq = Ent_analysis.Summary.lock_sequence summary in
  Alcotest.(check bool) "sequence nonempty" true (seq <> []);
  let tables = List.map (fun (t, _, _, _) -> t) seq in
  let crosses_shards =
    List.exists2
      (fun u v -> Lock.shard_of (Lock.Table u) <> Lock.shard_of (Lock.Table v))
      (List.filteri (fun i _ -> i < List.length tables - 1) tables)
      (List.tl tables)
  in
  Alcotest.(check bool) "sequence crosses a shard boundary" true crosses_shards;
  let lm = Lock.create () in
  let acquired = ref [] in
  List.iter
    (fun (table, mode, _, _) ->
      let m = match mode with `S -> Lock.S | `X -> Lock.X in
      Alcotest.(check bool)
        (Printf.sprintf "%s granted in static order" table)
        true
        (Lock.request lm ~txn:1 (Lock.Table table) m = Lock.Granted);
      if not (List.mem table !acquired) then acquired := !acquired @ [ table ];
      (* Strict 2PL: everything acquired earlier is still held *)
      List.iter
        (fun held ->
          Alcotest.(check bool)
            (Printf.sprintf "%s still held" held)
            true
            (Lock.held lm ~txn:1 (Lock.Table held) <> None))
        !acquired)
    seq;
  let matrix =
    Ent_analysis.Matrix.analyze [ { source = "travel"; program } ]
  in
  let index t =
    let rec go i = function
      | [] -> Alcotest.failf "edge table %s not in lock sequence" t
      | u :: _ when u = t -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 !acquired
  in
  Alcotest.(check bool) "matrix has lock-order edges" true
    (matrix.Ent_analysis.Matrix.edges <> []);
  List.iter
    (fun (e : Ent_analysis.Matrix.edge) ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %s -> %s respects acquisition order"
           e.eu e.ev)
        true
        (index e.eu < index e.ev))
    matrix.Ent_analysis.Matrix.edges

(* --- coordination: signature partition + parallel evaluation --- *)

module Coordinate = Ent_entangle.Coordinate
module Ir = Ent_entangle.Ir
module Ground = Ent_entangle.Ground
module Value = Ent_storage.Value

(* Random entangled-query sets built directly at the IR level: matched
   pairs (head A(k) needing B(k), and its mirror), self-sufficient
   solos (no postcondition), and lonely queries whose postcondition
   relation never appears as any head (structurally No_partner). Even
   keys add a decoy grounding first, so the search must backtrack off
   a partnerless grounding before finding the real match. *)
type coord_spec =
  | Pair of int * int * int  (* head rel, partner rel, key *)
  | Solo of int * int
  | Lonely of int * int * int

let rel i = Printf.sprintf "R%d" i
let lonely_rel i = Printf.sprintf "L%d" i
let atom r k = { Ir.rel = r; args = [ Ir.Const (Value.Int k) ] }
let gatom r k = (r, [ Value.Int k ])

let query ~head ~post =
  { Ir.head; post; body = Ent_sql.Ast.True; binds = []; choose = 1 }

let build_entries specs =
  let next = ref 0 in
  let fresh () =
    let q = !next in
    incr next;
    q
  in
  List.concat_map
    (fun spec ->
      match spec with
      | Pair (a, b, k) ->
        let qa = fresh () and qb = fresh () in
        let ga =
          { Ground.g_head = [ gatom (rel a) k ]; g_post = [ gatom (rel b) k ] }
        in
        let gb =
          { Ground.g_head = [ gatom (rel b) k ]; g_post = [ gatom (rel a) k ] }
        in
        let decoy =
          {
            Ground.g_head = [ gatom (rel a) (k + 1000) ];
            g_post = [ gatom (rel b) (k + 1000) ];
          }
        in
        let gsa = if k mod 2 = 0 then [ decoy; ga ] else [ ga ] in
        [
          (qa, query ~head:[ atom (rel a) k ] ~post:[ atom (rel b) k ], gsa);
          (qb, query ~head:[ atom (rel b) k ] ~post:[ atom (rel a) k ], [ gb ]);
        ]
      | Solo (a, k) ->
        let q = fresh () in
        [
          ( q,
            query ~head:[ atom (rel a) k ] ~post:[],
            [ { Ground.g_head = [ gatom (rel a) k ]; g_post = [] } ] );
        ]
      | Lonely (a, b, k) ->
        let q = fresh () in
        [
          ( q,
            query ~head:[ atom (rel a) k ] ~post:[ atom (lonely_rel b) k ],
            [
              {
                Ground.g_head = [ gatom (rel a) k ];
                g_post = [ gatom (lonely_rel b) k ];
              };
            ] );
        ])
    specs

let coord_spec_gen =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun a b k -> Pair (a, b, k))
          (int_range 0 5) (int_range 0 5) (int_range 0 9);
        map2 (fun a k -> Solo (a, k)) (int_range 0 5) (int_range 0 9);
        map3
          (fun a b k -> Lonely (a, b, k))
          (int_range 0 5) (int_range 0 3) (int_range 0 9);
      ])

let print_coord_specs specs =
  String.concat ";"
    (List.map
       (function
         | Pair (a, b, k) -> Printf.sprintf "P(%d,%d,%d)" a b k
         | Solo (a, k) -> Printf.sprintf "S(%d,%d)" a k
         | Lonely (a, b, k) -> Printf.sprintf "L(%d,%d,%d)" a b k)
       specs)

(* The signature partition is a true partition: every entry lands in
   exactly one component, and no postcondition pattern in one component
   unifies with a head pattern in another (so no cross-component match
   can exist). *)
let prop_partition_is_true_partition =
  QCheck2.Test.make ~count:60
    ~name:"signature partition: exhaustive, disjoint, no cross-component match"
    ~print:print_coord_specs
    QCheck2.Gen.(list_size (int_range 1 24) coord_spec_gen)
    (fun specs ->
      let entries = build_entries specs in
      let comps = Coordinate.partition entries in
      let qid (q, _, _) = q in
      let flat = List.concat comps in
      if
        List.sort compare (List.map qid flat)
        <> List.sort compare (List.map qid entries)
      then
        QCheck2.Test.fail_report "components are not a permutation of input";
      List.iteri
        (fun i ci ->
          List.iteri
            (fun j cj ->
              if i <> j then
                List.iter
                  (fun (_, (q1 : Ir.t), _) ->
                    List.iter
                      (fun (_, (q2 : Ir.t), _) ->
                        List.iter
                          (fun post ->
                            List.iter
                              (fun head ->
                                if Ir.unifiable post head then
                                  QCheck2.Test.fail_report
                                    "cross-component (post, head) unifiable \
                                     pair")
                              q2.head)
                          q1.post)
                      cj)
                  ci)
            comps)
        comps;
      true)

(* Parallel per-component evaluation is the sequential search: same
   Answered/Empty/No_partner classification, identical groundings, in
   the same (input) order, at 2–4 domains. *)
let prop_parallel_evaluate_matches_sequential =
  QCheck2.Test.make ~count:40
    ~name:"evaluate_parallel ≡ evaluate on random query sets"
    ~print:(fun (d, specs) ->
      Printf.sprintf "domains=%d specs=%s" d (print_coord_specs specs))
    QCheck2.Gen.(
      pair (int_range 2 4) (list_size (int_range 1 24) coord_spec_gen))
    (fun (domains, specs) ->
      let entries = build_entries specs in
      let seq = Coordinate.evaluate entries in
      let pool = Pool.create ~domains in
      let par =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> Coordinate.evaluate_parallel ~runner:pool entries)
      in
      if List.length seq <> List.length par then
        QCheck2.Test.fail_report "result lengths differ";
      List.iter2
        (fun (q1, o1) (q2, o2) ->
          if q1 <> q2 then QCheck2.Test.fail_report "result order differs";
          match (o1, o2) with
          | Coordinate.Answered g1, Coordinate.Answered g2 when g1 = g2 -> ()
          | Coordinate.Empty, Coordinate.Empty -> ()
          | Coordinate.No_partner, Coordinate.No_partner -> ()
          | _ ->
            QCheck2.Test.fail_report
              (Printf.sprintf "outcome differs for qid %d" q1))
        seq par;
      true)

(* --- parallel/deterministic equivalence --- *)

let final_tables (world : Travel.t) =
  let catalog = Manager.catalog world.manager in
  List.map
    (fun name ->
      let rows =
        match Ent_storage.Catalog.find catalog name with
        | None -> []
        | Some t ->
          List.map
            (fun (_, row) ->
              List.map Ent_storage.Value.to_string
                (Ent_storage.Tuple.to_list row))
            (Ent_storage.Table.to_list t)
      in
      (name, List.sort compare rows))
    (List.sort compare (Ent_storage.Catalog.table_names catalog))

let run_case ~domains ~kind ~n =
  let runner = if domains > 1 then Some (Pool.create ~domains) else None in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown runner)
  @@ fun () ->
  let config =
    {
      Scheduler.default_config with
      connections = 20;
      trigger = Scheduler.Every_arrivals 25;
      runner;
    }
  in
  let world = Travel.build ~users:120 ~cities:6 ~config () in
  let c = Certify.create () in
  Manager.observe world.manager ~on_event:(Certify.on_engine_event c)
    ~on_entangle:(Certify.on_entangle c);
  let programs = Gen.batch world ~transactional:true kind ~n ~tag_base:0 in
  let ids = List.map (Manager.submit world.manager) programs in
  Manager.drain world.manager;
  let committed =
    List.filter
      (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
      ids
  in
  (Certify.ok c, List.sort compare committed, final_tables world)

let prop_parallel_matches_deterministic =
  let kinds = [ Gen.No_social; Gen.Social; Gen.Entangled ] in
  let kind_name = function
    | Gen.No_social -> "nosocial"
    | Gen.Social -> "social"
    | Gen.Entangled -> "entangled"
  in
  let gen =
    QCheck2.Gen.(triple (int_range 2 4) (int_range 20 60) (oneofl kinds))
  in
  QCheck2.Test.make ~count:6
    ~name:"parallel run certifies and matches deterministic effects"
    ~print:(fun (d, n, k) -> Printf.sprintf "domains=%d n=%d kind=%s" d n (kind_name k))
    gen
    (fun (domains, n, kind) ->
      let det_ok, det_committed, det_tables = run_case ~domains:1 ~kind ~n in
      let par_ok, par_committed, par_tables = run_case ~domains ~kind ~n in
      if not det_ok then QCheck2.Test.fail_report "deterministic run failed certification";
      if not par_ok then QCheck2.Test.fail_report "parallel run failed certification";
      if det_committed <> par_committed then
        QCheck2.Test.fail_report "committed-transaction sets differ";
      if det_tables <> par_tables then
        QCheck2.Test.fail_report "final table states differ";
      true)

let () =
  Alcotest.run "parallel"
    [
      ( "shards",
        [
          Alcotest.test_case "shard map" `Quick test_shard_map;
          Alcotest.test_case "cross-shard no contention" `Quick
            test_cross_shard_no_contention;
          Alcotest.test_case "same-shard disjoint rows" `Quick
            test_same_shard_disjoint_rows;
          Alcotest.test_case "same resource conflicts" `Quick
            test_same_resource_still_conflicts;
          Alcotest.test_case "static lock order across shards" `Quick
            test_static_lock_order_across_shards;
        ] );
      ( "coordination",
        [
          Tgen.to_alcotest prop_partition_is_true_partition;
          Tgen.to_alcotest prop_parallel_evaluate_matches_sequential;
        ] );
      ( "equivalence",
        [ Tgen.to_alcotest prop_parallel_matches_deterministic ] );
    ]
