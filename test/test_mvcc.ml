(* MVCC snapshot reads beside Strict 2PL.

   Three layers of certification for the versioned-table / snapshot-
   isolation tentpole:

   - adversarial version-chain tests against the raw [Table] API
     (visibility closure, GC, chain accounting);
   - the headline lock-manager assertion: a snapshot transaction
     acquires *zero* read locks (asserted on the lock-manager's probe
     stream, with a 2PL control transaction in the same schedule);
   - a differential QCheck battery: the same randomized batch executed
     all-2PL, all-SI and mixed must certify under the level-aware
     checker and agree on committed effects and final table state
     (the workload is write-disjoint, so no SI anomaly can separate
     the levels). *)

open Ent_storage
module Manager = Ent_core.Manager
module Scheduler = Ent_core.Scheduler
module Program = Ent_core.Program
module Engine = Ent_txn.Engine
module Lock = Ent_txn.Lock
module Certify = Ent_schedule.Certify
module Travel = Ent_workload.Travel
module Wgen = Ent_workload.Gen

(* [Table.set_versioned] is process-global: every test that flips it
   restores the previous state, so suite order cannot leak MVCC mode
   into the plain-storage tests. *)
let with_versioned f =
  let was = Table.versioned_enabled () in
  Table.set_versioned true;
  Fun.protect ~finally:(fun () -> Table.set_versioned was) f

let int_table () =
  Table.create ~name:"T" (Schema.make [ { Schema.name = "v"; ty = T_int } ])

let read_live table id = List.assoc_opt id (Table.to_list table)

let check_tuple name expected actual =
  Alcotest.(check (option (list string)))
    name expected
    (Option.map (fun t -> List.map Value.to_string (Tuple.to_list t)) actual)

(* --- version-chain semantics on the raw table --- *)

let test_chain_visibility () =
  with_versioned @@ fun () ->
  let t = int_table () in
  let id = Table.insert t [| Value.Int 1 |] in
  (* writer 0 is bootstrap: visible to every snapshot *)
  ignore (Table.update ~writer:5 t id [| Value.Int 2 |]);
  check_tuple "snapshot before writer 5 sees the bootstrap value"
    (Some [ "1" ])
    (Table.read_at t id ~visible:(fun w -> w = 0));
  check_tuple "snapshot including writer 5 sees the update" (Some [ "2" ])
    (Table.read_at t id ~visible:(fun _ -> true));
  check_tuple "live read sees the update" (Some [ "2" ]) (read_live t id);
  ignore (Table.delete ~writer:7 t id);
  check_tuple "snapshot before the delete still sees the row" (Some [ "2" ])
    (Table.read_at t id ~visible:(fun w -> w <> 7));
  Alcotest.(check bool)
    "snapshot after the delete sees nothing" true
    (Table.read_at t id ~visible:(fun _ -> true) = None);
  Alcotest.(check bool) "chain is non-empty" true (Table.chain_entries t > 0)

let test_uncommitted_insert_invisible () =
  with_versioned @@ fun () ->
  let t = int_table () in
  let _stable = Table.insert t [| Value.Int 10 |] in
  let fresh = Table.insert ~writer:9 t [| Value.Int 99 |] in
  let seen visible =
    List.of_seq (Table.to_seq_at t ~visible)
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check bool)
    "scan-at excludes the in-flight writer's insert" true
    (not (List.mem fresh (seen (fun w -> w <> 9))));
  Alcotest.(check bool)
    "scan-at includes it once the writer is visible" true
    (List.mem fresh (seen (fun _ -> true)))

let test_gc_drains_chains () =
  with_versioned @@ fun () ->
  let t = int_table () in
  let id = Table.insert t [| Value.Int 1 |] in
  ignore (Table.update ~writer:3 t id [| Value.Int 2 |]);
  ignore (Table.update ~writer:4 t id [| Value.Int 3 |]);
  Alcotest.(check bool) "two chain entries live" true (Table.chain_entries t >= 2);
  (* GC below writer 4 keeps the newest reachable entry's history *)
  ignore (Table.gc_versions t ~obsolete:(fun w -> w <= 3));
  check_tuple "live state survives partial GC" (Some [ "3" ]) (read_live t id);
  ignore (Table.gc_versions t ~obsolete:(fun _ -> true));
  Alcotest.(check int) "full GC empties the chains" 0 (Table.chain_entries t);
  check_tuple "live state survives full GC" (Some [ "3" ]) (read_live t id)

(* --- the headline acceptance assertion: snapshot reads take no locks --- *)

(* One snapshot transaction and one 2PL control transaction run the
   same read-then-write program. The lock-manager probe stream must
   show: zero S/IS requests from the snapshot transaction (its writes
   still take IX/X), and at least one shared request from the control
   (same program, classical locking) — proving the stream would have
   caught a leaked read lock. *)
let test_snapshot_zero_read_locks () =
  let m = Gen.travel_manager () in
  let requests : (int * Lock.mode) list ref = ref [] in
  let si_txns = ref [] in
  Manager.observe m
    ~on_event:(function
      | Engine.Ev_begin (txn, Engine.Snapshot) -> si_txns := txn :: !si_txns
      | _ -> ())
    ~on_entangle:(fun ~event:_ _ -> ());
  let body =
    "BEGIN TRANSACTION;\n\
     SELECT fno FROM Flights;\n\
     INSERT INTO Reserve VALUES ('solo', 'flight', 122);\n\
     COMMIT;"
  in
  Lock.set_probe
    (Some (fun ~txn _resource mode -> requests := (txn, mode) :: !requests));
  Fun.protect ~finally:(fun () -> Lock.set_probe None) @@ fun () ->
  let si =
    Manager.submit m
      (Program.of_string ~label:"si" ~isolation:Engine.Snapshot body)
  in
  let control = Manager.submit m (Program.of_string ~label:"2pl" body) in
  Manager.drain m;
  Gen.check_outcome m "snapshot transaction commits" "committed" si;
  Gen.check_outcome m "control transaction commits" "committed" control;
  Alcotest.(check int) "exactly one snapshot txn began" 1 (List.length !si_txns);
  let of_si (txn, _) = List.mem txn !si_txns in
  let is_read (_, mode) = mode = Lock.S || mode = Lock.IS in
  let si_reqs, other_reqs = List.partition of_si !requests in
  Alcotest.(check int)
    "snapshot transaction acquired zero read locks" 0
    (List.length (List.filter is_read si_reqs));
  Alcotest.(check bool)
    "snapshot transaction still locks its writes" true
    (List.exists (fun (_, m) -> m = Lock.IX || m = Lock.X) si_reqs);
  Alcotest.(check bool)
    "the 2PL control did take read locks (the probe works)" true
    (List.exists is_read other_reqs)

(* --- differential battery: 2pl vs si vs mixed --- *)

let retag level programs =
  let snap (p : Program.t) =
    Program.make ~label:p.label ~transactional:p.transactional
      ~isolation:Engine.Snapshot p.ast
  in
  match level with
  | `All_2pl -> programs
  | `All_si -> List.map snap programs
  | `Mixed -> List.mapi (fun i p -> if i land 1 = 1 then snap p else p) programs

(* Run one randomized batch (entangled pairs + plain social bookings)
   under [level]: returns per-label outcomes, the sorted committed
   Reserve contents, the certifier's verdict, and the version-chain
   residue after the drain. *)
let run_batch ~world_seed ~pairs ~plain level =
  let config =
    { Scheduler.default_config with trigger = Scheduler.Every_arrivals 4 }
  in
  let world = Travel.build ~seed:world_seed ~users:30 ~cities:5 ~config () in
  let certifier = Certify.create () in
  Manager.observe world.Travel.manager
    ~on_event:(Certify.on_engine_event certifier)
    ~on_entangle:(Certify.on_entangle certifier);
  let programs =
    Wgen.batch world ~transactional:true Wgen.Entangled ~n:(2 * pairs)
      ~tag_base:0
    @ Wgen.batch world ~transactional:true Wgen.Social ~n:plain ~tag_base:500
  in
  let programs = retag level programs in
  let ids =
    List.map
      (fun (p : Program.t) ->
        (p.label, Manager.submit world.Travel.manager p))
      programs
  in
  Manager.drain world.Travel.manager;
  let outcomes =
    List.map
      (fun (label, id) ->
        (label, Gen.outcome_name (Manager.outcome world.Travel.manager id)))
      ids
  in
  let reserve =
    List.sort compare
      (List.map
         (fun row -> Array.to_list (Array.map Value.to_string row))
         (Manager.query world.Travel.manager "SELECT uid, fid FROM Reserve"))
  in
  let chains = Engine.chain_entries (Manager.engine world.Travel.manager) in
  (outcomes, reserve, Certify.violations certifier, chains)

let prop_differential_isolation =
  QCheck2.Test.make ~count:20
    ~name:"one batch under 2pl, si and mixed: certifies, agrees, GCs"
    QCheck2.Gen.(triple (int_range 1 4) (int_range 0 5) (int_range 0 999))
    (fun (pairs, plain, world_seed) ->
      let runs =
        List.map
          (fun (name, level) ->
            (name, run_batch ~world_seed ~pairs ~plain level))
          [ ("2pl", `All_2pl); ("si", `All_si); ("mixed", `Mixed) ]
      in
      List.iter
        (fun (name, (outcomes, _, violations, chains)) ->
          if violations <> [] then
            QCheck2.Test.fail_reportf "%s run fails certification: [%s] %s"
              name
              (List.hd violations).Certify.code
              (List.hd violations).Certify.detail;
          if chains <> 0 then
            QCheck2.Test.fail_reportf
              "%s run leaks %d version-chain entries after drain" name chains;
          List.iter
            (fun (label, outcome) ->
              if outcome <> "committed" then
                QCheck2.Test.fail_reportf "%s run: %s %s" name label outcome)
            outcomes)
        runs;
      (* The workload writes disjoint fresh rows, so no SI anomaly is
         possible and every level must produce the same database. *)
      match runs with
      | (_, (o0, r0, _, _)) :: rest ->
        List.iter
          (fun (name, (o, r, _, _)) ->
            if o <> o0 then
              QCheck2.Test.fail_reportf "%s outcomes differ from 2pl" name;
            if r <> r0 then
              QCheck2.Test.fail_reportf
                "%s final Reserve contents differ from 2pl" name)
          rest;
        true
      | [] -> true)

let () =
  Alcotest.run "mvcc"
    [ ( "version-chains",
        [ Alcotest.test_case "visibility closure" `Quick test_chain_visibility;
          Alcotest.test_case "uncommitted insert invisible" `Quick
            test_uncommitted_insert_invisible;
          Alcotest.test_case "gc drains chains" `Quick test_gc_drains_chains ] );
      ( "locks",
        [ Alcotest.test_case "snapshot reads take zero locks" `Quick
            test_snapshot_zero_read_locks ] );
      ( "differential",
        List.map Gen.to_alcotest [ prop_differential_isolation ] ) ]
