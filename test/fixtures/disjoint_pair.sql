-- Same opposite-order shape as deadlock_pair.sql, but the predicates
-- are disjoint on both tables: the transactions touch different rows,
-- so no lock wait can arise and the lint must stay quiet.

CREATE TABLE Flights (fno INT, dest STRING);
CREATE TABLE Reserve (name STRING, fno INT);

BEGIN TRANSACTION;
UPDATE Flights SET dest = 'LA' WHERE fno = 1;
UPDATE Reserve SET fno = 2 WHERE name = 'Mickey';
COMMIT;

BEGIN TRANSACTION;
UPDATE Reserve SET fno = 3 WHERE name = 'Minnie';
UPDATE Flights SET dest = 'NY' WHERE fno = 2;
COMMIT;
