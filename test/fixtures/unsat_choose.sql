-- Seeded degenerate entangled queries.
--
-- txn-1: the grounding body requires fno = 122 AND fno = 123 at once —
-- unsatisfiable, coordination can never succeed.
-- txn-2: CHOOSE 3 over a body whose head variable has at most two
-- candidate values (and k > 1 is unsupported by the evaluator anyway).

CREATE TABLE Flights (fno INT, dest STRING);

BEGIN TRANSACTION;
SELECT 'Mickey', fno AS @fno INTO ANSWER R
WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')
AND fno = 122 AND fno = 123
AND ('Minnie', fno) IN ANSWER R
CHOOSE 1;
COMMIT;

BEGIN TRANSACTION;
SELECT 'Donald', fno AS @fno INTO ANSWER R2
WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')
AND fno IN (122, 123)
AND ('Daffy', fno) IN ANSWER R2
CHOOSE 3;
COMMIT;
