-- Seeded -Q-style hazard: an entangled query outside any transaction
-- block. The coordination and the INSERT that uses its answer commit
-- separately, so a partner failure in between leaves a booking on a
-- dead premise.

CREATE TABLE Flights (fno INT, dest STRING);
CREATE TABLE Reserve (name STRING, fno INT);
INSERT INTO Flights VALUES (122, 'LA');

SELECT 'Mickey', fno AS @fno INTO ANSWER R
WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')
AND ('Minnie', fno) IN ANSWER R
CHOOSE 1;
INSERT INTO Reserve VALUES ('Mickey', @fno);
