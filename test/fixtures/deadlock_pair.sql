-- Seeded potential deadlock: the two transactions update the same
-- rows of Flights and Reserve in opposite orders, so under strict 2PL
-- each can hold the lock the other needs.

CREATE TABLE Flights (fno INT, dest STRING);
CREATE TABLE Reserve (name STRING, fno INT);

BEGIN TRANSACTION;
UPDATE Flights SET dest = 'LA' WHERE fno = 1;
UPDATE Reserve SET fno = 2 WHERE name = 'Mickey';
COMMIT;

BEGIN TRANSACTION;
UPDATE Reserve SET fno = 3 WHERE name = 'Mickey';
UPDATE Flights SET dest = 'NY' WHERE fno = 1;
COMMIT;
