-- Seeded widowed-transaction risks (Requirement C.4): after the
-- entangled query coordinates, the DELETE invalidates the rows the
-- partner grounded on, and the ROLLBACK aborts a transaction whose
-- partner already built on its premise.

CREATE TABLE Flights (fno INT, dest STRING);

BEGIN TRANSACTION;
SELECT 'Mickey', fno AS @fno INTO ANSWER R
WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')
AND ('Minnie', fno) IN ANSWER R
CHOOSE 1;
DELETE FROM Flights WHERE dest = 'LA';
ROLLBACK;
COMMIT;
