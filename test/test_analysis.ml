(* Tests for the entlint analysis library: the predicate abstraction,
   the static lint passes over the seeded fixture programs, the history
   parser, and the history checker on the Figure 3 anomaly schedules —
   all through the same Driver paths the CLI uses. *)

open Ent_analysis

let codes findings =
  List.map (fun (f : Finding.t) -> f.code) findings |> List.sort String.compare

let errors findings = List.filter Finding.is_error findings

let inputs_of_fixture name =
  match Driver.inputs_of_file ("fixtures/" ^ name) with
  | Ok inputs -> inputs
  | Error msg -> Alcotest.failf "loading %s: %s" name msg

let lint_fixture name = Lint.run (inputs_of_fixture name)

(* --- predicate abstraction --- *)

let pred_of_where ?(owns = fun _ -> true) text =
  Pred.of_cond ~owns (Ent_sql.Parser.parse_cond text)

let test_pred_unsat () =
  Alcotest.(check bool) "contradictory equalities" true
    (Pred.unsat (pred_of_where "a = 1 AND a = 2"));
  Alcotest.(check bool) "empty range" true
    (Pred.unsat (pred_of_where "a > 10 AND a < 5"));
  Alcotest.(check bool) "eq outside IN-list" true
    (Pred.unsat (pred_of_where "a = 4 AND a IN (1, 2, 3)"));
  Alcotest.(check bool) "constant falsum" true
    (Pred.unsat (pred_of_where "1 = 2"));
  Alcotest.(check bool) "satisfiable" false
    (Pred.unsat (pred_of_where "a = 1 AND b > 2 AND a IN (1, 2)"));
  Alcotest.(check bool) "boundary kept" false
    (Pred.unsat (pred_of_where "a >= 5 AND a <= 5"));
  Alcotest.(check bool) "strict boundary empty" true
    (Pred.unsat (pred_of_where "a >= 5 AND a < 5"))

let test_pred_overlap () =
  let p s = pred_of_where s in
  Alcotest.(check bool) "same key" true
    (Pred.may_overlap (p "a = 1") (p "a = 1"));
  Alcotest.(check bool) "different keys" false
    (Pred.may_overlap (p "a = 1") (p "a = 2"));
  Alcotest.(check bool) "range vs point inside" true
    (Pred.may_overlap (p "a > 0 AND a < 10") (p "a = 5"));
  Alcotest.(check bool) "range vs point outside" false
    (Pred.may_overlap (p "a > 0 AND a < 10") (p "a = 12"));
  Alcotest.(check bool) "disjoint IN-lists" false
    (Pred.may_overlap (p "a IN (1, 2)") (p "a IN (3, 4)"));
  Alcotest.(check bool) "unconstrained may overlap anything" true
    (Pred.may_overlap (p "a = 1") Pred.top);
  (* constraints on different columns never prove disjointness *)
  Alcotest.(check bool) "different columns" true
    (Pred.may_overlap (p "a = 1") (p "b = 2"))

let test_pred_count () =
  let p = pred_of_where "a IN (1, 2, 3) AND a <> 2 AND b > 0" in
  Alcotest.(check (option int)) "filtered IN-list" (Some 2) (Pred.count p "a");
  Alcotest.(check (option int)) "bounded-only column" None (Pred.count p "b");
  Alcotest.(check (option int)) "unknown column" None (Pred.count p "c")

(* --- static lint passes on the seeded fixtures --- *)

let test_lint_deadlock_pair () =
  let findings = lint_fixture "deadlock_pair.sql" in
  Alcotest.(check (list string)) "one deadlock error" [ "potential-deadlock" ]
    (codes findings);
  match findings with
  | [ f ] ->
    Alcotest.(check bool) "is error" true (Finding.is_error f);
    Alcotest.(check int) "witness names both programs" 2 (List.length f.witness);
    Alcotest.(check bool) "positions in witness" true
      (List.for_all
         (fun line ->
           (* each witness line carries two source positions *)
           List.length (String.split_on_char ':' line) >= 3)
         f.witness)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_lint_disjoint_pair () =
  (* same opposite lock order, but provably disjoint predicates *)
  Alcotest.(check (list string)) "no findings" []
    (codes (lint_fixture "disjoint_pair.sql"))

let test_lint_unsat_choose () =
  let findings = lint_fixture "unsat_choose.sql" in
  Alcotest.(check (list string)) "codes"
    [ "choose-bound"; "choose-unsupported"; "unsat-entangled" ]
    (codes findings);
  Alcotest.(check int) "all errors" 3 (List.length (errors findings));
  let unsat =
    List.find (fun (f : Finding.t) -> f.code = "unsat-entangled") findings
  in
  Alcotest.(check string) "in txn-1" "txn-1" unsat.program;
  Alcotest.(check bool) "witness names the column" true
    (List.exists
       (fun line ->
         String.length line >= 10 && String.sub line 0 10 = "column fno")
       unsat.witness)

let test_lint_widow_risk () =
  let findings = lint_fixture "widow_risk.sql" in
  Alcotest.(check (list string)) "both widow findings"
    [ "widow-risk"; "widow-risk" ] (codes findings);
  Alcotest.(check int) "rollback variant is the error" 1
    (List.length (errors findings))

let test_lint_autocommit_hazard () =
  let findings = lint_fixture "autocommit_hazard.sql" in
  Alcotest.(check (list string)) "hazard flagged" [ "autocommit-entangle" ]
    (codes findings);
  Alcotest.(check int) "warning only" 0 (List.length (errors findings))

let test_lint_clean_examples () =
  List.iter
    (fun path ->
      match Driver.inputs_of_file path with
      | Error msg -> Alcotest.failf "loading %s: %s" path msg
      | Ok inputs ->
        Alcotest.(check (list string)) (path ^ " is clean") []
          (codes (Lint.run inputs)))
    [ "../examples/sql/booking_pair.sql"; "../examples/sql/dinner_party.sql" ]

let test_lint_positions () =
  (* findings point at the offending statement, 1-based *)
  let findings = lint_fixture "widow_risk.sql" in
  let lines =
    List.map (fun (f : Finding.t) -> f.at.Ent_sql.Ast.line) findings
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "statement lines" [ 13; 14 ] lines

let test_parse_error_has_position () =
  match Driver.inputs_of_script ~source:"bad.sql" "BEGIN TRANSACTION; SELECT FROM;" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    Alcotest.(check bool) ("position in " ^ msg) true
      (List.exists
         (fun part -> part = "1") (* line 1 appears as a :1: component *)
         (String.split_on_char ':' msg))

let test_exit_codes () =
  let deadlock = lint_fixture "deadlock_pair.sql" in
  let hazard = lint_fixture "autocommit_hazard.sql" in
  Alcotest.(check int) "errors gate" 1 (Driver.exit_code deadlock);
  Alcotest.(check int) "warnings pass" 0 (Driver.exit_code hazard);
  Alcotest.(check int) "warnings gate under strict" 1
    (Driver.exit_code ~strict:true hazard);
  Alcotest.(check int) "clean" 0 (Driver.exit_code [])

(* --- workload mode --- *)

let test_workload_lint () =
  (match Driver.workload_inputs ~n:4 "entangled-t" with
  | Error msg -> Alcotest.fail msg
  | Ok inputs ->
    Alcotest.(check int) "four programs" 4 (List.length inputs);
    Alcotest.(check (list string)) "transactional workload is clean" []
      (codes (Lint.run inputs)));
  (match Driver.workload_inputs ~n:2 "entangled-q" with
  | Error msg -> Alcotest.fail msg
  | Ok inputs ->
    let findings = Lint.run inputs in
    Alcotest.(check (list string)) "-Q flagged"
      [ "autocommit-entangle"; "autocommit-entangle" ] (codes findings));
  match Driver.workload_inputs "no-such" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown workload accepted"

(* --- the conflict/commutativity matrix --- *)

let test_matrix_deadlock_pair () =
  let m = Matrix.analyze (inputs_of_fixture "deadlock_pair.sql") in
  Alcotest.(check int) "two programs" 2 (Array.length m.inputs);
  Alcotest.(check bool) "off-diagonal conflicts" true
    (m.cells.(0).(1).verdict <> Matrix.Commutes);
  Alcotest.(check bool) "symmetric verdict" true
    (m.cells.(0).(1).verdict = m.cells.(1).(0).verdict);
  Alcotest.(check bool) "lock cycle found" true (m.cycles <> []);
  (* the matrix path reports exactly what the lint path reports *)
  Alcotest.(check (list string)) "same findings" [ "potential-deadlock" ]
    (codes (Matrix.deadlock_findings m))

let test_matrix_disjoint_pair () =
  let m = Matrix.analyze (inputs_of_fixture "disjoint_pair.sql") in
  Alcotest.(check bool) "provably disjoint programs commute" true
    (m.cells.(0).(1).verdict = Matrix.Commutes);
  Alcotest.(check bool) "no witnesses when commuting" true
    (m.cells.(0).(1).witnesses = []);
  Alcotest.(check (list (list string))) "no deadlock cycles" []
    (List.map (List.map (fun (e : Matrix.edge) -> e.eu)) m.cycles)

let test_matrix_workload () =
  match Driver.workload_inputs ~n:4 "entangled-t" with
  | Error msg -> Alcotest.fail msg
  | Ok inputs ->
    let m = Matrix.analyze inputs in
    (* two instances of the same booking program race on Reserve *)
    Alcotest.(check bool) "diagonal self-conflict" true
      (m.cells.(0).(0).verdict <> Matrix.Commutes);
    Alcotest.(check bool) "lock-order edges exist" true (m.edges <> []);
    Alcotest.(check (list (list string))) "statically deadlock-free" []
      (List.map (List.map (fun (e : Matrix.edge) -> e.eu)) m.cycles);
    let rendered = Format.asprintf "%a" Matrix.pp m in
    Alcotest.(check bool) "pp states deadlock-freedom" true
      (let needle = "deadlock-free" in
       let n = String.length needle in
       let rec find i =
         i + n <= String.length rendered
         && (String.sub rendered i n = needle || find (i + 1))
       in
       find 0);
    (match Matrix.to_json m with
    | Ent_obs.Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("json has " ^ k) true (List.mem_assoc k fields))
        [ "programs"; "matrix"; "lock_order" ]
    | _ -> Alcotest.fail "to_json is not an object");
    let dot = Matrix.lock_graph_dot m in
    Alcotest.(check bool) "dot output" true
      (String.length dot > 7 && String.sub dot 0 7 = "digraph")

(* --- finding deduplication and JSON rendering --- *)

let test_dedupe () =
  let fs = lint_fixture "widow_risk.sql" in
  Alcotest.(check bool) "fixture has findings" true (fs <> []);
  let sorted = List.stable_sort Finding.compare fs in
  Alcotest.(check bool) "idempotent" true (Driver.dedupe fs = sorted);
  (* duplicated input collapses back to the original *)
  Alcotest.(check bool) "duplicates dropped" true
    (Driver.dedupe (fs @ fs) = sorted);
  Alcotest.(check int) "count preserved" (List.length fs)
    (List.length (Driver.dedupe (List.rev fs @ fs)))

let test_findings_json () =
  let fs = lint_fixture "deadlock_pair.sql" in
  match Driver.findings_json fs with
  | Ent_obs.Json.Obj fields ->
    (match List.assoc_opt "errors" fields with
    | Some (Ent_obs.Json.Int n) ->
      Alcotest.(check int) "errors counted" (List.length (errors fs)) n
    | _ -> Alcotest.fail "errors field missing");
    (match List.assoc_opt "findings" fields with
    | Some (Ent_obs.Json.List items) ->
      Alcotest.(check int) "all findings rendered" (List.length fs)
        (List.length items);
      List.iter
        (function
          | Ent_obs.Json.Obj f ->
            List.iter
              (fun k ->
                Alcotest.(check bool) ("finding has " ^ k) true
                  (List.mem_assoc k f))
              [ "code"; "severity"; "source"; "line"; "col"; "message" ]
          | _ -> Alcotest.fail "finding is not an object")
        items
    | _ -> Alcotest.fail "findings field missing")
  | _ -> Alcotest.fail "findings_json is not an object"

(* --- history parsing --- *)

let test_histparse_roundtrip () =
  let open Ent_schedule.History in
  let text = "RG1(Flights) RQ2(Flights) R3(x) W1(Reserve[5]) E1{1,2} C1 C2 A3" in
  let parsed =
    match Driver.history_of_text text with
    | Ok h -> h
    | Error msg -> Alcotest.fail msg
  in
  let expected =
    [ Ground_read (1, Table "Flights");
      Quasi_read (2, Table "Flights");
      Read (3, Table "x");
      Write (1, Row ("Reserve", 5));
      Entangle (1, [ 1; 2 ]);
      Commit 1;
      Commit 2;
      Abort 3 ]
  in
  Alcotest.(check bool) "ops" true (parsed = expected);
  (* printing a parsed history and re-parsing it is the identity *)
  let printed = Format.asprintf "%a" pp parsed in
  Alcotest.(check bool) "roundtrip" true
    (Driver.history_of_text printed = Ok parsed)

let test_histparse_comments_and_errors () =
  (match Driver.history_of_text "# comment\nC1 # trailing\n" with
  | Ok [ Ent_schedule.History.Commit 1 ] -> ()
  | Ok _ -> Alcotest.fail "unexpected ops"
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Driver.history_of_text bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "X1(x)"; "R(x)"; "W1[x]"; "E1{}"; "R1(Reserve[x])" ]

(* --- history checking (the Figure 3 anomalies, via files) --- *)

let check_fixture name =
  match Result.bind (Driver.read_file ("fixtures/" ^ name)) Driver.history_of_text with
  | Ok h -> Histcheck.check h
  | Error msg -> Alcotest.failf "loading %s: %s" name msg

let violation_codes (r : Histcheck.report) =
  List.map (fun (v : Histcheck.violation) -> v.code) r.violations
  |> List.sort String.compare

let test_check_fig3a_widow () =
  let r = check_fixture "fig3a_widow.txt" in
  Alcotest.(check (list string)) "valid" [] r.validity;
  Alcotest.(check (list string)) "widowed" [ "widowed" ] (violation_codes r);
  Alcotest.(check bool) "not ok" false (Histcheck.ok r);
  let v = List.hd r.violations in
  Alcotest.(check string) "witness" "entanglement E1 joins T2 (aborted) with T1 (committed)"
    v.witness

let test_check_fig3b_quasi () =
  let r = check_fixture "fig3b_quasi.txt" in
  Alcotest.(check (list string)) "cycle + unrepeatable quasi-read"
    [ "conflict-cycle"; "unrepeatable-quasi-read" ] (violation_codes r);
  let cycle = List.hd r.violations in
  Alcotest.(check string) "concrete cycle witness" "T3 -> T1 -> T3" cycle.witness;
  Alcotest.(check bool) "not ok" false (Histcheck.ok r)

let test_check_fig3c_dirty () =
  let r = check_fixture "fig3c_dirty.txt" in
  Alcotest.(check (list string)) "read-from-aborted" [ "read-from-aborted" ]
    (violation_codes r);
  let v = List.hd r.violations in
  Alcotest.(check string) "witness names the pair and object"
    "T2 read x after aborted T1 wrote x (dirty read)" v.witness;
  Alcotest.(check bool) "not ok" false (Histcheck.ok r)

let test_check_clean_history () =
  let r = check_fixture "../../examples/histories/serializable.txt" in
  Alcotest.(check (list string)) "no violations" [] (violation_codes r);
  Alcotest.(check bool) "ok" true (Histcheck.ok r);
  Alcotest.(check (option bool)) "serializable" (Some true) r.serializable;
  Alcotest.(check bool) "full level" true (r.level = `Full)

(* --- recording real executions through the Driver --- *)

let booking_script =
  "CREATE TABLE Flights (fno INT, dest STRING);\n\
   CREATE TABLE Reserve (name STRING, fno INT);\n\
   INSERT INTO Flights VALUES (1, 'LA');\n\
   INSERT INTO Flights VALUES (2, 'LA');\n\
   BEGIN TRANSACTION;\n\
   SELECT 'Mickey', fno AS @fno INTO ANSWER R\n\
   WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')\n\
   AND ('Minnie', fno) IN ANSWER R CHOOSE 1;\n\
   INSERT INTO Reserve VALUES ('Mickey', @fno);\n\
   COMMIT;\n\
   BEGIN TRANSACTION;\n\
   SELECT 'Minnie', fno AS @fno INTO ANSWER R\n\
   WHERE (fno) IN (SELECT fno FROM Flights WHERE dest = 'LA')\n\
   AND ('Mickey', fno) IN ANSWER R CHOOSE 1;\n\
   INSERT INTO Reserve VALUES ('Minnie', @fno);\n\
   COMMIT;"

let test_record_script () =
  match Driver.record_script booking_script with
  | Error msg -> Alcotest.fail msg
  | Ok history ->
    let r = Histcheck.check history in
    Alcotest.(check (list string)) "valid schedule" [] r.validity;
    Alcotest.(check (list string)) "no anomalies under full isolation" []
      (violation_codes r);
    Alcotest.(check bool) "ok" true (Histcheck.ok r);
    Alcotest.(check bool) "records the entanglement" true
      (List.exists
         (function
           | Ent_schedule.History.Entangle _ -> true
           | _ -> false)
         history)

let test_record_bad_isolation () =
  match Driver.record_script ~isolation:"bogus" booking_script with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bogus isolation level"

let () =
  Alcotest.run "analysis"
    [ ( "pred",
        [ Alcotest.test_case "unsat" `Quick test_pred_unsat;
          Alcotest.test_case "overlap" `Quick test_pred_overlap;
          Alcotest.test_case "count" `Quick test_pred_count ] );
      ( "lint",
        [ Alcotest.test_case "deadlock pair" `Quick test_lint_deadlock_pair;
          Alcotest.test_case "disjoint pair" `Quick test_lint_disjoint_pair;
          Alcotest.test_case "unsat + choose" `Quick test_lint_unsat_choose;
          Alcotest.test_case "widow risk" `Quick test_lint_widow_risk;
          Alcotest.test_case "autocommit hazard" `Quick test_lint_autocommit_hazard;
          Alcotest.test_case "clean examples" `Quick test_lint_clean_examples;
          Alcotest.test_case "finding positions" `Quick test_lint_positions;
          Alcotest.test_case "parse error position" `Quick test_parse_error_has_position;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "workloads" `Quick test_workload_lint ] );
      ( "matrix",
        [ Alcotest.test_case "deadlock pair" `Quick test_matrix_deadlock_pair;
          Alcotest.test_case "disjoint pair" `Quick test_matrix_disjoint_pair;
          Alcotest.test_case "workload suite" `Quick test_matrix_workload ] );
      ( "driver",
        [ Alcotest.test_case "dedupe" `Quick test_dedupe;
          Alcotest.test_case "findings json" `Quick test_findings_json ] );
      ( "histparse",
        [ Alcotest.test_case "roundtrip" `Quick test_histparse_roundtrip;
          Alcotest.test_case "comments and errors" `Quick
            test_histparse_comments_and_errors ] );
      ( "histcheck",
        [ Alcotest.test_case "figure 3a widowed" `Quick test_check_fig3a_widow;
          Alcotest.test_case "figure 3b quasi-read" `Quick test_check_fig3b_quasi;
          Alcotest.test_case "figure 3c dirty read" `Quick test_check_fig3c_dirty;
          Alcotest.test_case "clean history" `Quick test_check_clean_history ] );
      ( "record",
        [ Alcotest.test_case "record and check" `Quick test_record_script;
          Alcotest.test_case "bad isolation" `Quick test_record_bad_isolation ] )
    ]
