(* Tests for the online schedule certifier (entcheck's dynamic side):
   unit histories pinning each violation code, agreement with the
   offline Appendix C checker, bounded-memory recording, certification
   of real scheduler runs, and a mutation suite — anomalies seeded
   into clean schedules must be rejected (the acceptance bar is >= 95%;
   these operators are constructed so the property demands 100%). *)

open Ent_schedule
open History
module Manager = Ent_core.Manager
module Engine = Ent_txn.Engine
module Histcheck = Ent_analysis.Histcheck

let x = Named "x"
let y = Named "y"
let z = Named "z"
let w = Named "w"

let codes h =
  Certify.check_history h
  |> List.map (fun (v : Certify.violation) -> v.code)
  |> List.sort_uniq String.compare

let check_codes name expected h =
  Alcotest.(check (list string)) name expected (codes h)

(* The example schedule of §C.1 (clean). *)
let example_c1 =
  [ Ground_read (1, x);
    Ground_read (2, y);
    Read (3, z);
    Entangle (1, [ 1; 2 ]);
    Write (1, z);
    Write (2, w);
    Commit 1;
    Commit 2;
    Commit 3 ]

let figure_3a =
  [ Ground_read (1, x);
    Ground_read (2, x);
    Entangle (1, [ 1; 2 ]);
    Write (1, y);
    Write (2, z);
    Abort 2;
    Commit 1 ]

let airlines = Named "Airlines"
let flights = Named "Flights"

let figure_3b =
  [ Ground_read (1, flights);
    Ground_read (2, flights);
    Ground_read (2, airlines);
    Entangle (1, [ 1; 2 ]);
    Write (3, airlines);
    Commit 3;
    Read (1, airlines);
    Write (1, w);
    Commit 1;
    Commit 2 ]

(* --- one unit history per violation code --- *)

let test_clean () =
  check_codes "example C.1 certifies" [] example_c1;
  check_codes "empty schedule" [] [];
  check_codes "serial" []
    [ Read (1, x); Write (1, y); Commit 1; Read (2, y); Commit 2 ]

let test_conflict_cycle () =
  (* unrepeatable classical read: R1(x) W2(x) C2 R1(x) C1 *)
  check_codes "cycle" [ "conflict-cycle" ]
    [ Read (1, x); Write (2, x); Commit 2; Read (1, x); Commit 1 ]

let test_read_from_aborted () =
  check_codes "dirty read" [ "read-from-aborted" ]
    [ Write (1, x); Read (2, x); Abort 1; Commit 2 ];
  (* C.3 only protects committed readers *)
  check_codes "aborted reader exempt" []
    [ Write (1, x); Read (2, x); Abort 1; Abort 2 ]

let test_widowed () =
  check_codes "figure 3a" [ "widowed" ] figure_3a

let test_unrepeatable_quasi_read () =
  check_codes "figure 3b" [ "conflict-cycle"; "unrepeatable-quasi-read" ]
    figure_3b

let test_validity_codes () =
  check_codes "unanswered ground" [ "unanswered-ground" ]
    [ Ground_read (1, x); Commit 1 ];
  check_codes "ground gap" [ "ground-gap" ]
    [ Ground_read (1, x); Write (1, y); Ground_read (2, z);
      Entangle (1, [ 1; 2 ]); Commit 1; Commit 2 ];
  check_codes "post-terminal" [ "post-terminal" ]
    [ Read (1, x); Commit 1; Write (1, y) ];
  check_codes "double terminal" [ "double-terminal" ]
    [ Read (1, x); Commit 1; Commit 1 ]

let test_stats () =
  let c = Certify.create () in
  List.iter (Certify.on_op c) example_c1;
  let s = Certify.stats c in
  Alcotest.(check bool) "ok" true (Certify.ok c);
  (* 5 data ops + the 2 quasi-reads injected by the entangle *)
  Alcotest.(check int) "ops" 7 s.ops;
  Alcotest.(check int) "txns" 3 s.txns;
  Alcotest.(check int) "committed" 3 s.committed;
  Alcotest.(check int) "aborted" 0 s.aborted;
  (* R3(z) before W1(z), both committed *)
  Alcotest.(check int) "edges" 1 s.edges;
  Alcotest.(check int) "quasi-reads" 2 s.quasi_reads

let test_violation_cap () =
  (* 300 distinct dirty-read pairs: the retained list is capped *)
  let c = Certify.create () in
  for i = 0 to 299 do
    let o = Named (Printf.sprintf "v%d" i) in
    List.iter (Certify.on_op c)
      [ Write ((4 * i) + 1, o); Read ((4 * i) + 2, o);
        Abort ((4 * i) + 1); Commit ((4 * i) + 2) ]
  done;
  Alcotest.(check int) "capped" Certify.max_violations
    (List.length (Certify.violations c));
  Alcotest.(check bool) "not ok" false (Certify.ok c)

(* --- agreement with the offline checker on the anomaly catalog --- *)

let test_agrees_with_histcheck () =
  List.iter
    (fun (name, h) ->
      let offline =
        (Histcheck.check h).violations
        |> List.map (fun (v : Histcheck.violation) -> v.code)
        |> List.sort_uniq String.compare
      in
      Alcotest.(check (list string)) name offline (codes h))
    [ ("example C.1", example_c1);
      ("figure 3a", figure_3a);
      ("figure 3b", figure_3b);
      ("dirty read", [ Write (1, x); Read (2, x); Abort 1; Commit 2 ]);
      ("unrepeatable read",
       [ Read (1, x); Write (2, x); Commit 2; Read (1, x); Commit 1 ]) ]

(* --- bounded-memory recording --- *)

let test_recorder_cap () =
  let seen = ref 0 in
  let r = Recorder.create ~cap:4 ~sink:(fun _ -> incr seen) () in
  for i = 1 to 20 do
    Recorder.on_engine_event r (Engine.Ev_write (i, "T", i))
  done;
  let h = Recorder.history r in
  let n = List.length h in
  Alcotest.(check bool) "bounded" true (n >= 4 && n < 8);
  Alcotest.(check int) "dropped accounts for the rest" (20 - n)
    (Recorder.dropped r);
  Alcotest.(check bool) "newest suffix retained" true
    (match List.rev h with
    | Write (20, Row ("T", 20)) :: _ -> true
    | _ -> false);
  Alcotest.(check int) "sink saw everything" 20 !seen;
  Alcotest.check_raises "cap < 1 rejected"
    (Invalid_argument "Recorder.create: cap must be positive") (fun () ->
      ignore (Recorder.create ~cap:0 ()))

let test_recorder_sink_certifies_beyond_cap () =
  (* the certifier, fed through the sink, catches a dirty read even
     after the recorder truncated the evidence away *)
  let c = Certify.create () in
  let r = Recorder.create ~cap:1 ~sink:(Certify.on_op c) () in
  List.iter (Recorder.on_engine_event r)
    [ Engine.Ev_write (1, "T", 0);
      Engine.Ev_read (2, Engine.T_row ("T", 0));
      Engine.Ev_abort 1;
      Engine.Ev_commit 2 ];
  Alcotest.(check bool) "recorder forgot" true (Recorder.dropped r > 0);
  Alcotest.(check (list string)) "certifier remembers"
    [ "read-from-aborted" ]
    (Certify.violations c
    |> List.map (fun (v : Certify.violation) -> v.code)
    |> List.sort_uniq String.compare)

(* --- certifying real scheduler runs --- *)

let observe m =
  let c = Certify.create () in
  Manager.observe m
    ~on_event:(Certify.on_engine_event c)
    ~on_entangle:(fun ~event participants ->
      Certify.on_entangle c ~event participants);
  c

let test_real_run_certifies () =
  let m = Gen.travel_manager () in
  let c = observe m in
  List.iter
    (fun (a, b) ->
      ignore (Manager.submit_string m (Gen.flight_program a b)))
    [ ("Mickey", "Minnie"); ("Minnie", "Mickey");
      ("Donald", "Daffy"); ("Daffy", "Donald") ];
  Manager.drain m;
  Alcotest.(check bool) "ok" true (Certify.ok c);
  let s = Certify.stats c in
  Alcotest.(check bool) "committed some" true (s.committed >= 4);
  Alcotest.(check bool) "saw quasi-reads" true (s.quasi_reads > 0)

let prop_real_runs_certify_clean =
  QCheck2.Test.make ~name:"real scheduler runs certify clean" ~count:15
    Gen.entangled_batch_gen (fun (programs, _lonely) ->
      let m = Gen.travel_manager () in
      let c = observe m in
      List.iter (fun p -> ignore (Manager.submit m p)) programs;
      Manager.drain m;
      Certify.ok c)

(* --- the mutation suite --- *)

(* A clean schedule with known structure: entangled pairs (grounding
   overlap only, group-committed), then plain serial transactions each
   writing its own object, optionally reading an earlier plain
   transaction's object (real conflict edges, never a cycle). *)
type clean = {
  sched : op list;
  pairs : (int * int) list;
  plains : int list;
}

let obj_of t = Named (Printf.sprintf "o%d" t)
let ground_of t = Named (Printf.sprintf "g%d" t)

let build_clean n_pairs n_plains cross =
  let next = ref 0 in
  let fresh () = incr next; !next in
  let pairs = List.init n_pairs (fun _ -> let a = fresh () in (a, fresh ())) in
  let plains = List.init n_plains (fun _ -> fresh ()) in
  let pair_seg i (a, b) =
    [ Ground_read (a, ground_of a);
      Ground_read (b, ground_of b);
      Entangle (i + 1, [ a; b ]);
      Write (a, obj_of a);
      Commit a;
      Write (b, obj_of b);
      Commit b ]
  in
  let plain_seg i t =
    let earlier = List.filteri (fun j _ -> j < i) plains in
    let choice = List.nth cross i in
    let reads =
      if earlier = [] || choice = 0 then []
      else [ Read (t, obj_of (List.nth earlier ((choice - 1) mod List.length earlier))) ]
    in
    reads @ [ Write (t, obj_of t); Commit t ]
  in
  let sched =
    List.concat (List.mapi pair_seg pairs)
    @ List.concat (List.mapi plain_seg plains)
  in
  { sched; pairs; plains }

let clean_gen =
  let open QCheck2.Gen in
  let* n_pairs = int_range 1 2 in
  let* n_plains = int_range 2 4 in
  let* cross = list_size (return n_plains) (int_range 0 9) in
  return (build_clean n_pairs n_plains cross)

let rec insert_before p op = function
  | [] -> [ op ]
  | o :: rest when p o -> op :: o :: rest
  | o :: rest -> o :: insert_before p op rest

(* Each operator seeds one specific anomaly; [mutate] returns the
   schedule plus the codes that prove the seed was caught. *)
let mutate c kind =
  let a, b = List.hd c.pairs in
  let t = List.hd c.plains in
  let u = List.nth c.plains (List.length c.plains - 1) in
  match kind with
  | 0 ->
    (* widow_flip: break the group commit *)
    ( List.map (function Commit n when n = b -> Abort b | o -> o) c.sched,
      [ "widowed" ] )
  | 1 ->
    (* dirty_read: u reads t's write, then t aborts retroactively *)
    ( List.map (function Commit n when n = t -> Abort t | o -> o) c.sched
      |> insert_before (fun o -> o = Commit u) (Read (u, obj_of t)),
      [ "read-from-aborted" ] )
  | 2 ->
    (* cycle: u writes t's object before t does and reads it after *)
    ( Write (u, obj_of t)
      :: insert_before (fun o -> o = Commit u) (Read (u, obj_of t)) c.sched,
      [ "conflict-cycle" ] )
  | 3 ->
    (* drop_entangle: a's grounding read is never answered *)
    ( List.filter
        (function Entangle (_, ps) -> not (List.mem a ps) | _ -> true)
        c.sched,
      [ "ground-gap"; "unanswered-ground" ] )
  | 4 ->
    (* commit_swap: t's terminal migrates before its write *)
    ( List.filter (fun o -> o <> Commit t) c.sched
      |> insert_before (fun o -> o = Write (t, obj_of t)) (Commit t),
      [ "post-terminal" ] )
  | _ ->
    (* double terminal *)
    ( List.concat_map
        (function Commit n when n = t -> [ Commit t; Commit t ] | o -> [ o ])
        c.sched,
      [ "double-terminal" ] )

(* --- the SI mutation suite --- *)

(* Replay with per-transaction levels and return (violation codes,
   SI-permitted anomaly codes). *)
let si_codes ~levels h =
  let c = Certify.create () in
  List.iter (fun (txn, lvl) -> Certify.set_level c txn lvl) levels;
  List.iter (Certify.on_op c) h;
  let names vs =
    List.map (fun (v : Certify.violation) -> v.code) vs
    |> List.sort_uniq String.compare
  in
  (names (Certify.violations c), names (Certify.anomalies c))

let si = Engine.Snapshot

(* One minimal history per SI code. *)
let test_si_codes () =
  (* classic write-skew: disjoint writes, crossed reads, both SI —
     allowed by SI, so named as an anomaly without failing *)
  let vs, anoms =
    si_codes ~levels:[ (1, si); (2, si) ]
      [ Read (1, y); Read (2, x); Write (1, x); Write (2, y);
        Commit 1; Commit 2 ]
  in
  Alcotest.(check (list string)) "write-skew does not fail certification" [] vs;
  Alcotest.(check (list string)) "write-skew is named" [ "si-write-skew" ] anoms;
  (* the same schedule under 2PL levels is a plain conflict cycle *)
  let vs, anoms =
    si_codes ~levels:[]
      [ Read (1, y); Read (2, x); Write (1, x); Write (2, y);
        Commit 1; Commit 2 ]
  in
  Alcotest.(check (list string)) "under 2PL it fails" [ "conflict-cycle" ] vs;
  Alcotest.(check (list string)) "and is no SI anomaly" [] anoms;
  (* lost update: txn 1 commits a write to x after SI txn 2's snapshot;
     2's committed write to x must have been killed by FCW *)
  let vs, _ =
    si_codes ~levels:[ (2, si) ]
      [ Read (2, x); Write (1, x); Commit 1; Write (2, x); Commit 2 ]
  in
  Alcotest.(check bool) "lost update caught" true
    (List.mem "si-lost-update" vs);
  (* SI rename of the dirty read: version visibility should have hidden
     the aborted write from the snapshot reader *)
  let vs, _ =
    si_codes ~levels:[ (2, si) ]
      [ Write (1, x); Read (2, x); Abort 1; Commit 2 ]
  in
  Alcotest.(check (list string)) "read of uncommitted renamed"
    [ "si-read-uncommitted" ] vs

(* Mirror of [mutate] for snapshot transactions: each operator demotes
   plain transactions of a clean schedule to SI and seeds one anomaly;
   returns the schedule, the level declarations, the codes that must
   appear among the violations, and the codes that must appear among
   the SI-permitted anomalies. *)
let mutate_si c kind =
  let t = List.hd c.plains in
  let u = List.nth c.plains (List.length c.plains - 1) in
  match kind with
  | 0 ->
    (* write_skew: t and u read each other's object before either
       writes — a pure rw cycle between SI members, which SI allows:
       named, not failing *)
    ( c.sched
      |> insert_before (fun o -> o = Write (t, obj_of t)) (Read (u, obj_of t))
      |> insert_before (fun o -> o = Read (u, obj_of t)) (Read (t, obj_of u)),
      [ (t, si); (u, si) ],
      [],
      [ "si-write-skew" ] )
  | 1 ->
    (* lost_update: u snapshots before t's write of o_t, then commits
       its own write to o_t — first-committer-wins must have aborted u *)
    ( c.sched
      |> insert_before (fun o -> o = Write (t, obj_of t)) (Read (u, obj_of t))
      |> insert_before (fun o -> o = Commit u) (Write (u, obj_of t)),
      [ (u, si) ],
      [ "si-lost-update" ],
      [] )
  | _ ->
    (* read_uncommitted: t aborts retroactively after SI txn u read its
       write — the snapshot should never have contained it *)
    ( List.map (function Commit n when n = t -> Abort t | o -> o) c.sched
      |> insert_before (fun o -> o = Commit u) (Read (u, obj_of t)),
      [ (u, si) ],
      [ "si-read-uncommitted" ],
      [] )

let prop_si_mutations_rejected =
  QCheck2.Test.make ~name:"seeded SI anomalies are caught and named" ~count:120
    QCheck2.Gen.(pair clean_gen (int_range 0 2))
    (fun (c, kind) ->
      let mutated, levels, expect_viol, expect_anom = mutate_si c kind in
      let vs, anoms = si_codes ~levels mutated in
      List.for_all (fun e -> List.mem e vs) expect_viol
      && List.for_all (fun e -> List.mem e anoms) expect_anom
      (* write-skew alone must not fail certification *)
      && (kind <> 0 || vs = []))

let prop_si_demotion_safe =
  (* a clean schedule stays clean when every plain transaction is
     demoted to SI: no false positives from the snapshot repositioning *)
  QCheck2.Test.make ~name:"clean schedules certify under all-SI demotion"
    ~count:100 clean_gen (fun c ->
      let levels = List.map (fun t -> (t, si)) (c.plains @ List.concat_map (fun (a, b) -> [ a; b ]) c.pairs) in
      let vs, _ = si_codes ~levels c.sched in
      vs = [])

let prop_clean_certifies =
  QCheck2.Test.make ~name:"generated clean schedules certify" ~count:100
    clean_gen (fun c -> codes c.sched = [])

let prop_mutations_rejected =
  QCheck2.Test.make ~name:"seeded anomalies are rejected" ~count:240
    QCheck2.Gen.(pair clean_gen (int_range 0 5))
    (fun (c, kind) ->
      let mutated, expected = mutate c kind in
      let cs = codes mutated in
      (* the certifier names the seeded anomaly ... *)
      List.exists (fun e -> List.mem e cs) expected
      (* ... and the offline checker concurs that something is wrong *)
      &&
      let r = Histcheck.check mutated in
      r.validity <> [] || r.violations <> [])

let () =
  Alcotest.run "certify"
    [ ( "unit",
        [ Alcotest.test_case "clean schedules" `Quick test_clean;
          Alcotest.test_case "conflict cycle" `Quick test_conflict_cycle;
          Alcotest.test_case "read from aborted" `Quick test_read_from_aborted;
          Alcotest.test_case "widowed" `Quick test_widowed;
          Alcotest.test_case "unrepeatable quasi-read" `Quick
            test_unrepeatable_quasi_read;
          Alcotest.test_case "validity codes" `Quick test_validity_codes;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "violation cap" `Quick test_violation_cap;
          Alcotest.test_case "agrees with histcheck" `Quick
            test_agrees_with_histcheck ] );
      ( "recorder",
        [ Alcotest.test_case "cap bounds memory" `Quick test_recorder_cap;
          Alcotest.test_case "sink certifies beyond cap" `Quick
            test_recorder_sink_certifies_beyond_cap ] );
      ( "real runs",
        Alcotest.test_case "deterministic run" `Quick test_real_run_certifies
        :: List.map Gen.to_alcotest [ prop_real_runs_certify_clean ] );
      ( "mutations",
        List.map Gen.to_alcotest
          [ prop_clean_certifies; prop_mutations_rejected ] );
      ( "si mutations",
        Alcotest.test_case "si violation codes" `Quick test_si_codes
        :: List.map Gen.to_alcotest
             [ prop_si_mutations_rejected; prop_si_demotion_safe ] ) ]
