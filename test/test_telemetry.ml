(* Tests for the continuous-telemetry engine (lib/obs): time-series
   window aggregation against a lockstep oracle, burn-rate alert edge
   cases (empty windows, short-only spikes, sim-time jumps, ring wrap,
   backwards clocks), SLO spec parsing, and schema validation of the
   flight-recorder and SLO-report documents. *)

open Ent_obs

(* Every test drives the process-global registry/ring: reset both ends
   so tests compose in any order. *)
let fresh ?(width = 1.0) ?(capacity = 128) () =
  Timeseries.disable ();
  Obs.reset ();
  Timeseries.enable ~width ~capacity ()

let teardown () = Timeseries.disable ()

(* --- window aggregation vs a lockstep oracle ---

   Sample-before-observe in strictly increasing time: each observation
   then lands in the window containing its timestamp exactly (the
   window is closed only by a later sample, after the deltas
   accumulated), so per-window counter deltas and histogram counts and
   sums are exact, and quantiles inherit the histogram's relative
   error. *)

let prop_window_oracle =
  QCheck2.Test.make ~name:"window deltas match a lockstep oracle" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 200)
        (triple (float_range 0.01 0.8) (int_range 0 5)
           (float_range 1e-3 1e3)))
    (fun events ->
      fresh ();
      let c = Obs.counter "test.ts.counter" in
      let h = Obs.histogram "test.ts.hist" in
      (* oracle: window start |-> (counter delta, observations) *)
      let oracle : (float, int ref * float list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let slot start =
        match Hashtbl.find_opt oracle start with
        | Some s -> s
        | None ->
          let s = (ref 0, ref []) in
          Hashtbl.replace oracle start s;
          s
      in
      let now = ref 0.05 in
      List.iter
        (fun (dt, n, v) ->
          now := !now +. dt;
          Timeseries.sample !now;
          Obs.incr ~n c;
          Obs.observe h v;
          let delta, obs = slot (Float.floor !now) in
          delta := !delta + n;
          obs := v :: !obs)
        events;
      Timeseries.flush ();
      let ok =
        List.for_all
          (fun (w : Timeseries.window) ->
            let delta, obs =
              match Hashtbl.find_opt oracle w.w_start with
              | Some (d, o) -> (!d, !o)
              | None -> (0, [])
            in
            Timeseries.counter_delta w "test.ts.counter" = delta
            &&
            match Timeseries.window_hist w "test.ts.hist" with
            | None -> obs = []
            | Some wh ->
              let sorted = Array.of_list obs in
              Array.sort compare sorted;
              let n = Array.length sorted in
              let exact q =
                sorted.(max 0
                          (min (n - 1)
                             (int_of_float
                                (Float.round (q *. float_of_int (n - 1))))))
              in
              Hist.count wh = n
              && Float.abs (Hist.sum wh -. List.fold_left ( +. ) 0.0 obs)
                 <= 1e-6 *. Float.max 1.0 (Float.abs (Hist.sum wh))
              && List.for_all
                   (fun q ->
                     Float.abs (Hist.quantile wh q -. exact q)
                     <= (3. *. Hist.default_alpha *. exact q) +. 1e-9)
                   [ 0.5; 0.95; 0.99 ])
          (Timeseries.windows ())
      in
      teardown ();
      ok)

(* Every oracle window with data must appear among the closed windows
   once the clock passed it (no silently dropped windows). *)
let test_windows_cover_time () =
  fresh ();
  let c = Obs.counter "test.ts.cover" in
  List.iter
    (fun t ->
      Timeseries.sample t;
      Obs.incr c)
    [ 0.2; 0.7; 1.3; 2.9; 3.1 ];
  Timeseries.flush ();
  let ws = Timeseries.windows () in
  Alcotest.(check (list (float 1e-9)))
    "window starts" [ 0.0; 1.0; 2.0; 3.0 ]
    (List.map (fun (w : Timeseries.window) -> w.w_start) ws);
  Alcotest.(check (list int))
    "per-window deltas" [ 2; 1; 1; 1 ]
    (List.map (fun w -> Timeseries.counter_delta w "test.ts.cover") ws);
  teardown ()

(* A jump farther than the whole ring closes one window and re-anchors
   instead of materializing millions of empty windows. *)
let test_giant_jump_reanchors () =
  fresh ~width:1.0 ~capacity:8 ();
  let c = Obs.counter "test.ts.jump" in
  Timeseries.sample 0.5;
  Obs.incr ~n:3 c;
  Timeseries.sample 1e9;
  Timeseries.flush ();
  let ws = Timeseries.windows () in
  Alcotest.(check bool) "bounded window count" true (List.length ws <= 8);
  let total =
    List.fold_left
      (fun acc w -> acc + Timeseries.counter_delta w "test.ts.jump")
      0 ws
  in
  Alcotest.(check int) "delta not lost" 3 total;
  teardown ()

let test_ring_wrap () =
  fresh ~width:1.0 ~capacity:4 ();
  let c = Obs.counter "test.ts.wrap" in
  for t = 0 to 9 do
    Timeseries.sample (float_of_int t +. 0.5);
    Obs.incr c
  done;
  Timeseries.flush ();
  let ws = Timeseries.windows () in
  Alcotest.(check int) "ring keeps the last capacity windows" 4
    (List.length ws);
  Alcotest.(check (float 1e-9)) "oldest retained window" 6.0
    (List.hd ws).Timeseries.w_start;
  teardown ()

(* Backwards clock (entsim crash/recovery): the ring re-anchors keeping
   counter bases, so pre-crash deltas roll into the first post-crash
   window — counted once, never dropped and never double-counted. *)
let test_backwards_clock () =
  fresh ();
  let c = Obs.counter "test.ts.back" in
  Timeseries.sample 5.2;
  Obs.incr ~n:2 c;
  Timeseries.sample 1.1;
  Obs.incr ~n:3 c;
  Timeseries.flush ();
  let total =
    List.fold_left
      (fun acc w -> acc + Timeseries.counter_delta w "test.ts.back")
      0
      (Timeseries.windows ())
  in
  Alcotest.(check int) "counted exactly once" 5 total;
  teardown ()

let test_flush_partial_width () =
  fresh ();
  let c = Obs.counter "test.ts.partial" in
  Timeseries.sample 0.25;
  Obs.incr c;
  Timeseries.sample 0.65;
  Timeseries.flush ();
  match Timeseries.windows () with
  | [ w ] ->
    Alcotest.(check (float 1e-9)) "partial width" 0.65 w.w_width;
    Alcotest.(check int) "partial delta" 1
      (Timeseries.counter_delta w "test.ts.partial");
    teardown ()
  | ws ->
    teardown ();
    Alcotest.failf "expected one partial window, got %d" (List.length ws)

let test_disabled_sample_is_noop () =
  Timeseries.disable ();
  Obs.reset ();
  Timeseries.sample 1.0;
  Timeseries.sample 2.0;
  Alcotest.(check int) "no windows when disabled" 0
    (List.length (Timeseries.windows ()))

(* --- burn-rate alerting --- *)

let rate_spec ?(short = 1) ?(long = 5) max_per_s =
  {
    Slo.sp_name = "r";
    sp_metric = "test.slo.events";
    sp_kind = Slo.Rate { max_per_s };
    sp_short = short;
    sp_long = long;
  }

let latency_spec ?(short = 1) ?(long = 5) max_s =
  {
    Slo.sp_name = "l";
    sp_metric = "test.slo.lat";
    sp_kind = Slo.Latency { quantile = 0.99; max_s };
    sp_short = short;
    sp_long = long;
  }

(* Drive a monitor with hand-built windows: [deltas] is one counter
   delta (and that many 1.0s-latency observations) per 1s window. *)
let drive spec deltas =
  fresh ();
  let c = Obs.counter "test.slo.events" in
  let h = Obs.histogram "test.slo.lat" in
  let mon = Slo.create [ spec ] in
  Slo.attach mon;
  List.iteri
    (fun i n ->
      Timeseries.sample (float_of_int i +. 0.5);
      Obs.incr ~n c;
      for _ = 1 to n do
        Obs.observe h 1.0
      done)
    deltas;
  Timeseries.sample (float_of_int (List.length deltas) +. 0.5);
  Slo.detach ();
  teardown ();
  mon

let test_empty_windows_no_alert () =
  let mon = drive (latency_spec 1e-9) [ 0; 0; 0; 0; 0 ] in
  Alcotest.(check bool) "no data, no latency breach" true (Slo.ok mon)

let test_short_spike_no_alert () =
  (* one hot window inside a healthy long range: short breaches, long
     does not — no alert *)
  let mon = drive (rate_spec 5.0) [ 0; 0; 0; 0; 10 ] in
  Alcotest.(check bool) "spike alone does not alert" true (Slo.ok mon)

let test_sustained_burn_alerts () =
  let mon = drive (rate_spec 5.0) [ 10; 10; 10; 10; 10 ] in
  Alcotest.(check bool) "sustained burn alerts" false (Slo.ok mon);
  match Slo.alerts mon with
  | [] -> Alcotest.fail "no alert recorded"
  | a :: _ ->
    Alcotest.(check string) "alert names the spec" "r" a.Slo.al_spec;
    Alcotest.(check bool) "short value breaches" true
      (a.Slo.al_short > a.Slo.al_threshold)

let test_latency_burn_alerts () =
  let mon = drive (latency_spec 0.5) [ 4; 4; 4; 4; 4 ] in
  Alcotest.(check bool) "1s observations over a 0.5s ceiling" false
    (Slo.ok mon)

let test_report_shape_and_schema () =
  let mon = drive (rate_spec 5.0) [ 10; 10; 10; 10; 10 ] in
  let report = Slo.report_json mon in
  (match Schema.validate_slo_report report with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  match Json.member "ok" report with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "report ok should be false"

let test_spec_parsing () =
  let ok =
    Json.of_string
      {|{ "slos": [
           { "name": "p99", "kind": "latency",
             "metric": "core.scheduler.txn_latency_s",
             "quantile": 0.99, "threshold_s": 0.5 },
           { "name": "dl", "kind": "rate",
             "metric": "core.scheduler.deadlocks", "max_per_s": 1.5,
             "short_windows": 2, "long_windows": 10 },
           { "name": "gs", "kind": "min_mean",
             "metric": "core.commit.group_size", "min": 1.0 } ] }|}
  in
  (match Slo.specs_of_json ok with
  | Ok [ p99; dl; gs ] ->
    Alcotest.(check int) "default short" 1 p99.Slo.sp_short;
    Alcotest.(check int) "default long" 5 p99.Slo.sp_long;
    Alcotest.(check int) "explicit short" 2 dl.Slo.sp_short;
    Alcotest.(check int) "explicit long" 10 dl.Slo.sp_long;
    (match gs.Slo.sp_kind with
    | Slo.Min_mean { min_mean } ->
      Alcotest.(check (float 0.)) "min mean" 1.0 min_mean
    | _ -> Alcotest.fail "wrong kind for min_mean spec")
  | Ok specs -> Alcotest.failf "expected 3 specs, got %d" (List.length specs)
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Slo.specs_of_json (Json.of_string bad) with
      | Ok _ -> Alcotest.failf "accepted bad spec %s" bad
      | Error _ -> ())
    [
      {|{ "slos": [] }|};
      {|{ "slos": [ { "name": "x", "kind": "nope", "metric": "m" } ] }|};
      {|{ "slos": [ { "name": "x", "kind": "latency", "metric": "m",
                      "quantile": 1.5, "threshold_s": 1.0 } ] }|};
      {|{ "slos": [ { "name": "x", "kind": "rate", "metric": "m" } ] }|};
    ]

(* --- flight recorder schema --- *)

let test_flight_validates () =
  fresh ();
  let c = Obs.counter "test.flight.counter" in
  Obs.incr ~n:7 c;
  Timeseries.sample 0.5;
  Timeseries.flush ();
  let doc =
    Flight.to_json ~reason:"test" ~wait_graph:"0 waiting task(s)" ~sim_now:0.5
      ()
  in
  teardown ();
  (match Schema.validate_flight doc with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  Alcotest.(check bool) "recognized as flight" true (Schema.is_flight doc);
  (* validate_string dispatches on the flight_recorder tag *)
  (match Schema.validate_string (Json.to_string doc) with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* mutations must be rejected *)
  let drop key =
    match doc with
    | Json.Obj fields -> Json.Obj (List.remove_assoc key fields)
    | _ -> assert false
  in
  List.iter
    (fun key ->
      match Schema.validate_flight (drop key) with
      | Ok () -> Alcotest.failf "flight without %s accepted" key
      | Error _ -> ())
    [ "reason"; "metrics"; "timeseries"; "events"; "events_dropped" ]

(* A bench point may carry an "slo" member; the schema checks it. *)
let test_bench_point_slo_section () =
  let mon = drive (rate_spec 5.0) [ 1; 1 ] in
  let snapshot =
    Json.Obj
      [
        ( "counters",
          Json.Obj
            [
              ("core.scheduler.runs", Json.Int 1);
              ("entangle.coordinate.answered", Json.Int 1);
              ("storage.table.inserts", Json.Int 1);
              ("txn.lock.requests", Json.Int 1);
            ] );
        ("gauges", Json.Obj []);
        ("histograms", Json.Obj []);
      ]
  in
  let point slo =
    Json.Obj
      ([
         ("x", Json.Int 10);
         ("time_s", Json.Float 0.5);
         ("metrics", snapshot);
       ]
      @ match slo with None -> [] | Some s -> [ ("slo", s) ])
  in
  let doc slo =
    Json.Obj
      [
        ("schema_version", Json.Int Schema.version);
        ("figure", Json.Str "fig6a");
        ("bench_txns", Json.Int 100);
        ("x_label", Json.Str "connections");
        ("unit", Json.Str "simulated_seconds");
        ( "series",
          Json.List
            (List.map
               (fun name ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("points", Json.List [ point slo ]);
                   ])
               [
                 "NoSocial-T"; "Social-T"; "Entangled-T"; "NoSocial-Q";
                 "Social-Q"; "Entangled-Q";
               ]) );
      ]
  in
  (match Schema.validate (doc (Some (Slo.report_json mon))) with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* a malformed slo section must fail the whole document *)
  match Schema.validate (doc (Some (Json.Obj [ ("ok", Json.Int 3) ]))) with
  | Ok () -> Alcotest.fail "bench point with broken slo section accepted"
  | Error _ -> ()

let () =
  Alcotest.run "telemetry"
    [
      ( "timeseries",
        [
          QCheck_alcotest.to_alcotest prop_window_oracle;
          Alcotest.test_case "windows cover time" `Quick
            test_windows_cover_time;
          Alcotest.test_case "giant jump re-anchors" `Quick
            test_giant_jump_reanchors;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "backwards clock" `Quick test_backwards_clock;
          Alcotest.test_case "flush partial window" `Quick
            test_flush_partial_width;
          Alcotest.test_case "disabled sample is a no-op" `Quick
            test_disabled_sample_is_noop;
        ] );
      ( "slo",
        [
          Alcotest.test_case "empty windows do not alert" `Quick
            test_empty_windows_no_alert;
          Alcotest.test_case "short-only spike does not alert" `Quick
            test_short_spike_no_alert;
          Alcotest.test_case "sustained burn alerts" `Quick
            test_sustained_burn_alerts;
          Alcotest.test_case "latency burn alerts" `Quick
            test_latency_burn_alerts;
          Alcotest.test_case "report validates" `Quick
            test_report_shape_and_schema;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        ] );
      ( "flight",
        [
          Alcotest.test_case "flight dump validates" `Quick
            test_flight_validates;
          Alcotest.test_case "bench point slo section" `Quick
            test_bench_point_slo_section;
        ] );
    ]
