(* Tests for the fault layer (lib/fault) and the entsim harness: the
   splittable PRNG, fault-plan parsing, the injection-point registry,
   an exhaustive crash-point sweep over a real workload's WAL (every
   record boundary, plus every byte of the on-disk encoding for the
   torn-write case), WAL round-trip and recovery-idempotence
   properties, and the harness invariants themselves — including the
   widow detector catching a run without group commit. *)

module Tgen = Gen
open Ent_core
module Rng = Ent_fault.Rng
module Plan = Ent_fault.Plan
module Fault = Ent_fault.Injector
module Wal = Ent_txn.Wal
module Recovery = Ent_txn.Recovery
module Harness = Ent_entsim.Harness

(* --- splittable PRNG --- *)

let test_rng_deterministic () =
  let stream seed =
    let r = Rng.make seed in
    List.init 20 (fun _ -> Rng.bits r)
  in
  Alcotest.(check bool) "same seed, same stream" true (stream 42 = stream 42);
  Alcotest.(check bool) "different seeds differ" true (stream 42 <> stream 43)

let test_rng_bounds () =
  let r = Rng.make 7 in
  for bound = 1 to 20 do
    for _ = 1 to 100 do
      let n = Rng.int r bound in
      if n < 0 || n >= bound then
        Alcotest.failf "Rng.int %d produced %d" bound n
    done
  done

let test_rng_split_independent () =
  let r = Rng.make 9 in
  let a = Rng.split r in
  let b = Rng.split r in
  let stream rng = List.init 10 (fun _ -> Rng.bits rng) in
  Alcotest.(check bool) "split streams differ" true (stream a <> stream b)

let test_rng_pick_and_weighted () =
  let r = Rng.make 11 in
  for _ = 1 to 100 do
    let x = Rng.pick r [ 1; 2; 3 ] in
    if not (List.mem x [ 1; 2; 3 ]) then Alcotest.failf "pick produced %d" x;
    (* a zero-weight choice must never be drawn *)
    match Rng.weighted r [ (1, `A); (0, `B) ] with
    | `A -> ()
    | `B -> Alcotest.fail "weighted drew a zero-weight choice"
  done

(* --- fault plans --- *)

let prop_plan_roundtrip =
  QCheck2.Test.make ~name:"plan to_string/of_string round-trip" ~count:200
    Tgen.plan_gen
    (fun plan -> Plan.of_string (Plan.to_string plan) = Ok plan)

let test_plan_parse_errors () =
  let bad s =
    match Plan.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "garbage";
  bad "site@x=crash";
  bad "site@0=crash";
  bad "site@1=explode";
  bad "@1=crash";
  (match Plan.of_string "(none)" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "\"(none)\" should parse as the empty plan")

(* --- injection-point registry --- *)

let test_injector_arm_fires_once () =
  Fault.deactivate ();
  let site = Fault.site "test.fault.a" in
  Fault.install [ { Plan.site = "test.fault.a"; hit = 3; action = Plan.Crash } ];
  Fun.protect ~finally:Fault.deactivate (fun () ->
      Fault.hit site;
      Fault.hit site;
      (try
         Fault.hit site;
         Alcotest.fail "third hit should crash"
       with Fault.Crashed _ -> ());
      (* the arm is consumed: later hits pass *)
      Fault.hit site;
      Fault.hit site)

let test_injector_profiling_counts () =
  Fault.deactivate ();
  let site = Fault.site "test.fault.b" in
  Fault.install [];
  Fun.protect ~finally:Fault.deactivate (fun () ->
      Fault.hit site;
      Fault.hit site;
      Alcotest.(check int) "two hits recorded" 2
        (List.assoc "test.fault.b" (Fault.counts ())))

let test_injector_drop_and_inactive () =
  Fault.deactivate ();
  let site = Fault.site "test.fault.c" in
  (* inactive registry: sites are free and report nothing *)
  Alcotest.(check bool) "inactive never drops" false (Fault.drops site);
  Fault.install [ { Plan.site = "test.fault.c"; hit = 1; action = Plan.Drop } ];
  Fun.protect ~finally:Fault.deactivate (fun () ->
      Alcotest.(check bool) "armed hit drops" true (Fault.drops site);
      Alcotest.(check bool) "arm consumed" false (Fault.drops site))

(* --- exhaustive crash-point sweep --- *)

(* Truncate a real entangled workload's WAL at EVERY record boundary
   and check the full invariant set on each crash image: recovery
   succeeds, groups are atomic (no widows), the replayed store matches
   the independent survivor-view model, and replay is deterministic. *)
let test_every_crash_point () =
  Fault.deactivate ();
  let world = Tgen.run_workload ~pairs:3 ~with_rollbacks:true in
  let wal = Option.get (Ent_txn.Engine.log (Manager.engine world.manager)) in
  let total = Wal.length wal in
  Alcotest.(check bool) "log is non-trivial" true (total > 40);
  for n = 0 to total do
    let image = Wal.prefix wal n in
    match Recovery.replay image with
    | recovered, analysis ->
      let violations = ref [] in
      let viol _ids invariant detail =
        violations := (invariant, detail) :: !violations
      in
      Harness.check_image viol image recovered analysis;
      (match !violations with
      | [] -> ()
      | (invariant, detail) :: _ ->
        Alcotest.failf "crash point %d/%d: %s: %s" n total invariant detail)
    | exception exn ->
      Alcotest.failf "recovery failed at crash point %d/%d: %s" n total
        (Printexc.to_string exn)
  done

(* A small fixed log whose on-disk encoding we can truncate at every
   byte: under the magic header the load must fail; past it, a cut
   always yields a loadable record-boundary prefix (the torn final
   frame is discarded), and that prefix replays. *)
let small_wal () =
  Fault.deactivate ();
  let w = Wal.create () in
  List.iter
    (fun r -> ignore (Wal.append w r))
    [ Wal.Create { table = "T"; columns = [ ("a", Ent_storage.Schema.T_int) ] };
      Wal.Begin 1;
      Wal.Write
        { txn = 1; table = "T"; row = 0; before = None;
          after = Some [| Ent_storage.Value.Int 1 |] };
      Wal.Commit 1;
      Wal.Entangle_group { event = 1; members = [ 1; 2 ] };
      Wal.Begin 2;
      Wal.Write
        { txn = 2; table = "T"; row = 1; before = None;
          after = Some [| Ent_storage.Value.Int 2 |] };
      Wal.Abort 2;
      Wal.Pool_snapshot [ "p" ] ];
  w

let test_mid_record_truncation_sweep () =
  let w = small_wal () in
  let full = Wal.records w in
  let path = Filename.temp_file "entfault" ".wal" in
  let cut_path = Filename.temp_file "entfault" ".cut" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove cut_path)
    (fun () ->
      Wal.save w path;
      let bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let magic_len = 8 (* "ENTWAL2\n" *) in
      let rec is_prefix xs ys =
        match xs, ys with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      for cut = 0 to String.length bytes do
        let oc = open_out_bin cut_path in
        output_string oc (String.sub bytes 0 cut);
        close_out oc;
        if cut < magic_len then (
          try
            ignore (Wal.load cut_path);
            Alcotest.failf "cut %d: truncated header accepted" cut
          with Failure _ -> ())
        else
          match Wal.load cut_path with
          | loaded ->
            let records = Wal.records loaded in
            if not (is_prefix records full) then
              Alcotest.failf "cut %d: loaded log is not a record prefix" cut;
            (* every surviving prefix must replay cleanly *)
            ignore (Recovery.replay records)
          | exception exn ->
            Alcotest.failf "cut %d: load failed: %s" cut (Printexc.to_string exn)
      done)

(* --- WAL round-trip and recovery idempotence --- *)

let prop_wal_file_roundtrip =
  QCheck2.Test.make ~name:"wal save/load round-trips every record" ~count:60
    Tgen.schedule_gen
    (fun records ->
      Fault.deactivate ();
      let w = Wal.create () in
      List.iter (fun r -> ignore (Wal.append w r)) records;
      let path = Filename.temp_file "entfault" ".wal" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Wal.save w path;
          Wal.records (Wal.load path) = records))

let prop_replay_redo_idempotent =
  (* Records carry full after-images, so re-applying the survivors'
     redo (update/delete) tail after a full replay is a no-op: the
     "replaying a log twice" half of ARIES-style idempotence. *)
  QCheck2.Test.make ~name:"re-applying survivor redo is a no-op" ~count:60
    Tgen.schedule_gen
    (fun records ->
      let _, analysis = Recovery.replay records in
      let redo =
        List.filter
          (function
            | Wal.Write { txn; before = Some _; _ } ->
              List.mem txn analysis.Recovery.survivors
            | _ -> false)
          records
      in
      let once, _ = Recovery.replay records in
      let twice, _ = Recovery.replay (records @ redo) in
      Harness.dump_catalog once = Harness.dump_catalog twice)

let prop_recover_is_fixpoint =
  (* Crashing immediately after recovery and recovering again yields
     the same store: recovery continues the crashed WAL rather than
     re-logging it, so a crash during recovery loses nothing. *)
  QCheck2.Test.make ~name:"recovering a recovered image is a fixpoint" ~count:40
    Tgen.schedule_gen
    (fun records ->
      Fault.deactivate ();
      let direct, _ = Recovery.replay records in
      let engine, _ = Ent_txn.Engine.recover records in
      let wal = Option.get (Ent_txn.Engine.log engine) in
      let again, _ = Recovery.replay (Wal.crash_records wal) in
      Harness.dump_catalog direct = Harness.dump_catalog again)

(* --- generator soundness --- *)

let prop_tuples_inhabit_schema =
  QCheck2.Test.make ~name:"generated tuples inhabit their schema" ~count:200
    Tgen.schema_tuple_gen
    (fun (schema, tuple) ->
      ignore (Ent_storage.Tuple.of_array schema tuple);
      true)

let prop_generated_batches_account =
  (* Generated entangled batches drain with every task accounted for:
     an outcome, or the dormant pool for the partnerless programs. *)
  QCheck2.Test.make ~name:"generated batches drain accountably" ~count:20
    Tgen.entangled_batch_gen
    (fun (programs, lonely) ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Every_arrivals 3 }
      in
      let m = Tgen.travel_manager ~config () in
      let ids = List.map (Manager.submit m) programs in
      Manager.drain m;
      let dormant = Scheduler.dormant (Manager.scheduler m) in
      List.for_all
        (fun id -> Manager.outcome m id <> None || List.mem id dormant)
        ids
      && List.length dormant = lonely)

(* --- the entsim harness --- *)

let test_harness_seeds_clean () =
  (* a miniature entsim smoke run: seeded fault schedules over the
     standard workload mix must never violate an invariant *)
  let cfg = { Harness.default with pairs = 3; plain = 2; lonely = 1; users = 40 } in
  for seed = 0 to 11 do
    let outcome = Harness.check_seed { cfg with seed } in
    match outcome.violations with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "seed %d (plan %s): %s: %s" seed
        (Plan.to_string outcome.plan) v.invariant v.detail
  done

let test_harness_detects_widows () =
  (* without group commit, a rollback pair produces a widowed
     transaction; the harness must flag it even with no faults armed *)
  let cfg = { Harness.default with break_group_commit = true } in
  let caught = ref false in
  for seed = 0 to 3 do
    if not !caught then
      let outcome = Harness.run { cfg with seed } [] in
      if
        List.exists
          (fun (v : Harness.violation) ->
            v.invariant = "widow" || v.invariant = "history")
          outcome.violations
      then caught := true
  done;
  Alcotest.(check bool) "relaxed isolation is caught" true !caught

let test_harness_shrinks_to_replayable_plan () =
  (* shrinking a violating configuration keeps it violating *)
  let cfg = { Harness.default with break_group_commit = true; seed = 2 } in
  let outcome = Harness.run cfg [] in
  if outcome.violations = [] then
    Alcotest.fail "expected the widow detector to fire on seed 2";
  let shrunk = Harness.shrink cfg [] in
  Alcotest.(check bool) "shrunken plan still violates" true
    (Harness.violates cfg shrunk)

let () =
  Alcotest.run "fault"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "pick and weighted" `Quick test_rng_pick_and_weighted ] );
      ( "plan",
        [ Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Tgen.to_alcotest prop_plan_roundtrip ] );
      ( "injector",
        [ Alcotest.test_case "arm fires once" `Quick test_injector_arm_fires_once;
          Alcotest.test_case "profiling counts" `Quick test_injector_profiling_counts;
          Alcotest.test_case "drop and inactive" `Quick test_injector_drop_and_inactive ] );
      ( "crash-points",
        [ Alcotest.test_case "every record boundary" `Slow test_every_crash_point;
          Alcotest.test_case "every byte of the file encoding" `Quick
            test_mid_record_truncation_sweep ] );
      ( "properties",
        [ Tgen.to_alcotest prop_wal_file_roundtrip;
          Tgen.to_alcotest prop_replay_redo_idempotent;
          Tgen.to_alcotest prop_recover_is_fixpoint;
          Tgen.to_alcotest prop_tuples_inhabit_schema;
          Tgen.to_alcotest prop_generated_batches_account ] );
      ( "harness",
        [ Alcotest.test_case "seeded schedules hold invariants" `Slow
            test_harness_seeds_clean;
          Alcotest.test_case "widow detector" `Quick test_harness_detects_widows;
          Alcotest.test_case "shrinker keeps violation" `Quick
            test_harness_shrinks_to_replayable_plan ] ) ]
