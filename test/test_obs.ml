(* Tests for the observability layer (lib/obs): histogram quantiles
   against a sorted-array oracle, snapshot JSON round-trips, span
   nesting, the bench-document schema validator, and an integration
   check that one entangled workload leaves non-zero metrics in every
   layer of the engine. *)

open Ent_obs
open Ent_storage
open Ent_core

(* --- histogram quantiles vs a sorted-array oracle --- *)

let oracle_quantile sorted q =
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) idx))

let prop_hist_quantile =
  QCheck2.Test.make ~name:"histogram quantiles within relative error"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (float_range 1e-3 1e6))
    (fun values ->
      let h = Hist.create () in
      List.iter (Hist.observe h) values;
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let est = Hist.quantile h q in
          let exact = oracle_quantile sorted q in
          (* one bucket of slack on top of the advertised error *)
          Float.abs (est -. exact) <= (3. *. Hist.default_alpha *. exact) +. 1e-9)
        [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let test_hist_edge_cases () =
  let h = Hist.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0.0 (Hist.quantile h 0.5);
  Hist.observe h 0.0;
  Hist.observe h (-3.0);
  Hist.observe h Float.nan;
  Alcotest.(check int) "nan ignored" 2 (Hist.count h);
  Alcotest.(check (float 0.)) "non-positive bucket" 0.0 (Hist.quantile h 0.99);
  Hist.reset h;
  Alcotest.(check int) "reset clears" 0 (Hist.count h)

(* --- snapshot round-trip through the JSON encoder --- *)

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing member %S" name)

let test_snapshot_roundtrip () =
  Obs.reset ();
  let c = Obs.counter "test.roundtrip.counter" in
  let g = Obs.gauge "test.roundtrip.gauge" in
  let h = Obs.histogram "test.roundtrip.hist" in
  Obs.incr ~n:41 c;
  Obs.incr c;
  Obs.set g 2.5;
  List.iter (Obs.observe h) [ 1.0; 2.0; 3.0 ];
  let parsed = Json.of_string (Obs.snapshot ()) in
  let counters = member_exn "counters" parsed in
  let gauges = member_exn "gauges" parsed in
  let hists = member_exn "histograms" parsed in
  Alcotest.(check (option int)) "counter survives" (Some 42)
    (Option.bind (Json.member "test.roundtrip.counter" counters)
       Json.to_int_opt);
  Alcotest.(check (option (float 0.))) "gauge survives" (Some 2.5)
    (Option.bind (Json.member "test.roundtrip.gauge" gauges) Json.to_float_opt);
  let summary = member_exn "test.roundtrip.hist" hists in
  Alcotest.(check (option int)) "hist count survives" (Some 3)
    (Option.bind (Json.member "count" summary) Json.to_int_opt);
  Alcotest.(check (option (float 0.))) "hist sum survives" (Some 6.0)
    (Option.bind (Json.member "sum" summary) Json.to_float_opt)

let test_registry_interning () =
  Obs.reset ();
  let c = Obs.counter "test.intern.c" in
  Obs.incr c;
  let c' = Obs.counter "test.intern.c" in
  Obs.incr c';
  Alcotest.(check int) "same handle" 2 (Obs.counter_value c);
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument "Obs: test.intern.c registered with another type")
    (fun () -> ignore (Obs.gauge "test.intern.c"))

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"json print/parse round-trip on counters"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 10) (pair string small_nat))
    (fun kvs ->
      let obj =
        Json.Obj (List.mapi (fun i (k, v) ->
          (Printf.sprintf "%d.%s" i k, Json.Int v)) kvs)
      in
      Json.of_string (Json.to_string obj) = obj)

(* --- span nesting --- *)

let test_span_nesting () =
  Obs.reset ();
  Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> Obs.set_tracing false)
    (fun () ->
      let r =
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> 7))
      in
      Alcotest.(check int) "result threaded" 7 r;
      (try Obs.with_span "raises" (fun () -> failwith "boom") with
      | Failure _ -> ());
      let spans = Obs.spans () in
      Alcotest.(check (list (pair string int)))
        "names and depths, oldest first"
        [ ("inner", 1); ("outer", 0); ("raises", 0) ]
        (List.map (fun s -> (s.Obs.sp_name, s.Obs.sp_depth)) spans);
      List.iter
        (fun s ->
          if s.Obs.sp_dur < 0.0 then Alcotest.fail "negative span duration")
        spans)

let test_spans_off_by_default () =
  Obs.reset ();
  Alcotest.(check bool) "tracing off" false (Obs.tracing ());
  ignore (Obs.with_span "ignored" (fun () -> ()));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()))

(* --- bench document schema validation --- *)

let minimal_doc =
  (* one fig6a document with every required series and a single point *)
  let snapshot =
    Json.Obj
      [ ("counters",
         Json.Obj
           [ ("core.scheduler.runs", Json.Int 1);
             ("entangle.coordinate.answered", Json.Int 1);
             ("storage.table.inserts", Json.Int 1);
             ("txn.lock.requests", Json.Int 1) ]);
        ("gauges", Json.Obj []);
        ("histograms", Json.Obj []) ]
  in
  let series name =
    Json.Obj
      [ ("name", Json.Str name);
        ("points",
         Json.List
           [ Json.Obj
               [ ("x", Json.Int 10);
                 ("time_s", Json.Float 0.5);
                 ("metrics", snapshot) ] ]) ]
  in
  Json.Obj
    [ ("schema_version", Json.Int Ent_obs.Schema.version);
      ("figure", Json.Str "fig6a");
      ("bench_txns", Json.Int 100);
      ("x_label", Json.Str "connections");
      ("unit", Json.Str "simulated_seconds");
      ("series",
       Json.List
         (List.map series
            [ "NoSocial-T"; "Social-T"; "Entangled-T"; "NoSocial-Q";
              "Social-Q"; "Entangled-Q" ])) ]

let test_schema_accepts_valid () =
  match Ent_obs.Schema.validate minimal_doc with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_schema_rejects_invalid () =
  let broken =
    match minimal_doc with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "figure" then (k, Json.Str "fig9") else (k, v))
           fields)
    | _ -> assert false
  in
  (match Ent_obs.Schema.validate broken with
  | Ok () -> Alcotest.fail "unknown figure accepted"
  | Error _ -> ());
  match Ent_obs.Schema.validate (Json.Obj []) with
  | Ok () -> Alcotest.fail "empty document accepted"
  | Error _ -> ()

let test_reference_fixtures_valid () =
  List.iter
    (fun fig ->
      let path = Printf.sprintf "fixtures/BENCH_%s.json" fig in
      match Ent_obs.Schema.validate_file path with
      | Ok () -> ()
      | Error errs ->
        Alcotest.fail (Printf.sprintf "%s: %s" path (String.concat "; " errs)))
    [ "fig6a"; "fig6b"; "fig6c" ]

(* --- integration: one entangled workload lights up every layer --- *)

let date y m d = Value.date_of_ymd ~y ~m ~d

let obs_manager () =
  let config =
    { Scheduler.default_config with trigger = Scheduler.Every_arrivals 4 }
  in
  let m = Manager.create ~config () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Reserve"
    [ ("name", Schema.T_str); ("what", Schema.T_str); ("item", Schema.T_int) ];
  List.iter
    (fun (fno, d, dest) -> Manager.load_row m "Flights" [ Int fno; d; Str dest ])
    [ (122, date 2011 5 3, "LA"); (123, date 2011 5 4, "LA") ];
  m

let flight_program me partner =
  Printf.sprintf
    "BEGIN TRANSACTION;\n\
     SELECT '%s', fno AS @fno, fdate INTO ANSWER FlightRes\n\
     WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
     AND ('%s', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\n\
     INSERT INTO Reserve VALUES ('%s', 'flight', @fno);\n\
     COMMIT;"
    me partner me

let update_program dest =
  Printf.sprintf
    "BEGIN TRANSACTION;\n\
     UPDATE Flights SET dest = '%s' WHERE fno = 123;\n\
     COMMIT;"
    dest

let counter_value name =
  Option.value ~default:0 (Obs.find_counter name)

let test_entangled_workload_metrics () =
  Obs.reset ();
  let m = obs_manager () in
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (flight_program "Minnie" "Mickey") in
  (* two classical writers fighting over the same row force lock waits *)
  let u1 = Manager.submit_string m (update_program "Paris") in
  let u2 = Manager.submit_string m (update_program "Tokyo") in
  Manager.drain m;
  List.iter
    (fun (name, id) ->
      match Manager.outcome m id with
      | Some Scheduler.Committed -> ()
      | o ->
        Alcotest.fail
          (Printf.sprintf "%s did not commit (%s)" name
             (match o with
             | Some Scheduler.Timed_out -> "timed out"
             | Some Scheduler.Rolled_back -> "rolled back"
             | Some (Scheduler.Errored e) -> "error: " ^ e
             | _ -> "pending")))
    [ ("mickey", mickey); ("minnie", minnie); ("u1", u1); ("u2", u2) ];
  let nonzero name =
    if counter_value name = 0 then
      Alcotest.fail (Printf.sprintf "expected %s > 0" name)
  in
  (* the paper's headline metrics: lock waits and partner matches *)
  nonzero "txn.lock.waits";
  nonzero "entangle.coordinate.answered";
  (* every layer contributed *)
  nonzero "txn.lock.requests";
  nonzero "txn.engine.commits";
  nonzero "storage.table.inserts";
  nonzero "storage.table.rows_read";
  nonzero "entangle.ground.computes";
  nonzero "core.scheduler.runs";
  (match Obs.find_histogram "entangle.coordinate.match_latency_us" with
  | Some h when Hist.count h > 0 -> ()
  | _ -> Alcotest.fail "no partner-match latency samples");
  (match Obs.find_histogram "core.entangle.blocked_s" with
  | Some h when Hist.count h > 0 -> ()
  | _ -> Alcotest.fail "no entangled-blocking samples");
  (* the snapshot of this run passes the layer-coverage check the
     bench schema applies to every document *)
  let prefixes = [ "txn."; "storage."; "entangle."; "core." ] in
  let names = Obs.metric_names () in
  List.iter
    (fun p ->
      if
        not
          (List.exists
             (fun n ->
               String.length n > String.length p
               && String.sub n 0 (String.length p) = p
               && counter_value n > 0)
             names)
      then Alcotest.fail (Printf.sprintf "no live metric under %s" p))
    prefixes

let () =
  Alcotest.run "obs"
    [ ( "hist",
        [ Gen.to_alcotest prop_hist_quantile;
          Alcotest.test_case "edge cases" `Quick test_hist_edge_cases ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Gen.to_alcotest prop_json_roundtrip ] );
      ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "off by default" `Quick test_spans_off_by_default
        ] );
      ( "schema",
        [ Alcotest.test_case "accepts valid" `Quick test_schema_accepts_valid;
          Alcotest.test_case "rejects invalid" `Quick
            test_schema_rejects_invalid;
          Alcotest.test_case "paper-scale reference fixtures" `Quick
            test_reference_fixtures_valid ] );
      ( "integration",
        [ Alcotest.test_case "entangled workload lights up every layer"
            `Quick test_entangled_workload_metrics ] ) ]
