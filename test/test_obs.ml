(* Tests for the observability layer (lib/obs): histogram quantiles
   against a sorted-array oracle, snapshot JSON round-trips, span
   nesting, the bench-document schema validator, and an integration
   check that one entangled workload leaves non-zero metrics in every
   layer of the engine. *)

open Ent_obs
open Ent_storage
open Ent_core

(* --- histogram quantiles vs a sorted-array oracle --- *)

let oracle_quantile sorted q =
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) idx))

let prop_hist_quantile =
  QCheck2.Test.make ~name:"histogram quantiles within relative error"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (float_range 1e-3 1e6))
    (fun values ->
      let h = Hist.create () in
      List.iter (Hist.observe h) values;
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let est = Hist.quantile h q in
          let exact = oracle_quantile sorted q in
          (* one bucket of slack on top of the advertised error *)
          Float.abs (est -. exact) <= (3. *. Hist.default_alpha *. exact) +. 1e-9)
        [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let test_hist_edge_cases () =
  let h = Hist.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0.0 (Hist.quantile h 0.5);
  Hist.observe h 0.0;
  Hist.observe h (-3.0);
  Hist.observe h Float.nan;
  Alcotest.(check int) "nan ignored" 2 (Hist.count h);
  Alcotest.(check (float 0.)) "non-positive bucket" 0.0 (Hist.quantile h 0.99);
  Hist.reset h;
  Alcotest.(check int) "reset clears" 0 (Hist.count h)

(* --- snapshot round-trip through the JSON encoder --- *)

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing member %S" name)

let test_snapshot_roundtrip () =
  Obs.reset ();
  let c = Obs.counter "test.roundtrip.counter" in
  let g = Obs.gauge "test.roundtrip.gauge" in
  let h = Obs.histogram "test.roundtrip.hist" in
  Obs.incr ~n:41 c;
  Obs.incr c;
  Obs.set g 2.5;
  List.iter (Obs.observe h) [ 1.0; 2.0; 3.0 ];
  let parsed = Json.of_string (Obs.snapshot ()) in
  let counters = member_exn "counters" parsed in
  let gauges = member_exn "gauges" parsed in
  let hists = member_exn "histograms" parsed in
  Alcotest.(check (option int)) "counter survives" (Some 42)
    (Option.bind (Json.member "test.roundtrip.counter" counters)
       Json.to_int_opt);
  Alcotest.(check (option (float 0.))) "gauge survives" (Some 2.5)
    (Option.bind (Json.member "test.roundtrip.gauge" gauges) Json.to_float_opt);
  let summary = member_exn "test.roundtrip.hist" hists in
  Alcotest.(check (option int)) "hist count survives" (Some 3)
    (Option.bind (Json.member "count" summary) Json.to_int_opt);
  Alcotest.(check (option (float 0.))) "hist sum survives" (Some 6.0)
    (Option.bind (Json.member "sum" summary) Json.to_float_opt)

let test_registry_interning () =
  Obs.reset ();
  let c = Obs.counter "test.intern.c" in
  Obs.incr c;
  let c' = Obs.counter "test.intern.c" in
  Obs.incr c';
  Alcotest.(check int) "same handle" 2 (Obs.counter_value c);
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument "Obs: test.intern.c registered with another type")
    (fun () -> ignore (Obs.gauge "test.intern.c"))

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"json print/parse round-trip on counters"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 10) (pair string small_nat))
    (fun kvs ->
      let obj =
        Json.Obj (List.mapi (fun i (k, v) ->
          (Printf.sprintf "%d.%s" i k, Json.Int v)) kvs)
      in
      Json.of_string (Json.to_string obj) = obj)

(* --- span nesting --- *)

let test_span_nesting () =
  Obs.reset ();
  Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> Obs.set_tracing false)
    (fun () ->
      let r =
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> 7))
      in
      Alcotest.(check int) "result threaded" 7 r;
      (try Obs.with_span "raises" (fun () -> failwith "boom") with
      | Failure _ -> ());
      let spans = Obs.spans () in
      Alcotest.(check (list (pair string int)))
        "names and depths, oldest first"
        [ ("inner", 1); ("outer", 0); ("raises", 0) ]
        (List.map (fun s -> (s.Obs.sp_name, s.Obs.sp_depth)) spans);
      List.iter
        (fun s ->
          if s.Obs.sp_dur < 0.0 then Alcotest.fail "negative span duration")
        spans)

let test_spans_off_by_default () =
  Obs.reset ();
  Alcotest.(check bool) "tracing off" false (Obs.tracing ());
  ignore (Obs.with_span "ignored" (fun () -> ()));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()))

(* --- bench document schema validation --- *)

let minimal_doc =
  (* one fig6a document with every required series and a single point *)
  let snapshot =
    Json.Obj
      [ ("counters",
         Json.Obj
           [ ("core.scheduler.runs", Json.Int 1);
             ("entangle.coordinate.answered", Json.Int 1);
             ("storage.table.inserts", Json.Int 1);
             ("txn.lock.requests", Json.Int 1) ]);
        ("gauges", Json.Obj []);
        ("histograms", Json.Obj []) ]
  in
  let series name =
    Json.Obj
      [ ("name", Json.Str name);
        ("points",
         Json.List
           [ Json.Obj
               [ ("x", Json.Int 10);
                 ("time_s", Json.Float 0.5);
                 ("metrics", snapshot) ] ]) ]
  in
  Json.Obj
    [ ("schema_version", Json.Int Ent_obs.Schema.version);
      ("figure", Json.Str "fig6a");
      ("bench_txns", Json.Int 100);
      ("x_label", Json.Str "connections");
      ("unit", Json.Str "simulated_seconds");
      ("series",
       Json.List
         (List.map series
            [ "NoSocial-T"; "Social-T"; "Entangled-T"; "NoSocial-Q";
              "Social-Q"; "Entangled-Q" ])) ]

let test_schema_accepts_valid () =
  match Ent_obs.Schema.validate minimal_doc with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_schema_rejects_invalid () =
  let broken =
    match minimal_doc with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "figure" then (k, Json.Str "fig9") else (k, v))
           fields)
    | _ -> assert false
  in
  (match Ent_obs.Schema.validate broken with
  | Ok () -> Alcotest.fail "unknown figure accepted"
  | Error _ -> ());
  match Ent_obs.Schema.validate (Json.Obj []) with
  | Ok () -> Alcotest.fail "empty document accepted"
  | Error _ -> ()

let test_reference_fixtures_valid () =
  List.iter
    (fun fig ->
      let path = Printf.sprintf "fixtures/BENCH_%s.json" fig in
      match Ent_obs.Schema.validate_file path with
      | Ok () -> ()
      | Error errs ->
        Alcotest.fail (Printf.sprintf "%s: %s" path (String.concat "; " errs)))
    [ "fig6a"; "fig6b"; "fig6c" ]

(* --- integration: one entangled workload lights up every layer --- *)

let date y m d = Value.date_of_ymd ~y ~m ~d

let obs_manager () =
  let config =
    { Scheduler.default_config with trigger = Scheduler.Every_arrivals 4 }
  in
  let m = Manager.create ~config () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Reserve"
    [ ("name", Schema.T_str); ("what", Schema.T_str); ("item", Schema.T_int) ];
  List.iter
    (fun (fno, d, dest) -> Manager.load_row m "Flights" [ Int fno; d; Str dest ])
    [ (122, date 2011 5 3, "LA"); (123, date 2011 5 4, "LA") ];
  m

let flight_program me partner =
  Printf.sprintf
    "BEGIN TRANSACTION;\n\
     SELECT '%s', fno AS @fno, fdate INTO ANSWER FlightRes\n\
     WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
     AND ('%s', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\n\
     INSERT INTO Reserve VALUES ('%s', 'flight', @fno);\n\
     COMMIT;"
    me partner me

let update_program dest =
  Printf.sprintf
    "BEGIN TRANSACTION;\n\
     UPDATE Flights SET dest = '%s' WHERE fno = 123;\n\
     COMMIT;"
    dest

let counter_value name =
  Option.value ~default:0 (Obs.find_counter name)

let test_entangled_workload_metrics () =
  Obs.reset ();
  (* match latency is wall-clock and only observed while tracing is on
     (default runs stay byte-identical across reruns) *)
  Obs.set_tracing true;
  let m = obs_manager () in
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (flight_program "Minnie" "Mickey") in
  (* two classical writers fighting over the same row force lock waits *)
  let u1 = Manager.submit_string m (update_program "Paris") in
  let u2 = Manager.submit_string m (update_program "Tokyo") in
  Manager.drain m;
  Obs.set_tracing false;
  List.iter
    (fun (name, id) ->
      match Manager.outcome m id with
      | Some Scheduler.Committed -> ()
      | o ->
        Alcotest.fail
          (Printf.sprintf "%s did not commit (%s)" name
             (match o with
             | Some Scheduler.Timed_out -> "timed out"
             | Some Scheduler.Rolled_back -> "rolled back"
             | Some (Scheduler.Errored e) -> "error: " ^ e
             | _ -> "pending")))
    [ ("mickey", mickey); ("minnie", minnie); ("u1", u1); ("u2", u2) ];
  let nonzero name =
    if counter_value name = 0 then
      Alcotest.fail (Printf.sprintf "expected %s > 0" name)
  in
  (* the paper's headline metrics: lock waits and partner matches *)
  nonzero "txn.lock.waits";
  nonzero "entangle.coordinate.answered";
  (* every layer contributed *)
  nonzero "txn.lock.requests";
  nonzero "txn.engine.commits";
  nonzero "storage.table.inserts";
  nonzero "storage.table.rows_read";
  nonzero "entangle.ground.computes";
  nonzero "core.scheduler.runs";
  (match Obs.find_histogram "entangle.coordinate.match_latency_us" with
  | Some h when Hist.count h > 0 -> ()
  | _ -> Alcotest.fail "no partner-match latency samples");
  (match Obs.find_histogram "core.entangle.blocked_s" with
  | Some h when Hist.count h > 0 -> ()
  | _ -> Alcotest.fail "no entangled-blocking samples");
  (* the snapshot of this run passes the layer-coverage check the
     bench schema applies to every document *)
  let prefixes = [ "txn."; "storage."; "entangle."; "core." ] in
  let names = Obs.metric_names () in
  List.iter
    (fun p ->
      if
        not
          (List.exists
             (fun n ->
               String.length n > String.length p
               && String.sub n 0 (String.length p) = p
               && counter_value n > 0)
             names)
      then Alcotest.fail (Printf.sprintf "no live metric under %s" p))
    prefixes

(* --- the causal event log: lifecycle, edges, attribution, export --- *)

let with_event_log f =
  Event.set_logging true;
  Event.reset ();
  Fun.protect
    ~finally:(fun () ->
      Event.set_logging false;
      Event.reset ())
    f

let task_events task evs = List.filter (fun (e : Event.t) -> e.task = task) evs

let kind_names evs = List.map (fun (e : Event.t) -> Event.kind_name e.kind) evs

(* Index of the first occurrence of a kind, or fail. *)
let first_index name task evs =
  match
    List.find_index (fun (e : Event.t) -> Event.kind_name e.kind = name) evs
  with
  | Some i -> i
  | None ->
    Alcotest.failf "task %d: no %s event (timeline: %s)" task name
      (String.concat " " (kind_names evs))

(* Every committed transactional task's timeline is ordered and legal:
   it enters the pool, begins, reaches ready, commits, and finalizes —
   in that order — with monotone sequence numbers and simulated time. *)
let prop_event_lifecycle =
  QCheck2.Test.make ~name:"per-txn event timelines are monotone and legal"
    ~count:25 Gen.entangled_batch_gen (fun (programs, _lonely) ->
      with_event_log @@ fun () ->
      let m = Gen.travel_manager () in
      let ids = List.map (Manager.submit m) programs in
      Manager.drain m;
      Alcotest.(check int) "ring did not overflow" 0 (Event.dropped ());
      let evs = Event.events () in
      List.iter
        (fun (e : Event.t) ->
          ignore e.seq (* events () is oldest-first by construction *))
        evs;
      List.iter
        (fun id ->
          match Manager.outcome m id with
          | Some Scheduler.Committed ->
            let tl = task_events id evs in
            (match tl with
            | [] -> Alcotest.failf "committed task %d left no events" id
            | first :: _ ->
              Alcotest.(check string)
                (Printf.sprintf "task %d starts dormant" id)
                "pool_enter"
                (Event.kind_name first.kind));
            (match List.rev tl with
            | (last : Event.t) :: _ ->
              (match last.kind with
              | Event.Finalize { outcome } ->
                Alcotest.(check string)
                  (Printf.sprintf "task %d finalize outcome" id)
                  "committed" outcome
              | _ ->
                Alcotest.failf "task %d does not end with finalize (%s)" id
                  (Event.kind_name last.kind))
            | [] -> assert false);
            let i_begin = first_index "begin" id tl in
            let i_ready = first_index "ready" id tl in
            let i_commit = first_index "commit" id tl in
            let i_final = first_index "finalize" id tl in
            if not (i_begin < i_ready && i_ready < i_commit && i_commit <= i_final)
            then
              Alcotest.failf "task %d lifecycle out of order: %s" id
                (String.concat " " (kind_names tl));
            ignore
              (List.fold_left
                 (fun ((prev_seq, prev_sim) : int * float) (e : Event.t) ->
                   if e.seq <= prev_seq then
                     Alcotest.failf "task %d: seq not increasing" id;
                   if e.t_sim < prev_sim then
                     Alcotest.failf "task %d: simulated time went backwards" id;
                   (e.seq, e.t_sim))
                 (-1, 0.0) tl)
          | _ -> ())
        ids;
      true)

(* Partner_match edges name exactly the tasks the coordination layer
   reported for the same entanglement event (the on_entangle hook is
   the schedule recorder's ground truth). *)
let prop_entangle_edges =
  QCheck2.Test.make ~name:"entanglement edges name txns that coordinated"
    ~count:25 Gen.entangled_batch_gen (fun (programs, _lonely) ->
      with_event_log @@ fun () ->
      let m = Gen.travel_manager () in
      let coordinated : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      Scheduler.set_on_entangle (Manager.scheduler m)
        (Some
           (fun ~event participants ->
             let tasks =
               List.filter_map
                 (fun (txn, _tables) -> Event.task_of_txn txn)
                 participants
             in
             Hashtbl.replace coordinated event tasks));
      List.iter (fun p -> ignore (Manager.submit m p)) programs;
      Manager.drain m;
      let matches =
        List.filter_map
          (fun (e : Event.t) ->
            match e.kind with
            | Event.Partner_match { event; peers } ->
              Some (event, e.task, peers)
            | _ -> None)
          (Event.events ())
      in
      List.iter
        (fun (event, task, peers) ->
          match Hashtbl.find_opt coordinated event with
          | None ->
            Alcotest.failf
              "partner_match for event %d has no coordination record" event
          | Some tasks ->
            let edge = List.sort compare (task :: peers) in
            if List.sort compare tasks <> edge then
              Alcotest.failf
                "event %d: partner_match names [%s], coordination saw [%s]"
                event
                (String.concat "," (List.map string_of_int edge))
                (String.concat "," (List.map string_of_int tasks)))
        matches;
      true)

(* The attribution is an exact partition: per committed task, the five
   phase times sum to the measured first-event→finalize interval. *)
let prop_attrib_partition =
  QCheck2.Test.make ~name:"phase attribution partitions each txn's latency"
    ~count:25 Gen.entangled_batch_gen (fun (programs, _lonely) ->
      with_event_log @@ fun () ->
      let m = Gen.travel_manager () in
      List.iter (fun p -> ignore (Manager.submit m p)) programs;
      Manager.drain m;
      let reports =
        Attrib.of_events ~time:(fun (e : Event.t) -> e.t_sim) (Event.events ())
      in
      List.iter
        (fun (r : Attrib.txn_report) ->
          if r.outcome = Some "committed" then begin
            let attributed =
              List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.by_phase
            in
            if Float.abs (attributed -. r.total_s) > 1e-9 then
              Alcotest.failf "task %d: attributed %.9f <> measured %.9f" r.task
                attributed r.total_s
          end)
        reports;
      true)

(* A fixed two-pair workload: the Perfetto export round-trips through
   Obs.Json preserving the event count, passes the trace validator,
   and its flow (entanglement) edges agree with the group commits. *)
let test_trace_export () =
  with_event_log @@ fun () ->
  let m = Gen.travel_manager () in
  let submit s = ignore (Manager.submit m (Program.of_string s)) in
  submit (Gen.flight_program "Mickey" "Minnie");
  submit (Gen.flight_program "Minnie" "Mickey");
  submit (Gen.flight_program "Donald" "Daisy");
  submit (Gen.flight_program "Daisy" "Donald");
  Manager.drain m;
  let evs = Event.events () in
  let doc = Trace.to_json evs in
  (* 1. validator accepts the export *)
  Alcotest.(check bool) "export is a trace document" true (Ent_obs.Schema.is_trace doc);
  (match Ent_obs.Schema.validate_trace doc with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* 2. print/parse round-trip preserves the document and the counts *)
  let reparsed = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "round-trip preserves the document" true
    (reparsed = doc);
  let trace_events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let phase p =
    List.filter
      (fun ev -> Json.member "ph" ev = Some (Json.Str p))
      trace_events
  in
  Alcotest.(check int) "one instant per log event" (List.length evs)
    (List.length (phase "i"));
  (* 3. every entangled pair that group-committed appears as one flow
     edge (s/f pair) between the partners' tracks *)
  let committed_pairs =
    List.fold_left
      (fun acc (e : Event.t) ->
        match e.kind with
        | Event.Group_commit { members } ->
          let k = List.length members in
          acc + (k * (k - 1) / 2)
        | _ -> acc)
      0 evs
  in
  Alcotest.(check int) "two entangled pairs committed" 2 committed_pairs;
  Alcotest.(check int) "flow starts match group-commit pairs" committed_pairs
    (List.length (phase "s"));
  Alcotest.(check int) "flow finishes match group-commit pairs" committed_pairs
    (List.length (phase "f"));
  (* 4. corrupting the document trips the validator: drop one flow
     finish so the start/finish multisets no longer balance *)
  let broken =
    match doc with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k <> "traceEvents" then (k, v)
             else
               match v with
               | Json.List l ->
                 let dropped_one = ref false in
                 ( k,
                   Json.List
                     (List.filter
                        (fun ev ->
                          if
                            (not !dropped_one)
                            && Json.member "ph" ev = Some (Json.Str "f")
                          then begin
                            dropped_one := true;
                            false
                          end
                          else true)
                        l) )
               | _ -> (k, v))
           fields)
    | _ -> assert false
  in
  match Ent_obs.Schema.validate_trace broken with
  | Ok () -> Alcotest.fail "unbalanced flow events accepted"
  | Error _ -> ()

let test_event_log_off_is_noop () =
  Event.set_logging false;
  Event.reset ();
  Event.emit ~txn:1 ~task:1 Event.Begin;
  Event.emit (Event.Run_start { pool = 3 });
  Alcotest.(check int) "no events recorded" 0 (List.length (Event.events ()))

let () =
  Alcotest.run "obs"
    [ ( "hist",
        [ Gen.to_alcotest prop_hist_quantile;
          Alcotest.test_case "edge cases" `Quick test_hist_edge_cases ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Gen.to_alcotest prop_json_roundtrip ] );
      ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "off by default" `Quick test_spans_off_by_default
        ] );
      ( "schema",
        [ Alcotest.test_case "accepts valid" `Quick test_schema_accepts_valid;
          Alcotest.test_case "rejects invalid" `Quick
            test_schema_rejects_invalid;
          Alcotest.test_case "paper-scale reference fixtures" `Quick
            test_reference_fixtures_valid ] );
      ( "integration",
        [ Alcotest.test_case "entangled workload lights up every layer"
            `Quick test_entangled_workload_metrics ] );
      ( "events",
        [ Gen.to_alcotest prop_event_lifecycle;
          Gen.to_alcotest prop_entangle_edges;
          Gen.to_alcotest prop_attrib_partition;
          Alcotest.test_case "Perfetto export: round-trip, flows, validator"
            `Quick test_trace_export;
          Alcotest.test_case "logging off records nothing" `Quick
            test_event_log_off_is_noop ] ) ]
