(* Tests for the SQL dialect: lexer, parser (on the paper's own
   queries), pretty-printer round-trips, and the evaluator over the
   Figure 1 database. *)

open Ent_storage
open Ent_sql

(* --- paper fixtures --- *)

let mickey_query =
  "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation\n\
   WHERE (fno, fdate) IN\n\
  \  (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
   AND ('Minnie', fno, fdate) IN ANSWER Reservation\n\
   CHOOSE 1"

let minnie_query =
  "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation\n\
   WHERE (fno, fdate) IN\n\
  \  (SELECT F.fno, F.fdate FROM Flights F, Airlines A WHERE\n\
  \   F.dest='LA' AND F.fno = A.fno AND A.airline = 'United')\n\
   AND ('Mickey', fno, fdate) IN ANSWER Reservation\n\
   CHOOSE 1"

let figure2_transaction =
  "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
   SELECT 'Mickey', fno, fdate AS @ArrivalDay\n\
   INTO ANSWER FlightRes\n\
   WHERE (fno, fdate) IN\n\
  \  (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
   AND ('Minnie', fno, fdate) IN ANSWER FlightRes\n\
   CHOOSE 1;\n\
   SET @StayLength = '2011-05-06' - @ArrivalDay;\n\
   SELECT 'Mickey', hid, @ArrivalDay, @StayLength\n\
   INTO ANSWER HotelRes\n\
   WHERE (hid) IN (SELECT hid FROM Hotels WHERE location='LA')\n\
   AND ('Minnie', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes\n\
   CHOOSE 1;\n\
   COMMIT;"

let nosocial_transaction =
  "BEGIN TRANSACTION;\n\
   SELECT @uid, @hometown FROM User WHERE uid=36513;\n\
   SELECT @fid FROM Flight WHERE source=@hometown AND destination='FAT';\n\
   INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);\n\
   COMMIT;"

(* --- lexer --- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT 'it''s', @x, 42 <> fno;" in
  Alcotest.(check int) "token count" 10 (Array.length toks);
  (match toks.(1) with
  | Lexer.Str_lit s, _ -> Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "expected string literal");
  match toks.(3) with
  | Lexer.Host_var v, _ -> Alcotest.(check string) "host var" "x" v
  | _ -> Alcotest.fail "expected host var"

let test_lexer_comments () =
  let toks = Lexer.tokenize "SELECT x -- a comment\nFROM t" in
  Alcotest.(check int) "comment skipped" 5 (Array.length toks)

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "'unterminated");
     Alcotest.fail "unterminated string accepted"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokenize "a # b");
    Alcotest.fail "stray char accepted"
  with Lexer.Lex_error _ -> ()

(* --- parser --- *)

let test_parse_mickey () =
  match Parser.parse_stmt mickey_query with
  | Ast.Entangled e ->
    Alcotest.(check string) "answer relation" "Reservation" e.into;
    Alcotest.(check int) "choose" 1 e.choose;
    Alcotest.(check int) "projection arity" 3 (List.length e.eprojs);
    (match e.ewhere with
    | Ast.And (Ast.In_select (vars, sub), Ast.In_answer (post, rel)) ->
      Alcotest.(check int) "bound vars" 2 (List.length vars);
      Alcotest.(check int) "subquery from" 1 (List.length sub.from);
      Alcotest.(check int) "postcondition arity" 3 (List.length post);
      Alcotest.(check string) "postcondition relation" "Reservation" rel
    | _ -> Alcotest.fail "unexpected WHERE shape")
  | _ -> Alcotest.fail "expected entangled statement"

let test_parse_minnie_join () =
  match Parser.parse_stmt minnie_query with
  | Ast.Entangled e -> (
    match e.ewhere with
    | Ast.And (Ast.In_select (_, sub), _) ->
      Alcotest.(check int) "join width" 2 (List.length sub.from);
      let aliases = List.map snd sub.from in
      Alcotest.(check (list string)) "aliases" [ "F"; "A" ] aliases
    | _ -> Alcotest.fail "unexpected WHERE shape")
  | _ -> Alcotest.fail "expected entangled statement"

let test_parse_figure2 () =
  let p = Parser.parse_program figure2_transaction in
  (match p.timeout with
  | Some seconds ->
    Alcotest.(check (float 0.01)) "2 days" 172800.0 seconds
  | None -> Alcotest.fail "timeout missing");
  Alcotest.(check int) "statements" 3 (List.length p.body);
  match Ast.statements p with
  | [ Ast.Entangled flight; Ast.Set_var ("StayLength", _); Ast.Entangled hotel ] ->
    Alcotest.(check string) "flight rel" "FlightRes" flight.into;
    Alcotest.(check string) "hotel rel" "HotelRes" hotel.into;
    (* fdate AS @ArrivalDay host binding *)
    let binds =
      List.filter_map (fun (pr : Ast.proj) -> pr.pbind) flight.eprojs
    in
    Alcotest.(check (list string)) "flight binds" [ "ArrivalDay" ] binds
  | _ -> Alcotest.fail "unexpected statement shapes"

let test_parse_nosocial () =
  let p = Parser.parse_program nosocial_transaction in
  Alcotest.(check bool) "no timeout" true (p.timeout = None);
  match Ast.statements p with
  | [ Ast.Select s1; Ast.Select _; Ast.Insert { table; _ } ] ->
    Alcotest.(check string) "reserve" "Reserve" table;
    (* bare @uid, @hometown projections parse as host-var expressions;
       the evaluator desugars unbound ones into column bindings *)
    (match List.map (fun (pr : Ast.proj) -> pr.pexpr) s1.projs with
    | [ Ast.Host "uid"; Ast.Host "hometown" ] -> ()
    | _ -> Alcotest.fail "expected host-var projections")
  | _ -> Alcotest.fail "unexpected statement shapes"

let test_parse_script () =
  let script =
    "CREATE TABLE T (a INT, b STRING);\n\
     INSERT INTO T VALUES (1, 'x');\n\
     BEGIN TRANSACTION;\nSELECT a FROM T;\nCOMMIT;\n\
     DELETE FROM T WHERE a = 1;"
  in
  match Parser.parse_script script with
  | [ Parser.Stmt (Ast.Create_table _, _);
      Parser.Stmt (Ast.Insert _, { line = 2; col = 1 });
      Parser.Program _;
      Parser.Stmt (Ast.Delete _, { line = 6; col = 1 }) ] -> ()
  | items ->
    Alcotest.failf "unexpected script shape (%d items)" (List.length items)

let test_parse_operators_precedence () =
  (match Parser.parse_cond "a = 1 AND b = 2 OR c = 3" with
  | Ast.Or (Ast.And _, Ast.Cmp _) -> ()
  | _ -> Alcotest.fail "AND should bind tighter than OR");
  match Parser.parse_cond "NOT a = 1 AND b = 2" with
  | Ast.And (Ast.Not _, Ast.Cmp _) -> ()
  | _ -> Alcotest.fail "NOT should bind tighter than AND"

let test_parse_arith () =
  match Parser.parse_stmt "SET @x = 1 + 2 * 3" with
  | Ast.Set_var ("x", Ast.Binop (Add, Ast.Lit (Int 1), Ast.Binop (Mul, _, _))) -> ()
  | _ -> Alcotest.fail "precedence of * over +"

let test_parse_errors () =
  let expect_fail input =
    try
      ignore (Parser.parse_stmt input);
      Alcotest.failf "accepted: %s" input
    with Parser.Parse_error _ -> ()
  in
  expect_fail "SELECT";
  expect_fail "SELECT a FROM";
  expect_fail "INSERT INTO";
  expect_fail "SELECT 'x' INTO ANSWER R WHERE a = 1";
  (* missing CHOOSE *)
  expect_fail "SELECT a FROM t WHERE (a, b) IN (1, 2)";
  expect_fail "UPDATE t SET";
  expect_fail "CREATE TABLE t (a WIBBLE)"

let test_roundtrip_fixed () =
  let inputs =
    [ mickey_query;
      minnie_query;
      "SELECT a, b FROM t, u AS v WHERE t.a = v.b LIMIT 3";
      "INSERT INTO Reserve (uid, fid) VALUES (3, @fid)";
      "UPDATE t SET a = (a + 1) WHERE a < 10";
      "DELETE FROM t WHERE NOT (a = 1)";
      "SET @x = ('2011-05-06' - @d)" ]
  in
  List.iter
    (fun input ->
      let ast = Parser.parse_stmt input in
      let printed = Pretty.stmt_to_string ast in
      let ast' = Parser.parse_stmt printed in
      let printed' = Pretty.stmt_to_string ast' in
      Alcotest.(check string) ("roundtrip: " ^ input) printed printed')
    inputs

(* --- evaluator over the Figure 1 database --- *)

let date y m d = Value.date_of_ymd ~y ~m ~d

let figure1_catalog () =
  let cat = Catalog.create () in
  let flights =
    Catalog.create_table cat "Flights"
      (Schema.make
         [ { name = "fno"; ty = T_int };
           { name = "fdate"; ty = T_date };
           { name = "dest"; ty = T_str } ])
  in
  let airlines =
    Catalog.create_table cat "Airlines"
      (Schema.make
         [ { name = "fno"; ty = T_int }; { name = "airline"; ty = T_str } ])
  in
  List.iter
    (fun row -> ignore (Table.insert flights row))
    [ [| Value.Int 122; date 2011 5 3; Value.Str "LA" |];
      [| Value.Int 123; date 2011 5 4; Value.Str "LA" |];
      [| Value.Int 124; date 2011 5 3; Value.Str "LA" |];
      [| Value.Int 235; date 2011 5 5; Value.Str "Paris" |] ];
  List.iter
    (fun row -> ignore (Table.insert airlines row))
    [ [| Value.Int 122; Value.Str "United" |];
      [| Value.Int 123; Value.Str "United" |];
      [| Value.Int 124; Value.Str "USAir" |];
      [| Value.Int 235; Value.Str "Delta" |] ];
  cat

let run_select cat input =
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  match Parser.parse_stmt input with
  | Ast.Select sel -> (env, Eval.select_rows access env sel)
  | _ -> Alcotest.fail "expected a SELECT"

let test_eval_simple_select () =
  let cat = figure1_catalog () in
  let _, rows = run_select cat "SELECT fno FROM Flights WHERE dest = 'LA'" in
  Alcotest.(check int) "LA flights" 3 (List.length rows);
  let fnos = List.map (fun r -> r.(0)) rows in
  Alcotest.(check bool) "contains 122" true
    (List.exists (Value.equal (Int 122)) fnos)

let test_eval_join () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat
      "SELECT F.fno FROM Flights F, Airlines A WHERE F.dest='LA' AND F.fno = \
       A.fno AND A.airline = 'United'"
  in
  let fnos = List.sort Value.compare (List.map (fun r -> r.(0)) rows) in
  Alcotest.(check (list string))
    "united LA flights" [ "122"; "123" ]
    (List.map Value.to_string fnos)

let test_eval_in_subquery () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat
      "SELECT fno FROM Airlines WHERE (fno) IN (SELECT fno FROM Flights WHERE \
       dest = 'Paris')"
  in
  Alcotest.(check int) "paris airline rows" 1 (List.length rows)

let test_eval_limit_and_binding () =
  let cat = figure1_catalog () in
  let env, rows =
    run_select cat "SELECT fno AS @f FROM Flights WHERE dest = 'LA' LIMIT 1"
  in
  Alcotest.(check int) "limited" 1 (List.length rows);
  match Hashtbl.find_opt env "f" with
  | Some (Value.Int 122) -> ()
  | Some v -> Alcotest.failf "bound wrong value %s" (Value.to_string v)
  | None -> Alcotest.fail "host var not bound"

let test_eval_empty_binds_null () =
  let cat = figure1_catalog () in
  let env, rows =
    run_select cat "SELECT fno AS @f FROM Flights WHERE dest = 'Nowhere'"
  in
  Alcotest.(check int) "empty" 0 (List.length rows);
  match Hashtbl.find_opt env "f" with
  | Some Value.Null -> ()
  | _ -> Alcotest.fail "expected Null binding on empty result"

let test_eval_insert_update_delete () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let exec input = Eval.exec_stmt access env (Parser.parse_stmt input) in
  (match exec "INSERT INTO Airlines VALUES (125, 'United')" with
  | Eval.Affected 1 -> ()
  | _ -> Alcotest.fail "insert failed");
  (match exec "UPDATE Airlines SET airline = 'Delta' WHERE fno = 125" with
  | Eval.Affected 1 -> ()
  | _ -> Alcotest.fail "update failed");
  (match exec "DELETE FROM Airlines WHERE airline = 'Delta'" with
  | Eval.Affected 2 -> () (* 235 and the updated 125 *)
  | Eval.Affected n -> Alcotest.failf "deleted %d" n
  | _ -> Alcotest.fail "delete failed");
  let _, rows = run_select cat "SELECT fno FROM Airlines" in
  Alcotest.(check int) "remaining airlines" 3 (List.length rows)

let test_eval_host_vars_flow () =
  (* The Appendix D NoSocial transaction shape, statement by statement. *)
  let cat = Catalog.create () in
  let user =
    Catalog.create_table cat "User"
      (Schema.make [ { name = "uid"; ty = T_int }; { name = "hometown"; ty = T_str } ])
  in
  let flight =
    Catalog.create_table cat "Flight"
      (Schema.make
         [ { name = "source"; ty = T_str };
           { name = "destination"; ty = T_str };
           { name = "fid"; ty = T_int } ])
  in
  let reserve =
    Catalog.create_table cat "Reserve"
      (Schema.make [ { name = "uid"; ty = T_int }; { name = "fid"; ty = T_int } ])
  in
  ignore (Table.insert user [| Value.Int 36513; Value.Str "ITH" |]);
  ignore (Table.insert flight [| Value.Str "ITH"; Value.Str "FAT"; Value.Int 77 |]);
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let exec input = ignore (Eval.exec_stmt access env (Parser.parse_stmt input)) in
  exec "SELECT @uid, @hometown FROM User WHERE uid=36513";
  exec "SELECT @fid FROM Flight WHERE source=@hometown AND destination='FAT'";
  exec "INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid)";
  Alcotest.(check int) "reservation made" 1 (Table.cardinal reserve);
  match Table.get reserve 0 with
  | Some row ->
    Alcotest.(check string) "uid" "36513" (Value.to_string (Tuple.get row 0));
    Alcotest.(check string) "fid" "77" (Value.to_string (Tuple.get row 1))
  | None -> Alcotest.fail "row missing"

let test_eval_index_fast_path_agrees () =
  let cat = figure1_catalog () in
  let flights = Catalog.find_exn cat "Flights" in
  let q = "SELECT fno FROM Flights WHERE dest = 'LA'" in
  let _, before = run_select cat q in
  Table.add_index flights ~positions:[ Schema.index_of (Table.schema flights) "dest" ];
  let _, after = run_select cat q in
  Alcotest.(check int) "same cardinality" (List.length before) (List.length after)

let test_eval_date_arithmetic_in_sql () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  Hashtbl.replace env "ArrivalDay" (date 2011 5 3);
  (match
     Eval.exec_stmt access env
       (Parser.parse_stmt "SET @StayLength = '2011-05-06' - @ArrivalDay")
   with
  | Eval.Affected 0 -> ()
  | _ -> Alcotest.fail "SET failed");
  match Hashtbl.find_opt env "StayLength" with
  | Some (Value.Int 3) -> ()
  | _ -> Alcotest.fail "stay length wrong"

let test_eval_errors () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let expect_fail input =
    try
      ignore (Eval.exec_stmt access env (Parser.parse_stmt input));
      Alcotest.failf "accepted: %s" input
    with Eval.Eval_error _ -> ()
  in
  expect_fail "SELECT nope FROM Flights";
  expect_fail "SELECT fno FROM NoSuchTable";
  expect_fail "SELECT @undefined_var FROM Flights";
  expect_fail "INSERT INTO Flights VALUES (1, 2)";
  expect_fail mickey_query (* entangled queries don't run classically *)

let test_eval_null_semantics () =
  let cat = Catalog.create () in
  let t =
    Catalog.create_table cat "T"
      (Schema.make [ { name = "a"; ty = T_int }; { name = "b"; ty = T_int } ])
  in
  ignore (Table.insert t [| Value.Int 1; Value.Null |]);
  ignore (Table.insert t [| Value.Int 2; Value.Int 5 |]);
  let rows input =
    match run_select cat input with
    | _, rows -> rows
  in
  (* comparisons with NULL are never true, in either direction *)
  Alcotest.(check int) "b = NULL matches nothing" 0
    (List.length (rows "SELECT a FROM T WHERE b = NULL"));
  Alcotest.(check int) "b <> 5 excludes null" 0
    (List.length (rows "SELECT a FROM T WHERE b <> 5 AND a = 1"));
  Alcotest.(check int) "between skips null" 1
    (List.length (rows "SELECT a FROM T WHERE b BETWEEN 0 AND 10"));
  (* aggregates ignore NULLs; COUNT-star does not *)
  (match rows "SELECT COUNT(*), COUNT(b), SUM(b) FROM T" with
  | [ [| Value.Int 2; Value.Int 1; Value.Int 5 |] ] -> ()
  | _ -> Alcotest.fail "null aggregation");
  match rows "SELECT MIN(b) FROM T WHERE a = 1" with
  | [ [| Value.Null |] ] -> ()
  | _ -> Alcotest.fail "min of all-null group is null"

(* --- extended SQL: aggregates, grouping, ordering --- *)

let test_eval_aggregates () =
  let cat = figure1_catalog () in
  let _, rows = run_select cat "SELECT COUNT(*) FROM Flights" in
  (match rows with
  | [ [| Value.Int 4 |] ] -> ()
  | _ -> Alcotest.fail "count(*)");
  let _, rows = run_select cat "SELECT MIN(fno), MAX(fno), SUM(fno) FROM Flights" in
  (match rows with
  | [ [| Value.Int 122; Value.Int 235; Value.Int 604 |] ] -> ()
  | _ -> Alcotest.fail "min/max/sum");
  let _, rows =
    run_select cat "SELECT COUNT(*) FROM Flights WHERE dest = 'Mars'"
  in
  match rows with
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "empty group still yields one row"

let test_eval_group_by () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat
      "SELECT dest, COUNT(*) FROM Flights GROUP BY dest ORDER BY dest"
  in
  match rows with
  | [ [| Value.Str "LA"; Value.Int 3 |]; [| Value.Str "Paris"; Value.Int 1 |] ] -> ()
  | _ -> Alcotest.fail "group by dest"

let test_eval_order_by_desc_limit () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat "SELECT fno FROM Flights ORDER BY fno DESC LIMIT 2"
  in
  match rows with
  | [ [| Value.Int 235 |]; [| Value.Int 124 |] ] -> ()
  | _ -> Alcotest.fail "order by desc with limit"

let test_eval_distinct () =
  let cat = figure1_catalog () in
  let _, rows = run_select cat "SELECT DISTINCT dest FROM Flights" in
  Alcotest.(check int) "two destinations" 2 (List.length rows)

let test_eval_in_list_and_between () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat "SELECT fno FROM Flights WHERE fno IN (123, 235, 999)"
  in
  Alcotest.(check int) "in list" 2 (List.length rows);
  let _, rows =
    run_select cat "SELECT fno FROM Flights WHERE fno BETWEEN 123 AND 235"
  in
  Alcotest.(check int) "between" 3 (List.length rows)

let test_eval_avg () =
  let cat = figure1_catalog () in
  let _, rows = run_select cat "SELECT AVG(fno) FROM Airlines" in
  match rows with
  | [ [| Value.Int 151 |] ] -> () (* (122+123+124+235)/4 = 151 *)
  | _ -> Alcotest.fail "avg"

let test_agg_outside_projection_rejected () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  try
    ignore
      (Eval.exec_stmt access (Eval.fresh_env ())
         (Parser.parse_stmt "DELETE FROM Flights WHERE fno = COUNT(*)"));
    Alcotest.fail "aggregate accepted in WHERE"
  with Eval.Eval_error _ -> ()

let test_order_by_multiple_keys () =
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat "SELECT fdate, fno FROM Flights ORDER BY fdate DESC, fno"
  in
  match List.map (fun r -> Value.to_string r.(1)) rows with
  | [ "235"; "123"; "122"; "124" ] -> ()
  | other -> Alcotest.failf "wrong order: %s" (String.concat "," other)

let test_correlated_subquery () =
  (* the inner query references the outer row's column explicitly *)
  let cat = figure1_catalog () in
  let _, rows =
    run_select cat
      "SELECT A.fno FROM Airlines A WHERE (A.fno) IN (SELECT fno FROM Flights \
       WHERE fno = A.fno AND dest = 'LA')"
  in
  Alcotest.(check int) "three LA airlines" 3 (List.length rows)

let test_bang_equals () =
  match Parser.parse_cond "a != 1" with
  | Ast.Cmp (Ne, _, _) -> ()
  | _ -> Alcotest.fail "!= should parse as <>"

let test_create_index_and_drop () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let exec input = Eval.exec_stmt access env (Parser.parse_stmt input) in
  (match exec "CREATE INDEX ON Flights (dest)" with
  | Eval.Created -> ()
  | _ -> Alcotest.fail "create index");
  (* indexed plan now probes instead of scanning *)
  (match Parser.parse_stmt "SELECT fno FROM Flights WHERE dest = 'LA'" with
  | Ast.Select sel ->
    Alcotest.(check string) "explain probes" "PROBE Flights ON (dest)"
      (Eval.explain access sel)
  | _ -> assert false);
  (try
     ignore (exec "CREATE INDEX ON Flights (nope)");
     Alcotest.fail "bad column accepted"
   with Eval.Eval_error _ -> ());
  (match exec "DROP TABLE Airlines" with
  | Eval.Created -> ()
  | _ -> Alcotest.fail "drop");
  try
    ignore (exec "SELECT fno FROM Airlines");
    Alcotest.fail "dropped table still queryable"
  with Eval.Eval_error _ -> ()

let test_ordered_index_range_queries () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let exec input = Eval.exec_stmt access env (Parser.parse_stmt input) in
  let q = "SELECT fno FROM Flights WHERE fno BETWEEN 123 AND 235 ORDER BY fno" in
  let before =
    match exec q with
    | Eval.Rows rows -> rows
    | _ -> Alcotest.fail "rows"
  in
  (match exec "CREATE ORDERED INDEX ON Flights (fno)" with
  | Eval.Created -> ()
  | _ -> Alcotest.fail "create ordered index");
  (* the plan switches from scan to range... *)
  (match Parser.parse_stmt q with
  | Ast.Select sel ->
    Alcotest.(check string) "explain" "RANGE Flights ON (fno)\nSORT"
      (Eval.explain access sel)
  | _ -> assert false);
  (* ...and the results are unchanged *)
  let after =
    match exec q with
    | Eval.Rows rows -> rows
    | _ -> Alcotest.fail "rows"
  in
  Alcotest.(check bool) "same rows" true (before = after);
  (* inequality probes too *)
  (match exec "SELECT fno FROM Flights WHERE fno > 124" with
  | Eval.Rows [ [| Value.Int 235 |] ] -> ()
  | _ -> Alcotest.fail "gt probe");
  try
    ignore (exec "CREATE ORDERED INDEX ON Flights (fno, fdate)");
    Alcotest.fail "multi-column ordered index accepted"
  with Parser.Parse_error _ -> ()

let test_explain_shapes () =
  let cat = figure1_catalog () in
  let access = Eval.direct_access cat in
  let plan input =
    match Parser.parse_stmt input with
    | Ast.Select sel -> Eval.explain access sel
    | _ -> assert false
  in
  Alcotest.(check string) "plain scan" "SCAN Flights"
    (plan "SELECT fno FROM Flights");
  Alcotest.(check string) "join probe"
    "SCAN Flights AS F\nPROBE Airlines ON (fno) AS A"
    (plan "SELECT F.fno FROM Flights F, Airlines A WHERE F.fno = A.fno");
  Alcotest.(check string) "agg + sort"
    "SCAN Flights\nGROUP\nAGGREGATE\nSORT"
    (plan "SELECT dest, COUNT(*) FROM Flights GROUP BY dest ORDER BY dest")

let test_extended_roundtrips () =
  List.iter
    (fun input ->
      let ast = Parser.parse_stmt input in
      let printed = Pretty.stmt_to_string ast in
      let printed' = Pretty.stmt_to_string (Parser.parse_stmt printed) in
      Alcotest.(check string) ("roundtrip: " ^ input) printed printed')
    [ "SELECT DISTINCT dest FROM Flights ORDER BY dest DESC LIMIT 3";
      "SELECT dest, COUNT(*), AVG(fno) FROM Flights GROUP BY dest";
      "SELECT fno FROM Flights WHERE fno IN (1, 2, 3)";
      "SELECT fno FROM Flights WHERE fno BETWEEN 1 AND 9 ORDER BY fno" ]

(* --- property: parser/printer round-trip on generated statements --- *)

let gen_ident =
  QCheck2.Gen.(
    map
      (fun (c, rest) -> Printf.sprintf "%c%s" c rest)
      (pair (char_range 'a' 'z')
         (string_size ~gen:(char_range 'a' 'z') (int_range 0 6))))

let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun i -> Ast.Lit (Value.Int i)) (int_range 0 99);
            map (fun s -> Ast.Lit (Value.Str s)) gen_ident;
            map (fun v -> Ast.Host v) gen_ident;
            map (fun c -> Ast.Col (None, c)) gen_ident ]
      else
        oneof
          [ self 0;
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ])
              (self (n / 2)) (self (n / 2)) ])

let gen_stmt =
  let open QCheck2.Gen in
  oneof
    [ map2
        (fun t vs -> Ast.Insert { table = t; columns = None; values = vs })
        gen_ident
        (list_size (int_range 1 4) gen_expr);
      map2 (fun v e -> Ast.Set_var (v, e)) gen_ident gen_expr;
      map3
        (fun t col e ->
          Ast.Update { table = t; set = [ (col, e) ]; where = Ast.True })
        gen_ident gen_ident gen_expr;
      map (fun t -> Ast.Delete { table = t; where = Ast.True }) gen_ident ]

let prop_parser_total =
  (* The parser must be total: random input either parses or raises
     Parse_error/Lex_error — never anything else, never diverges. *)
  let fragment_gen =
    QCheck2.Gen.(
      oneofl
        [ "SELECT"; "FROM"; "WHERE"; "IN"; "ANSWER"; "CHOOSE"; "AND"; "OR";
          "BEGIN"; "TRANSACTION"; "COMMIT"; "INSERT"; "INTO"; "VALUES";
          "GROUP"; "BY"; "ORDER"; "LIMIT"; "("; ")"; ","; ";"; "="; "<";
          "@x"; "'str'"; "42"; "tbl"; "col"; "*"; "-"; "BETWEEN"; "COUNT" ])
  in
  QCheck2.Test.make ~name:"parser is total on keyword soup" ~count:500
    QCheck2.Gen.(list_size (int_range 0 25) fragment_gen)
    (fun fragments ->
      let input = String.concat " " fragments in
      match Parser.parse_script input with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trip" ~count:300 gen_stmt
    (fun stmt ->
      let printed = Pretty.stmt_to_string stmt in
      let reparsed = Parser.parse_stmt printed in
      Pretty.stmt_to_string reparsed = printed)

let () =
  Alcotest.run "sql"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "parser",
        [ Alcotest.test_case "mickey entangled" `Quick test_parse_mickey;
          Alcotest.test_case "minnie join" `Quick test_parse_minnie_join;
          Alcotest.test_case "figure 2 transaction" `Quick test_parse_figure2;
          Alcotest.test_case "appendix D nosocial" `Quick test_parse_nosocial;
          Alcotest.test_case "script" `Quick test_parse_script;
          Alcotest.test_case "precedence" `Quick test_parse_operators_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "round-trips" `Quick test_roundtrip_fixed ] );
      ( "eval",
        [ Alcotest.test_case "simple select" `Quick test_eval_simple_select;
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "IN subquery" `Quick test_eval_in_subquery;
          Alcotest.test_case "limit + binding" `Quick test_eval_limit_and_binding;
          Alcotest.test_case "empty binds null" `Quick test_eval_empty_binds_null;
          Alcotest.test_case "write statements" `Quick test_eval_insert_update_delete;
          Alcotest.test_case "host var flow" `Quick test_eval_host_vars_flow;
          Alcotest.test_case "index fast path" `Quick test_eval_index_fast_path_agrees;
          Alcotest.test_case "date arithmetic" `Quick test_eval_date_arithmetic_in_sql;
          Alcotest.test_case "errors" `Quick test_eval_errors ] );
      ( "extended-sql",
        [ Alcotest.test_case "null semantics" `Quick test_eval_null_semantics;
          Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "group by" `Quick test_eval_group_by;
          Alcotest.test_case "order by desc + limit" `Quick test_eval_order_by_desc_limit;
          Alcotest.test_case "distinct" `Quick test_eval_distinct;
          Alcotest.test_case "in list / between" `Quick test_eval_in_list_and_between;
          Alcotest.test_case "avg" `Quick test_eval_avg;
          Alcotest.test_case "aggregate misuse" `Quick test_agg_outside_projection_rejected;
          Alcotest.test_case "order by multiple keys" `Quick test_order_by_multiple_keys;
          Alcotest.test_case "correlated subquery" `Quick test_correlated_subquery;
          Alcotest.test_case "bang equals" `Quick test_bang_equals;
          Alcotest.test_case "create index / drop" `Quick test_create_index_and_drop;
          Alcotest.test_case "ordered index ranges" `Quick test_ordered_index_range_queries;
          Alcotest.test_case "explain" `Quick test_explain_shapes;
          Alcotest.test_case "round-trips" `Quick test_extended_roundtrips ] );
      ( "properties",
        [ Gen.to_alcotest prop_print_parse_roundtrip;
          Gen.to_alcotest prop_parser_total ] ) ]
