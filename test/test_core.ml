(* Integration tests for the entangled transaction manager: the
   run-based scheduler (§4), group commit / widowed-transaction
   prevention (§3.3.3), timeouts, the Figure 4 walkthrough, oracles
   (Defs 3.2-3.4), and crash recovery of middleware state (§5.1). *)

open Ent_storage
open Ent_core

(* the travel fixture and its helpers are shared across suites *)
let date = Gen.date
let travel_manager = Gen.travel_manager
let flight_program = Gen.flight_program
let travel_program = Gen.travel_program
let reserve_rows = Gen.reserve_rows
let outcome_name = Gen.outcome_name
let check_outcome = Gen.check_outcome

(* --- classical transactions through the manager --- *)

let test_classical_transaction () =
  let m = travel_manager () in
  let id =
    Manager.submit_string m
      "BEGIN TRANSACTION;\n\
       INSERT INTO Reserve VALUES ('Solo', 'flight', 122);\n\
       COMMIT;"
  in
  Manager.drain m;
  check_outcome m "committed" "committed" id;
  Alcotest.(check int) "booking written" 1 (List.length (reserve_rows m))

let test_classical_rollback () =
  let m = travel_manager () in
  let id =
    Manager.submit_string m
      "BEGIN TRANSACTION;\n\
       INSERT INTO Reserve VALUES ('Solo', 'flight', 122);\n\
       ROLLBACK;\n\
       COMMIT;"
  in
  Manager.drain m;
  check_outcome m "rolled back" "rolled-back" id;
  Alcotest.(check int) "no booking" 0 (List.length (reserve_rows m))

(* --- entangled coordination --- *)

let test_mickey_minnie_commit () =
  let m = travel_manager () in
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (flight_program "Minnie" "Mickey") in
  Manager.drain m;
  check_outcome m "mickey" "committed" mickey;
  check_outcome m "minnie" "committed" minnie;
  let rows = reserve_rows m in
  Alcotest.(check int) "two bookings" 2 (List.length rows);
  (match rows with
  | [ (_, _, f1); (_, _, f2) ] ->
    Alcotest.(check string) "same flight" f1 f2
  | _ -> Alcotest.fail "row count");
  let s = Manager.stats m in
  Alcotest.(check int) "one entangle event" 1 s.entangle_events

let test_figure2_multi_query () =
  let m = travel_manager () in
  let mickey = Manager.submit_string m (travel_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (travel_program "Minnie" "Mickey") in
  Manager.drain m;
  check_outcome m "mickey" "committed" mickey;
  check_outcome m "minnie" "committed" minnie;
  let rows = reserve_rows m in
  Alcotest.(check int) "four bookings" 4 (List.length rows);
  let flights = List.filter (fun (_, what, _) -> what = "flight") rows in
  let hotels = List.filter (fun (_, what, _) -> what = "hotel") rows in
  (match flights, hotels with
  | [ (_, _, f1); (_, _, f2) ], [ (_, _, h1); (_, _, h2) ] ->
    Alcotest.(check string) "same flight" f1 f2;
    Alcotest.(check string) "same hotel" h1 h2
  | _ -> Alcotest.fail "booking shapes");
  let s = Manager.stats m in
  Alcotest.(check int) "two entangle events" 2 s.entangle_events

let test_donald_waits_and_times_out () =
  let m = travel_manager () in
  let donald =
    Manager.submit_string m
      (flight_program ~timeout:" WITH TIMEOUT 0 SECONDS" "Donald" "Daffy")
  in
  Manager.drain m;
  check_outcome m "donald times out" "timed-out" donald;
  Alcotest.(check int) "no booking" 0 (List.length (reserve_rows m))

let test_donald_stays_dormant_without_timeout () =
  let m = travel_manager () in
  let donald = Manager.submit_string m (flight_program "Donald" "Daffy") in
  Manager.drain m;
  Alcotest.(check string) "pending" "pending" (outcome_name (Manager.outcome m donald));
  Alcotest.(check (list int)) "in dormant pool" [ donald ]
    (Scheduler.dormant (Manager.scheduler m));
  (* Daffy finally arrives: both commit. *)
  let daffy = Manager.submit_string m (flight_program "Daffy" "Donald") in
  Manager.drain m;
  check_outcome m "donald" "committed" donald;
  check_outcome m "daffy" "committed" daffy

let test_figure4_walkthrough () =
  (* Mickey and Minnie coordinate on flight then hotel; Donald waits
     for Daffy. One run: Mickey & Minnie commit, Donald aborts back to
     the pool. *)
  let config =
    { Scheduler.default_config with trigger = Scheduler.Manual }
  in
  let m = travel_manager ~config () in
  let mickey = Manager.submit_string m (travel_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (travel_program "Minnie" "Mickey") in
  let donald = Manager.submit_string m (flight_program "Donald" "Daffy") in
  Manager.run_once m;
  check_outcome m "mickey committed" "committed" mickey;
  check_outcome m "minnie committed" "committed" minnie;
  Alcotest.(check string) "donald pending" "pending"
    (outcome_name (Manager.outcome m donald));
  Alcotest.(check (list int)) "donald back in pool" [ donald ]
    (Scheduler.dormant (Manager.scheduler m));
  let s = Manager.stats m in
  Alcotest.(check int) "runs" 1 s.runs;
  Alcotest.(check bool) "several coordination rounds" true
    (s.coordination_rounds >= 2);
  Alcotest.(check int) "donald repooled once" 1 s.repooled

let test_empty_success_proceeds () =
  (* Structural partners, but no LA flights at all: both queries get an
     empty (successful) answer and the transactions run to commit; the
     booking inserts a NULL item. *)
  let m = Manager.create () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Reserve"
    [ ("name", Schema.T_str); ("what", Schema.T_str); ("item", Schema.T_int) ];
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (flight_program "Minnie" "Mickey") in
  Manager.drain m;
  check_outcome m "mickey" "committed" mickey;
  check_outcome m "minnie" "committed" minnie;
  match Manager.query m "SELECT item FROM Reserve" with
  | [ [| Value.Null |]; [| Value.Null |] ] -> ()
  | _ -> Alcotest.fail "expected two NULL bookings"

(* --- widowed-transaction prevention (Figure 3a) --- *)

let minnie_aborts_program = Gen.minnie_aborts_program

let test_group_commit_prevents_widow () =
  let m = travel_manager () in
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let minnie = Manager.submit_string m ~label:"minnie-aborts" minnie_aborts_program in
  Manager.drain m;
  (* Minnie rolled back after entangling; Mickey must NOT commit on the
     assumption that Minnie travels with him. He aborts and retries --
     forever partnerless, so he stays in the pool. *)
  check_outcome m "minnie rolled back" "rolled-back" minnie;
  Alcotest.(check string) "mickey not committed" "pending"
    (outcome_name (Manager.outcome m mickey));
  Alcotest.(check int) "no bookings at all" 0 (List.length (reserve_rows m))

let test_no_group_commit_admits_widow () =
  (* Same scenario at the relaxed level: Mickey commits a booking based
     on Minnie's aborted promise — the widowed-transaction anomaly. *)
  let config =
    { Scheduler.default_config with isolation = Isolation.no_group_commit }
  in
  let m = travel_manager ~config () in
  let mickey = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let _minnie = Manager.submit_string m ~label:"minnie-aborts" minnie_aborts_program in
  Manager.drain m;
  check_outcome m "mickey widowed but committed" "committed" mickey;
  let rows = reserve_rows m in
  Alcotest.(check int) "mickey's orphan booking exists" 1 (List.length rows)

(* --- oracles --- *)

let test_oracle_valid_execution () =
  let m = travel_manager () in
  let program = Program.of_string (flight_program "Mickey" "Minnie") in
  let oracle =
    Oracle.scripted
      [ Some [ ("FlightRes", [ Value.Str "Mickey"; Value.Int 122; date 2011 5 3 ]) ] ]
  in
  let result = Oracle.run_solo (Manager.engine m) program oracle in
  (match result.outcome with
  | Oracle.Solo_committed -> ()
  | _ -> Alcotest.fail "solo execution failed");
  Alcotest.(check bool) "valid (Def 3.4)" true result.valid;
  Alcotest.(check int) "booking written" 1 (List.length (reserve_rows m))

let test_oracle_invalid_answer_flagged () =
  let m = travel_manager () in
  let program = Program.of_string (flight_program "Mickey" "Minnie") in
  (* flight 999 is not a grounding of Mickey's query on this database *)
  let oracle =
    Oracle.scripted
      [ Some [ ("FlightRes", [ Value.Str "Mickey"; Value.Int 999; date 2011 5 3 ]) ] ]
  in
  let result = Oracle.run_solo (Manager.engine m) program oracle in
  Alcotest.(check bool) "invalid execution detected" false result.valid

let test_oracle_empty_answer () =
  let m = travel_manager () in
  let program = Program.of_string (flight_program "Mickey" "Minnie") in
  let result = Oracle.run_solo (Manager.engine m) program (Oracle.scripted [ None ]) in
  (match result.outcome with
  | Oracle.Solo_committed -> ()
  | _ -> Alcotest.fail "empty answer should still commit");
  Alcotest.(check bool) "empty answers are valid" true result.valid

(* --- crash recovery of middleware state --- *)

let test_recovery_restores_pool_and_data () =
  let config =
    { Scheduler.default_config with snapshot_pool = true }
  in
  let m = travel_manager ~config () in
  let pair_a = Manager.submit_string m (flight_program "Mickey" "Minnie") in
  let pair_b = Manager.submit_string m (flight_program "Minnie" "Mickey") in
  let lonely = Manager.submit_string m (flight_program "Donald" "Daffy") in
  Manager.drain m;
  check_outcome m "a committed" "committed" pair_a;
  check_outcome m "b committed" "committed" pair_b;
  Alcotest.(check int) "lonely still dormant" 1
    (List.length (Scheduler.dormant (Manager.scheduler m)));
  (* crash! *)
  let m' = Manager.crash_and_recover m in
  ignore lonely;
  Alcotest.(check int) "bookings survive" 2
    (List.length
       (Manager.query m' "SELECT name FROM Reserve WHERE what = 'flight'"));
  (* Donald's transaction was re-submitted from the pool snapshot; when
     Daffy arrives in the recovered system, they coordinate. *)
  let daffy = Manager.submit_string m' (flight_program "Daffy" "Donald") in
  Manager.drain m';
  check_outcome m' "daffy commits in recovered system" "committed" daffy;
  Alcotest.(check int) "donald's booking exists now" 4
    (List.length (Manager.query m' "SELECT name FROM Reserve"))

(* --- integrity constraints (consistency, Assumption 3.1/3.5) --- *)

(* seats bookkeeping: Stock(item, left) must never go negative *)
let stock_manager = Gen.stock_manager

let take_seat_program =
  "BEGIN TRANSACTION;\n\
   UPDATE Stock SET left = left - 1 WHERE item = 'seat';\n\
   COMMIT;"

let test_constraint_blocks_overbooking () =
  let m = stock_manager () in
  let first = Manager.submit_string m take_seat_program in
  let second = Manager.submit_string m take_seat_program in
  Manager.drain m;
  check_outcome m "first gets the seat" "committed" first;
  (match Manager.outcome m second with
  | Some (Scheduler.Errored msg) ->
    Alcotest.(check bool) "names the constraint" true
      (String.length msg > 0
      && String.sub msg 0 10 = "constraint")
  | other -> Alcotest.failf "second should violate (got %s)" (outcome_name other));
  match Manager.query m "SELECT left FROM Stock" with
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "stock must end at exactly zero"

let test_constraint_aborts_whole_group () =
  (* an entangled pair whose combined bookings overbook: group commit
     must refuse both, leaving the database consistent *)
  let m = stock_manager () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.load_row m "Flights" [ Int 122; date 2011 5 3; Str "LA" ];
  let grab me partner =
    Printf.sprintf
      "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
       SELECT '%s', fno AS @fno INTO ANSWER FlightRes\n\
       WHERE (fno) IN (SELECT fno FROM Flights WHERE dest='LA')\n\
       AND ('%s', fno) IN ANSWER FlightRes CHOOSE 1;\n\
       UPDATE Stock SET left = left - 1 WHERE item = 'seat';\n\
       COMMIT;"
      me partner
  in
  let mickey = Manager.submit_string m (grab "Mickey" "Minnie") in
  let minnie = Manager.submit_string m (grab "Minnie" "Mickey") in
  Manager.drain m;
  (* one seat, two coordinated takers: the group violates and both fail *)
  (match Manager.outcome m mickey, Manager.outcome m minnie with
  | Some (Scheduler.Errored _), Some (Scheduler.Errored _) -> ()
  | a, b ->
    Alcotest.failf "expected both errored, got %s / %s" (outcome_name a)
      (outcome_name b));
  match Manager.query m "SELECT left FROM Stock" with
  | [ [| Value.Int 1 |] ] -> ()
  | _ -> Alcotest.fail "the seat must still be there"

let test_invalid_oracle_breaks_consistency () =
  (* Definition 3.3 made operational: a VALID oracle answer preserves
     consistency (Assumption 3.5); an INVALID one books a flight that
     doesn't exist and trips the integrity constraint. *)
  let fresh () =
    let m = travel_manager () in
    Manager.add_constraint m "bookings-reference-flights" (fun catalog ->
        match Catalog.find catalog "Reserve", Catalog.find catalog "Flights" with
        | Some reserve, Some flights ->
          Table.fold
            (fun _ row ok ->
              ok
              && (Tuple.get row 1 <> Value.Str "flight"
                 || Table.lookup flights ~positions:[ 0 ] [ Tuple.get row 2 ] <> []))
            reserve true
        | _ -> true);
    m
  in
  let program = Program.of_string (flight_program "Mickey" "Minnie") in
  (* valid answer: flight 122 exists *)
  let m = fresh () in
  let valid_oracle =
    Oracle.scripted [ Some [ ("FlightRes", [ Value.Str "Mickey"; Value.Int 122; date 2011 5 3 ]) ] ]
  in
  (match Oracle.run_solo (Manager.engine m) program valid_oracle with
  | { outcome = Oracle.Solo_committed; valid = true; _ } -> ()
  | _ -> Alcotest.fail "valid oracle execution should commit");
  (* invalid answer: flight 999 does not exist -> inconsistent booking *)
  let m' = fresh () in
  let invalid_oracle =
    Oracle.scripted [ Some [ ("FlightRes", [ Value.Str "Mickey"; Value.Int 999; date 2011 5 3 ]) ] ]
  in
  match Oracle.run_solo (Manager.engine m') program invalid_oracle with
  | { outcome = Oracle.Solo_error _; valid = false; _ } -> ()
  | { valid; _ } ->
    Alcotest.failf "invalid oracle should break consistency (valid=%b)" valid

(* --- time-interval run trigger (§4: frequency as a time interval) --- *)

let test_interval_trigger () =
  let config =
    { Scheduler.default_config with trigger = Scheduler.Every_seconds 1.0 }
  in
  let m = travel_manager ~config () in
  let first =
    Manager.submit_string m
      "BEGIN TRANSACTION;\nINSERT INTO Reserve VALUES ('a', 'flight', 1);\nCOMMIT;"
  in
  (* no time has passed since the (virtual) last run: stays pooled *)
  Alcotest.(check string) "first waits" "pending"
    (outcome_name (Manager.outcome m first));
  Manager.advance_time m 2.0;
  let second =
    Manager.submit_string m
      "BEGIN TRANSACTION;\nINSERT INTO Reserve VALUES ('b', 'flight', 2);\nCOMMIT;"
  in
  (* the second arrival finds the interval expired and triggers a run
     covering both *)
  check_outcome m "first ran" "committed" first;
  check_outcome m "second ran" "committed" second

(* --- program round-trip --- *)

let test_program_serialization () =
  let p = Program.of_string ~label:"mickey" (travel_program "Mickey" "Minnie") in
  let p' = Program.of_serialized (Program.to_string p) in
  Alcotest.(check string) "label survives" "mickey" p'.label;
  Alcotest.(check int) "entangled count" 2 (Program.entangled_count p');
  Alcotest.(check string) "stable serialization"
    (Program.to_string p) (Program.to_string p')

(* --- properties --- *)

let prop_pairs_always_coordinate =
  (* any number of complete pairs submitted in any interleaving all
     commit, and every pair books one common flight *)
  let gen = QCheck2.Gen.(pair (int_range 1 6) (int_range 1 4)) in
  QCheck2.Test.make ~name:"complete pairs all commit" ~count:25 gen
    (fun (n_pairs, f) ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Every_arrivals (2 * f) }
      in
      let m = travel_manager ~config () in
      let ids =
        List.concat
          (List.init n_pairs (fun i ->
               let a = Printf.sprintf "u%da" i and b = Printf.sprintf "u%db" i in
               [ Manager.submit_string m (flight_program a b);
                 Manager.submit_string m (flight_program b a) ]))
      in
      Manager.drain m;
      List.for_all (fun id -> Manager.outcome m id = Some Scheduler.Committed) ids
      && List.length (reserve_rows m) = 2 * n_pairs)

let test_manual_trigger_and_misuse () =
  let config = { Scheduler.default_config with trigger = Scheduler.Manual } in
  let m = travel_manager ~config () in
  (* run_once on an empty pool is a no-op *)
  Manager.run_once m;
  Alcotest.(check int) "no runs on empty pool" 0 (Manager.stats m).runs;
  let id =
    Manager.submit_string m
      "BEGIN TRANSACTION;\nINSERT INTO Reserve VALUES ('m', 'flight', 1);\nCOMMIT;"
  in
  (* manual trigger: nothing ran at submission *)
  Alcotest.(check string) "pending until run_once" "pending"
    (outcome_name (Manager.outcome m id));
  Manager.run_once m;
  check_outcome m "committed after run_once" "committed" id;
  (try
     ignore (Manager.query m "INSERT INTO Reserve VALUES ('x', 'y', 1)");
     Alcotest.fail "query accepted a non-SELECT"
   with Invalid_argument _ -> ())

let prop_scheduler_conserves_tasks =
  (* Random mixes of paired, lonely, rolling-back and classical
     transactions: after drain, every task is accounted for (final
     outcome or dormant), the engine is quiescent, and all locks are
     released. *)
  let gen =
    QCheck2.Gen.(
      triple (int_range 0 5) (int_range 0 3)
        (pair (int_range 0 3) (int_range 1 8)))
  in
  QCheck2.Test.make ~name:"drain accounts for every task" ~count:40 gen
    (fun (pairs, lonely, (rollbacks, f)) ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Every_arrivals f }
      in
      let m = travel_manager ~config () in
      let ids = ref [] in
      let submit p = ids := Manager.submit m p :: !ids in
      for k = 0 to pairs - 1 do
        let a = Printf.sprintf "p%da" k and b = Printf.sprintf "p%db" k in
        submit (Program.of_string (flight_program a b));
        submit (Program.of_string (flight_program b a))
      done;
      for k = 0 to lonely - 1 do
        submit
          (Program.of_string
             (flight_program (Printf.sprintf "lone%d" k) "nobody"))
      done;
      for _ = 0 to rollbacks - 1 do
        submit
          (Program.of_string
             "BEGIN TRANSACTION;\n\
              INSERT INTO Reserve VALUES ('r', 'flight', 1);\n\
              ROLLBACK;\nCOMMIT;")
      done;
      Manager.drain m;
      let dormant = Scheduler.dormant (Manager.scheduler m) in
      let accounted id =
        Manager.outcome m id <> None || List.mem id dormant
      in
      let no_active_txns =
        (* every lock owner must be gone: probe a few resources *)
        List.for_all
          (fun table ->
            Ent_txn.Lock.holders
              (Ent_txn.Engine.locks (Manager.engine m))
              (Ent_txn.Lock.Table table)
            = [])
          [ "Flights"; "Hotels"; "Reserve" ]
      in
      List.for_all accounted !ids
      && no_active_txns
      && List.length dormant = lonely)

let prop_paired_outcomes_deterministic =
  (* same submission sequence twice => identical outcomes and identical
     simulated time (the determinism assumption of §C.1) *)
  QCheck2.Test.make ~name:"executions are deterministic" ~count:20
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 6))
    (fun (pairs, f) ->
      let run () =
        let config =
          { Scheduler.default_config with trigger = Scheduler.Every_arrivals f }
        in
        let m = travel_manager ~config () in
        let ids = ref [] in
        for k = 0 to pairs - 1 do
          let a = Printf.sprintf "p%da" k and b = Printf.sprintf "p%db" k in
          ids := Manager.submit m (Program.of_string (flight_program a b)) :: !ids;
          ids := Manager.submit m (Program.of_string (flight_program b a)) :: !ids
        done;
        Manager.drain m;
        ( List.map (fun id -> outcome_name (Manager.outcome m id)) !ids,
          Manager.now m,
          reserve_rows m )
      in
      run () = run ())

let () =
  Alcotest.run "core"
    [ ( "classical",
        [ Alcotest.test_case "commit" `Quick test_classical_transaction;
          Alcotest.test_case "rollback" `Quick test_classical_rollback ] );
      ( "entangled",
        [ Alcotest.test_case "mickey-minnie commit" `Quick test_mickey_minnie_commit;
          Alcotest.test_case "figure 2 multi-query" `Quick test_figure2_multi_query;
          Alcotest.test_case "timeout" `Quick test_donald_waits_and_times_out;
          Alcotest.test_case "late partner" `Quick test_donald_stays_dormant_without_timeout;
          Alcotest.test_case "figure 4 walkthrough" `Quick test_figure4_walkthrough;
          Alcotest.test_case "empty success" `Quick test_empty_success_proceeds ] );
      ( "isolation",
        [ Alcotest.test_case "group commit prevents widow" `Quick test_group_commit_prevents_widow;
          Alcotest.test_case "relaxed level admits widow" `Quick test_no_group_commit_admits_widow ] );
      ( "oracle",
        [ Alcotest.test_case "valid execution" `Quick test_oracle_valid_execution;
          Alcotest.test_case "invalid answer flagged" `Quick test_oracle_invalid_answer_flagged;
          Alcotest.test_case "empty answer" `Quick test_oracle_empty_answer ] );
      ( "recovery",
        [ Alcotest.test_case "pool and data restored" `Quick test_recovery_restores_pool_and_data ] );
      ( "constraints",
        [ Alcotest.test_case "overbooking blocked" `Quick test_constraint_blocks_overbooking;
          Alcotest.test_case "group aborted together" `Quick test_constraint_aborts_whole_group;
          Alcotest.test_case "invalid oracle breaks consistency" `Quick
            test_invalid_oracle_breaks_consistency ] );
      ( "scheduling",
        [ Alcotest.test_case "interval trigger" `Quick test_interval_trigger;
          Alcotest.test_case "manual trigger + misuse" `Quick test_manual_trigger_and_misuse ] );
      ( "program",
        [ Alcotest.test_case "serialization" `Quick test_program_serialization ] );
      ( "properties",
        List.map Gen.to_alcotest
          [ prop_pairs_always_coordinate;
            prop_scheduler_conserves_tasks;
            prop_paired_outcomes_deterministic ] ) ]
