(* Tests for the entangled query engine: IR translation, grounding
   (Figure 7), coordination (Figure 1), the Appendix B failure
   classification, and complex coordination structures. *)

open Ent_storage
open Ent_sql
open Ent_entangle

let may3 = Gen.may3

(* The Figure 1 database and the mickey/minnie fixtures are shared
   across suites (test/gen.ml). *)
let figure1_catalog = Gen.figure1_catalog
let parse_entangled = Gen.parse_entangled
let translate = Gen.translate
let mickey_src = Gen.mickey_src
let minnie_src = Gen.minnie_src
let ground = Gen.ground

(* --- translation --- *)

let test_translate_mickey () =
  let q = translate mickey_src in
  Alcotest.(check int) "one head atom" 1 (List.length q.head);
  Alcotest.(check int) "one postcondition" 1 (List.length q.post);
  let head = List.hd q.head in
  Alcotest.(check string) "head relation" "R" head.rel;
  (match head.args with
  | [ Ir.Const (Value.Str "Mickey"); Ir.Var "fno"; Ir.Var "fdate" ] -> ()
  | _ -> Alcotest.fail "head args wrong");
  Alcotest.(check (list string)) "answer vars" [ "fdate"; "fno" ] (Ir.answer_vars q)

let test_translate_host_resolution () =
  let env = Eval.fresh_env () in
  Hashtbl.replace env "ArrivalDay" may3;
  let q =
    Translate.of_ast ~env
      (parse_entangled
         "SELECT 'Mickey', hid, @ArrivalDay INTO ANSWER H WHERE (hid) IN \
          (SELECT hid FROM Hotels WHERE location='LA') AND ('Minnie', hid, \
          @ArrivalDay) IN ANSWER H CHOOSE 1")
  in
  match (List.hd q.head).args with
  | [ _; Ir.Var "hid"; Ir.Const d ] ->
    Alcotest.(check string) "resolved date" "2011-05-03" (Value.to_string d)
  | _ -> Alcotest.fail "host var not resolved into constant"

let test_translate_binds () =
  let q =
    translate
      "SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER R WHERE (fno, \
       fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA') AND \
       ('Minnie', fno, fdate) IN ANSWER R CHOOSE 1"
  in
  Alcotest.(check (list (pair string int))) "binding positions"
    [ ("ArrivalDay", 2) ] q.binds

let test_translate_unsafe_unbound_var () =
  try
    ignore
      (translate
         "SELECT 'Mickey', fno INTO ANSWER R WHERE ('Minnie', fno) IN ANSWER \
          R CHOOSE 1");
    Alcotest.fail "range restriction violation accepted"
  with Ir.Unsafe _ -> ()

let test_translate_rejects_in_answer_under_or () =
  try
    ignore
      (translate
         "SELECT 'M', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
          Flights) AND (('X', fno) IN ANSWER R OR fno = 1) CHOOSE 1");
    Alcotest.fail "IN ANSWER under OR accepted"
  with Translate.Translate_error _ -> ()

let test_translate_unbound_host () =
  try
    ignore
      (translate
         "SELECT 'M', @nope, fno INTO ANSWER R WHERE (fno) IN (SELECT fno \
          FROM Flights) AND ('X', fno) IN ANSWER R CHOOSE 1");
    Alcotest.fail "unbound host accepted"
  with Translate.Translate_error _ -> ()

(* --- grounding (Figure 7) --- *)

let test_ground_mickey () =
  let cat = figure1_catalog () in
  let gs = ground cat (translate mickey_src) in
  (* Figure 7(b): groundings 1-3 for Mickey (flights 122, 123, 124). *)
  Alcotest.(check int) "three groundings" 3 (List.length gs);
  let heads = List.map (fun (g : Ground.grounding) -> List.hd g.g_head) gs in
  let fno_of (_, values) = List.nth values 1 in
  Alcotest.(check (list string)) "flights in scan order"
    [ "122"; "123"; "124" ]
    (List.map (fun h -> Value.to_string (fno_of h)) heads)

let test_ground_minnie_join () =
  let cat = figure1_catalog () in
  let gs = ground cat (translate minnie_src) in
  (* Figure 7(b): groundings 4-5 for Minnie (United flights 122, 123). *)
  Alcotest.(check int) "two groundings" 2 (List.length gs)

let test_ground_filter_condition () =
  let cat = figure1_catalog () in
  let gs =
    ground cat
      (translate
         ("SELECT 'M', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
           Flights WHERE dest='LA') AND fno > 122 AND ('X', fno) IN ANSWER R \
           CHOOSE 1"))
  in
  Alcotest.(check int) "filtered" 2 (List.length gs)

let test_ground_dedup () =
  let cat = figure1_catalog () in
  (* projecting only fdate: May 3 appears twice in LA flights *)
  let gs =
    ground cat
      (translate
         "SELECT 'M', fdate INTO ANSWER R WHERE (fno, fdate) IN (SELECT fno, \
          fdate FROM Flights WHERE dest='LA') AND ('X', fdate) IN ANSWER R \
          CHOOSE 1")
  in
  Alcotest.(check int) "deduplicated" 2 (List.length gs)

let test_ground_empty () =
  let cat = figure1_catalog () in
  let gs =
    ground cat
      (translate
         "SELECT 'M', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
          Flights WHERE dest='Nowhere') AND ('X', fno) IN ANSWER R CHOOSE 1")
  in
  Alcotest.(check int) "no groundings" 0 (List.length gs)

let test_ground_limit () =
  let cat = figure1_catalog () in
  try
    ignore (Ground.compute ~limit:2 ~access:(Eval.direct_access cat)
              ~env:(Eval.fresh_env ()) (translate mickey_src));
    Alcotest.fail "limit not enforced"
  with Ground.Ground_error _ -> ()

(* --- coordination (Figure 1) --- *)

let evaluate_pair cat =
  let mickey = translate mickey_src in
  let minnie = translate minnie_src in
  Coordinate.evaluate
    [ (1, mickey, ground cat mickey); (2, minnie, ground cat minnie) ]

let test_coordinate_mickey_minnie () =
  let cat = figure1_catalog () in
  match evaluate_pair cat with
  | [ (1, Coordinate.Answered g1); (2, Coordinate.Answered g2) ] ->
    (* both must agree on the flight: 122 or 123 (United to LA) *)
    let fno g =
      match (g : Ground.grounding).g_head with
      | [ (_, [ _; fno; _ ]) ] -> Value.to_string fno
      | _ -> Alcotest.fail "unexpected head shape"
    in
    Alcotest.(check string) "same flight" (fno g1) (fno g2);
    Alcotest.(check bool) "united flight" true (List.mem (fno g1) [ "122"; "123" ]);
    (* mutual satisfaction: posts covered by the union of heads *)
    let heads = g1.g_head @ g2.g_head in
    List.iter
      (fun p ->
        Alcotest.(check bool) "post covered" true
          (List.exists (fun h -> h = p) heads))
      (g1.g_post @ g2.g_post)
  | _ -> Alcotest.fail "both queries should be answered"

let test_coordinate_alone_no_partner () =
  let cat = figure1_catalog () in
  let mickey = translate mickey_src in
  match Coordinate.evaluate [ (1, mickey, ground cat mickey) ] with
  | [ (1, Coordinate.No_partner) ] -> ()
  | _ -> Alcotest.fail "lone query should have no partner"

let test_coordinate_empty_success () =
  (* Partner present structurally, but the data admits no coordinated
     choice (Minnie insists on United, only USAir flies on Mickey's
     dates): both participated, neither answered -> Empty. *)
  let cat = Catalog.create () in
  let flights =
    Catalog.create_table cat "Flights"
      (Schema.make
         [ { name = "fno"; ty = T_int };
           { name = "fdate"; ty = T_date };
           { name = "dest"; ty = T_str } ])
  in
  ignore
    (Catalog.create_table cat "Airlines"
       (Schema.make
          [ { name = "fno"; ty = T_int }; { name = "airline"; ty = T_str } ]));
  ignore (Table.insert flights [| Value.Int 124; may3; Value.Str "LA" |]);
  ignore
    (Table.insert (Catalog.find_exn cat "Airlines")
       [| Value.Int 124; Value.Str "USAir" |]);
  match evaluate_pair cat with
  | [ (1, Coordinate.Empty); (2, Coordinate.Empty) ] -> ()
  | [ (1, o1); (2, o2) ] ->
    let name = function
      | Coordinate.Answered _ -> "answered"
      | Coordinate.Empty -> "empty"
      | Coordinate.No_partner -> "no-partner"
    in
    Alcotest.failf "expected empty/empty, got %s/%s" (name o1) (name o2)
  | _ -> Alcotest.fail "wrong arity"

let test_structural_blocking_donald () =
  (* Donald coordinates with Daffy, who is absent: structurally blocked
     even though Mickey and Minnie are around. *)
  let donald =
    translate
      "SELECT 'Donald', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
       Flights WHERE dest='LA') AND ('Daffy', fno) IN ANSWER R CHOOSE 1"
  in
  let mickey = translate mickey_src in
  let minnie = translate minnie_src in
  Alcotest.(check (list int)) "donald blocked" [ 3 ]
    (Coordinate.structurally_blocked [ (1, mickey); (2, minnie); (3, donald) ])

let test_structural_blocking_cascades () =
  (* a needs b's head; b needs c's head; c is absent: both a and b are
     blocked once c's absence eliminates b. *)
  let q sel = translate sel in
  let a =
    q
      "SELECT 'a', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM Flights) \
       AND ('b', fno) IN ANSWER R CHOOSE 1"
  in
  let b =
    q
      "SELECT 'b', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM Flights) \
       AND ('c', fno) IN ANSWER R CHOOSE 1"
  in
  Alcotest.(check (list int)) "cascade" [ 1; 2 ]
    (List.sort Int.compare (Coordinate.structurally_blocked [ (1, a); (2, b) ]))

(* --- complex structures (used by Figure 6c) --- *)

let flights_only_catalog = Gen.flights_only_catalog
let pair_query = Gen.pair_query

let test_coordinate_cycle () =
  (* a -> b -> c -> a: cyclic entanglement must resolve to a common
     flight for all three. *)
  let cat = flights_only_catalog 3 in
  let qa = translate (pair_query "a" "b") in
  let qb = translate (pair_query "b" "c") in
  let qc = translate (pair_query "c" "a") in
  match
    Coordinate.evaluate
      [ (1, qa, ground cat qa); (2, qb, ground cat qb); (3, qc, ground cat qc) ]
  with
  | [ (1, Answered g1); (2, Answered g2); (3, Answered g3) ] ->
    let fno (g : Ground.grounding) =
      match g.g_head with
      | [ (_, [ _; fno ]) ] -> Value.to_string fno
      | _ -> Alcotest.fail "head shape"
    in
    Alcotest.(check string) "a=b" (fno g1) (fno g2);
    Alcotest.(check string) "b=c" (fno g2) (fno g3)
  | _ -> Alcotest.fail "cycle should coordinate"

let test_coordinate_spoke_hub () =
  (* Hub h entangles with spokes s1 and s2 via separate relations, each
     requiring a different flight choice; the IR multi-head hub query
     contributes to both relations. *)
  let cat = flights_only_catalog 2 in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  ignore access;
  ignore env;
  let hub : Ir.t =
    {
      head =
        [ { rel = "R1"; args = [ Const (Value.Str "h"); Var "x" ] };
          { rel = "R2"; args = [ Const (Value.Str "h"); Var "y" ] } ];
      post =
        [ { rel = "R1"; args = [ Const (Value.Str "s1"); Var "x" ] };
          { rel = "R2"; args = [ Const (Value.Str "s2"); Var "y" ] } ];
      body =
        Parser.parse_cond
          "(x) IN (SELECT fno FROM Flights) AND (y) IN (SELECT fno FROM \
           Flights)";
      binds = [];
      choose = 1;
    }
  in
  let spoke name rel =
    translate
      (Printf.sprintf
         "SELECT '%s', fno INTO ANSWER %s WHERE (fno) IN (SELECT fno FROM \
          Flights) AND ('h', fno) IN ANSWER %s CHOOSE 1"
         name rel rel)
  in
  let s1 = spoke "s1" "R1" in
  let s2 = spoke "s2" "R2" in
  let groundings q = ground cat q in
  match
    Coordinate.evaluate
      [ (1, hub, groundings hub); (2, s1, groundings s1); (3, s2, groundings s2) ]
  with
  | [ (1, Answered _); (2, Answered _); (3, Answered _) ] -> ()
  | _ -> Alcotest.fail "spoke-hub should coordinate"

let test_coordinate_partial_answering () =
  (* Mickey+Minnie coordinate; Donald+Daffy also coordinate; a fifth
     lone query stays unanswered. All evaluated together. *)
  let cat = flights_only_catalog 2 in
  let qs =
    [ (1, translate (pair_query "mickey" "minnie"));
      (2, translate (pair_query "minnie" "mickey"));
      (3, translate (pair_query "donald" "daffy"));
      (4, translate (pair_query "daffy" "donald"));
      (5, translate (pair_query "goofy" "pluto")) ]
  in
  let results =
    Coordinate.evaluate (List.map (fun (i, q) -> (i, q, ground cat q)) qs)
  in
  let outcome i = List.assoc i results in
  (match outcome 1, outcome 2, outcome 3, outcome 4 with
  | Answered _, Answered _, Answered _, Answered _ -> ()
  | _ -> Alcotest.fail "two pairs should both be answered");
  match outcome 5 with
  | No_partner -> ()
  | _ -> Alcotest.fail "goofy should be blocked"

let test_coordinate_asymmetric_choice () =
  (* Mickey accepts any LA flight; Minnie only flight 2 (by filter).
     Coordination must pick flight 2 for both. *)
  let cat = flights_only_catalog 3 in
  let mickey = translate (pair_query "m" "n") in
  let minnie =
    translate
      "SELECT 'n', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM Flights \
       WHERE dest='LA') AND fno = 2 AND ('m', fno) IN ANSWER R CHOOSE 1"
  in
  match
    Coordinate.evaluate
      [ (1, mickey, ground cat mickey); (2, minnie, ground cat minnie) ]
  with
  | [ (1, Answered g1); (2, Answered _) ] ->
    (match g1.g_head with
    | [ (_, [ _; fno ]) ] ->
      Alcotest.(check string) "flight 2 chosen" "2" (Value.to_string fno)
    | _ -> Alcotest.fail "head shape")
  | _ -> Alcotest.fail "should coordinate on flight 2"

(* --- combined-query evaluation (the algorithm of [6]) --- *)

let test_combined_compile_pair () =
  let mickey = translate mickey_src in
  let minnie = translate minnie_src in
  match Combined.compile [ (1, mickey); (2, minnie) ] with
  | [ c ] ->
    Alcotest.(check (list int)) "one component of two" [ 1; 2 ] c.member_ids;
    (* each query's single post matched against the partner's head *)
    Alcotest.(check int) "two constraints" 2 (List.length c.constraints);
    Alcotest.(check bool) "cross constraints" true
      (List.mem ((1, 0), (2, 0)) c.constraints
      && List.mem ((2, 0), (1, 0)) c.constraints)
  | cs -> Alcotest.failf "expected one combined query, got %d" (List.length cs)

let test_combined_mickey_minnie () =
  let cat = figure1_catalog () in
  let mickey = translate mickey_src in
  let minnie = translate minnie_src in
  match
    Combined.evaluate
      [ (1, mickey, ground cat mickey); (2, minnie, ground cat minnie) ]
  with
  | [ (1, Combined.Answered g1); (2, Combined.Answered g2) ] ->
    let heads = g1.g_head @ g2.g_head in
    List.iter
      (fun p ->
        Alcotest.(check bool) "post covered" true (List.exists (fun h -> h = p) heads))
      (g1.g_post @ g2.g_post)
  | _ -> Alcotest.fail "combined evaluation should answer both"

let test_combined_no_partner_and_empty () =
  let cat = figure1_catalog () in
  let mickey = translate mickey_src in
  let donald =
    translate
      "SELECT 'Donald', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
       Flights WHERE dest='LA') AND ('Daffy', fno) IN ANSWER R CHOOSE 1"
  in
  (match Combined.evaluate [ (3, donald, ground cat donald) ] with
  | [ (3, Combined.No_partner) ] -> ()
  | _ -> Alcotest.fail "lone query: no partner");
  (* structurally fine but one side has zero groundings: Empty *)
  let minnie = translate minnie_src in
  match
    Combined.evaluate [ (1, mickey, ground cat mickey); (2, minnie, []) ]
  with
  | [ (1, Combined.Empty); (2, Combined.Empty) ] -> ()
  | _ -> Alcotest.fail "no coordinated choice: empty success"

let test_combined_cycle () =
  let cat = flights_only_catalog 3 in
  let qa = translate (pair_query "a" "b") in
  let qb = translate (pair_query "b" "c") in
  let qc = translate (pair_query "c" "a") in
  match
    Combined.evaluate
      [ (1, qa, ground cat qa); (2, qb, ground cat qb); (3, qc, ground cat qc) ]
  with
  | [ (1, Answered g1); (2, Answered g2); (3, Answered g3) ] ->
    let fno (g : Ground.grounding) =
      match g.g_head with
      | [ (_, [ _; fno ]) ] -> Value.to_string fno
      | _ -> Alcotest.fail "head shape"
    in
    Alcotest.(check string) "a=b" (fno g1) (fno g2);
    Alcotest.(check string) "b=c" (fno g2) (fno g3)
  | _ -> Alcotest.fail "combined cycle should coordinate"

let test_combined_spoke_hub_multihead () =
  (* the hub's multi-head IR query compiles into one component with the
     spokes; the join answers everyone *)
  let cat = flights_only_catalog 2 in
  let hub : Ir.t =
    {
      head =
        [ { rel = "R1"; args = [ Const (Value.Str "h"); Var "x" ] };
          { rel = "R2"; args = [ Const (Value.Str "h"); Var "y" ] } ];
      post =
        [ { rel = "R1"; args = [ Const (Value.Str "s1"); Var "x" ] };
          { rel = "R2"; args = [ Const (Value.Str "s2"); Var "y" ] } ];
      body =
        Parser.parse_cond
          "(x) IN (SELECT fno FROM Flights) AND (y) IN (SELECT fno FROM Flights)";
      binds = [];
      choose = 1;
    }
  in
  let spoke name rel =
    translate
      (Printf.sprintf
         "SELECT '%s', fno INTO ANSWER %s WHERE (fno) IN (SELECT fno FROM \
          Flights) AND ('h', fno) IN ANSWER %s CHOOSE 1"
         name rel rel)
  in
  let s1 = spoke "s1" "R1" and s2 = spoke "s2" "R2" in
  (match Combined.compile [ (1, hub); (2, s1); (3, s2) ] with
  | [ c ] -> Alcotest.(check (list int)) "one component" [ 1; 2; 3 ] c.member_ids
  | cs -> Alcotest.failf "expected 1 combined, got %d" (List.length cs));
  match
    Combined.evaluate
      [ (1, hub, ground cat hub); (2, s1, ground cat s1); (3, s2, ground cat s2) ]
  with
  | [ (1, Answered _); (2, Answered _); (3, Answered _) ] -> ()
  | _ -> Alcotest.fail "combined spoke-hub should answer all"

let test_combined_matching_bound () =
  (* ten queries all posting the same pattern would yield 10^10
     matchings; the bound must keep compilation finite *)
  let cat = flights_only_catalog 1 in
  let qs =
    List.init 10 (fun i ->
        (i, translate (pair_query (Printf.sprintf "u%d" i) "u0")))
  in
  let combineds = Combined.compile ~max_matchings:8 qs in
  Alcotest.(check bool) "bounded" true (List.length combineds <= 8);
  ignore cat

let prop_combined_agrees_with_search =
  (* Both strategies implement the same declarative semantics: on
     random pairing workloads they must answer exactly the same set of
     queries (the chosen values may differ — both are legal
     nondeterministic choices). *)
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 1 10) (int_range 0 7)))
  in
  QCheck2.Test.make ~name:"combined and search answer the same queries"
    ~count:100 gen
    (fun (n_flights, partner_prefs) ->
      let cat = flights_only_catalog n_flights in
      let queries =
        List.mapi
          (fun i pref ->
            let me = Printf.sprintf "u%d" i in
            let partner =
              Printf.sprintf "u%d" (pref mod List.length partner_prefs)
            in
            let q = translate (pair_query me partner) in
            (i, q, ground cat q))
          partner_prefs
      in
      let classify results =
        List.map
          (fun (qid, o) ->
            ( qid,
              match o with
              | Coordinate.Answered _ -> `A
              | Coordinate.Empty -> `E
              | Coordinate.No_partner -> `N ))
          results
      in
      classify (Coordinate.evaluate queries)
      = classify (Combined.evaluate queries))

(* --- grounding cache --- *)

let table_of cat name =
  match Catalog.find cat name with
  | Some t -> t
  | None -> Alcotest.failf "no table %s" name

let test_gcache_hit_and_invalidate () =
  let cat = figure1_catalog () in
  let cache = Gcache.create cat in
  let q = translate mickey_src in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let touched = ref [] in
  let compute () =
    Gcache.compute cache ~access ~touch:(fun ts -> touched := ts) ~env q
  in
  let g1, c1 = compute () in
  Alcotest.(check bool) "first is a miss" false c1;
  let g2, c2 = compute () in
  Alcotest.(check bool) "second is a hit" true c2;
  Alcotest.(check bool) "hit equals miss" true (g1 = g2);
  Alcotest.(check bool) "touch saw the footprint" true
    (List.mem "Flights" !touched);
  (* a write inside the footprint invalidates *)
  ignore
    (Table.insert (table_of cat "Flights")
       [| Value.Int 500; may3; Value.Str "LA" |]);
  let g3, c3 = compute () in
  Alcotest.(check bool) "recomputed after the write" false c3;
  Alcotest.(check bool) "fresh result" true
    (g3 = Ground.compute ~access ~env q);
  Alcotest.(check (triple int int int)) "stats" (1, 2, 1) (Gcache.stats cache)

let test_gcache_unrelated_write_keeps_entry () =
  let cat = figure1_catalog () in
  let cache = Gcache.create cat in
  let q = translate mickey_src in
  (* mickey reads Flights only *)
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let compute () = Gcache.compute cache ~access ~touch:(fun _ -> ()) ~env q in
  ignore (compute ());
  ignore
    (Table.insert (table_of cat "Airlines")
       [| Value.Int 500; Value.Str "Delta" |]);
  let _, cached = compute () in
  Alcotest.(check bool) "write outside the footprint keeps the hit" true cached

let test_gcache_point_footprint () =
  (* With an equality index the footprint is a point probe, so writes
     to rows with other keys do not invalidate. *)
  let cat = figure1_catalog () in
  let flights = table_of cat "Flights" in
  Table.add_index flights ~positions:[ 2 ];
  let cache = Gcache.create cat in
  let q = translate mickey_src in
  let access = Eval.direct_access cat in
  let env = Eval.fresh_env () in
  let compute () = Gcache.compute cache ~access ~touch:(fun _ -> ()) ~env q in
  ignore (compute ());
  ignore (Table.insert flights [| Value.Int 600; may3; Value.Str "Tokyo" |]);
  let _, cached = compute () in
  Alcotest.(check bool) "non-matching key keeps the hit" true cached;
  ignore (Table.insert flights [| Value.Int 601; may3; Value.Str "LA" |]);
  let served, cached = compute () in
  Alcotest.(check bool) "matching key invalidates" false cached;
  Alcotest.(check bool) "recomputation sees the new row" true
    (List.exists
       (fun (g : Ground.grounding) ->
         List.exists
           (fun (_, values) -> List.mem (Value.Int 601) values)
           g.g_head)
       served)

(* --- property: grounding-cache transparency --- *)

let prop_gcache_transparent =
  (* The cache's defining property: under arbitrary interleavings of
     writes, index creation and grounding rounds, a grounding request
     served through the cache equals a fresh Ground.compute on the
     current database — groundings, order and all. *)
  let op_gen =
    QCheck2.Gen.(
      oneof
        [ map (fun n -> `Insert n) (int_range 0 9);
          map (fun n -> `Delete n) (int_range 0 40);
          map (fun n -> `Update n) (int_range 0 40);
          map (fun n -> `Ground n) (int_range 0 4);
          return `Index ])
  in
  QCheck2.Test.make ~name:"cache-served groundings equal fresh recomputation"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) op_gen)
    (fun ops ->
      let cat = Catalog.create () in
      let flights =
        Catalog.create_table cat "Flights"
          (Schema.make
             [ { Schema.name = "fno"; ty = T_int }; { name = "dest"; ty = T_str } ])
      in
      for i = 1 to 3 do
        ignore (Table.insert flights [| Value.Int i; Value.Str "LA" |])
      done;
      let cache = Gcache.create cat in
      let queries =
        Array.init 5 (fun i ->
            translate
              (Gen.pair_query
                 (Printf.sprintf "u%d" i)
                 (Printf.sprintf "u%d" ((i + 1) mod 5))))
      in
      let access = Eval.direct_access cat in
      let env = Eval.fresh_env () in
      let dest n = Value.Str (if n mod 3 = 0 then "NY" else "LA") in
      List.for_all
        (fun op ->
          match op with
          | `Insert n ->
            ignore (Table.insert flights [| Value.Int n; dest n |]);
            true
          | `Delete n ->
            ignore (Table.delete flights n);
            true
          | `Update n ->
            ignore (Table.update flights n [| Value.Int (n mod 10); dest (n + 1) |]);
            true
          | `Index ->
            Table.add_index flights ~positions:[ 1 ];
            true
          | `Ground qi ->
            let served, _cached =
              Gcache.compute cache ~access ~touch:(fun _ -> ()) ~env queries.(qi)
            in
            served = Ground.compute ~access ~env queries.(qi))
        ops)

(* --- property: coordination soundness --- *)

let prop_coordination_sound =
  (* Random pairing workloads: whatever the evaluator answers, the
     chosen groundings must mutually satisfy each other's
     postconditions (the defining property of a coordinating set). *)
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 1 12) (int_range 0 7)))
  in
  QCheck2.Test.make ~name:"answered sets are coordinating sets" ~count:100 gen
    (fun (n_flights, partner_prefs) ->
      let cat = flights_only_catalog n_flights in
      (* build queries: user i wants to fly with user (pref i) *)
      let queries =
        List.mapi
          (fun i pref ->
            let me = Printf.sprintf "u%d" i in
            let partner = Printf.sprintf "u%d" (pref mod List.length partner_prefs) in
            let q = translate (pair_query me partner) in
            (i, q, ground cat q))
          partner_prefs
      in
      let results = Coordinate.evaluate queries in
      let answered =
        List.filter_map
          (fun (_, o) ->
            match o with
            | Coordinate.Answered g -> Some g
            | _ -> None)
          results
      in
      let heads = List.concat_map (fun (g : Ground.grounding) -> g.g_head) answered in
      List.for_all
        (fun (g : Ground.grounding) ->
          List.for_all (fun p -> List.exists (fun h -> h = p) heads) g.g_post)
        answered)

let () =
  Alcotest.run "entangle"
    [ ( "translate",
        [ Alcotest.test_case "mickey" `Quick test_translate_mickey;
          Alcotest.test_case "host resolution" `Quick test_translate_host_resolution;
          Alcotest.test_case "AS @var binds" `Quick test_translate_binds;
          Alcotest.test_case "unsafe unbound var" `Quick test_translate_unsafe_unbound_var;
          Alcotest.test_case "IN ANSWER under OR" `Quick test_translate_rejects_in_answer_under_or;
          Alcotest.test_case "unbound host" `Quick test_translate_unbound_host ] );
      ( "ground",
        [ Alcotest.test_case "mickey (Fig 7)" `Quick test_ground_mickey;
          Alcotest.test_case "minnie join (Fig 7)" `Quick test_ground_minnie_join;
          Alcotest.test_case "filter" `Quick test_ground_filter_condition;
          Alcotest.test_case "dedup" `Quick test_ground_dedup;
          Alcotest.test_case "empty" `Quick test_ground_empty;
          Alcotest.test_case "limit" `Quick test_ground_limit ] );
      ( "coordinate",
        [ Alcotest.test_case "mickey-minnie (Fig 1)" `Quick test_coordinate_mickey_minnie;
          Alcotest.test_case "alone: no partner" `Quick test_coordinate_alone_no_partner;
          Alcotest.test_case "empty success" `Quick test_coordinate_empty_success;
          Alcotest.test_case "donald blocked" `Quick test_structural_blocking_donald;
          Alcotest.test_case "blocking cascades" `Quick test_structural_blocking_cascades;
          Alcotest.test_case "cycle" `Quick test_coordinate_cycle;
          Alcotest.test_case "spoke-hub" `Quick test_coordinate_spoke_hub;
          Alcotest.test_case "partial answering" `Quick test_coordinate_partial_answering;
          Alcotest.test_case "asymmetric choice" `Quick test_coordinate_asymmetric_choice ] );
      ( "combined",
        [ Alcotest.test_case "compile pair" `Quick test_combined_compile_pair;
          Alcotest.test_case "mickey-minnie" `Quick test_combined_mickey_minnie;
          Alcotest.test_case "no partner / empty" `Quick test_combined_no_partner_and_empty;
          Alcotest.test_case "cycle" `Quick test_combined_cycle;
          Alcotest.test_case "spoke-hub multi-head" `Quick test_combined_spoke_hub_multihead;
          Alcotest.test_case "matching bound" `Quick test_combined_matching_bound ] );
      ( "gcache",
        [ Alcotest.test_case "hit then invalidate" `Quick
            test_gcache_hit_and_invalidate;
          Alcotest.test_case "unrelated write keeps entry" `Quick
            test_gcache_unrelated_write_keeps_entry;
          Alcotest.test_case "point footprint" `Quick
            test_gcache_point_footprint ] );
      ( "properties",
        List.map Gen.to_alcotest
          [ prop_coordination_sound;
            prop_combined_agrees_with_search;
            prop_gcache_transparent ] ) ]
