(* Tests for the evaluation workloads: the social graph substitute, the
   travel world, the six Appendix D workloads, and the Figure 6(c)
   coordination structures. *)

(* alias the shared test module before [open Ent_workload] shadows [Gen] *)
module Tgen = Gen
open Ent_core
open Ent_workload

let committed m id = Manager.outcome m id = Some Scheduler.Committed

let submit_all world programs =
  List.map (Manager.submit world.Travel.manager) programs

let drain world = Manager.drain world.Travel.manager

(* --- social graph --- *)

let test_graph_generation () =
  let g = Social_graph.generate ~seed:7 ~users:200 ~edges_per_node:3 () in
  Alcotest.(check int) "users" 200 (Social_graph.users g);
  (* reciprocity *)
  for u = 0 to 199 do
    List.iter
      (fun v ->
        if not (List.mem u (Social_graph.friends g v)) then
          Alcotest.failf "edge %d-%d not reciprocated" u v)
      (Social_graph.friends g u)
  done;
  (* heavy tail: max degree well above the average *)
  let degrees = List.init 200 (Social_graph.degree g) in
  let max_deg = List.fold_left max 0 degrees in
  let avg = float_of_int (List.fold_left ( + ) 0 degrees) /. 200.0 in
  Alcotest.(check bool) "hub exists" true (float_of_int max_deg > 2.5 *. avg);
  (* determinism *)
  let g' = Social_graph.generate ~seed:7 ~users:200 ~edges_per_node:3 () in
  Alcotest.(check int) "same edge count" (Social_graph.edge_count g)
    (Social_graph.edge_count g')

let test_graph_parse_edges () =
  let text = "# comment\n10\t20\n20\t30\n10\t20\n" in
  let g = Social_graph.parse_edges text in
  Alcotest.(check int) "three nodes" 3 (Social_graph.users g);
  Alcotest.(check int) "four directed edges" 4 (Social_graph.edge_count g);
  Alcotest.(check (list int)) "friends of remapped 20" [ 0; 2 ]
    (Social_graph.friends g 1)

let test_load_edges_file () =
  let path = Filename.temp_file "snap" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# Directed graph\n# FromNodeId\tToNodeId\n0\t1\n1\t2\n2\t0\n";
      close_out oc;
      let g = Social_graph.load_edges path in
      Alcotest.(check int) "three users" 3 (Social_graph.users g);
      Alcotest.(check int) "triangle reciprocated" 6 (Social_graph.edge_count g))

let test_nth_friend () =
  let g = Social_graph.generate ~seed:1 ~users:50 ~edges_per_node:2 () in
  match Social_graph.nth_friend g 10 3 with
  | Some v -> Alcotest.(check bool) "is a friend" true (List.mem v (Social_graph.friends g 10))
  | None -> Alcotest.fail "user 10 should have friends"

(* --- travel world --- *)

let test_world_build () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let m = world.manager in
  Alcotest.(check int) "users loaded" 50
    (List.length (Manager.query m "SELECT uid FROM User"));
  Alcotest.(check int) "flights are a complete digraph" 20
    (List.length (Manager.query m "SELECT fid FROM Flight"));
  Alcotest.(check bool) "hometown never equals destination" true
    (Travel.hometown world 3 <> Travel.destination_for world 3 ~salt:0)

(* --- workloads --- *)

let test_no_social_commits () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let ids = submit_all world (Gen.batch world ~transactional:true No_social ~n:10 ~tag_base:0) in
  drain world;
  Alcotest.(check bool) "all commit" true
    (List.for_all (committed world.manager) ids);
  Alcotest.(check int) "ten reservations" 10 (Travel.reservations world)

let test_social_commits () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let ids = submit_all world (Gen.batch world ~transactional:true Social ~n:10 ~tag_base:0) in
  drain world;
  Alcotest.(check bool) "all commit" true (List.for_all (committed world.manager) ids);
  Alcotest.(check int) "ten reservations" 10 (Travel.reservations world)

let test_entangled_pairs_commit () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let ids =
    submit_all world (Gen.batch world ~transactional:true Entangled ~n:10 ~tag_base:0)
  in
  drain world;
  Alcotest.(check bool) "all commit" true (List.for_all (committed world.manager) ids);
  Alcotest.(check int) "ten reservations" 10 (Travel.reservations world);
  let s = Manager.stats world.manager in
  Alcotest.(check int) "five entangle events" 5 s.entangle_events

let test_entangled_pair_agrees_on_destination () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let programs = Gen.batch world ~transactional:true Entangled ~n:2 ~tag_base:42 in
  let ids = submit_all world programs in
  drain world;
  match List.map (Manager.answers_of world.manager) ids with
  | [ [ (_, [ _; _; d1 ]) ]; [ (_, [ _; _; d2 ]) ] ] ->
    Alcotest.(check string) "same destination"
      (Ent_storage.Value.to_string d1) (Ent_storage.Value.to_string d2)
  | _ -> Alcotest.fail "unexpected answer shapes"

let test_q_variants_commit () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let ids =
    submit_all world (Gen.batch world ~transactional:false Entangled ~n:6 ~tag_base:0)
    @ submit_all world (Gen.batch world ~transactional:false No_social ~n:4 ~tag_base:50)
  in
  drain world;
  Alcotest.(check bool) "all commit" true (List.for_all (committed world.manager) ids);
  Alcotest.(check int) "ten reservations" 10 (Travel.reservations world)

let test_q_cheaper_than_t () =
  (* the -Q variant of the same workload must finish earlier in
     simulated time (no transaction overhead) *)
  let run transactional =
    let config =
      { Scheduler.default_config with connections = 10; trigger = Scheduler.Every_arrivals 10 }
    in
    let world = Travel.build ~users:100 ~cities:5 ~config () in
    ignore (submit_all world (Gen.batch world ~transactional No_social ~n:100 ~tag_base:0));
    drain world;
    Manager.now world.manager
  in
  let t_time = run true and q_time = run false in
  Alcotest.(check bool)
    (Printf.sprintf "Q (%f) < T (%f)" q_time t_time)
    true (q_time < t_time)

let test_lonely_stay_pending () =
  let world = Travel.build ~users:50 ~cities:5 () in
  let ids = submit_all world (Gen.lonely world ~n:3 ~tag_base:0) in
  drain world;
  Alcotest.(check bool) "none committed" true
    (List.for_all (fun id -> not (committed world.manager id)) ids);
  Alcotest.(check int) "all dormant" 3
    (List.length (Scheduler.dormant (Manager.scheduler world.manager)))

let test_spoke_hub_commits () =
  List.iter
    (fun set_size ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Manual }
      in
      let world = Travel.build ~users:60 ~cities:6 ~config () in
      let ids = submit_all world (Gen.spoke_hub world ~set_size ~tag_base:1) in
      Manager.run_once world.manager;
      Manager.drain world.manager;
      Alcotest.(check bool)
        (Printf.sprintf "spoke-hub size %d commits" set_size)
        true
        (List.for_all (committed world.manager) ids))
    [ 2; 3; 5; 8 ]

let test_cycle_commits () =
  List.iter
    (fun set_size ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Manual }
      in
      let world = Travel.build ~users:60 ~cities:12 ~config () in
      let ids = submit_all world (Gen.cycle world ~set_size ~tag_base:1) in
      Manager.run_once world.manager;
      Manager.drain world.manager;
      Alcotest.(check bool)
        (Printf.sprintf "cycle size %d commits" set_size)
        true
        (List.for_all (committed world.manager) ids))
    [ 2; 3; 4; 6; 9 ]

let test_q_retry_resumes_not_restarts () =
  (* A -Q transaction's committed statements survive a repool: when its
     partner arrives a run later, the pre-query INSERT must not run a
     second time. *)
  let world = Travel.build ~users:50 ~cities:5 () in
  let m = world.manager in
  Manager.define_table m "Markers" [ ("who", Ent_storage.Schema.T_str) ];
  let q_program me _partner =
    Program.of_string ~transactional:false
      (Printf.sprintf
         "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
          INSERT INTO Markers VALUES ('%s');\n\
          SELECT %d, 9, dst AS @destination INTO ANSWER Meet\n\
          WHERE (dst) IN (SELECT destination FROM Flight WHERE source='%s')\n\
          AND (%d, 9, dst) IN ANSWER Meet\n\
          CHOOSE 1;\n\
          INSERT INTO Reserve (uid, fid) VALUES (%d, 0);\n\
          COMMIT;"
         me
         (if me = "early" then 1 else 2)
         (Travel.hometown world 1)
         (if me = "early" then 2 else 1)
         (if me = "early" then 1 else 2))
  in
  let early = Manager.submit m (q_program "early" "late") in
  Manager.drain m;  (* early waits: its marker is already committed *)
  Alcotest.(check int) "marker committed while waiting" 1
    (List.length (Manager.query m "SELECT who FROM Markers"));
  let late = Manager.submit m (q_program "late" "early") in
  Manager.drain m;
  Alcotest.(check bool) "both done" true
    (Manager.outcome m early = Some Scheduler.Committed
    && Manager.outcome m late = Some Scheduler.Committed);
  Alcotest.(check int) "exactly two markers (no re-execution)" 2
    (List.length (Manager.query m "SELECT who FROM Markers"));
  Alcotest.(check int) "two bookings" 2 (Travel.reservations world)

(* --- properties --- *)

let prop_entangled_batches_always_commit =
  QCheck2.Test.make ~name:"entangled batches fully commit" ~count:20
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 20))
    (fun (pairs, f) ->
      let config =
        { Scheduler.default_config with trigger = Scheduler.Every_arrivals f }
      in
      let world = Travel.build ~users:80 ~cities:5 ~config () in
      let ids =
        submit_all world
          (Gen.batch world ~transactional:true Entangled ~n:(2 * pairs) ~tag_base:0)
      in
      drain world;
      List.for_all (committed world.manager) ids)

let prop_graph_reciprocal =
  QCheck2.Test.make ~name:"generated graphs are reciprocal" ~count:30
    QCheck2.Gen.(pair (int_range 2 120) (int_range 1 6))
    (fun (users, epn) ->
      let g = Social_graph.generate ~seed:3 ~users ~edges_per_node:epn () in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> List.mem u (Social_graph.friends g v))
            (Social_graph.friends g u))
        (List.init users Fun.id))

let () =
  Alcotest.run "workload"
    [ ( "graph",
        [ Alcotest.test_case "generation" `Quick test_graph_generation;
          Alcotest.test_case "parse edges" `Quick test_graph_parse_edges;
          Alcotest.test_case "load edges file" `Quick test_load_edges_file;
          Alcotest.test_case "nth friend" `Quick test_nth_friend ] );
      ( "world",
        [ Alcotest.test_case "build" `Quick test_world_build ] );
      ( "workloads",
        [ Alcotest.test_case "no-social" `Quick test_no_social_commits;
          Alcotest.test_case "social" `Quick test_social_commits;
          Alcotest.test_case "entangled pairs" `Quick test_entangled_pairs_commit;
          Alcotest.test_case "destination agreement" `Quick
            test_entangled_pair_agrees_on_destination;
          Alcotest.test_case "q variants" `Quick test_q_variants_commit;
          Alcotest.test_case "q cheaper than t" `Quick test_q_cheaper_than_t;
          Alcotest.test_case "q retry resumes" `Quick test_q_retry_resumes_not_restarts;
          Alcotest.test_case "lonely pending" `Quick test_lonely_stay_pending;
          Alcotest.test_case "spoke-hub" `Quick test_spoke_hub_commits;
          Alcotest.test_case "cycle" `Quick test_cycle_commits ] );
      ( "properties",
        List.map Tgen.to_alcotest
          [ prop_entangled_batches_always_commit; prop_graph_reciprocal ] ) ]
