(* Shared test infrastructure, linked into every suite:

   - [to_alcotest]: a seed-reporting QCheck2 -> Alcotest adapter. All
     randomized tests draw their generator state from one session seed,
     honour [QCHECK_SEED] for exact replay, and print the seed next to
     any failure (see README, "Randomized tests").
   - QCheck2 generators for schemas, tuples, entangled programs,
     coherent WAL schedules and fault plans.
   - The travel-workload builders (manager setup, entangled program
     sources, crash workloads, the Figure 1 catalog) previously
     duplicated across test_core, test_entangle and test_crash. *)

open Ent_storage
module Manager = Ent_core.Manager
module Scheduler = Ent_core.Scheduler
module Program = Ent_core.Program
module Wal = Ent_txn.Wal

(* --- randomized-test seeds --- *)

let seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> failwith "QCHECK_SEED must be an integer")
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000)

(* --- per-transaction isolation levels (the ENT_ISOLATION knob) --- *)

(* Suite-wide isolation mode: "2pl" (default), "si", "mixed".
   Randomized scheduler-level tests tag their generated programs
   through [assign_isolation], so the whole battery replays under
   snapshot or mixed levels without touching the tests themselves. *)
let isolation_mode =
  lazy
    (match
       Option.map String.lowercase_ascii (Sys.getenv_opt "ENT_ISOLATION")
     with
    | None | Some "2pl" -> `All_2pl
    | Some ("si" | "snapshot") -> `All_si
    | Some "mixed" -> `Mixed
    | Some other ->
      failwith ("ENT_ISOLATION must be 2pl, si or mixed, not " ^ other))

let isolation_mode_name () =
  match Lazy.force isolation_mode with
  | `All_2pl -> "2pl"
  | `All_si -> "si"
  | `Mixed -> "mixed"

(* Level of the [i]-th program of a generated batch under the session
   mode. Mixed alternates deterministically: a failing seed plus the
   mode reproduces the exact assignment. *)
let level_for i =
  match Lazy.force isolation_mode with
  | `All_2pl -> Ent_txn.Engine.Serializable_2pl
  | `All_si -> Ent_txn.Engine.Snapshot
  | `Mixed ->
    if i land 1 = 1 then Ent_txn.Engine.Snapshot
    else Ent_txn.Engine.Serializable_2pl

(* Retag a generated batch with the session's levels, preserving order
   (position decides the level under mixed). *)
let assign_isolation programs =
  List.mapi
    (fun i (p : Program.t) ->
      Program.make ~label:p.label ~transactional:p.transactional
        ~isolation:(level_for i) p.ast)
    programs

(* "2pl,si,2pl,…" for a batch — printed beside a failing seed so the
   per-transaction assignment is part of the repro line. *)
let isolation_signature programs =
  String.concat ","
    (List.map
       (fun (p : Program.t) ->
         match p.isolation with
         | Ent_txn.Engine.Serializable_2pl -> "2pl"
         | Ent_txn.Engine.Snapshot -> "si")
       programs)

(* Convert a QCheck2 test, seeding it from the session seed and
   pointing at the replay knobs when it fails. The isolation mode is
   part of the replay line: the same seed under a different
   ENT_ISOLATION is a different schedule. *)
let to_alcotest test =
  let seed = Lazy.force seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run () =
    try run ()
    with exn ->
      Printf.eprintf
        "\n\
         [qcheck] failing seed: %d, isolation %s (replay with QCHECK_SEED=%d \
         ENT_ISOLATION=%s)\n\
         %!"
        seed
        (isolation_mode_name ())
        seed
        (isolation_mode_name ());
      raise exn
  in
  (name, speed, run)

(* --- schema / tuple generators --- *)

let col_type_gen =
  QCheck2.Gen.oneofl [ Schema.T_bool; Schema.T_int; Schema.T_str; Schema.T_date ]

let schema_gen =
  let open QCheck2.Gen in
  let* tys = list_size (int_range 1 4) col_type_gen in
  return
    (Schema.make
       (List.mapi
          (fun i ty -> { Schema.name = Printf.sprintf "c%d" i; ty })
          tys))

let value_gen ty =
  let open QCheck2.Gen in
  let base =
    match ty with
    | Schema.T_bool -> map (fun b -> Value.Bool b) bool
    | Schema.T_int -> map (fun n -> Value.Int n) (int_range (-50) 50)
    | Schema.T_str ->
      map (fun s -> Value.Str s)
        (string_size ~gen:(char_range 'a' 'e') (int_range 0 4))
    | Schema.T_date ->
      map (fun d -> Value.date_of_ymd ~y:2011 ~m:5 ~d) (int_range 1 28)
    | Schema.T_any -> map (fun n -> Value.Int n) (int_range 0 9)
  in
  frequency [ (1, return Value.Null); (7, base) ]

(* A tuple inhabiting [schema] ([Null] inhabits every column type). *)
let tuple_gen schema =
  let open QCheck2.Gen in
  let* values =
    flatten_l (List.map (fun (c : Schema.column) -> value_gen c.ty)
                 (Schema.columns schema))
  in
  return (Array.of_list values)

let schema_tuple_gen =
  let open QCheck2.Gen in
  let* schema = schema_gen in
  let* tuple = tuple_gen schema in
  return (schema, tuple)

(* --- fault-plan generator --- *)

(* The real registry's site names (plans over unknown sites are legal
   but never fire). *)
let known_sites =
  [ "txn.wal.append"; "txn.wal.append.post"; "txn.wal.save";
    "core.scheduler.step"; "core.scheduler.group_commit";
    "core.scheduler.pool_snapshot"; "core.entangle.timeout";
    "entangle.coordinate.round_abort"; "entangle.coordinate.partner_drop" ]

let plan_gen =
  let open QCheck2.Gen in
  let arm =
    let* site = oneofl known_sites in
    let* hit = int_range 1 9 in
    let* action =
      oneofl [ Ent_fault.Plan.Crash; Torn; Fail; Drop ]
    in
    return { Ent_fault.Plan.site; hit; action }
  in
  list_size (int_range 0 4) arm

(* --- WAL schedule generator --- *)

(* A coherent small log: tables created first; each transaction begins,
   writes, then commits, aborts or is left in flight; inserts use
   globally fresh row ids so survivor replay never restores onto an
   occupied id; entanglement groups only span committed transactions
   (atomic groups, so the analysis is victim-free and redo idempotence
   is exact). *)
let schedule_gen =
  let open QCheck2.Gen in
  let* schemas = list_size (int_range 1 2) schema_gen in
  let schemas = Array.of_list schemas in
  let op_gen =
    let* ti = int_range 0 (Array.length schemas - 1) in
    let* kind = int_range 0 9 in
    let* sel = int_range 0 999 in
    let* tup = tuple_gen schemas.(ti) in
    return (ti, kind, sel, tup)
  in
  let* txns =
    list_size (int_range 1 6)
      (pair (int_range 0 99) (list_size (int_range 1 4) op_gen))
  in
  let* with_snapshot = bool in
  let table_name i = Printf.sprintf "T%d" i in
  let records = ref [] in
  let emit r = records := r :: !records in
  Array.iteri
    (fun i s ->
      emit
        (Wal.Create
           { table = table_name i;
             columns =
               List.map (fun (c : Schema.column) -> (c.name, c.ty))
                 (Schema.columns s) }))
    schemas;
  let next_row = Array.make (Array.length schemas) 0 in
  let live = Array.make (Array.length schemas) [] in
  let committed = ref [] in
  List.iteri
    (fun i (roll, ops) ->
      let txn = i + 1 in
      emit (Wal.Begin txn);
      List.iter
        (fun (ti, kind, sel, tup) ->
          let table = table_name ti in
          if live.(ti) = [] || kind < 5 then begin
            let row = next_row.(ti) in
            next_row.(ti) <- row + 1;
            emit (Wal.Write { txn; table; row; before = None; after = Some tup });
            live.(ti) <- (row, tup) :: live.(ti)
          end
          else
            let row, old = List.nth live.(ti) (sel mod List.length live.(ti)) in
            if kind < 8 then begin
              emit
                (Wal.Write { txn; table; row; before = Some old; after = Some tup });
              live.(ti) <- (row, tup) :: List.remove_assoc row live.(ti)
            end
            else begin
              emit (Wal.Write { txn; table; row; before = Some old; after = None });
              live.(ti) <- List.remove_assoc row live.(ti)
            end)
        ops;
      if roll < 75 then begin
        emit (Wal.Commit txn);
        committed := txn :: !committed
      end
      else if roll < 95 then emit (Wal.Abort txn))
    txns;
  (* pair up committed transactions into (atomic) entanglement groups *)
  let rec pair_up event = function
    | a :: b :: rest ->
      emit (Wal.Entangle_group { event; members = [ a; b ] });
      pair_up (event + 1) rest
    | _ -> ()
  in
  pair_up 1 (List.rev !committed);
  if with_snapshot then emit (Wal.Pool_snapshot []);
  return (List.rev !records)

(* --- the travel world (test_core's fixture) --- *)

let date y m d = Value.date_of_ymd ~y ~m ~d

(* travel system: Flights + Hotels + Reserve bookkeeping *)
let travel_manager ?config () =
  let m = Manager.create ?config () in
  Manager.define_table m "Flights"
    [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
  Manager.define_table m "Hotels"
    [ ("hid", Schema.T_int); ("location", Schema.T_str) ];
  Manager.define_table m "Reserve"
    [ ("name", Schema.T_str); ("what", Schema.T_str); ("item", Schema.T_int) ];
  List.iter
    (fun (fno, d, dest) -> Manager.load_row m "Flights" [ Int fno; d; Str dest ])
    [ (122, date 2011 5 3, "LA");
      (123, date 2011 5 4, "LA");
      (124, date 2011 5 3, "LA");
      (235, date 2011 5 5, "Paris") ];
  List.iter
    (fun (hid, loc) -> Manager.load_row m "Hotels" [ Int hid; Str loc ])
    [ (7, "LA"); (8, "LA"); (9, "Paris") ];
  m

let flight_program ?(timeout = "") me partner =
  Printf.sprintf
    "BEGIN TRANSACTION%s;\n\
     SELECT '%s', fno AS @fno, fdate INTO ANSWER FlightRes\n\
     WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
     AND ('%s', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\n\
     INSERT INTO Reserve VALUES ('%s', 'flight', @fno);\n\
     COMMIT;"
    timeout me partner me

(* Figure 2: coordinate on flight, then on hotel for the arrival day. *)
let travel_program me partner =
  Printf.sprintf
    "BEGIN TRANSACTION;\n\
     SELECT '%s', fno AS @fno, fdate AS @ArrivalDay INTO ANSWER FlightRes\n\
     WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
     AND ('%s', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\n\
     INSERT INTO Reserve VALUES ('%s', 'flight', @fno);\n\
     SET @StayLength = '2011-05-06' - @ArrivalDay;\n\
     SELECT '%s', hid AS @hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes\n\
     WHERE (hid) IN (SELECT hid FROM Hotels WHERE location='LA')\n\
     AND ('%s', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes CHOOSE 1;\n\
     INSERT INTO Reserve VALUES ('%s', 'hotel', @hid);\n\
     COMMIT;"
    me partner me me partner me

(* Figure 3a: Minnie entangles with Mickey, then rolls back. *)
let minnie_aborts_program =
  "BEGIN TRANSACTION;\n\
   SELECT 'Minnie', fno AS @fno, fdate INTO ANSWER FlightRes\n\
   WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest='LA')\n\
   AND ('Mickey', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\n\
   ROLLBACK;\n\
   COMMIT;"

let reserve_rows m =
  List.map
    (fun row ->
      match row with
      | [| Value.Str name; Value.Str what; item |] ->
        (name, what, Value.to_string item)
      | _ -> Alcotest.fail "unexpected Reserve row shape")
    (Manager.query m "SELECT name, what, item FROM Reserve")

let outcome_name = function
  | Some Scheduler.Committed -> "committed"
  | Some Scheduler.Timed_out -> "timed-out"
  | Some Scheduler.Rolled_back -> "rolled-back"
  | Some (Scheduler.Errored msg) -> "errored:" ^ msg
  | None -> "pending"

let check_outcome m name expected id =
  Alcotest.(check string) name expected (outcome_name (Manager.outcome m id))

(* seats bookkeeping: Stock(item, left) must never go negative *)
let stock_manager ?config () =
  let m = Manager.create ?config () in
  Manager.define_table m "Stock"
    [ ("item", Schema.T_str); ("left", Schema.T_int) ];
  Manager.load_row m "Stock" [ Str "seat"; Int 1 ];
  Manager.add_constraint m "no-negative-stock" (fun catalog ->
      match Catalog.find catalog "Stock" with
      | None -> true
      | Some table ->
        Table.fold
          (fun _ row ok ->
            ok
            &&
            match Tuple.get row 1 with
            | Value.Int n -> n >= 0
            | _ -> true)
          table true);
  m

(* --- entangled program generators --- *)

(* One complete pair over the travel fixture's Flights table. *)
let entangled_pair_gen =
  let open QCheck2.Gen in
  let* i = int_range 0 999 in
  let a = Printf.sprintf "u%da" i and b = Printf.sprintf "u%db" i in
  match
    assign_isolation
      [ Program.of_string ~label:a (flight_program a b);
        Program.of_string ~label:b (flight_program b a) ]
  with
  | [ pa; pb ] -> return (pa, pb)
  | _ -> assert false

(* A mixed batch over the travel fixture: complete pairs, partnerless
   entangled programs and classical rollbacks, shuffled by generation
   order. Lonely programs are the only ones that stay dormant. *)
let entangled_batch_gen =
  let open QCheck2.Gen in
  let* pairs = int_range 0 4 in
  let* lonely = int_range 0 2 in
  let* rollbacks = int_range 0 2 in
  let pair_programs =
    List.concat
      (List.init pairs (fun i ->
           let a = Printf.sprintf "p%da" i and b = Printf.sprintf "p%db" i in
           [ Program.of_string ~label:a (flight_program a b);
             Program.of_string ~label:b (flight_program b a) ]))
  in
  let lonely_programs =
    List.init lonely (fun i ->
        Program.of_string ~label:(Printf.sprintf "lone%d" i)
          (flight_program (Printf.sprintf "lone%d" i) "nobody"))
  in
  let rollback_programs =
    List.init rollbacks (fun i ->
        Program.of_string ~label:(Printf.sprintf "rb%d" i)
          "BEGIN TRANSACTION;\n\
           INSERT INTO Reserve VALUES ('r', 'flight', 1);\n\
           ROLLBACK;\nCOMMIT;")
  in
  return
    (assign_isolation (pair_programs @ lonely_programs @ rollback_programs),
     lonely)

(* --- the Figure 1 fixture (test_entangle's) --- *)

let may3 = date 2011 5 3
let may4 = date 2011 5 4

let figure1_catalog () =
  let cat = Catalog.create () in
  let flights =
    Catalog.create_table cat "Flights"
      (Schema.make
         [ { name = "fno"; ty = T_int };
           { name = "fdate"; ty = T_date };
           { name = "dest"; ty = T_str } ])
  in
  let airlines =
    Catalog.create_table cat "Airlines"
      (Schema.make
         [ { name = "fno"; ty = T_int }; { name = "airline"; ty = T_str } ])
  in
  List.iter
    (fun row -> ignore (Table.insert flights row))
    [ [| Value.Int 122; may3; Value.Str "LA" |];
      [| Value.Int 123; may4; Value.Str "LA" |];
      [| Value.Int 124; may3; Value.Str "LA" |];
      [| Value.Int 235; date 2011 5 5; Value.Str "Paris" |] ];
  List.iter
    (fun row -> ignore (Table.insert airlines row))
    [ [| Value.Int 122; Value.Str "United" |];
      [| Value.Int 123; Value.Str "United" |];
      [| Value.Int 124; Value.Str "USAir" |];
      [| Value.Int 235; Value.Str "Delta" |] ];
  cat

let parse_entangled input =
  match Ent_sql.Parser.parse_stmt input with
  | Ent_sql.Ast.Entangled e -> e
  | _ -> Alcotest.fail "expected an entangled statement"

let translate ?(env = Ent_sql.Eval.fresh_env ()) input =
  Ent_entangle.Translate.of_ast ~env (parse_entangled input)

let mickey_src =
  "SELECT 'Mickey', fno, fdate INTO ANSWER R WHERE (fno, fdate) IN (SELECT \
   fno, fdate FROM Flights WHERE dest='LA') AND ('Minnie', fno, fdate) IN \
   ANSWER R CHOOSE 1"

let minnie_src =
  "SELECT 'Minnie', fno, fdate INTO ANSWER R WHERE (fno, fdate) IN (SELECT \
   F.fno, F.fdate FROM Flights F, Airlines A WHERE F.dest='LA' AND F.fno = \
   A.fno AND A.airline='United') AND ('Mickey', fno, fdate) IN ANSWER R \
   CHOOSE 1"

let ground cat query =
  Ent_entangle.Ground.compute
    ~access:(Ent_sql.Eval.direct_access cat)
    ~env:(Ent_sql.Eval.fresh_env ()) query

let flights_only_catalog n =
  let cat = Catalog.create () in
  let flights =
    Catalog.create_table cat "Flights"
      (Schema.make [ { name = "fno"; ty = T_int }; { name = "dest"; ty = T_str } ])
  in
  for i = 1 to n do
    ignore (Table.insert flights [| Value.Int i; Value.Str "LA" |])
  done;
  cat

let pair_query me partner =
  Printf.sprintf
    "SELECT '%s', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM Flights \
     WHERE dest='LA') AND ('%s', fno) IN ANSWER R CHOOSE 1"
    me partner

(* --- crash workloads (test_crash's fixture) --- *)

let run_workload ~pairs ~with_rollbacks =
  let config =
    {
      Scheduler.default_config with
      trigger = Scheduler.Every_arrivals 4;
      snapshot_pool = true;
    }
  in
  let world = Ent_workload.Travel.build ~users:60 ~cities:6 ~config ~wal:true () in
  let programs =
    Ent_workload.Gen.batch world ~transactional:true Ent_workload.Gen.Entangled
      ~n:(2 * pairs) ~tag_base:0
  in
  let programs =
    if with_rollbacks then
      List.mapi
        (fun i (p : Program.t) ->
          if i mod 5 = 1 then
            let ast : Ent_sql.Ast.program =
              {
                p.ast with
                body =
                  List.filteri (fun j _ -> j < 2) p.ast.body
                  @ [ (Ent_sql.Ast.Rollback, Ent_sql.Ast.no_pos) ];
              }
            in
            Program.make ~label:(p.label ^ "-abort") ast
          else p)
        programs
    else programs
  in
  List.iter
    (fun p -> ignore (Manager.submit world.Ent_workload.Travel.manager p))
    (assign_isolation programs);
  Manager.drain world.Ent_workload.Travel.manager;
  world

let dump_table catalog name =
  match Catalog.find catalog name with
  | None -> []
  | Some table ->
    List.map
      (fun (id, row) -> (id, List.map Value.to_string (Tuple.to_list row)))
      (Table.to_list table)

(* Group atomicity (the §4 entanglement-aware recovery rule), shared
   with the entsim harness. *)
let group_atomic = Ent_entsim.Harness.group_atomic
