(* Unit and property tests for the storage substrate. *)

open Ent_storage

let value_testable = Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value_testable

(* --- Value --- *)

let test_value_order () =
  Alcotest.(check bool) "null < int" true (Value.compare Null (Int 0) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool)
    "str order" true
    (Value.compare (Str "a") (Str "b") < 0);
  Alcotest.(check bool)
    "cross type deterministic" true
    (Value.compare (Int 5) (Str "a") < 0);
  Alcotest.(check int) "equal dates" 0
    (Value.compare
       (Value.date_of_ymd ~y:2011 ~m:5 ~d:3)
       (Value.date_of_ymd ~y:2011 ~m:5 ~d:3))

let test_date_roundtrip () =
  List.iter
    (fun (y, m, d) ->
      match Value.date_of_ymd ~y ~m ~d with
      | Date days ->
        Alcotest.(check (triple int int int))
          (Printf.sprintf "%d-%d-%d" y m d)
          (y, m, d) (Value.ymd_of_date days)
      | _ -> Alcotest.fail "date_of_ymd did not build a date")
    [ (1970, 1, 1); (2011, 5, 3); (2000, 2, 29); (1969, 12, 31); (2100, 3, 1) ]

let test_date_parse () =
  (match Value.parse_date "2011-05-03" with
  | Some (Date _ as d) ->
    Alcotest.(check string) "print" "2011-05-03" (Value.to_string d)
  | _ -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "reject garbage" true (Value.parse_date "hello" = None);
  Alcotest.(check bool)
    "reject bad month" true
    (Value.parse_date "2011-13-03" = None)

let test_date_arith () =
  let arrival = Value.date_of_ymd ~y:2011 ~m:5 ~d:3 in
  let departure = Value.date_of_ymd ~y:2011 ~m:5 ~d:6 in
  (* The paper's @StayLength = '2011-05-06' - @ArrivalDay computation. *)
  check_value "stay length" (Int 3) (Value.sub departure arrival);
  check_value "date + days" departure (Value.add arrival (Int 3));
  check_value "null propagates" Null (Value.add Null (Int 1))

let test_arith_errors () =
  Alcotest.check_raises "date*date"
    (Value.Type_error "cannot multiply date and date") (fun () ->
      ignore (Value.mul (Value.date_of_ymd ~y:2011 ~m:1 ~d:1)
                (Value.date_of_ymd ~y:2011 ~m:1 ~d:2)));
  Alcotest.check_raises "div by zero" (Value.Type_error "division by zero")
    (fun () -> ignore (Value.div (Int 1) (Int 0)))

let test_of_literal () =
  check_value "int" (Int 42) (Value.of_literal "42");
  check_value "date"
    (Value.date_of_ymd ~y:2011 ~m:5 ~d:3)
    (Value.of_literal "2011-05-03");
  check_value "string" (Str "LA") (Value.of_literal "LA");
  check_value "bool" (Bool true) (Value.of_literal "true");
  check_value "null" Null (Value.of_literal "NULL")

(* --- Schema / Tuple --- *)

let flights_schema =
  Schema.make
    [ { name = "fno"; ty = T_int };
      { name = "fdate"; ty = T_date };
      { name = "dest"; ty = T_str } ]

let may3 = Value.date_of_ymd ~y:2011 ~m:5 ~d:3

let test_schema_positions () =
  Alcotest.(check int) "fno" 0 (Schema.index_of flights_schema "fno");
  Alcotest.(check int) "dest" 2 (Schema.index_of flights_schema "dest");
  Alcotest.(check bool) "mem" true (Schema.mem flights_schema "fdate");
  Alcotest.(check bool) "not mem" false (Schema.mem flights_schema "hotel");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate column x") (fun () ->
      ignore (Schema.make [ { name = "x"; ty = T_int }; { name = "x"; ty = T_int } ]))

let test_tuple_checking () =
  let row = Tuple.make flights_schema [ Int 122; may3; Str "LA" ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity row);
  check_value "get" (Str "LA") (Tuple.get row 2);
  (try
     ignore (Tuple.make flights_schema [ Str "oops"; may3; Str "LA" ]);
     Alcotest.fail "type mismatch accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Tuple.make flights_schema [ Int 1 ]);
    Alcotest.fail "arity mismatch accepted"
  with Invalid_argument _ -> ()

let test_tuple_project () =
  let row = Tuple.make flights_schema [ Int 122; may3; Str "LA" ] in
  let projected = Tuple.project row [ 2; 0 ] in
  check_value "first" (Str "LA") (Tuple.get projected 0);
  check_value "second" (Int 122) (Tuple.get projected 1)

(* --- Table --- *)

let sample_table () =
  let t = Table.create ~name:"Flights" flights_schema in
  let id1 = Table.insert t [| Int 122; may3; Str "LA" |] in
  let id2 =
    Table.insert t [| Int 123; Value.date_of_ymd ~y:2011 ~m:5 ~d:4; Str "LA" |]
  in
  let id3 = Table.insert t [| Int 124; may3; Str "LA" |] in
  let id4 =
    Table.insert t
      [| Int 235; Value.date_of_ymd ~y:2011 ~m:5 ~d:5; Str "Paris" |]
  in
  (t, id1, id2, id3, id4)

let test_table_basics () =
  let t, id1, _, _, id4 = sample_table () in
  Alcotest.(check int) "cardinal" 4 (Table.cardinal t);
  (match Table.get t id1 with
  | Some row -> check_value "fno" (Int 122) (Tuple.get row 0)
  | None -> Alcotest.fail "row missing");
  ignore (Table.delete t id4);
  Alcotest.(check int) "after delete" 3 (Table.cardinal t);
  Alcotest.(check bool) "deleted gone" true (Table.get t id4 = None);
  Alcotest.(check bool) "double delete" true (Table.delete t id4 = None)

let test_table_scan_order () =
  let t, id1, id2, id3, id4 = sample_table () in
  let ids = List.map fst (Table.to_list t) in
  Alcotest.(check (list int)) "insertion order" [ id1; id2; id3; id4 ] ids

let test_table_update () =
  let t, id1, _, _, _ = sample_table () in
  let old = Table.update t id1 [| Int 122; may3; Str "SFO" |] in
  (match old with
  | Some row -> check_value "old dest" (Str "LA") (Tuple.get row 2)
  | None -> Alcotest.fail "update failed");
  match Table.get t id1 with
  | Some row -> check_value "new dest" (Str "SFO") (Tuple.get row 2)
  | None -> Alcotest.fail "row missing after update"

let test_table_restore () =
  let t, id1, _, _, _ = sample_table () in
  let row = Option.get (Table.delete t id1) in
  Table.restore t id1 row;
  Alcotest.(check int) "cardinal back" 4 (Table.cardinal t);
  (match Table.get t id1 with
  | Some r -> check_value "restored" (Int 122) (Tuple.get r 0)
  | None -> Alcotest.fail "restore lost row");
  try
    Table.restore t id1 row;
    Alcotest.fail "restore over live row accepted"
  with Invalid_argument _ -> ()

let test_table_index_lookup () =
  let t, id1, _, id3, _ = sample_table () in
  Table.add_index t ~positions:[ 2 ];
  let la = Table.lookup t ~positions:[ 2 ] [ Str "LA" ] in
  Alcotest.(check int) "LA flights" 3 (List.length la);
  (* Index and scan must agree. *)
  let scan =
    Table.lookup (Table.create flights_schema) ~positions:[ 2 ] [ Str "LA" ]
  in
  Alcotest.(check int) "empty table" 0 (List.length scan);
  let dated = Table.lookup t ~positions:[ 1; 2 ] [ may3; Str "LA" ] in
  Alcotest.(check (list int)) "composite scan" [ id1; id3 ] (List.map fst dated);
  ignore (Table.delete t id1);
  let la' = Table.lookup t ~positions:[ 2 ] [ Str "LA" ] in
  Alcotest.(check int) "index sees delete" 2 (List.length la')

let test_table_index_update_maintenance () =
  let t, id1, _, _, _ = sample_table () in
  Table.add_index t ~positions:[ 2 ];
  ignore (Table.update t id1 [| Int 122; may3; Str "SFO" |]);
  Alcotest.(check int) "old key gone" 2
    (List.length (Table.lookup t ~positions:[ 2 ] [ Str "LA" ]));
  Alcotest.(check (list int))
    "new key present" [ id1 ]
    (List.map fst (Table.lookup t ~positions:[ 2 ] [ Str "SFO" ]))

let test_catalog () =
  let cat = Catalog.create () in
  let t = Catalog.create_table cat "Flights" flights_schema in
  Alcotest.(check string) "name" "Flights" (Table.name t);
  Alcotest.(check bool) "mem" true (Catalog.mem cat "Flights");
  Alcotest.(check bool) "case sensitive" false (Catalog.mem cat "flights");
  (try
     ignore (Catalog.create_table cat "Flights" flights_schema);
     Alcotest.fail "duplicate table accepted"
   with Invalid_argument _ -> ());
  Catalog.drop cat "Flights";
  Alcotest.(check bool) "dropped" false (Catalog.mem cat "Flights")

(* --- ordered indexes --- *)

let test_ordered_index_range () =
  let ox = Ordered_index.create ~position:0 in
  List.iter (fun (v, id) -> Ordered_index.insert ox (Value.Int v) id)
    [ (5, 0); (1, 1); (9, 2); (5, 3); (7, 4) ];
  Alcotest.(check (list int)) "full range" [ 1; 0; 3; 4; 2 ]
    (Ordered_index.range ox ~lo:Unbounded ~hi:Unbounded);
  Alcotest.(check (list int)) "closed interval" [ 0; 3; 4 ]
    (Ordered_index.range ox ~lo:(Inclusive (Int 5)) ~hi:(Inclusive (Int 7)));
  Alcotest.(check (list int)) "open below" [ 4 ]
    (Ordered_index.range ox ~lo:(Exclusive (Int 5)) ~hi:(Exclusive (Int 9)));
  Ordered_index.remove ox (Value.Int 5) 0;
  Alcotest.(check (list int)) "after removal" [ 3 ]
    (Ordered_index.range ox ~lo:(Inclusive (Int 5)) ~hi:(Inclusive (Int 5)))

let test_table_range_lookup () =
  let t, _, _, _, _ = sample_table () in
  let expect_fnos msg lo hi expected =
    let rows = Table.range_lookup t ~position:0 ~lo ~hi in
    Alcotest.(check (list string)) msg expected
      (List.map (fun (_, r) -> Value.to_string (Tuple.get r 0)) rows)
  in
  (* without an index: scan fallback *)
  expect_fnos "scan fallback" (Inclusive (Int 123)) (Inclusive (Int 235))
    [ "123"; "124"; "235" ];
  Table.add_ordered_index t ~position:0;
  Alcotest.(check bool) "index exists" true (Table.has_ordered_index t ~position:0);
  expect_fnos "indexed" (Inclusive (Int 123)) (Inclusive (Int 235))
    [ "123"; "124"; "235" ];
  (* maintenance across update and delete *)
  ignore (Table.update t 0 [| Int 500; may3; Str "LA" |]);
  ignore (Table.delete t 1);
  expect_fnos "after update/delete" (Inclusive (Int 200)) Unbounded
    [ "235"; "500" ]

(* --- versions and the changelog (the grounding cache's contract) --- *)

let test_version_changelog () =
  let t = Table.create (Schema.of_names [ "a" ]) in
  let v0 = Table.version t in
  Alcotest.(check bool) "untouched" true (Table.changes_since t v0 = Some []);
  let id = Table.insert t [| Value.Int 1 |] in
  Alcotest.(check bool) "insert bumps version" true (Table.version t > v0);
  (match Table.changes_since t v0 with
  | Some [ { Table.c_before = None; c_after = Some row } ] ->
    Alcotest.(check bool) "insert recorded" true (Tuple.get row 0 = Value.Int 1)
  | _ -> Alcotest.fail "expected exactly the insert change");
  let v1 = Table.version t in
  ignore (Table.update t id [| Value.Int 2 |]);
  ignore (Table.delete t id);
  (match Table.changes_since t v1 with
  | Some changes ->
    Alcotest.(check int) "update+delete recorded" 2 (List.length changes)
  | None -> Alcotest.fail "changelog truncated unexpectedly");
  Alcotest.(check bool) "since current version is empty" true
    (Table.changes_since t (Table.version t) = Some []);
  (* rollback compensations are writes too *)
  let v2 = Table.version t in
  Table.restore t id [| Value.Int 1 |];
  Alcotest.(check bool) "restore bumps version" true (Table.version t > v2)

let test_changelog_truncation () =
  let t = Table.create (Schema.of_names [ "a" ]) in
  let v0 = Table.version t in
  for i = 1 to 1000 do
    ignore (Table.insert t [| Value.Int i |])
  done;
  Alcotest.(check bool) "truncated past the start" true
    (Table.changes_since t v0 = None);
  (match Table.changes_since t (Table.version t - 1) with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "newest suffix should survive truncation")

let test_changelog_reshape () =
  let t = Table.create (Schema.of_names [ "a"; "b" ]) in
  ignore (Table.insert t [| Value.Int 1; Value.Int 2 |]);
  let v = Table.version t in
  (* a new index can change plan-dependent result order, so it must
     invalidate wholesale, not appear as row changes *)
  Table.add_index t ~positions:[ 0 ];
  Alcotest.(check bool) "new index invalidates" true
    (Table.changes_since t v = None);
  let v' = Table.version t in
  Alcotest.(check bool) "reshape bumps version" true (v' > v);
  Table.clear t;
  Alcotest.(check bool) "clear invalidates" true
    (Table.changes_since t v' = None)

let prop_range_matches_scan =
  let op_gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (int_range (-20) 20))
        (pair (int_range (-20) 20) (int_range (-20) 20)))
  in
  QCheck2.Test.make ~name:"range lookup equals scan filter" ~count:200 op_gen
    (fun (values, (a, b)) ->
      let lo = min a b and hi = max a b in
      let schema = Schema.of_names [ "k" ] in
      let indexed = Table.create schema in
      Table.add_ordered_index indexed ~position:0;
      let plain = Table.create schema in
      List.iter
        (fun v ->
          ignore (Table.insert indexed [| Value.Int v |]);
          ignore (Table.insert plain [| Value.Int v |]))
        values;
      let ids t =
        List.sort Int.compare
          (List.map fst
             (Table.range_lookup t ~position:0
                ~lo:(Ordered_index.Inclusive (Int lo))
                ~hi:(Ordered_index.Inclusive (Int hi))))
      in
      ids indexed = ids plain)

(* --- Properties --- *)

let value_gen =
  let open QCheck2.Gen in
  oneof
    [ return Value.Null;
      map (fun b -> Value.Bool b) bool;
      map (fun i -> Value.Int i) (int_range (-1000) 1000);
      map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 8));
      map (fun d -> Value.Date d) (int_range (-100000) 100000) ]

let prop_value_compare_total =
  QCheck2.Test.make ~name:"Value.compare is a total order"
    ~count:500
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sign x = Stdlib.compare x 0 in
      (* antisymmetry *)
      sign (Value.compare a b) = -sign (Value.compare b a)
      (* transitivity on the <= relation *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
          || Value.compare a c <= 0))

let prop_value_hash_consistent =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_date_roundtrip =
  QCheck2.Test.make ~name:"civil date roundtrip" ~count:1000
    (QCheck2.Gen.int_range (-200000) 200000)
    (fun days ->
      let y, m, d = Value.ymd_of_date days in
      Value.equal (Value.date_of_ymd ~y ~m ~d) (Date days))

let prop_index_matches_scan =
  (* Random inserts/deletes: indexed lookup must equal a full scan. *)
  let op_gen =
    QCheck2.Gen.(
      list_size (int_range 0 120)
        (pair bool (pair (int_range 0 5) (int_range 0 5))))
  in
  QCheck2.Test.make ~name:"index lookup equals scan" ~count:200 op_gen
    (fun ops ->
      let schema = Schema.of_names [ "a"; "b" ] in
      let indexed = Table.create schema in
      Table.add_index indexed ~positions:[ 0 ];
      let plain = Table.create schema in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, (a, b)) ->
          if is_insert then begin
            let row = [| Value.Int a; Value.Int b |] in
            let id = Table.insert indexed row in
            let id' = Table.insert plain row in
            assert (id = id');
            Hashtbl.replace live id ()
          end
          else begin
            (* delete some live row deterministically: smallest id with key a *)
            match Table.lookup plain ~positions:[ 0 ] [ Value.Int a ] with
            | (id, _) :: _ ->
              ignore (Table.delete indexed id);
              ignore (Table.delete plain id);
              Hashtbl.remove live id
            | [] -> ()
          end)
        ops;
      List.for_all
        (fun key ->
          let by_index =
            List.map fst (Table.lookup indexed ~positions:[ 0 ] [ Value.Int key ])
          in
          let by_scan =
            List.map fst (Table.lookup plain ~positions:[ 0 ] [ Value.Int key ])
          in
          by_index = by_scan)
        [ 0; 1; 2; 3; 4; 5 ])

let properties =
  List.map Gen.to_alcotest
    [ prop_value_compare_total;
      prop_value_hash_consistent;
      prop_date_roundtrip;
      prop_index_matches_scan;
      prop_range_matches_scan ]

let () =
  Alcotest.run "storage"
    [ ( "value",
        [ Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "date parse" `Quick test_date_parse;
          Alcotest.test_case "date arithmetic" `Quick test_date_arith;
          Alcotest.test_case "arith errors" `Quick test_arith_errors;
          Alcotest.test_case "of_literal" `Quick test_of_literal ] );
      ( "schema-tuple",
        [ Alcotest.test_case "positions" `Quick test_schema_positions;
          Alcotest.test_case "type checking" `Quick test_tuple_checking;
          Alcotest.test_case "projection" `Quick test_tuple_project ] );
      ( "table",
        [ Alcotest.test_case "insert/get/delete" `Quick test_table_basics;
          Alcotest.test_case "scan order" `Quick test_table_scan_order;
          Alcotest.test_case "update" `Quick test_table_update;
          Alcotest.test_case "restore" `Quick test_table_restore;
          Alcotest.test_case "index lookup" `Quick test_table_index_lookup;
          Alcotest.test_case "index maintenance" `Quick
            test_table_index_update_maintenance;
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "ordered index" `Quick test_ordered_index_range;
          Alcotest.test_case "range lookup" `Quick test_table_range_lookup ] );
      ( "changelog",
        [ Alcotest.test_case "versions and changes" `Quick test_version_changelog;
          Alcotest.test_case "truncation" `Quick test_changelog_truncation;
          Alcotest.test_case "reshape" `Quick test_changelog_reshape ] );
      ("properties", properties) ]
