(* Benchmark harness: regenerates every figure of the paper's
   evaluation (Figure 6 a/b/c), plus ablations over the execution
   model's design choices and bechamel microbenches of the core
   engine operations.

   Times are simulated seconds (see DESIGN.md §2.3): the shapes — who
   wins, scaling trends, crossovers — are the reproduction target, not
   absolute numbers.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig6a fig6c   # some experiments
     BENCH_TXNS=10000 dune exec bench/main.exe # paper-scale run

   With --metrics [FILE.json] (or --metrics-out FILE.json), the Figure
   6 experiments additionally write machine-readable BENCH_fig6{a,b,c}
   .json documents (series plus a per-cell Obs snapshot and latency
   attribution; schema in EXPERIMENTS.md / Ent_obs.Schema) and a final
   Obs snapshot goes to FILE.json (default metrics.json, which is
   gitignored). With --trace-out FILE.json, a dedicated Entangled-T
   cell runs with event logging on and its Perfetto trace is written
   to FILE.json. "validate FILE..." checks BENCH_*.json and trace
   documents against the schema and exits nonzero on the first
   violation — CI's bench-smoke gate. "perfgate FRESH.json
   BASELINE.json [--tolerance 0.30]" compares per-transaction
   throughput per series against a checked-in baseline and exits
   nonzero on a regression beyond the tolerance — CI's perf gate.
   With --certify, every figure cell runs under an online schedule
   certifier (Ent_schedule.Certify) and any violation fails the run.

   --parallel N runs the scale-up experiment: wall-clock time of the
   same workloads on an OCaml-5 domain pool of 1, 2, ..., N domains
   (N up to 16 in the nightly sweep), each point carrying its
   coordination_share, written to BENCH_scaleup.json with --metrics.
   "perfgate --wallclock BENCH_scaleup.json [--min-speedup 1.8]
   [--min-entangled 1.5]" gates the measured NoSocial and Entangled
   scale-up at 4 domains — CI's scaleup job. *)

open Ent_core
open Ent_workload
module Obs = Ent_obs.Obs
module Json = Ent_obs.Json
module Event = Ent_obs.Event
module Attrib = Ent_obs.Attrib

let txns_total =
  match Sys.getenv_opt "BENCH_TXNS" with
  | Some s -> (try int_of_string s with _ -> 2000)
  | None -> 2000

(* --- machine-readable results --- *)

let metrics_enabled = ref false
let metrics_path = ref "metrics.json"

(* --slo FILE: evaluate the specs online while each cell runs. Every
   cell gets a fresh monitor (Obs.reset re-anchors the time-series ring
   between cells) and its verdict lands in the cell's point under
   "slo" — a member that is simply absent when --slo was not given, so
   default bench documents stay byte-identical. *)
let slo_specs : Ent_obs.Slo.spec list option ref = ref None
let slo_failures = ref 0

(* Run one benchmark cell against a clean registry (Obs.reset also
   clears the event log) so the attached snapshot and latency
   attribution measure this cell only. *)
let cell_metrics f =
  Obs.reset ();
  let monitor =
    Option.map
      (fun specs ->
        let t = Ent_obs.Slo.create specs in
        Ent_obs.Slo.attach t;
        t)
      !slo_specs
  in
  let v = f () in
  let slo =
    match monitor with
    | None -> Json.Null
    | Some mon ->
      Ent_obs.Timeseries.flush ();
      Ent_obs.Slo.detach ();
      if not (Ent_obs.Slo.ok mon) then incr slo_failures;
      Ent_obs.Slo.report_json mon
  in
  let attrib =
    if Event.logging () then Attrib.to_json (Event.events ()) else Json.Null
  in
  (v, Obs.snapshot_json (), attrib, slo)

let point ?(extra = []) ~x (time, snap, attrib, slo) =
  Json.Obj
    ([ ("x", Json.Int x); ("time_s", Json.Float time) ]
    @ extra
    @ [ ("metrics", snap) ]
    @ (match attrib with
      | Json.Null -> []
      | a -> [ ("latency_attribution", a) ])
    @ match slo with
      | Json.Null -> []
      | s -> [ ("slo", s) ])

let bench_doc ~figure ~x_label ~unit series =
  Json.Obj
    [
      ("schema_version", Json.Int Ent_obs.Schema.version);
      ("figure", Json.Str figure);
      ("bench_txns", Json.Int txns_total);
      ("x_label", Json.Str x_label);
      ("unit", Json.Str unit);
      ( "series",
        Json.List
          (List.map
             (fun (name, points) ->
               Json.Obj
                 [ ("name", Json.Str name); ("points", Json.List (List.rev !points)) ])
             series) );
    ]

let write_doc ?(unit = "simulated_seconds") ~figure ~x_label series =
  if !metrics_enabled then begin
    let path = Printf.sprintf "BENCH_%s.json" figure in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (bench_doc ~figure ~x_label ~unit series));
        output_char oc '\n');
    Printf.printf "wrote %s\n%!" path
  end

let world_users = 500
let world_cities = 12

(* --- online schedule certification (--certify) ---

   Each figure cell gets its own certifier attached beside any other
   observers; a violation is printed immediately and turns the whole
   bench run's exit code nonzero. The ablations are exempt: weakening
   isolation on purpose produces anomalies. *)

let certify_enabled = ref false
let certify_failures = ref 0

let attach_certifier manager =
  if not !certify_enabled then None
  else begin
    let c = Ent_schedule.Certify.create () in
    Manager.observe manager
      ~on_event:(Ent_schedule.Certify.on_engine_event c)
      ~on_entangle:(Ent_schedule.Certify.on_entangle c);
    Some c
  end

let finish_certifier ~label = function
  | None -> ()
  | Some c ->
    if not (Ent_schedule.Certify.ok c) then begin
      incr certify_failures;
      Printf.eprintf "CERTIFY FAILURE (%s): %s\n%!" label
        (Format.asprintf "%a" Ent_schedule.Certify.pp_report c)
    end

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* --- Figure 6(a): time vs concurrent connections, six workloads --- *)

let run_workload ~connections ~frequency ~transactional kind ~n =
  let config =
    {
      Scheduler.default_config with
      connections;
      trigger = Scheduler.Every_arrivals frequency;
    }
  in
  let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
  let kind_name =
    match kind with
    | Gen.No_social -> "nosocial"
    | Gen.Social -> "social"
    | Gen.Entangled -> "entangled"
  in
  let certifier = attach_certifier world.manager in
  let programs = Gen.batch world ~transactional kind ~n ~tag_base:0 in
  let ids = List.map (Manager.submit world.manager) programs in
  Manager.drain world.manager;
  let committed =
    List.length
      (List.filter
         (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
         ids)
  in
  if committed <> n then
    Printf.eprintf "WARNING: %d/%d committed (%s)\n%!" committed n kind_name;
  finish_certifier
    ~label:
      (Printf.sprintf "%s-%s c=%d" kind_name
         (if transactional then "t" else "q")
         connections)
    certifier;
  Manager.now world.manager

let fig6a_workloads =
  [ ("NoSocial-T", (true, Gen.No_social));
    ("Social-T", (true, Gen.Social));
    ("Entangled-T", (true, Gen.Entangled));
    ("NoSocial-Q", (false, Gen.No_social));
    ("Social-Q", (false, Gen.Social));
    ("Entangled-Q", (false, Gen.Entangled)) ]

let fig6a () =
  heading
    (Printf.sprintf
       "Figure 6(a): total time (simulated s) vs concurrent connections\n\
        %d transactions per cell, run frequency 100" txns_total);
  Printf.printf "%8s %12s %12s %12s %12s %12s %12s\n" "conns" "NoSocial-T"
    "Social-T" "Entangled-T" "NoSocial-Q" "Social-Q" "Entangled-Q";
  let series = List.map (fun (name, _) -> (name, ref [])) fig6a_workloads in
  List.iter
    (fun connections ->
      Printf.printf "%8d" connections;
      List.iter
        (fun (name, (transactional, kind)) ->
          let cell =
            cell_metrics (fun () ->
                run_workload ~connections ~frequency:100 ~transactional kind
                  ~n:txns_total)
          in
          let points = List.assoc name series in
          points := point ~x:connections cell :: !points;
          Printf.printf " %12.2f%!" (let t, _, _, _ = cell in t))
        fig6a_workloads;
      Printf.printf "\n%!")
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  write_doc ~figure:"fig6a" ~x_label:"connections" series

(* --- 2PL vs SI: time vs connections, Social-T plus parked readers ---

   In the run-based execution model, plain transactions execute to
   completion inside a run, so their locks never block anyone; read
   locks only hurt when a transaction {e parks} mid-coordination and
   keeps them across a run boundary (§4). This sweep reproduces that
   case: most transactions are plain Social-T writers (each books a
   row in Reserve), and a fraction are entangled readers that scan
   Reserve — no index, hence a table-S lock — and then coordinate
   with a partner who only arrives in the {e next} block of arrivals.
   Under Strict 2PL every parked reader holds its table-S across the
   run boundary, so the writers behind it block, are aborted at the
   end of the run, and re-execute later (the paper's repool path).
   Snapshot readers take no read locks at all — same begin-stamp
   version-chain reads, write sets validated at commit — so the same
   stream runs without a single repool. Both series run the identical
   program stream; only the per-transaction isolation level differs.
   Runs only when named explicitly ("si"): the default sweep stays
   identical to the pre-MVCC harness. *)

let si_workloads =
  [ ("Social-T 2pl", `All_2pl);
    ("Social-T si", `All_si);
    ("Social-T mixed", `Mixed) ]

(* si_aborts of the most recent cell (the scheduler stat is not an Obs
   counter, so deterministic 2PL snapshots stay unchanged) *)
let last_si_aborts = ref 0

let retag_isolation level (programs : Program.t list) =
  let snap (p : Program.t) =
    Program.make ~label:p.label ~transactional:p.transactional
      ~isolation:Ent_txn.Engine.Snapshot p.ast
  in
  match level with
  | `All_2pl -> programs
  | `All_si -> List.map snap programs
  | `Mixed -> List.mapi (fun i p -> if i land 1 = 1 then snap p else p) programs

(* One parked reader: a full scan of the reservation list (a
   table-level S lock under 2PL — a predicated read would go through
   the lookup path and lock only the matching rows), then coordinate
   with [partner]. It writes nothing, so the pair never self-conflicts
   on its own read lock. *)
let si_reader world ~uid ~partner ~tag =
  Program.of_string ~label:(Printf.sprintf "si-reader-%d-%d" uid tag)
    (Printf.sprintf
       "BEGIN TRANSACTION;\n\
        SELECT fid FROM Reserve;\n\
        SELECT %d, %d, dst AS @destination INTO ANSWER Meet\n\
        WHERE (dst) IN (SELECT destination FROM Flight WHERE source='%s')\n\
        AND (%d, %d, dst) IN ANSWER Meet\n\
        CHOOSE 1;\n\
        COMMIT;"
       uid tag (Travel.hometown world uid) partner tag)

(* The partner half: coordination only, no data read. If the closer
   also scanned Reserve, its table-S would queue FIFO behind the
   blocked writers' IX requests and never be granted — the opener
   would stay unanswered and the whole 2PL pool would livelock. *)
let si_closer world ~uid ~partner ~tag =
  Program.of_string ~label:(Printf.sprintf "si-closer-%d-%d" uid tag)
    (Printf.sprintf
       "BEGIN TRANSACTION;\n\
        SELECT %d, %d, dst AS @destination INTO ANSWER Meet\n\
        WHERE (dst) IN (SELECT destination FROM Flight WHERE source='%s')\n\
        AND (%d, %d, dst) IN ANSWER Meet\n\
        CHOOSE 1;\n\
        COMMIT;"
       uid tag (Travel.hometown world uid) partner tag)

(* The submission stream, in blocks of [frequency] arrivals (one run
   each): every block first closes the reader pairs opened by the
   previous block, opens new ones (only when the next block has room to
   close them), and fills the rest with plain Social-T writers. The
   openers park at the coordination barrier, so under 2PL their
   Reserve table-S blocks every writer behind them until the end of the
   run — abort and repool, the cost 2PL pays and SI does not. *)
let si_stream world ~frequency ~n =
  let readers_per_block = max 1 (frequency / 8) in
  let programs = ref [] in
  let emitted = ref 0 in
  let pair = ref 0 in
  let pending = Queue.create () in
  let push p =
    programs := p :: !programs;
    incr emitted
  in
  while !emitted < n do
    let block_end = min n (!emitted + frequency) in
    while (not (Queue.is_empty pending)) && !emitted < block_end do
      let uid, partner, tag = Queue.pop pending in
      push (si_closer world ~uid ~partner ~tag)
    done;
    if n - block_end >= readers_per_block then
      for _ = 1 to readers_per_block do
        if !emitted < block_end then begin
          let a = 2 * !pair mod world_users
          and b = (2 * !pair + 1) mod world_users in
          let tag = 1_000_000 + !pair in
          incr pair;
          Queue.add (b, a, tag) pending;
          push (si_reader world ~uid:a ~partner:b ~tag)
        end
      done;
    while !emitted < block_end do
      let i = !emitted in
      push
        (Gen.program world ~transactional:true Gen.Social
           ~uid:(i * 13 mod world_users) ~partner:(-1) ~tag:i)
    done
  done;
  List.rev !programs

let run_workload_si ~connections ~frequency ~level ~n =
  let config =
    {
      Scheduler.default_config with
      connections;
      trigger = Scheduler.Every_arrivals frequency;
    }
  in
  let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
  let certifier = attach_certifier world.manager in
  let programs = retag_isolation level (si_stream world ~frequency ~n) in
  let ids = List.map (Manager.submit world.manager) programs in
  Manager.drain world.manager;
  let committed =
    List.length
      (List.filter
         (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
         ids)
  in
  let level_name =
    match level with
    | `All_2pl -> "2pl"
    | `All_si -> "si"
    | `Mixed -> "mixed"
  in
  if committed <> n then
    Printf.eprintf "WARNING: %d/%d committed (social-t %s c=%d)\n%!" committed n
      level_name connections;
  finish_certifier
    ~label:(Printf.sprintf "social-t-%s c=%d" level_name connections)
    certifier;
  last_si_aborts := (Manager.stats world.manager).si_aborts;
  Manager.now world.manager

let si_experiment () =
  heading
    (Printf.sprintf
       "2PL vs SI: total time (simulated s) vs concurrent connections\n\
        Social-T writers + parked entangled readers, %d transactions per \
        cell, run frequency 100"
       txns_total);
  Printf.printf "%8s %14s %14s %14s %10s\n" "conns" "Social-T 2pl"
    "Social-T si" "Social-T mixed" "si aborts";
  let series = List.map (fun (name, _) -> (name, ref [])) si_workloads in
  List.iter
    (fun connections ->
      Printf.printf "%8d" connections;
      let si_aborts = ref 0 in
      List.iter
        (fun (name, level) ->
          let cell =
            cell_metrics (fun () ->
                run_workload_si ~connections ~frequency:100 ~level ~n:txns_total)
          in
          si_aborts := !si_aborts + !last_si_aborts;
          let points = List.assoc name series in
          points := point ~x:connections cell :: !points;
          Printf.printf " %14.2f%!" (let t, _, _, _ = cell in t))
        si_workloads;
      Printf.printf " %10d\n%!" !si_aborts)
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  write_doc ~figure:"si" ~x_label:"connections" series

(* --- Figure 6(b): time vs pending transactions, per run frequency --- *)

let run_pending ~p ~frequency ~n =
  let config =
    {
      Scheduler.default_config with
      connections = 100;
      trigger = Scheduler.Every_arrivals frequency;
    }
  in
  let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
  let certifier = attach_certifier world.manager in
  (* p transactions whose partners never arrive sit in the pool and are
     re-attempted at the start of every subsequent run *)
  let lonely_ids =
    List.map (Manager.submit world.manager) (Gen.lonely world ~n:p ~tag_base:1_000_000)
  in
  let ids =
    List.map (Manager.submit world.manager)
      (Gen.batch world ~transactional:true Gen.Entangled ~n ~tag_base:0)
  in
  Manager.drain world.manager;
  let committed =
    List.length
      (List.filter
         (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
         ids)
  in
  if committed <> n then Printf.eprintf "WARNING: %d/%d committed (p=%d)\n%!" committed n p;
  ignore lonely_ids;
  finish_certifier ~label:(Printf.sprintf "pending p=%d f=%d" p frequency)
    certifier;
  Manager.now world.manager

let fig6b () =
  let n = txns_total in
  heading
    (Printf.sprintf
       "Figure 6(b): total time (simulated s) vs pending transactions p\n\
        %d entangled transactions per cell" n);
  Printf.printf "%8s %12s %12s %12s\n" "p" "f=1" "f=10" "f=50";
  let frequencies = [ 1; 10; 50 ] in
  let series =
    List.map (fun f -> (Printf.sprintf "f=%d" f, ref [])) frequencies
  in
  List.iter
    (fun p ->
      Printf.printf "%8d" p;
      List.iter
        (fun frequency ->
          let cell = cell_metrics (fun () -> run_pending ~p ~frequency ~n) in
          let points = List.assoc (Printf.sprintf "f=%d" frequency) series in
          points := point ~x:p cell :: !points;
          Printf.printf " %12.2f%!" (let t, _, _, _ = cell in t))
        frequencies;
      Printf.printf "\n%!")
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  write_doc ~figure:"fig6b" ~x_label:"pending" series

(* --- Figure 6(c): time vs coordinating-set size, per structure --- *)

let run_structured ~structure ~set_size ~frequency ~total_txns =
  let config =
    {
      Scheduler.default_config with
      connections = 100;
      trigger = Scheduler.Every_arrivals frequency;
    }
  in
  let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
  let certifier = attach_certifier world.manager in
  let n_structures = max 1 (total_txns / set_size) in
  let all_ids = ref [] in
  for k = 0 to n_structures - 1 do
    let programs =
      match structure with
      | `Spoke_hub -> Gen.spoke_hub world ~set_size ~tag_base:(k * 100)
      | `Cycle -> Gen.cycle world ~set_size ~tag_base:(k * 100)
    in
    List.iter
      (fun p -> all_ids := Manager.submit world.manager p :: !all_ids)
      programs
  done;
  Manager.drain world.manager;
  let committed =
    List.length
      (List.filter
         (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
         !all_ids)
  in
  let expected = List.length !all_ids in
  if committed <> expected then
    Printf.eprintf "WARNING: %d/%d committed (%s size %d f %d)\n%!" committed
      expected
      (match structure with
      | `Spoke_hub -> "spoke-hub"
      | `Cycle -> "cycle")
      set_size frequency;
  finish_certifier
    ~label:
      (Printf.sprintf "%s size=%d f=%d"
         (match structure with
         | `Spoke_hub -> "spoke-hub"
         | `Cycle -> "cycle")
         set_size frequency)
    certifier;
  Manager.now world.manager

let fig6c () =
  let total = max 200 (txns_total / 5) in
  heading
    (Printf.sprintf
       "Figure 6(c): total time (simulated s) vs size of coordinating set\n\
        ~%d transactions per cell" total);
  Printf.printf "%8s %16s %16s %16s %16s\n" "size" "Spoke-hub f=10"
    "Spoke-hub f=50" "Cycle f=10" "Cycle f=50";
  let cells =
    [ ("Spoke-hub f=10", (`Spoke_hub, 10)); ("Spoke-hub f=50", (`Spoke_hub, 50));
      ("Cycle f=10", (`Cycle, 10)); ("Cycle f=50", (`Cycle, 50)) ]
  in
  let series = List.map (fun (name, _) -> (name, ref [])) cells in
  List.iter
    (fun set_size ->
      Printf.printf "%8d" set_size;
      List.iter
        (fun (name, (structure, frequency)) ->
          let cell =
            cell_metrics (fun () ->
                run_structured ~structure ~set_size ~frequency ~total_txns:total)
          in
          let points = List.assoc name series in
          points := point ~x:set_size cell :: !points;
          Printf.printf " %16.2f%!" (let t, _, _, _ = cell in t))
        cells;
      Printf.printf "\n%!")
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  write_doc ~figure:"fig6c" ~x_label:"set_size" series

(* --- Scale-up: wall-clock time vs OCaml domains (--parallel) ---

   Unlike the Figure 6 sweeps, this experiment measures real elapsed
   time: each cell runs the scheduler with an [Ent_par.Pool] of
   [domains] domains (1 domain = the deterministic single-domain
   scheduler) and reports wall-clock seconds for the whole
   submit-and-drain, plus the coordination share — the fraction of the
   cell's wall time spent in the grounding+coordination phase
   ([Scheduler.stats.coord_wall_s]). CI's scaleup job gates the
   NoSocial-T and Entangled-T series with "perfgate --wallclock"
   (DESIGN.md §9, EXPERIMENTS.md). *)

let parallel_domains = ref 0

let scaleup_workloads =
  [ ("NoSocial-T", (true, Gen.No_social));
    ("Social-T", (true, Gen.Social));
    ("Entangled-T", (true, Gen.Entangled)) ]

(* Domain counts 1, 2, 4, ... up to the --parallel bound (default 4). *)
let scaleup_domain_counts () =
  let bound = if !parallel_domains > 0 then !parallel_domains else 4 in
  let rec up d = if d >= bound then [ bound ] else d :: up (2 * d) in
  up 1

let run_scaleup ~domains ~transactional kind ~n =
  let runner = if domains > 1 then Some (Ent_par.Pool.create ~domains) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Ent_par.Pool.shutdown runner)
    (fun () ->
      let config =
        {
          Scheduler.default_config with
          connections = 100;
          trigger = Scheduler.Every_arrivals 100;
          runner;
        }
      in
      let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
      let kind_name =
        match kind with
        | Gen.No_social -> "nosocial"
        | Gen.Social -> "social"
        | Gen.Entangled -> "entangled"
      in
      let certifier = attach_certifier world.manager in
      let programs = Gen.batch world ~transactional kind ~n ~tag_base:0 in
      let t0 = Unix.gettimeofday () in
      let ids = List.map (Manager.submit world.manager) programs in
      Manager.drain world.manager;
      let wall = Unix.gettimeofday () -. t0 in
      let stats = Scheduler.stats (Manager.scheduler world.manager) in
      let coord_share =
        if wall > 0.0 then
          Float.max 0.0 (Float.min 1.0 (stats.coord_wall_s /. wall))
        else 0.0
      in
      let committed =
        List.length
          (List.filter
             (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
             ids)
      in
      if committed <> n then
        Printf.eprintf "WARNING: %d/%d committed (%s d=%d)\n%!" committed n
          kind_name domains;
      finish_certifier
        ~label:
          (Printf.sprintf "%s-%s d=%d" kind_name
             (if transactional then "t" else "q")
             domains)
        certifier;
      (wall, coord_share))

let scaleup () =
  let n = txns_total in
  heading
    (Printf.sprintf
       "Scale-up: wall-clock seconds vs OCaml domains\n\
        %d transactions per cell, 100 connections, run frequency 100" n);
  (* Event logging serializes every emission on the ring mutex, which
     would distort a wall-clock scaling measurement; scale-up points
     carry the per-cell Obs snapshot but no latency attribution. *)
  let was_logging = Event.logging () in
  Event.set_logging false;
  Printf.printf "%8s %12s %12s %12s\n" "domains" "NoSocial-T" "Social-T"
    "Entangled-T";
  let series = List.map (fun (name, _) -> (name, ref [])) scaleup_workloads in
  let baselines = Hashtbl.create 4 in
  let shares = Hashtbl.create 16 in
  let counts = scaleup_domain_counts () in
  List.iter
    (fun domains ->
      Printf.printf "%8d" domains;
      List.iter
        (fun (name, (transactional, kind)) ->
          let (t, share), snap, attrib, slo =
            cell_metrics (fun () -> run_scaleup ~domains ~transactional kind ~n)
          in
          let points = List.assoc name series in
          points :=
            point ~x:domains
              ~extra:[ ("coordination_share", Json.Float share) ]
              (t, snap, attrib, slo)
            :: !points;
          if domains = 1 then Hashtbl.replace baselines name t;
          Hashtbl.replace shares (name, domains) share;
          Printf.printf " %11.3f%!" t)
        scaleup_workloads;
      Printf.printf "\n%!")
    counts;
  let top = List.fold_left max 1 counts in
  if top > 1 then begin
    Printf.printf "%8s" "speedup";
    List.iter
      (fun (name, points) ->
        let t1 = Hashtbl.find baselines name in
        let t_top =
          List.find_map
            (fun p ->
              match (Json.member "x" p, Json.member "time_s" p) with
              | Some (Json.Int x), Some t when x = top -> Json.to_float_opt t
              | _ -> None)
            !points
        in
        match t_top with
        | Some t -> Printf.printf " %10.2fx%!" (t1 /. t)
        | None -> Printf.printf " %11s%!" "-")
      series;
    Printf.printf "   (1 -> %d domains)\n%!" top
  end;
  (* Coordination share of each cell's wall time (the full series is
     the per-point coordination_share member in BENCH_scaleup.json). *)
  Printf.printf "%8s" "c-share";
  List.iter
    (fun (name, _) ->
      match Hashtbl.find_opt shares (name, top) with
      | Some s -> Printf.printf " %10.1f%%%!" (100.0 *. s)
      | None -> Printf.printf " %11s%!" "-")
    scaleup_workloads;
  Printf.printf "   (at %d domains)\n%!" top;
  Event.set_logging was_logging;
  write_doc ~unit:"wall_clock_seconds" ~figure:"scaleup" ~x_label:"domains"
    series

(* --- Ablations over the design choices of §4 --- *)

let ablation_isolation () =
  heading
    "Ablation: isolation mechanisms (entangled workload, 100 connections)\n\
     time + anomaly exposure per isolation level; one partner in twenty\n\
     rolls back after coordinating";
  let n = max 200 (txns_total / 5) in
  Printf.printf "%22s %12s %10s   %s\n" "isolation" "time (s)" "commits" "anomalies observed";
  List.iter
    (fun (name, isolation) ->
      let config =
        {
          Scheduler.default_config with
          connections = 100;
          isolation;
          trigger = Scheduler.Every_arrivals 20;
        }
      in
      let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
      let recorder = Ent_schedule.Recorder.create () in
      Ent_txn.Engine.set_on_event (Manager.engine world.manager)
        (Some (Ent_schedule.Recorder.on_engine_event recorder));
      Scheduler.set_on_entangle (Manager.scheduler world.manager)
        (Some
           (fun ~event participants ->
             Ent_schedule.Recorder.on_entangle recorder ~event participants));
      let programs = Gen.batch world ~transactional:true Gen.Entangled ~n ~tag_base:0 in
      let programs =
        List.mapi
          (fun i (p : Program.t) ->
            if i mod 20 = 1 then
              (* partner variant that rolls back after coordinating *)
              let ast : Ent_sql.Ast.program =
                { p.ast with
                  body =
                    List.filteri (fun j _ -> j < 2) p.ast.body
                    @ [ (Ent_sql.Ast.Rollback, Ent_sql.Ast.no_pos) ] }
              in
              Program.make ~label:(p.label ^ "-abort") ast
            else p)
          programs
      in
      let ids = List.map (Manager.submit world.manager) programs in
      Manager.drain world.manager;
      let commits =
        List.length
          (List.filter
             (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
             ids)
      in
      let history = Ent_schedule.Recorder.completed_history recorder in
      let anomalies =
        Format.asprintf "%a" Ent_schedule.Anomaly.pp_report
          (Ent_schedule.Anomaly.report history)
      in
      Printf.printf "%22s %12.2f %10d   %s\n%!" name
        (Manager.now world.manager) commits anomalies)
    [ ("full", Isolation.full);
      ("no-group-commit", Isolation.no_group_commit);
      ("no-grounding-locks", Isolation.no_grounding_locks);
      ("read-uncommitted", Isolation.read_uncommitted) ]

let ablation_run_frequency () =
  heading
    "Ablation: run frequency on a fully-paired entangled workload\n\
     (complements Figure 6(b): without pending transactions, higher\n\
     frequency costs little)";
  let n = max 200 (txns_total / 5) in
  Printf.printf "%8s %12s %8s\n" "f" "time (s)" "runs";
  List.iter
    (fun frequency ->
      let config =
        {
          Scheduler.default_config with
          connections = 100;
          trigger = Scheduler.Every_arrivals frequency;
        }
      in
      let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
      let ids =
        List.map (Manager.submit world.manager)
          (Gen.batch world ~transactional:true Gen.Entangled ~n ~tag_base:0)
      in
      Manager.drain world.manager;
      ignore ids;
      let s = Manager.stats world.manager in
      Printf.printf "%8d %12.2f %8d\n%!" frequency
        (Manager.now world.manager) s.runs)
    [ 1; 2; 5; 10; 20; 50 ]

let ablation_coordination_search () =
  heading
    "Ablation: coordination search cost vs number of concurrent pairs\n\
     (wall-clock microseconds per Coordinate.evaluate call)";
  let cat = Ent_storage.Catalog.create () in
  let flights =
    Ent_storage.Catalog.create_table cat "Flights"
      (Ent_storage.Schema.make
         [ { name = "fno"; ty = T_int }; { name = "dest"; ty = T_str } ])
  in
  for i = 1 to 10 do
    ignore
      (Ent_storage.Table.insert flights
         [| Ent_storage.Value.Int i; Ent_storage.Value.Str "LA" |])
  done;
  let access = Ent_sql.Eval.direct_access cat in
  let env = Ent_sql.Eval.fresh_env () in
  let query me partner =
    let src =
      Printf.sprintf
        "SELECT '%s', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
         Flights WHERE dest='LA') AND ('%s', fno) IN ANSWER R CHOOSE 1"
        me partner
    in
    match Ent_sql.Parser.parse_stmt src with
    | Ent_sql.Ast.Entangled e -> Ent_entangle.Translate.of_ast ~env e
    | _ -> assert false
  in
  Printf.printf "%8s %16s\n" "pairs" "us per call";
  List.iter
    (fun pairs ->
      let entries =
        List.concat
          (List.init pairs (fun k ->
               let a = Printf.sprintf "u%da" k and b = Printf.sprintf "u%db" k in
               let qa = query a b and qb = query b a in
               [ (2 * k, qa, Ent_entangle.Ground.compute ~access ~env qa);
                 ((2 * k) + 1, qb, Ent_entangle.Ground.compute ~access ~env qb) ]))
      in
      let t0 = Unix.gettimeofday () in
      let iters = 50 in
      for _ = 1 to iters do
        ignore (Ent_entangle.Coordinate.evaluate entries)
      done;
      let t1 = Unix.gettimeofday () in
      Printf.printf "%8d %16.1f\n%!" pairs
        (1e6 *. (t1 -. t0) /. float_of_int iters))
    [ 1; 5; 10; 25; 50; 100 ]

let ablation_evaluation_strategy () =
  heading
    "Ablation: entangled query evaluation strategy\n\
     goal-driven search (Coordinate) vs combined-query compilation [6]\n\
     (same declarative semantics; wall-clock differs)";
  let n = max 200 (txns_total / 5) in
  Printf.printf "%12s %14s %14s %10s\n" "strategy" "sim time (s)"
    "wall clock (s)" "commits";
  List.iter
    (fun (name, evaluation) ->
      let config =
        {
          Scheduler.default_config with
          connections = 100;
          trigger = Scheduler.Every_arrivals 20;
          evaluation;
        }
      in
      let world = Travel.build ~users:world_users ~cities:world_cities ~config () in
      let t0 = Unix.gettimeofday () in
      let ids =
        List.map (Manager.submit world.manager)
          (Gen.batch world ~transactional:true Gen.Entangled ~n ~tag_base:0)
      in
      Manager.drain world.manager;
      let wall = Unix.gettimeofday () -. t0 in
      let commits =
        List.length
          (List.filter
             (fun id -> Manager.outcome world.manager id = Some Scheduler.Committed)
             ids)
      in
      Printf.printf "%12s %14.2f %14.3f %10d\n%!" name
        (Manager.now world.manager) wall commits)
    [ ("search", Scheduler.Search); ("combined", Scheduler.Combined) ]

(* --- bechamel microbenches --- *)

let microbenches () =
  heading "Microbenches (bechamel, wall-clock per operation)";
  let open Bechamel in
  let open Toolkit in
  let mickey_src =
    "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\n\
     SELECT 'Mickey', fno AS @fno INTO ANSWER R\n\
     WHERE (fno) IN (SELECT fno FROM Flights WHERE dest='LA')\n\
     AND ('Minnie', fno) IN ANSWER R CHOOSE 1;\n\
     INSERT INTO Bookings VALUES ('Mickey', @fno);\n\
     COMMIT;"
  in
  let ground_fixture () =
    let cat = Ent_storage.Catalog.create () in
    let flights =
      Ent_storage.Catalog.create_table cat "Flights"
        (Ent_storage.Schema.make
           [ { name = "fno"; ty = T_int }; { name = "dest"; ty = T_str } ])
    in
    for i = 1 to 50 do
      ignore
        (Ent_storage.Table.insert flights
           [| Ent_storage.Value.Int i; Ent_storage.Value.Str "LA" |])
    done;
    let env = Ent_sql.Eval.fresh_env () in
    let query =
      match
        Ent_sql.Parser.parse_stmt
          "SELECT 'M', fno INTO ANSWER R WHERE (fno) IN (SELECT fno FROM \
           Flights WHERE dest='LA') AND ('N', fno) IN ANSWER R CHOOSE 1"
      with
      | Ent_sql.Ast.Entangled e -> Ent_entangle.Translate.of_ast ~env e
      | _ -> assert false
    in
    (Ent_sql.Eval.direct_access cat, env, query)
  in
  let access, genv, gquery = ground_fixture () in
  let lock_bench () =
    let lm = Ent_txn.Lock.create () in
    for txn = 1 to 20 do
      ignore (Ent_txn.Lock.request lm ~txn (Ent_txn.Lock.Table "T") S);
      ignore (Ent_txn.Lock.request lm ~txn (Ent_txn.Lock.Row ("T", txn)) X)
    done;
    for txn = 1 to 20 do
      ignore (Ent_txn.Lock.release_all lm ~txn)
    done
  in
  let wal_bench () =
    let wal = Ent_txn.Wal.create () in
    for txn = 1 to 20 do
      ignore (Ent_txn.Wal.append wal (Ent_txn.Wal.Begin txn));
      ignore
        (Ent_txn.Wal.append wal
           (Ent_txn.Wal.Write
              { txn; table = "T"; row = txn; before = None;
                after = Some [| Ent_storage.Value.Int txn |] }));
      ignore (Ent_txn.Wal.append wal (Ent_txn.Wal.Commit txn))
    done
  in
  let fig6a_cell () =
    ignore
      (run_workload ~connections:10 ~frequency:20 ~transactional:true
         Gen.Entangled ~n:100)
  in
  let fig6b_cell () = ignore (run_pending ~p:10 ~frequency:10 ~n:100) in
  let fig6c_cell () =
    ignore (run_structured ~structure:`Cycle ~set_size:5 ~frequency:10 ~total_txns:50)
  in
  let tests =
    Test.make_grouped ~name:"youtopia"
      [ Test.make ~name:"parse-entangled-txn"
          (Staged.stage (fun () -> ignore (Ent_sql.Parser.parse_program mickey_src)));
        Test.make ~name:"ground-50-flights"
          (Staged.stage (fun () ->
               ignore (Ent_entangle.Ground.compute ~access ~env:genv gquery)));
        Test.make ~name:"lock-20txn-cycle" (Staged.stage lock_bench);
        Test.make ~name:"wal-60-records" (Staged.stage wal_bench);
        Test.make ~name:"fig6a-cell-100txn" (Staged.stage fig6a_cell);
        Test.make ~name:"fig6b-cell-100txn" (Staged.stage fig6b_cell);
        Test.make ~name:"fig6c-cell-50txn" (Staged.stage fig6c_cell) ]
  in
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] tests
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Printf.printf "%-40s %16s\n" "benchmark" "ns per run";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let ns =
           match Bechamel.Analyze.OLS.estimates ols with
           | Some (x :: _) -> x
           | _ -> nan
         in
         Printf.printf "%-40s %16.1f\n%!" name ns)

(* --- perf gate ---

   Compare a fresh BENCH_fig6*.json against a checked-in baseline and
   fail on throughput regressions. Runs at different BENCH_TXNS are
   comparable because cells are homogeneous: time per transaction is
   the unit, throughput its inverse. Per-series we compare the mean
   per-transaction throughput over the points both documents share;
   the tolerance absorbs scale effects (cache warm-up, pool mixing). *)

let load_json path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Json.of_string (In_channel.input_all ic))

let perfgate ~tolerance ~fresh ~baseline =
  let load = load_json in
  let series_of doc =
    let txns =
      match Json.member "bench_txns" doc with
      | Some t -> Option.value ~default:1 (Json.to_int_opt t)
      | None -> 1
    in
    (* fig6c cells run max(200, BENCH_TXNS/5) transactions (see
       [fig6c]), not BENCH_TXNS; use the effective per-cell count so
       smoke runs compare against paper-scale baselines on honest
       per-transaction throughput. *)
    let txns =
      match Json.member "figure" doc with
      | Some (Json.Str "fig6c") -> max 200 (txns / 5)
      | _ -> txns
    in
    match Json.member "series" doc with
    | Some (Json.List series) ->
      List.filter_map
        (fun s ->
          match Json.member "name" s, Json.member "points" s with
          | Some (Json.Str name), Some (Json.List points) ->
            let points =
              List.filter_map
                (fun p ->
                  match Json.member "x" p, Json.member "time_s" p with
                  | Some x, Some t -> (
                    match Json.to_int_opt x, Json.to_float_opt t with
                    | Some x, Some t when t > 0.0 ->
                      (* per-transaction throughput (txn / simulated s) *)
                      Some (x, float_of_int txns /. t)
                    | _ -> None)
                  | _ -> None)
                points
            in
            Some (name, points)
          | _ -> None)
        series
    | _ -> []
  in
  let fresh_doc = load fresh and baseline_doc = load baseline in
  let fresh_series = series_of fresh_doc
  and baseline_series = series_of baseline_doc in
  let failed = ref false in
  List.iter
    (fun (name, base_points) ->
      match List.assoc_opt name fresh_series with
      | None ->
        Printf.eprintf "perfgate: series %s missing from %s\n%!" name fresh;
        failed := true
      | Some fresh_points ->
        let shared =
          List.filter_map
            (fun (x, base_tp) ->
              Option.map
                (fun fresh_tp -> (base_tp, fresh_tp))
                (List.assoc_opt x fresh_points))
            base_points
        in
        if shared = [] then begin
          Printf.eprintf "perfgate: series %s shares no points with baseline\n%!"
            name;
          failed := true
        end
        else begin
          let mean sel =
            List.fold_left (fun acc p -> acc +. sel p) 0.0 shared
            /. float_of_int (List.length shared)
          in
          let base_mean = mean fst and fresh_mean = mean snd in
          let ratio = fresh_mean /. base_mean in
          let verdict = ratio >= 1.0 -. tolerance in
          Printf.printf "%-16s baseline %10.2f txn/s  fresh %10.2f txn/s  %+6.1f%%  %s\n%!"
            name base_mean fresh_mean
            ((ratio -. 1.0) *. 100.0)
            (if verdict then "ok" else "REGRESSION");
          if not verdict then failed := true
        end)
    baseline_series;
  if baseline_series = [] then begin
    Printf.eprintf "perfgate: no series found in %s\n%!" baseline;
    failed := true
  end;
  exit (if !failed then 1 else 0)

(* perfgate --wallclock: gate the measured multicore scale-up of a
   BENCH_scaleup.json document, for both the NoSocial-T series —
   embarrassingly parallel at the DB-lock level, so the honest measure
   of scheduler overhead ([min_speedup]) — and the Entangled-T series,
   whose scaling depends on the partitioned parallel matcher
   ([min_entangled]); Social-T is reported for information only. The
   gate is taken at 4 domains when the sweep has a 4-domain point
   (otherwise at the top measured count): CI runners have 4 vCPUs, so
   points beyond 4 from the 1–16 nightly sweep are informational. *)
let perfgate_wallclock ~min_speedup ~min_entangled ~file =
  let doc = load_json file in
  let series =
    match Json.member "series" doc with
    | Some (Json.List series) ->
      List.filter_map
        (fun s ->
          match (Json.member "name" s, Json.member "points" s) with
          | Some (Json.Str name), Some (Json.List points) ->
            Some
              ( name,
                List.filter_map
                  (fun p ->
                    match
                      ( Option.bind (Json.member "x" p) Json.to_int_opt,
                        Option.bind (Json.member "time_s" p) Json.to_float_opt
                      )
                    with
                    | Some x, Some t when t > 0.0 -> Some (x, t)
                    | _ -> None)
                  points )
          | _ -> None)
        series
    | _ -> []
  in
  let failed = ref false in
  let gates = [ ("NoSocial-T", min_speedup); ("Entangled-T", min_entangled) ] in
  List.iter
    (fun (name, points) ->
      let threshold = List.assoc_opt name gates in
      let gated = threshold <> None in
      match List.assoc_opt 1 points with
      | None ->
        Printf.eprintf "perfgate: series %s has no 1-domain point in %s\n%!"
          name file;
        if gated then failed := true
      | Some t1 ->
        let top = List.fold_left (fun acc (x, _) -> max acc x) 1 points in
        let gate_x = if List.mem_assoc 4 points then 4 else top in
        if gated && top = 1 then begin
          Printf.eprintf
            "perfgate: series %s has no multi-domain point in %s\n%!" name file;
          failed := true
        end;
        List.iter
          (fun (x, t) ->
            if x > 1 then begin
              let speedup = t1 /. t in
              let verdict =
                match threshold with
                | Some min_x when x = gate_x ->
                  if speedup >= min_x then "ok" else "TOO SLOW"
                | _ -> "(info)"
              in
              Printf.printf
                "%-14s %d -> %d domains: %8.3fs -> %8.3fs  speedup %5.2fx  %s\n%!"
                name 1 x t1 t speedup verdict;
              match threshold with
              | Some min_x when x = gate_x && speedup < min_x -> failed := true
              | _ -> ()
            end)
          (List.sort compare points))
    series;
  List.iter
    (fun (gate_series, _) ->
      if not (List.mem_assoc gate_series series) then begin
        Printf.eprintf "perfgate: series %s missing from %s\n%!" gate_series
          file;
        failed := true
      end)
    gates;
  if !failed then
    Printf.eprintf
      "perfgate: wall-clock scale-up below the gate (NoSocial-T %.2fx, \
       Entangled-T %.2fx)\n\
       %!"
      min_speedup min_entangled;
  exit (if !failed then 1 else 0)

(* perfgate --si: gate the 2PL-vs-SI comparison of a BENCH_si.json
   document. Snapshot isolation drops the read locks, so on Social-T
   it must be at least as fast as Strict 2PL (mean per-transaction
   throughput over the shared sweep points, with [tolerance] slack);
   the mixed series is reported for information only. *)

let perfgate_si ~tolerance ~file =
  let doc = load_json file in
  let series =
    match Json.member "series" doc with
    | Some (Json.List series) ->
      List.filter_map
        (fun s ->
          match (Json.member "name" s, Json.member "points" s) with
          | Some (Json.Str name), Some (Json.List points) ->
            Some
              ( name,
                List.filter_map
                  (fun p ->
                    match
                      ( Option.bind (Json.member "x" p) Json.to_int_opt,
                        Option.bind (Json.member "time_s" p) Json.to_float_opt
                      )
                    with
                    | Some x, Some t when t > 0.0 -> Some (x, t)
                    | _ -> None)
                  points )
          | _ -> None)
        series
    | _ -> []
  in
  let mean_over shared sel =
    List.fold_left (fun acc p -> acc +. sel p) 0.0 shared
    /. float_of_int (List.length shared)
  in
  let compare_against base_points (name, points) ~gated =
    let shared =
      List.filter_map
        (fun (x, base_t) ->
          Option.map (fun t -> (base_t, t)) (List.assoc_opt x points))
        base_points
    in
    if shared = [] then begin
      Printf.eprintf "perfgate: series %s shares no points with the 2pl \
                      series in %s\n%!" name file;
      gated
    end
    else begin
      let base_mean = mean_over shared fst and mean = mean_over shared snd in
      (* same transaction count per cell: time ratio = inverse
         throughput ratio *)
      let speedup = base_mean /. mean in
      let ok = speedup >= 1.0 -. tolerance in
      Printf.printf "%-16s 2pl %10.2fs  %s %10.2fs  speedup %5.2fx  %s\n%!"
        name base_mean
        (if gated then "si " else "mix")
        mean speedup
        (if not gated then "(info)" else if ok then "ok" else "SLOWER THAN 2PL");
      gated && not ok
    end
  in
  match List.assoc_opt "Social-T 2pl" series with
  | None ->
    Printf.eprintf "perfgate: series \"Social-T 2pl\" missing from %s\n%!" file;
    exit 1
  | Some base_points ->
    let failed = ref false in
    (match List.assoc_opt "Social-T si" series with
    | None ->
      Printf.eprintf "perfgate: series \"Social-T si\" missing from %s\n%!" file;
      failed := true
    | Some points ->
      if compare_against base_points ("Social-T si", points) ~gated:true then
        failed := true);
    (match List.assoc_opt "Social-T mixed" series with
    | None -> ()
    | Some points ->
      ignore (compare_against base_points ("Social-T mixed", points) ~gated:false));
    if !failed then
      Printf.eprintf "perfgate: snapshot isolation slower than 2PL on \
                      Social-T\n%!";
    exit (if !failed then 1 else 0)

let validate files =
  let ok =
    List.fold_left
      (fun ok file ->
        match Ent_obs.Schema.validate_file file with
        | Ok () ->
          Printf.printf "%s: ok\n%!" file;
          ok
        | Error errs ->
          List.iter (fun e -> Printf.eprintf "%s: %s\n%!" file e) errs;
          false
        | exception Sys_error msg ->
          Printf.eprintf "%s\n%!" msg;
          false)
      true files
  in
  exit (if ok then 0 else 1)

let () =
  match Array.to_list Sys.argv with
  | _ :: "validate" :: files ->
    if files = [] then begin
      prerr_endline "usage: main.exe validate BENCH_*.json...";
      exit 2
    end;
    validate files
  | _ :: "perfgate" :: rest -> (
    match rest with
    | "--wallclock" :: file :: rest ->
      let min_speedup = ref 1.8 in
      let min_entangled = ref 1.5 in
      let rec parse_gate = function
        | "--min-speedup" :: s :: rest ->
          (try min_speedup := float_of_string s with _ -> ());
          parse_gate rest
        | "--min-entangled" :: s :: rest ->
          (try min_entangled := float_of_string s with _ -> ());
          parse_gate rest
        | _ -> ()
      in
      parse_gate rest;
      perfgate_wallclock ~min_speedup:!min_speedup
        ~min_entangled:!min_entangled ~file
    | "--si" :: file :: rest ->
      let tolerance =
        match rest with
        | [ "--tolerance"; t ] -> (try float_of_string t with _ -> 0.0)
        | _ -> 0.0
      in
      perfgate_si ~tolerance ~file
    | fresh :: baseline :: rest ->
      let tolerance =
        match rest with
        | [ "--tolerance"; t ] -> (try float_of_string t with _ -> 0.30)
        | _ -> 0.30
      in
      perfgate ~tolerance ~fresh ~baseline
    | _ ->
      prerr_endline
        "usage: main.exe perfgate FRESH.json BASELINE.json [--tolerance 0.30]\n\
        \       main.exe perfgate --wallclock BENCH_scaleup.json \
         [--min-speedup 1.8] [--min-entangled 1.5]\n\
        \       main.exe perfgate --si BENCH_si.json [--tolerance 0.0]";
      exit 2)
  | _ :: args ->
    let selected = ref [] in
    let trace_out = ref None in
    let rec parse = function
      | [] -> ()
      | "--metrics" :: rest ->
        metrics_enabled := true;
        (match rest with
        | path :: rest' when Filename.check_suffix path ".json" ->
          metrics_path := path;
          parse rest'
        | _ -> parse rest)
      | "--metrics-out" :: path :: rest ->
        metrics_enabled := true;
        metrics_path := path;
        parse rest
      | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        parse rest
      | "--certify" :: rest ->
        certify_enabled := true;
        parse rest
      | "--slo" :: path :: rest -> (
        match Ent_obs.Slo.load path with
        | Ok specs ->
          slo_specs := Some specs;
          (* Before any cell builds its system: lock shards and domain
             pools register their sampling-only gauges at creation. *)
          Ent_obs.Timeseries.enable ();
          parse rest
        | Error msg ->
          Printf.eprintf "bad --slo file %s: %s\n" path msg;
          exit 2)
      | "--parallel" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
          parallel_domains := d;
          parse rest
        | _ ->
          prerr_endline "--parallel expects a positive domain count";
          exit 2)
      | name :: rest ->
        selected := name :: !selected;
        parse rest
    in
    parse args;
    (* --parallel N with no experiment names means "measure scale-up":
       the scale-up sweep is the only experiment the domain pool
       affects, so do not drag a full figure sweep along with it. *)
    if !parallel_domains > 0 && !selected = [] then selected := [ "scaleup" ];
    let run name f =
      if !selected = [] || List.mem name !selected then f ()
    in
    if !metrics_enabled then begin
      (* Size the ring so a whole cell's events fit: attribution only
         covers tasks whose full timeline survived (≈160 events per
         transaction with WAL logging on). *)
      Event.set_capacity (min 2_097_152 (max 262_144 (txns_total * 160)));
      Event.set_logging true
    end;
    Printf.printf "entangled-transactions benchmark harness (BENCH_TXNS=%d)\n"
      txns_total;
    Option.iter
      (fun path ->
        heading "Perfetto trace capture (Entangled-T, 100 connections)";
        let was_logging = Event.logging () in
        Event.set_logging true;
        Event.reset ();
        ignore
          (run_workload ~connections:100 ~frequency:100 ~transactional:true
             Gen.Entangled ~n:(min txns_total 200));
        Ent_obs.Trace.write path (Event.events ());
        Printf.printf "wrote %s (Perfetto / chrome://tracing)\n%!" path;
        Event.reset ();
        Event.set_logging was_logging)
      !trace_out;
    run "fig6a" fig6a;
    (* explicit-only: the default sweep stays identical to pre-MVCC *)
    if List.mem "si" !selected then si_experiment ();
    run "fig6b" fig6b;
    run "fig6c" fig6c;
    run "scaleup" scaleup;
    run "ablation-isolation" ablation_isolation;
    run "ablation-frequency" ablation_run_frequency;
    run "ablation-search" ablation_coordination_search;
    run "ablation-strategy" ablation_evaluation_strategy;
    run "micro" microbenches;
    if !metrics_enabled then begin
      Obs.write_snapshot !metrics_path;
      Printf.printf "wrote %s (final-phase Obs snapshot)\n%!" !metrics_path
    end;
    if !slo_specs <> None then
      if !slo_failures = 0 then Printf.printf "slo: all cells ok\n%!"
      else begin
        Printf.printf "slo: %d cell(s) breached\n%!" !slo_failures;
        exit 1
      end;
    if !certify_enabled then
      if !certify_failures = 0 then
        Printf.printf "certify: all cells ok\n%!"
      else begin
        Printf.printf "certify: %d cell(s) FAILED\n%!" !certify_failures;
        exit 1
      end
  | [] -> ()
