(** Heap tables: rows addressed by dense integer row ids, with
    maintained hash indexes.

    Row ids are assigned in insertion order and never reused, which
    gives deterministic scan order — important for reproducible
    experiment runs and for the deterministic-evaluation assumption the
    paper's serializability proof relies on (§C.1). *)

type t

type row_id = int

(** Concurrent mode, set by the scheduler while a domain pool is
    active: mutators take a per-table mutex and lazy read paths
    materialize their result under it (an IS-locked index probe may
    otherwise race a compatible IX writer's index maintenance). Off —
    the default — every path is the original lock-free lazy code, so
    deterministic runs are bit-identical to the pre-parallel engine.
    Global, not per-table: flip it only around a parallel run. *)
val set_concurrent : bool -> unit

(** Versioned mode, set by the scheduler once a snapshot-isolation
    transaction has been submitted: every row mutation additionally
    pushes a writer-tagged before-image onto the row's version chain,
    enabling the [_at] snapshot read paths below. Off — the default —
    chains are never touched and the table behaves exactly as the
    unversioned engine (deterministic 2PL runs stay bit-identical).
    Global, like {!set_concurrent}. *)
val set_versioned : bool -> unit

(** Whether versioned mode is currently on. *)
val versioned_enabled : unit -> bool

(** One committed-or-not physical write, as seen by the changelog:
    insert = [None -> Some], delete = [Some -> None], update = both. *)
type change = {
  c_before : Tuple.t option;
  c_after : Tuple.t option;
}

val create : ?name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

(** Monotonic write version: bumped by every row mutation (including
    rollback compensations) and by structural changes (new indexes,
    {!clear}). Equal versions imply an identical visible table state. *)
val version : t -> int

(** [changes_since t v] is the list of row changes applied after
    version [v] (any order), or [None] when the bounded changelog has
    been truncated past [v] or a structural change intervened — the
    caller must then assume everything changed. [Some []] iff the table
    is untouched since [v]. *)
val changes_since : t -> int -> change list option

(** [insert t row] checks the row against the schema and returns its
    fresh row id. [writer] tags the version-chain entry in versioned
    mode (0 — the default — is bootstrap/recovery, visible to every
    snapshot) and is ignored otherwise; likewise for the other
    mutators below. *)
val insert : ?writer:int -> t -> Tuple.t -> row_id

(** [get t id] is [Some row] for a live row, [None] for a deleted or
    never-assigned id. *)
val get : t -> row_id -> Tuple.t option

(** [delete t id] removes a live row and returns its old value. *)
val delete : ?writer:int -> t -> row_id -> Tuple.t option

(** [update t id row] replaces a live row, maintaining indexes, and
    returns the old value. *)
val update : ?writer:int -> t -> row_id -> Tuple.t -> Tuple.t option

(** [restore t id row] re-inserts a row under a specific id (used by
    transaction rollback and recovery). The id must be unoccupied but
    may be below the current high-water mark. *)
val restore : ?writer:int -> t -> row_id -> Tuple.t -> unit

(** Live row count. *)
val cardinal : t -> int

(** [iter f t] applies [f] to live rows in ascending row-id order. *)
val iter : (row_id -> Tuple.t -> unit) -> t -> unit

val fold : (row_id -> Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> (row_id * Tuple.t) list

(** Lazy scan in ascending row-id order; no intermediate list. The
    high-water mark is captured at creation, so rows inserted during
    iteration are not observed. Row-read metrics are charged per
    element consumed; consume each sequence at most once. *)
val to_seq : t -> (row_id * Tuple.t) Seq.t

(** [add_index t ~positions] creates (and backfills) a hash index; a
    second call for the same positions is a no-op. *)
val add_index : t -> positions:int list -> unit

(** [add_ordered_index t ~position] creates (and backfills) an ordered
    index on one column, enabling {!range_lookup}. Idempotent. *)
val add_ordered_index : t -> position:int -> unit

(** [range_lookup t ~position ~lo ~hi] returns the live rows whose
    column at [position] falls in the interval, using an ordered index
    when one exists and a scan otherwise. Rows are in ascending
    (key, id) order when indexed, id order otherwise. *)
val range_lookup :
  t ->
  position:int ->
  lo:Ordered_index.bound ->
  hi:Ordered_index.bound ->
  (row_id * Tuple.t) list

(** Lazy {!range_lookup}; same caveats as {!to_seq}. *)
val range_lookup_seq :
  t ->
  position:int ->
  lo:Ordered_index.bound ->
  hi:Ordered_index.bound ->
  (row_id * Tuple.t) Seq.t

(** True when an ordered index exists on this column. *)
val has_ordered_index : t -> position:int -> bool

(** [lookup t ~positions key] uses an index on [positions] when one
    exists, else scans. Returns matching (id, row) pairs in id order. *)
val lookup : t -> positions:int list -> Value.t list -> (row_id * Tuple.t) list

(** Lazy {!lookup}; same caveats as {!to_seq}. Probes are canonicalized
    to sorted column positions, so WHERE-clause column order does not
    affect index discovery. *)
val lookup_seq :
  t -> positions:int list -> Value.t list -> (row_id * Tuple.t) Seq.t

(** Remove all rows (indexes kept, row ids keep growing). Version
    chains are dropped too. *)
val clear : t -> unit

(** {2 Snapshot reads (versioned mode)}

    [visible w] decides whether writer [w]'s effects belong to the
    caller's snapshot; the row state is reconstructed by undoing every
    invisible write along the version chain (newest first). These
    paths never consult indexes — a deleted slot may still carry a
    version some snapshot sees — and charge the usual scan/row-read
    metrics per element consumed. *)

(** The row as the snapshot sees it, or [None] when no visible version
    exists. *)
val read_at : t -> row_id -> visible:(int -> bool) -> Tuple.t option

(** Snapshot scan in ascending row-id order, materialized eagerly
    (under the table mutex in concurrent mode). *)
val to_seq_at : t -> visible:(int -> bool) -> (row_id * Tuple.t) Seq.t

(** Snapshot {!lookup_seq}: filter-scan over the visible rows (probes
    canonicalized like the live path, indexes bypassed). *)
val lookup_seq_at :
  t ->
  positions:int list ->
  Value.t list ->
  visible:(int -> bool) ->
  (row_id * Tuple.t) Seq.t

(** Snapshot {!range_lookup_seq}: filter-scan over the visible rows. *)
val range_lookup_seq_at :
  t ->
  position:int ->
  lo:Ordered_index.bound ->
  hi:Ordered_index.bound ->
  visible:(int -> bool) ->
  (row_id * Tuple.t) Seq.t

(** [gc_versions t ~obsolete] truncates each version chain at the
    newest entry whose writer satisfies [obsolete] (committed before
    the oldest live snapshot, or finished aborting): that entry's
    before-image and everything older are unreachable by any snapshot
    and are dropped. Returns the number of entries dropped (feeds the
    [storage.mvcc.versions_gcd] counter). *)
val gc_versions : t -> obsolete:(int -> bool) -> int

(** Total version-chain entries currently retained (0 once every
    transaction finished and {!gc_versions} ran — the entsim
    quiescence invariant). *)
val chain_entries : t -> int
