module Obs = Ent_obs.Obs

let m_inserts = Obs.counter "storage.table.inserts"
let m_updates = Obs.counter "storage.table.updates"
let m_deletes = Obs.counter "storage.table.deletes"
let m_scans = Obs.counter "storage.table.scans"
let m_rows_read = Obs.counter "storage.table.rows_read"
let m_index_lookups = Obs.counter "storage.index.lookups"
let m_scan_lookups = Obs.counter "storage.index.missing_lookups"
let m_range_lookups = Obs.counter "storage.index.range_lookups"
let m_range_scans = Obs.counter "storage.index.missing_range_lookups"

type row_id = int

type t = {
  name : string;
  schema : Schema.t;
  mutable slots : Tuple.t option array;
  mutable next_id : int;
  mutable live : int;
  mutable indexes : Index.t list;
  mutable ordered : Ordered_index.t list;
}

let create ?(name = "<anon>") schema =
  { name; schema; slots = Array.make 16 None; next_id = 0; live = 0; indexes = []; ordered = [] }

let name t = t.name
let schema t = t.schema

let ensure_capacity t id =
  let n = Array.length t.slots in
  if id >= n then begin
    let cap = max (n * 2) (id + 1) in
    let slots = Array.make cap None in
    Array.blit t.slots 0 slots 0 n;
    t.slots <- slots
  end

let index_insert t row id =
  List.iter (fun ix -> Index.insert ix (Index.key_of ix row) id) t.indexes;
  List.iter
    (fun ox -> Ordered_index.insert ox (Tuple.get row (Ordered_index.position ox)) id)
    t.ordered

let index_remove t row id =
  List.iter (fun ix -> Index.remove ix (Index.key_of ix row) id) t.indexes;
  List.iter
    (fun ox -> Ordered_index.remove ox (Tuple.get row (Ordered_index.position ox)) id)
    t.ordered

let insert t row =
  Obs.incr m_inserts;
  let row = Tuple.of_array t.schema row in
  let id = t.next_id in
  ensure_capacity t id;
  t.slots.(id) <- Some row;
  t.next_id <- id + 1;
  t.live <- t.live + 1;
  index_insert t row id;
  id

let get t id =
  if id < 0 || id >= t.next_id then None else t.slots.(id)

let delete t id =
  match get t id with
  | None -> None
  | Some row ->
    Obs.incr m_deletes;
    t.slots.(id) <- None;
    t.live <- t.live - 1;
    index_remove t row id;
    Some row

let update t id row =
  match get t id with
  | None -> None
  | Some old ->
    Obs.incr m_updates;
    let row = Tuple.of_array t.schema row in
    t.slots.(id) <- Some row;
    index_remove t old id;
    index_insert t row id;
    Some old

let restore t id row =
  if id < 0 then invalid_arg "Table.restore: negative row id";
  let row = Tuple.of_array t.schema row in
  ensure_capacity t id;
  (match t.slots.(id) with
  | Some _ -> invalid_arg "Table.restore: row id occupied"
  | None -> ());
  t.slots.(id) <- Some row;
  if id >= t.next_id then t.next_id <- id + 1;
  t.live <- t.live + 1;
  index_insert t row id

let cardinal t = t.live

let iter f t =
  for id = 0 to t.next_id - 1 do
    match t.slots.(id) with
    | Some row -> f id row
    | None -> ()
  done

let fold f t init =
  let acc = ref init in
  iter (fun id row -> acc := f id row !acc) t;
  !acc

let to_list t =
  Obs.incr m_scans;
  let rows = List.rev (fold (fun id row acc -> (id, row) :: acc) t []) in
  Obs.incr ~n:(List.length rows) m_rows_read;
  rows

let find_index t positions =
  List.find_opt (fun ix -> Index.positions ix = positions) t.indexes

let add_index t ~positions =
  match find_index t positions with
  | Some _ -> ()
  | None ->
    let ix = Index.create ~positions in
    iter (fun id row -> Index.insert ix (Index.key_of ix row) id) t;
    t.indexes <- ix :: t.indexes

let lookup t ~positions key =
  let rows =
    match find_index t positions with
    | Some ix ->
      Obs.incr m_index_lookups;
      List.filter_map
        (fun id -> Option.map (fun row -> (id, row)) (get t id))
        (Index.lookup ix key)
    | None ->
      Obs.incr m_scan_lookups;
      List.rev
        (fold
           (fun id row acc ->
             let projected = List.map (fun i -> Tuple.get row i) positions in
             if List.equal Value.equal projected key then (id, row) :: acc
             else acc)
           t [])
  in
  Obs.incr ~n:(List.length rows) m_rows_read;
  rows

let add_ordered_index t ~position =
  if
    not
      (List.exists (fun ox -> Ordered_index.position ox = position) t.ordered)
  then begin
    let ox = Ordered_index.create ~position in
    iter (fun id row -> Ordered_index.insert ox (Tuple.get row position) id) t;
    t.ordered <- ox :: t.ordered
  end

let has_ordered_index t ~position =
  List.exists (fun ox -> Ordered_index.position ox = position) t.ordered

let range_lookup t ~position ~lo ~hi =
  let rows =
    match
      List.find_opt (fun ox -> Ordered_index.position ox = position) t.ordered
    with
  | Some ox ->
    Obs.incr m_range_lookups;
    List.filter_map
      (fun id -> Option.map (fun row -> (id, row)) (get t id))
      (Ordered_index.range ox ~lo ~hi)
  | None ->
    Obs.incr m_range_scans;
    let keep v =
      (match lo with
      | Ordered_index.Unbounded -> true
      | Ordered_index.Inclusive b -> Value.compare v b >= 0
      | Ordered_index.Exclusive b -> Value.compare v b > 0)
      &&
      match hi with
      | Ordered_index.Unbounded -> true
      | Ordered_index.Inclusive b -> Value.compare v b <= 0
      | Ordered_index.Exclusive b -> Value.compare v b < 0
    in
    List.rev
      (fold
         (fun id row acc ->
           if keep (Tuple.get row position) then (id, row) :: acc else acc)
         t [])
  in
  Obs.incr ~n:(List.length rows) m_rows_read;
  rows

let clear t =
  iter (fun id row -> index_remove t row id) t;
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.live <- 0
