module Obs = Ent_obs.Obs

let m_inserts = Obs.counter "storage.table.inserts"
let m_updates = Obs.counter "storage.table.updates"
let m_deletes = Obs.counter "storage.table.deletes"
let m_scans = Obs.counter "storage.table.scans"
let m_rows_read = Obs.counter "storage.table.rows_read"
let m_index_lookups = Obs.counter "storage.index.lookups"
let m_scan_lookups = Obs.counter "storage.index.missing_lookups"
let m_range_lookups = Obs.counter "storage.index.range_lookups"
let m_range_scans = Obs.counter "storage.index.missing_range_lookups"

type row_id = int

type change = {
  c_before : Tuple.t option;
  c_after : Tuple.t option;
}

(* Per-write changelog entries kept for readers that validate cached
   results (the grounding cache): bounded, newest first, versions
   consecutive within the retained segment. [change_floor] is the
   highest version whose entry has been discarded — a reader that needs
   history from at or below the floor must treat the table as fully
   changed. *)
let changelog_cap = 256

(* Concurrent mode (set while a scheduler runs with a domain pool):
   mutators take the per-table mutex and read paths materialize their
   result under it, because IS (reader) and IX (writer) DB locks are
   compatible, so an index probe can race a concurrent insert's
   Hashtbl mutation. In the default deterministic mode every code path
   below is exactly the pre-parallel one — no locking, same lazy
   sequences — so existing fixtures stay bit-identical. *)
let concurrent = Atomic.make false
let set_concurrent b = Atomic.set concurrent b

(* Versioned mode (set by the scheduler once a snapshot-isolation
   transaction is submitted): every mutation additionally pushes a
   writer-tagged before-image onto the row's version chain, so
   snapshot readers can reconstruct the row as of their begin
   timestamp. Off — the default — no chain is ever touched, keeping
   deterministic 2PL runs bit-identical to the unversioned engine. *)
let versioned = Atomic.make false
let set_versioned b = Atomic.set versioned b
let versioned_enabled () = Atomic.get versioned

(* One link of a row's version chain, newest first: [v_writer] made a
   write whose before-image was [v_before] ([None] = the row did not
   exist). The value *after* the newest entry's write is the live
   slot; the value after entry [i] is entry [i-1]'s before-image. *)
type ventry = {
  v_writer : int;
  v_before : Tuple.t option;
}

type t = {
  name : string;
  schema : Schema.t;
  mutable slots : Tuple.t option array;
  mutable next_id : int;
  mutable live : int;
  (* hash indexes keyed by their (sorted) column positions, ordered
     indexes keyed by their single position: O(1) discovery per
     statement instead of a structural List.find_opt *)
  indexes : (int list, Index.t) Hashtbl.t;
  ordered : (int, Ordered_index.t) Hashtbl.t;
  chains : (int, ventry list) Hashtbl.t;  (* row id -> versions, newest first *)
  version : int Atomic.t;
  mutable changes : (int * change) list;  (* newest first *)
  mutable changes_len : int;
  mutable change_floor : int;
  mu : Mutex.t;
}

let create ?(name = "<anon>") schema =
  {
    name;
    schema;
    slots = Array.make 16 None;
    next_id = 0;
    live = 0;
    indexes = Hashtbl.create 4;
    ordered = Hashtbl.create 4;
    chains = Hashtbl.create 8;
    version = Atomic.make 0;
    changes = [];
    changes_len = 0;
    change_floor = 0;
    mu = Mutex.create ();
  }

let name t = t.name
let schema t = t.schema
let version t = Atomic.get t.version

(* Run [f] under the table mutex in concurrent mode, plainly otherwise.
   Never nested: internal helpers (note_change, iter, get, ...) do not
   lock themselves. *)
let locked t f =
  if Atomic.get concurrent then begin
    Mutex.lock t.mu;
    match f () with
    | v -> Mutex.unlock t.mu; v
    | exception e -> Mutex.unlock t.mu; raise e
  end
  else f ()

let note_change t before after =
  let version = Atomic.get t.version + 1 in
  Atomic.set t.version version;
  if t.changes_len >= changelog_cap then begin
    (* keep the newest half; everything older falls below the floor *)
    let keep = changelog_cap / 2 in
    let kept = ref [] and n = ref 0 and floor = ref t.change_floor in
    List.iter
      (fun ((ver, _) as entry) ->
        if !n < keep then begin
          kept := entry :: !kept;
          incr n
        end
        else if ver > !floor then floor := ver)
      t.changes;
    t.changes <- List.rev !kept;
    t.changes_len <- !n;
    t.change_floor <- !floor
  end;
  t.changes <- (version, { c_before = before; c_after = after }) :: t.changes;
  t.changes_len <- t.changes_len + 1

(* A structural change (new index changing plan-dependent result order,
   bulk clear) conservatively invalidates all history. *)
let note_reshape t =
  Atomic.set t.version (Atomic.get t.version + 1);
  t.changes <- [];
  t.changes_len <- 0;
  t.change_floor <- Atomic.get t.version

let changes_since t since =
  locked t (fun () ->
      if since < t.change_floor then None
      else if since >= Atomic.get t.version then Some []
      else begin
        let rec collect acc = function
          | (ver, change) :: rest when ver > since ->
            collect (change :: acc) rest
          | _ -> acc
        in
        Some (collect [] t.changes)
      end)

(* Called under [locked] by every mutator: in versioned mode, push the
   before-image onto the row's chain, tagged with the writing
   transaction (0 = bootstrap/recovery, visible to everyone). *)
let note_version t ~writer id before =
  if Atomic.get versioned then
    let entries = Option.value ~default:[] (Hashtbl.find_opt t.chains id) in
    Hashtbl.replace t.chains id ({ v_writer = writer; v_before = before } :: entries)

let ensure_capacity t id =
  let n = Array.length t.slots in
  if id >= n then begin
    let cap = max (n * 2) (id + 1) in
    let slots = Array.make cap None in
    Array.blit t.slots 0 slots 0 n;
    t.slots <- slots
  end

let index_insert t row id =
  Hashtbl.iter (fun _ ix -> Index.insert ix (Index.key_of ix row) id) t.indexes;
  Hashtbl.iter
    (fun position ox -> Ordered_index.insert ox (Tuple.get row position) id)
    t.ordered

let index_remove t row id =
  Hashtbl.iter (fun _ ix -> Index.remove ix (Index.key_of ix row) id) t.indexes;
  Hashtbl.iter
    (fun position ox -> Ordered_index.remove ox (Tuple.get row position) id)
    t.ordered

let insert ?(writer = 0) t row =
  Obs.incr m_inserts;
  let row = Tuple.of_array t.schema row in
  locked t (fun () ->
      let id = t.next_id in
      ensure_capacity t id;
      t.slots.(id) <- Some row;
      t.next_id <- id + 1;
      t.live <- t.live + 1;
      index_insert t row id;
      note_change t None (Some row);
      note_version t ~writer id None;
      id)

let get t id =
  if id < 0 || id >= t.next_id then None else t.slots.(id)

let delete ?(writer = 0) t id =
  locked t (fun () ->
      match get t id with
      | None -> None
      | Some row ->
        Obs.incr m_deletes;
        t.slots.(id) <- None;
        t.live <- t.live - 1;
        index_remove t row id;
        note_change t (Some row) None;
        note_version t ~writer id (Some row);
        Some row)

let update ?(writer = 0) t id row =
  locked t (fun () ->
      match get t id with
      | None -> None
      | Some old ->
        Obs.incr m_updates;
        let row = Tuple.of_array t.schema row in
        t.slots.(id) <- Some row;
        index_remove t old id;
        index_insert t row id;
        note_change t (Some old) (Some row);
        note_version t ~writer id (Some old);
        Some old)

let restore ?(writer = 0) t id row =
  if id < 0 then invalid_arg "Table.restore: negative row id";
  let row = Tuple.of_array t.schema row in
  locked t (fun () ->
      ensure_capacity t id;
      (match t.slots.(id) with
      | Some _ -> invalid_arg "Table.restore: row id occupied"
      | None -> ());
      t.slots.(id) <- Some row;
      if id >= t.next_id then t.next_id <- id + 1;
      t.live <- t.live + 1;
      index_insert t row id;
      note_change t None (Some row);
      note_version t ~writer id None)

let cardinal t = t.live

let iter f t =
  for id = 0 to t.next_id - 1 do
    match t.slots.(id) with
    | Some row -> f id row
    | None -> ()
  done

let fold f t init =
  let acc = ref init in
  iter (fun id row -> acc := f id row !acc) t;
  !acc

(* Raw slot iteration as a sequence: lazy, no intermediate list. The
   high-water mark is captured at creation so rows inserted while a
   consumer is mid-iteration are not observed (same snapshot the
   materializing [to_list] gave). Metrics are charged per row actually
   consumed. *)
let seq_slots t =
  let limit = t.next_id in
  let rec go id () =
    if id >= limit then Seq.Nil
    else
      match t.slots.(id) with
      | Some row -> Seq.Cons ((id, row), go (id + 1))
      | None -> go (id + 1) ()
  in
  go 0

let counted seq =
  Seq.map
    (fun pair ->
      Obs.incr m_rows_read;
      pair)
    seq

(* Read-path publication: deterministic mode streams the raw sequence
   lazily (unchanged behaviour); concurrent mode forces it to a list
   under the table mutex, then streams the list. Row-read metrics are
   charged per row consumed in both modes. *)
let published t raw =
  if Atomic.get concurrent then
    counted (List.to_seq (locked t (fun () -> List.of_seq (raw ()))))
  else counted (raw ())

let to_seq t =
  Obs.incr m_scans;
  published t (fun () -> seq_slots t)

let to_list t =
  Obs.incr m_scans;
  locked t (fun () ->
      (* single pass: build the list and count the rows in the same fold *)
      let n = ref 0 in
      let rows =
        List.rev
          (fold
             (fun id row acc ->
               incr n;
               (id, row) :: acc)
             t [])
      in
      Obs.incr ~n:!n m_rows_read;
      rows)

(* Lookups canonicalize the probe to sorted column positions, so a
   WHERE clause listing columns in any order still finds the index. *)
let canonical_probe positions key =
  let pairs = List.combine positions key in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs in
  (List.map fst sorted, List.map snd sorted)

let find_index t positions = Hashtbl.find_opt t.indexes positions

let add_index t ~positions =
  let positions = List.sort_uniq Int.compare positions in
  locked t (fun () ->
      match find_index t positions with
      | Some _ -> ()
      | None ->
        let ix = Index.create ~positions in
        iter (fun id row -> Index.insert ix (Index.key_of ix row) id) t;
        Hashtbl.replace t.indexes positions ix;
        (* a new index changes which access paths serve which reads;
           cached readers must not mix results across the change *)
        note_reshape t)

let lookup_seq t ~positions key =
  let positions, key = canonical_probe positions key in
  match find_index t positions with
  | Some ix ->
    Obs.incr m_index_lookups;
    published t (fun () ->
        Seq.filter_map
          (fun id -> Option.map (fun row -> (id, row)) (get t id))
          (List.to_seq (Index.lookup ix key)))
  | None ->
    Obs.incr m_scan_lookups;
    published t (fun () ->
        Seq.filter
          (fun (_, row) ->
            let projected = List.map (fun i -> Tuple.get row i) positions in
            List.equal Value.equal projected key)
          (seq_slots t))

let lookup t ~positions key = List.of_seq (lookup_seq t ~positions key)

let add_ordered_index t ~position =
  locked t (fun () ->
      if not (Hashtbl.mem t.ordered position) then begin
        let ox = Ordered_index.create ~position in
        iter
          (fun id row -> Ordered_index.insert ox (Tuple.get row position) id)
          t;
        Hashtbl.replace t.ordered position ox;
        note_reshape t
      end)

let has_ordered_index t ~position = Hashtbl.mem t.ordered position

let in_bounds ~lo ~hi v =
  (match lo with
  | Ordered_index.Unbounded -> true
  | Ordered_index.Inclusive b -> Value.compare v b >= 0
  | Ordered_index.Exclusive b -> Value.compare v b > 0)
  &&
  match hi with
  | Ordered_index.Unbounded -> true
  | Ordered_index.Inclusive b -> Value.compare v b <= 0
  | Ordered_index.Exclusive b -> Value.compare v b < 0

let range_lookup_seq t ~position ~lo ~hi =
  match Hashtbl.find_opt t.ordered position with
  | Some ox ->
    Obs.incr m_range_lookups;
    published t (fun () ->
        Seq.filter_map
          (fun id -> Option.map (fun row -> (id, row)) (get t id))
          (List.to_seq (Ordered_index.range ox ~lo ~hi)))
  | None ->
    Obs.incr m_range_scans;
    published t (fun () ->
        Seq.filter
          (fun (_, row) -> in_bounds ~lo ~hi (Tuple.get row position))
          (seq_slots t))

let range_lookup t ~position ~lo ~hi =
  List.of_seq (range_lookup_seq t ~position ~lo ~hi)

(* --- snapshot reads over the version chains ---

   [visible w] decides whether writer [w]'s effects belong to the
   reader's snapshot. The row as the snapshot sees it is recovered by
   walking the chain newest-first: start from the live slot (the value
   after the newest write) and undo every invisible write by stepping
   to its before-image; the first visible writer terminates the walk.
   A row with an empty (or absent) chain is all-committed-long-ago and
   read straight from the slot. *)

let value_at_unlocked t id ~visible =
  let slot = if id < 0 || id >= t.next_id then None else t.slots.(id) in
  match Hashtbl.find_opt t.chains id with
  | None -> slot
  | Some entries ->
    let rec walk value = function
      | [] -> value
      | e :: rest -> if visible e.v_writer then value else walk e.v_before rest
    in
    walk slot entries

let read_at t id ~visible =
  locked t (fun () -> value_at_unlocked t id ~visible)

(* Snapshot scans materialize under the mutex (concurrent mode) or
   plainly (deterministic mode): they must visit deleted slots whose
   chains still hold a version some snapshot can see, so the lazy
   slot sequence does not apply. Indexes reflect the live state only
   and are bypassed; row-read metrics are charged per element
   consumed, as on the live paths. *)
let rows_at t ~visible =
  locked t (fun () ->
      let acc = ref [] in
      for id = t.next_id - 1 downto 0 do
        match value_at_unlocked t id ~visible with
        | Some row -> acc := (id, row) :: !acc
        | None -> ()
      done;
      !acc)

let to_seq_at t ~visible =
  Obs.incr m_scans;
  counted (List.to_seq (rows_at t ~visible))

let lookup_seq_at t ~positions key ~visible =
  let positions, key = canonical_probe positions key in
  Obs.incr m_scan_lookups;
  counted
    (List.to_seq
       (List.filter
          (fun (_, row) ->
            let projected = List.map (fun i -> Tuple.get row i) positions in
            List.equal Value.equal projected key)
          (rows_at t ~visible)))

let range_lookup_seq_at t ~position ~lo ~hi ~visible =
  Obs.incr m_range_scans;
  counted
    (List.to_seq
       (List.filter
          (fun (_, row) -> in_bounds ~lo ~hi (Tuple.get row position))
          (rows_at t ~visible)))

(* [gc_versions t ~obsolete] truncates every chain at the newest entry
   whose writer is obsolete (committed before the oldest live snapshot,
   or finished aborting): such an entry's effects are visible to every
   possible reader, so its before-image — and everything older — can
   never be reached by a chain walk again. *)
let gc_versions t ~obsolete =
  locked t (fun () ->
      let removed = ref 0 in
      let truncated =
        Hashtbl.fold
          (fun id entries acc ->
            let rec keep = function
              | [] -> []
              | e :: _ when obsolete e.v_writer -> []
              | e :: rest -> e :: keep rest
            in
            let kept = keep entries in
            if List.length kept = List.length entries then acc
            else begin
              removed := !removed + List.length entries - List.length kept;
              (id, kept) :: acc
            end)
          t.chains []
      in
      List.iter
        (fun (id, kept) ->
          if kept = [] then Hashtbl.remove t.chains id
          else Hashtbl.replace t.chains id kept)
        truncated;
      !removed)

let chain_entries t =
  locked t (fun () ->
      Hashtbl.fold (fun _ es acc -> acc + List.length es) t.chains 0)

let clear t =
  locked t (fun () ->
      iter (fun id row -> index_remove t row id) t;
      Array.fill t.slots 0 (Array.length t.slots) None;
      Hashtbl.reset t.chains;
      t.live <- 0;
      note_reshape t)
