(** Calibrated operation costs for the deterministic time model.

    The paper measures wall-clock time of a Java middle tier over
    MySQL; we substitute a simulated clock (see DESIGN.md §2.3). Costs
    are in seconds and roughly calibrated to a networked DBMS: a
    statement costs a fixed round trip plus per-row work. Absolute
    values only scale the plots; the figures' shapes come from the
    scheduling structure. *)

type t = {
  c_stmt : float;  (** per-statement overhead (round trip, parse, plan) *)
  c_row : float;  (** per row read or materialized *)
  c_write : float;  (** per row written (log force amortized) *)
  c_begin : float;
  c_commit : float;  (** commit (log flush) *)
  c_abort : float;
  c_ground : float;  (** per grounding enumerated *)
  c_ground_hit : float;
      (** per grounding served from the grounding cache (validation +
          lock touch, no enumeration) *)
  c_coord : float;  (** per query included in a coordination round *)
  c_entangle_answer : float;  (** per answered query (answer delivery) *)
}

(** Defaults used by all experiments. *)
val default : t

(** Scale every cost by a factor (for sensitivity ablations). *)
val scale : float -> t -> t
