type t = {
  c_stmt : float;
  c_row : float;
  c_write : float;
  c_begin : float;
  c_commit : float;
  c_abort : float;
  c_ground : float;
  c_ground_hit : float;
  c_coord : float;
  c_entangle_answer : float;
}

let default =
  {
    c_stmt = 0.4e-3;
    c_row = 0.01e-3;
    c_write = 0.15e-3;
    c_begin = 0.1e-3;
    c_commit = 0.5e-3;
    c_abort = 0.3e-3;
    c_ground = 0.02e-3;
    c_ground_hit = 0.001e-3;
    c_coord = 0.1e-3;
    c_entangle_answer = 0.05e-3;
  }

let scale f t =
  {
    c_stmt = f *. t.c_stmt;
    c_row = f *. t.c_row;
    c_write = f *. t.c_write;
    c_begin = f *. t.c_begin;
    c_commit = f *. t.c_commit;
    c_abort = f *. t.c_abort;
    c_ground = f *. t.c_ground;
    c_ground_hit = f *. t.c_ground_hit;
    c_coord = f *. t.c_coord;
    c_entangle_answer = f *. t.c_entangle_answer;
  }
