/* Monotonic clock for the observability layer.

   OCaml's Unix library exposes only wall-clock time
   (Unix.gettimeofday), which jumps under NTP adjustment and breaks
   span durations and event ordering. This stub reads
   CLOCK_MONOTONIC directly; Clock.wall anchors the monotonic
   timeline to the Unix epoch once per process for trace export. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ent_obs_clock_monotonic(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void) unit;
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
