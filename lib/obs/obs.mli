(** Process-global metrics registry and span tracer.

    Metric names follow ["layer.component.metric"], e.g.
    ["txn.lock.waits"]. Counters, gauges and histograms are interned by
    name: instrumented modules call {!counter}/{!gauge}/{!histogram}
    once at initialization and bump the returned handle on the hot
    path (an [Atomic] fetch-and-add — cheap enough to stay on by
    default). Span tracing is off unless {!set_tracing} enabled it. *)

(** {1 Metrics} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or create the counter registered under this name.
    @raise Invalid_argument if the name holds a different metric type. *)

val incr : ?n:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?alpha:float -> string -> histogram
val observe : histogram -> float -> unit

(** Merged snapshot of the histogram's per-domain stripes — a fresh
    [Hist.t], not a live view. Counters and histograms are striped by
    executing domain so parallel workloads never share a cell; reads
    merge the stripes and are bitwise identical to an unstriped
    implementation when only one domain observed. *)
val hist : histogram -> Hist.t

val counter_name : counter -> string
val gauge_name : gauge -> string
val histogram_name : histogram -> string

val find_counter : string -> int option
val find_gauge : string -> float option
val find_histogram : string -> Hist.t option
val metric_names : unit -> string list

(** {1 Span tracing} *)

type span_record = {
  sp_name : string;
  sp_start : float;
      (** seconds on the monotonic clock ({!Clock.monotonic});
          project with {!Clock.to_wall} for an epoch instant *)
  sp_dur : float;  (** seconds *)
  sp_depth : int;  (** nesting level at entry, outermost = 0 *)
}

val set_tracing : bool -> unit
val tracing : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. With tracing off this is just
    the call; with tracing on, the completed span (exceptional exits
    included) lands in a bounded ring buffer. *)

val spans : unit -> span_record list
(** Completed spans still in the ring, oldest first. *)

val spans_dropped : unit -> int
val set_trace_capacity : int -> unit

(** {1 Snapshots} *)

val snapshot_json : unit -> Json.t
(** All registered metrics:
    [{"counters": {..}, "gauges": {..}, "histograms": {name: summary}}]
    plus ["spans"]/["spans_dropped"] when tracing is on. Keys are
    sorted; every value is finite. *)

val snapshot : unit -> string
(** [Json.to_string (snapshot_json ())]. *)

val write_snapshot : string -> unit
(** Write [snapshot ()] (newline-terminated) to a file. *)

val reset : unit -> unit
(** Zero every metric, clear the trace ring and the {!Event} log, then
    run the {!add_reset_hook} hooks. Registered handles stay valid
    (benchmarks reset between cells). *)

val add_reset_hook : (unit -> unit) -> unit
(** Run [f] at the end of every {!reset}. Used by modules layered on
    the registry (e.g. {!Timeseries} re-anchors its windows) without
    obs depending on them. Hooks cannot be removed. *)
