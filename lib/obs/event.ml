type kind =
  | Begin
  | Ready
  | Commit
  | Abort of { reason : string }
  | Finalize of { outcome : string }
  | Lock_wait of { resource : string; holders : int list }
  | Lock_grant
  | Entangle_block
  | Answer of { empty : bool }
  | Coord_round of { participants : int list }
  | Partner_match of { event : int; peers : int list }
  | Group_commit of { members : int list }
  | Widow_prevention
  | Pool_enter
  | Pool_exit
  | Run_start of { pool : int }
  | Run_end of { dormant : int }
  | Wal_append of { lsn : int }

type t = {
  seq : int;
  t_mono : float;
  t_sim : float;
  run : int;
  txn : int;
  task : int;
  domain : int;
  kind : kind;
}

let enabled = ref false
let set_logging b = enabled := b
let logging () = !enabled

let default_capacity = 65536
let ring : t option array ref = ref (Array.make default_capacity None)
let next = ref 0 (* total emitted since reset; ring slot = next mod cap *)
let run_id = ref 0
let sim_clock : (unit -> float) ref = ref (fun () -> 0.0)
let txn_task : (int, int) Hashtbl.t = Hashtbl.create 256

(* Guards the ring, [next] and the txn→task registry when engine layers
   emit from worker domains. Only taken when logging is on, so the
   off-by-default path stays one branch. *)
let mu = Mutex.create ()

let with_mu f =
  Mutex.lock mu;
  match f () with
  | v -> Mutex.unlock mu; v
  | exception e -> Mutex.unlock mu; raise e

(* --- per-domain buffering (parallel phases) --- *)

(* Inside a parallel phase the scheduler switches the log into buffered
   mode: emissions append to a per-domain shard — capturing their true
   timestamps plus a global order stamp — and the coordinator merges
   them into the ring at the phase boundary. Sorting by the stamp
   reproduces the exact emission order (stamps are taken by an atomic
   fetch-and-add at emission, so causally ordered emissions get
   increasing stamps), which preserves per-txn order and cross-txn
   lock-release/acquire order alike, while the hot path never touches
   the shared ring mutex. *)
let buffered = Atomic.make false
let order = Atomic.make 0
let buf_stripes = 16

type pending = {
  p_order : int;
  p_mono : float;
  p_sim : float;
  p_run : int;
  p_txn : int;
  p_task : int;
  p_domain : int;
  p_kind : kind;
}

let buf_shards : (Mutex.t * pending list ref) array =
  Array.init buf_stripes (fun _ -> (Mutex.create (), ref []))

let set_buffered b = Atomic.set buffered b

let set_capacity n =
  let n = max 1 n in
  ring := Array.make n None;
  next := 0

let reset () =
  Array.fill !ring 0 (Array.length !ring) None;
  next := 0;
  run_id := 0;
  Hashtbl.reset txn_task;
  Atomic.set order 0;
  Array.iter
    (fun (bmu, buf) ->
      Mutex.lock bmu;
      buf := [];
      Mutex.unlock bmu)
    buf_shards

let register_txn ~txn ~task =
  with_mu (fun () -> Hashtbl.replace txn_task txn task)

let task_of_txn txn = with_mu (fun () -> Hashtbl.find_opt txn_task txn)
let set_sim_clock f = sim_clock := f

let new_run () =
  incr run_id;
  !run_id

let current_run () = !run_id

(* Assigns the next ring slot; [mu] must be held. Task resolution
   happens here so buffered events see the complete txn→task registry
   at flush time ([register_txn] always goes straight through [mu]). *)
let commit_event ~t_mono ~t_sim ~run ~txn ~task ~domain kind =
  let task =
    if task >= 0 then task
    else if txn >= 0 then
      match Hashtbl.find_opt txn_task txn with Some t -> t | None -> -1
    else -1
  in
  let e = { seq = !next; t_mono; t_sim; run; txn; task; domain; kind } in
  let r = !ring in
  r.(!next mod Array.length r) <- Some e;
  incr next

let emit ?(txn = -1) ?(task = -1) kind =
  if !enabled then
    if Atomic.get buffered then begin
      let p =
        {
          p_order = Atomic.fetch_and_add order 1;
          p_mono = Clock.monotonic ();
          (* racy read of the sim clock: it only advances on the
             coordinator between phases, so mid-phase reads are stable *)
          p_sim = !sim_clock ();
          p_run = !run_id;
          p_txn = txn;
          p_task = task;
          p_domain = (Domain.self () :> int);
          p_kind = kind;
        }
      in
      let bmu, buf =
        buf_shards.((Domain.self () :> int) land (buf_stripes - 1))
      in
      Mutex.lock bmu;
      buf := p :: !buf;
      Mutex.unlock bmu
    end
    else
      with_mu (fun () ->
          commit_event ~t_mono:(Clock.monotonic ()) ~t_sim:(!sim_clock ())
            ~run:!run_id ~txn ~task ~domain:(Domain.self () :> int) kind)

let flush_buffered () =
  let pending =
    Array.fold_left
      (fun acc (bmu, buf) ->
        Mutex.lock bmu;
        let l = !buf in
        buf := [];
        Mutex.unlock bmu;
        List.rev_append l acc)
      [] buf_shards
  in
  match pending with
  | [] -> ()
  | pending ->
    let sorted =
      List.sort (fun a b -> Int.compare a.p_order b.p_order) pending
    in
    with_mu (fun () ->
        List.iter
          (fun p ->
            commit_event ~t_mono:p.p_mono ~t_sim:p.p_sim ~run:p.p_run
              ~txn:p.p_txn ~task:p.p_task ~domain:p.p_domain p.p_kind)
          sorted)

let dropped () = max 0 (!next - Array.length !ring)

let events () =
  let r = !ring in
  let cap = Array.length r in
  let n = min !next cap in
  let first = !next - n in
  List.init n (fun i ->
      match r.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let recent ?(ids = []) ~last () =
  let all = events () in
  let keep e =
    ids = [] || List.mem e.txn ids || List.mem e.task ids
  in
  let matching = List.filter keep all in
  let n = List.length matching in
  if n <= last then matching
  else List.filteri (fun i _ -> i >= n - last) matching

let kind_name = function
  | Begin -> "begin"
  | Ready -> "ready"
  | Commit -> "commit"
  | Abort _ -> "abort"
  | Finalize _ -> "finalize"
  | Lock_wait _ -> "lock_wait"
  | Lock_grant -> "lock_grant"
  | Entangle_block -> "entangle_block"
  | Answer _ -> "answer"
  | Coord_round _ -> "coord_round"
  | Partner_match _ -> "partner_match"
  | Group_commit _ -> "group_commit"
  | Widow_prevention -> "widow_prevention"
  | Pool_enter -> "pool_enter"
  | Pool_exit -> "pool_exit"
  | Run_start _ -> "run_start"
  | Run_end _ -> "run_end"
  | Wal_append _ -> "wal_append"

let ints ns = Json.List (List.map (fun n -> Json.Int n) ns)

let kind_json = function
  | Begin | Ready | Commit | Lock_grant | Entangle_block
  | Widow_prevention | Pool_enter | Pool_exit ->
      Json.Obj []
  | Abort { reason } -> Json.Obj [ ("reason", Json.Str reason) ]
  | Finalize { outcome } -> Json.Obj [ ("outcome", Json.Str outcome) ]
  | Lock_wait { resource; holders } ->
      Json.Obj [ ("resource", Json.Str resource); ("holders", ints holders) ]
  | Answer { empty } -> Json.Obj [ ("empty", Json.Bool empty) ]
  | Coord_round { participants } ->
      Json.Obj [ ("participants", ints participants) ]
  | Partner_match { event; peers } ->
      Json.Obj [ ("event", Json.Int event); ("peers", ints peers) ]
  | Group_commit { members } -> Json.Obj [ ("members", ints members) ]
  | Run_start { pool } -> Json.Obj [ ("pool", Json.Int pool) ]
  | Run_end { dormant } -> Json.Obj [ ("dormant", Json.Int dormant) ]
  | Wal_append { lsn } -> Json.Obj [ ("lsn", Json.Int lsn) ]

let to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("t_sim", Json.Float e.t_sim);
      ("run", Json.Int e.run);
      ("txn", Json.Int e.txn);
      ("task", Json.Int e.task);
      ("domain", Json.Int e.domain);
      ("kind", Json.Str (kind_name e.kind));
      ("args", kind_json e.kind);
    ]

let render e =
  let detail =
    match e.kind with
    | Abort { reason } -> Printf.sprintf " reason=%s" reason
    | Finalize { outcome } -> Printf.sprintf " outcome=%s" outcome
    | Lock_wait { resource; holders } ->
        Printf.sprintf " resource=%s holders=[%s]" resource
          (String.concat "," (List.map string_of_int holders))
    | Answer { empty } -> Printf.sprintf " empty=%b" empty
    | Coord_round { participants } ->
        Printf.sprintf " participants=[%s]"
          (String.concat "," (List.map string_of_int participants))
    | Partner_match { event; peers } ->
        Printf.sprintf " event=%d peers=[%s]" event
          (String.concat "," (List.map string_of_int peers))
    | Group_commit { members } ->
        Printf.sprintf " members=[%s]"
          (String.concat "," (List.map string_of_int members))
    | Run_start { pool } -> Printf.sprintf " pool=%d" pool
    | Run_end { dormant } -> Printf.sprintf " dormant=%d" dormant
    | Wal_append { lsn } -> Printf.sprintf " lsn=%d" lsn
    | Begin | Ready | Commit | Lock_grant | Entangle_block
    | Widow_prevention | Pool_enter | Pool_exit ->
        ""
  in
  Printf.sprintf "#%d run=%d sim=%.6f task=%d txn=%d dom=%d %s%s" e.seq e.run
    e.t_sim e.task e.txn e.domain (kind_name e.kind) detail
