type phase = In_pool | Executing | Lock_blocked | Entangle_blocked | Committing

let phases = [ In_pool; Executing; Lock_blocked; Entangle_blocked; Committing ]

let phase_name = function
  | In_pool -> "in_pool"
  | Executing -> "executing"
  | Lock_blocked -> "lock_blocked"
  | Entangle_blocked -> "entangle_blocked"
  | Committing -> "committing"

let phase_index = function
  | In_pool -> 0
  | Executing -> 1
  | Lock_blocked -> 2
  | Entangle_blocked -> 3
  | Committing -> 4

type txn_report = {
  task : int;
  outcome : string option;
  total_s : float;
  by_phase : (phase * float) list;
}

type segment = {
  seg_task : int;
  seg_phase : phase;
  seg_run : int;
  seg_start : float;
  seg_stop : float;
}

(* Commit keeps Committing when the task is already awaiting group
   commit (transactional programs: Ready → group commit → Commit);
   under autocommit each Commit is a statement boundary and execution
   continues. Coordination/bookkeeping kinds leave the phase alone. *)
let transition cur (k : Event.kind) =
  match k with
  | Pool_enter | Pool_exit -> Some In_pool
  | Begin -> Some Executing
  | Lock_wait _ -> Some Lock_blocked
  | Lock_grant -> Some Executing
  | Entangle_block -> Some Entangle_blocked
  | Answer _ -> Some Executing
  | Ready -> Some Committing
  | Commit -> ( match cur with Some Committing -> cur | _ -> Some Executing)
  | Abort _ -> Some Executing
  | Finalize _ -> None
  | Partner_match _ | Widow_prevention | Group_commit _ | Coord_round _
  | Run_start _ | Run_end _ | Wal_append _ ->
      cur

type acc = {
  mutable cur : phase option;
  mutable seg_t0 : float;
  mutable seg_run : int;
  first_t : float;
  mutable last_t : float;
  first_kind : Event.kind option;
  mutable acc_outcome : string option;
  sums : float array;
  mutable segs : segment list; (* newest first *)
}

let fold ~time evs =
  let tasks : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let get task t kind =
    match Hashtbl.find_opt tasks task with
    | Some a -> a
    | None ->
        let a =
          {
            cur = None;
            seg_t0 = t;
            seg_run = 0;
            first_t = t;
            last_t = t;
            first_kind = Some kind;
            acc_outcome = None;
            sums = Array.make 5 0.0;
            segs = [];
          }
        in
        Hashtbl.add tasks task a;
        a
  in
  List.iter
    (fun (e : Event.t) ->
      if e.task >= 0 then begin
        let t = time e in
        let a = get e.task t e.kind in
        if a.acc_outcome = None then begin
          a.last_t <- Float.max a.last_t t;
          let next = transition a.cur e.kind in
          let changed =
            next <> a.cur
            || match e.kind with Event.Finalize _ -> true | _ -> false
          in
          if changed then begin
            (match a.cur with
            | Some p when t > a.seg_t0 ->
                a.sums.(phase_index p) <- a.sums.(phase_index p) +. (t -. a.seg_t0);
                a.segs <-
                  {
                    seg_task = e.task;
                    seg_phase = p;
                    seg_run = a.seg_run;
                    seg_start = a.seg_t0;
                    seg_stop = t;
                  }
                  :: a.segs
            | _ -> ());
            a.cur <- next;
            a.seg_t0 <- t;
            a.seg_run <- e.run
          end;
          match e.kind with
          | Event.Finalize { outcome } -> a.acc_outcome <- Some outcome
          | _ -> ()
        end
      end)
    evs;
  tasks

let sorted_bindings tasks =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tasks []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_events ~time evs =
  fold ~time evs |> sorted_bindings
  |> List.map (fun (task, a) ->
         {
           task;
           outcome = a.acc_outcome;
           total_s = a.last_t -. a.first_t;
           by_phase = List.map (fun p -> (p, a.sums.(phase_index p))) phases;
         })

let segments ~time evs =
  fold ~time evs |> sorted_bindings
  |> List.concat_map (fun (_, a) -> List.rev a.segs)

let to_json evs =
  let time (e : Event.t) = e.t_sim in
  let tasks = fold ~time evs |> sorted_bindings in
  let complete (a : acc) =
    a.acc_outcome = Some "committed" && a.first_kind = Some Event.Pool_enter
  in
  let committed = List.filter (fun (_, a) -> complete a) tasks in
  let unfinished =
    List.length (List.filter (fun (_, a) -> a.acc_outcome = None) tasks)
  in
  let phase_hists = List.map (fun p -> (p, Hist.create ())) phases in
  let total_hist = Hist.create () in
  let attributed = ref 0.0 and measured = ref 0.0 in
  List.iter
    (fun (_, a) ->
      let total = a.last_t -. a.first_t in
      Hist.observe total_hist total;
      measured := !measured +. total;
      List.iter
        (fun (p, h) ->
          let v = a.sums.(phase_index p) in
          Hist.observe h v;
          attributed := !attributed +. v)
        phase_hists)
    committed;
  Json.Obj
    [
      ("txns", Json.Int (List.length committed));
      ("unfinished", Json.Int unfinished);
      ("dropped_events", Json.Int (Event.dropped ()));
      ( "phases",
        Json.Obj
          (List.map (fun (p, h) -> (phase_name p, Hist.summary h)) phase_hists)
      );
      ("total", Hist.summary total_hist);
      ("attributed_sum_s", Json.Float !attributed);
      ("measured_sum_s", Json.Float !measured);
    ]
