(** Windowed time-series aggregation of the metrics registry.

    When enabled, {!sample} slices simulated time into fixed windows
    and closes each one into a ring buffer: counters contribute their
    per-window delta, histograms a delta histogram (exact counts,
    [alpha]-accurate quantiles via {!Hist.diff}), gauges their value at
    close. Disabled (the default), {!sample} is a single branch — no
    allocation, no locking.

    Sampling must run on the coordinator (the scheduler calls it
    between parallel phases), so metric reads never race worker-domain
    histogram writes. The ring itself is mutex-guarded, so readers
    ({!windows}, {!to_json}) are safe from any domain.

    A window's deltas are whatever accumulated between the sample that
    opened it and the one that closed it — resolution is the sampling
    cadence, one scheduler progress-loop iteration in practice.
    Simulated-time jumps produce empty gap windows (or re-anchor when
    the gap exceeds the whole ring); a backwards clock (entsim
    crash/recovery) re-anchors keeping counter bases, so pre-crash
    deltas roll into the first post-crash window. [Obs.reset] clears
    the ring and bases via a reset hook. *)

type window = {
  w_start : float;  (** window start, simulated seconds *)
  w_width : float;  (** nominal width, or less for a {!flush} remnant *)
  w_counters : (string * int) list;
      (** per-window deltas, name-sorted; zero deltas omitted *)
  w_gauges : (string * float) list;  (** values at window close *)
  w_hists : (string * Hist.t) list;
      (** per-window delta histograms; empty ones omitted *)
}

val enable : ?width:float -> ?capacity:int -> unit -> unit
(** Turn sampling on with the given window width (simulated seconds,
    default 1.0) and ring capacity in windows (default 120). Clears any
    previous ring. Call before building the system: modules that
    register sampling-only gauges (lock shards, domain pools) check
    {!enabled} at creation time. *)

val disable : unit -> unit
(** Turn sampling off, clear the ring and drop the window hook. *)

val enabled : unit -> bool
val width : unit -> float

val sample : float -> unit
(** [sample now] advances the window clock to [now], closing any
    windows that ended. One branch when disabled. *)

val flush : unit -> unit
(** Close the current partial window at the last sampled time (its
    [w_width] is the actual elapsed fraction). Call at end of run so
    short runs still produce at least one window. *)

val set_on_window : (window -> unit) option -> unit
(** Hook invoked (outside the internal lock, on the sampling thread)
    for every window as it closes — the online SLO monitor attaches
    here, and [youtopia top] renders frames from it. One slot; compose
    manually to fan out. *)

val windows : unit -> window list
(** Retained closed windows, oldest first. *)

val last : int -> window list
(** The [n] most recent closed windows, oldest first. *)

val counter_delta : window -> string -> int
(** Delta of a counter in this window (0 when absent). *)

val window_hist : window -> string -> Hist.t option

val window_json : window -> Json.t
(** [{start, width, counters, gauges, histograms}]. *)

val to_json : ?last:int -> unit -> Json.t
(** [{window_s, windows: [...]}] — optionally only the last [n]. *)
