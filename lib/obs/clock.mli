(** Clocks for spans and events.

    {!monotonic} never goes backwards and is unaffected by wall-clock
    adjustment (NTP slew, manual changes); durations and event order
    must be computed from it. Its epoch is arbitrary (platform boot,
    typically), so absolute instants are meaningless across processes
    — {!anchor} ties the monotonic timeline to the Unix epoch once per
    process, which is what trace export uses to label a trace with the
    real time it was captured at. *)

val monotonic : unit -> float
(** Seconds on the monotonic clock (arbitrary epoch). *)

val wall : unit -> float
(** Seconds since the Unix epoch ([Unix.gettimeofday]); only for
    anchoring, never for durations. *)

val anchor : unit -> float * float
(** [(wall, mono)] sampled together at first use: the wall-clock
    instant corresponding to monotonic time [mono]. Stable for the
    process lifetime. *)

val to_wall : float -> float
(** Project a monotonic timestamp onto the Unix epoch via {!anchor}. *)
