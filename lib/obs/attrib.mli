(** Per-transaction latency attribution.

    Folds the event log into, for each scheduler task, a partition of
    its lifetime into five phases:

    - [In_pool] — dormant, waiting to be picked into a run
    - [Executing] — running program statements
    - [Lock_blocked] — waiting on a lock ({!Event.Lock_wait} →
      {!Event.Lock_grant})
    - [Entangle_blocked] — waiting for coordination to answer an
      entangled query
    - [Committing] — body done ({!Event.Ready}), waiting for / inside
      group commit

    Because the phases partition the interval from the first event to
    {!Event.Finalize}, per-task phase times sum exactly to the task's
    measured latency (the scheduler's [core.scheduler.txn_latency_s]
    histogram observes the same endpoints) — the bench validator
    cross-checks the two within 5%. *)

type phase = In_pool | Executing | Lock_blocked | Entangle_blocked | Committing

val phases : phase list
val phase_name : phase -> string

type txn_report = {
  task : int;
  outcome : string option;  (** [Finalize] outcome; [None] if never retired *)
  total_s : float;  (** last event time − first event time *)
  by_phase : (phase * float) list;  (** all five phases, {!phases} order *)
}

val of_events : time:(Event.t -> float) -> Event.t list -> txn_report list
(** One report per task seen in the log (ascending task id), measuring
    with [time] — [fun e -> e.t_sim] for simulated attribution,
    [fun e -> e.t_mono] for trace slices. Events with [task = -1] are
    ignored. *)

type segment = {
  seg_task : int;
  seg_phase : phase;
  seg_run : int;  (** run in progress when the segment began *)
  seg_start : float;
  seg_stop : float;
}

val segments : time:(Event.t -> float) -> Event.t list -> segment list
(** The same partition as flat intervals, for rendering phase slices
    on a trace timeline. Zero-length segments are omitted. *)

val to_json : Event.t list -> Json.t
(** Aggregate simulated-time attribution for a workload cell:
    [{"txns"; "unfinished"; "dropped_events"; "phases": {<phase>:
    hist-summary}; "total": hist-summary; "attributed_sum_s";
    "measured_sum_s"}]. Histograms cover only tasks that finalized
    [committed] with a complete timeline (first event [Pool_enter]),
    so ring overflow degrades coverage rather than correctness. *)
