(** Online SLO monitor with multi-window burn-rate alerts.

    Declarative specs bound a registered metric: a latency-quantile
    ceiling over a histogram ([kind: "latency"]), an events-per-second
    ceiling over a counter ([kind: "rate"]), or a mean floor over a
    histogram ([kind: "min_mean"], e.g. minimum group-commit size).

    Each spec is re-evaluated on every closed {!Timeseries} window over
    two trailing ranges — [short_windows] (default 1) and
    [long_windows] (default 5) — and breaches only when {e both}
    ranges breach: a single hot window inside a healthy long range does
    not alert, a sustained burn does. Ranges with no samples are not
    breaches for latency/mean specs; rate specs read empty windows as
    zero events over elapsed time.

    Spec file shape:
    {[
      { "slos": [
        { "name": "txn-p99", "kind": "latency",
          "metric": "core.scheduler.txn_latency_s",
          "quantile": 0.99, "threshold_s": 0.5,
          "short_windows": 1, "long_windows": 5 },
        { "name": "deadlocks", "kind": "rate",
          "metric": "core.scheduler.deadlocks", "max_per_s": 1.0 },
        { "name": "group-size", "kind": "min_mean",
          "metric": "core.commit.group_size", "min": 1.0 } ] }
    ]} *)

type kind =
  | Latency of { quantile : float; max_s : float }
  | Rate of { max_per_s : float }
  | Min_mean of { min_mean : float }

type spec = {
  sp_name : string;
  sp_metric : string;  (** registered metric name *)
  sp_kind : kind;
  sp_short : int;  (** trailing windows in the short (fast-burn) range *)
  sp_long : int;  (** trailing windows in the long (sustained) range *)
}

type alert = {
  al_spec : string;
  al_window_start : float;
  al_short : float;
  al_long : float;
  al_threshold : float;
}

type t

val create : spec list -> t

val observe : t -> Timeseries.window -> unit
(** Feed one closed window to every spec. *)

val attach : t -> unit
(** [Timeseries.set_on_window (Some (observe t))]. *)

val detach : unit -> unit
(** Drop the window hook. *)

val ok : t -> bool
(** No spec has breached so far. *)

val alerts : t -> alert list
(** Fired alerts, oldest first (capped at 64; the total breach count
    in {!report_json} is exact). *)

val report_json : t -> Json.t
(** Structured verdict:
    [{ok, windows_evaluated, total_breaches, specs: [...], alerts:
    [...]}] — the ["slo"] section embedded in bench cells and printed
    by [youtopia run --slo]. *)

val spec_of_json : Json.t -> (spec, string) result
val specs_of_json : Json.t -> (spec list, string) result

val load : string -> (spec list, string) result
(** Read and parse a spec file. *)
