(** Crash flight recorder: one JSON artifact with the last N seconds.

    Bundles the windowed {!Timeseries} ring, the tail of the {!Event}
    ring, the cumulative metric snapshot, and optionally a rendered
    wait graph and an SLO report into a single document recognizable by
    its top-level ["flight_recorder"] version field ([Schema] validates
    it). Produced on SLO breach ([youtopia run --slo --flight-out]),
    entsim invariant violations ([entsim --flight-out]), or on demand. *)

val version : int

val to_json :
  reason:string ->
  ?wait_graph:string ->
  ?slo:Json.t ->
  ?events_last:int ->
  sim_now:float ->
  unit ->
  Json.t
(** Capture now. [reason] is a short tag (["slo-breach"],
    ["invariant-violation"], …); [events_last] bounds the event tail
    (default 256). *)

val write : string -> Json.t -> unit
(** Write a document (newline-terminated) to a file. *)
