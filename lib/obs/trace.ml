(* Track layout: pid = scheduler run, tid = task id + 1 (tid 0 is the
   scheduler's own track for run/coordination events). Chrome's trace
   format wants non-negative integer ids, hence the +1 shift. *)

let tid_of_task task = if task >= 0 then task + 1 else 0

let us base t = (t -. base) *. 1e6

let obj fields = Json.Obj fields

let metadata ~pid ~tid ~meta ~name =
  obj
    [
      ("name", Json.Str meta);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Float 0.0);
      ("args", obj [ ("name", Json.Str name) ]);
    ]

let to_json evs =
  let base =
    List.fold_left
      (fun acc (e : Event.t) -> Float.min acc e.t_mono)
      (match evs with [] -> 0.0 | e :: _ -> e.Event.t_mono)
      evs
  in
  (* Process/thread name metadata for every (run, task) track seen. *)
  let runs = Hashtbl.create 16 and tracks = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      Hashtbl.replace runs e.run ();
      Hashtbl.replace tracks (e.run, e.task) ())
    evs;
  let meta_events =
    let run_meta =
      Hashtbl.fold
        (fun run () acc ->
          let name = if run = 0 then "pre-run" else Printf.sprintf "run %d" run in
          metadata ~pid:run ~tid:0 ~meta:"process_name" ~name :: acc)
        runs []
    in
    let track_meta =
      Hashtbl.fold
        (fun (run, task) () acc ->
          let name =
            if task >= 0 then Printf.sprintf "task %d" task else "scheduler"
          in
          metadata ~pid:run ~tid:(tid_of_task task) ~meta:"thread_name" ~name
          :: acc)
        tracks []
    in
    (* Deterministic output: hashtable fold order is unspecified. *)
    List.sort compare (run_meta @ track_meta)
  in
  let instant (e : Event.t) =
    let payload =
      match Event.kind_json e.kind with Json.Obj fs -> fs | j -> [ ("value", j) ]
    in
    obj
      [
        ("name", Json.Str (Event.kind_name e.kind));
        ("cat", Json.Str "event");
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.Float (us base e.t_mono));
        ("pid", Json.Int e.run);
        ("tid", Json.Int (tid_of_task e.task));
        ( "args",
          obj
            (payload
            @ [
                ("seq", Json.Int e.seq);
                ("txn", Json.Int e.txn);
                ("task", Json.Int e.task);
                ("domain", Json.Int e.domain);
                ("sim_s", Json.Float e.t_sim);
              ]) );
      ]
  in
  let instants = List.map instant evs in
  let slices =
    Attrib.segments ~time:(fun (e : Event.t) -> e.t_mono) evs
    |> List.map (fun (s : Attrib.segment) ->
           obj
             [
               ("name", Json.Str (Attrib.phase_name s.seg_phase));
               ("cat", Json.Str "phase");
               ("ph", Json.Str "X");
               ("ts", Json.Float (us base s.seg_start));
               ("dur", Json.Float (us base s.seg_stop -. us base s.seg_start));
               ("pid", Json.Int s.seg_run);
               ("tid", Json.Int (tid_of_task s.seg_task));
             ])
  in
  (* One flow arrow per entanglement edge. Each group member emits a
     Partner_match listing its peers, so every unordered pair appears
     twice; keep the orientation low-task → high-task to emit each
     edge exactly once. *)
  let flow_id = ref 0 in
  let flows =
    List.concat_map
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Partner_match { event; peers } when e.task >= 0 ->
            List.concat_map
              (fun peer ->
                if peer > e.task then begin
                  incr flow_id;
                  let id = !flow_id in
                  let endpoint ph task extra =
                    obj
                      ([
                         ("name", Json.Str "entangled");
                         ("cat", Json.Str "entangle");
                         ("ph", Json.Str ph);
                         ("id", Json.Int id);
                         ("ts", Json.Float (us base e.t_mono));
                         ("pid", Json.Int e.run);
                         ("tid", Json.Int (tid_of_task task));
                         ("args", obj [ ("event", Json.Int event) ]);
                       ]
                      @ extra)
                  in
                  [
                    endpoint "s" e.task [];
                    endpoint "f" peer [ ("bp", Json.Str "e") ];
                  ]
                end
                else [])
              peers
        | _ -> [])
      evs
  in
  let wall0 = if evs = [] then Clock.wall () else Clock.to_wall base in
  obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        obj
          [
            ("tool", Json.Str "entangled");
            ("clock", Json.Str "monotonic");
            ("trace_epoch_wall_s", Json.Float wall0);
            ("events", Json.Int (List.length evs));
            ("dropped_events", Json.Int (Event.dropped ()));
          ] );
      ("traceEvents", Json.List (meta_events @ instants @ slices @ flows));
    ]

let write path evs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json evs));
      output_char oc '\n')
