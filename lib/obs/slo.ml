(* Online SLO evaluation with multi-window burn-rate alerts.

   Specs name a registered metric and a bound: a latency quantile
   ceiling over a histogram, a rate ceiling over a counter, or a mean
   floor over a histogram (min group-commit size). Each spec is
   evaluated on every closed time-series window over two trailing
   ranges — a short window (fast burn) and a long window (sustained
   burn) — and an alert fires only when BOTH ranges breach, the
   standard burn-rate trick: a single hot window inside an otherwise
   healthy long range does not page, and a slow sustained leak does.

   Windows with no samples are not breaches for latency/mean specs
   (there is nothing to measure); rate specs treat them as zero events
   over elapsed time, which is the honest reading. *)

type kind =
  | Latency of { quantile : float; max_s : float }
  | Rate of { max_per_s : float }
  | Min_mean of { min_mean : float }

type spec = {
  sp_name : string;
  sp_metric : string;
  sp_kind : kind;
  sp_short : int;  (* trailing windows in the short range *)
  sp_long : int;  (* trailing windows in the long range *)
}

type alert = {
  al_spec : string;
  al_window_start : float;
  al_short : float;
  al_long : float;
  al_threshold : float;
}

type entry = { e_width : float; e_delta : int; e_hist : Hist.t option }

type sstate = {
  spec : spec;
  mutable entries : entry list;  (* newest first, length <= sp_long *)
  mutable breaches : int;
  mutable worst : float option;
}

type t = {
  states : sstate list;
  mutable windows_seen : int;
  mutable total_breaches : int;
  mutable alerts : alert list;  (* newest first, capped *)
}

let max_alerts = 64

let create specs =
  {
    states =
      List.map
        (fun spec -> { spec; entries = []; breaches = 0; worst = None })
        specs;
    windows_seen = 0;
    total_breaches = 0;
    alerts = [];
  }

let take k l = List.filteri (fun i _ -> i < k) l

(* Value of the spec over its last [k] window entries; None = no data. *)
let value_over st k =
  let es = take k st.entries in
  match st.spec.sp_kind with
  | Rate { max_per_s = _ } ->
    let events = List.fold_left (fun a e -> a + e.e_delta) 0 es in
    let elapsed = List.fold_left (fun a e -> a +. e.e_width) 0.0 es in
    if elapsed <= 0.0 then None else Some (float_of_int events /. elapsed)
  | (Latency _ | Min_mean _) as k -> (
    let merged =
      List.fold_left
        (fun acc e ->
          match (acc, e.e_hist) with
          | None, Some h -> Some (Hist.copy h)
          | Some m, Some h ->
            Hist.merge_into ~into:m h;
            Some m
          | acc, None -> acc)
        None es
    in
    match merged with
    | None -> None
    | Some m when Hist.count m = 0 -> None
    | Some m -> (
      match k with
      | Latency { quantile; _ } -> Some (Hist.quantile m quantile)
      | _ -> Some (Hist.mean m)))

let threshold spec =
  match spec.sp_kind with
  | Latency { max_s; _ } -> max_s
  | Rate { max_per_s } -> max_per_s
  | Min_mean { min_mean } -> min_mean

let breaches spec v =
  match spec.sp_kind with
  | Latency { max_s; _ } -> v > max_s
  | Rate { max_per_s } -> v > max_per_s
  | Min_mean { min_mean } -> v < min_mean

(* Higher is worse for ceilings, lower is worse for floors. *)
let worse spec a b =
  match spec.sp_kind with Min_mean _ -> Float.min a b | _ -> Float.max a b

let observe t (w : Timeseries.window) =
  t.windows_seen <- t.windows_seen + 1;
  List.iter
    (fun st ->
      let entry =
        {
          e_width = w.Timeseries.w_width;
          e_delta = Timeseries.counter_delta w st.spec.sp_metric;
          e_hist = Timeseries.window_hist w st.spec.sp_metric;
        }
      in
      st.entries <- take st.spec.sp_long (entry :: st.entries);
      let short = value_over st st.spec.sp_short in
      let long = value_over st st.spec.sp_long in
      (match short with
      | Some v ->
        st.worst <-
          Some (match st.worst with None -> v | Some w -> worse st.spec v w)
      | None -> ());
      match (short, long) with
      | Some s, Some l when breaches st.spec s && breaches st.spec l ->
        st.breaches <- st.breaches + 1;
        t.total_breaches <- t.total_breaches + 1;
        if List.length t.alerts < max_alerts then
          t.alerts <-
            {
              al_spec = st.spec.sp_name;
              al_window_start = w.Timeseries.w_start;
              al_short = s;
              al_long = l;
              al_threshold = threshold st.spec;
            }
            :: t.alerts
      | _ -> ())
    t.states

let attach t = Timeseries.set_on_window (Some (observe t))
let detach () = Timeseries.set_on_window None
let ok t = t.total_breaches = 0
let alerts t = List.rev t.alerts

let kind_label = function
  | Latency _ -> "latency"
  | Rate _ -> "rate"
  | Min_mean _ -> "min_mean"

let fin v = Json.Float (if Float.is_finite v then v else 0.0)

let report_json t =
  let spec_json st =
    Json.Obj
      ([
         ("name", Json.Str st.spec.sp_name);
         ("metric", Json.Str st.spec.sp_metric);
         ("kind", Json.Str (kind_label st.spec.sp_kind));
       ]
      @ (match st.spec.sp_kind with
        | Latency { quantile; _ } -> [ ("quantile", fin quantile) ]
        | _ -> [])
      @ [
          ("threshold", fin (threshold st.spec));
          ("short_windows", Json.Int st.spec.sp_short);
          ("long_windows", Json.Int st.spec.sp_long);
          ("breaches", Json.Int st.breaches);
          ("worst", match st.worst with None -> Json.Null | Some v -> fin v);
          ("ok", Json.Bool (st.breaches = 0));
        ])
  in
  let alert_json al =
    Json.Obj
      [
        ("spec", Json.Str al.al_spec);
        ("window_start", fin al.al_window_start);
        ("short_value", fin al.al_short);
        ("long_value", fin al.al_long);
        ("threshold", fin al.al_threshold);
      ]
  in
  Json.Obj
    [
      ("ok", Json.Bool (ok t));
      ("windows_evaluated", Json.Int t.windows_seen);
      ("total_breaches", Json.Int t.total_breaches);
      ("specs", Json.List (List.map spec_json t.states));
      ("alerts", Json.List (List.map alert_json (alerts t)));
    ]

(* --- spec files --- *)

let spec_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int_d k d =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some v -> v
    | None -> d
  in
  match (str "name", str "metric", str "kind") with
  | None, _, _ -> Error "slo entry: missing \"name\""
  | _, None, _ -> Error "slo entry: missing \"metric\""
  | _, _, None -> Error "slo entry: missing \"kind\""
  | Some name, Some metric, Some kind_s -> (
    let finish sp_kind =
      let sp_short = int_d "short_windows" 1 in
      let sp_long = int_d "long_windows" 5 in
      if sp_short < 1 || sp_long < sp_short then
        Error
          (Printf.sprintf
             "slo %s: need 1 <= short_windows (%d) <= long_windows (%d)" name
             sp_short sp_long)
      else Ok { sp_name = name; sp_metric = metric; sp_kind; sp_short; sp_long }
    in
    match kind_s with
    | "latency" -> (
      let quantile = Option.value ~default:0.99 (num "quantile") in
      match num "threshold_s" with
      | None -> Error (Printf.sprintf "slo %s: latency needs \"threshold_s\"" name)
      | Some max_s ->
        if quantile <= 0.0 || quantile >= 1.0 then
          Error (Printf.sprintf "slo %s: quantile must be in (0, 1)" name)
        else if max_s <= 0.0 || not (Float.is_finite max_s) then
          Error (Printf.sprintf "slo %s: threshold_s must be positive" name)
        else finish (Latency { quantile; max_s }))
    | "rate" -> (
      match num "max_per_s" with
      | None -> Error (Printf.sprintf "slo %s: rate needs \"max_per_s\"" name)
      | Some max_per_s ->
        if max_per_s < 0.0 || not (Float.is_finite max_per_s) then
          Error (Printf.sprintf "slo %s: max_per_s must be nonnegative" name)
        else finish (Rate { max_per_s }))
    | "min_mean" -> (
      match num "min" with
      | None -> Error (Printf.sprintf "slo %s: min_mean needs \"min\"" name)
      | Some min_mean ->
        if not (Float.is_finite min_mean) then
          Error (Printf.sprintf "slo %s: min must be finite" name)
        else finish (Min_mean { min_mean }))
    | k -> Error (Printf.sprintf "slo %s: unknown kind %S (latency|rate|min_mean)" name k))

let specs_of_json j =
  match Option.bind (Json.member "slos" j) Json.to_list_opt with
  | None -> Error "slo file: expected {\"slos\": [...]}"
  | Some entries ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
        match spec_of_json e with
        | Ok sp -> go (sp :: acc) rest
        | Error _ as err -> err)
    in
    if entries = [] then Error "slo file: \"slos\" is empty" else go [] entries

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.of_string text with
    | exception Json.Parse_error msg -> Error (path ^ ": " ^ msg)
    | j -> specs_of_json j)
