external monotonic : unit -> float = "ent_obs_clock_monotonic"

let wall () = Unix.gettimeofday ()

(* Sampled once, lazily, so both readings come from the same instant
   (module-initialization order does not matter). *)
let anchor_pair = lazy (wall (), monotonic ())

let anchor () = Lazy.force anchor_pair

let to_wall mono =
  let w, m = anchor () in
  w +. (mono -. m)
