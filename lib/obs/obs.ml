(* Global metrics registry and span tracer.

   Metric names follow "layer.component.metric" (DESIGN.md §3). Hot
   paths bump counters through [Atomic] — an instrumented site costs
   one fetch-and-add, cheap enough to stay on by default. Spans carry
   real bookkeeping (clock reads, ring-buffer writes) and therefore sit
   behind [set_tracing]; with tracing off, [with_span] is a flag test.

   Everything lives in one process-global registry: instrumentation in
   lib/txn, lib/storage, lib/entangle and lib/core registers metrics at
   module initialization and never threads a handle around. *)

(* Counters and histograms are striped by executing domain so parallel
   runs never contend on (or race through) a shared cell: stripe
   [domain_id land (stripes - 1)] takes the update, and reads merge.
   Deterministic runs execute everything on domain 0, so exactly one
   stripe is populated and merged reads are bitwise identical to the
   unstriped implementation. *)
let stripes = 16

let stripe () = (Domain.self () :> int) land (stripes - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; value : float Atomic.t }

(* Each histogram stripe has its own mutex: [Hist.observe] mutates a
   hashtable of buckets, which is not safe to share across domains
   (ground/gcache observe footprint histograms from worker domains).
   Stripe mutexes are uncontended except under real parallelism. *)
type histogram = { h_name : string; h_stripes : (Mutex.t * Hist.t) array }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Registration/lookup is a rare path, but lazily-registered metrics
   (txn.si_aborts and friends) can first fire on a worker domain under
   --parallel; the mutex keeps the registry hashtable itself safe.
   Metric updates never take it — they go through the Atomic cells. *)
let reg_mu = Mutex.create ()

let locked f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let intern name make describe =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match describe m with
        | Some v -> v
        | None ->
          invalid_arg (Printf.sprintf "Obs: %s registered with another type" name))
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name m;
        v)

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; cells = Array.init stripes (fun _ -> Atomic.make 0) } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr ?(n = 1) c = ignore (Atomic.fetch_and_add c.cells.(stripe ()) n)
let counter_value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge name =
  intern name
    (fun () ->
      let g = { g_name = name; value = Atomic.make 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g.value v
let gauge_value g = Atomic.get g.value

let histogram ?alpha name =
  intern name
    (fun () ->
      let h =
        { h_name = name;
          h_stripes =
            Array.init stripes (fun _ -> (Mutex.create (), Hist.create ?alpha ())) }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let mu, hs = h.h_stripes.(stripe ()) in
  Mutex.lock mu;
  Hist.observe hs v;
  Mutex.unlock mu

(* Merged snapshot of all stripes. A single populated stripe (every
   deterministic run) returns a plain copy, so summaries are bitwise
   identical to the unstriped implementation; with several stripes the
   merge order is stripe-index order, deterministic given the stripe
   contents. *)
let hist h =
  let parts =
    Array.to_list h.h_stripes
    |> List.filter_map (fun (mu, hs) ->
           Mutex.lock mu;
           let c = if Hist.count hs > 0 then Some (Hist.copy hs) else None in
           Mutex.unlock mu;
           c)
  in
  match parts with
  | [] -> Hist.copy (snd h.h_stripes.(0))
  | [ one ] -> one
  | first :: rest ->
    List.iter (fun hs -> Hist.merge_into ~into:first hs) rest;
    first

let counter_name c = c.c_name
let gauge_name g = g.g_name
let histogram_name h = h.h_name

(* --- lookups (tests, CLI) --- *)

let find name = locked (fun () -> Hashtbl.find_opt registry name)

let find_counter name =
  match find name with
  | Some (Counter c) -> Some (counter_value c)
  | _ -> None

let find_gauge name =
  match find name with
  | Some (Gauge g) -> Some (gauge_value g)
  | _ -> None

let find_histogram name =
  match find name with
  | Some (Histogram h) -> Some (hist h)
  | _ -> None

(* --- span tracing --- *)

type span_record = {
  sp_name : string;
  sp_start : float;  (* seconds, monotonic clock (Clock.to_wall projects) *)
  sp_dur : float;  (* seconds *)
  sp_depth : int;  (* nesting level at entry, outermost = 0 *)
}

let tracing_on = ref false
let trace_capacity = ref 4096
let trace_ring : span_record option array ref = ref (Array.make 4096 None)
let trace_next = ref 0  (* total spans ever recorded *)
let span_depth = ref 0

let set_tracing on = tracing_on := on
let tracing () = !tracing_on

let set_trace_capacity n =
  if n <= 0 then invalid_arg "Obs.set_trace_capacity: capacity must be positive";
  trace_capacity := n;
  trace_ring := Array.make n None;
  trace_next := 0

let record_span sp =
  let ring = !trace_ring in
  ring.(!trace_next mod Array.length ring) <- Some sp;
  trace_next := !trace_next + 1

let with_span name f =
  if not !tracing_on then f ()
  else begin
    let depth = !span_depth in
    span_depth := depth + 1;
    (* Monotonic: wall clock jumps (NTP, manual adjustment) must not
       corrupt durations. Clock.to_wall anchors for export. *)
    let start = Clock.monotonic () in
    let finish () =
      let stop = Clock.monotonic () in
      span_depth := depth;
      record_span
        { sp_name = name; sp_start = start; sp_dur = stop -. start; sp_depth = depth }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () =
  (* oldest-first; the ring keeps the last [capacity] spans *)
  let ring = !trace_ring in
  let cap = Array.length ring in
  let total = !trace_next in
  let first = if total > cap then total - cap else 0 in
  List.filter_map
    (fun i -> ring.(i mod cap))
    (List.init (total - first) (fun k -> first + k))

let spans_dropped () =
  let cap = Array.length !trace_ring in
  if !trace_next > cap then !trace_next - cap else 0

(* --- snapshot --- *)

let sorted_registry () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (locked (fun () ->
         Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []))

let snapshot_json () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> counters := (name, Json.Int (counter_value c)) :: !counters
      | Gauge g ->
        let v = gauge_value g in
        gauges := (name, Json.Float (if Float.is_finite v then v else 0.0)) :: !gauges
      | Histogram h -> hists := (name, Hist.summary (hist h)) :: !hists)
    (sorted_registry ());
  let base =
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]
  in
  if not !tracing_on then Json.Obj base
  else
    let span_json sp =
      Json.Obj
        [
          ("name", Json.Str sp.sp_name);
          ("start", Json.Float sp.sp_start);
          ("dur", Json.Float sp.sp_dur);
          ("depth", Json.Int sp.sp_depth);
        ]
    in
    Json.Obj
      (base
      @ [
          ("spans", Json.List (List.map span_json (spans ())));
          ("spans_dropped", Json.Int (spans_dropped ()));
        ])

let snapshot () = Json.to_string (snapshot_json ())

(* Modules layered on top of the registry (Timeseries) must re-base
   when every metric snaps back to zero; they hook in here rather than
   obs depending on them. *)
let reset_hooks : (unit -> unit) list ref = ref []
let add_reset_hook f = reset_hooks := f :: !reset_hooks

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
          | Gauge g -> Atomic.set g.value 0.0
          | Histogram h ->
            Array.iter
              (fun (mu, hs) ->
                Mutex.lock mu;
                Hist.reset hs;
                Mutex.unlock mu)
              h.h_stripes)
        registry);
  Array.fill !trace_ring 0 (Array.length !trace_ring) None;
  trace_next := 0;
  span_depth := 0;
  Event.reset ();
  List.iter (fun f -> f ()) !reset_hooks

let metric_names () = List.map fst (sorted_registry ())

let write_snapshot path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (snapshot ());
      output_char oc '\n')
