(** Log-scale histogram with bounded-relative-error quantiles.

    Buckets grow geometrically with ratio [(1+alpha)/(1-alpha)], so
    [quantile] is accurate to a relative error of [alpha] (default 1%)
    for positive values; zero and negative observations are counted
    exactly in a dedicated bucket. Recording is O(1). *)

type t

val default_alpha : float

val create : ?alpha:float -> unit -> t
val alpha : t -> float

val observe : t -> float -> unit
(** Record one value. Non-finite values are ignored. *)

val count : t -> int
val sum : t -> float
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) with
    relative error at most [alpha t] for positive values. Returns 0 on
    an empty histogram. *)

val reset : t -> unit

val copy : t -> t
(** Independent snapshot of the current state. *)

val diff : newer:t -> older:t -> t
(** Bucket-wise difference of two cumulative snapshots of the same
    histogram: the result holds exactly the observations recorded
    between [older] and [newer] (counts and sum are exact; min/max are
    reconstructed from the delta's occupied buckets, so they carry the
    usual [alpha] relative error).
    @raise Invalid_argument when the histograms use different alphas. *)

val merge_into : into:t -> t -> unit
(** Add every observation of the second histogram into [into].
    @raise Invalid_argument when the histograms use different alphas. *)

val summary : t -> Json.t
(** [{count, sum, mean, min, max, p50, p95, p99}] (all finite). *)
