(** Chrome trace-event export (Perfetto / chrome://tracing).

    Renders the event log as a trace-event JSON document:

    - one {e process} per scheduler run ([pid] = run id; 0 is the
      pre-run phase), one {e thread} per task ([tid] = task id + 1;
      tid 0 is the scheduler itself);
    - every log event as an instant event (["ph":"i"]) — export is
      1:1, so event counts survive a round trip through {!Obs.Json};
    - the {!Attrib} phase partition as complete slices (["ph":"X"]),
      so a task's timeline reads executing / blocked / committing at a
      glance;
    - every entanglement edge (from {!Event.Partner_match}) as a
      paired flow event (["ph":"s"]/["ph":"f"]) between the matched
      tasks' tracks.

    Timestamps are microseconds on the monotonic clock, rebased to the
    first event; the wall-clock instant of that origin is recorded in
    ["otherData"."trace_epoch_wall_s"] (the only use of wall time). *)

val to_json : Event.t list -> Json.t

val write : string -> Event.t list -> unit
(** [to_json] printed to a file, newline-terminated. *)
