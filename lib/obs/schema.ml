(* Schema for the machine-readable benchmark artifacts.

   bench/main.exe --metrics writes one document per figure
   (BENCH_fig6a.json / BENCH_fig6b.json / BENCH_fig6c.json, and
   BENCH_scaleup.json for the --parallel wall-clock sweep):

     { "schema_version": 1,
       "figure": "fig6a",
       "bench_txns": 2000,
       "x_label": "connections",
       "unit": "simulated_seconds",
       "series": [
         { "name": "NoSocial-T",
           "points": [ { "x": 10, "time_s": 0.55, "metrics": SNAPSHOT },
                       ... ] },
         ... ] }

   where SNAPSHOT is an Obs.snapshot_json taken right after the cell
   ran (the registry is reset before each cell, so the snapshot is
   per-cell). CI's bench-smoke job regenerates the documents at reduced
   scale and feeds them through [validate], which enforces exactly what
   EXPERIMENTS.md documents: every expected series present, every point
   finite with a positive time, every point carrying a snapshot, and —
   across the document — live counters from all four instrumented
   layers (txn, storage, entangle, core). *)

let version = 1

let expected_series = function
  | "fig6a" ->
    Some
      ( "connections",
        [ "NoSocial-T"; "Social-T"; "Entangled-T";
          "NoSocial-Q"; "Social-Q"; "Entangled-Q" ] )
  | "fig6b" -> Some ("pending", [ "f=1"; "f=10"; "f=50" ])
  | "fig6c" ->
    Some
      ( "set_size",
        [ "Spoke-hub f=10"; "Spoke-hub f=50"; "Cycle f=10"; "Cycle f=50" ] )
  | "scaleup" -> Some ("domains", [ "NoSocial-T"; "Social-T"; "Entangled-T" ])
  | "si" ->
    Some
      ("connections", [ "Social-T 2pl"; "Social-T si"; "Social-T mixed" ])
  | _ -> None

(* The figure sweeps report simulated time; the multicore scale-up
   sweep (bench --parallel) measures real elapsed time. *)
let expected_unit = function
  | "scaleup" -> "wall_clock_seconds"
  | _ -> "simulated_seconds"

let layers = [ "txn."; "storage."; "entangle."; "core." ]

(* SLO report sections (Slo.report_json) appear per-cell in bench
   documents and at the top level of flight-recorder artifacts; both
   paths share this check. *)
let check_slo ~errors ~where slo =
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let int k = Option.bind (Json.member k slo) Json.to_int_opt in
  (match int "windows_evaluated" with
  | Some n when n >= 0 -> ()
  | _ -> err "%s: windows_evaluated missing or negative" where);
  let total =
    match int "total_breaches" with
    | Some n when n >= 0 -> Some n
    | _ ->
      err "%s: total_breaches missing or negative" where;
      None
  in
  (match (Json.member "ok" slo, total) with
  | Some (Json.Bool ok), Some n ->
    if ok <> (n = 0) then
      err "%s: ok=%b inconsistent with total_breaches=%d" where ok n
  | Some (Json.Bool _), None -> ()
  | _ -> err "%s: ok missing or not a bool" where);
  (match Option.bind (Json.member "specs" slo) Json.to_list_opt with
  | None -> err "%s: specs missing or not a list" where
  | Some specs ->
    let sum = ref 0 in
    List.iteri
      (fun i sp ->
        let w = Printf.sprintf "%s spec %d" where i in
        (match Option.bind (Json.member "name" sp) Json.to_string_opt with
        | Some n when n <> "" -> ()
        | _ -> err "%s: name missing or empty" w);
        (match Option.bind (Json.member "metric" sp) Json.to_string_opt with
        | Some _ -> ()
        | None -> err "%s: metric missing" w);
        (match Option.bind (Json.member "kind" sp) Json.to_string_opt with
        | Some ("latency" | "rate" | "min_mean") -> ()
        | _ -> err "%s: kind missing or unknown" w);
        (match Option.bind (Json.member "threshold" sp) Json.to_float_opt with
        | Some t when Float.is_finite t -> ()
        | _ -> err "%s: threshold missing or not finite" w);
        match Option.bind (Json.member "breaches" sp) Json.to_int_opt with
        | Some b when b >= 0 -> sum := !sum + b
        | _ -> err "%s: breaches missing or negative" w)
      specs;
    match total with
    | Some n when n <> !sum ->
      err "%s: total_breaches %d is not the sum of spec breaches %d" where n !sum
    | _ -> ());
  match Option.bind (Json.member "alerts" slo) Json.to_list_opt with
  | None -> err "%s: alerts missing or not a list" where
  | Some alerts ->
    List.iteri
      (fun i al ->
        let w = Printf.sprintf "%s alert %d" where i in
        (match Option.bind (Json.member "spec" al) Json.to_string_opt with
        | Some _ -> ()
        | None -> err "%s: spec missing" w);
        List.iter
          (fun k ->
            match Option.bind (Json.member k al) Json.to_float_opt with
            | Some v when Float.is_finite v -> ()
            | _ -> err "%s: %s missing or not finite" w k)
          [ "window_start"; "short_value"; "long_value"; "threshold" ])
      alerts

let validate_slo_report slo =
  let errors = ref [] in
  check_slo ~errors ~where:"slo" slo;
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let validate (doc : Json.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let live_layers = Hashtbl.create 4 in
  let check_metrics ~where metrics =
    match metrics with
    | Json.Obj _ -> (
      (match Json.member "counters" metrics with
      | Some (Json.Obj counters) ->
        List.iter
          (fun (name, v) ->
            match Json.to_int_opt v with
            | Some n when n >= 0 ->
              if n > 0 then
                List.iter
                  (fun prefix ->
                    if String.starts_with ~prefix name then
                      Hashtbl.replace live_layers prefix ())
                  layers
            | _ -> err "%s: counter %s is not a nonnegative integer" where name)
          counters
      | _ -> err "%s: metrics.counters missing or not an object" where);
      (match Json.member "histograms" metrics with
      | Some (Json.Obj hists) ->
        List.iter
          (fun (name, h) ->
            match Json.member "count" h with
            | Some (Json.Int n) when n >= 0 -> ()
            | _ -> err "%s: histogram %s has no integer count" where name)
          hists
      | _ -> err "%s: metrics.histograms missing or not an object" where);
      (match Json.member "gauges" metrics with
      | Some (Json.Obj _) -> ()
      | _ -> err "%s: metrics.gauges missing or not an object" where);
      (* Grounding-cache consistency: a footprint observation is made at
         most once per miss (a miss whose enumeration blocks records
         nothing), and never without one. *)
      let counter name =
        Option.bind (Json.member "counters" metrics) (fun c ->
            Option.bind (Json.member name c) Json.to_int_opt)
      in
      let hist_count name =
        Option.bind (Json.member "histograms" metrics) (fun h ->
            Option.bind (Json.member name h) (fun o ->
                Option.bind (Json.member "count" o) Json.to_int_opt))
      in
      match
        ( counter "entangle.gcache.misses",
          hist_count "entangle.gcache.footprint" )
      with
      | Some misses, Some fp ->
        if fp > misses then
          err
            "%s: entangle.gcache.footprint count %d exceeds \
             entangle.gcache.misses %d"
            where fp misses
      | Some misses, None when misses > 0 ->
        err "%s: entangle.gcache.misses > 0 but no footprint histogram" where
      | _ -> ())
    | _ -> err "%s: metrics is not an object" where
  in
  (* Latency attribution (PR 4) is optional — pre-PR-4 documents and
     paper-scale fixtures do not carry it — but when present it must be
     structurally complete and consistent: phase times must sum to the
     attribution's own measured total within 5%, and that total must
     agree with the independently-measured core.scheduler.txn_latency_s
     histogram within 5% (checked only when the event ring dropped
     nothing, so coverage is exact). *)
  let attrib_phases =
    [ "in_pool"; "executing"; "lock_blocked"; "entangle_blocked"; "committing" ]
  in
  let close ~slack a b = Float.abs (a -. b) <= (slack *. Float.max (Float.abs b) 1e-9) in
  let check_attrib ~where attr metrics =
    let num key =
      Option.bind (Json.member key attr) Json.to_float_opt
    in
    let summary_field obj key =
      Option.bind obj (fun o -> Option.bind (Json.member key o) Json.to_float_opt)
    in
    (match Option.bind (Json.member "txns" attr) Json.to_int_opt with
    | Some n when n >= 0 -> ()
    | _ -> err "%s: latency_attribution.txns missing or negative" where);
    let phase_objs =
      List.map
        (fun p ->
          match Option.bind (Json.member "phases" attr) (Json.member p) with
          | Some o -> Some o
          | None ->
            err "%s: latency_attribution.phases.%s missing" where p;
            None)
        attrib_phases
    in
    let total = Json.member "total" attr in
    if total = None then err "%s: latency_attribution.total missing" where;
    (match (num "attributed_sum_s", num "measured_sum_s") with
    | Some a, Some m when Float.is_finite a && Float.is_finite m ->
      if not (close ~slack:0.05 a m) then
        err "%s: attributed_sum_s %.6f vs measured_sum_s %.6f differ by > 5%%"
          where a m;
      let phase_sum =
        List.fold_left
          (fun acc o -> acc +. Option.value ~default:0.0 (summary_field o "sum"))
          0.0 phase_objs
      in
      if not (close ~slack:0.05 phase_sum m) then
        err "%s: per-phase sums %.6f do not sum to measured latency %.6f" where
          phase_sum m;
      let dropped =
        Option.value ~default:1
          (Option.bind (Json.member "dropped_events" attr) Json.to_int_opt)
      in
      let lat_hist =
        Option.bind (Json.member "histograms" metrics)
          (Json.member "core.scheduler.txn_latency_s")
      in
      (match (dropped, summary_field lat_hist "sum", summary_field lat_hist "count") with
      | 0, Some hsum, Some hcount when hcount > 0.0 ->
        if not (close ~slack:0.05 m hsum) then
          err
            "%s: attribution measured_sum_s %.6f vs txn_latency_s sum %.6f \
             differ by > 5%%"
            where m hsum
      | _ -> ())
    | _ -> err "%s: latency_attribution sums missing or not finite" where)
  in
  let check_point ~where point =
    (match Option.bind (Json.member "x" point) Json.to_float_opt with
    | Some x when Float.is_finite x -> ()
    | _ -> err "%s: x missing or not finite" where);
    (match Option.bind (Json.member "time_s" point) Json.to_float_opt with
    | Some t when Float.is_finite t && t > 0.0 -> ()
    | Some _ -> err "%s: time_s not finite and positive" where
    | None -> err "%s: time_s missing" where);
    (match Json.member "slo" point with
    | Some slo -> check_slo ~errors ~where:(where ^ " slo") slo
    | None -> ());
    (* Optional member, emitted by the scale-up experiment: fraction of
       the cell's wall-clock spent in the coordination phase. *)
    (match Json.member "coordination_share" point with
    | Some v -> (
      match Json.to_float_opt v with
      | Some s when Float.is_finite s && s >= 0.0 && s <= 1.0 -> ()
      | _ -> err "%s: coordination_share not a fraction in [0, 1]" where)
    | None -> ());
    match Json.member "metrics" point with
    | Some metrics ->
      check_metrics ~where metrics;
      (match Json.member "latency_attribution" point with
      | Some attr -> check_attrib ~where attr metrics
      | None -> ())
    | None -> err "%s: metrics snapshot missing" where
  in
  (match Option.bind (Json.member "schema_version" doc) Json.to_int_opt with
  | Some v when v = version -> ()
  | Some v -> err "schema_version %d, expected %d" v version
  | None -> err "schema_version missing");
  (match Option.bind (Json.member "bench_txns" doc) Json.to_int_opt with
  | Some n when n > 0 -> ()
  | _ -> err "bench_txns missing or not positive");
  (let unit =
     expected_unit
       (Option.value ~default:""
          (Option.bind (Json.member "figure" doc) Json.to_string_opt))
   in
   match Option.bind (Json.member "unit" doc) Json.to_string_opt with
   | Some u when u = unit -> ()
   | _ -> err "unit missing or not %S" unit);
  (match Option.bind (Json.member "figure" doc) Json.to_string_opt with
  | None -> err "figure missing"
  | Some figure -> (
    match expected_series figure with
    | None -> err "unknown figure %S" figure
    | Some (x_label, expected) -> (
      (match Option.bind (Json.member "x_label" doc) Json.to_string_opt with
      | Some l when l = x_label -> ()
      | _ -> err "x_label missing or not %S" x_label);
      match Option.bind (Json.member "series" doc) Json.to_list_opt with
      | None -> err "series missing or not a list"
      | Some series ->
        let names =
          List.filter_map
            (fun s -> Option.bind (Json.member "name" s) Json.to_string_opt)
            series
        in
        List.iter
          (fun name ->
            if not (List.mem name names) then
              err "%s: series %S missing" figure name)
          expected;
        List.iter
          (fun name ->
            if not (List.mem name expected) then
              err "%s: unexpected series %S" figure name)
          names;
        List.iter
          (fun s ->
            let name =
              Option.value ~default:"<unnamed>"
                (Option.bind (Json.member "name" s) Json.to_string_opt)
            in
            match Option.bind (Json.member "points" s) Json.to_list_opt with
            | None | Some [] -> err "series %S: points missing or empty" name
            | Some points ->
              List.iteri
                (fun i p ->
                  check_point ~where:(Printf.sprintf "series %S point %d" name i) p)
                points)
          series)));
  (* the 2PL-vs-SI comparison runs the Social-T workload only, which
     coordinates nothing — the entangle layer is legitimately silent *)
  let required_layers =
    match Option.bind (Json.member "figure" doc) Json.to_string_opt with
    | Some "si" -> [ "txn."; "storage."; "core." ]
    | _ -> layers
  in
  List.iter
    (fun prefix ->
      if not (Hashtbl.mem live_layers prefix) then
        err "no point has a nonzero %s* counter (layer uninstrumented?)" prefix)
    required_layers;
  match !errors with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

(* --- Chrome trace-event documents (Trace.to_json) --- *)

let is_trace doc = Json.member "traceEvents" doc <> None

let validate_trace (doc : Json.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let phases = [ "i"; "X"; "M"; "s"; "f" ] in
  let flow_starts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let flow_ends : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl id =
    Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  let instants = ref 0 in
  let check_event ~where ev =
    let field key = Json.member key ev in
    let int key = Option.bind (field key) Json.to_int_opt in
    let num key = Option.bind (field key) Json.to_float_opt in
    (match Option.bind (field "name") Json.to_string_opt with
    | Some _ -> ()
    | None -> err "%s: name missing" where);
    (match int "pid" with
    | Some p when p >= 0 -> ()
    | _ -> err "%s: pid missing or negative" where);
    (match int "tid" with
    | Some t when t >= 0 -> ()
    | _ -> err "%s: tid missing or negative" where);
    (match num "ts" with
    | Some ts when Float.is_finite ts && ts >= 0.0 -> ()
    | _ -> err "%s: ts missing, negative or not finite" where);
    match Option.bind (field "ph") Json.to_string_opt with
    | None -> err "%s: ph missing" where
    | Some ph when not (List.mem ph phases) ->
      err "%s: unknown ph %S" where ph
    | Some "X" -> (
      match num "dur" with
      | Some d when Float.is_finite d && d >= 0.0 -> ()
      | _ -> err "%s: complete event without finite dur" where)
    | Some "i" -> (
      incr instants;
      match Option.bind (field "args") (Json.member "seq") with
      | Some (Json.Int _) -> ()
      | _ -> err "%s: instant event without integer args.seq" where)
    | Some (("s" | "f") as ph) -> (
      match int "id" with
      | Some id -> bump (if ph = "s" then flow_starts else flow_ends) id
      | None -> err "%s: flow event without integer id" where)
    | Some _ -> ()
  in
  (match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
  | None -> err "traceEvents missing or not a list"
  | Some evs ->
    List.iteri
      (fun i ev -> check_event ~where:(Printf.sprintf "traceEvents[%d]" i) ev)
      evs);
  (* Every entanglement edge must be a balanced s/f pair: an unmatched
     flow endpoint means a partner-match event lost its peer. *)
  Hashtbl.iter
    (fun id n ->
      let m = Option.value ~default:0 (Hashtbl.find_opt flow_ends id) in
      if n <> m then err "flow id %d: %d start(s) but %d finish(es)" id n m)
    flow_starts;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem flow_starts id) then
        err "flow id %d: finish without start" id)
    flow_ends;
  (match
     Option.bind (Json.member "otherData" doc) (fun o ->
         Option.bind (Json.member "events" o) Json.to_int_opt)
   with
  | Some n when n <> !instants ->
    err "otherData.events says %d events but %d instants exported" n !instants
  | _ -> ());
  match !errors with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

(* --- flight-recorder documents (Flight.to_json) --- *)

let is_flight doc = Json.member "flight_recorder" doc <> None

let validate_flight (doc : Json.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (match Option.bind (Json.member "flight_recorder" doc) Json.to_int_opt with
  | Some v when v = version -> ()
  | Some v -> err "flight_recorder version %d, expected %d" v version
  | None -> err "flight_recorder version missing");
  (match Option.bind (Json.member "reason" doc) Json.to_string_opt with
  | Some r when r <> "" -> ()
  | _ -> err "reason missing or empty");
  (match Option.bind (Json.member "captured_sim_s" doc) Json.to_float_opt with
  | Some t when Float.is_finite t -> ()
  | _ -> err "captured_sim_s missing or not finite");
  (match Json.member "metrics" doc with
  | Some metrics ->
    List.iter
      (fun sec ->
        match Json.member sec metrics with
        | Some (Json.Obj _) -> ()
        | _ -> err "metrics.%s missing or not an object" sec)
      [ "counters"; "gauges"; "histograms" ]
  | None -> err "metrics missing");
  (match Json.member "timeseries" doc with
  | None -> err "timeseries missing"
  | Some ts ->
    (match Option.bind (Json.member "window_s" ts) Json.to_float_opt with
    | Some w when Float.is_finite w && w > 0.0 -> ()
    | _ -> err "timeseries.window_s missing or not positive");
    (match Option.bind (Json.member "windows" ts) Json.to_list_opt with
    | None -> err "timeseries.windows missing or not a list"
    | Some ws ->
      List.iteri
        (fun i w ->
          let where = Printf.sprintf "timeseries.windows[%d]" i in
          (match Option.bind (Json.member "start" w) Json.to_float_opt with
          | Some s when Float.is_finite s -> ()
          | _ -> err "%s: start missing or not finite" where);
          (match Option.bind (Json.member "width" w) Json.to_float_opt with
          | Some d when Float.is_finite d && d > 0.0 -> ()
          | _ -> err "%s: width missing or not positive" where);
          List.iter
            (fun sec ->
              match Json.member sec w with
              | Some (Json.Obj _) -> ()
              | _ -> err "%s: %s missing or not an object" where sec)
            [ "counters"; "gauges"; "histograms" ])
        ws));
  (match Option.bind (Json.member "events" doc) Json.to_list_opt with
  | None -> err "events missing or not a list"
  | Some evs ->
    List.iteri
      (fun i ev ->
        let where = Printf.sprintf "events[%d]" i in
        (match Option.bind (Json.member "seq" ev) Json.to_int_opt with
        | Some s when s >= 0 -> ()
        | _ -> err "%s: seq missing or negative" where);
        match Option.bind (Json.member "kind" ev) Json.to_string_opt with
        | Some k when k <> "" -> ()
        | _ -> err "%s: kind missing or empty" where)
      evs);
  (match Option.bind (Json.member "events_dropped" doc) Json.to_int_opt with
  | Some n when n >= 0 -> ()
  | _ -> err "events_dropped missing or negative");
  (match Json.member "slo" doc with
  | Some slo -> check_slo ~errors ~where:"slo" slo
  | None -> ());
  (match Json.member "wait_graph" doc with
  | None | Some (Json.Str _) -> ()
  | Some _ -> err "wait_graph not a string");
  match !errors with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

let validate_string s =
  match Json.of_string s with
  | doc ->
    if is_flight doc then validate_flight doc
    else if is_trace doc then validate_trace doc
    else validate doc
  | exception Json.Parse_error msg -> Error [ "JSON parse error: " ^ msg ]

let validate_file path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string s
