(* Schema for the machine-readable benchmark artifacts.

   bench/main.exe --metrics writes one document per figure
   (BENCH_fig6a.json / BENCH_fig6b.json / BENCH_fig6c.json):

     { "schema_version": 1,
       "figure": "fig6a",
       "bench_txns": 2000,
       "x_label": "connections",
       "unit": "simulated_seconds",
       "series": [
         { "name": "NoSocial-T",
           "points": [ { "x": 10, "time_s": 0.55, "metrics": SNAPSHOT },
                       ... ] },
         ... ] }

   where SNAPSHOT is an Obs.snapshot_json taken right after the cell
   ran (the registry is reset before each cell, so the snapshot is
   per-cell). CI's bench-smoke job regenerates the documents at reduced
   scale and feeds them through [validate], which enforces exactly what
   EXPERIMENTS.md documents: every expected series present, every point
   finite with a positive time, every point carrying a snapshot, and —
   across the document — live counters from all four instrumented
   layers (txn, storage, entangle, core). *)

let version = 1

let expected_series = function
  | "fig6a" ->
    Some
      ( "connections",
        [ "NoSocial-T"; "Social-T"; "Entangled-T";
          "NoSocial-Q"; "Social-Q"; "Entangled-Q" ] )
  | "fig6b" -> Some ("pending", [ "f=1"; "f=10"; "f=50" ])
  | "fig6c" ->
    Some
      ( "set_size",
        [ "Spoke-hub f=10"; "Spoke-hub f=50"; "Cycle f=10"; "Cycle f=50" ] )
  | _ -> None

let layers = [ "txn."; "storage."; "entangle."; "core." ]

let validate (doc : Json.t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let live_layers = Hashtbl.create 4 in
  let check_metrics ~where metrics =
    match metrics with
    | Json.Obj _ -> (
      (match Json.member "counters" metrics with
      | Some (Json.Obj counters) ->
        List.iter
          (fun (name, v) ->
            match Json.to_int_opt v with
            | Some n when n >= 0 ->
              if n > 0 then
                List.iter
                  (fun prefix ->
                    if String.starts_with ~prefix name then
                      Hashtbl.replace live_layers prefix ())
                  layers
            | _ -> err "%s: counter %s is not a nonnegative integer" where name)
          counters
      | _ -> err "%s: metrics.counters missing or not an object" where);
      (match Json.member "histograms" metrics with
      | Some (Json.Obj hists) ->
        List.iter
          (fun (name, h) ->
            match Json.member "count" h with
            | Some (Json.Int n) when n >= 0 -> ()
            | _ -> err "%s: histogram %s has no integer count" where name)
          hists
      | _ -> err "%s: metrics.histograms missing or not an object" where);
      match Json.member "gauges" metrics with
      | Some (Json.Obj _) -> ()
      | _ -> err "%s: metrics.gauges missing or not an object" where)
    | _ -> err "%s: metrics is not an object" where
  in
  let check_point ~where point =
    (match Option.bind (Json.member "x" point) Json.to_float_opt with
    | Some x when Float.is_finite x -> ()
    | _ -> err "%s: x missing or not finite" where);
    (match Option.bind (Json.member "time_s" point) Json.to_float_opt with
    | Some t when Float.is_finite t && t > 0.0 -> ()
    | Some _ -> err "%s: time_s not finite and positive" where
    | None -> err "%s: time_s missing" where);
    match Json.member "metrics" point with
    | Some metrics -> check_metrics ~where metrics
    | None -> err "%s: metrics snapshot missing" where
  in
  (match Option.bind (Json.member "schema_version" doc) Json.to_int_opt with
  | Some v when v = version -> ()
  | Some v -> err "schema_version %d, expected %d" v version
  | None -> err "schema_version missing");
  (match Option.bind (Json.member "bench_txns" doc) Json.to_int_opt with
  | Some n when n > 0 -> ()
  | _ -> err "bench_txns missing or not positive");
  (match Option.bind (Json.member "unit" doc) Json.to_string_opt with
  | Some "simulated_seconds" -> ()
  | _ -> err "unit missing or not \"simulated_seconds\"");
  (match Option.bind (Json.member "figure" doc) Json.to_string_opt with
  | None -> err "figure missing"
  | Some figure -> (
    match expected_series figure with
    | None -> err "unknown figure %S" figure
    | Some (x_label, expected) -> (
      (match Option.bind (Json.member "x_label" doc) Json.to_string_opt with
      | Some l when l = x_label -> ()
      | _ -> err "x_label missing or not %S" x_label);
      match Option.bind (Json.member "series" doc) Json.to_list_opt with
      | None -> err "series missing or not a list"
      | Some series ->
        let names =
          List.filter_map
            (fun s -> Option.bind (Json.member "name" s) Json.to_string_opt)
            series
        in
        List.iter
          (fun name ->
            if not (List.mem name names) then
              err "%s: series %S missing" figure name)
          expected;
        List.iter
          (fun name ->
            if not (List.mem name expected) then
              err "%s: unexpected series %S" figure name)
          names;
        List.iter
          (fun s ->
            let name =
              Option.value ~default:"<unnamed>"
                (Option.bind (Json.member "name" s) Json.to_string_opt)
            in
            match Option.bind (Json.member "points" s) Json.to_list_opt with
            | None | Some [] -> err "series %S: points missing or empty" name
            | Some points ->
              List.iteri
                (fun i p ->
                  check_point ~where:(Printf.sprintf "series %S point %d" name i) p)
                points)
          series)));
  List.iter
    (fun prefix ->
      if not (Hashtbl.mem live_layers prefix) then
        err "no point has a nonzero %s* counter (layer uninstrumented?)" prefix)
    layers;
  match !errors with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

let validate_string s =
  match Json.of_string s with
  | doc -> validate doc
  | exception Json.Parse_error msg -> Error [ "JSON parse error: " ^ msg ]

let validate_file path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string s
