(* Log-scale latency histogram (DDSketch-style).

   Values land in exponential buckets with ratio gamma =
   (1+alpha)/(1-alpha), which bounds the relative error of any quantile
   estimate by alpha. Recording is an O(1) hashtable bump, so the
   histograms can stay on in production paths; the quantile scan is
   O(buckets) and only runs at snapshot time. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  buckets : (int, int) Hashtbl.t;  (* bucket index -> count, positives *)
  mutable zero_count : int;  (* values <= 0 (latencies are nonnegative) *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let default_alpha = 0.01

let create ?(alpha = default_alpha) () =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Hist.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    buckets = Hashtbl.create 64;
    zero_count = 0;
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
  }

let alpha t = t.alpha

let bucket_of t v = int_of_float (Float.ceil (log v /. t.log_gamma))

(* Midpoint of bucket [i]: gamma^i covers (gamma^(i-1), gamma^i], report
   the value with equal relative distance to both ends. *)
let bucket_value t i = 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)

let observe t v =
  if Float.is_finite v then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    if v <= 0.0 then t.zero_count <- t.zero_count + 1
    else begin
      let b = bucket_of t v in
      Hashtbl.replace t.buckets b
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.buckets b))
    end
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0.0
  else if q <= 0.0 then t.min
  else if q >= 1.0 then t.max
  else begin
    (* rank of the order statistic we are estimating, 1-based *)
    let rank =
      1 + int_of_float (Float.round (q *. float_of_int (t.count - 1)))
    in
    if rank <= t.zero_count then 0.0
    else begin
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.buckets [])
      in
      let rec scan seen = function
        | [] -> t.max
        | (i, n) :: rest ->
          if seen + n >= rank then
            (* clamp so estimates never escape the observed range *)
            Float.min t.max (Float.max t.min (bucket_value t i))
          else scan (seen + n) rest
      in
      scan t.zero_count sorted
    end
  end

let reset t =
  Hashtbl.reset t.buckets;
  t.zero_count <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

let copy t = { t with buckets = Hashtbl.copy t.buckets }

(* Bounds of bucket [i]: it covers (gamma^(i-1), gamma^i]. *)
let bucket_lo t i = t.gamma ** float_of_int (i - 1)
let bucket_hi t i = t.gamma ** float_of_int i

(* The true min/max of a window are unrecoverable from two cumulative
   snapshots, so [diff] reconstructs them from the delta's occupied
   bucket range: the estimate stays within one bucket (≈ alpha relative
   error) of the true extreme, which keeps [quantile]'s clamping
   harmless. *)
let rebound t =
  if t.count = 0 then begin
    t.min <- infinity;
    t.max <- neg_infinity
  end
  else begin
    let lo = ref max_int and hi = ref min_int in
    Hashtbl.iter
      (fun i n ->
        if n > 0 then begin
          if i < !lo then lo := i;
          if i > !hi then hi := i
        end)
      t.buckets;
    if !hi = min_int then begin
      (* only zero/negative observations *)
      t.min <- 0.0;
      t.max <- 0.0
    end
    else begin
      t.min <- (if t.zero_count > 0 then 0.0 else bucket_lo t !lo);
      t.max <- bucket_hi t !hi
    end
  end

let diff ~newer ~older =
  if newer.alpha <> older.alpha then
    invalid_arg "Hist.diff: histograms use different alpha";
  let d = create ~alpha:newer.alpha () in
  Hashtbl.iter
    (fun i n ->
      let o = Option.value ~default:0 (Hashtbl.find_opt older.buckets i) in
      if n - o > 0 then Hashtbl.replace d.buckets i (n - o))
    newer.buckets;
  d.zero_count <- Int.max 0 (newer.zero_count - older.zero_count);
  d.count <- Int.max 0 (newer.count - older.count);
  d.sum <- newer.sum -. older.sum;
  rebound d;
  d

let merge_into ~into t =
  if into.alpha <> t.alpha then
    invalid_arg "Hist.merge_into: histograms use different alpha";
  Hashtbl.iter
    (fun i n ->
      Hashtbl.replace into.buckets i
        (n + Option.value ~default:0 (Hashtbl.find_opt into.buckets i)))
    t.buckets;
  into.zero_count <- into.zero_count + t.zero_count;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum;
  if t.count > 0 then begin
    if t.min < into.min then into.min <- t.min;
    if t.max > into.max then into.max <- t.max
  end

let summary t =
  let f v = Json.Float (if Float.is_finite v then v else 0.0) in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", f t.sum);
      ("mean", f (mean t));
      ("min", f (if t.count = 0 then 0.0 else t.min));
      ("max", f (if t.count = 0 then 0.0 else t.max));
      ("p50", f (quantile t 0.50));
      ("p95", f (quantile t 0.95));
      ("p99", f (quantile t 0.99));
    ]
