(* Crash flight recorder.

   One JSON artifact holding everything needed to reconstruct the last
   N seconds before something went wrong: the windowed time-series
   (rates and latency quantiles per window, including the lock-shard
   contention, MVCC chain-depth and domain-utilization gauges), the
   tail of the structured event ring, the cumulative metric snapshot,
   and — passed in by callers that have one, since obs sits below the
   scheduler — the rendered wait graph. Triggers: an SLO breach
   (youtopia run --slo), an entsim invariant violation, or any caller
   that wants a dump. *)

let version = 1

let to_json ~reason ?wait_graph ?slo ?(events_last = 256) ~sim_now () =
  let fin v = Json.Float (if Float.is_finite v then v else 0.0) in
  Json.Obj
    ([
       ("flight_recorder", Json.Int version);
       ("reason", Json.Str reason);
       ("captured_sim_s", fin sim_now);
       ("metrics", Obs.snapshot_json ());
       ("timeseries", Timeseries.to_json ());
       ( "events",
         Json.List (List.map Event.to_json (Event.recent ~last:events_last ()))
       );
       ("events_dropped", Json.Int (Event.dropped ()));
     ]
    @ (match wait_graph with
      | Some g -> [ ("wait_graph", Json.Str g) ]
      | None -> [])
    @ match slo with Some s -> [ ("slo", s) ] | None -> [])

let write path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n')
