(** Structured causal event log.

    Where the metrics registry ({!Obs}) answers "how much, in total?",
    this module answers "what happened to transaction T, in order, and
    because of whom?". Every layer emits {!kind} events stamped with
    the monotonic clock, the simulated clock, the scheduler run, and
    the transaction/task they belong to; {!Attrib} folds them into
    per-transaction latency attribution and {!Trace} exports them as a
    Chrome trace-event JSON for Perfetto.

    Two identifier spaces meet here. The {e task} id is the scheduler's
    unit of work, stable across retries; the {e txn} id is the engine's
    transaction, fresh per attempt (and per statement under
    autocommit). Layers below the scheduler only know the txn id, so
    {!register_txn} maintains the txn→task mapping and {!emit} resolves
    the task automatically when only a txn is given.

    Logging is off by default and costs one branch per call site when
    off. Events land in a bounded ring ({!set_capacity}); when it
    wraps, the oldest events are dropped and {!dropped} counts them. *)

type kind =
  | Begin  (** engine transaction started for this task/attempt *)
  | Ready  (** program finished its body; awaiting group commit *)
  | Commit  (** engine transaction committed *)
  | Abort of { reason : string }  (** engine transaction rolled back *)
  | Finalize of { outcome : string }
      (** scheduler retired the task ([committed] / [timed_out] /
          [rolled_back] / [errored]); terminal per task *)
  | Lock_wait of { resource : string; holders : int list }
      (** blocked on [resource]; [holders] are the blocking txn ids *)
  | Lock_grant  (** previously blocked lock granted; task resumes *)
  | Entangle_block  (** reached an entangled query with no answer yet *)
  | Answer of { empty : bool }
      (** coordination answered the entangled query ([empty] = the
          CHOOSE NULL branch: no partner, proceed alone) *)
  | Coord_round of { participants : int list }
      (** coordination round over the dormant pool; [participants] are
          the task ids whose entangled queries were considered *)
  | Partner_match of { event : int; peers : int list }
      (** this task was matched into entanglement group [event]
          together with tasks [peers] — one causal edge per peer *)
  | Group_commit of { members : int list }
      (** atomic group commit of the tasks [members] *)
  | Widow_prevention
      (** answered task pulled back because a group peer cannot
          commit in this run (paper §3.4) *)
  | Pool_enter  (** task entered the dormant pool (submit or repool) *)
  | Pool_exit  (** task left the pool to execute in a run *)
  | Run_start of { pool : int }  (** scheduler run began; pool size *)
  | Run_end of { dormant : int }  (** run ended; tasks left dormant *)
  | Wal_append of { lsn : int }  (** WAL record appended durably *)

type t = {
  seq : int;  (** global emission order, dense from 0 per {!reset} *)
  t_mono : float;  (** {!Clock.monotonic} seconds at emission *)
  t_sim : float;  (** simulated seconds ({!set_sim_clock}), else 0 *)
  run : int;  (** scheduler run in progress, 0 before the first *)
  txn : int;  (** engine txn id, [-1] when unknown *)
  task : int;  (** scheduler task id, [-1] when unknown *)
  domain : int;  (** OCaml domain that emitted the event (0 = initial
                     domain; always 0 in deterministic mode) *)
  kind : kind;
}

val set_logging : bool -> unit
val logging : unit -> bool

val set_capacity : int -> unit
(** Resize the ring (clears it). Default 65536 events. *)

val reset : unit -> unit
(** Clear events, sequence numbers, run counter, and the txn→task
    registry. Called by [Obs.reset]. *)

val emit : ?txn:int -> ?task:int -> kind -> unit
(** Record an event now. No-op when logging is off. When [task] is
    omitted but [txn] is registered, the task is resolved from the
    registry. *)

val set_buffered : bool -> unit
(** Switch emission into per-domain buffering: each {!emit} appends to
    a shard for its executing domain — recording its true timestamps
    and a global atomic order stamp — instead of taking the shared ring
    mutex. The scheduler enables this around parallel phases and calls
    {!flush_buffered} at the phase boundary. *)

val flush_buffered : unit -> unit
(** Merge all buffered events into the ring, sorted by their emission
    order stamp — an exact linearization of emission order, so per-txn
    event order (and cross-txn lock hand-off order) is preserved.
    Sequence numbers are assigned at flush. No-op with nothing
    buffered. *)

val register_txn : txn:int -> task:int -> unit
(** Associate a fresh engine txn with the scheduler task running it. *)

val task_of_txn : int -> int option

val set_sim_clock : (unit -> float) -> unit
(** Install the simulated-time source (the scheduler's pool clock). *)

val new_run : unit -> int
(** Advance the run counter; subsequent events carry the new id. *)

val current_run : unit -> int

val events : unit -> t list
(** Retained events, oldest first. *)

val dropped : unit -> int
(** Events lost to ring wrap-around since the last {!reset}. *)

val recent : ?ids:int list -> last:int -> unit -> t list
(** Up to [last] most recent events, oldest first. With [ids], only
    events whose [txn] {e or} [task] is in [ids] (ids name either
    space; violations mix them). *)

val kind_name : kind -> string
val kind_json : kind -> Json.t
(** Payload fields of the kind as a JSON object (possibly empty). *)

val to_json : t -> Json.t
(** [{seq, t_sim, run, txn, task, domain, kind, args}] — one event as
    JSON, for the flight recorder. *)

val render : t -> string
(** One-line human rendering, for repro output and debugging. *)
