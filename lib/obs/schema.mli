(** Validator for the BENCH_fig6*.json benchmark artifacts.

    The document layout is described in EXPERIMENTS.md ("Machine-
    readable results") and in the comment at the top of schema.ml.
    CI's bench-smoke job regenerates the artifacts at reduced scale and
    rejects the build when validation fails. *)

val version : int
(** Current schema_version. *)

val expected_series : string -> (string * string list) option
(** [expected_series figure] is [Some (x_label, series_names)] for
    "fig6a"/"fig6b"/"fig6c", [None] otherwise. *)

val validate : Json.t -> (unit, string list) result
(** Validate a benchmark document. Points may optionally carry a
    ["latency_attribution"] block ({!Attrib.to_json}); when they do,
    its per-phase sums must add up to its measured total within 5%,
    and — when the event ring dropped nothing — that total must agree
    with the [core.scheduler.txn_latency_s] histogram within 5%. *)

val is_trace : Json.t -> bool
(** A document with a ["traceEvents"] member (Chrome trace format). *)

val validate_trace : Json.t -> (unit, string list) result
(** Validate a {!Trace.to_json} document: every event has name / ph /
    pid / tid / finite ts, complete events carry finite durations,
    instants carry their log sequence number, flow start/finish pairs
    balance, and the exported instant count matches
    ["otherData"."events"]. *)

val validate_string : string -> (unit, string list) result
val validate_file : string -> (unit, string list) result
(** Parse then dispatch on {!is_trace}: trace documents go through
    {!validate_trace}, everything else through {!validate}. *)
