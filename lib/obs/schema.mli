(** Validator for the BENCH_fig6*.json benchmark artifacts.

    The document layout is described in EXPERIMENTS.md ("Machine-
    readable results") and in the comment at the top of schema.ml.
    CI's bench-smoke job regenerates the artifacts at reduced scale and
    rejects the build when validation fails. *)

val version : int
(** Current schema_version. *)

val expected_series : string -> (string * string list) option
(** [expected_series figure] is [Some (x_label, series_names)] for
    "fig6a"/"fig6b"/"fig6c", [None] otherwise. *)

val validate : Json.t -> (unit, string list) result
val validate_string : string -> (unit, string list) result
val validate_file : string -> (unit, string list) result
