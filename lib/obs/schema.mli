(** Validator for the BENCH_fig6*.json benchmark artifacts.

    The document layout is described in EXPERIMENTS.md ("Machine-
    readable results") and in the comment at the top of schema.ml.
    CI's bench-smoke job regenerates the artifacts at reduced scale and
    rejects the build when validation fails. *)

val version : int
(** Current schema_version. *)

val expected_series : string -> (string * string list) option
(** [expected_series figure] is [Some (x_label, series_names)] for
    "fig6a"/"fig6b"/"fig6c", [None] otherwise. *)

val validate : Json.t -> (unit, string list) result
(** Validate a benchmark document. Points may optionally carry a
    ["latency_attribution"] block ({!Attrib.to_json}); when they do,
    its per-phase sums must add up to its measured total within 5%,
    and — when the event ring dropped nothing — that total must agree
    with the [core.scheduler.txn_latency_s] histogram within 5%.
    Points may also carry an ["slo"] section ({!Slo.report_json}),
    checked with {!validate_slo_report}. *)

val validate_slo_report : Json.t -> (unit, string list) result
(** Validate one {!Slo.report_json} section: ok/total_breaches
    consistency, per-spec shape, total = sum of per-spec breaches,
    finite alert values. *)

val is_trace : Json.t -> bool
(** A document with a ["traceEvents"] member (Chrome trace format). *)

val is_flight : Json.t -> bool
(** A document with a top-level ["flight_recorder"] member. *)

val validate_flight : Json.t -> (unit, string list) result
(** Validate a {!Flight.to_json} artifact: version, reason, finite
    capture time, metric snapshot sections, per-window time-series
    shape, event tail, and (when present) the embedded SLO report and
    wait graph. *)

val validate_trace : Json.t -> (unit, string list) result
(** Validate a {!Trace.to_json} document: every event has name / ph /
    pid / tid / finite ts, complete events carry finite durations,
    instants carry their log sequence number, flow start/finish pairs
    balance, and the exported instant count matches
    ["otherData"."events"]. *)

val validate_string : string -> (unit, string list) result
val validate_file : string -> (unit, string list) result
(** Parse then dispatch: flight-recorder documents ({!is_flight}) go
    through {!validate_flight}, trace documents ({!is_trace}) through
    {!validate_trace}, everything else through {!validate}. *)
