(* Windowed time-series over the metrics registry.

   [sample now] is called from the scheduler's coordinator between
   parallel phases (so histogram reads never race worker observes) and
   costs one branch when disabled. When a sample crosses a window
   boundary, the window that just ended is "closed": every registered
   counter contributes its delta since the window opened, every
   histogram a bucket-wise delta histogram (Hist.diff of two cumulative
   snapshots — exact counts, alpha-accurate quantiles), and every gauge
   its value at close. Closed windows land in a fixed-size ring.

   Attribution semantics: a window's deltas are whatever accumulated
   between the sample that opened it and the sample that closed it.
   With the scheduler sampling every progress-loop iteration the
   resolution is one scheduler step; the QCheck oracle test drives
   sample/observe in lockstep where attribution is exact.

   Simulated-time quirks the scheduler imposes:
   - time can jump far forward (timeout wakeups): the pre-jump window
     closes with its deltas, empty windows fill the gap, and a jump
     longer than the whole ring just re-anchors (the skipped empties
     would all be overwritten anyway);
   - time can go backwards (entsim crash/recovery restarts the pool
     clock): we re-anchor at the new epoch and keep the counter bases,
     so pre-crash deltas roll into the first post-crash window rather
     than being lost or double-counted;
   - [Obs.reset] (benchmarks, between cells) zeroes every metric: a
     reset hook clears the ring and bases so the next sample re-anchors
     from zero. *)

type window = {
  w_start : float;
  w_width : float;
  w_counters : (string * int) list;
  w_gauges : (string * float) list;
  w_hists : (string * Hist.t) list;
}

let on = ref false
let mu = Mutex.create ()
let width_r = ref 1.0
let capacity_r = ref 120
let ring : window option array ref = ref [||]
let total = ref 0 (* windows ever closed; ring slot = total mod capacity *)
let anchored = ref false
let cur_start = ref 0.0
let last_now = ref 0.0
let base_counters : (string, int) Hashtbl.t = Hashtbl.create 64
let base_hists : (string, Hist.t) Hashtbl.t = Hashtbl.create 16
let on_window : (window -> unit) option ref = ref None
let reset_hook_installed = ref false

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let enabled () = !on
let width () = !width_r
let set_on_window f = on_window := f

let clear_state () =
  ring := Array.make !capacity_r None;
  total := 0;
  anchored := false;
  Hashtbl.reset base_counters;
  Hashtbl.reset base_hists

let enable ?(width = 1.0) ?(capacity = 120) () =
  if width <= 0.0 || not (Float.is_finite width) then
    invalid_arg "Timeseries.enable: width must be positive";
  if capacity <= 0 then
    invalid_arg "Timeseries.enable: capacity must be positive";
  locked (fun () ->
      if not !reset_hook_installed then begin
        reset_hook_installed := true;
        Obs.add_reset_hook (fun () ->
            locked (fun () -> if !on then clear_state ()))
      end;
      width_r := width;
      capacity_r := capacity;
      clear_state ();
      on := true)

let disable () =
  locked (fun () ->
      on := false;
      on_window := None;
      clear_state ())

let align now = Float.floor (now /. !width_r) *. !width_r

(* Assumes [mu] held. Snapshot bases without producing a window (used
   when anchoring: there is no previous window to attribute to). *)
let rebase () =
  Hashtbl.reset base_counters;
  Hashtbl.reset base_hists;
  List.iter
    (fun name ->
      match Obs.find_counter name with
      | Some v -> Hashtbl.replace base_counters name v
      | None -> (
        match Obs.find_histogram name with
        | Some h -> Hashtbl.replace base_hists name (Hist.copy h)
        | None -> ()))
    (Obs.metric_names ())

(* Assumes [mu] held. Close the window [start, start+width) against the
   current bases, advancing the bases to the new snapshot. *)
let close_window ~start ~width =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun name ->
      match Obs.find_counter name with
      | Some v ->
        let b = Option.value ~default:0 (Hashtbl.find_opt base_counters name) in
        if v <> b then counters := (name, v - b) :: !counters;
        Hashtbl.replace base_counters name v
      | None -> (
        match Obs.find_gauge name with
        | Some v -> gauges := (name, v) :: !gauges
        | None -> (
          match Obs.find_histogram name with
          | Some h ->
            let d =
              match Hashtbl.find_opt base_hists name with
              | Some b -> Hist.diff ~newer:h ~older:b
              | None -> Hist.copy h
            in
            if Hist.count d > 0 then hists := (name, d) :: !hists;
            Hashtbl.replace base_hists name (Hist.copy h)
          | None -> ())))
    (Obs.metric_names ());
  {
    w_start = start;
    w_width = width;
    w_counters = List.rev !counters;
    w_gauges = List.rev !gauges;
    w_hists = List.rev !hists;
  }

let push w =
  let r = !ring in
  r.(!total mod Array.length r) <- Some w;
  incr total

let run_hook closed =
  match (!on_window, closed) with
  | None, _ | _, [] -> ()
  | Some f, ws -> List.iter f ws

let sample_locked now =
  let closed = ref [] in
  locked (fun () ->
      last_now := now;
      if not !anchored then begin
        anchored := true;
        cur_start := align now;
        rebase ()
      end
      else if now < !cur_start then
        (* clock went backwards: new simulated epoch, keep the bases *)
        cur_start := align now
      else begin
        let steps = int_of_float ((now -. !cur_start) /. !width_r) in
        if steps > !capacity_r then begin
          (* bank the pre-jump deltas, then skip the unrepresentable gap *)
          let w = close_window ~start:!cur_start ~width:!width_r in
          push w;
          closed := [ w ];
          cur_start := align now
        end
        else
          while now >= !cur_start +. !width_r do
            let w = close_window ~start:!cur_start ~width:!width_r in
            push w;
            closed := w :: !closed;
            cur_start := !cur_start +. !width_r
          done
      end);
  run_hook (List.rev !closed)

let sample now = if !on then sample_locked now

let flush () =
  if !on then begin
    let closed = ref [] in
    locked (fun () ->
        if !anchored && !last_now > !cur_start then begin
          let w =
            close_window ~start:!cur_start ~width:(!last_now -. !cur_start)
          in
          push w;
          closed := [ w ];
          cur_start := !last_now
        end);
    run_hook !closed
  end

let windows () =
  locked (fun () ->
      let r = !ring in
      let cap = Array.length r in
      if cap = 0 then []
      else begin
        let n = min !total cap in
        let first = !total - n in
        List.filter_map (fun i -> r.((first + i) mod cap)) (List.init n Fun.id)
      end)

let last n =
  let ws = windows () in
  let len = List.length ws in
  if len <= n then ws else List.filteri (fun i _ -> i >= len - n) ws

let counter_delta w name =
  Option.value ~default:0 (List.assoc_opt name w.w_counters)

let window_hist w name = List.assoc_opt name w.w_hists

let window_json w =
  let fin v = Json.Float (if Float.is_finite v then v else 0.0) in
  Json.Obj
    [
      ("start", fin w.w_start);
      ("width", fin w.w_width);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) w.w_counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, fin v)) w.w_gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, Hist.summary h)) w.w_hists) );
    ]

let to_json ?last:(n = max_int) () =
  Json.Obj
    [
      ("window_s", Json.Float !width_r);
      ("windows", Json.List (List.map window_json (last n)));
    ]
