(* Minimal JSON — value type, printer, recursive-descent parser.

   The observability layer must emit and validate machine-readable
   snapshots without pulling in yojson (the tree is dependency-light by
   design, DESIGN.md §6). Numbers distinguish Int from Float so
   counters round-trip exactly; the printer refuses non-finite floats
   (snapshot values must stay finite for the CI schema check). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* shortest representation that round-trips and still parses as a
     JSON number (i.e. never "inf"/"nan", always with . or e) *)
  if not (Float.is_finite f) then
    invalid_arg "Json: non-finite float in document";
  let s = Printf.sprintf "%.12g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at offset %d, found %C" ch c.pos x
  | None -> fail "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "invalid literal at offset %d" c.pos

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail "invalid \\u escape %S" hex
        in
        (* encode the code point as UTF-8 (no surrogate-pair support:
           snapshots only contain metric names and labels) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail "invalid escape at offset %d" c.pos)
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "invalid number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; members ()
        | Some '}' -> advance c
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; elements ()
        | Some ']' -> advance c
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "trailing garbage at offset %d" c.pos;
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | _ -> None

let to_list_opt = function
  | List items -> Some items
  | _ -> None

let to_string_opt = function
  | Str s -> Some s
  | _ -> None
