(** Minimal JSON value type with a printer and parser.

    Used by the observability layer ({!Obs}) for snapshots and by the
    benchmark harness for machine-readable results — deliberately tiny
    so the tree stays free of external JSON dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) serialization.
    @raise Invalid_argument on non-finite floats. *)

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} — total; return [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option
val to_string_opt : t -> string option
