(* Injection-point registry and the active fault plan.

   Each subsystem declares its injection points once, at module
   initialisation, with [site]; the returned handle is hit on every
   pass through the instrumented code path. When no plan is installed
   (the default, and the only mode benchmarks ever run in) a hit is a
   single ref read — the registry costs nothing until a harness arms
   it. Hit counters are per-installation, so the same (seed, plan)
   pair always fires the same arms at the same points. *)

exception Crashed of string  (* simulated process death at the named site *)
exception Failed of string   (* injected component failure at the named site *)

type site = {
  name : string;
  mutable hits : int;
  mutable arms : (int * Plan.action) list;
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []
let active = ref false

let site name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let s = { name; hits = 0; arms = [] } in
    Hashtbl.replace registry name s;
    order := name :: !order;
    s

let all_sites () = List.rev !order

let reset () =
  Hashtbl.iter
    (fun _ s ->
      s.hits <- 0;
      s.arms <- [])
    registry

(* Install a plan and start counting hits. The empty plan is the
   profiling mode: nothing fires, but [counts] reports how often each
   site was reached, which bounds the hit counts of generated plans. *)
let install plan =
  reset ();
  List.iter
    (fun (a : Plan.arm) ->
      let s = site a.site in
      s.arms <- s.arms @ [ (a.hit, a.action) ])
    plan;
  active := true

let deactivate () =
  active := false;
  reset ()

let counts () = List.map (fun name -> (name, (site name).hits)) (all_sites ())

(* One pass through the site: count it and return the armed action, if
   any, consuming the arm so it fires exactly once. *)
let fire s =
  if not !active then None
  else begin
    s.hits <- s.hits + 1;
    let fired, rest =
      List.partition (fun (h, _) -> h = s.hits) s.arms
    in
    s.arms <- rest;
    match fired with
    | [] -> None
    | (_, action) :: _ -> Some action
  end

let crash s = raise (Crashed s.name)
let fail s = raise (Failed s.name)

(* Exception-style site: any armed fault kills or fails the process. *)
let hit s =
  match fire s with
  | None | Some Plan.Drop -> ()
  | Some (Plan.Crash | Plan.Torn) -> crash s
  | Some Plan.Fail -> fail s

(* Behavioural site: Fail/Drop flip the guarded behaviour (return
   true); Crash/Torn still kill the process. *)
let drops s =
  match fire s with
  | None -> false
  | Some (Plan.Fail | Plan.Drop) -> true
  | Some (Plan.Crash | Plan.Torn) -> crash s
