(* Fault plans: a finite list of arms, each naming an injection site,
   the hit count at which it fires (1-based, counted per simulation),
   and the fault to inject there.

   Plans print/parse as `site@hit=action[,site@hit=action...]` so every
   harness failure is replayable from a one-line command. *)

type action =
  | Crash  (* the simulated process dies at the site *)
  | Torn   (* like Crash, but the in-flight record is half-durable *)
  | Fail   (* the component reports an error; the process survives *)
  | Drop   (* the site's effect is silently lost (snapshot, partner) *)

type arm = { site : string; hit : int; action : action }
type t = arm list

let action_to_string = function
  | Crash -> "crash"
  | Torn -> "torn"
  | Fail -> "fail"
  | Drop -> "drop"

let action_of_string = function
  | "crash" -> Some Crash
  | "torn" -> Some Torn
  | "fail" -> Some Fail
  | "drop" -> Some Drop
  | _ -> None

let arm_to_string a = Printf.sprintf "%s@%d=%s" a.site a.hit (action_to_string a.action)

let to_string = function
  | [] -> "(none)"
  | arms -> String.concat "," (List.map arm_to_string arms)

let arm_of_string s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "arm %S: expected site@hit=action" s)
  | Some at -> (
    let site = String.sub s 0 at in
    let rest = String.sub s (at + 1) (String.length s - at - 1) in
    match String.index_opt rest '=' with
    | None -> Error (Printf.sprintf "arm %S: expected site@hit=action" s)
    | Some eq -> (
      let hit = String.sub rest 0 eq in
      let action = String.sub rest (eq + 1) (String.length rest - eq - 1) in
      match int_of_string_opt hit, action_of_string action with
      | None, _ -> Error (Printf.sprintf "arm %S: hit count %S is not an integer" s hit)
      | Some h, _ when h < 1 ->
        Error (Printf.sprintf "arm %S: hit count must be >= 1" s)
      | _, None ->
        Error
          (Printf.sprintf "arm %S: unknown action %S (crash|torn|fail|drop)" s action)
      | Some hit, Some action when site <> "" -> Ok { site; hit; action }
      | _ -> Error (Printf.sprintf "arm %S: empty site name" s)))

let of_string s =
  let s = String.trim s in
  if s = "" || s = "(none)" then Ok []
  else
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ -> acc
        | Ok arms -> (
          match arm_of_string (String.trim part) with
          | Ok arm -> Ok (arms @ [ arm ])
          | Error msg -> Error msg))
      (Ok []) (String.split_on_char ',' s)

(* Random plan over a site profile: (site, hits observed in a
   fault-free run of the same workload). Only reached sites can fire,
   and hit counts are drawn within the observed range, so most
   generated arms actually trigger. *)
let random rng ~profile ~max_arms =
  let reached = List.filter (fun (_, n) -> n > 0) profile in
  if reached = [] || max_arms < 1 then []
  else
    let n_arms = 1 + Rng.int rng max_arms in
    List.init n_arms (fun _ ->
        let site, hits = Rng.pick rng reached in
        let hit = 1 + Rng.int rng hits in
        let action =
          Rng.weighted rng [ (6, Crash); (1, Torn); (2, Fail); (2, Drop) ]
        in
        { site; hit; action })
