(* Splittable deterministic PRNG (SplitMix64, Steele et al. 2014).

   Every consumer of randomness in the fault harness derives its own
   stream with [split], so adding a draw in one component never
   perturbs the values another component sees — the property that makes
   `entsim --seed N` replays stable across harness changes. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

(* 62 uniform non-negative bits (an [int] on every platform). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. (1.0 /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

(* Weighted pick over (weight, value) pairs; weights must be positive. *)
let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: weights must sum positive";
  let n = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, x) :: rest -> if n < acc + w then x else go (acc + w) rest
  in
  go 0 choices
