open Ent_storage

let pp_value ppf (v : Value.t) =
  match v with
  | Str s -> Format.fprintf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Date _ -> Format.fprintf ppf "'%s'" (Value.to_string v)
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Int i -> Format.pp_print_int ppf i

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"

let cmp_symbol = function
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let rec pp_expr ppf (e : Ast.expr) =
  match e with
  | Lit v -> pp_value ppf v
  | Col (None, name) -> Format.pp_print_string ppf name
  | Col (Some q, name) -> Format.fprintf ppf "%s.%s" q name
  | Host v -> Format.fprintf ppf "@%s" v
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Agg (fn, arg) ->
    let name =
      match fn with
      | Ast.Count -> "COUNT"
      | Ast.Sum -> "SUM"
      | Ast.Min -> "MIN"
      | Ast.Max -> "MAX"
      | Ast.Avg -> "AVG"
    in
    (match arg with
    | None -> Format.fprintf ppf "%s(*)" name
    | Some e -> Format.fprintf ppf "%s(%a)" name pp_expr e)

let pp_comma_list pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp ppf xs

let rec pp_cond ppf (c : Ast.cond) =
  match c with
  | True -> Format.pp_print_string ppf "TRUE = TRUE"
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (cmp_symbol op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "NOT (%a)" pp_cond a
  | In_select (exprs, sub) ->
    Format.fprintf ppf "(%a) IN (%a)" (pp_comma_list pp_expr) exprs pp_select sub
  | In_list (e, values) ->
    Format.fprintf ppf "%a IN (%a)" pp_expr e (pp_comma_list pp_expr) values
  | Between (e, lo, hi) ->
    Format.fprintf ppf "%a BETWEEN %a AND %a" pp_expr e pp_expr lo pp_expr hi
  | In_answer (exprs, rel) ->
    Format.fprintf ppf "(%a) IN ANSWER %s" (pp_comma_list pp_expr) exprs rel

and pp_proj ppf (p : Ast.proj) =
  match p.pbind with
  | None -> pp_expr ppf p.pexpr
  | Some v -> Format.fprintf ppf "%a AS @%s" pp_expr p.pexpr v

and pp_select ppf (sel : Ast.select) =
  Format.fprintf ppf "SELECT %s%a"
    (if sel.distinct then "DISTINCT " else "")
    (pp_comma_list pp_proj) sel.projs;
  (match sel.from with
  | [] -> ()
  | from ->
    let pp_ref ppf (table, alias) =
      if table = alias then Format.pp_print_string ppf table
      else Format.fprintf ppf "%s AS %s" table alias
    in
    Format.fprintf ppf " FROM %a" (pp_comma_list pp_ref) from);
  (match sel.where with
  | True -> ()
  | w -> Format.fprintf ppf " WHERE %a" pp_cond w);
  (match sel.group_by with
  | [] -> ()
  | keys -> Format.fprintf ppf " GROUP BY %a" (pp_comma_list pp_expr) keys);
  (match sel.order_by with
  | [] -> ()
  | keys ->
    let pp_key ppf (e, dir) =
      Format.fprintf ppf "%a%s" pp_expr e
        (match dir with
        | Ast.Asc -> ""
        | Ast.Desc -> " DESC")
    in
    Format.fprintf ppf " ORDER BY %a" (pp_comma_list pp_key) keys);
  match sel.limit with
  | None -> ()
  | Some l -> Format.fprintf ppf " LIMIT %d" l

let pp_stmt ppf (stmt : Ast.stmt) =
  match stmt with
  | Select sel -> pp_select ppf sel
  | Insert { table; columns; values } ->
    Format.fprintf ppf "INSERT INTO %s" table;
    (match columns with
    | Some cols ->
      Format.fprintf ppf " (%a)" (pp_comma_list Format.pp_print_string) cols
    | None -> ());
    Format.fprintf ppf " VALUES (%a)" (pp_comma_list pp_expr) values
  | Update { table; set; where } ->
    let pp_assign ppf (col, e) = Format.fprintf ppf "%s = %a" col pp_expr e in
    Format.fprintf ppf "UPDATE %s SET %a" table (pp_comma_list pp_assign) set;
    (match where with
    | True -> ()
    | w -> Format.fprintf ppf " WHERE %a" pp_cond w)
  | Delete { table; where } ->
    Format.fprintf ppf "DELETE FROM %s" table;
    (match where with
    | True -> ()
    | w -> Format.fprintf ppf " WHERE %a" pp_cond w)
  | Create_table { table; columns } ->
    let pp_col ppf (name, ty) =
      Format.fprintf ppf "%s %s" name (String.uppercase_ascii (Schema.type_name ty))
    in
    Format.fprintf ppf "CREATE TABLE %s (%a)" table (pp_comma_list pp_col) columns
  | Create_index { table; columns; ordered } ->
    Format.fprintf ppf "CREATE %sINDEX ON %s (%a)"
      (if ordered then "ORDERED " else "")
      table
      (pp_comma_list Format.pp_print_string) columns
  | Drop_table table -> Format.fprintf ppf "DROP TABLE %s" table
  | Set_var (v, e) -> Format.fprintf ppf "SET @%s = %a" v pp_expr e
  | Entangled e ->
    Format.fprintf ppf "SELECT %a INTO ANSWER %s" (pp_comma_list pp_proj)
      e.eprojs e.into;
    (match e.ewhere with
    | True -> ()
    | w -> Format.fprintf ppf " WHERE %a" pp_cond w);
    Format.fprintf ppf " CHOOSE %d" e.choose
  | Rollback -> Format.pp_print_string ppf "ROLLBACK"

let pp_program ppf (p : Ast.program) =
  Format.fprintf ppf "BEGIN TRANSACTION";
  (match p.timeout with
  | Some seconds -> Format.fprintf ppf " WITH TIMEOUT %d SECONDS" (int_of_float seconds)
  | None -> ());
  Format.fprintf ppf ";@\n";
  List.iter (fun (s, _) -> Format.fprintf ppf "%a;@\n" pp_stmt s) p.body;
  Format.fprintf ppf "COMMIT;"

let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let program_to_string p = Format.asprintf "%a" pp_program p
