open Ent_storage

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type env = (string, Value.t) Hashtbl.t

let fresh_env () : env = Hashtbl.create 8

type binding = (string * Schema.t * Tuple.t) list

(* Read paths are sequences: rows are produced lazily, so LIMIT /
   early-exit consumers stop pulling (and stop paying per-row costs)
   as soon as they are done, and no intermediate (id, row) list is
   materialized. Sequences carry interposed effects (metrics, row
   locks); consume each one at most once. *)
type access = {
  schema_of : string -> Schema.t;
  scan : string -> (int * Tuple.t) Seq.t;
  lookup : string -> positions:int list -> Value.t list -> (int * Tuple.t) Seq.t;
  insert : string -> Value.t array -> int;
  update : string -> int -> Value.t array -> unit;
  delete : string -> int -> unit;
  create : string -> Schema.t -> unit;
  create_index : string -> string list -> unit;
  create_ordered_index : string -> string -> unit;
  range :
    string ->
    position:int ->
    lo:Ordered_index.bound ->
    hi:Ordered_index.bound ->
    (int * Tuple.t) Seq.t;
  has_range : string -> int -> bool;
  drop : string -> unit;
}

let direct_access catalog =
  let table name =
    match Catalog.find catalog name with
    | Some t -> t
    | None -> fail "unknown table %s" name
  in
  {
    schema_of = (fun name -> Table.schema (table name));
    scan = (fun name -> Table.to_seq (table name));
    lookup =
      (fun name ~positions key -> Table.lookup_seq (table name) ~positions key);
    insert = (fun name row -> Table.insert (table name) row);
    update = (fun name id row -> ignore (Table.update (table name) id row));
    delete = (fun name id -> ignore (Table.delete (table name) id));
    create = (fun name schema -> ignore (Catalog.create_table catalog name schema));
    create_index =
      (fun name columns ->
        let t = table name in
        let schema = Table.schema t in
        let positions =
          List.map
            (fun c ->
              if Schema.mem schema c then Schema.index_of schema c
              else fail "CREATE INDEX: unknown column %s on %s" c name)
            columns
        in
        Table.add_index t ~positions);
    create_ordered_index =
      (fun name column ->
        let t = table name in
        let schema = Table.schema t in
        if not (Schema.mem schema column) then
          fail "CREATE ORDERED INDEX: unknown column %s on %s" column name;
        Table.add_ordered_index t ~position:(Schema.index_of schema column));
    range =
      (fun name ~position ~lo ~hi ->
        Table.range_lookup_seq (table name) ~position ~lo ~hi);
    has_range = (fun name position -> Table.has_ordered_index (table name) ~position);
    drop = (fun name -> Catalog.drop catalog name);
  }

(* --- column resolution --- *)

let resolve_column binding qualifier name =
  match qualifier with
  | Some alias -> (
    match List.find_opt (fun (a, _, _) -> a = alias) binding with
    | Some (_, schema, row) ->
      if Schema.mem schema name then Some (Tuple.get row (Schema.index_of schema name))
      else fail "table %s has no column %s" alias name
    | None -> fail "unknown table alias %s" alias)
  | None -> (
    (* Innermost scope wins: bindings are appended as scopes nest, so
       resolve from the end of the list. *)
    let hits =
      List.filter (fun (_, schema, _) -> Schema.mem schema name) binding
    in
    match List.rev hits with
    | (_, schema, row) :: _ -> Some (Tuple.get row (Schema.index_of schema name))
    | [] -> None)

let rec eval_expr ?var access env binding (e : Ast.expr) =
  match e with
  | Lit v -> v
  | Host name -> (
    match Hashtbl.find_opt env name with
    | Some v -> v
    | None -> fail "unbound host variable @%s" name)
  | Col (qualifier, name) -> (
    match resolve_column binding qualifier name with
    | Some v -> v
    | None -> (
      match var with
      | Some lookup -> (
        match lookup name with
        | Some v -> v
        | None -> fail "unknown column or variable %s" name)
      | None -> fail "unknown column %s" name))
  | Binop (op, a, b) -> (
    let va = eval_expr ?var access env binding a in
    let vb = eval_expr ?var access env binding b in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb)
  | Agg _ -> fail "aggregate used outside a SELECT projection"

let eval_cmp op va vb =
  match va, vb with
  | Value.Null, _ | _, Value.Null -> false
  | _ ->
    let c = Value.compare va vb in
    (match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0)

(* --- equality-conjunct extraction for the index fast path --- *)

(* Collect conjuncts [col = expr] (either orientation) usable to probe
   table [alias] given that [can_eval expr] holds. *)
let rec equality_probes alias schema can_eval (cond : Ast.cond) =
  match cond with
  | And (a, b) ->
    equality_probes alias schema can_eval a
    @ equality_probes alias schema can_eval b
  | Cmp (Eq, Col (q, name), e) when (q = None || q = Some alias) && Schema.mem schema name && can_eval e
    -> [ (Schema.index_of schema name, e) ]
  | Cmp (Eq, e, Col (q, name)) when (q = None || q = Some alias) && Schema.mem schema name && can_eval e
    -> [ (Schema.index_of schema name, e) ]
  | True | Cmp _ | Or _ | Not _ | In_select _ | In_list _ | Between _
  | In_answer _ -> []

(* Range conjuncts usable to probe table [alias] via an ordered index:
   [col BETWEEN lo AND hi] and inequality comparisons. Each probe is
   (column position, side, inclusive?, bound expression). *)
let rec range_probes alias schema can_eval (cond : Ast.cond) =
  let col_of q name =
    if (q = None || q = Some alias) && Schema.mem schema name then
      Some (Schema.index_of schema name)
    else None
  in
  match cond with
  | And (a, b) ->
    range_probes alias schema can_eval a @ range_probes alias schema can_eval b
  | Between (Col (q, name), lo, hi) when can_eval lo && can_eval hi -> (
    match col_of q name with
    | Some pos -> [ (pos, `Lo, true, lo); (pos, `Hi, true, hi) ]
    | None -> [])
  | Cmp (op, Col (q, name), e) when can_eval e -> (
    match col_of q name, op with
    | Some pos, Lt -> [ (pos, `Hi, false, e) ]
    | Some pos, Le -> [ (pos, `Hi, true, e) ]
    | Some pos, Gt -> [ (pos, `Lo, false, e) ]
    | Some pos, Ge -> [ (pos, `Lo, true, e) ]
    | _ -> [])
  | Cmp (op, e, Col (q, name)) when can_eval e -> (
    match col_of q name, op with
    | Some pos, Gt -> [ (pos, `Hi, false, e) ]
    | Some pos, Ge -> [ (pos, `Hi, true, e) ]
    | Some pos, Lt -> [ (pos, `Lo, false, e) ]
    | Some pos, Le -> [ (pos, `Lo, true, e) ]
    | _ -> [])
  | True | Cmp _ | Or _ | Not _ | In_select _ | In_list _ | Between _
  | In_answer _ -> []

(* Does expression [e] only mention literals, host vars, and columns of
   tables already bound? *)
let rec evaluable_now binding (e : Ast.expr) =
  match e with
  | Lit _ | Host _ -> true
  | Col (Some alias, _) -> List.exists (fun (a, _, _) -> a = alias) binding
  | Col (None, name) ->
    List.exists (fun (_, schema, _) -> Schema.mem schema name) binding
  | Binop (_, a, b) -> evaluable_now binding a && evaluable_now binding b
  | Agg _ -> false

let rec eval_cond ?var access env binding (cond : Ast.cond) =
  match cond with
  | True -> true
  | Cmp (op, a, b) ->
    eval_cmp op
      (eval_expr ?var access env binding a)
      (eval_expr ?var access env binding b)
  | And (a, b) ->
    eval_cond ?var access env binding a && eval_cond ?var access env binding b
  | Or (a, b) ->
    eval_cond ?var access env binding a || eval_cond ?var access env binding b
  | Not c -> not (eval_cond ?var access env binding c)
  | In_select (exprs, sub) ->
    let needle = List.map (eval_expr ?var access env binding) exprs in
    let rows = select_rows_inner ?var access env binding sub in
    List.exists
      (fun row -> List.equal Value.equal needle (Array.to_list row))
      rows
  | In_list (e, values) ->
    let needle = eval_expr ?var access env binding e in
    List.exists
      (fun v -> eval_cmp Ast.Eq needle (eval_expr ?var access env binding v))
      values
  | Between (e, lo, hi) ->
    let v = eval_expr ?var access env binding e in
    eval_cmp Ast.Ge v (eval_expr ?var access env binding lo)
    && eval_cmp Ast.Le v (eval_expr ?var access env binding hi)
  | In_answer _ ->
    fail "IN ANSWER can only appear inside an entangled query"

(* Candidate rows of one FROM table given the rows already bound:
   probe an equality index from WHERE conjuncts when possible, else a
   range index, else scan. The caller re-checks the full WHERE on the
   joined binding, so probes are only a filter. Shared by SELECT's
   nested-loop join and by UPDATE/DELETE victim selection. *)
and table_candidates ?var access env binding (where : Ast.cond) table alias =
  let schema = access.schema_of table in
  let probes = equality_probes alias schema (evaluable_now binding) where in
  match probes with
  | [] -> (
    (* no equality probe: try a range probe on an ordered index *)
    let ranged =
      List.filter
        (fun (pos, _, _, _) -> access.has_range table pos)
        (range_probes alias schema (evaluable_now binding) where)
    in
    match ranged with
    | [] -> access.scan table
    | (pos, _, _, _) :: _ ->
      let mine = List.filter (fun (p, _, _, _) -> p = pos) ranged in
      let bound side =
        (* combine same-side bounds conservatively: use the first *)
        List.fold_left
          (fun acc (_, s, inclusive, e) ->
            if s <> side || acc <> Ordered_index.Unbounded then acc
            else
              let v = eval_expr ?var access env binding e in
              if inclusive then Ordered_index.Inclusive v
              else Ordered_index.Exclusive v)
          Ordered_index.Unbounded mine
      in
      access.range table ~position:pos ~lo:(bound `Lo) ~hi:(bound `Hi))
  | _ ->
    let positions = List.map fst probes in
    let key =
      List.map (fun (_, e) -> eval_expr ?var access env binding e) probes
    in
    access.lookup table ~positions key

(* Nested-loop join with an index fast path per table. *)
and join_rows ?var access env outer_binding (sel : Ast.select) k =
  let rec go binding = function
    | [] -> if eval_cond ?var access env binding sel.where then k binding
    | (table, alias) :: rest ->
      let schema = access.schema_of table in
      Seq.iter
        (fun (_, row) -> go (binding @ [ (alias, schema, row) ]) rest)
        (table_candidates ?var access env binding sel.where table alias)
  in
  go outer_binding sel.from

and expr_has_aggregate (e : Ast.expr) =
  match e with
  | Agg _ -> true
  | Binop (_, a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Lit _ | Col _ | Host _ -> false

and eval_aggregate ?var access env group fn arg =
  let values () =
    match arg with
    | None -> []
    | Some e -> List.map (fun binding -> eval_expr ?var access env binding e) group
  in
  let non_null () = List.filter (fun v -> v <> Value.Null) (values ()) in
  match fn, arg with
  | Ast.Count, None -> Value.Int (List.length group)
  | Ast.Count, Some _ -> Value.Int (List.length (non_null ()))
  | Ast.Sum, _ ->
    List.fold_left Value.add (Value.Int 0) (non_null ())
  | Ast.Min, _ -> (
    match non_null () with
    | [] -> Value.Null
    | v :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest)
  | Ast.Max, _ -> (
    match non_null () with
    | [] -> Value.Null
    | v :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest)
  | Ast.Avg, _ -> (
    match non_null () with
    | [] -> Value.Null
    | vs -> Value.div (List.fold_left Value.add (Value.Int 0) vs) (Value.Int (List.length vs)))

(* Evaluate an expression over a whole group: aggregate nodes fold over
   the group; everything else resolves against its first row. *)
and eval_grouped ?var access env group (e : Ast.expr) =
  match e with
  | Agg (fn, arg) -> eval_aggregate ?var access env group fn arg
  | Binop (op, a, b) -> (
    let va = eval_grouped ?var access env group a in
    let vb = eval_grouped ?var access env group b in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb)
  | Lit _ | Col _ | Host _ -> (
    match group with
    | representative :: _ -> eval_expr ?var access env representative e
    | [] -> Value.Null)

and select_rows_inner ?var access env outer_binding (sel : Ast.select) =
  let aggregated =
    sel.group_by <> []
    || List.exists (fun (p : Ast.proj) -> expr_has_aggregate p.pexpr) sel.projs
  in
  let plain = not aggregated && sel.order_by = [] && not sel.distinct in
  if plain then begin
    (* streaming path with early LIMIT exit *)
    let out = ref [] in
    let count = ref 0 in
    let limit_reached () =
      match sel.limit with
      | Some l -> !count >= l
      | None -> false
    in
    (try
       join_rows ?var access env outer_binding sel (fun binding ->
           if limit_reached () then raise Exit;
           let row =
             Array.of_list
               (List.map
                  (fun (p : Ast.proj) -> eval_expr ?var access env binding p.pexpr)
                  sel.projs)
           in
           out := row :: !out;
           incr count;
           if limit_reached () then raise Exit)
     with Exit -> ());
    List.rev !out
  end
  else begin
    (* materialize matching bindings, then group / sort / dedup / limit *)
    let bindings = ref [] in
    join_rows ?var access env outer_binding sel (fun binding ->
        bindings := binding :: !bindings);
    let bindings = List.rev !bindings in
    let keyed_rows =
      if aggregated then begin
        let groups =
          if sel.group_by = [] then [ bindings ]  (* one group, even when empty *)
          else begin
            let table = Hashtbl.create 16 in
            let order = ref [] in
            List.iter
              (fun binding ->
                let key =
                  List.map (fun e -> eval_expr ?var access env binding e) sel.group_by
                in
                (match Hashtbl.find_opt table key with
                | Some members -> members := binding :: !members
                | None ->
                  Hashtbl.add table key (ref [ binding ]);
                  order := key :: !order))
              bindings;
            List.rev_map (fun key -> List.rev !(Hashtbl.find table key)) !order
          end
        in
        List.map
          (fun group ->
            let row =
              Array.of_list
                (List.map
                   (fun (p : Ast.proj) -> eval_grouped ?var access env group p.pexpr)
                   sel.projs)
            in
            let keys =
              List.map
                (fun (e, dir) -> (eval_grouped ?var access env group e, dir))
                sel.order_by
            in
            (keys, row))
          groups
      end
      else
        List.map
          (fun binding ->
            let row =
              Array.of_list
                (List.map
                   (fun (p : Ast.proj) -> eval_expr ?var access env binding p.pexpr)
                   sel.projs)
            in
            let keys =
              List.map
                (fun (e, dir) -> (eval_expr ?var access env binding e, dir))
                sel.order_by
            in
            (keys, row))
          bindings
    in
    let compare_keys (ka, _) (kb, _) =
      let rec go ka kb =
        match ka, kb with
        | [], [] -> 0
        | (va, dir) :: ra, (vb, _) :: rb ->
          let c = Value.compare va vb in
          let c = if dir = Ast.Desc then -c else c in
          if c <> 0 then c else go ra rb
        | _ -> 0
      in
      go ka kb
    in
    let sorted =
      if sel.order_by = [] then keyed_rows
      else List.stable_sort compare_keys keyed_rows
    in
    let rows = List.map snd sorted in
    let rows =
      if sel.distinct then begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun row ->
            let key = Array.to_list row in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          rows
      end
      else rows
    in
    match sel.limit with
    | Some l -> List.filteri (fun i _ -> i < l) rows
    | None -> rows
  end

let apply_host_bindings env (projs : Ast.proj list) rows =
  let first = match rows with [] -> None | row :: _ -> Some row in
  List.iteri
    (fun i (p : Ast.proj) ->
      match p.pbind with
      | None -> ()
      | Some v ->
        let value =
          match first with
          | Some row -> row.(i)
          | None -> Value.Null
        in
        Hashtbl.replace env v value)
    projs

(* Appendix D shorthand: in a classical SELECT with a FROM clause, a
   projection [@v] where [@v] is unbound means "column v AS @v". *)
let desugar_bare_host_projs env (sel : Ast.select) =
  if sel.from = [] then sel
  else
    let projs =
      List.map
        (fun (p : Ast.proj) ->
          match p.pexpr, p.pbind with
          | Ast.Host v, None when not (Hashtbl.mem env v) ->
            { Ast.pexpr = Ast.Col (None, v); pbind = Some v }
          | _ -> p)
        sel.projs
    in
    { sel with projs }

let select_rows access env sel =
  let sel = desugar_bare_host_projs env sel in
  let rows = select_rows_inner access env [] sel in
  apply_host_bindings env sel.projs rows;
  rows

let select_rows_correlated ?var access env sel =
  select_rows_inner ?var access env [] sel

(* --- writes --- *)

let row_for_insert access table columns values =
  let schema = access.schema_of table in
  let arity = Schema.arity schema in
  match columns with
  | None ->
    if List.length values <> arity then
      fail "INSERT into %s: expected %d values" table arity;
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      fail "INSERT into %s: column/value count mismatch" table;
    let row = Array.make arity Value.Null in
    List.iter2
      (fun col v ->
        if not (Schema.mem schema col) then
          fail "INSERT into %s: unknown column %s" table col;
        row.(Schema.index_of schema col) <- v)
      cols values;
    row

type outcome =
  | Rows of Value.t array list
  | Affected of int
  | Created

let exec_stmt access env (stmt : Ast.stmt) =
  match stmt with
  | Select sel -> Rows (select_rows access env sel)
  | Insert { table; columns; values } ->
    let values = List.map (eval_expr access env []) values in
    let row = row_for_insert access table columns values in
    ignore (access.insert table row);
    Affected 1
  | Update { table; set; where } ->
    let schema = access.schema_of table in
    (* victims are materialized before the first write so the mutation
       never races the (index- or scan-backed) candidate sequence *)
    let victims =
      List.of_seq
        (Seq.filter
           (fun (_, row) -> eval_cond access env [ (table, schema, row) ] where)
           (table_candidates access env [] where table table))
    in
    List.iter
      (fun (id, row) ->
        let row' = Array.copy row in
        List.iter
          (fun (col, e) ->
            if not (Schema.mem schema col) then
              fail "UPDATE %s: unknown column %s" table col;
            row'.(Schema.index_of schema col) <-
              eval_expr access env [ (table, schema, row) ] e)
          set;
        access.update table id row')
      victims;
    Affected (List.length victims)
  | Delete { table; where } ->
    let schema = access.schema_of table in
    let victims =
      List.of_seq
        (Seq.filter
           (fun (_, row) -> eval_cond access env [ (table, schema, row) ] where)
           (table_candidates access env [] where table table))
    in
    List.iter (fun (id, _) -> access.delete table id) victims;
    Affected (List.length victims)
  | Create_table { table; columns } ->
    let schema =
      Schema.make (List.map (fun (name, ty) -> { Schema.name; ty }) columns)
    in
    access.create table schema;
    Created
  | Create_index { table; columns; ordered } ->
    (if ordered then
       match columns with
       | [ column ] -> access.create_ordered_index table column
       | _ -> fail "ordered indexes cover exactly one column"
     else access.create_index table columns);
    Created
  | Drop_table table ->
    access.drop table;
    Created
  | Set_var (v, e) ->
    Hashtbl.replace env v (eval_expr access env [] e);
    Affected 0
  | Entangled _ -> fail "entangled query reached the classical evaluator"
  | Rollback -> fail "ROLLBACK reached the classical evaluator"


(* --- EXPLAIN --- *)

let rec evaluable_with_schemas bound (e : Ast.expr) =
  match e with
  | Lit _ | Host _ -> true
  | Col (Some alias, _) -> List.mem_assoc alias bound
  | Col (None, name) ->
    List.exists (fun (_, schema) -> Schema.mem schema name) bound
  | Binop (_, a, b) ->
    evaluable_with_schemas bound a && evaluable_with_schemas bound b
  | Agg _ -> false

let explain access (sel : Ast.select) =
  let buf = Buffer.create 128 in
  let bound = ref [] in
  List.iter
    (fun (table, alias) ->
      let schema = access.schema_of table in
      let probes =
        equality_probes alias schema (evaluable_with_schemas !bound) sel.where
      in
      (match probes with
      | [] -> (
        let ranged =
          List.filter
            (fun (pos, _, _, _) -> access.has_range table pos)
            (range_probes alias schema (evaluable_with_schemas !bound) sel.where)
        in
        match ranged with
        | (pos, _, _, _) :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "RANGE %s ON (%s)" table
               (List.nth (Schema.columns schema) pos).Schema.name)
        | [] -> Buffer.add_string buf (Printf.sprintf "SCAN %s" table))
      | _ ->
        let cols =
          List.map
            (fun (pos, _) ->
              (List.nth (Schema.columns schema) pos).Schema.name)
            probes
        in
        Buffer.add_string buf
          (Printf.sprintf "PROBE %s ON (%s)" table (String.concat ", " cols)));
      if alias <> table then Buffer.add_string buf (Printf.sprintf " AS %s" alias);
      Buffer.add_char buf '\n';
      bound := (alias, schema) :: !bound)
    sel.from;
  if sel.group_by <> [] then Buffer.add_string buf "GROUP\n";
  if List.exists (fun (p : Ast.proj) -> expr_has_aggregate p.pexpr) sel.projs
  then Buffer.add_string buf "AGGREGATE\n";
  if sel.order_by <> [] then Buffer.add_string buf "SORT\n";
  if sel.distinct then Buffer.add_string buf "DEDUP\n";
  (match sel.limit with
  | Some l -> Buffer.add_string buf (Printf.sprintf "LIMIT %d\n" l)
  | None -> ());
  String.trim (Buffer.contents buf)
