(** Abstract syntax of the SQL dialect, including the paper's extended
    entangled-query syntax ([SELECT ... INTO ANSWER ... CHOOSE k]) and
    transaction blocks ([BEGIN TRANSACTION WITH TIMEOUT ...]). *)

open Ent_storage

(** A source position (1-based line and column). Statements parsed from
    text carry the position of their first token; hand-built ASTs use
    {!no_pos}. *)
type pos = {
  line : int;
  col : int;
}

let no_pos = { line = 0; col = 0 }

let pp_pos ppf p =
  if p = no_pos then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "%d:%d" p.line p.col

type binop = Add | Sub | Mul | Div

type agg_fn = Count | Sum | Min | Max | Avg

type expr =
  | Lit of Value.t
  | Col of string option * string  (** optionally qualified column, or a free entangled-query variable *)
  | Host of string  (** host variable [@name] *)
  | Binop of binop * expr * expr
  | Agg of agg_fn * expr option
      (** aggregate call; [None] is COUNT-star. Only valid in the
          projections of a classical SELECT. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type order_dir = Asc | Desc

type cond =
  | True
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | In_select of expr list * select
      (** [(e1, ..., ek) IN (SELECT ...)]; inside entangled queries this
          is also the variable-binding form. *)
  | In_list of expr * expr list  (** [e IN (v1, v2, ...)] *)
  | Between of expr * expr * expr  (** [e BETWEEN lo AND hi] *)
  | In_answer of expr list * string
      (** [(e1, ..., ek) IN ANSWER R] — a postcondition on the answer
          relation [R]; only meaningful inside entangled queries. *)

and select = {
  distinct : bool;
  projs : proj list;
  from : (string * string) list;  (** (table, alias); alias = table when not renamed *)
  where : cond;
  group_by : expr list;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and proj = {
  pexpr : expr;
  pbind : string option;
      (** [AS @var]: bind this output position into a host variable. A
          bare [@var] projection in a classical SELECT is shorthand for
          [var AS @var] (binding column [var]), as in the paper's
          Appendix D workloads. *)
}

type entangled_select = {
  eprojs : proj list;  (** the transaction's own answer tuple; may contain free variables *)
  into : string;  (** target ANSWER relation *)
  ewhere : cond;  (** mixes grounding conditions and [IN ANSWER] postconditions *)
  choose : int;  (** [CHOOSE k]; the paper always uses 1 *)
}

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list option; values : expr list }
  | Update of { table : string; set : (string * expr) list; where : cond }
  | Delete of { table : string; where : cond }
  | Create_table of { table : string; columns : (string * Schema.col_type) list }
  | Create_index of { table : string; columns : string list; ordered : bool }
  | Drop_table of string
  | Set_var of string * expr  (** [SET @x = expr] *)
  | Entangled of entangled_select
  | Rollback

(** A transaction block. [timeout] is in seconds of simulated time;
    [None] means no timeout (the transaction waits indefinitely for
    partners). Each statement carries the source position of its first
    token ({!no_pos} for hand-built programs), so lint findings and
    error messages can point back into the program text. *)
type program = {
  timeout : float option;
  body : (stmt * pos) list;
}

let statements (p : program) = List.map fst p.body
