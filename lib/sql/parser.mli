(** Recursive-descent parser for the SQL dialect of {!Ast}. *)

exception Parse_error of string
(** The message starts with the [line:col] position of the token the
    parser was looking at. *)

(** One top-level item of a script: an explicit transaction block or a
    bare statement (to be run as its own transaction, "autocommit"). *)
type item =
  | Program of Ast.program
  | Stmt of Ast.stmt * Ast.pos  (** position of the statement's first token *)

(** Parse a single statement (no trailing input allowed besides an
    optional [;]). *)
val parse_stmt : string -> Ast.stmt

(** Parse one [BEGIN TRANSACTION ... COMMIT] block. *)
val parse_program : string -> Ast.program

(** Parse a whole script: a sequence of transaction blocks and bare
    statements. *)
val parse_script : string -> item list

(** Parse a condition in isolation (used by tests). *)
val parse_cond : string -> Ast.cond
