type token =
  | Ident of string
  | Host_var of string
  | Int_lit of int
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Lex_error of string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in  (* offset of the current line's first character *)
  let pos_at offset = { Ast.line = !line; col = offset - !bol + 1 } in
  let error at fmt =
    Format.kasprintf
      (fun s ->
        raise (Lex_error (Format.asprintf "%a: %s" Ast.pp_pos at s)))
      fmt
  in
  let emit at tok = tokens := (tok, at) :: !tokens in
  let newline () =
    incr line;
    bol := !pos + 1
  in
  let peek k = if !pos + k < n then Some input.[!pos + k] else None in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred input.[!pos] do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  while !pos < n do
    let c = input.[!pos] in
    let at = pos_at !pos in
    if c = '\n' then begin
      newline ();
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      while !pos < n && input.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then emit at (Ident (read_while is_ident_char))
    else if is_digit c then emit at (Int_lit (int_of_string (read_while is_digit)))
    else if c = '@' then begin
      incr pos;
      let name = read_while is_ident_char in
      if name = "" then error at "empty host variable name";
      emit at (Host_var name)
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error at "unterminated string literal"
        else if input.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          if input.[!pos] = '\n' then newline ();
          Buffer.add_char buf input.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      emit at (Str_lit (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub input !pos 2 else "" in
      match two with
      | "<>" | "!=" ->
        emit at Ne;
        pos := !pos + 2
      | "<=" ->
        emit at Le;
        pos := !pos + 2
      | ">=" ->
        emit at Ge;
        pos := !pos + 2
      | _ ->
        (match c with
        | '(' -> emit at Lparen
        | ')' -> emit at Rparen
        | ',' -> emit at Comma
        | ';' -> emit at Semi
        | '.' -> emit at Dot
        | '*' -> emit at Star
        | '+' -> emit at Plus
        | '-' -> emit at Minus
        | '/' -> emit at Slash
        | '=' -> emit at Eq
        | '<' -> emit at Lt
        | '>' -> emit at Gt
        | _ -> error at "unexpected character %C" c);
        incr pos
    end
  done;
  emit (pos_at !pos) Eof;
  Array.of_list (List.rev !tokens)

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "%s" s
  | Host_var s -> Format.fprintf ppf "@%s" s
  | Int_lit i -> Format.fprintf ppf "%d" i
  | Str_lit s -> Format.fprintf ppf "'%s'" s
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Semi -> Format.pp_print_string ppf ";"
  | Dot -> Format.pp_print_string ppf "."
  | Star -> Format.pp_print_string ppf "*"
  | Plus -> Format.pp_print_string ppf "+"
  | Minus -> Format.pp_print_string ppf "-"
  | Slash -> Format.pp_print_string ppf "/"
  | Eq -> Format.pp_print_string ppf "="
  | Ne -> Format.pp_print_string ppf "<>"
  | Lt -> Format.pp_print_string ppf "<"
  | Le -> Format.pp_print_string ppf "<="
  | Gt -> Format.pp_print_string ppf ">"
  | Ge -> Format.pp_print_string ppf ">="
  | Eof -> Format.pp_print_string ppf "<eof>"
