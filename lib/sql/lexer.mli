(** Tokenizer for the SQL dialect. *)

type token =
  | Ident of string  (** identifier or keyword; keywords are recognized case-insensitively by the parser *)
  | Host_var of string  (** [@name] *)
  | Int_lit of int
  | Str_lit of string  (** single-quoted *)
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Lex_error of string
(** The message starts with the [line:col] position of the offending
    character. *)

(** [tokenize s] lexes a full input; every token carries the source
    position of its first character. Comments run from [--] to end of
    line. @raise Lex_error on an unterminated string or a stray
    character. *)
val tokenize : string -> (token * Ast.pos) array

val pp_token : Format.formatter -> token -> unit
