open Ent_storage

exception Parse_error of string

type item =
  | Program of Ast.program
  | Stmt of Ast.stmt * Ast.pos

type state = {
  tokens : (Lexer.token * Ast.pos) array;
  mutable pos : int;
}

(* Errors carry the position of the token the parser is looking at
   (clamped: an error raised right after consuming Eof points at it). *)
let fail st fmt =
  let at = snd st.tokens.(min st.pos (Array.length st.tokens - 1)) in
  Format.kasprintf
    (fun s -> raise (Parse_error (Format.asprintf "%a: %s" Ast.pp_pos at s)))
    fmt

let peek st = fst st.tokens.(st.pos)
let peek_pos st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let next st =
  let tok = peek st in
  advance st;
  tok

let keyword_eq kw = function
  | Lexer.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let at_keyword st kw = keyword_eq kw (peek st)

let eat_keyword st kw =
  if at_keyword st kw then advance st
  else fail st "expected %s, got %a" kw Lexer.pp_token (peek st)

let eat_tok st tok name =
  if peek st = tok then advance st
  else fail st "expected %s, got %a" name Lexer.pp_token (peek st)

let opt_keyword st kw =
  if at_keyword st kw then begin
    advance st;
    true
  end
  else false

let parse_ident st =
  match next st with
  | Lexer.Ident s -> s
  | tok -> fail st "expected identifier, got %a" Lexer.pp_token tok

(* --- expressions --- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  match peek st with
  | Lexer.Plus ->
    advance st;
    Ast.Binop (Add, lhs, parse_additive st)
  | Lexer.Minus ->
    advance st;
    Ast.Binop (Sub, lhs, parse_additive st)
  | _ -> lhs

and parse_multiplicative st =
  let lhs = parse_primary_expr st in
  match peek st with
  | Lexer.Star ->
    advance st;
    Ast.Binop (Mul, lhs, parse_multiplicative st)
  | Lexer.Slash ->
    advance st;
    Ast.Binop (Div, lhs, parse_multiplicative st)
  | _ -> lhs

and parse_primary_expr st =
  match next st with
  | Lexer.Int_lit i -> Ast.Lit (Value.Int i)
  | Lexer.Minus -> (
    match next st with
    | Lexer.Int_lit i -> Ast.Lit (Value.Int (-i))
    | tok -> fail st "expected integer after '-', got %a" Lexer.pp_token tok)
  | Lexer.Str_lit s -> (
    (* Date literals are written as strings, as in the paper. *)
    match Value.parse_date s with
    | Some d -> Ast.Lit d
    | None -> Ast.Lit (Value.Str s))
  | Lexer.Host_var v -> Ast.Host v
  | Lexer.Ident id when String.uppercase_ascii id = "NULL" -> Ast.Lit Value.Null
  | Lexer.Ident id when String.uppercase_ascii id = "TRUE" ->
    Ast.Lit (Value.Bool true)
  | Lexer.Ident id when String.uppercase_ascii id = "FALSE" ->
    Ast.Lit (Value.Bool false)
  | Lexer.Ident id when
      List.mem (String.uppercase_ascii id) [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]
      && peek st = Lexer.Lparen ->
    let fn =
      match String.uppercase_ascii id with
      | "COUNT" -> Ast.Count
      | "SUM" -> Ast.Sum
      | "MIN" -> Ast.Min
      | "MAX" -> Ast.Max
      | _ -> Ast.Avg
    in
    advance st;
    let arg =
      if peek st = Lexer.Star then begin
        if fn <> Ast.Count then fail st "only COUNT may take *";
        advance st;
        None
      end
      else Some (parse_expr st)
    in
    eat_tok st Lexer.Rparen ")";
    Ast.Agg (fn, arg)
  | Lexer.Ident id ->
    if peek st = Lexer.Dot then begin
      advance st;
      let col = parse_ident st in
      Ast.Col (Some id, col)
    end
    else Ast.Col (None, id)
  | Lexer.Lparen ->
    let e = parse_expr st in
    eat_tok st Lexer.Rparen ")";
    e
  | tok -> fail st "expected expression, got %a" Lexer.pp_token tok

(* --- conditions --- *)

(* Find the token index just after the parenthesized group starting at
   [st.pos] (which must be a Lparen), to disambiguate "(a, b) IN ..."
   from a parenthesized condition. *)
let index_after_paren_group st =
  let n = Array.length st.tokens in
  let rec go i depth =
    if i >= n then None
    else
      match fst st.tokens.(i) with
      | Lexer.Lparen -> go (i + 1) (depth + 1)
      | Lexer.Rparen -> if depth = 1 then Some (i + 1) else go (i + 1) (depth - 1)
      | _ -> go (i + 1) depth
  in
  go st.pos 0

let rec parse_cond_or st =
  let lhs = parse_cond_and st in
  if opt_keyword st "OR" then Ast.Or (lhs, parse_cond_or st) else lhs

and parse_cond_and st =
  let lhs = parse_cond_not st in
  if opt_keyword st "AND" then Ast.And (lhs, parse_cond_and st) else lhs

and parse_cond_not st =
  if opt_keyword st "NOT" then Ast.Not (parse_cond_not st)
  else parse_cond_atom st

and parse_cond_atom st =
  match peek st with
  | Lexer.Lparen -> (
    match index_after_paren_group st with
    | Some after when keyword_eq "IN" (fst st.tokens.(after)) ->
      (* "(e1, ..., ek) IN ..." *)
      advance st;
      let exprs = parse_expr_list st in
      eat_tok st Lexer.Rparen ")";
      parse_in_tail st exprs
    | _ ->
      advance st;
      let c = parse_cond_or st in
      eat_tok st Lexer.Rparen ")";
      c)
  | _ ->
    let exprs = parse_expr_list st in
    (match exprs with
    | [ e ] when not (at_keyword st "IN") -> parse_cmp_tail st e
    | _ -> parse_in_tail st exprs)

and parse_expr_list st =
  let e = parse_expr st in
  if peek st = Lexer.Comma then begin
    advance st;
    e :: parse_expr_list st
  end
  else [ e ]

and parse_cmp_tail st lhs =
  if at_keyword st "BETWEEN" then begin
    advance st;
    let lo = parse_expr st in
    eat_keyword st "AND";
    let hi = parse_expr st in
    Ast.Between (lhs, lo, hi)
  end
  else
  let op =
    match next st with
    | Lexer.Eq -> Ast.Eq
    | Lexer.Ne -> Ast.Ne
    | Lexer.Lt -> Ast.Lt
    | Lexer.Le -> Ast.Le
    | Lexer.Gt -> Ast.Gt
    | Lexer.Ge -> Ast.Ge
    | tok -> fail st "expected comparison operator, got %a" Lexer.pp_token tok
  in
  Ast.Cmp (op, lhs, parse_expr st)

and parse_in_tail st exprs =
  eat_keyword st "IN";
  if at_keyword st "ANSWER" then begin
    advance st;
    let rel = parse_ident st in
    Ast.In_answer (exprs, rel)
  end
  else begin
    eat_tok st Lexer.Lparen "(";
    if at_keyword st "SELECT" then begin
      advance st;
      let sub = parse_select_after_keyword st in
      eat_tok st Lexer.Rparen ")";
      Ast.In_select (exprs, sub)
    end
    else begin
      (* value list: only the single-expression form *)
      match exprs with
      | [ e ] ->
        let values = parse_expr_list st in
        eat_tok st Lexer.Rparen ")";
        Ast.In_list (e, values)
      | _ -> fail st "tuple IN requires a subquery or ANSWER relation"
    end
  end

(* --- SELECT --- *)

and parse_proj st =
  (* A bare @var projection stays a host-variable expression here; the
     evaluator interprets an *unbound* one in a classical SELECT as the
     Appendix D shorthand "column var AS @var". *)
  let e = parse_expr st in
  if opt_keyword st "AS" then
    match next st with
    | Lexer.Host_var v -> { Ast.pexpr = e; pbind = Some v }
    | tok -> fail st "expected @var after AS, got %a" Lexer.pp_token tok
  else { Ast.pexpr = e; pbind = None }

and parse_proj_list st =
  let p = parse_proj st in
  if peek st = Lexer.Comma then begin
    advance st;
    p :: parse_proj_list st
  end
  else [ p ]

and parse_table_ref st =
  let table = parse_ident st in
  let alias =
    if opt_keyword st "AS" then parse_ident st
    else
      match peek st with
      | Lexer.Ident id
        when not
               (List.mem (String.uppercase_ascii id)
                  [ "WHERE"; "LIMIT"; "CHOOSE"; "ORDER"; "GROUP" ]) ->
        advance st;
        id
      | _ -> table
  in
  (table, alias)

and parse_table_refs st =
  let r = parse_table_ref st in
  if peek st = Lexer.Comma then begin
    advance st;
    r :: parse_table_refs st
  end
  else [ r ]

and parse_select_after_keyword st =
  let distinct = opt_keyword st "DISTINCT" in
  let projs = parse_proj_list st in
  let from = if opt_keyword st "FROM" then parse_table_refs st else [] in
  let where = if opt_keyword st "WHERE" then parse_cond_or st else Ast.True in
  let group_by =
    if opt_keyword st "GROUP" then begin
      eat_keyword st "BY";
      parse_expr_list st
    end
    else []
  in
  let order_by =
    if opt_keyword st "ORDER" then begin
      eat_keyword st "BY";
      let rec keys () =
        let e = parse_expr st in
        let dir =
          if opt_keyword st "DESC" then Ast.Desc
          else begin
            ignore (opt_keyword st "ASC");
            Ast.Asc
          end
        in
        if peek st = Lexer.Comma then begin
          advance st;
          (e, dir) :: keys ()
        end
        else [ (e, dir) ]
      in
      keys ()
    end
    else []
  in
  let limit =
    if opt_keyword st "LIMIT" then
      match next st with
      | Lexer.Int_lit i -> Some i
      | tok -> fail st "expected integer after LIMIT, got %a" Lexer.pp_token tok
    else None
  in
  { Ast.distinct; projs; from; where; group_by; order_by; limit }

and parse_select_tail st ~distinct ~projs =
  let from = if opt_keyword st "FROM" then parse_table_refs st else [] in
  let where = if opt_keyword st "WHERE" then parse_cond_or st else Ast.True in
  let group_by =
    if opt_keyword st "GROUP" then begin
      eat_keyword st "BY";
      parse_expr_list st
    end
    else []
  in
  let order_by =
    if opt_keyword st "ORDER" then begin
      eat_keyword st "BY";
      let rec keys () =
        let e = parse_expr st in
        let dir =
          if opt_keyword st "DESC" then Ast.Desc
          else begin
            ignore (opt_keyword st "ASC");
            Ast.Asc
          end
        in
        if peek st = Lexer.Comma then begin
          advance st;
          (e, dir) :: keys ()
        end
        else [ (e, dir) ]
      in
      keys ()
    end
    else []
  in
  let limit =
    if opt_keyword st "LIMIT" then
      match next st with
      | Lexer.Int_lit i -> Some i
      | tok -> fail st "expected integer after LIMIT, got %a" Lexer.pp_token tok
    else None
  in
  { Ast.distinct; projs; from; where; group_by; order_by; limit }

(* --- entangled SELECT --- *)

and parse_entangled_after_into st projs =
  eat_keyword st "ANSWER";
  let into = parse_ident st in
  if peek st = Lexer.Comma then
    fail st "multiple INTO ANSWER relations are only supported in the IR API";
  let ewhere = if opt_keyword st "WHERE" then parse_cond_or st else Ast.True in
  eat_keyword st "CHOOSE";
  let choose =
    match next st with
    | Lexer.Int_lit i when i >= 1 -> i
    | tok -> fail st "expected positive integer after CHOOSE, got %a" Lexer.pp_token tok
  in
  { Ast.eprojs = projs; into; ewhere; choose }

(* --- statements --- *)

let parse_insert st =
  eat_keyword st "INTO";
  let table = parse_ident st in
  let columns =
    if peek st = Lexer.Lparen then begin
      advance st;
      let rec cols () =
        let c = parse_ident st in
        if peek st = Lexer.Comma then begin
          advance st;
          c :: cols ()
        end
        else [ c ]
      in
      let cs = cols () in
      eat_tok st Lexer.Rparen ")";
      Some cs
    end
    else None
  in
  eat_keyword st "VALUES";
  eat_tok st Lexer.Lparen "(";
  let values = parse_expr_list st in
  eat_tok st Lexer.Rparen ")";
  Ast.Insert { table; columns; values }

let parse_update st =
  let table = parse_ident st in
  eat_keyword st "SET";
  let rec assigns () =
    let col = parse_ident st in
    eat_tok st Lexer.Eq "=";
    let e = parse_expr st in
    if peek st = Lexer.Comma then begin
      advance st;
      (col, e) :: assigns ()
    end
    else [ (col, e) ]
  in
  let set = assigns () in
  let where = if opt_keyword st "WHERE" then parse_cond_or st else Ast.True in
  Ast.Update { table; set; where }

let parse_delete st =
  eat_keyword st "FROM";
  let table = parse_ident st in
  let where = if opt_keyword st "WHERE" then parse_cond_or st else Ast.True in
  Ast.Delete { table; where }

let col_type_of_name st name =
  match String.uppercase_ascii name with
  | "INT" | "INTEGER" -> Schema.T_int
  | "STRING" | "VARCHAR" | "TEXT" | "CHAR" -> Schema.T_str
  | "DATE" -> Schema.T_date
  | "BOOL" | "BOOLEAN" -> Schema.T_bool
  | "ANY" -> Schema.T_any
  | _ -> fail st "unknown column type %s" name

let parse_create st =
  let ordered = opt_keyword st "ORDERED" in
  if opt_keyword st "INDEX" then begin
    eat_keyword st "ON";
    let table = parse_ident st in
    eat_tok st Lexer.Lparen "(";
    let rec cols () =
      let c = parse_ident st in
      if peek st = Lexer.Comma then begin
        advance st;
        c :: cols ()
      end
      else [ c ]
    in
    let columns = cols () in
    eat_tok st Lexer.Rparen ")";
    if ordered && List.length columns <> 1 then
      fail st "ordered indexes cover exactly one column";
    Ast.Create_index { table; columns; ordered }
  end
  else begin
  if ordered then fail st "ORDERED only applies to CREATE INDEX";
  eat_keyword st "TABLE";
  let table = parse_ident st in
  eat_tok st Lexer.Lparen "(";
  let rec cols () =
    let name = parse_ident st in
    let ty = col_type_of_name st (parse_ident st) in
    if peek st = Lexer.Comma then begin
      advance st;
      (name, ty) :: cols ()
    end
    else [ (name, ty) ]
  in
  let columns = cols () in
  eat_tok st Lexer.Rparen ")";
  Ast.Create_table { table; columns }
  end

let parse_set st =
  match next st with
  | Lexer.Host_var v ->
    eat_tok st Lexer.Eq "=";
    Ast.Set_var (v, parse_expr st)
  | tok -> fail st "expected @var after SET, got %a" Lexer.pp_token tok

let parse_statement st =
  match peek st with
  | Lexer.Ident kw -> (
    advance st;
    match String.uppercase_ascii kw with
    | "SELECT" ->
      let distinct = opt_keyword st "DISTINCT" in
      let projs = parse_proj_list st in
      if opt_keyword st "INTO" then begin
        if distinct then fail st "DISTINCT is not meaningful on an entangled query";
        Ast.Entangled (parse_entangled_after_into st projs)
      end
      else begin
        let rest = parse_select_tail st ~distinct ~projs in
        Ast.Select rest
      end
    | "INSERT" -> parse_insert st
    | "UPDATE" -> parse_update st
    | "DELETE" -> parse_delete st
    | "CREATE" -> parse_create st
    | "DROP" ->
      eat_keyword st "TABLE";
      Ast.Drop_table (parse_ident st)
    | "SET" -> parse_set st
    | "ROLLBACK" -> Ast.Rollback
    | other -> fail st "unexpected statement keyword %s" other)
  | tok -> fail st "expected statement, got %a" Lexer.pp_token tok

(* --- transaction blocks & scripts --- *)

let timeout_seconds st amount unit_name =
  let amount = float_of_int amount in
  match String.uppercase_ascii unit_name with
  | "SECOND" | "SECONDS" -> amount
  | "MINUTE" | "MINUTES" -> amount *. 60.
  | "HOUR" | "HOURS" -> amount *. 3600.
  | "DAY" | "DAYS" -> amount *. 86400.
  | other -> fail st "unknown timeout unit %s" other

let parse_program_after_begin st =
  eat_keyword st "TRANSACTION";
  let timeout =
    if opt_keyword st "WITH" then begin
      eat_keyword st "TIMEOUT";
      match next st with
      | Lexer.Int_lit amount -> Some (timeout_seconds st amount (parse_ident st))
      | tok -> fail st "expected integer after TIMEOUT, got %a" Lexer.pp_token tok
    end
    else None
  in
  eat_tok st Lexer.Semi ";";
  let rec stmts () =
    if at_keyword st "COMMIT" then begin
      advance st;
      if peek st = Lexer.Semi then advance st;
      []
    end
    else begin
      let at = peek_pos st in
      let s = parse_statement st in
      eat_tok st Lexer.Semi ";";
      (s, at) :: stmts ()
    end
  in
  { Ast.timeout; body = stmts () }

let make_state input = { tokens = Lexer.tokenize input; pos = 0 }

let expect_eof st =
  if peek st = Lexer.Semi then advance st;
  match peek st with
  | Lexer.Eof -> ()
  | tok -> fail st "trailing input: %a" Lexer.pp_token tok

let parse_stmt input =
  let st = make_state input in
  let s = parse_statement st in
  expect_eof st;
  s

let parse_program input =
  let st = make_state input in
  eat_keyword st "BEGIN";
  let p = parse_program_after_begin st in
  (match peek st with
  | Lexer.Eof -> ()
  | tok -> fail st "trailing input after COMMIT: %a" Lexer.pp_token tok);
  p

let parse_script input =
  let st = make_state input in
  let rec items () =
    match peek st with
    | Lexer.Eof -> []
    | Lexer.Semi ->
      advance st;
      items ()
    | _ ->
      if at_keyword st "BEGIN" then begin
        advance st;
        let p = parse_program_after_begin st in
        Program p :: items ()
      end
      else begin
        let at = peek_pos st in
        let s = parse_statement st in
        (match peek st with
        | Lexer.Semi -> advance st
        | Lexer.Eof -> ()
        | tok -> fail st "expected ';', got %a" Lexer.pp_token tok);
        Stmt (s, at) :: items ()
      end
  in
  items ()

let parse_cond input =
  let st = make_state input in
  let c = parse_cond_or st in
  expect_eof st;
  c
