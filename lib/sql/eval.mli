(** Evaluation of the SQL dialect over an abstract data-access
    interface.

    All reads and writes go through an {!access} record so that the
    transaction layer can interpose locking, WAL logging and schedule
    recording without the evaluator knowing. [direct_access] gives the
    raw, unprotected view used by loaders and unit tests. *)

open Ent_storage

exception Eval_error of string

(** Host-variable environment ([@var] bindings). *)
type env = (string, Value.t) Hashtbl.t

val fresh_env : unit -> env

(** Rows currently in scope during evaluation: [(alias, schema, row)]
    for each FROM table, innermost last. *)
type binding = (string * Schema.t * Tuple.t) list

(** Read paths ([scan]/[lookup]/[range]) are lazy sequences: consumers
    that stop early (LIMIT, EXISTS-style checks) never pull — or pay
    for — the remaining rows. Interposed layers attach per-row effects
    (row locks, cost accounting) to the sequence, so each returned
    sequence must be consumed at most once. *)
type access = {
  schema_of : string -> Schema.t;
  scan : string -> (int * Tuple.t) Seq.t;
  lookup : string -> positions:int list -> Value.t list -> (int * Tuple.t) Seq.t;
  insert : string -> Value.t array -> int;
  update : string -> int -> Value.t array -> unit;
  delete : string -> int -> unit;
  create : string -> Schema.t -> unit;
  create_index : string -> string list -> unit;  (** column names *)
  create_ordered_index : string -> string -> unit;  (** one column *)
  range :
    string ->
    position:int ->
    lo:Ordered_index.bound ->
    hi:Ordered_index.bound ->
    (int * Tuple.t) Seq.t;
  has_range : string -> int -> bool;
      (** is there an ordered index on this column? (guides the planner) *)
  drop : string -> unit;
}

(** Unprotected access to a catalog. *)
val direct_access : Catalog.t -> access

(** [eval_expr ?var access env binding e] evaluates an expression. An
    unqualified identifier resolves against [binding] first and then
    against [var] (used by the entangled-query engine to substitute
    valuations for free variables).
    @raise Eval_error on unknown columns or ambiguity. *)
val eval_expr :
  ?var:(string -> Value.t option) ->
  access -> env -> binding -> Ast.expr -> Value.t

(** Evaluate a condition to a boolean. [IN (SELECT ...)] subqueries are
    evaluated with the outer binding in scope (correlation allowed).
    @raise Eval_error when the condition contains [IN ANSWER] — answer
    relations only exist inside entangled query evaluation. *)
val eval_cond :
  ?var:(string -> Value.t option) ->
  access -> env -> binding -> Ast.cond -> bool

(** [select_rows access env sel] evaluates a classical SELECT and
    returns the projected rows (in deterministic scan order). Host
    bindings ([AS @var] and bare [@var] projections) are applied to
    [env] from the first result row; bound variables are set to [Null]
    when the result is empty. *)
val select_rows : access -> env -> Ast.select -> Value.t array list

(** Like {!select_rows} but with a variable-lookup fallback and without
    applying host bindings — used by the entangled-query grounding
    engine, where subqueries are evaluated under partial valuations. *)
val select_rows_correlated :
  ?var:(string -> Value.t option) ->
  access -> env -> Ast.select -> Value.t array list

(** Describe the access plan the evaluator will use for a SELECT: one
    line per FROM table, [SCAN t] or [PROBE t ON (cols)], plus notes
    for grouping, sorting, deduplication and limits. *)
val explain : access -> Ast.select -> string

type outcome =
  | Rows of Value.t array list
  | Affected of int
  | Created

(** Execute a classical statement. [Entangled] and [Rollback]
    statements are the transaction manager's business.
    @raise Eval_error if given one. *)
val exec_stmt : access -> env -> Ast.stmt -> outcome
