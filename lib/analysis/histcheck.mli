(** Dynamic history checking: replay a recorded (or hand-written)
    schedule against the Appendix C requirements and report every
    anomaly with a concrete witness.

    Checks, in order: schedule validity (C.1), conflict cycles over
    committed transactions with quasi-reads expanded (C.2), reads from
    aborted transactions (C.3), widowed transactions (C.4), and
    unrepeatable quasi-reads (the Figure 3b anomaly); optionally
    oracle-serializability (Definition C.7). *)

type violation = {
  code : string;  (** e.g. ["conflict-cycle"], ["widowed"] *)
  requirement : string;  (** the Appendix C requirement violated *)
  witness : string;  (** the concrete operations/transactions involved *)
}

type report = {
  ops : int;
  txns : int list;
  committed : int list;
  aborted : int list;
  validity : string list;  (** C.1 validity errors *)
  violations : violation list;
  level : [ `Full | `No_widow | `Loose ];
  serializable : bool option;  (** [None] = not checked *)
}

(** [`Auto] (default) runs the serializability oracle only when it is
    exact (at most 7 committed transactions — beyond that it falls back
    to a single topological order and can under-approximate). *)
val check : ?serializability:[ `Auto | `On | `Off ] -> Ent_schedule.History.t -> report

(** Valid, anomaly-free, and not proven non-serializable. *)
val ok : report -> bool

val pp : Format.formatter -> report -> unit
val pp_level : Format.formatter -> [ `Full | `No_widow | `Loose ] -> unit
