(** Everything the [entlint] executable does, behind a library API so
    the CLI paths are testable: loading programs from scripts or
    workload generators, parsing and recording histories, rendering
    findings, computing exit codes. *)

(** Parse a script into lint inputs. Transaction blocks become
    transactional programs labelled [txn-N]; consecutive bare
    statements containing an entangled query become a non-transactional
    [autocommit-N] program (the -Q shape); pure bootstrap groups are
    dropped. Errors carry [source:line:col:]. *)
val inputs_of_script : source:string -> string -> (Lint.input list, string) result

val inputs_of_file : string -> (Lint.input list, string) result
val read_file : string -> (string, string) result

val workload_names : string list

(** Generate the programs of a named evaluation workload (over a small
    travel world) as lint inputs. [n] is the batch/structure size. *)
val workload_inputs : ?n:int -> string -> (Lint.input list, string) result

(** Parse the textual schedule notation ({!Histparse}). *)
val history_of_text : string -> (Ent_schedule.History.t, string) result

val isolation_of_name : string -> (Ent_core.Isolation.t, string) result

(** Execute a script under a {!Ent_schedule.Recorder} and return the
    schedule of the transactions that terminated. [txn_isolation]
    ([2pl], the default; [si]; [mixed]) tags the submitted programs'
    per-transaction level; [certifier], when given, is subscribed to
    the engine and entanglement hooks alongside the recorder — the
    online mixed-level checker, since the offline history notation
    carries no isolation levels. *)
val record_script :
  ?isolation:string ->
  ?txn_isolation:string ->
  ?frequency:int ->
  ?certifier:Ent_schedule.Certify.t ->
  string ->
  (Ent_schedule.History.t, string) result

(** Drop findings agreeing on (source, position, program, code) — the
    [Finding.compare] key — keeping the first of each run; output is
    sorted by that order. Multi-source passes can emit the same
    diagnostic once per source that mentions the programs involved. *)
val dedupe : Finding.t list -> Finding.t list

(** All findings, then a [N errors, M warnings] summary line. *)
val render_findings : Format.formatter -> Finding.t list -> unit

(** [{"findings": [...], "errors": N, "warnings": M}] with each finding
    as {!Finding.to_json}. *)
val findings_json : Finding.t list -> Ent_obs.Json.t

(** [0] clean, [1] error findings (any finding under [strict]). *)
val exit_code : ?strict:bool -> Finding.t list -> int
