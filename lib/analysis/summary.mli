(** Static read/write-set summaries: for each statement of a program,
    the tables it touches, in which mode, under which predicate
    ({!Pred.t}). Grounding reads of entangled queries are distinguished
    because they take shared locks during coordination (§3.3). *)

module Ast = Ent_sql.Ast

type mode =
  | Read
  | Ground_read
  | Write

type access = {
  table : string;
  mode : mode;
  pred : Pred.t;
}

type stmt_summary = {
  stmt : Ast.stmt;
  at : Ast.pos;
  accesses : access list;
}

type t = {
  program : Ent_core.Program.t;
  stmts : stmt_summary list;
}

val of_program : Ent_core.Program.t -> t
val accesses_of_stmt : Ast.stmt -> access list

(** Lock acquisitions in program order under Strict 2PL: shared for
    reads and grounding reads, exclusive for writes, all held to end
    of transaction. *)
val lock_sequence : t -> (string * [ `S | `X ] * Pred.t * Ast.pos) list

(** All tables the program touches, sorted. *)
val tables : t -> string list

val lock_of_mode : mode -> [ `S | `X ]
val pp_mode : Format.formatter -> mode -> unit
val pp_lock : Format.formatter -> [ `S | `X ] -> unit
