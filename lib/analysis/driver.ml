module Parser = Ent_sql.Parser
module Ast = Ent_sql.Ast

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Loading lint inputs                                                 *)
(* ------------------------------------------------------------------ *)

(* Transaction blocks become transactional programs. Consecutive bare
   statements form an autocommit group: when such a group contains an
   entangled query it is analysed as a non-transactional (-Q style)
   program; pure DDL/bootstrap groups carry no isolation content and
   are dropped. *)
let inputs_of_items ~source items =
  let inputs = ref [] in
  let txn_count = ref 0 in
  let auto_count = ref 0 in
  let pending = ref [] in
  let flush_pending () =
    let group = List.rev !pending in
    pending := [];
    let has_entangled =
      List.exists
        (fun (s, _) ->
          match (s : Ast.stmt) with
          | Entangled _ -> true
          | _ -> false)
        group
    in
    if has_entangled then begin
      incr auto_count;
      let label = Printf.sprintf "autocommit-%d" !auto_count in
      let program =
        Ent_core.Program.make ~label ~transactional:false
          { Ast.timeout = None; body = group }
      in
      inputs := { Lint.source; program } :: !inputs
    end
  in
  List.iter
    (fun item ->
      match item with
      | Parser.Stmt (s, at) -> pending := (s, at) :: !pending
      | Parser.Program ast ->
        flush_pending ();
        incr txn_count;
        let label = Printf.sprintf "txn-%d" !txn_count in
        inputs :=
          { Lint.source; program = Ent_core.Program.make ~label ast }
          :: !inputs)
    items;
  flush_pending ();
  List.rev !inputs

let inputs_of_script ~source text =
  match Parser.parse_script text with
  | items -> Ok (inputs_of_items ~source items)
  | exception Parser.Parse_error msg -> Error (source ^ ":" ^ msg)
  | exception Ent_sql.Lexer.Lex_error msg -> Error (source ^ ":" ^ msg)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let inputs_of_file path =
  let* text = read_file path in
  inputs_of_script ~source:path text

(* ------------------------------------------------------------------ *)
(* Workload mode: lint the generated programs of a named workload      *)
(* ------------------------------------------------------------------ *)

let workload_names =
  [ "no-social-t"; "no-social-q"; "social-t"; "social-q"; "entangled-t";
    "entangled-q"; "spoke-hub"; "cycle" ]

let workload_inputs ?(n = 4) name =
  let open Ent_workload in
  let build () = Travel.build ~users:40 ~cities:6 () in
  let batch kind transactional =
    let world = build () in
    Ok (Gen.batch world ~transactional kind ~n ~tag_base:0)
  in
  let* programs =
    match name with
    | "no-social-t" -> batch Gen.No_social true
    | "no-social-q" -> batch Gen.No_social false
    | "social-t" -> batch Gen.Social true
    | "social-q" -> batch Gen.Social false
    | "entangled-t" -> batch Gen.Entangled true
    | "entangled-q" -> batch Gen.Entangled false
    | "spoke-hub" -> Ok (Gen.spoke_hub (build ()) ~set_size:(max 2 n) ~tag_base:0)
    | "cycle" -> Ok (Gen.cycle (build ()) ~set_size:(max 2 n) ~tag_base:0)
    | _ ->
      Error
        (Printf.sprintf "unknown workload %S (expected one of: %s)" name
           (String.concat ", " workload_names))
  in
  Ok
    (List.map
       (fun program -> { Lint.source = "workload:" ^ name; program })
       programs)

(* ------------------------------------------------------------------ *)
(* History checking and recording                                      *)
(* ------------------------------------------------------------------ *)

let history_of_text text =
  match Histparse.parse text with
  | h -> Ok h
  | exception Histparse.Parse_error msg -> Error msg

let isolation_of_name = function
  | "full" -> Ok Ent_core.Isolation.full
  | "no-group-commit" -> Ok Ent_core.Isolation.no_group_commit
  | "no-grounding-locks" -> Ok Ent_core.Isolation.no_grounding_locks
  | "read-uncommitted" -> Ok Ent_core.Isolation.read_uncommitted
  | s -> Error (Printf.sprintf "unknown isolation level %S" s)

let txn_isolation_of_name = function
  | "2pl" -> Ok `All_2pl
  | "si" | "snapshot" -> Ok `All_si
  | "mixed" -> Ok `Mixed
  | s ->
    Error (Printf.sprintf "unknown transaction isolation %S (2pl|si|mixed)" s)

(* Execute a script under a recorder and return the schedule of the
   terminated transactions — the bridge from the simulator to the
   formal checkers. [txn_isolation] tags the submitted programs:
   [si] runs them all under snapshot isolation, [mixed] alternates per
   submission. [certifier], when given, is subscribed to the engine and
   entanglement hooks alongside the recorder — the online mixed-level
   checker, since the offline history notation carries no levels. *)
let record_script ?(isolation = "full") ?(txn_isolation = "2pl")
    ?(frequency = 1) ?certifier text =
  let open Ent_core in
  let* isolation = isolation_of_name isolation in
  let* txn_isolation = txn_isolation_of_name txn_isolation in
  let* items =
    match Parser.parse_script text with
    | items -> Ok items
    | exception Parser.Parse_error msg -> Error msg
    | exception Ent_sql.Lexer.Lex_error msg -> Error msg
  in
  let config =
    {
      Scheduler.default_config with
      isolation;
      trigger = Scheduler.Every_arrivals frequency;
    }
  in
  let m = Manager.create ~config () in
  let recorder = Ent_schedule.Recorder.create () in
  Ent_txn.Engine.set_on_event (Manager.engine m)
    (Some
       (fun ev ->
         Ent_schedule.Recorder.on_engine_event recorder ev;
         Option.iter
           (fun c -> Ent_schedule.Certify.on_engine_event c ev)
           certifier));
  Scheduler.set_on_entangle (Manager.scheduler m)
    (Some
       (fun ~event participants ->
         Ent_schedule.Recorder.on_entangle recorder ~event participants;
         Option.iter
           (fun c -> Ent_schedule.Certify.on_entangle c ~event participants)
           certifier));
  let access = Ent_sql.Eval.direct_access (Manager.catalog m) in
  let env = Ent_sql.Eval.fresh_env () in
  let count = ref 0 in
  match
    List.iter
      (fun item ->
        match item with
        | Parser.Stmt (stmt, _) -> ignore (Ent_sql.Eval.exec_stmt access env stmt)
        | Parser.Program ast ->
          incr count;
          let label = Printf.sprintf "txn-%d" !count in
          let level =
            match txn_isolation with
            | `All_2pl -> Ent_txn.Engine.Serializable_2pl
            | `All_si -> Ent_txn.Engine.Snapshot
            | `Mixed ->
              if !count land 1 = 1 then Ent_txn.Engine.Snapshot
              else Ent_txn.Engine.Serializable_2pl
          in
          ignore (Manager.submit m (Program.make ~isolation:level ~label ast)))
      items;
    Manager.drain m
  with
  | () -> Ok (Ent_schedule.Recorder.completed_history recorder)
  | exception Ent_sql.Eval.Eval_error msg -> Error ("evaluation error: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Rendering and exit codes                                            *)
(* ------------------------------------------------------------------ *)

(* Multi-source runs can emit the same diagnostic more than once — the
   same cross-program cycle re-anchored to one program, workload
   batches of structurally identical programs. Two findings agreeing
   on (source, position, program, code) — i.e. [Finding.compare]
   returns 0 — are the same diagnostic; keep the first. *)
let dedupe findings =
  let rec drop = function
    | a :: (b :: _ as rest) when Finding.compare a b = 0 -> drop (a :: List.tl rest)
    | a :: rest -> a :: drop rest
    | [] -> []
  in
  drop (List.stable_sort Finding.compare findings)

let counts findings =
  List.fold_left
    (fun (e, w) (f : Finding.t) ->
      match f.severity with
      | Finding.Error -> (e + 1, w)
      | Finding.Warning -> (e, w + 1))
    (0, 0) findings

let render_findings ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@\n" Finding.pp f) findings;
  let errors, warnings = counts findings in
  if findings = [] then Format.fprintf ppf "no findings@\n"
  else
    Format.fprintf ppf "%d error%s, %d warning%s@\n" errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")

let findings_json findings =
  let errors, warnings = counts findings in
  Ent_obs.Json.Obj
    [
      ("findings", Ent_obs.Json.List (List.map Finding.to_json findings));
      ("errors", Ent_obs.Json.Int errors);
      ("warnings", Ent_obs.Json.Int warnings);
    ]

(* 0 = clean, 1 = findings at error severity (or any finding under
   [strict]), 2 = input could not be parsed at all. *)
let exit_code ?(strict = false) findings =
  let errors, warnings = counts findings in
  if errors > 0 then 1 else if strict && warnings > 0 then 1 else 0
