open Ent_schedule

type violation = {
  code : string;
  requirement : string;
  witness : string;
}

type report = {
  ops : int;
  txns : int list;
  committed : int list;
  aborted : int list;
  validity : string list;
  violations : violation list;
  level : [ `Full | `No_widow | `Loose ];
  serializable : bool option;
}

let obj_str x = Format.asprintf "%a" History.pp_obj x

(* Requirement C.3 with a witness: a committed transaction read an
   object after an aborted one wrote it. Anomaly.find_dirty_read_witness
   is looser (any reader), so filter to committed readers here. *)
let find_read_from_aborted history =
  let aborted = History.aborted history in
  let committed = History.committed history in
  let rec scan = function
    | [] -> None
    | History.Write (i, x) :: rest when List.mem i aborted -> (
      let found =
        List.find_map
          (fun (op : History.op) ->
            match op with
            | Read (j, y) | Ground_read (j, y) | Quasi_read (j, y)
              when j <> i && List.mem j committed && History.overlaps x y ->
              Some (i, j, x, y)
            | _ -> None)
          rest
      in
      match found with
      | Some _ -> found
      | None -> scan rest)
    | _ :: rest -> scan rest
  in
  scan (History.expand_quasi_reads history)

let entangle_event_of history a c =
  List.find_map
    (fun (op : History.op) ->
      match op with
      | Entangle (k, participants)
        when List.mem a participants && List.mem c participants -> Some k
      | _ -> None)
    history

let check ?(serializability = `Auto) history =
  let validity = History.validity_errors history in
  let committed = History.committed history in
  let aborted = History.aborted history in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (match Conflict.find_cycle (Conflict.of_schedule (History.expand_quasi_reads history)) with
  | Some cycle ->
    add
      {
        code = "conflict-cycle";
        requirement = "C.2 (no cycles)";
        witness =
          String.concat " -> " (List.map (fun i -> "T" ^ string_of_int i) cycle)
          ^ " -> T"
          ^ string_of_int (List.hd cycle);
      }
  | None -> ());
  (match find_read_from_aborted history with
  | Some (writer, reader, x, y) ->
    add
      {
        code = "read-from-aborted";
        requirement = "C.3 (no read from aborted)";
        witness =
          Printf.sprintf
            "T%d read %s after aborted T%d wrote %s (dirty read)" reader
            (obj_str y) writer (obj_str x);
      }
  | None -> ());
  (match Anomaly.find_widowed history with
  | Some (a, c) ->
    let event =
      match entangle_event_of history a c with
      | Some k -> Printf.sprintf "entanglement E%d" k
      | None -> "an entanglement"
    in
    add
      {
        code = "widowed";
        requirement = "C.4 (no widowed transactions)";
        witness =
          Printf.sprintf "%s joins T%d (aborted) with T%d (committed)" event a
            c;
      }
  | None -> ());
  (match Anomaly.find_unrepeatable_quasi_read history with
  | Some (txn, x) ->
    add
      {
        code = "unrepeatable-quasi-read";
        requirement = "quasi-read stability (Figure 3b)";
        witness =
          Printf.sprintf
            "T%d quasi-read %s, another transaction wrote it, and T%d then \
             read it again"
            txn (obj_str x) txn;
      }
  | None -> ());
  let serializable =
    let compute () = Some (Abstract.oracle_serializable history) in
    match serializability with
    | `Off -> None
    | `On -> compute ()
    | `Auto ->
      (* The oracle falls back from exhaustive permutation search to a
         single topological order above 7 committed transactions, which
         can under-approximate — only report when it is exact. *)
      if List.length committed <= 7 then compute () else None
  in
  {
    ops = List.length history;
    txns = History.txns history;
    committed;
    aborted;
    validity;
    violations = List.rev !violations;
    level = Anomaly.level history;
    serializable;
  }

let ok r =
  r.validity = [] && r.violations = [] && r.serializable <> Some false

let pp_level ppf = function
  | `Full -> Format.pp_print_string ppf "full (entangled-isolated, C.5)"
  | `No_widow -> Format.pp_print_string ppf "no-widow"
  | `Loose -> Format.pp_print_string ppf "loose"

let pp ppf r =
  Format.fprintf ppf "history: %d ops, %d transactions (%d committed, %d aborted)@\n"
    r.ops (List.length r.txns)
    (List.length r.committed)
    (List.length r.aborted);
  (match r.validity with
  | [] -> Format.fprintf ppf "validity (C.1): ok@\n"
  | errs ->
    Format.fprintf ppf "validity (C.1): %d error%s@\n" (List.length errs)
      (if List.length errs = 1 then "" else "s");
    List.iter (fun e -> Format.fprintf ppf "    %s@\n" e) errs);
  (match r.violations with
  | [] -> Format.fprintf ppf "anomalies: none@\n"
  | vs ->
    List.iter
      (fun v ->
        Format.fprintf ppf "anomaly [%s] violates %s:@\n    %s@\n" v.code
          v.requirement v.witness)
      vs);
  Format.fprintf ppf "isolation level: %a@\n" pp_level r.level;
  match r.serializable with
  | None -> Format.fprintf ppf "oracle-serializable: not checked"
  | Some true -> Format.fprintf ppf "oracle-serializable: yes"
  | Some false -> Format.fprintf ppf "oracle-serializable: NO"
