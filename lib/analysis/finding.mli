(** A lint or checker finding: a coded diagnostic anchored to a source
    position, optionally carrying witness lines (the concrete cycle,
    operation pair, or constraint set that justifies it). *)

type severity =
  | Error
  | Warning

type t = {
  code : string;
  severity : severity;
  source : string;  (** file name or workload label; [""] if none *)
  program : string;  (** program label; [""] if none *)
  at : Ent_sql.Ast.pos;
  message : string;
  witness : string list;
}

val make :
  ?source:string ->
  ?program:string ->
  ?at:Ent_sql.Ast.pos ->
  ?witness:string list ->
  code:string ->
  severity:severity ->
  string ->
  t

val is_error : t -> bool
val severity_name : severity -> string

(** Source file, then position, then program and code. *)
val compare : t -> t -> int

(** Stable machine-readable form mirroring the record: [code],
    [severity], [source], [program], [line], [col], [message],
    [witness]. Field names are a compatibility surface (CI problem
    matchers parse them); never rename. *)
val to_json : t -> Ent_obs.Json.t

(** Renders [source:line:col: severity: [code] (program) message],
    witness lines indented below. *)
val pp : Format.formatter -> t -> unit
