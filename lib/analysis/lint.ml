module Ast = Ent_sql.Ast

type input = Matrix.input = {
  source : string;
  program : Ent_core.Program.t;
}

(* ------------------------------------------------------------------ *)
(* Entangled-query sanity: unsatisfiable bodies, range restriction,
   CHOOSE bounds. The variable-binding rules mirror Ir.cond_bound_vars /
   Ir.answer_vars so the lint predicts exactly what Ir.validate and the
   evaluator will reject at run time — plus the purely semantic cases
   (contradictory constraints) they cannot see.                        *)
(* ------------------------------------------------------------------ *)

let rec expr_vars (e : Ast.expr) =
  match e with
  | Lit _ | Host _ -> []
  | Col (None, v) -> [ v ]
  | Col (Some _, _) -> []
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Agg _ -> []

let rec post_vars (c : Ast.cond) =
  match c with
  | In_answer (exprs, _) -> List.concat_map expr_vars exprs
  | And (a, b) | Or (a, b) -> post_vars a @ post_vars b
  | Not a -> post_vars a
  | True | Cmp _ | In_select _ | In_list _ | Between _ -> []

(* A variable is bound when a body atom ranges over it (IN (SELECT ..))
   or an equality pins it to a constant — same rule as the IR. *)
let rec bound_vars (c : Ast.cond) =
  match c with
  | And (a, b) -> bound_vars a @ bound_vars b
  | In_select (exprs, _) -> List.concat_map expr_vars exprs
  | Cmp (Eq, Col (None, v), (Lit _ | Host _))
  | Cmp (Eq, (Lit _ | Host _), Col (None, v)) -> [ v ]
  | True | Cmp _ | Or _ | Not _ | In_list _ | Between _ | In_answer _ -> []

let check_entangled ~source ~label ~at (e : Ast.entangled_select) =
  let finding ?witness ~code ~severity msg =
    Finding.make ~source ~program:label ~at ?witness ~code ~severity msg
  in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let pred = Pred.of_cond ~owns:(fun q -> q = None) e.ewhere in
  (match Pred.unsat_witness pred with
  | Some why ->
    add
      (finding ~code:"unsat-entangled" ~severity:Finding.Error
         ~witness:[ why ]
         (Printf.sprintf
            "entangled query into ANSWER %s has an unsatisfiable grounding \
             body: no candidate answer exists, so coordination can never \
             succeed"
            e.into))
  | None -> ());
  let answer =
    List.sort_uniq String.compare
      (List.concat_map (fun (p : Ast.proj) -> expr_vars p.pexpr) e.eprojs
      @ post_vars e.ewhere)
  in
  let bound = bound_vars e.ewhere in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        add
          (finding ~code:"degenerate-entangled" ~severity:Finding.Error
             (Printf.sprintf
                "answer variable %s is not bound by any body atom (range \
                 restriction): no IN (SELECT ...) ranges over it and no \
                 equality pins it to a constant"
                v)))
    answer;
  if e.choose <> 1 then
    add
      (finding ~code:"choose-unsupported" ~severity:Finding.Error
         (Printf.sprintf
            "CHOOSE %d is not supported by the evaluator (only CHOOSE 1)"
            e.choose));
  (* Static candidate bound: only claimed when every head variable has a
     finite candidate set, since distinct answer tuples are valuations
     of exactly those variables. *)
  let head_vars =
    List.sort_uniq String.compare
      (List.concat_map (fun (p : Ast.proj) -> expr_vars p.pexpr) e.eprojs)
  in
  (if e.choose > 1 && not (Pred.unsat pred) then
     let counts = List.map (fun v -> (v, Pred.count pred v)) head_vars in
     if List.for_all (fun (_, c) -> c <> None) counts then
       let bound =
         List.fold_left
           (fun acc (_, c) -> acc * Option.value ~default:1 c)
           1 counts
       in
       if bound < e.choose then
         add
           (finding ~code:"choose-bound" ~severity:Finding.Error
              ~witness:
                (List.map
                   (fun (v, c) ->
                     Printf.sprintf "variable %s: at most %d candidate value%s"
                       v
                       (Option.value ~default:1 c)
                       (if Option.value ~default:1 c = 1 then "" else "s"))
                   counts)
              (Printf.sprintf
                 "CHOOSE %d exceeds the static candidate bound of %d distinct \
                  answer tuple%s: the query can never be satisfied"
                 e.choose bound
                 (if bound = 1 then "" else "s"))));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Widowed-transaction risk (Requirement C.4): once a transaction has
   coordinated, aborting it — or invalidating the premise its partner
   grounded on — widows the partner.                                   *)
(* ------------------------------------------------------------------ *)

let check_widow_risk ~source (summary : Summary.t) =
  let label = summary.program.label in
  let entangled_before = ref [] in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (ss : Summary.stmt_summary) ->
      (match ss.stmt with
      | Ast.Rollback ->
        List.iter
          (fun (eat, into, _grounds) ->
            add
              (Finding.make ~source ~program:label ~at:ss.at ~code:"widow-risk"
                 ~severity:Finding.Error
                 ~witness:
                   [
                     Format.asprintf
                       "entangled query into ANSWER %s at %a precedes the \
                        ROLLBACK"
                       into Ast.pp_pos eat;
                   ]
                 "ROLLBACK after an entangled query: aborting after \
                  coordination widows the partner transaction (Requirement \
                  C.4) — under group commit the whole group must abort with \
                  it"))
          !entangled_before
      | _ ->
        List.iter
          (fun (a : Summary.access) ->
            if a.mode = Summary.Write then
              List.iter
                (fun (eat, into, grounds) ->
                  List.iter
                    (fun (g : Summary.access) ->
                      if g.table = a.table && Pred.may_overlap g.pred a.pred
                      then
                        add
                          (Finding.make ~source ~program:label ~at:ss.at
                             ~code:"widow-risk" ~severity:Finding.Warning
                             ~witness:
                               [
                                 Format.asprintf
                                   "grounding read of %s by the entangled \
                                    query into ANSWER %s at %a" g.table into
                                   Ast.pp_pos eat;
                               ]
                             (Printf.sprintf
                                "writes table %s after an entangled query \
                                 grounded on it: the write can invalidate \
                                 the premise the partner coordinated on"
                                a.table)))
                    grounds)
                !entangled_before)
          ss.accesses);
      match ss.stmt with
      | Ast.Entangled e ->
        entangled_before :=
          (ss.at, e.into, ss.accesses) :: !entangled_before
      | _ -> ())
    summary.stmts;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* -Q-style hazard: entangled queries in autocommit programs.          *)
(* ------------------------------------------------------------------ *)

let check_autocommit ~source (summary : Summary.t) =
  if summary.program.transactional then []
  else
    List.filter_map
      (fun (ss : Summary.stmt_summary) ->
        match ss.stmt with
        | Ast.Entangled e ->
          Some
            (Finding.make ~source ~program:summary.program.label ~at:ss.at
               ~code:"autocommit-entangle" ~severity:Finding.Warning
               (Printf.sprintf
                  "entangled query into ANSWER %s outside a transaction \
                   (-Q style): coordination and the statements that use its \
                   answer commit separately, so a partner failure in between \
                   leaves this program's effects committed on a dead premise"
                  e.into))
        | _ -> None)
      summary.stmts

(* ------------------------------------------------------------------ *)
(* Potential deadlock: cycles in the static lock-order graph under
   Strict 2PL. The graph construction and cycle search live in
   {!Matrix}, which also serves the conflict/commutativity analysis.   *)
(* ------------------------------------------------------------------ *)

let check_deadlocks (inputs : input list) =
  Matrix.deadlock_findings (Matrix.analyze inputs)

(* ------------------------------------------------------------------ *)

let check_program (i : input) =
  let summary = Summary.of_program i.program in
  let entangled =
    List.concat_map
      (fun (ss : Summary.stmt_summary) ->
        match ss.stmt with
        | Ast.Entangled e ->
          check_entangled ~source:i.source ~label:i.program.label ~at:ss.at e
        | _ -> [])
      summary.stmts
  in
  let widow =
    if i.program.transactional then check_widow_risk ~source:i.source summary
    else []
  in
  entangled @ widow @ check_autocommit ~source:i.source summary

let run inputs =
  let per_program = List.concat_map check_program inputs in
  let deadlocks = check_deadlocks inputs in
  List.sort Finding.compare (per_program @ deadlocks)
