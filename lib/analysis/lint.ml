module Ast = Ent_sql.Ast

type input = {
  source : string;
  program : Ent_core.Program.t;
}

(* ------------------------------------------------------------------ *)
(* Entangled-query sanity: unsatisfiable bodies, range restriction,
   CHOOSE bounds. The variable-binding rules mirror Ir.cond_bound_vars /
   Ir.answer_vars so the lint predicts exactly what Ir.validate and the
   evaluator will reject at run time — plus the purely semantic cases
   (contradictory constraints) they cannot see.                        *)
(* ------------------------------------------------------------------ *)

let rec expr_vars (e : Ast.expr) =
  match e with
  | Lit _ | Host _ -> []
  | Col (None, v) -> [ v ]
  | Col (Some _, _) -> []
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Agg _ -> []

let rec post_vars (c : Ast.cond) =
  match c with
  | In_answer (exprs, _) -> List.concat_map expr_vars exprs
  | And (a, b) | Or (a, b) -> post_vars a @ post_vars b
  | Not a -> post_vars a
  | True | Cmp _ | In_select _ | In_list _ | Between _ -> []

(* A variable is bound when a body atom ranges over it (IN (SELECT ..))
   or an equality pins it to a constant — same rule as the IR. *)
let rec bound_vars (c : Ast.cond) =
  match c with
  | And (a, b) -> bound_vars a @ bound_vars b
  | In_select (exprs, _) -> List.concat_map expr_vars exprs
  | Cmp (Eq, Col (None, v), (Lit _ | Host _))
  | Cmp (Eq, (Lit _ | Host _), Col (None, v)) -> [ v ]
  | True | Cmp _ | Or _ | Not _ | In_list _ | Between _ | In_answer _ -> []

let check_entangled ~source ~label ~at (e : Ast.entangled_select) =
  let finding ?witness ~code ~severity msg =
    Finding.make ~source ~program:label ~at ?witness ~code ~severity msg
  in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let pred = Pred.of_cond ~owns:(fun q -> q = None) e.ewhere in
  (match Pred.unsat_witness pred with
  | Some why ->
    add
      (finding ~code:"unsat-entangled" ~severity:Finding.Error
         ~witness:[ why ]
         (Printf.sprintf
            "entangled query into ANSWER %s has an unsatisfiable grounding \
             body: no candidate answer exists, so coordination can never \
             succeed"
            e.into))
  | None -> ());
  let answer =
    List.sort_uniq String.compare
      (List.concat_map (fun (p : Ast.proj) -> expr_vars p.pexpr) e.eprojs
      @ post_vars e.ewhere)
  in
  let bound = bound_vars e.ewhere in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        add
          (finding ~code:"degenerate-entangled" ~severity:Finding.Error
             (Printf.sprintf
                "answer variable %s is not bound by any body atom (range \
                 restriction): no IN (SELECT ...) ranges over it and no \
                 equality pins it to a constant"
                v)))
    answer;
  if e.choose <> 1 then
    add
      (finding ~code:"choose-unsupported" ~severity:Finding.Error
         (Printf.sprintf
            "CHOOSE %d is not supported by the evaluator (only CHOOSE 1)"
            e.choose));
  (* Static candidate bound: only claimed when every head variable has a
     finite candidate set, since distinct answer tuples are valuations
     of exactly those variables. *)
  let head_vars =
    List.sort_uniq String.compare
      (List.concat_map (fun (p : Ast.proj) -> expr_vars p.pexpr) e.eprojs)
  in
  (if e.choose > 1 && not (Pred.unsat pred) then
     let counts = List.map (fun v -> (v, Pred.count pred v)) head_vars in
     if List.for_all (fun (_, c) -> c <> None) counts then
       let bound =
         List.fold_left
           (fun acc (_, c) -> acc * Option.value ~default:1 c)
           1 counts
       in
       if bound < e.choose then
         add
           (finding ~code:"choose-bound" ~severity:Finding.Error
              ~witness:
                (List.map
                   (fun (v, c) ->
                     Printf.sprintf "variable %s: at most %d candidate value%s"
                       v
                       (Option.value ~default:1 c)
                       (if Option.value ~default:1 c = 1 then "" else "s"))
                   counts)
              (Printf.sprintf
                 "CHOOSE %d exceeds the static candidate bound of %d distinct \
                  answer tuple%s: the query can never be satisfied"
                 e.choose bound
                 (if bound = 1 then "" else "s"))));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Widowed-transaction risk (Requirement C.4): once a transaction has
   coordinated, aborting it — or invalidating the premise its partner
   grounded on — widows the partner.                                   *)
(* ------------------------------------------------------------------ *)

let check_widow_risk ~source (summary : Summary.t) =
  let label = summary.program.label in
  let entangled_before = ref [] in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (ss : Summary.stmt_summary) ->
      (match ss.stmt with
      | Ast.Rollback ->
        List.iter
          (fun (eat, into, _grounds) ->
            add
              (Finding.make ~source ~program:label ~at:ss.at ~code:"widow-risk"
                 ~severity:Finding.Error
                 ~witness:
                   [
                     Format.asprintf
                       "entangled query into ANSWER %s at %a precedes the \
                        ROLLBACK"
                       into Ast.pp_pos eat;
                   ]
                 "ROLLBACK after an entangled query: aborting after \
                  coordination widows the partner transaction (Requirement \
                  C.4) — under group commit the whole group must abort with \
                  it"))
          !entangled_before
      | _ ->
        List.iter
          (fun (a : Summary.access) ->
            if a.mode = Summary.Write then
              List.iter
                (fun (eat, into, grounds) ->
                  List.iter
                    (fun (g : Summary.access) ->
                      if g.table = a.table && Pred.may_overlap g.pred a.pred
                      then
                        add
                          (Finding.make ~source ~program:label ~at:ss.at
                             ~code:"widow-risk" ~severity:Finding.Warning
                             ~witness:
                               [
                                 Format.asprintf
                                   "grounding read of %s by the entangled \
                                    query into ANSWER %s at %a" g.table into
                                   Ast.pp_pos eat;
                               ]
                             (Printf.sprintf
                                "writes table %s after an entangled query \
                                 grounded on it: the write can invalidate \
                                 the premise the partner coordinated on"
                                a.table)))
                    grounds)
                !entangled_before)
          ss.accesses);
      match ss.stmt with
      | Ast.Entangled e ->
        entangled_before :=
          (ss.at, e.into, ss.accesses) :: !entangled_before
      | _ -> ())
    summary.stmts;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* -Q-style hazard: entangled queries in autocommit programs.          *)
(* ------------------------------------------------------------------ *)

let check_autocommit ~source (summary : Summary.t) =
  if summary.program.transactional then []
  else
    List.filter_map
      (fun (ss : Summary.stmt_summary) ->
        match ss.stmt with
        | Ast.Entangled e ->
          Some
            (Finding.make ~source ~program:summary.program.label ~at:ss.at
               ~code:"autocommit-entangle" ~severity:Finding.Warning
               (Printf.sprintf
                  "entangled query into ANSWER %s outside a transaction \
                   (-Q style): coordination and the statements that use its \
                   answer commit separately, so a partner failure in between \
                   leaves this program's effects committed on a dead premise"
                  e.into))
        | _ -> None)
      summary.stmts

(* ------------------------------------------------------------------ *)
(* Potential deadlock: cycles in the static lock-order graph under
   Strict 2PL. An edge u -> v for program P means P still holds a lock
   on u when it requests one on v; a cycle whose consecutive edges come
   from different programs, conflict in mode, and overlap in predicate
   is a schedule in which every participant can block on the next.     *)
(* ------------------------------------------------------------------ *)

type edge = {
  eu : string;
  ev : string;
  prog : int;
  mu : [ `S | `X ];
  pu : Pred.t;
  posu : Ast.pos;
  mv : [ `S | `X ];
  pv : Pred.t;
  posv : Ast.pos;
}

let lock_ge a b =
  match a, b with
  | `X, _ -> true
  | `S, `S -> true
  | `S, `X -> false

let modes_conflict a b = not (a = `S && b = `S)

let edges_of_sequence prog seq =
  let seq = Array.of_list seq in
  let n = Array.length seq in
  (* A request blocks only if the lock is not already held with
     sufficient mode (re-reads are free; S-to-X is an upgrade). *)
  let real_request j =
    let tj, mj, _, _ = seq.(j) in
    let already = ref false in
    for k = 0 to j - 1 do
      let tk, mk, _, _ = seq.(k) in
      if tk = tj && lock_ge mk mj then already := true
    done;
    not !already
  in
  let edges = ref [] in
  for j = 0 to n - 1 do
    if real_request j then
      for i = 0 to j - 1 do
        let tu, mu, pu, posu = seq.(i) in
        let tv, mv, pv, posv = seq.(j) in
        if tu <> tv then
          edges := { eu = tu; ev = tv; prog; mu; pu; posu; mv; pv; posv } :: !edges
      done
  done;
  List.rev !edges

(* Two consecutive cycle edges [e1: _ -> t] then [e2: t -> _]: e1's
   program is waiting for t, which e2's program holds. *)
let compat e1 e2 =
  e1.prog <> e2.prog
  && modes_conflict e1.mv e2.mu
  && Pred.may_overlap e1.pv e2.pu

let max_cycle_len = 4

let find_lock_cycles edges =
  let out : (string, edge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let l = Option.value ~default:[] (Hashtbl.find_opt out e.eu) in
      Hashtbl.replace out e.eu (l @ [ e ]))
    edges;
  let tables =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.eu; e.ev ]) edges)
  in
  let cycles = ref [] in
  let on_path : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun start ->
      (* Canonical form: the start table is the cycle's smallest, so
         each cycle is discovered exactly once per rotation. *)
      let rec dfs path current =
        if List.length path < max_cycle_len then
          List.iter
            (fun e ->
              let ok_prev =
                match path with
                | [] -> true
                | prev :: _ -> compat prev e
              in
              if ok_prev then
                if e.ev = start then (
                  let cycle = List.rev (e :: path) in
                  match cycle with
                  | first :: _ -> if compat e first then cycles := cycle :: !cycles
                  | [] -> ())
                else if String.compare e.ev start > 0
                        && not (Hashtbl.mem on_path e.ev)
                then begin
                  Hashtbl.replace on_path e.ev ();
                  dfs (e :: path) e.ev;
                  Hashtbl.remove on_path e.ev
                end)
            (Option.value ~default:[] (Hashtbl.find_opt out current))
      in
      dfs [] start)
    tables;
  List.rev !cycles

let check_deadlocks (inputs : input list) =
  let summaries =
    List.filter (fun (i : input) -> i.program.transactional) inputs
    |> List.map (fun (i : input) -> (i, Summary.of_program i.program))
  in
  let edges =
    List.concat
      (List.mapi
         (fun idx (_, s) -> edges_of_sequence idx (Summary.lock_sequence s))
         summaries)
  in
  let cycles = find_lock_cycles edges in
  let arr = Array.of_list summaries in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.filter_map
    (fun cycle ->
      let progs = List.sort_uniq Int.compare (List.map (fun e -> e.prog) cycle) in
      let tables = List.sort_uniq String.compare (List.map (fun e -> e.eu) cycle) in
      let key =
        String.concat "," (List.map string_of_int progs)
        ^ "|" ^ String.concat "," tables
      in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        let label_of p = (snd arr.(p)).Summary.program.label in
        let source_of p = (fst arr.(p)).source in
        let order =
          String.concat " -> " (List.map (fun e -> e.eu) cycle)
          ^ " -> "
          ^ (List.hd cycle).eu
        in
        let witness =
          List.map
            (fun e ->
              Format.asprintf "%s: acquires %a(%s) at %a, then requests %a(%s) at %a"
                (label_of e.prog) Summary.pp_lock e.mu e.eu Ast.pp_pos e.posu
                Summary.pp_lock e.mv e.ev Ast.pp_pos e.posv)
            cycle
        in
        let first = List.hd cycle in
        Some
          (Finding.make ~source:(source_of first.prog)
             ~program:(label_of first.prog) ~at:first.posu
             ~code:"potential-deadlock" ~severity:Finding.Error ~witness
             (Printf.sprintf
                "potential deadlock under strict 2PL: circular lock order %s \
                 between programs %s"
                order
                (String.concat ", " (List.map label_of progs))))
      end)
    cycles

(* ------------------------------------------------------------------ *)

let check_program (i : input) =
  let summary = Summary.of_program i.program in
  let entangled =
    List.concat_map
      (fun (ss : Summary.stmt_summary) ->
        match ss.stmt with
        | Ast.Entangled e ->
          check_entangled ~source:i.source ~label:i.program.label ~at:ss.at e
        | _ -> [])
      summary.stmts
  in
  let widow =
    if i.program.transactional then check_widow_risk ~source:i.source summary
    else []
  in
  entangled @ widow @ check_autocommit ~source:i.source summary

let run inputs =
  let per_program = List.concat_map check_program inputs in
  let deadlocks = check_deadlocks inputs in
  List.sort Finding.compare (per_program @ deadlocks)
