type severity =
  | Error
  | Warning

type t = {
  code : string;
  severity : severity;
  source : string;
  program : string;
  at : Ent_sql.Ast.pos;
  message : string;
  witness : string list;
}

let make ?(source = "") ?(program = "") ?(at = Ent_sql.Ast.no_pos)
    ?(witness = []) ~code ~severity message =
  { code; severity; source; program; at; message; witness }

let is_error t = t.severity = Error

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"

(* Sort order: source file, then position, then code — the order a
   reader scans a file in. *)
let compare a b =
  let c = String.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Stdlib.compare (a.at.line, a.at.col) (b.at.line, b.at.col) in
    if c <> 0 then c
    else
      let c = String.compare a.program b.program in
      if c <> 0 then c else String.compare a.code b.code

(* Stable field names — consumed by CI tooling; additions are fine,
   renames are not. *)
let to_json t =
  Ent_obs.Json.Obj
    [
      ("code", Ent_obs.Json.Str t.code);
      ("severity", Ent_obs.Json.Str (severity_name t.severity));
      ("source", Ent_obs.Json.Str t.source);
      ("program", Ent_obs.Json.Str t.program);
      ("line", Ent_obs.Json.Int t.at.line);
      ("col", Ent_obs.Json.Int t.at.col);
      ("message", Ent_obs.Json.Str t.message);
      ("witness", Ent_obs.Json.List (List.map (fun w -> Ent_obs.Json.Str w) t.witness));
    ]

let pp ppf t =
  let where =
    match t.source, t.at with
    | "", at when at = Ent_sql.Ast.no_pos -> ""
    | "", at -> Format.asprintf "%a: " Ent_sql.Ast.pp_pos at
    | src, at when at = Ent_sql.Ast.no_pos -> src ^ ": "
    | src, at -> Format.asprintf "%s:%a: " src Ent_sql.Ast.pp_pos at
  in
  let prog = if t.program = "" then "" else Printf.sprintf " (%s)" t.program in
  Format.fprintf ppf "%s%s: [%s]%s %s" where (severity_name t.severity) t.code
    prog t.message;
  List.iter (fun line -> Format.fprintf ppf "@\n    %s" line) t.witness
