(** Static lint passes over entangled-transaction programs.

    Per-program passes:
    - [unsat-entangled] (error): the grounding body of an entangled
      query is unsatisfiable — no candidate answer can exist;
    - [degenerate-entangled] (error): an answer variable violates range
      restriction (not bound by any body atom), which {!Ent_entangle.Ir.validate}
      rejects at run time;
    - [choose-unsupported] (error): [CHOOSE k] with [k <> 1];
    - [choose-bound] (error): [CHOOSE k] exceeds the static bound on
      distinct candidate answer tuples;
    - [widow-risk] (error/warning): a ROLLBACK after an entangled query,
      or a write to a table an earlier entangled query grounded on —
      both can strand the partner on a dead premise (Requirement C.4);
    - [autocommit-entangle] (warning): an entangled query in a
      non-transactional (-Q style) program.

    Cross-program pass:
    - [potential-deadlock] (error): a cycle in the static lock-order
      graph under Strict 2PL whose consecutive edges belong to
      different programs, conflict in lock mode, and overlap in
      predicate. *)

type input = Matrix.input = {
  source : string;  (** file name or workload label, for findings *)
  program : Ent_core.Program.t;
}

(** All passes over all programs, findings sorted by source position. *)
val run : input list -> Finding.t list

(** The per-program passes only (no cross-program deadlock analysis). *)
val check_program : input -> Finding.t list

(** The cross-program lock-order analysis only. *)
val check_deadlocks : input list -> Finding.t list
