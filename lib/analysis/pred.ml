open Ent_storage
module Ast = Ent_sql.Ast

type bound = Value.t * bool

type cstr = {
  eqs : Value.t list;
  nes : Value.t list;
  los : bound list;
  his : bound list;
  sets : Value.t list list;
}

type t = {
  cols : (string * cstr) list;
  falsum : bool;
  exact : bool;
}

let empty_cstr = { eqs = []; nes = []; los = []; his = []; sets = [] }

let top = { cols = []; falsum = false; exact = false }
let exact_top = { cols = []; falsum = false; exact = true }

let is_top t = t.cols = [] && not t.falsum

(* The finite candidate list for a constraint, when one is implied:
   [Some vs] means exactly the values in [vs] can satisfy it ([Some []]
   = unsatisfiable); [None] means the candidate space is unbounded (or
   at least not bounded by this fragment). *)
let candidates c =
  let meets_lo v =
    List.for_all
      (fun (b, incl) ->
        let cmp = Value.compare v b in
        if incl then cmp >= 0 else cmp > 0)
      c.los
  in
  let meets_hi v =
    List.for_all
      (fun (b, incl) ->
        let cmp = Value.compare v b in
        if incl then cmp <= 0 else cmp < 0)
      c.his
  in
  let ok v =
    List.for_all (Value.equal v) c.eqs
    && (not (List.exists (Value.equal v) c.nes))
    && meets_lo v && meets_hi v
    && List.for_all (fun s -> List.exists (Value.equal v) s) c.sets
  in
  match c.eqs, c.sets with
  | v :: _, _ -> Some (if ok v then [ v ] else [])
  | [], s :: _ -> Some (List.sort_uniq Value.compare (List.filter ok s))
  | [], [] ->
    (* Only bounds and disequalities: unsatisfiable exactly when some
       lower bound exceeds some upper bound (disequalities alone cannot
       exhaust an unbounded domain). *)
    let contradicts =
      List.exists
        (fun (lo, lo_incl) ->
          List.exists
            (fun (hi, hi_incl) ->
              let cmp = Value.compare lo hi in
              cmp > 0 || (cmp = 0 && not (lo_incl && hi_incl)))
            c.his)
        c.los
    in
    if contradicts then Some [] else None

let cstr_unsat c = candidates c = Some []

let unsat t = t.falsum || List.exists (fun (_, c) -> cstr_unsat c) t.cols

let conjoin_cstr a b =
  {
    eqs = a.eqs @ b.eqs;
    nes = a.nes @ b.nes;
    los = a.los @ b.los;
    his = a.his @ b.his;
    sets = a.sets @ b.sets;
  }

let conjoin a b =
  let keys =
    List.sort_uniq String.compare (List.map fst a.cols @ List.map fst b.cols)
  in
  let cstr_of t k = Option.value ~default:empty_cstr (List.assoc_opt k t.cols) in
  {
    cols = List.map (fun k -> (k, conjoin_cstr (cstr_of a k) (cstr_of b k))) keys;
    falsum = a.falsum || b.falsum;
    exact = a.exact && b.exact;
  }

(* The recorded constraints are necessary conditions on matching rows,
   so an unsatisfiable conjunction proves the two predicates select
   disjoint row sets; anything else may overlap. *)
let may_overlap a b = not (unsat (conjoin a b))

let count t col =
  match List.assoc_opt col t.cols with
  | None -> None
  | Some c -> Option.map List.length (candidates c)

let of_cond ~owns cond =
  let cols : (string, cstr) Hashtbl.t = Hashtbl.create 8 in
  let falsum = ref false in
  let exact = ref true in
  let get c = Option.value ~default:empty_cstr (Hashtbl.find_opt cols c) in
  let update c f = Hashtbl.replace cols c (f (get c)) in
  let lit = function
    | Ast.Lit v -> Some v
    | _ -> None
  in
  let col = function
    | Ast.Col (q, c) when owns q -> Some c
    | _ -> None
  in
  let flip (op : Ast.cmp) =
    match op with
    | Eq -> Ast.Eq
    | Ne -> Ne
    | Lt -> Gt
    | Le -> Ge
    | Gt -> Lt
    | Ge -> Le
  in
  let add_cmp (op : Ast.cmp) c v =
    match op with
    | Eq -> update c (fun k -> { k with eqs = v :: k.eqs })
    | Ne -> update c (fun k -> { k with nes = v :: k.nes })
    | Lt -> update c (fun k -> { k with his = (v, false) :: k.his })
    | Le -> update c (fun k -> { k with his = (v, true) :: k.his })
    | Gt -> update c (fun k -> { k with los = (v, false) :: k.los })
    | Ge -> update c (fun k -> { k with los = (v, true) :: k.los })
  in
  let const_holds (op : Ast.cmp) a b =
    let cmp = Value.compare a b in
    match op with
    | Eq -> cmp = 0
    | Ne -> cmp <> 0
    | Lt -> cmp < 0
    | Le -> cmp <= 0
    | Gt -> cmp > 0
    | Ge -> cmp >= 0
  in
  let rec walk (c : Ast.cond) =
    match c with
    | True -> ()
    | And (a, b) ->
      walk a;
      walk b
    | Cmp (op, a, b) -> (
      match col a, lit b, lit a, col b with
      | Some c, Some v, _, _ -> add_cmp op c v
      | _, _, Some v, Some c -> add_cmp (flip op) c v
      | _ -> (
        match lit a, lit b with
        | Some va, Some vb -> if not (const_holds op va vb) then falsum := true
        | _ -> exact := false))
    | Between (e, lo, hi) -> (
      match col e, lit lo, lit hi with
      | Some c, Some vl, Some vh ->
        add_cmp Ge c vl;
        add_cmp Le c vh
      | _ -> exact := false)
    | In_list (e, vs) -> (
      let lits = List.filter_map lit vs in
      match col e with
      | Some c when List.length lits = List.length vs ->
        update c (fun k -> { k with sets = lits :: k.sets })
      | _ -> exact := false)
    | Or _ | Not _ | In_select _ | In_answer _ -> exact := false
  in
  walk cond;
  let cols =
    Hashtbl.fold (fun c k acc -> (c, k) :: acc) cols []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { cols; falsum = !falsum; exact = !exact }

let pp_cstr ppf c =
  let v = Format.asprintf "%a" Value.pp in
  let parts =
    List.map (fun x -> "= " ^ v x) c.eqs
    @ List.map (fun x -> "<> " ^ v x) c.nes
    @ List.map
        (fun (x, incl) -> (if incl then ">= " else "> ") ^ v x)
        c.los
    @ List.map
        (fun (x, incl) -> (if incl then "<= " else "< ") ^ v x)
        c.his
    @ List.map
        (fun s -> "in {" ^ String.concat ", " (List.map v s) ^ "}")
        c.sets
  in
  Format.pp_print_string ppf (String.concat " and " parts)

let pp ppf t =
  if t.falsum then Format.pp_print_string ppf "false"
  else if t.cols = [] then
    Format.pp_print_string ppf (if t.exact then "true" else "*")
  else begin
    Format.pp_print_string ppf
      (String.concat ", "
         (List.map
            (fun (c, k) -> Format.asprintf "%s %a" c pp_cstr k)
            t.cols));
    if not t.exact then Format.pp_print_string ppf ", *"
  end

let unsat_witness t =
  if t.falsum then
    Some "a constant comparison in the condition is always false"
  else
    List.find_map
      (fun (c, k) ->
        if cstr_unsat k then
          Some
            (Format.asprintf "column %s: constraints [%a] admit no value" c
               pp_cstr k)
        else None)
      t.cols
