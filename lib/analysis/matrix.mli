(** Whole-suite static conflict analysis: the pairwise
    conflict/commutativity matrix over transaction programs and the
    cross-program lock-order graph.

    Two programs {e commute} when no pair of their statically
    summarised accesses ({!Summary.accesses_of_stmt}) conflicts: same
    table, at least one write, predicates not provably disjoint
    ({!Pred.may_overlap}). A conflicting pair is {e row-scoped} when
    the conjoined predicate pins at least one column to a finite
    candidate set ({!Pred.count}) — the conflict is confined to
    identifiable rows, so optimistic/multicore execution can arbitrate
    per row — and {e table-scoped} otherwise. The matrix includes the
    diagonal: program [i] against an independent instance of itself.

    The lock-order graph generalises the per-program deadlock lint:
    nodes are tables, an edge [u -> v] for program P means P still
    holds a lock on [u] (Strict 2PL) when it requests one on [v].
    Cycles whose consecutive edges come from different programs,
    conflict in mode, and overlap in predicate are potential
    deadlocks; their absence is a (static, predicate-abstracted)
    deadlock-freedom argument for the suite. *)

type input = {
  source : string;  (** file name or workload label, for findings *)
  program : Ent_core.Program.t;
}

type scope =
  | Row_scope
  | Table_scope

type witness = {
  table : string;
  scope : scope;
  left_mode : Summary.mode;
  right_mode : Summary.mode;
}

type verdict =
  | Commutes
  | Row_conflict
  | Table_conflict

(** Why a conflicting pair is unsafe to demote to snapshot isolation
    (both sides running SI, so no read locks serialize them).
    [Lost_update t]: the write sets overlap on [t] —
    first-committer-wins turns the 2PL wait into commit-time aborts.
    [Write_skew (a, b)]: one side reads a region of [a] the other
    writes, and vice versa on [b], with no write-write overlap needed —
    the canonical SI anomaly, invisible to write-set validation. *)
type si_hazard =
  | Lost_update of string
  | Write_skew of string * string

type cell = {
  verdict : verdict;
  witnesses : witness list;
  si_hazards : si_hazard list;
      (** empty iff the pair is safe to demote to snapshot isolation *)
}

(** A static lock-order edge: program [prog] (index into the input
    list) acquires [mu] on [eu] at [posu] and later requests [mv] on
    [ev] at [posv] while still holding it. *)
type edge = {
  eu : string;
  ev : string;
  prog : int;
  mu : [ `S | `X ];
  pu : Pred.t;
  posu : Ent_sql.Ast.pos;
  mv : [ `S | `X ];
  pv : Pred.t;
  posv : Ent_sql.Ast.pos;
}

type t = {
  inputs : input array;
  cells : cell array array;  (** [cells.(i).(j)]: program i vs program j *)
  edges : edge list;  (** the whole lock-order graph *)
  cycles : edge list list;  (** potential deadlock cycles (length <= 4) *)
}

val analyze : input list -> t

(** The deadlock cycles as [potential-deadlock] findings — the same
    diagnostics {!Lint.check_deadlocks} reports. *)
val deadlock_findings : t -> Finding.t list

val verdict_name : verdict -> string

(** Text rendering: index legend, the matrix ([.] commutes, [r] row
    conflict, [T] table conflict), then the lock-order summary. *)
val pp : Format.formatter -> t -> unit

(** Stable machine-readable form: [programs], [matrix] (cells with
    verdict and per-table witnesses), [lock_order] (edges and cycles). *)
val to_json : t -> Ent_obs.Json.t

(** The lock-order graph in Graphviz DOT; edges on a potential
    deadlock cycle are highlighted. *)
val lock_graph_dot : t -> string

(** {2 Machinery shared with {!Lint}} *)

val lock_ge : [ `S | `X ] -> [ `S | `X ] -> bool
val modes_conflict : [ `S | `X ] -> [ `S | `X ] -> bool

(** [edges_of_sequence prog locks]: the holds-while-requesting pairs of
    one program's {!Summary.lock_sequence} (re-acquisitions of an
    already-sufficient lock request nothing). *)
val edges_of_sequence :
  int -> (string * [ `S | `X ] * Pred.t * Ent_sql.Ast.pos) list -> edge list

(** Cycles (up to length {!max_cycle_len}) whose consecutive edges are
    mode-conflicting, predicate-overlapping, and cross-program. *)
val find_lock_cycles : edge list -> edge list list

val max_cycle_len : int
