(** Parser for the textual schedule notation that
    {!Ent_schedule.History.pp} prints (§C.1 / Figure 3):

    {v R1(x)  RG1(Flights)  RQ2(Flights)  W1(Reserve[5])  E1{1,2}  C1  A2 v}

    Operations are separated by whitespace; ['#'] starts a comment that
    runs to end of line. A bare object name parses as a table-granule
    object and [name[i]] as a row. *)

exception Parse_error of string

val parse : string -> Ent_schedule.History.t
