(** A predicate abstraction over WHERE clauses: per-column conjunctive
    constraints (equalities, disequalities, bounds, IN-lists) with an
    [exact] bit that records whether any conjunct fell outside the
    fragment. Constraints are always {e necessary} conditions on
    matching rows, so an unsatisfiable conjunction of two predicates
    proves the row sets disjoint — the soundness basis of
    {!may_overlap} — while satisfiability only means "may match". *)

open Ent_storage

type cstr = {
  eqs : Value.t list;
  nes : Value.t list;
  los : (Value.t * bool) list;  (** lower bounds; [true] = inclusive *)
  his : (Value.t * bool) list;  (** upper bounds; [true] = inclusive *)
  sets : Value.t list list;  (** IN-list memberships *)
}

type t = {
  cols : (string * cstr) list;  (** sorted by column name *)
  falsum : bool;  (** some conjunct is a false constant comparison *)
  exact : bool;  (** no conjunct fell outside the abstraction *)
}

(** A constraint with no requirements at all. *)
val empty_cstr : cstr

(** No constraints, [exact = false]: the predicate of a statement whose
    condition we did not analyse. *)
val top : t

(** No constraints, [exact = true]: a genuinely unconditional access. *)
val exact_top : t

val is_top : t -> bool

(** Provably no row satisfies the predicate. *)
val unsat : t -> bool

val conjoin : t -> t -> t

(** [false] only when the two predicates provably select disjoint rows. *)
val may_overlap : t -> t -> bool

(** Static candidate count for a column, when its constraints imply a
    finite one: [Some 0] = unsatisfiable, [Some n] = at most [n]
    distinct values, [None] = unbounded. *)
val count : t -> string -> int option

(** Extract the constraints a condition places on the columns the
    caller owns; [owns] decides, from the qualifier, whether a column
    reference belongs to the table (or variable scope) being
    summarised. Disjunctions, negations and subqueries are not
    abstracted — they clear [exact]. *)
val of_cond : owns:(string option -> bool) -> Ent_sql.Ast.cond -> t

(** A human-readable reason the predicate is unsatisfiable, if it is. *)
val unsat_witness : t -> string option

val pp : Format.formatter -> t -> unit
val pp_cstr : Format.formatter -> cstr -> unit
