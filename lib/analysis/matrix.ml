module Ast = Ent_sql.Ast
module Json = Ent_obs.Json

type input = {
  source : string;
  program : Ent_core.Program.t;
}

type scope =
  | Row_scope
  | Table_scope

type witness = {
  table : string;
  scope : scope;
  left_mode : Summary.mode;
  right_mode : Summary.mode;
}

type verdict =
  | Commutes
  | Row_conflict
  | Table_conflict

type si_hazard =
  | Lost_update of string
  | Write_skew of string * string

type cell = {
  verdict : verdict;
  witnesses : witness list;
  si_hazards : si_hazard list;
}

type edge = {
  eu : string;
  ev : string;
  prog : int;
  mu : [ `S | `X ];
  pu : Pred.t;
  posu : Ast.pos;
  mv : [ `S | `X ];
  pv : Pred.t;
  posv : Ast.pos;
}

type t = {
  inputs : input array;
  cells : cell array array;
  edges : edge list;
  cycles : edge list list;
}

(* ------------------------------------------------------------------ *)
(* Pairwise conflict/commutativity                                     *)
(* ------------------------------------------------------------------ *)

let is_write (m : Summary.mode) = m = Summary.Write

(* A conflicting access pair is row-scoped when the conjunction of the
   two predicates pins some column to a finite candidate set: both
   sides can only collide on those identifiable rows. *)
let pair_scope (a : Summary.access) (b : Summary.access) =
  let conj = Pred.conjoin a.pred b.pred in
  let finite (col, _) = Pred.count conj col <> None in
  if List.exists finite conj.cols then Row_scope else Table_scope

let classify_pair (sa : Summary.t) (sb : Summary.t) =
  let accesses (s : Summary.t) =
    List.concat_map (fun (ss : Summary.stmt_summary) -> ss.accesses) s.stmts
  in
  let witnesses = ref [] in
  List.iter
    (fun (a : Summary.access) ->
      List.iter
        (fun (b : Summary.access) ->
          if
            a.table = b.table
            && (is_write a.mode || is_write b.mode)
            && Pred.may_overlap a.pred b.pred
          then
            witnesses :=
              {
                table = a.table;
                scope = pair_scope a b;
                left_mode = a.mode;
                right_mode = b.mode;
              }
              :: !witnesses)
        (accesses sb))
    (accesses sa);
  (* one witness per (table, scope), table-scoped reported before
     row-scoped so the dominant reason leads *)
  let witnesses =
    List.sort_uniq
      (fun a b ->
        let c = String.compare a.table b.table in
        if c <> 0 then c else Stdlib.compare (a.scope, a.left_mode, a.right_mode)
                               (b.scope, b.left_mode, b.right_mode))
      !witnesses
  in
  let verdict =
    if witnesses = [] then Commutes
    else if List.exists (fun w -> w.scope = Table_scope) witnesses then
      Table_conflict
    else Row_conflict
  in
  (* Demoting both sides to snapshot isolation drops their read locks,
     so 2PL blocking no longer serializes the pair. Two shapes make
     that demotion unsafe:
     - lost-update: the writes themselves overlap. First-committer-wins
       turns the 2PL wait into a commit-time abort, and a
       read-modify-write over the region is exactly the lost update SI
       validation exists to kill — the pair trades blocking for aborts
       and must not expect to run concurrently.
     - write-skew: each side reads a region the other writes while the
       write sets stay disjoint, so validation sees no conflict and the
       interleaving commits — the canonical SI anomaly. *)
  let si_hazards =
    let tables_where pred =
      List.sort_uniq String.compare
        (List.filter_map
           (fun w -> if pred w then Some w.table else None)
           witnesses)
    in
    let ww = tables_where (fun w -> is_write w.left_mode && is_write w.right_mode) in
    let rw = tables_where (fun w -> (not (is_write w.left_mode)) && is_write w.right_mode) in
    let wr = tables_where (fun w -> is_write w.left_mode && not (is_write w.right_mode)) in
    List.map (fun tbl -> Lost_update tbl) ww
    @ List.concat_map (fun a -> List.map (fun b -> Write_skew (a, b)) wr) rw
  in
  { verdict; witnesses; si_hazards }

(* ------------------------------------------------------------------ *)
(* Lock-order graph (moved from the per-suite deadlock lint)           *)
(* ------------------------------------------------------------------ *)

let lock_ge a b =
  match a, b with
  | `X, _ -> true
  | `S, `S -> true
  | `S, `X -> false

let modes_conflict a b = not (a = `S && b = `S)

let edges_of_sequence prog seq =
  let seq = Array.of_list seq in
  let n = Array.length seq in
  (* A request blocks only if the lock is not already held with
     sufficient mode (re-reads are free; S-to-X is an upgrade). *)
  let real_request j =
    let tj, mj, _, _ = seq.(j) in
    let already = ref false in
    for k = 0 to j - 1 do
      let tk, mk, _, _ = seq.(k) in
      if tk = tj && lock_ge mk mj then already := true
    done;
    not !already
  in
  let edges = ref [] in
  for j = 0 to n - 1 do
    if real_request j then
      for i = 0 to j - 1 do
        let tu, mu, pu, posu = seq.(i) in
        let tv, mv, pv, posv = seq.(j) in
        if tu <> tv then
          edges := { eu = tu; ev = tv; prog; mu; pu; posu; mv; pv; posv } :: !edges
      done
  done;
  List.rev !edges

(* Two consecutive cycle edges [e1: _ -> t] then [e2: t -> _]: e1's
   program is waiting for t, which e2's program holds. *)
let compat e1 e2 =
  e1.prog <> e2.prog
  && modes_conflict e1.mv e2.mu
  && Pred.may_overlap e1.pv e2.pu

let max_cycle_len = 4

let find_lock_cycles edges =
  let out : (string, edge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let l = Option.value ~default:[] (Hashtbl.find_opt out e.eu) in
      Hashtbl.replace out e.eu (l @ [ e ]))
    edges;
  let tables =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.eu; e.ev ]) edges)
  in
  let cycles = ref [] in
  let on_path : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun start ->
      (* Canonical form: the start table is the cycle's smallest, so
         each cycle is discovered exactly once per rotation. *)
      let rec dfs path current =
        if List.length path < max_cycle_len then
          List.iter
            (fun e ->
              let ok_prev =
                match path with
                | [] -> true
                | prev :: _ -> compat prev e
              in
              if ok_prev then
                if e.ev = start then (
                  let cycle = List.rev (e :: path) in
                  match cycle with
                  | first :: _ -> if compat e first then cycles := cycle :: !cycles
                  | [] -> ())
                else if String.compare e.ev start > 0
                        && not (Hashtbl.mem on_path e.ev)
                then begin
                  Hashtbl.replace on_path e.ev ();
                  dfs (e :: path) e.ev;
                  Hashtbl.remove on_path e.ev
                end)
            (Option.value ~default:[] (Hashtbl.find_opt out current))
      in
      dfs [] start)
    tables;
  List.rev !cycles

(* ------------------------------------------------------------------ *)

let analyze (inputs : input list) =
  let inputs = Array.of_list inputs in
  let summaries =
    Array.map (fun (i : input) -> Summary.of_program i.program) inputs
  in
  let n = Array.length inputs in
  let cells =
    Array.init n (fun i ->
        Array.init n (fun j -> classify_pair summaries.(i) summaries.(j)))
  in
  (* Lock-order edges only make sense for transactional programs:
     autocommit statements release their locks immediately, so nothing
     is held while the next statement requests. *)
  let edges =
    List.concat
      (List.init n (fun idx ->
           if inputs.(idx).program.transactional then
             edges_of_sequence idx (Summary.lock_sequence summaries.(idx))
           else []))
  in
  { inputs; cells; edges; cycles = find_lock_cycles edges }

let deadlock_findings t =
  let label_of p = t.inputs.(p).program.label in
  let source_of p = t.inputs.(p).source in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.filter_map
    (fun cycle ->
      let progs = List.sort_uniq Int.compare (List.map (fun e -> e.prog) cycle) in
      let tables = List.sort_uniq String.compare (List.map (fun e -> e.eu) cycle) in
      let key =
        String.concat "," (List.map string_of_int progs)
        ^ "|" ^ String.concat "," tables
      in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        let order =
          String.concat " -> " (List.map (fun e -> e.eu) cycle)
          ^ " -> "
          ^ (List.hd cycle).eu
        in
        let witness =
          List.map
            (fun e ->
              Format.asprintf "%s: acquires %a(%s) at %a, then requests %a(%s) at %a"
                (label_of e.prog) Summary.pp_lock e.mu e.eu Ast.pp_pos e.posu
                Summary.pp_lock e.mv e.ev Ast.pp_pos e.posv)
            cycle
        in
        let first = List.hd cycle in
        Some
          (Finding.make ~source:(source_of first.prog)
             ~program:(label_of first.prog) ~at:first.posu
             ~code:"potential-deadlock" ~severity:Finding.Error ~witness
             (Printf.sprintf
                "potential deadlock under strict 2PL: circular lock order %s \
                 between programs %s"
                order
                (String.concat ", " (List.map label_of progs))))
      end)
    t.cycles

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let verdict_name = function
  | Commutes -> "commutes"
  | Row_conflict -> "row-conflict"
  | Table_conflict -> "table-conflict"

let verdict_char = function
  | Commutes -> '.'
  | Row_conflict -> 'r'
  | Table_conflict -> 'T'

let scope_name = function
  | Row_scope -> "row"
  | Table_scope -> "table"

let mode_name (m : Summary.mode) =
  match m with
  | Summary.Read -> "read"
  | Summary.Ground_read -> "ground-read"
  | Summary.Write -> "write"

let si_hazard_name = function
  | Lost_update t -> Printf.sprintf "lost-update on %s" t
  | Write_skew (a, b) ->
    if a = b then Printf.sprintf "write-skew on %s" a
    else Printf.sprintf "write-skew across %s/%s" a b

let pp ppf t =
  let n = Array.length t.inputs in
  Format.fprintf ppf "conflict/commutativity matrix (%d program%s)@\n" n
    (if n = 1 then "" else "s");
  Array.iteri
    (fun i (inp : input) ->
      Format.fprintf ppf "  %2d  %s (%s)@\n" (i + 1) inp.program.label
        inp.source)
    t.inputs;
  Format.fprintf ppf "@\n      ";
  for j = 0 to n - 1 do
    Format.fprintf ppf "%2d " (j + 1)
  done;
  Format.fprintf ppf "@\n";
  for i = 0 to n - 1 do
    Format.fprintf ppf "  %2d  " (i + 1);
    for j = 0 to n - 1 do
      Format.fprintf ppf " %c " (verdict_char t.cells.(i).(j).verdict)
    done;
    Format.fprintf ppf "@\n"
  done;
  Format.fprintf ppf
    "@\nlegend: [.] commute  [r] row-scoped conflict  [T] table-scoped \
     conflict@\n";
  let conflicts = ref [] in
  let commuting = ref 0 in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let c = t.cells.(i).(j) in
      if c.verdict = Commutes then incr commuting
      else conflicts := (i, j, c) :: !conflicts
    done
  done;
  let row_cells, table_cells =
    List.partition (fun (_, _, c) -> c.verdict = Row_conflict) !conflicts
  in
  Format.fprintf ppf
    "@\npairs (unordered, diagonal included): %d commute, %d row-conflict, %d \
     table-conflict"
    !commuting (List.length row_cells) (List.length table_cells);
  let si_unsafe =
    List.length (List.filter (fun (_, _, c) -> c.si_hazards <> []) !conflicts)
  in
  Format.fprintf ppf "; %d unsafe to demote to snapshot isolation" si_unsafe;
  (* the full pair listing only for suites small enough to read *)
  if n <= 12 then
    List.iter
      (fun (i, j, (c : cell)) ->
        Format.fprintf ppf "@\n  %d x %d (%s x %s): %s" (i + 1) (j + 1)
          t.inputs.(i).program.label t.inputs.(j).program.label
          (verdict_name c.verdict);
        List.iter
          (fun w ->
            Format.fprintf ppf "@\n      %s: %s %s vs %s" w.table
              (scope_name w.scope) (mode_name w.left_mode) (mode_name w.right_mode))
          c.witnesses;
        if c.si_hazards <> [] then
          Format.fprintf ppf "@\n      si-demotion: unsafe (%s)"
            (String.concat "; " (List.map si_hazard_name c.si_hazards)))
      (List.rev !conflicts)
  else begin
    let tables =
      List.sort_uniq compare
        (List.concat_map
           (fun (_, _, c) -> List.map (fun w -> (w.table, w.scope)) c.witnesses)
           !conflicts)
    in
    List.iter
      (fun (table, scope) ->
        Format.fprintf ppf "@\n  conflicts on %s (%s-scoped)" table
          (scope_name scope))
      tables
  end;
  Format.fprintf ppf "@\n@\nlock-order graph: %d edge%s, %d potential deadlock \
                      cycle%s"
    (List.length t.edges)
    (if List.length t.edges = 1 then "" else "s")
    (List.length t.cycles)
    (if List.length t.cycles = 1 then "" else "s");
  if t.cycles = [] && t.edges <> [] then
    Format.fprintf ppf
      " — no cross-program mode-conflicting, predicate-overlapping cycle of \
       length <= %d: statically deadlock-free under Strict 2PL"
      max_cycle_len;
  List.iter
    (fun cycle ->
      Format.fprintf ppf "@\n  cycle: %s -> %s"
        (String.concat " -> " (List.map (fun e -> e.eu) cycle))
        (List.hd cycle).eu;
      List.iter
        (fun e ->
          Format.fprintf ppf "@\n      %s: %a(%s)@%a then %a(%s)@%a"
            t.inputs.(e.prog).program.label Summary.pp_lock e.mu e.eu Ast.pp_pos
            e.posu Summary.pp_lock e.mv e.ev Ast.pp_pos e.posv)
        cycle)
    t.cycles

let json_pos (p : Ast.pos) = Json.Obj [ ("line", Json.Int p.line); ("col", Json.Int p.col) ]

let json_edge t (e : edge) =
  Json.Obj
    [
      ("from", Json.Str e.eu);
      ("to", Json.Str e.ev);
      ("program", Json.Str t.inputs.(e.prog).program.label);
      ("program_index", Json.Int e.prog);
      ("hold_mode", Json.Str (if e.mu = `S then "S" else "X"));
      ("request_mode", Json.Str (if e.mv = `S then "S" else "X"));
      ("hold_at", json_pos e.posu);
      ("request_at", json_pos e.posv);
    ]

let to_json t =
  let programs =
    Array.to_list
      (Array.mapi
         (fun i (inp : input) ->
           Json.Obj
             [
               ("index", Json.Int i);
               ("label", Json.Str inp.program.label);
               ("source", Json.Str inp.source);
               ("transactional", Json.Bool inp.program.transactional);
             ])
         t.inputs)
  in
  let hazard_json = function
    | Lost_update t ->
      Json.Obj
        [ ("kind", Json.Str "lost-update"); ("tables", Json.List [ Json.Str t ]) ]
    | Write_skew (a, b) ->
      Json.Obj
        [
          ("kind", Json.Str "write-skew");
          ("tables", Json.List [ Json.Str a; Json.Str b ]);
        ]
  in
  let cell_json (c : cell) =
    Json.Obj
      [
        ("verdict", Json.Str (verdict_name c.verdict));
        ( "witnesses",
          Json.List
            (List.map
               (fun w ->
                 Json.Obj
                   [
                     ("table", Json.Str w.table);
                     ("scope", Json.Str (scope_name w.scope));
                     ("left_mode", Json.Str (mode_name w.left_mode));
                     ("right_mode", Json.Str (mode_name w.right_mode));
                   ])
               c.witnesses) );
        ("si_demotion_safe", Json.Bool (c.si_hazards = []));
        ("si_hazards", Json.List (List.map hazard_json c.si_hazards));
      ]
  in
  Json.Obj
    [
      ("programs", Json.List programs);
      ( "matrix",
        Json.List
          (Array.to_list
             (Array.map
                (fun row -> Json.List (Array.to_list (Array.map cell_json row)))
                t.cells)) );
      ( "lock_order",
        Json.Obj
          [
            ("edges", Json.List (List.map (json_edge t) t.edges));
            ( "cycles",
              Json.List
                (List.map
                   (fun cycle -> Json.List (List.map (json_edge t) cycle))
                   t.cycles) );
          ] );
    ]

let lock_graph_dot t =
  let buf = Buffer.create 1024 in
  let on_cycle : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (List.iter (fun e ->
         Hashtbl.replace on_cycle
           (Printf.sprintf "%s|%s|%d" e.eu e.ev e.prog)
           ()))
    t.cycles;
  Buffer.add_string buf "digraph lock_order {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box];\n";
  let tables =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.eu; e.ev ]) t.edges)
  in
  List.iter
    (fun tbl -> Buffer.add_string buf (Printf.sprintf "  %S;\n" tbl))
    tables;
  (* one arrow per (table pair, program, mode pair) *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let mode m = if m = `S then "S" else "X" in
      let key =
        Printf.sprintf "%s|%s|%d|%s|%s" e.eu e.ev e.prog (mode e.mu) (mode e.mv)
      in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        let red =
          Hashtbl.mem on_cycle (Printf.sprintf "%s|%s|%d" e.eu e.ev e.prog)
        in
        Buffer.add_string buf
          (Printf.sprintf "  %S -> %S [label=\"%s: %s->%s\"%s];\n" e.eu e.ev
             t.inputs.(e.prog).program.label (mode e.mu) (mode e.mv)
             (if red then ", color=red, penwidth=2" else ""))
      end)
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
