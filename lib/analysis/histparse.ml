module History = Ent_schedule.History

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Strip '#' comments, then split on whitespace. *)
let words input =
  String.split_on_char '\n' input
  |> List.concat_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t'))
  |> List.filter (fun w -> w <> "")

let int_of ~what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "expected an integer %s, got %S" what s

(* [name] or [name[i]] *)
let obj_of s =
  match String.index_opt s '[' with
  | None ->
    if s = "" then fail "empty object name";
    History.Table s
  | Some i ->
    if String.length s < i + 3 || s.[String.length s - 1] <> ']' then
      fail "malformed row object %S (expected name[index])" s;
    let name = String.sub s 0 i in
    let idx = String.sub s (i + 1) (String.length s - i - 2) in
    History.Row (name, int_of ~what:(Printf.sprintf "row index in %S" s) idx)

(* R1(x)  RG1(x)  RQ1(x)  W1(x)  E1{1,2}  C1  A1 *)
let op_of w =
  let body_of prefix =
    let n = String.length prefix in
    if String.length w > n && String.sub w 0 n = prefix then
      Some (String.sub w n (String.length w - n))
    else None
  in
  let txn_and_obj kind body =
    match String.index_opt body '(' with
    | Some i when String.length body > i + 1 && body.[String.length body - 1] = ')'
      ->
      let txn = int_of ~what:"transaction id" (String.sub body 0 i) in
      let obj = obj_of (String.sub body (i + 1) (String.length body - i - 2)) in
      (txn, obj)
    | _ -> fail "malformed %s operation %S (expected %sN(obj))" kind w kind
  in
  (* Longest prefix first: RG / RQ before R. *)
  match body_of "RG" with
  | Some body ->
    let txn, obj = txn_and_obj "RG" body in
    History.Ground_read (txn, obj)
  | None -> (
    match body_of "RQ" with
    | Some body ->
      let txn, obj = txn_and_obj "RQ" body in
      History.Quasi_read (txn, obj)
    | None -> (
      match body_of "R" with
      | Some body ->
        let txn, obj = txn_and_obj "R" body in
        History.Read (txn, obj)
      | None -> (
        match body_of "W" with
        | Some body ->
          let txn, obj = txn_and_obj "W" body in
          History.Write (txn, obj)
        | None -> (
          match body_of "E" with
          | Some body -> (
            match String.index_opt body '{' with
            | Some i when body.[String.length body - 1] = '}' ->
              let event = int_of ~what:"entanglement id" (String.sub body 0 i) in
              let inner = String.sub body (i + 1) (String.length body - i - 2) in
              let participants =
                String.split_on_char ',' inner
                |> List.filter (fun s -> s <> "")
                |> List.map (int_of ~what:"participant id")
              in
              if participants = [] then
                fail "entanglement %S has no participants" w;
              History.Entangle (event, participants)
            | _ -> fail "malformed entanglement %S (expected EN{i,j})" w)
          | None -> (
            match body_of "C" with
            | Some body -> History.Commit (int_of ~what:"transaction id" body)
            | None -> (
              match body_of "A" with
              | Some body -> History.Abort (int_of ~what:"transaction id" body)
              | None -> fail "unrecognised operation %S" w))))))

let parse input : History.t = List.map op_of (words input)
