module Ast = Ent_sql.Ast

type mode =
  | Read
  | Ground_read
  | Write

type access = {
  table : string;
  mode : mode;
  pred : Pred.t;
}

type stmt_summary = {
  stmt : Ast.stmt;
  at : Ast.pos;
  accesses : access list;
}

type t = {
  program : Ent_core.Program.t;
  stmts : stmt_summary list;
}

let lock_of_mode = function
  | Read | Ground_read -> `S
  | Write -> `X

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Read -> "read"
    | Ground_read -> "ground-read"
    | Write -> "write")

let pp_lock ppf l =
  Format.pp_print_string ppf
    (match l with
    | `S -> "S"
    | `X -> "X")

(* Ownership of a column reference within a FROM clause: an explicit
   qualifier must name the alias; an unqualified column is attributed
   only when the alias is the sole table in scope. *)
let owns_in ~from alias q =
  match q with
  | Some q -> q = alias
  | None -> ( match from with [ _ ] -> true | _ -> false)

let rec accesses_of_select (s : Ast.select) =
  let per_table =
    List.map
      (fun (table, alias) ->
        {
          table;
          mode = Read;
          pred = Pred.of_cond ~owns:(owns_in ~from:s.from alias) s.where;
        })
      s.from
  in
  per_table @ subquery_accesses s.where

(* Subqueries in a condition contribute plain reads of their own
   tables, recursively. *)
and subquery_accesses (c : Ast.cond) =
  match c with
  | True | Cmp _ | In_list _ | Between _ | In_answer _ -> []
  | And (a, b) | Or (a, b) -> subquery_accesses a @ subquery_accesses b
  | Not a -> subquery_accesses a
  | In_select (_, sub) -> accesses_of_select sub

(* During grounding, the engine evaluates the body's subqueries under
   grounding reads; every table reachable from the entangled WHERE is a
   grounding read. *)
let grounding_accesses (e : Ast.entangled_select) =
  List.map
    (fun a ->
      match a.mode with
      | Read -> { a with mode = Ground_read }
      | Ground_read | Write -> a)
    (subquery_accesses e.ewhere)

let single_table_pred table where =
  Pred.of_cond ~owns:(owns_in ~from:[ (table, table) ] table) where

let accesses_of_stmt (s : Ast.stmt) =
  match s with
  | Select sel -> accesses_of_select sel
  | Insert { table; columns; values } ->
    let pred =
      match columns with
      | Some cols when List.length cols = List.length values ->
        let eq_cols =
          List.filter_map
            (fun (c, e) ->
              match (e : Ast.expr) with
              | Lit v ->
                Some (c, { Pred.empty_cstr with eqs = [ v ] })
              | _ -> None)
            (List.combine cols values)
        in
        {
          Pred.cols = List.sort (fun (a, _) (b, _) -> String.compare a b) eq_cols;
          falsum = false;
          exact = List.length eq_cols = List.length cols;
        }
      | _ -> Pred.top
    in
    [ { table; mode = Write; pred } ]
  | Update { table; set = _; where } ->
    { table; mode = Write; pred = single_table_pred table where }
    :: subquery_accesses where
  | Delete { table; where } ->
    { table; mode = Write; pred = single_table_pred table where }
    :: subquery_accesses where
  | Create_table { table; _ } -> [ { table; mode = Write; pred = Pred.exact_top } ]
  | Create_index { table; _ } -> [ { table; mode = Read; pred = Pred.exact_top } ]
  | Drop_table table -> [ { table; mode = Write; pred = Pred.exact_top } ]
  | Set_var _ -> []
  | Entangled e -> grounding_accesses e
  | Rollback -> []

let of_program (program : Ent_core.Program.t) =
  {
    program;
    stmts =
      List.map
        (fun (stmt, at) -> { stmt; at; accesses = accesses_of_stmt stmt })
        program.ast.body;
  }

(* The sequence in which a Strict 2PL executor acquires locks: one
   entry per access, in statement order, held to end of transaction. *)
let lock_sequence t =
  List.concat_map
    (fun ss ->
      List.map
        (fun a -> (a.table, lock_of_mode a.mode, a.pred, ss.at))
        ss.accesses)
    t.stmts

let tables t =
  List.sort_uniq String.compare
    (List.concat_map
       (fun ss -> List.map (fun a -> a.table) ss.accesses)
       t.stmts)
