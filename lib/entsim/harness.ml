(* The entsim simulation harness: drive a randomized entangled workload
   under a seeded fault plan, crash and recover as the plan dictates,
   and mechanically check the recovery invariants after every crash and
   at quiescence.

   Everything in the system under test is deterministic (seeded graph
   generation, simulated time, ordered data structures), so a (seed,
   plan) pair replays the exact same execution — which is what makes
   one-line repro commands and greedy plan shrinking sound. *)

open Ent_storage
open Ent_core
module Fault = Ent_fault.Injector
module Plan = Ent_fault.Plan
module Rng = Ent_fault.Rng
module Wal = Ent_txn.Wal
module Recovery = Ent_txn.Recovery
module Recorder = Ent_schedule.Recorder
module Histcheck = Ent_analysis.Histcheck
module Event = Ent_obs.Event
module Timeseries = Ent_obs.Timeseries
module Flight = Ent_obs.Flight

type config = {
  seed : int;
  pairs : int;  (* well-behaved entangled pairs *)
  rollback_pairs : int;  (* pairs whose second member rolls back after entangling *)
  plain : int;  (* classical (non-entangled) transactions *)
  lonely : int;  (* partner-less entangled programs: they populate the dormant pool *)
  users : int;
  cities : int;
  max_arms : int;  (* upper bound on generated fault-plan arms *)
  break_group_commit : bool;  (* run without group commit (widow detector test) *)
  combined : bool;  (* combined-query evaluation instead of coordination search *)
  certify : bool;  (* online schedule certification per epoch *)
  isolation : string;
      (* per-transaction level of the workload: "2pl" (all Strict 2PL),
         "si" (all snapshot), "mixed" (alternating) *)
  timeline : int;  (* events attached per violation timeline *)
}

let default =
  {
    seed = 0;
    pairs = 5;
    rollback_pairs = 2;
    plain = 4;
    lonely = 2;
    users = 60;
    cities = 6;
    max_arms = 4;
    break_group_commit = false;
    combined = false;
    certify = false;
    isolation = "2pl";
    timeline = 16;
  }

type violation = {
  invariant : string;
  detail : string;
  timeline : string list;
      (* last events involving the implicated txns/tasks (or the global
         tail when the invariant names nobody), rendered one per line *)
}

type outcome = {
  plan : Plan.t;
  crashes : int;
  flush_failures : int;
  commits : int;
  sites : (string * int) list;  (* per-site hit counts over the whole run *)
  violations : violation list;
  wait_graph : string option;
      (* who-waits-on-whom snapshot, captured only when violations exist *)
  flight : Ent_obs.Json.t option;
      (* flight-recorder dump (metrics + time-series + event ring +
         wait graph), captured only when violations exist *)
}

let scheduler_config cfg =
  {
    Scheduler.default_config with
    isolation =
      (if cfg.break_group_commit then Isolation.no_group_commit
       else Isolation.full);
    trigger = Scheduler.Every_arrivals 4;
    snapshot_pool = true;
    evaluation = (if cfg.combined then Scheduler.Combined else Scheduler.Search);
  }

(* The workload is a fixed deterministic mix; the seed varies the
   social graph (and hence partners and destinations), the plan varies
   the faults. Rollback pairs entangle first and roll back afterwards —
   the schedule shape that becomes a widow when group commit is off. *)
let build_programs cfg world =
  let entangled =
    Ent_workload.Gen.batch world ~transactional:true Ent_workload.Gen.Entangled
      ~n:(2 * cfg.pairs) ~tag_base:0
  in
  let rollback =
    Ent_workload.Gen.batch world ~transactional:true Ent_workload.Gen.Entangled
      ~n:(2 * cfg.rollback_pairs) ~tag_base:100
    |> List.mapi (fun i (p : Program.t) ->
           if i mod 2 = 1 then
             let ast : Ent_sql.Ast.program =
               {
                 p.ast with
                 body =
                   List.filteri (fun j _ -> j < 2) p.ast.body
                   @ [ (Ent_sql.Ast.Rollback, Ent_sql.Ast.no_pos) ];
               }
             in
             Program.make ~label:(p.label ^ "-abort") ~transactional:true ast
           else p)
  in
  let plain =
    Ent_workload.Gen.batch world ~transactional:true Ent_workload.Gen.No_social
      ~n:cfg.plain ~tag_base:200
  in
  let lonely = Ent_workload.Gen.lonely world ~n:cfg.lonely ~tag_base:300 in
  let programs = entangled @ rollback @ plain @ lonely in
  (* Per-transaction isolation: snapshot programs survive pool
     snapshots too — the level travels in the serialized header. *)
  let snap (p : Program.t) =
    Program.make ~label:p.label ~transactional:p.transactional
      ~isolation:Ent_txn.Engine.Snapshot p.ast
  in
  match cfg.isolation with
  | "si" -> List.map snap programs
  | "mixed" ->
    List.mapi (fun i p -> if i land 1 = 1 then snap p else p) programs
  | _ -> programs

(* --- invariant machinery --- *)

(* Canonical, comparable image of a store: tables sorted by name, rows
   sorted by id, values printed (robust to representation changes). *)
let dump_catalog catalog =
  let tables = ref [] in
  Catalog.iter
    (fun name table ->
      let rows =
        List.map
          (fun (id, row) -> (id, List.map Value.to_string (Tuple.to_list row)))
          (Table.to_list table)
      in
      tables := (name, List.sort compare rows) :: !tables)
    catalog;
  List.sort compare !tables

(* Independent survivor-view replay: apply the after-images of the
   analysis' survivors in log order, with checkpoint resets — a
   deliberately naive second opinion against [Recovery.replay]. *)
let model_store records (analysis : Recovery.analysis) =
  let tables : (string, (int, string list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let table name =
    match Hashtbl.find_opt tables name with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 64 in
      Hashtbl.replace tables name t;
      t
  in
  let strings row = List.map Value.to_string (Tuple.to_list row) in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Create { table = name; _ } -> ignore (table name)
      | Checkpoint { tables = images } ->
        Hashtbl.reset tables;
        List.iter
          (fun (name, _cols, rows) ->
            let t = table name in
            List.iter (fun (id, row) -> Hashtbl.replace t id (strings row)) rows)
          images
      | Write { txn; table = name; row; after; _ }
        when List.mem txn analysis.survivors -> (
        let t = table name in
        match after with
        | Some v -> Hashtbl.replace t row (strings v)
        | None -> Hashtbl.remove t row)
      | _ -> ())
    records;
  Hashtbl.fold
    (fun name t acc ->
      let rows = Hashtbl.fold (fun id row acc -> (id, row) :: acc) t [] in
      (name, List.sort compare rows) :: acc)
    tables []
  |> List.sort compare

(* Group atomicity: within every logged entanglement group, the
   committed members either all survive recovery or all are rolled
   back (the §4 entanglement-aware rule, checked from outside). *)
let group_atomic (analysis : Recovery.analysis) =
  List.for_all
    (fun group ->
      let committed_members =
        List.filter (fun m -> List.mem m analysis.committed) group
      in
      let surviving =
        List.filter (fun m -> List.mem m analysis.survivors) committed_members
      in
      surviving = [] || List.length surviving = List.length committed_members)
    analysis.groups

let ints xs = String.concat "," (List.map string_of_int xs)

(* Invariants on one crash image: replay succeeds, is group-atomic,
   matches the independent survivor-view model, and is deterministic.
   [viol ids invariant detail] records a violation; [ids] names the
   implicated txns/tasks so the report can attach their event timeline. *)
let check_image viol image recovered (analysis : Recovery.analysis) =
  if not (group_atomic analysis) then
    viol (List.concat analysis.groups) "group-atomicity"
      (Printf.sprintf
         "half-surviving entanglement group in crash image (groups: %s; survivors: %s)"
         (String.concat " | " (List.map ints analysis.groups))
         (ints analysis.survivors));
  let live = dump_catalog recovered in
  if live <> model_store image analysis then
    viol [] "durability"
      "replayed store differs from independent survivor-view model";
  let again, _ = Recovery.replay image in
  if dump_catalog again <> live then
    viol [] "replay-determinism" "two replays of the same crash image differ"

(* --- the simulation --- *)

type step = Run | Recover of Wal.record list | Done

let run (cfg : config) plan =
  Fault.deactivate ();
  (* Event logging is always on under simulation: it is cheap at entsim
     scale and every violation report attaches the implicated txns'
     timelines. The log survives crash/recover cycles (the ring is
     process-global), so a timeline can span epochs. *)
  Event.set_logging true;
  Event.reset ();
  (* Continuous telemetry is always on under simulation: the flight
     recorder attached to a violation wants the last seconds of
     time-series history, and sampling costs one branch per scheduler
     iteration. Sub-second windows because entsim runs are short. *)
  Timeseries.enable ~width:0.25 ~capacity:512 ();
  let violations = ref [] in
  let viol ids invariant detail =
    let timeline =
      List.map Event.render (Event.recent ~ids ~last:cfg.timeline ())
    in
    violations := { invariant; detail; timeline } :: !violations
  in
  let sched_config = scheduler_config cfg in
  let world =
    Ent_workload.Travel.build ~seed:(cfg.seed + 1) ~users:cfg.users
      ~cities:cfg.cities ~config:sched_config ~wal:true ()
  in
  let mgr = ref world.Ent_workload.Travel.manager in
  (* The recorder replaces any stale hooks (a recovered engine starts
     clean, but the scheduler hook slot is per-manager anyway); the
     optional certifier is then added beside it. One certifier per
     epoch: engine transaction ids restart from the recovered log's
     high-water mark, so an epoch is a self-contained schedule. *)
  let attach m =
    let r = Recorder.create () in
    Ent_txn.Engine.set_on_event (Manager.engine m)
      (Some (Recorder.on_engine_event r));
    Scheduler.set_on_entangle (Manager.scheduler m)
      (Some (Recorder.on_entangle r));
    let c =
      if not cfg.certify then None
      else begin
        let c = Ent_schedule.Certify.create () in
        Manager.observe m
          ~on_event:(Ent_schedule.Certify.on_engine_event c)
          ~on_entangle:(Ent_schedule.Certify.on_entangle c);
        Some c
      end
    in
    (r, c)
  in
  let recorder, certifier =
    let r, c = attach !mgr in
    (ref r, ref c)
  in
  let check_certifier epoch_index =
    match !certifier with
    | None -> ()
    | Some c ->
      List.iter
        (fun (v : Ent_schedule.Certify.violation) ->
          viol [] "certify"
            (Printf.sprintf "epoch %d: [%s] %s" epoch_index v.code v.detail))
        (Ent_schedule.Certify.violations c)
  in
  let epochs_closed = ref 0 in
  let epoch_live = ref true in
  let histories = ref [] in
  let commits = ref 0 in
  let crashes = ref 0 in
  let flush_failures = ref 0 in
  let last_resumed = ref [] in
  let aborted_sim = ref false in
  let pending = Queue.create () in
  List.iter (fun p -> Queue.add p pending) (build_programs cfg world);
  let check_no_errors m =
    List.iter
      (fun (id, oc) ->
        match oc with
        | Scheduler.Errored msg ->
          viol [ id ] "no-errors" (Printf.sprintf "task %d errored: %s" id msg)
        | Scheduler.Committed | Scheduler.Timed_out | Scheduler.Rolled_back ->
          ())
      (Manager.results m)
  in
  let crash_budget = ref 12 in
  Fault.install plan;
  Fun.protect
    ~finally:(fun () ->
      Fault.deactivate ();
      (* so co-resident test code sees the default (gated-off) state *)
      Timeseries.disable ())
  @@ fun () ->
  let step = ref Run in
  let finished = ref false in
  while not !finished do
    (try
       match !step with
       | Done -> finished := true
       | Run ->
         while not (Queue.is_empty pending) do
           ignore (Manager.submit !mgr (Queue.pop pending))
         done;
         Manager.drain !mgr;
         step := Done
       | Recover image -> (
         match Recovery.replay image with
         | exception exn ->
           viol [] "recovery"
             (Printf.sprintf "replay of the crash image raised %s"
                (Printexc.to_string exn));
           aborted_sim := true;
           step := Done
         | recovered, analysis ->
           check_image viol image recovered analysis;
           (* Rebuild: the recovered engine continues the crashed log
              (durable records are not re-logged), so crashing again at
              any point cannot lose previously durable state. *)
           let engine, _ = Ent_txn.Engine.recover image in
           (* Version chains are volatile MVCC state: a recovered
              engine must start from the durable images alone. *)
           if Ent_txn.Engine.chain_entries engine <> 0 then
             viol [] "version-gc"
               "recovered engine starts with non-empty version chains";
           mgr := Manager.create_with_engine ~config:sched_config engine;
           let r, c = attach !mgr in
           recorder := r;
           certifier := c;
           epoch_live := true;
           (* Dormant-pool survivors resume: every program of the last
              snapshot must deserialize and resubmit. *)
           let ids =
             List.filter_map
               (fun serialized ->
                 match Program.of_serialized serialized with
                 | p -> Some (Manager.submit !mgr p)
                 | exception exn ->
                   viol [] "pool-resume"
                     (Printf.sprintf
                        "dormant program failed to deserialize: %s"
                        (Printexc.to_string exn));
                   None)
               analysis.pool
           in
           last_resumed := ids;
           step := Run)
     with Fault.Crashed _ | Fault.Failed _ ->
       incr crashes;
       decr crash_budget;
       if !crash_budget <= 0 then Fault.deactivate ();
       if !epoch_live then begin
         histories := Recorder.completed_history !recorder :: !histories;
         commits := !commits + (Manager.stats !mgr).Scheduler.commits;
         check_no_errors !mgr;
         check_certifier !epochs_closed;
         incr epochs_closed;
         epoch_live := false
       end;
       last_resumed := [];
       let wal = Option.get (Ent_txn.Engine.log (Manager.engine !mgr)) in
       step := Recover (Wal.crash_records wal))
  done;
  if not !aborted_sim then begin
    if !epoch_live then begin
      histories := Recorder.completed_history !recorder :: !histories;
      commits := !commits + (Manager.stats !mgr).Scheduler.commits;
      check_certifier !epochs_closed;
      incr epochs_closed
    end;
    check_no_errors !mgr;
    (* Resumed dormant survivors must either have finished or still be
       waiting — never silently vanish. *)
    List.iter
      (fun id ->
        match Manager.outcome !mgr id with
        | Some _ -> ()
        | None ->
          if not (List.mem id (Scheduler.dormant (Manager.scheduler !mgr)))
          then
            viol [ id ] "pool-resume"
              (Printf.sprintf "resumed dormant task %d vanished" id))
      !last_resumed;
    let wal = Option.get (Ent_txn.Engine.log (Manager.engine !mgr)) in
    let final_records = Wal.records wal in
    (* A quiescent log must be widow-free: no committed transaction may
       need the entanglement rule's rollback once the system drained. *)
    let analysis = Recovery.analyze final_records in
    if analysis.group_victims <> [] then
      viol analysis.group_victims "widow"
        (Printf.sprintf "quiescent log has entanglement-rule victims: %s"
           (ints analysis.group_victims));
    (* MVCC GC: with the pool drained no snapshot is live, so every
       version chain must have been garbage-collected by run end. *)
    let chains = Ent_txn.Engine.chain_entries (Manager.engine !mgr) in
    if chains <> 0 then
      viol [] "version-gc"
        (Printf.sprintf "quiescent engine retains %d version-chain entr%s"
           chains
           (if chains = 1 then "y" else "ies"));
    (* Durability at quiescence: replaying the final log reproduces the
       live store exactly. *)
    (match Recovery.replay final_records with
    | exception exn ->
      viol [] "recovery"
        (Printf.sprintf "replay of the quiescent log raised %s"
           (Printexc.to_string exn))
    | replayed, _ ->
      if dump_catalog replayed <> dump_catalog (Manager.catalog !mgr) then
        viol [] "durability" "quiescent replay differs from the live store");
    (* Every epoch's completed history must pass the Appendix C
       checker (widow detection lives here when no group is logged). *)
    List.iteri
      (fun i h ->
        let report = Histcheck.check h in
        if not (Histcheck.ok report) then
          viol [] "history"
            (Format.asprintf "epoch %d history fails the checker:@ %a" i
               Histcheck.pp report))
      (List.rev !histories);
    (* Flush phase: a log flush either round-trips or, when the plan
       forces a failure, leaves a loadable prefix on disk. *)
    let tmp = Filename.temp_file "entsim" ".wal" in
    (match Wal.save wal tmp with
    | () -> (
      match Wal.load tmp with
      | reloaded ->
        if Wal.records reloaded <> final_records then
          viol [] "flush" "saved log does not round-trip"
      | exception exn ->
        viol [] "flush"
          (Printf.sprintf "saved log failed to load: %s"
             (Printexc.to_string exn)))
    | exception Fault.Failed _ -> (
      incr flush_failures;
      match Wal.load tmp with
      | reloaded ->
        let r = Wal.records reloaded in
        let n = List.length r in
        if r <> List.filteri (fun i _ -> i < n) final_records then
          viol [] "flush" "failed flush left a non-prefix on disk"
      | exception exn ->
        viol [] "flush"
          (Printf.sprintf "failed flush left an unloadable file: %s"
             (Printexc.to_string exn))));
    Sys.remove tmp
  end;
  let sites = Fault.counts () in
  let wait_graph =
    if !violations = [] then None
    else
      Some
        (Waitgraph.render_text (Scheduler.wait_graph (Manager.scheduler !mgr)))
  in
  let flight =
    if !violations = [] then None
    else begin
      (* Close the partial window so the dump covers up to the moment
         of failure, then snapshot everything in one artifact. *)
      Timeseries.flush ();
      Some
        (Flight.to_json ~reason:"invariant-violation" ?wait_graph
           ~sim_now:(Manager.now !mgr) ())
    end
  in
  {
    plan;
    crashes = !crashes;
    flush_failures = !flush_failures;
    commits = !commits;
    sites;
    violations = List.rev !violations;
    wait_graph;
    flight;
  }

(* --- seeded schedules and shrinking --- *)

(* Fault-free profiling run: per-site hit counts bound the hit values
   of generated arms, so most arms actually fire. *)
let profile cfg = (run cfg []).sites

let random_plan cfg rng =
  Plan.random rng ~profile:(profile cfg) ~max_arms:cfg.max_arms

(* One seeded schedule: derive a plan from the seed, run it. *)
let check_seed cfg =
  let rng = Rng.make cfg.seed in
  run cfg (random_plan cfg rng)

let violates cfg plan = (run cfg plan).violations <> []

(* Greedy minimization: drop arms while the failure persists, then
   walk each surviving arm's hit count down (halving, then stepping). *)
let shrink cfg plan =
  if not (violates cfg plan) then plan
  else begin
    let rec drop plan =
      let rec try_at i =
        if i >= List.length plan then None
        else
          let candidate = List.filteri (fun j _ -> j <> i) plan in
          if violates cfg candidate then Some candidate else try_at (i + 1)
      in
      match try_at 0 with
      | Some smaller -> drop smaller
      | None -> plan
    in
    let plan = ref (drop plan) in
    for i = 0 to List.length !plan - 1 do
      let with_hit h =
        List.mapi
          (fun j (a : Plan.arm) -> if j = i then { a with hit = h } else a)
          !plan
      in
      let shrinking = ref true in
      while !shrinking do
        let h = (List.nth !plan i).Plan.hit in
        if h <= 1 then shrinking := false
        else begin
          let candidates =
            List.filter (fun h' -> h' >= 1 && h' < h) [ h / 2; h - 1 ]
          in
          match List.find_opt (fun h' -> violates cfg (with_hit h')) candidates with
          | Some h' -> plan := with_hit h'
          | None -> shrinking := false
        end
      done
    done;
    !plan
  end

(* The one-line repro command for a failing (config, plan). *)
let repro cfg plan =
  let flag name v d = if v = d then "" else Printf.sprintf " --%s %d" name v in
  Printf.sprintf "entsim --seed %d%s%s%s%s%s%s%s%s%s%s%s --plan '%s'" cfg.seed
    (flag "pairs" cfg.pairs default.pairs)
    (flag "rollback-pairs" cfg.rollback_pairs default.rollback_pairs)
    (flag "plain" cfg.plain default.plain)
    (flag "lonely" cfg.lonely default.lonely)
    (flag "users" cfg.users default.users)
    (flag "cities" cfg.cities default.cities)
    (if cfg.break_group_commit then " --break-group-commit" else "")
    (if cfg.combined then " --combined" else "")
    (if cfg.certify then " --certify" else "")
    (if cfg.isolation = default.isolation then ""
     else " --isolation " ^ cfg.isolation)
    (flag "timeline" cfg.timeline default.timeline)
    (Plan.to_string plan)
