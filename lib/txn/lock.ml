module Obs = Ent_obs.Obs
module Timeseries = Ent_obs.Timeseries

(* layer.component.metric, DESIGN.md §3 *)
let m_requests = Obs.counter "txn.lock.requests"
let m_granted = Obs.counter "txn.lock.granted"
let m_waits = Obs.counter "txn.lock.waits"
let m_releases = Obs.counter "txn.lock.releases"
let m_wakeups = Obs.counter "txn.lock.wakeups"
let m_entries = Obs.gauge "txn.lock.entries"

type mode = IS | IX | S | X

type resource =
  | Table of string
  | Row of string * int

let compatible a b =
  match a, b with
  | IS, IS | IS, IX | IX, IS | IX, IX | IS, S | S, IS | S, S -> true
  | X, _ | _, X | S, IX | IX, S -> false

(* Does holding [held] cover a request for [want]? *)
let covers held want =
  match held, want with
  | X, _ -> true
  | S, (S | IS) -> true
  | IX, (IX | IS) -> true
  | IS, IS -> true
  | _ -> false

(* Least mode at least as strong as both (escalating S+IX to X since we
   do not implement SIX). *)
let lub a b =
  if covers a b then a
  else if covers b a then b
  else
    match a, b with
    | IS, IX | IX, IS -> IX
    | S, IX | IX, S | S, X | X, S | IX, X | X, IX | IS, X | X, IS -> X
    | IS, S | S, IS -> S
    | IS, IS | IX, IX | S, S | X, X -> a

type entry = {
  mutable holders : (int * mode) list;
  mutable queue : (int * mode) list;  (* FIFO: head is the oldest waiter *)
}

(* The entry map is sharded by resource hash so that transactions
   touching disjoint keys never contend on a lock-manager mutex — the
   DB-level locks were already disjoint, this makes the manager's own
   synchronization disjoint too. [owned] is striped by txn id (a txn's
   requests come from one domain at a time, so stripes only order
   request-vs-release). [groups] is a single small map behind its own
   mutex. Mutex order, where nested: shard -> (owned stripe | groups).
   Stripe and group mutexes are leaves. In the deterministic
   single-domain mode every mutex is uncontended, and all observable
   outputs below are sorted, so sharding is invisible to existing
   fixtures. *)

let n_shards = 16
let n_stripes = 16

type shard = {
  sh_mu : Mutex.t;
  sh_entries : (resource, entry) Hashtbl.t;
  mutable sh_waiters : int;  (* queued (txn, resource) pairs in this shard *)
}

type stripe = {
  st_mu : Mutex.t;
  st_owned : (int, resource list) Hashtbl.t;  (* resources held or waited on *)
}

type t = {
  shards : shard array;
  stripes : stripe array;
  groups_mu : Mutex.t;
  groups : (int, int) Hashtbl.t;  (* txn -> entanglement group tag *)
  total_entries : int Atomic.t;
  waiter_gauges : Obs.gauge array option;
      (* per-shard wait-depth gauges (txn.lock.shard_waiters.NN) —
         registered only when time-series sampling was enabled before
         the manager was built. Lock waits do happen in default runs,
         so unconditional registration would change the default metric
         snapshots that fixtures compare byte-for-byte. *)
}

let shard_count = n_shards

let shard_of resource = Hashtbl.hash resource mod n_shards

let create () =
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            sh_mu = Mutex.create ();
            sh_entries = Hashtbl.create 16;
            sh_waiters = 0;
          });
    stripes =
      Array.init n_stripes (fun _ ->
          { st_mu = Mutex.create (); st_owned = Hashtbl.create 8 });
    groups_mu = Mutex.create ();
    groups = Hashtbl.create 16;
    total_entries = Atomic.make 0;
    waiter_gauges =
      (if Timeseries.enabled () then
         Some
           (Array.init n_shards (fun i ->
                Obs.gauge (Printf.sprintf "txn.lock.shard_waiters.%02d" i)))
       else None);
  }

let note_waiters t i sh =
  match t.waiter_gauges with
  | Some g -> Obs.set g.(i) (float_of_int sh.sh_waiters)
  | None -> ()

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | v -> Mutex.unlock mu; v
  | exception e -> Mutex.unlock mu; raise e

let stripe_for t txn = t.stripes.(abs (txn mod n_stripes))

let lock_all_shards t =
  Array.iter (fun sh -> Mutex.lock sh.sh_mu) t.shards

let unlock_all_shards t =
  Array.iter (fun sh -> Mutex.unlock sh.sh_mu) t.shards

let with_all_shards t f =
  lock_all_shards t;
  match f () with
  | v -> unlock_all_shards t; v
  | exception e -> unlock_all_shards t; raise e

let set_group t ~txn ~group =
  with_mu t.groups_mu (fun () -> Hashtbl.replace t.groups txn group)

let same_owner t a b =
  a = b
  || with_mu t.groups_mu (fun () ->
         match Hashtbl.find_opt t.groups a, Hashtbl.find_opt t.groups b with
         | Some ga, Some gb -> ga = gb
         | _ -> false)

(* Callers hold [sh.sh_mu]. *)
let entry_for t sh resource =
  match Hashtbl.find_opt sh.sh_entries resource with
  | Some e -> e
  | None ->
    let e = { holders = []; queue = [] } in
    Hashtbl.add sh.sh_entries resource e;
    Atomic.incr t.total_entries;
    e

let note_owned t txn resource =
  let st = stripe_for t txn in
  with_mu st.st_mu (fun () ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt st.st_owned txn)
      in
      if not (List.mem resource existing) then
        Hashtbl.replace st.st_owned txn (resource :: existing))

type outcome =
  | Granted
  | Waiting

(* Test probe: observes every lock request before it is serviced.
   The isolation test suite installs one to assert that snapshot
   transactions acquire zero read locks. *)
let probe : (txn:int -> resource -> mode -> unit) option ref = ref None
let set_probe f = probe := f

let other_holders t entry txn =
  List.filter (fun (o, _) -> not (same_owner t o txn)) entry.holders

let grantable t entry txn need =
  List.for_all (fun (_, m) -> compatible need m) (other_holders t entry txn)

let request t ~txn resource mode =
  Obs.incr m_requests;
  Obs.set m_entries (float_of_int (Atomic.get t.total_entries));
  (match !probe with
  | Some f -> f ~txn resource mode
  | None -> ());
  let i = shard_of resource in
  let sh = t.shards.(i) in
  with_mu sh.sh_mu (fun () ->
      let entry = entry_for t sh resource in
      let held = List.assoc_opt txn entry.holders in
      let need =
        match held with
        | Some h -> lub h mode
        | None -> mode
      in
      match held with
      | Some h when covers h mode ->
        Obs.incr m_granted;
        Granted
      | _ ->
        if List.exists (fun (o, _) -> o = txn) entry.queue then begin
          (* already queued; strengthen the queued mode if needed *)
          entry.queue <-
            List.map
              (fun (o, m) -> if o = txn then (o, lub m need) else (o, m))
              entry.queue;
          Obs.incr m_waits;
          Waiting
        end
        else begin
          let is_upgrade = held <> None in
          (* Upgrades may jump the queue (a blocked upgrade behind a new
             waiter on the same resource would deadlock trivially). Fresh
             requests respect FIFO order. *)
          if grantable t entry txn need && (entry.queue = [] || is_upgrade)
          then begin
            entry.holders <-
              (txn, need)
              :: List.filter (fun (o, _) -> o <> txn) entry.holders;
            note_owned t txn resource;
            Obs.incr m_granted;
            Granted
          end
          else begin
            entry.queue <- entry.queue @ [ (txn, need) ];
            sh.sh_waiters <- sh.sh_waiters + 1;
            note_waiters t i sh;
            note_owned t txn resource;
            Obs.incr m_waits;
            Waiting
          end
        end)

(* Callers hold the entry's shard mutex. *)
let promote_waiters t sh entry =
  (* Grant from the front of the queue while compatible. *)
  let granted = ref [] in
  let rec go () =
    match entry.queue with
    | [] -> ()
    | (txn, need) :: rest ->
      if grantable t entry txn need then begin
        entry.holders <-
          (txn, need) :: List.filter (fun (o, _) -> o <> txn) entry.holders;
        entry.queue <- rest;
        sh.sh_waiters <- sh.sh_waiters - 1;
        granted := txn :: !granted;
        go ()
      end
  in
  go ();
  List.rev !granted

let release_all t ~txn =
  Obs.incr m_releases;
  let st = stripe_for t txn in
  let resources =
    with_mu st.st_mu (fun () ->
        let r = Option.value ~default:[] (Hashtbl.find_opt st.st_owned txn) in
        Hashtbl.remove st.st_owned txn;
        r)
  in
  with_mu t.groups_mu (fun () -> Hashtbl.remove t.groups txn);
  let woken = ref [] in
  List.iter
    (fun resource ->
      let i = shard_of resource in
      let sh = t.shards.(i) in
      with_mu sh.sh_mu (fun () ->
          match Hashtbl.find_opt sh.sh_entries resource with
          | None -> ()
          | Some entry ->
            entry.holders <- List.filter (fun (o, _) -> o <> txn) entry.holders;
            let before = List.length entry.queue in
            entry.queue <- List.filter (fun (o, _) -> o <> txn) entry.queue;
            sh.sh_waiters <- sh.sh_waiters - (before - List.length entry.queue);
            woken := promote_waiters t sh entry @ !woken;
            note_waiters t i sh;
            if entry.holders = [] && entry.queue = [] then begin
              Hashtbl.remove sh.sh_entries resource;
              Atomic.decr t.total_entries
            end))
    resources;
  Obs.set m_entries (float_of_int (Atomic.get t.total_entries));
  let woken = List.sort_uniq Int.compare !woken in
  Obs.incr ~n:(List.length woken) m_wakeups;
  woken

let holders t resource =
  let sh = t.shards.(shard_of resource) in
  with_mu sh.sh_mu (fun () ->
      match Hashtbl.find_opt sh.sh_entries resource with
      | None -> []
      | Some e -> e.holders)

let held t ~txn resource = List.assoc_opt txn (holders t resource)

(* A waiter waits for every incompatible holder and every earlier
   incompatible waiter on the same resource. *)
let blockers_of_entry t entry txn =
  match
    List.find_opt (fun (o, _) -> o = txn) entry.queue
  with
  | None -> []
  | Some (_, need) ->
    let rec earlier acc = function
      | [] -> acc
      | (o, _) :: _ when o = txn -> acc
      | (o, m) :: rest ->
        earlier (if compatible need m then acc else o :: acc) rest
    in
    let from_holders =
      List.filter_map
        (fun (o, m) ->
          if (not (same_owner t o txn)) && not (compatible need m) then Some o
          else None)
        entry.holders
    in
    from_holders @ earlier [] entry.queue

(* Requires all shard mutexes (or single-domain quiescence). *)
let blockers_unlocked t ~txn =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun _ entry acc -> blockers_of_entry t entry txn @ acc)
        sh.sh_entries acc)
    [] t.shards
  |> List.sort_uniq Int.compare

let blockers t ~txn = with_all_shards t (fun () -> blockers_unlocked t ~txn)

let is_waiting t ~txn =
  Array.exists
    (fun sh ->
      with_mu sh.sh_mu (fun () ->
          Hashtbl.fold
            (fun _ entry acc ->
              acc || List.exists (fun (o, _) -> o = txn) entry.queue)
            sh.sh_entries false))
    t.shards

let waits t ~txn =
  Array.fold_left
    (fun acc sh ->
      with_mu sh.sh_mu (fun () ->
          Hashtbl.fold
            (fun resource entry acc ->
              match List.find_opt (fun (o, _) -> o = txn) entry.queue with
              | Some (_, need) -> (resource, need) :: acc
              | None -> acc)
            sh.sh_entries acc))
    [] t.shards
  |> List.sort compare

let dump t =
  with_all_shards t (fun () ->
      Array.fold_left
        (fun acc sh ->
          Hashtbl.fold
            (fun resource entry acc ->
              (resource, entry.holders, entry.queue) :: acc)
            sh.sh_entries acc)
        [] t.shards)
  |> List.sort compare

let mode_to_string = function IS -> "IS" | IX -> "IX" | S -> "S" | X -> "X"

let resource_to_string = function
  | Table t -> Printf.sprintf "table %s" t
  | Row (t, k) -> Printf.sprintf "row %s/%d" t k

let deadlock_cycle t ~txn =
  (* DFS over the waits-for graph starting from [txn], looking for a
     path back to [txn]. All shards are locked for the duration so the
     graph is a consistent snapshot even under parallel execution. *)
  with_all_shards t (fun () ->
      let rec dfs path visited node =
        let next = blockers_unlocked t ~txn:node in
        if List.mem txn next then Some (List.rev (node :: path))
        else
          List.fold_left
            (fun acc n ->
              match acc with
              | Some _ -> acc
              | None ->
                if List.mem n !visited then None
                else begin
                  visited := n :: !visited;
                  dfs (node :: path) visited n
                end)
            None next
      in
      let visited = ref [ txn ] in
      dfs [] visited txn)
