(** The transactional engine: catalog + lock manager + WAL, with
    per-transaction locked data access.

    The engine is cooperative. Data access raises {!Blocked} when a
    lock must be waited for (the caller suspends the transaction and
    retries the statement after a wake-up) and {!Deadlock_victim} when
    the request would close a waits-for cycle (the caller aborts).

    Transaction id 0 is reserved for bootstrap loading and is always
    treated as committed by recovery. *)

open Ent_storage

exception Blocked of int  (** payload: the blocked transaction id *)

exception Deadlock_victim of int

(** Raised by snapshot-isolation data access when an update/delete
    targets a row whose live version already vanished — the transaction
    is doomed by first-committer-wins and should abort and retry on a
    fresh snapshot. Payload: the transaction id. *)
exception Si_conflict of int

(** Per-transaction isolation level. [Serializable_2pl] is the default
    strict two-phase locking of the paper; [Snapshot] reads a
    begin-stamp snapshot from the version chains, takes zero read
    locks, and validates its write set at commit
    (first-committer-wins). *)
type level =
  | Serializable_2pl
  | Snapshot

val level_to_string : level -> string

(** Accepts ["2pl"]/["serializable"] and ["si"]/["snapshot"]. *)
val level_of_string : string -> level option

(** What a read touched, mirroring the lock taken: full scans read (and
    table-S-lock) the whole table; indexed lookups read specific rows. *)
type read_target =
  | T_table of string
  | T_row of string * int

type event =
  | Ev_read of int * read_target
  | Ev_grounding_read of int * string  (** grounding reads are always table-level *)
  | Ev_write of int * string * int  (** (txn, table, row) *)
  | Ev_begin of int * level
  | Ev_commit of int
  | Ev_abort of int

type t

(** [create ~wal catalog] wraps an existing catalog. With [~wal:true]
    every change is logged and {!log} is available for recovery tests.
    [on_event] feeds the schedule recorder. *)
val create : ?wal:bool -> ?on_event:(event -> unit) -> Catalog.t -> t

val catalog : t -> Catalog.t
val log : t -> Wal.t option
val locks : t -> Lock.t

(** Replace the event listener (used to attach a recorder after setup). *)
val set_on_event : t -> (event -> unit) option -> unit

(** Add a listener without displacing the installed one: both run, in
    installation order. Lets a certifier observe alongside a recorder. *)
val add_on_event : t -> (event -> unit) -> unit

(** While deferred, observer dispatch buffers events in per-domain
    shards — each with a global atomic order stamp — instead of
    serializing through the engine's observer mutex. The scheduler
    defers around parallel phases and flushes at the boundary. *)
val set_deferred_events : t -> bool -> unit

(** Dispatch all deferred events to the observers, sorted by emission
    order stamp: an exact linearization of emission order, so the
    conflict-order guarantee of live dispatch (events of two
    conflicting operations never reorder) is preserved. *)
val flush_events : t -> unit

(** Create a table through the engine so it is logged for recovery. *)
val create_table : t -> string -> Schema.t -> Table.t

(** Bulk-load a row as the bootstrap pseudo-transaction (id 0):
    logged, never locked. *)
val load : t -> string -> Value.t array -> int

(** [begin_txn ?isolation t] starts a transaction. A [Snapshot]
    transaction additionally records the current commit stamp as its
    snapshot and registers itself for version-chain GC purposes; the
    version chains themselves are only populated while
    {!Ent_storage.Table.set_versioned} is on. *)
val begin_txn : ?isolation:level -> t -> int

(** True when the id denotes a live (begun, not yet finished) txn. *)
val is_active : t -> int -> bool

(** The isolation level of a transaction ([Serializable_2pl] for
    unknown/finished ids). *)
val level_of : t -> int -> level

(** [access t txn] is the locked {!Ent_sql.Eval.access} view for a
    transaction. [grounding] selects table-level shared locks on reads
    (used while grounding entangled queries, §3.3.3); classical reads
    take intention locks plus row locks on lookups and table locks on
    full scans. The [lock_reads] flag (default true) exists so relaxed
    isolation levels can skip read locks entirely. *)
val access : t -> int -> grounding:bool -> ?lock_reads:bool -> unit -> Ent_sql.Eval.access

(** [touch_grounding_tables t txn tables] acquires the table-S
    grounding locks and registers the quasi-read tables exactly as a
    grounding computation over [tables] would, without reading any
    rows — the lock-side-effect half of serving a cached grounding.
    @raise Blocked / Deadlock_victim as {!access} reads do. *)
val touch_grounding_tables : t -> int -> ?lock_reads:bool -> string list -> unit

(** Number of writes performed so far; pass back to {!rollback_to} for
    statement-level atomicity. *)
val savepoint : t -> int -> int

(** Undo (with compensation logging) all writes after a savepoint. *)
val rollback_to : t -> int -> int -> unit

(** Register a named integrity constraint — a predicate over the whole
    database that consistent states satisfy (the "consistency" of
    Assumption 3.1/3.5). Constraints are checked by the execution layer
    before commits; see {!violated_constraint}. *)
val add_constraint : t -> name:string -> (Ent_storage.Catalog.t -> bool) -> unit

(** The name of some violated constraint in the current (dirty) table
    state, if any. *)
val violated_constraint : t -> string option

(** First-committer-wins validation for a snapshot transaction: the
    first written (table, row) that some other transaction committed a
    write to after this transaction's snapshot was taken, or [None]
    when the commit is admissible. Always [None] for 2PL transactions.
    Call before {!commit}; a conflict means the caller must abort. *)
val validate_snapshot : t -> int -> (string * int) option

(** Commit: logs, releases locks, queues wake-ups. In versioned mode
    also stamps the transaction on the commit clock and records its
    write set for first-committer-wins validation of others. *)
val commit : t -> int -> unit

(** Abort: undoes all writes, logs, releases locks, queues wake-ups. *)
val abort : t -> int -> unit

(** Abort several transactions of one entanglement group together.
    Group members share lock ownership and may have interleaved writes
    to the same rows; this undoes their merged write log in reverse
    order, which per-member {!abort} cannot do safely. Inactive ids are
    skipped. *)
val abort_group : t -> int list -> unit

(** Record that the listed transactions entangled (event id is
    system-wide unique); logged for entanglement-aware recovery. *)
val log_entangle_group : t -> event:int -> members:int list -> unit

(** Tag a transaction as belonging to an entanglement group for lock
    purposes: group members never block each other (they commit or
    abort together, so the group is one distributed lock owner). *)
val set_lock_group : t -> txn:int -> group:int -> unit

(** Persist the dormant pool (serialized programs). *)
val log_pool_snapshot : t -> string list -> unit

(** Write a sharp checkpoint (full table images) into the WAL, so
    recovery restarts from it and the log can be compacted
    ([Wal.compact]).
    @raise Invalid_argument while any transaction is active. *)
val checkpoint : t -> unit

(** [recover records] boots the post-crash engine from a crash image:
    the catalog is the replayed store, the WAL continues from the image
    (already-durable records are not re-logged, so a crash during
    recovery loses nothing), transaction ids resume above the image's
    high-water mark, and a sharp checkpoint is written as the recovery
    barrier. Returns the engine and the recovery analysis (for pool
    resubmission). *)
val recover : Wal.record list -> t * Recovery.analysis

(** Transactions granted their pending lock since the last call. *)
val take_wakeups : t -> int list

(** Tables this transaction grounding-read so far (for quasi-read
    bookkeeping). *)
val grounding_reads : t -> int -> string list

(** Truncate every table's version chains below the oldest live
    snapshot and prune the commit-stamp maps accordingly. No-op unless
    versioned mode is on. Cheap enough to call at every group-commit
    boundary; at quiescence it empties the chains entirely. *)
val gc_versions : t -> unit

(** Total retained version-chain entries across the catalog (0 at
    quiescence once {!gc_versions} ran). *)
val chain_entries : t -> int
