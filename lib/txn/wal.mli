(** Write-ahead log.

    The log is the system's stable storage: tables live in volatile
    memory and are rebuilt from the log after a crash. Records carry
    full before/after row images keyed by (table, row id), so replay is
    idempotent and order-insensitive per row.

    Entanglement leaves two traces in the log beyond classical records:
    [Entangle_group] records naming the transactions that entangled
    (needed by the entanglement-aware recovery rule of §4), and
    [Pool_snapshot] records persisting the middleware's dormant
    transaction pool so waiting transactions survive a crash (§5.1:
    "the middleware is stateless; all relevant system state is
    serialized and stored in the database"). *)

open Ent_storage

type lsn = int

type record =
  | Begin of int
  | Write of {
      txn : int;
      table : string;
      row : int;
      before : Tuple.t option;  (** [None] for an insert *)
      after : Tuple.t option;  (** [None] for a delete *)
    }
  | Commit of int
  | Abort of int
  | Create of { table : string; columns : (string * Schema.col_type) list }
  | Entangle_group of { event : int; members : int list }
  | Pool_snapshot of string list
      (** serialized programs of the dormant pool at snapshot time *)
  | Checkpoint of {
      tables :
        (string * (string * Schema.col_type) list * (int * Tuple.t) list) list;
    }
      (** a sharp checkpoint: full images of every table, taken at a
          quiescent point (no active transactions). Recovery restarts
          from the last checkpoint and replays only the tail;
          {!compact} drops everything before it. *)

type t

val create : unit -> t

(** Append a record; the record is durable immediately (force-at-append). *)
val append : t -> record -> lsn

(** [restore t records] seeds a fresh log with records that are already
    durable (recovery continuing a crashed log). Unlike {!append}, no
    fault-injection sites fire: nothing is being written. *)
val restore : t -> record list -> unit

(** All records in append order. *)
val records : t -> record list

(** The records a crash at this instant would leave durable: the full
    log, minus the final record when a fault injection tore it
    (see {!Ent_fault.Injector}). Equal to {!records} in normal
    operation. *)
val crash_records : t -> record list

val length : t -> int

(** [prefix t n] simulates a crash that lost everything after LSN [n-1]
    — used by tests to crash "mid group commit". The real system forces
    at append, so only in-flight records can be lost. *)
val prefix : t -> int -> record list

(** Drop all records before the last [Checkpoint] (no-op without one). *)
val compact : t -> unit

(** Persist the log to a file (binary, versioned header).
    @raise Sys_error on I/O failure. *)
val save : t -> string -> unit

(** Load a log saved by {!save}.
    @raise Failure on a bad header or corrupt file. *)
val load : string -> t
