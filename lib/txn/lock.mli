(** Strict two-phase-locking lock manager with multigranularity modes.

    Resources are whole tables or single rows. Classical reads take
    [IS] on the table plus [S] on rows; writes take [IX] plus row [X];
    grounding reads of entangled queries take table-level [S] — the
    paper's §3.3.3 prescription for making quasi-reads repeatable
    ("Minnie's transaction would have held a read lock on the Airlines
    table until commit").

    The manager is cooperative: a conflicting request is enqueued and
    reported as {!Waiting}; the owner is expected to suspend and retry
    after a wake-up. Deadlocks are detected on the waits-for graph at
    enqueue time. *)

type mode = IS | IX | S | X

type resource =
  | Table of string
  | Row of string * int

type t

val create : unit -> t

(** The entry map is sharded by resource hash so that transactions
    touching disjoint keys never contend on lock-manager-internal
    synchronization. [shard_of] is the (pure) shard map; exposed so
    tests can construct same-shard / cross-shard workloads. *)
val shard_count : int

val shard_of : resource -> int

(** Group-aware ownership: transactions tagged with the same group
    never conflict with each other. The scheduler tags the members of
    an entanglement group — they are guaranteed to commit or abort
    together (group commit), so the group behaves as one distributed
    lock owner; without this, a transaction writing a table its partner
    grounding-read could never commit. Tags are dropped on
    {!release_all}. *)
val set_group : t -> txn:int -> group:int -> unit

type outcome =
  | Granted
  | Waiting

(** [request t ~txn resource mode] acquires or upgrades a lock.
    Upgrades combine the held and requested modes (e.g. holding [S] and
    requesting [IX] escalates to [X]). Re-requesting a covered mode is
    a no-op returning [Granted]. An already-queued request stays queued
    and returns [Waiting] again. *)
val request : t -> txn:int -> resource -> mode -> outcome

(** Install (or clear) a probe observing every {!request} before it is
    serviced, as (txn, resource, requested mode). Test instrumentation:
    the isolation suite uses it to assert snapshot transactions acquire
    zero read locks. Global; pass [None] to remove. *)
val set_probe : (txn:int -> resource -> mode -> unit) option -> unit

(** [release_all t ~txn] releases every lock held by [txn], removes its
    queued requests, and returns the transactions whose queued requests
    became granted. *)
val release_all : t -> txn:int -> int list

(** Current holders of a resource, as (txn, mode). *)
val holders : t -> resource -> (int * mode) list

(** [held t ~txn resource] is the mode held, if any. *)
val held : t -> txn:int -> resource -> mode option

(** [blockers t ~txn] is the set of transactions [txn] currently waits
    for (empty when it has no queued request). *)
val blockers : t -> txn:int -> int list

(** [deadlock_cycle t ~txn] is a waits-for cycle through [txn], if one
    exists. *)
val deadlock_cycle : t -> txn:int -> int list option

(** True when [txn] has a queued (not yet granted) request. *)
val is_waiting : t -> txn:int -> bool

(** Queued (not yet granted) requests of [txn], as (resource, mode). *)
val waits : t -> txn:int -> (resource * mode) list

(** Every live lock entry as (resource, holders, queue), sorted by
    resource — the raw material for the wait-graph snapshot. *)
val dump : t -> (resource * (int * mode) list * (int * mode) list) list

val mode_to_string : mode -> string
val resource_to_string : resource -> string
