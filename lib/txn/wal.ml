open Ent_storage
module Obs = Ent_obs.Obs

let m_appends = Obs.counter "txn.wal.appends"
let m_compactions = Obs.counter "txn.wal.compactions"
let m_saves = Obs.counter "txn.wal.saves"
let m_loads = Obs.counter "txn.wal.loads"
let m_records = Obs.gauge "txn.wal.records"

type lsn = int

type record =
  | Begin of int
  | Write of {
      txn : int;
      table : string;
      row : int;
      before : Tuple.t option;
      after : Tuple.t option;
    }
  | Commit of int
  | Abort of int
  | Create of { table : string; columns : (string * Schema.col_type) list }
  | Entangle_group of { event : int; members : int list }
  | Pool_snapshot of string list
  | Checkpoint of {
      tables :
        (string * (string * Schema.col_type) list * (int * Tuple.t) list) list;
    }

type t = { mutable log : record list; mutable len : int }
(* [log] is kept reversed for O(1) append. *)

let create () = { log = []; len = 0 }

let append t record =
  let lsn = t.len in
  t.log <- record :: t.log;
  t.len <- t.len + 1;
  Obs.incr m_appends;
  Obs.set m_records (float_of_int t.len);
  lsn

let records t = List.rev t.log
let length t = t.len

let prefix t n =
  let all = records t in
  List.filteri (fun i _ -> i < n) all

let compact t =
  let all = records t in
  let last_cp = ref (-1) in
  List.iteri
    (fun i r ->
      match r with
      | Checkpoint _ -> last_cp := i
      | _ -> ())
    all;
  if !last_cp >= 0 then begin
    let kept = List.filteri (fun i _ -> i >= !last_cp) all in
    t.log <- List.rev kept;
    t.len <- List.length kept;
    Obs.incr m_compactions;
    Obs.set m_records (float_of_int t.len)
  end


let magic = "ENTWAL1\n"

let save t path =
  Obs.incr m_saves;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc (records t) [])

let load path =
  Obs.incr m_loads;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if header <> magic then failwith "Wal.load: not an entangled WAL file";
      let records : record list = Marshal.from_channel ic in
      let t = create () in
      List.iter (fun r -> ignore (append t r)) records;
      t)
