open Ent_storage
module Obs = Ent_obs.Obs
module Fault = Ent_fault.Injector

let m_appends = Obs.counter "txn.wal.appends"
let m_compactions = Obs.counter "txn.wal.compactions"
let m_saves = Obs.counter "txn.wal.saves"
let m_loads = Obs.counter "txn.wal.loads"
let m_records = Obs.gauge "txn.wal.records"

(* Injection points: a crash can land on either side of any append
   boundary, the final record can be torn, and a log flush (save) can
   fail partway through the file. *)
let s_append = Fault.site "txn.wal.append"
let s_append_post = Fault.site "txn.wal.append.post"
let s_save = Fault.site "txn.wal.save"

type lsn = int

type record =
  | Begin of int
  | Write of {
      txn : int;
      table : string;
      row : int;
      before : Tuple.t option;
      after : Tuple.t option;
    }
  | Commit of int
  | Abort of int
  | Create of { table : string; columns : (string * Schema.col_type) list }
  | Entangle_group of { event : int; members : int list }
  | Pool_snapshot of string list
  | Checkpoint of {
      tables :
        (string * (string * Schema.col_type) list * (int * Tuple.t) list) list;
    }

type t = {
  mutable log : record list;
  mutable len : int;
  mutable torn : bool;
  mu : Mutex.t;
}
(* [log] is kept reversed for O(1) append. [torn] marks the final
   record as half-durable: it is in the in-memory log but would not
   survive a crash (see [crash_records]). [mu] makes appends atomic
   under domain-parallel execution; readers (records, save, compact)
   run at quiescence on the coordinator. *)

let create () = { log = []; len = 0; torn = false; mu = Mutex.create () }

let push t record =
  Mutex.lock t.mu;
  let lsn = t.len in
  t.log <- record :: t.log;
  t.len <- t.len + 1;
  Mutex.unlock t.mu;
  Obs.incr m_appends;
  Obs.set m_records (float_of_int t.len);
  lsn

let append t record =
  (match Fault.fire s_append with
  | None | Some Ent_fault.Plan.Drop -> ()
  | Some (Ent_fault.Plan.Crash | Ent_fault.Plan.Fail) ->
    (* crash before the append boundary: the record never reaches the log *)
    Fault.crash s_append
  | Some Ent_fault.Plan.Torn ->
    (* the record reaches the log but its tail is not durable *)
    ignore (push t record);
    t.torn <- true;
    Fault.crash s_append);
  let lsn = push t record in
  if Ent_obs.Event.logging () then begin
    let txn =
      match record with
      | Begin n | Commit n | Abort n -> n
      | Write { txn; _ } -> txn
      | Create _ | Entangle_group _ | Pool_snapshot _ | Checkpoint _ -> -1
    in
    Ent_obs.Event.emit ~txn (Ent_obs.Event.Wal_append { lsn })
  end;
  (* crash after the append boundary: the record is durable *)
  Fault.hit s_append_post;
  lsn

(* Seed a log with already-durable records (recovery continues the
   crashed log instead of re-logging the recovered state): these bytes
   are on stable storage already, so no injection sites fire. *)
let restore t records = List.iter (fun r -> ignore (push t r)) records

let records t = List.rev t.log
let length t = t.len

(* The records a crash at this instant would leave durable. *)
let crash_records t =
  let all = records t in
  if not t.torn then all
  else List.filteri (fun i _ -> i < t.len - 1) all

let prefix t n =
  let all = records t in
  List.filteri (fun i _ -> i < n) all

let compact t =
  let all = records t in
  let last_cp = ref (-1) in
  List.iteri
    (fun i r ->
      match r with
      | Checkpoint _ -> last_cp := i
      | _ -> ())
    all;
  if !last_cp >= 0 then begin
    let kept = List.filteri (fun i _ -> i >= !last_cp) all in
    t.log <- List.rev kept;
    t.len <- List.length kept;
    Obs.incr m_compactions;
    Obs.set m_records (float_of_int t.len)
  end


(* On-disk format: magic, then one length-prefixed marshalled frame
   per record. Framing makes torn writes a first-class case: a crash
   mid-save leaves a partial final frame, and [load] silently discards
   that tail instead of losing the whole file. *)
let magic = "ENTWAL2\n"

let save t path =
  Obs.incr m_saves;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      List.iter
        (fun r ->
          let payload = Marshal.to_string r [] in
          match Fault.fire s_save with
          | Some (Ent_fault.Plan.Fail | Ent_fault.Plan.Crash) ->
            (* flush failure: the file ends at a record boundary *)
            Fault.fail s_save
          | Some Ent_fault.Plan.Torn ->
            (* torn write: half of the final frame reaches the disk *)
            output_binary_int oc (String.length payload);
            output_string oc (String.sub payload 0 (String.length payload / 2));
            Fault.fail s_save
          | Some Ent_fault.Plan.Drop | None ->
            output_binary_int oc (String.length payload);
            output_string oc payload)
        (records t))

let load path =
  Obs.incr m_loads;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> failwith "Wal.load: not an entangled WAL file"
      in
      if header <> magic then failwith "Wal.load: not an entangled WAL file";
      let t = create () in
      let rec read () =
        match input_binary_int ic with
        | exception End_of_file -> ()  (* clean end, or a torn length header *)
        | len when len < 0 -> failwith "Wal.load: corrupt record length"
        | len -> (
          match really_input_string ic len with
          | exception End_of_file -> ()  (* torn final frame: discard *)
          | payload ->
            ignore (push t (Marshal.from_string payload 0 : record));
            read ())
      in
      read ();
      t)
