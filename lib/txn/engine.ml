open Ent_storage
module Obs = Ent_obs.Obs
module Event = Ent_obs.Event

let m_begins = Obs.counter "txn.engine.begins"
let m_commits = Obs.counter "txn.engine.commits"
let m_aborts = Obs.counter "txn.engine.aborts"
let m_blocks = Obs.counter "txn.engine.lock_blocks"
let m_deadlocks = Obs.counter "txn.engine.deadlock_victims"
let m_undone = Obs.counter "txn.engine.writes_undone"
let m_checkpoints = Obs.counter "txn.engine.checkpoints"

(* SI-only metrics are interned lazily: a pure-2PL run never forces
   them, so default metric snapshots stay byte-identical with the seed
   fixtures (unregistered metrics are simply absent). *)
let m_si_validations = lazy (Obs.counter "txn.si_validations")
let m_mvcc_chain_entries = lazy (Obs.gauge "storage.mvcc.chain_entries")
let m_mvcc_versions_gcd = lazy (Obs.counter "storage.mvcc.versions_gcd")

exception Blocked of int
exception Deadlock_victim of int
exception Si_conflict of int

type level =
  | Serializable_2pl
  | Snapshot

let level_to_string = function
  | Serializable_2pl -> "2pl"
  | Snapshot -> "si"

let level_of_string = function
  | "2pl" | "serializable" -> Some Serializable_2pl
  | "si" | "snapshot" -> Some Snapshot
  | _ -> None

type read_target =
  | T_table of string
  | T_row of string * int

type event =
  | Ev_read of int * read_target
  | Ev_grounding_read of int * string
  | Ev_write of int * string * int
  | Ev_begin of int * level
  | Ev_commit of int
  | Ev_abort of int

type write = {
  w_seq : int;  (* global write sequence, for cross-transaction undo order *)
  w_table : string;
  w_row : int;
  w_before : Tuple.t option;
  w_after : Tuple.t option;
}

type txn = {
  id : int;
  level : level;
  begin_ts : int;  (* commit-stamp counter at begin: the snapshot *)
  mutable writes : write list;  (* newest first *)
  mutable write_count : int;
  mutable grounding_tables : string list;
  mutable finished : bool;
}

type t = {
  catalog : Catalog.t;
  locks : Lock.t;
  wal : Wal.t option;
  txns : (int, txn) Hashtbl.t;
  mutable next_txn : int;
  mutable wakeups : int list;
  mutable on_event : (event -> unit) option;
  mutable constraints : (string * (Catalog.t -> bool)) list;
  write_seq : int Atomic.t;
  (* MVCC bookkeeping, populated only while [Table.versioned_enabled]:
     [commit_stamp] is the logical commit clock (a transaction's
     snapshot is the clock value at its begin), [committed_at] maps
     finished writers to their commit stamp (entries at or below every
     live snapshot are pruned by [gc_versions] — a missing, inactive
     writer therefore committed long ago, or aborted and fully
     compensated, and is visible either way), [last_write] is the
     newest committed stamp per (table, row) for first-committer-wins
     validation, and [snapshots] registers live snapshot transactions'
     begin stamps so GC knows the oldest snapshot. All three maps are
     guarded by [mu]. *)
  commit_stamp : int Atomic.t;
  committed_at : (int, int) Hashtbl.t;
  last_write : (string * int, int) Hashtbl.t;
  snapshots : (int, int) Hashtbl.t;
  (* [mu] guards the txn table, id allocation and the wakeup list;
     [obs_mu] serializes [on_event] dispatch so downstream observers
     (the online certifier above all) see one linear event stream.
     That stream respects the conflict order: every Ev_read/Ev_write is
     emitted while the corresponding DB lock is held, so two
     conflicting operations' events cannot reorder across a
     release/acquire boundary. Both mutexes are uncontended (and the
     interleavings identical) in single-domain deterministic mode.
     Order, where nested: mu -> obs_mu; neither is held while calling
     back into the engine.

     [deferred] takes [obs_mu] off the parallel hot path: while set
     (the scheduler sets it around parallel phases), [emit] appends to
     a per-domain shard with a global atomic order stamp instead of
     dispatching, and [flush_events] replays the buffer sorted by
     stamp at the phase boundary. The sorted replay is an exact
     linearization of emission order — emissions ordered by a lock
     release/acquire are also ordered by their fetch-and-add stamps —
     so the conflict-order guarantee above carries over verbatim. *)
  mu : Mutex.t;
  obs_mu : Mutex.t;
  deferred : bool Atomic.t;
  obs_order : int Atomic.t;
  obs_shards : (Mutex.t * (int * event) list ref) array;
}

let obs_shard_count = 16

let create ?(wal = false) ?on_event catalog =
  {
    catalog;
    locks = Lock.create ();
    wal = (if wal then Some (Wal.create ()) else None);
    txns = Hashtbl.create 32;
    next_txn = 1;
    wakeups = [];
    on_event;
    constraints = [];
    write_seq = Atomic.make 0;
    commit_stamp = Atomic.make 0;
    committed_at = Hashtbl.create 32;
    last_write = Hashtbl.create 64;
    snapshots = Hashtbl.create 8;
    mu = Mutex.create ();
    obs_mu = Mutex.create ();
    deferred = Atomic.make false;
    obs_order = Atomic.make 0;
    obs_shards =
      Array.init obs_shard_count (fun _ -> (Mutex.create (), ref []));
  }

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | v -> Mutex.unlock mu; v
  | exception e -> Mutex.unlock mu; raise e

let catalog t = t.catalog
let log t = t.wal
let locks t = t.locks
let set_on_event t f = t.on_event <- f

let add_on_event t f =
  match t.on_event with
  | None -> t.on_event <- Some f
  | Some g ->
    t.on_event <-
      Some
        (fun ev ->
          g ev;
          f ev)

let emit t ev =
  match t.on_event with
  | None -> ()
  | Some f ->
    if Atomic.get t.deferred then begin
      let stamp = Atomic.fetch_and_add t.obs_order 1 in
      let bmu, buf =
        t.obs_shards.((Domain.self () :> int) land (obs_shard_count - 1))
      in
      with_mu bmu (fun () -> buf := (stamp, ev) :: !buf)
    end
    else with_mu t.obs_mu (fun () -> f ev)

let set_deferred_events t b = Atomic.set t.deferred b

let flush_events t =
  let pending =
    Array.fold_left
      (fun acc (bmu, buf) ->
        with_mu bmu (fun () ->
            let l = !buf in
            buf := [];
            List.rev_append l acc))
      [] t.obs_shards
  in
  match pending with
  | [] -> ()
  | pending -> (
    let sorted =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) pending
    in
    match t.on_event with
    | None -> ()
    | Some f ->
      with_mu t.obs_mu (fun () -> List.iter (fun (_, ev) -> f ev) sorted))

let log_record t record =
  match t.wal with
  | Some wal -> ignore (Wal.append wal record)
  | None -> ()

let schema_columns schema =
  List.map (fun (c : Schema.column) -> (c.name, c.ty)) (Schema.columns schema)

let create_table t name schema =
  let table = Catalog.create_table t.catalog name schema in
  log_record t (Create { table = name; columns = schema_columns schema });
  table

let load t name row =
  let table = Catalog.find_exn t.catalog name in
  let id = Table.insert table row in
  log_record t (Write { txn = 0; table = name; row = id; before = None; after = Some row });
  id

let begin_txn ?(isolation = Serializable_2pl) t =
  let id =
    with_mu t.mu (fun () ->
        let id = t.next_txn in
        t.next_txn <- id + 1;
        let begin_ts = Atomic.get t.commit_stamp in
        Hashtbl.replace t.txns id
          { id; level = isolation; begin_ts; writes = []; write_count = 0;
            grounding_tables = []; finished = false };
        if isolation = Snapshot then Hashtbl.replace t.snapshots id begin_ts;
        id)
  in
  log_record t (Begin id);
  emit t (Ev_begin (id, isolation));
  Obs.incr m_begins;
  id

let is_active t id =
  with_mu t.mu (fun () ->
      match Hashtbl.find_opt t.txns id with
      | Some txn -> not txn.finished
      | None -> false)

let find_txn t id =
  with_mu t.mu (fun () ->
      match Hashtbl.find_opt t.txns id with
      | Some txn when not txn.finished -> txn
      | _ ->
        invalid_arg (Printf.sprintf "Engine: transaction %d is not active" id))

let level_of t id =
  with_mu t.mu (fun () ->
      match Hashtbl.find_opt t.txns id with
      | Some txn -> txn.level
      | None -> Serializable_2pl)

(* Snapshot visibility: writer [w]'s effects belong to [self]'s
   snapshot when [w] is the bootstrap pseudo-transaction, [self]
   itself, or committed at or before [self]'s begin stamp. A writer
   with no [committed_at] entry that is no longer active either
   committed before the oldest live snapshot (its entry was pruned) or
   aborted — and an aborted writer's chain carries its compensations
   too, so treating the whole pair as visible lands on the original
   before-image. Active uncommitted writers are invisible. *)
let visible_of t self begin_ts w =
  w = 0 || w = self
  ||
  match with_mu t.mu (fun () -> Hashtbl.find_opt t.committed_at w) with
  | Some stamp -> stamp <= begin_ts
  | None -> not (is_active t w)

(* Acquire a lock or suspend/abort the requester. *)
let acquire t txn_id resource mode =
  match Lock.request t.locks ~txn:txn_id resource mode with
  | Lock.Granted -> ()
  | Lock.Waiting -> (
    match Lock.deadlock_cycle t.locks ~txn:txn_id with
    | Some _ ->
      (* Break the cycle by sacrificing the requester; the caller must
         abort it, which dequeues the request and releases its locks. *)
      Obs.incr m_deadlocks;
      raise (Deadlock_victim txn_id)
    | None ->
      Obs.incr m_blocks;
      (* Guarded: Lock.blockers walks the lock table, so do not pay for
         it when event logging is off. *)
      if Event.logging () then
        Event.emit ~txn:txn_id
          (Event.Lock_wait
             {
               resource = Lock.resource_to_string resource;
               holders = Lock.blockers t.locks ~txn:txn_id;
             });
      raise (Blocked txn_id))

let table_of t name =
  match Catalog.find t.catalog name with
  | Some table -> table
  | None -> raise (Ent_sql.Eval.Eval_error ("unknown table " ^ name))

let record_write t txn table_name row before after =
  let w_seq = Atomic.fetch_and_add t.write_seq 1 + 1 in
  txn.writes <-
    { w_seq; w_table = table_name; w_row = row;
      w_before = before; w_after = after }
    :: txn.writes;
  txn.write_count <- txn.write_count + 1;
  log_record t
    (Write { txn = txn.id; table = table_name; row; before; after });
  emit t (Ev_write (txn.id, table_name, row))

let access_2pl t txn_id ~grounding ~lock_reads () : Ent_sql.Eval.access =
  let read_table name =
    (* Full scans take a table-level shared lock whether grounding or
       not: there is no finer lock that protects against phantoms. *)
    if lock_reads then acquire t txn_id (Lock.Table name) Lock.S;
    if grounding then begin
      let txn = find_txn t txn_id in
      if not (List.mem name txn.grounding_tables) then
        txn.grounding_tables <- name :: txn.grounding_tables;
      emit t (Ev_grounding_read (txn_id, name))
    end
    else emit t (Ev_read (txn_id, T_table name))
  in
  let read_rows name =
    (* Indexed lookups take an intention lock here plus row locks on the
       returned rows; grounding lookups escalate to a table lock. *)
    if lock_reads then
      if grounding then acquire t txn_id (Lock.Table name) Lock.S
      else acquire t txn_id (Lock.Table name) Lock.IS;
    if grounding then begin
      let txn = find_txn t txn_id in
      if not (List.mem name txn.grounding_tables) then
        txn.grounding_tables <- name :: txn.grounding_tables;
      emit t (Ev_grounding_read (txn_id, name))
    end
  in
  let lock_row name row =
    if lock_reads && not grounding then
      acquire t txn_id (Lock.Row (name, row)) Lock.S;
    if not grounding then emit t (Ev_read (txn_id, T_row (name, row)))
  in
  let write_locks name row =
    acquire t txn_id (Lock.Table name) Lock.IX;
    acquire t txn_id (Lock.Row (name, row)) Lock.X
  in
  {
    schema_of = (fun name -> Table.schema (table_of t name));
    scan =
      (fun name ->
        (* the table-level lock is taken up front; rows then stream
           without further locking *)
        read_table name;
        Table.to_seq (table_of t name));
    lookup =
      (fun name ~positions key ->
        read_rows name;
        (* row S locks attach to the stream: a consumer that stops
           early (LIMIT) locks only the rows it actually saw *)
        Seq.map
          (fun (id, row) ->
            lock_row name id;
            (id, row))
          (Table.lookup_seq (table_of t name) ~positions key));
    insert =
      (fun name row ->
        let txn = find_txn t txn_id in
        acquire t txn_id (Lock.Table name) Lock.IX;
        let id = Table.insert ~writer:txn_id (table_of t name) row in
        (match Lock.request t.locks ~txn:txn_id (Lock.Row (name, id)) Lock.X with
        | Lock.Granted -> ()
        | Lock.Waiting -> assert false (* fresh row: no competitors *));
        record_write t txn name id None (Some row);
        id);
    update =
      (fun name id row ->
        let txn = find_txn t txn_id in
        write_locks name id;
        match Table.update ~writer:txn_id (table_of t name) id row with
        | Some before -> record_write t txn name id (Some before) (Some row)
        | None -> raise (Ent_sql.Eval.Eval_error "update of missing row"));
    delete =
      (fun name id ->
        let txn = find_txn t txn_id in
        write_locks name id;
        match Table.delete ~writer:txn_id (table_of t name) id with
        | Some before -> record_write t txn name id (Some before) None
        | None -> raise (Ent_sql.Eval.Eval_error "delete of missing row"));
    create =
      (fun name schema ->
        (* DDL inside transactions is not part of the paper's model;
           execute it immediately and log it. *)
        ignore (create_table t name schema));
    create_index =
      (fun name columns ->
        let table = table_of t name in
        let schema = Table.schema table in
        let positions =
          List.map
            (fun c ->
              if Schema.mem schema c then Schema.index_of schema c
              else
                raise
                  (Ent_sql.Eval.Eval_error
                     (Printf.sprintf "CREATE INDEX: unknown column %s on %s" c name)))
            columns
        in
        Table.add_index table ~positions);
    create_ordered_index =
      (fun name column ->
        let table = table_of t name in
        let schema = Table.schema table in
        if not (Schema.mem schema column) then
          raise
            (Ent_sql.Eval.Eval_error
               (Printf.sprintf "CREATE ORDERED INDEX: unknown column %s on %s"
                  column name));
        Table.add_ordered_index table ~position:(Schema.index_of schema column));
    range =
      (fun name ~position ~lo ~hi ->
        (* like an indexed lookup: intention lock plus row locks *)
        read_rows name;
        Seq.map
          (fun (id, row) ->
            lock_row name id;
            (id, row))
          (Table.range_lookup_seq (table_of t name) ~position ~lo ~hi));
    has_range =
      (fun name position -> Table.has_ordered_index (table_of t name) ~position);
    drop = (fun name -> Catalog.drop t.catalog name);
  }

(* Snapshot data access: every read reconstructs the row state as of
   the transaction's begin stamp from the version chains and takes NO
   lock — the central MVCC payoff; grounding reads still register
   their quasi-read tables and emit grounding events, they just cannot
   block behind writers. Writes keep the 2PL write locks (IX + row X),
   tag the version chain with the writer, and leave conflicts with
   concurrently committed writers to commit-time first-committer-wins
   validation ({!validate_snapshot}); an update/delete whose victim
   row already vanished from the live table is doomed there anyway and
   raises [Si_conflict] immediately. *)
let access_snapshot t txn_id ~grounding () : Ent_sql.Eval.access =
  let begin_ts = (find_txn t txn_id).begin_ts in
  let visible = visible_of t txn_id begin_ts in
  let register_grounding name =
    let txn = find_txn t txn_id in
    if not (List.mem name txn.grounding_tables) then
      txn.grounding_tables <- name :: txn.grounding_tables;
    emit t (Ev_grounding_read (txn_id, name))
  in
  let row_events name seq =
    if grounding then seq
    else
      Seq.map
        (fun (id, row) ->
          emit t (Ev_read (txn_id, T_row (name, id)));
          (id, row))
        seq
  in
  let write_locks name row =
    acquire t txn_id (Lock.Table name) Lock.IX;
    acquire t txn_id (Lock.Row (name, row)) Lock.X
  in
  {
    schema_of = (fun name -> Table.schema (table_of t name));
    scan =
      (fun name ->
        if grounding then register_grounding name
        else emit t (Ev_read (txn_id, T_table name));
        Table.to_seq_at (table_of t name) ~visible);
    lookup =
      (fun name ~positions key ->
        if grounding then register_grounding name;
        row_events name
          (Table.lookup_seq_at (table_of t name) ~positions key ~visible));
    insert =
      (fun name row ->
        let txn = find_txn t txn_id in
        acquire t txn_id (Lock.Table name) Lock.IX;
        let id = Table.insert ~writer:txn_id (table_of t name) row in
        (match Lock.request t.locks ~txn:txn_id (Lock.Row (name, id)) Lock.X with
        | Lock.Granted -> ()
        | Lock.Waiting -> assert false (* fresh row: no competitors *));
        record_write t txn name id None (Some row);
        id);
    update =
      (fun name id row ->
        let txn = find_txn t txn_id in
        write_locks name id;
        match Table.update ~writer:txn_id (table_of t name) id row with
        | Some before -> record_write t txn name id (Some before) (Some row)
        | None -> raise (Si_conflict txn_id));
    delete =
      (fun name id ->
        let txn = find_txn t txn_id in
        write_locks name id;
        match Table.delete ~writer:txn_id (table_of t name) id with
        | Some before -> record_write t txn name id (Some before) None
        | None -> raise (Si_conflict txn_id));
    create =
      (fun name schema -> ignore (create_table t name schema));
    create_index =
      (fun name columns ->
        let table = table_of t name in
        let schema = Table.schema table in
        let positions =
          List.map
            (fun c ->
              if Schema.mem schema c then Schema.index_of schema c
              else
                raise
                  (Ent_sql.Eval.Eval_error
                     (Printf.sprintf "CREATE INDEX: unknown column %s on %s" c name)))
            columns
        in
        Table.add_index table ~positions);
    create_ordered_index =
      (fun name column ->
        let table = table_of t name in
        let schema = Table.schema table in
        if not (Schema.mem schema column) then
          raise
            (Ent_sql.Eval.Eval_error
               (Printf.sprintf "CREATE ORDERED INDEX: unknown column %s on %s"
                  column name));
        Table.add_ordered_index table ~position:(Schema.index_of schema column));
    range =
      (fun name ~position ~lo ~hi ->
        if grounding then register_grounding name;
        row_events name
          (Table.range_lookup_seq_at (table_of t name) ~position ~lo ~hi ~visible));
    has_range =
      (fun name position -> Table.has_ordered_index (table_of t name) ~position);
    drop = (fun name -> Catalog.drop t.catalog name);
  }

let access t txn_id ~grounding ?(lock_reads = true) () =
  match level_of t txn_id with
  | Snapshot -> access_snapshot t txn_id ~grounding ()
  | Serializable_2pl -> access_2pl t txn_id ~grounding ~lock_reads ()

(* Reproduce the locking side effects of a grounding computation
   without re-reading the data: used when a cached grounding is served,
   so a hit acquires exactly the table-S locks (and registers exactly
   the quasi-read tables) the recomputation would have. Raises
   [Blocked]/[Deadlock_victim] like any grounding read. *)
let touch_grounding_tables t txn_id ?(lock_reads = true) tables =
  List.iter
    (fun name ->
      ignore (table_of t name);
      if lock_reads then acquire t txn_id (Lock.Table name) Lock.S;
      let txn = find_txn t txn_id in
      if not (List.mem name txn.grounding_tables) then
        txn.grounding_tables <- name :: txn.grounding_tables;
      emit t (Ev_grounding_read (txn_id, name)))
    tables

let add_constraint t ~name predicate =
  t.constraints <- t.constraints @ [ (name, predicate) ]

let violated_constraint t =
  List.find_map
    (fun (name, predicate) -> if predicate t.catalog then None else Some name)
    t.constraints

let savepoint t txn_id = (find_txn t txn_id).write_count

(* Undo writes down to a savepoint, logging compensations so that
   redo-only recovery replays to the right state. *)
let rollback_to t txn_id sp =
  let txn = find_txn t txn_id in
  let rec undo () =
    if txn.write_count > sp then begin
      match txn.writes with
      | [] -> assert false
      | w :: rest ->
        txn.writes <- rest;
        txn.write_count <- txn.write_count - 1;
        Obs.incr m_undone;
        let table = table_of t w.w_table in
        (* compensations carry the aborting writer's tag too, so a
           snapshot that deems the txn visible sees write+undo as a
           pair and lands back on the pre-transaction image *)
        (match w.w_before, w.w_after with
        | None, Some _ -> ignore (Table.delete ~writer:txn_id table w.w_row)
        | Some before, Some _ ->
          ignore (Table.update ~writer:txn_id table w.w_row before)
        | Some before, None -> Table.restore ~writer:txn_id table w.w_row before
        | None, None -> ());
        log_record t
          (Write
             {
               txn = txn_id;
               table = w.w_table;
               row = w.w_row;
               before = w.w_after;
               after = w.w_before;
             });
        undo ()
    end
  in
  undo ()

let finish t txn =
  txn.finished <- true;
  let woken = Lock.release_all t.locks ~txn:txn.id in
  with_mu t.mu (fun () ->
      if txn.level = Snapshot then Hashtbl.remove t.snapshots txn.id;
      t.wakeups <- t.wakeups @ woken)

(* Undo one write (compensation-logged, writer-tagged like
   [rollback_to]). *)
let undo_write t txn_id (w : write) =
  Obs.incr m_undone;
  let table = table_of t w.w_table in
  (match w.w_before, w.w_after with
  | None, Some _ -> ignore (Table.delete ~writer:txn_id table w.w_row)
  | Some before, Some _ ->
    ignore (Table.update ~writer:txn_id table w.w_row before)
  | Some before, None -> Table.restore ~writer:txn_id table w.w_row before
  | None, None -> ());
  log_record t
    (Write
       {
         txn = txn_id;
         table = w.w_table;
         row = w.w_row;
         before = w.w_after;
         after = w.w_before;
       })

(* Abort a whole entanglement group. Group members share lock
   ownership, so their writes to the same row interleave; restoring
   before-images per member would resurrect overwritten values. Undo
   the MERGED write log of all members in reverse global order. *)
let abort_group t txn_ids =
  let members = List.filter (fun id -> is_active t id) txn_ids in
  let tagged =
    List.concat_map
      (fun id ->
        let txn = find_txn t id in
        List.map (fun w -> (id, w)) txn.writes)
      members
  in
  let ordered =
    List.sort (fun (_, a) (_, b) -> Int.compare b.w_seq a.w_seq) tagged
  in
  List.iter (fun (id, w) -> undo_write t id w) ordered;
  List.iter
    (fun id ->
      let txn = find_txn t id in
      txn.writes <- [];
      txn.write_count <- 0;
      log_record t (Abort id);
      emit t (Ev_abort id);
      Event.emit ~txn:id (Event.Abort { reason = "group" });
      Obs.incr m_aborts;
      finish t txn)
    members

(* First-committer-wins validation: a snapshot transaction may commit
   only if no other transaction committed a write to any of its written
   rows after its snapshot was taken. Returns the first conflicting
   (table, row), or [None] when the transaction may commit (always for
   2PL transactions — their row X locks already serialize writes). *)
let validate_snapshot t txn_id =
  let txn = find_txn t txn_id in
  if txn.level <> Snapshot then None
  else begin
    Obs.incr (Lazy.force m_si_validations);
    with_mu t.mu (fun () ->
        List.find_map
          (fun w ->
            match Hashtbl.find_opt t.last_write (w.w_table, w.w_row) with
            | Some stamp when stamp > txn.begin_ts ->
              Some (w.w_table, w.w_row)
            | _ -> None)
          txn.writes)
  end

let commit t txn_id =
  let txn = find_txn t txn_id in
  if Table.versioned_enabled () then begin
    let stamp = Atomic.fetch_and_add t.commit_stamp 1 + 1 in
    with_mu t.mu (fun () ->
        Hashtbl.replace t.committed_at txn_id stamp;
        List.iter
          (fun w -> Hashtbl.replace t.last_write (w.w_table, w.w_row) stamp)
          txn.writes)
  end;
  log_record t (Commit txn_id);
  emit t (Ev_commit txn_id);
  Event.emit ~txn:txn_id Event.Commit;
  Obs.incr m_commits;
  finish t txn

let abort t txn_id =
  let txn = find_txn t txn_id in
  rollback_to t txn_id 0;
  log_record t (Abort txn_id);
  emit t (Ev_abort txn_id);
  Event.emit ~txn:txn_id (Event.Abort { reason = "rollback" });
  Obs.incr m_aborts;
  finish t txn

(* Sharp checkpoint: only legal at quiescence. *)
let checkpoint t =
  let active =
    Hashtbl.fold (fun _ txn acc -> acc || not txn.finished) t.txns false
  in
  if active then
    invalid_arg "Engine.checkpoint: active transactions (sharp checkpoints only)";
  let tables =
    List.map
      (fun name ->
        let table = Catalog.find_exn t.catalog name in
        (name, schema_columns (Table.schema table), Table.to_list table))
      (Catalog.table_names t.catalog)
  in
  Obs.incr m_checkpoints;
  log_record t (Checkpoint { tables })

(* Post-crash boot: the catalog is the replayed store, the WAL
   continues from the crash image (durable records are not re-logged,
   so a crash during recovery loses nothing), transaction ids resume
   above the image's high-water mark, and a sharp checkpoint marks the
   recovery barrier — pre-crash entanglement groups and their victims
   stay behind it and cannot taint post-recovery analysis. *)
let recover records =
  let catalog, analysis = Recovery.replay records in
  let t = create ~wal:true catalog in
  (match t.wal with
  | Some wal -> Wal.restore wal records
  | None -> ());
  let high_water =
    List.fold_left
      (fun acc (r : Wal.record) ->
        match r with
        | Begin txn | Commit txn | Abort txn -> max acc txn
        | Write { txn; _ } -> max acc txn
        | Entangle_group { members; _ } -> List.fold_left max acc members
        | Create _ | Pool_snapshot _ | Checkpoint _ -> acc)
      0 records
  in
  t.next_txn <- high_water + 1;
  (* Version chains are volatile MVCC state, but [Recovery.replay]
     writes through the (process-global) versioned table layer when a
     snapshot transaction ever ran: drop them so the recovered engine
     starts from the durable images alone. *)
  Catalog.iter
    (fun _ table -> ignore (Table.gc_versions table ~obsolete:(fun _ -> true)))
    t.catalog;
  checkpoint t;
  (t, analysis)

let log_entangle_group t ~event ~members =
  log_record t (Entangle_group { event; members })

let set_lock_group t ~txn ~group = Lock.set_group t.locks ~txn ~group

let log_pool_snapshot t programs = log_record t (Pool_snapshot programs)

let take_wakeups t =
  let woken =
    with_mu t.mu (fun () ->
        let w = t.wakeups in
        t.wakeups <- [];
        w)
  in
  let woken = List.sort_uniq Int.compare woken in
  (* Only report transactions that are still alive and no longer
     waiting on anything. *)
  List.filter (fun id -> is_active t id && not (Lock.is_waiting t.locks ~txn:id)) woken

let grounding_reads t txn_id = (find_txn t txn_id).grounding_tables

(* Version-chain garbage collection. A chain entry is unreachable when
   its writer's effects are visible to every snapshot that will ever be
   taken: bootstrap writes, writes committed at or before the oldest
   live snapshot, and finished (committed-long-ago or aborted) writers.
   Also prunes the commit-stamp maps below the same horizon — safe
   because the visibility closure treats a missing, inactive writer as
   visible, which is exactly what pruning implies. *)
let gc_versions t =
  if Table.versioned_enabled () then begin
    let s_min =
      with_mu t.mu (fun () ->
          Hashtbl.fold
            (fun _ ts acc -> min ts acc)
            t.snapshots
            (Atomic.get t.commit_stamp))
    in
    let obsolete w =
      w = 0
      ||
      match with_mu t.mu (fun () -> Hashtbl.find_opt t.committed_at w) with
      | Some stamp -> stamp <= s_min
      | None -> not (is_active t w)
    in
    let removed =
      List.fold_left
        (fun acc name ->
          acc + Table.gc_versions (Catalog.find_exn t.catalog name) ~obsolete)
        0
        (Catalog.table_names t.catalog)
    in
    if removed > 0 then Obs.incr ~n:removed (Lazy.force m_mvcc_versions_gcd);
    with_mu t.mu (fun () ->
        let prune tbl =
          let dead =
            Hashtbl.fold
              (fun k stamp acc -> if stamp <= s_min then k :: acc else acc)
              tbl []
          in
          List.iter (Hashtbl.remove tbl) dead
        in
        prune t.committed_at;
        prune t.last_write);
    Obs.set
      (Lazy.force m_mvcc_chain_entries)
      (float_of_int
         (List.fold_left
            (fun acc name ->
              acc + Table.chain_entries (Catalog.find_exn t.catalog name))
            0
            (Catalog.table_names t.catalog)))
  end

(* Total retained version-chain entries across the catalog (0 at
   quiescence once {!gc_versions} ran — the entsim invariant). *)
let chain_entries t =
  List.fold_left
    (fun acc name -> acc + Table.chain_entries (Catalog.find_exn t.catalog name))
    0
    (Catalog.table_names t.catalog)
