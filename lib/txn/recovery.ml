open Ent_storage
module Obs = Ent_obs.Obs

let m_replays = Obs.counter "txn.recovery.replays"
let m_records = Obs.counter "txn.recovery.records_replayed"
let m_survivors = Obs.counter "txn.recovery.survivors"
let m_group_victims = Obs.counter "txn.recovery.group_victims"

type analysis = {
  committed : int list;
  aborted : int list;
  incomplete : int list;
  groups : int list list;
  survivors : int list;
  group_victims : int list;
  pool : string list;
}

module Int_set = Set.Make (Int)

(* Union-find over transaction ids, for merging entanglement groups. *)
module Uf = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find t x =
    match Hashtbl.find_opt t x with
    | None ->
      Hashtbl.replace t x x;
      x
    | Some parent when parent = x -> x
    | Some parent ->
      let root = find t parent in
      Hashtbl.replace t x root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let groups t =
    let by_root = Hashtbl.create 16 in
    Hashtbl.iter
      (fun x _ ->
        let r = find t x in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_root r) in
        Hashtbl.replace by_root r (x :: existing))
      t;
    Hashtbl.fold (fun _ members acc -> List.sort Int.compare members :: acc)
      by_root []
end

(* Records from the last sharp checkpoint onward (checkpoint included);
   everything earlier is superseded by its table images. *)
let tail_from_checkpoint records =
  let last_cp = ref (-1) in
  List.iteri
    (fun i (r : Wal.record) ->
      match r with
      | Checkpoint _ -> last_cp := i
      | _ -> ())
    records;
  if !last_cp < 0 then records
  else List.filteri (fun i _ -> i >= !last_cp) records

let analyze records =
  (* The dormant pool is middleware state orthogonal to checkpoints: a
     pool snapshot taken before the last checkpoint is still the
     current pool if none followed, so scan the whole log for it. *)
  let pool = ref [] in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Pool_snapshot programs -> pool := programs
      | _ -> ())
    records;
  let records = tail_from_checkpoint records in
  let committed = ref (Int_set.singleton 0) in
  let aborted = ref Int_set.empty in
  let begun = ref (Int_set.singleton 0) in
  let uf = Uf.create () in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Begin txn -> begun := Int_set.add txn !begun
      | Commit txn -> committed := Int_set.add txn !committed
      | Abort txn -> aborted := Int_set.add txn !aborted
      | Entangle_group { members; _ } -> (
        match members with
        | [] -> ()
        | first :: rest -> List.iter (fun m -> Uf.union uf first m) rest)
      | Pool_snapshot _ | Write _ | Create _ | Checkpoint _ -> ())
    records;
  let groups = Uf.groups uf in
  (* A committed transaction is a group victim when some member of its
     group is not committed. *)
  let initial_victims =
    List.concat_map
      (fun group ->
        if List.for_all (fun m -> Int_set.mem m !committed) group then []
        else List.filter (fun m -> Int_set.mem m !committed) group)
      groups
  in
  (* Cascade: a committed transaction whose write follows (on the same
     row) a write by a victim is itself a victim, transitively. *)
  let victims = ref (Int_set.of_list initial_victims) in
  let changed = ref true in
  while !changed do
    changed := false;
    let last_writer : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (r : Wal.record) ->
        match r with
        | Write { txn; table; row; _ } ->
          (match Hashtbl.find_opt last_writer (table, row) with
          | Some prev
            when Int_set.mem prev !victims
                 && Int_set.mem txn !committed
                 && (not (Int_set.mem txn !victims))
                 && prev <> txn ->
            victims := Int_set.add txn !victims;
            changed := true
          | _ -> ());
          Hashtbl.replace last_writer (table, row) txn
        | _ -> ())
      records
  done;
  let survivors = Int_set.diff !committed !victims in
  {
    committed = Int_set.elements !committed;
    aborted = Int_set.elements !aborted;
    incomplete =
      Int_set.elements
        (Int_set.diff !begun (Int_set.union !committed !aborted));
    groups;
    survivors = Int_set.elements survivors;
    group_victims = Int_set.elements !victims;
    pool = !pool;
  }

let replay records =
  let analysis = analyze records in
  Obs.incr m_replays;
  Obs.incr ~n:(List.length analysis.survivors) m_survivors;
  Obs.incr ~n:(List.length analysis.group_victims) m_group_victims;
  let records = tail_from_checkpoint records in
  Obs.incr ~n:(List.length records) m_records;
  let survivors = Int_set.of_list analysis.survivors in
  let catalog = Catalog.create () in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Checkpoint { tables } ->
        List.iter
          (fun (name, columns, rows) ->
            let schema =
              Schema.make
                (List.map (fun (cname, ty) -> { Schema.name = cname; ty }) columns)
            in
            let table = Catalog.create_table catalog name schema in
            List.iter (fun (id, row) -> Table.restore table id row) rows)
          tables
      | Create { table; columns } ->
        let schema =
          Schema.make (List.map (fun (name, ty) -> { Schema.name; ty }) columns)
        in
        ignore (Catalog.create_table catalog table schema)
      | Write { txn; table; row; before; after }
        when Int_set.mem txn survivors -> (
        let t = Catalog.find_exn catalog table in
        match before, after with
        | None, Some image -> Table.restore t row image
        | Some _, Some image -> ignore (Table.update t row image)
        | Some _, None -> ignore (Table.delete t row)
        | None, None -> ())
      | Write _ | Begin _ | Commit _ | Abort _ | Entangle_group _
      | Pool_snapshot _ -> ())
    records;
  (catalog, analysis)
