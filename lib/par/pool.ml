(* A hand-rolled fixed-size domain pool. The container deliberately has
   no domainslib, and the scheduler only needs one primitive anyway: a
   blocking indexed parallel-for with dynamic work stealing (tasks vary
   wildly in cost — a blocked transaction step is ~free, a grounding is
   not). So that is all we build.

   Protocol: the caller publishes one [job] under [mu] and bumps [gen];
   workers sleep on [cv] until they observe a generation newer than the
   last one they served. Item hand-out is a single fetch-and-add on
   [next], so the mutex is only touched at region start/end and for the
   completion count. The caller participates in the region and then
   waits on [done_cv] until [completed = total]. *)

type job = {
  run_one : int -> unit;
  total : int;
  next : int Atomic.t;
  mutable completed : int;
  mutable failed : exn option;
}

type t = {
  n_domains : int;
  mutable workers : unit Domain.t list;
  mu : Mutex.t;
  cv : Condition.t;           (* workers: a new job (or shutdown) is up *)
  done_cv : Condition.t;      (* caller: the current job has quiesced *)
  mutable job : job option;
  mutable gen : int;
  mutable shutdown : bool;
  busy : int Atomic.t;        (* domains currently inside a region *)
  busy_gauge : Ent_obs.Obs.gauge option;
      (* par.pool.busy_domains — registered only for a real multi-domain
         pool created while time-series sampling was on, so the
         deterministic default runs keep their metric snapshots
         byte-identical. *)
}

let domains t = t.n_domains

(* Pull items until the bag is empty. The first exception is recorded;
   later items still run (an abandoned item would hang [completed]). *)
let work_loop t job =
  (match t.busy_gauge with
  | Some g ->
    Ent_obs.Obs.set g (float_of_int (1 + Atomic.fetch_and_add t.busy 1))
  | None -> ());
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      (try job.run_one i
       with e ->
         Mutex.lock t.mu;
         if job.failed = None then job.failed <- Some e;
         Mutex.unlock t.mu);
      Mutex.lock t.mu;
      job.completed <- job.completed + 1;
      if job.completed = job.total then Condition.broadcast t.done_cv;
      Mutex.unlock t.mu;
      go ()
    end
  in
  go ();
  match t.busy_gauge with
  | Some g ->
    Ent_obs.Obs.set g (float_of_int (Atomic.fetch_and_add t.busy (-1) - 1))
  | None -> ()

let worker t =
  let last_gen = ref 0 in
  let rec serve () =
    Mutex.lock t.mu;
    while (not t.shutdown) && t.gen = !last_gen do
      Condition.wait t.cv t.mu
    done;
    if t.shutdown then Mutex.unlock t.mu
    else begin
      last_gen := t.gen;
      let job = t.job in
      Mutex.unlock t.mu;
      (match job with Some j -> work_loop t j | None -> ());
      serve ()
    end
  in
  serve ()

let create ~domains =
  let n_domains = max 1 domains in
  let t =
    { n_domains; workers = []; mu = Mutex.create ();
      cv = Condition.create (); done_cv = Condition.create ();
      job = None; gen = 0; shutdown = false;
      busy = Atomic.make 0;
      busy_gauge =
        (if n_domains > 1 && Ent_obs.Timeseries.enabled () then
           Some (Ent_obs.Obs.gauge "par.pool.busy_domains")
         else None) }
  in
  t.workers <-
    List.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let run_indexed t n f =
  if n <= 0 then ()
  else if t.n_domains = 1 || n = 1 then
    for i = 0 to n - 1 do f i done
  else begin
    let job =
      { run_one = f; total = n; next = Atomic.make 0;
        completed = 0; failed = None }
    in
    Mutex.lock t.mu;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    work_loop t job;
    Mutex.lock t.mu;
    while job.completed < job.total do
      Condition.wait t.done_cv t.mu
    done;
    t.job <- None;
    let failed = job.failed in
    Mutex.unlock t.mu;
    match failed with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mu;
  t.shutdown <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []
