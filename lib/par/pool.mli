(** A minimal fixed-size domain pool (Domainslib-style, stdlib only).

    The pool owns [domains - 1] worker domains; the caller participates
    in every parallel region, so [create ~domains:4] uses exactly four
    domains including the submitting one. With [domains <= 1] the pool
    spawns nothing and [run_indexed] degenerates to a sequential loop,
    which keeps the deterministic simulation mode bit-identical to the
    pre-parallel code path. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains.
    [domains] is clamped below at 1. *)

val domains : t -> int
(** Number of domains participating in parallel regions (workers + caller). *)

val run_indexed : t -> int -> (int -> unit) -> unit
(** [run_indexed pool n f] evaluates [f i] for every [0 <= i < n], with
    work items handed out dynamically across the pool's domains. The
    caller participates. Returns when all [n] items completed; if any
    item raised, one of the exceptions is re-raised in the caller after
    the region has quiesced. Not reentrant: a pool runs one region at a
    time, and [f] must not submit to the same pool. *)

val shutdown : t -> unit
(** Joins all worker domains. The pool must not be used afterwards.
    Idempotent. *)
