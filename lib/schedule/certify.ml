type violation = {
  code : string;
  detail : string;
}

type stats = {
  ops : int;
  txns : int;
  committed : int;
  aborted : int;
  edges : int;
  quasi_reads : int;
}

let max_violations = 200

(* --- per-object access index ---

   For conflict derivation we never need the operations themselves,
   only, per (object, transaction, read/write), the first and last
   position — a new operation at position p conflicts with a prior
   span iff [first < p] (edge towards the new op) or [last > p]
   (edge from it; possible for retroactively inserted quasi-reads).
   Objects are bucketed by group key, split into exact rows and
   whole-table spans; [Named] objects get their own key namespace
   since they never overlap tables. *)

type span = {
  mutable first : int;
  mutable last : int;
}

type side = {
  r : (int, span) Hashtbl.t;  (* txn -> read span *)
  w : (int, span) Hashtbl.t;  (* txn -> write span *)
}

type group = {
  rows : (int, side) Hashtbl.t;  (* row id -> spans *)
  whole : side;  (* table-level operations (scans, DDL) *)
  agg : side;  (* union of all row operations, for whole-op conflicts *)
}

type status =
  | Committed
  | Aborted

(* A discovered conflict (a, b): a's operation precedes b's and at
   least one side writes. It enters the committed conflict graph only
   once both endpoints commit. *)
type edge_state =
  | Pending
  | Active
  | Dead

type edge = {
  mutable state : edge_state;
  ewitness : string;
  (* true while every conflict folded into this edge is a pure
     read-write antidependency (earlier read, later write). A cycle of
     such edges among snapshot transactions is write-skew — permitted
     by SI, reported as a named anomaly rather than a violation. *)
  mutable rw_only : bool;
}

type ginfo = {
  mutable committed_member : int option;
  mutable aborted_member : int option;
  mutable g_reported : bool;
}

type quasi = {
  qtxn : int;
  qpos : int;
  qobj : History.obj;
  mutable armed : int;  (* position of the first invalidating write; -1 = none *)
}

type t = {
  mutable pos : int;
  mutable op_count : int;
  mutable quasi_count : int;
  seen_txns : (int, unit) Hashtbl.t;
  status : (int, status) Hashtbl.t;
  post_terminal_reported : (int, unit) Hashtbl.t;
  groups : (string, group) Hashtbl.t;
  (* conflicts *)
  potential : (int * int, edge) Hashtbl.t;
  incident : (int, (int * int) list ref) Hashtbl.t;
  succs : (int, int list ref) Hashtbl.t;
  mutable active_edges : int;
  (* grounding reads awaiting their entanglement, per txn: (pos, obj) *)
  ground_buffer : (int, (int * History.obj) list ref) Hashtbl.t;
  (* quasi-read stability tracking *)
  quasi_by_key : (string, quasi list ref) Hashtbl.t;
  quasi_by_txn_key : (int * string, quasi list ref) Hashtbl.t;
  (* dirty-read tracking *)
  writes_of : (int, (History.obj * int) list ref) Hashtbl.t;
  tainted : (int, string) Hashtbl.t;  (* committed-to-be readers of aborted writes *)
  (* entanglement groups *)
  ginfos : (int, ginfo) Hashtbl.t;
  groups_of_txn : (int, int list ref) Hashtbl.t;
  (* mixed-isolation tracking: declared level per transaction (2PL
     when absent), the snapshot anchor position for SI transactions
     (explicit via Ev_begin, else the first data operation), and
     commit positions for first-committer-wins auditing *)
  levels : (int, Ent_txn.Engine.level) Hashtbl.t;
  begin_pos : (int, int) Hashtbl.t;
  commit_pos : (int, int) Hashtbl.t;
  mutable violations : violation list;  (* newest first *)
  mutable violation_count : int;
  seen_violations : (string, unit) Hashtbl.t;
  (* SI-permitted anomalies: named, reported, but not failing *)
  mutable anomaly_list : violation list;  (* newest first *)
  mutable anomaly_count : int;
}

let create () =
  {
    pos = 0;
    op_count = 0;
    quasi_count = 0;
    seen_txns = Hashtbl.create 64;
    status = Hashtbl.create 64;
    post_terminal_reported = Hashtbl.create 8;
    groups = Hashtbl.create 16;
    potential = Hashtbl.create 256;
    incident = Hashtbl.create 64;
    succs = Hashtbl.create 64;
    active_edges = 0;
    ground_buffer = Hashtbl.create 32;
    quasi_by_key = Hashtbl.create 16;
    quasi_by_txn_key = Hashtbl.create 64;
    writes_of = Hashtbl.create 64;
    tainted = Hashtbl.create 8;
    ginfos = Hashtbl.create 32;
    groups_of_txn = Hashtbl.create 64;
    levels = Hashtbl.create 16;
    begin_pos = Hashtbl.create 16;
    commit_pos = Hashtbl.create 64;
    violations = [];
    violation_count = 0;
    seen_violations = Hashtbl.create 8;
    anomaly_list = [];
    anomaly_count = 0;
  }

let violate t code detail =
  let key = code ^ "\x00" ^ detail in
  if
    t.violation_count < max_violations
    && not (Hashtbl.mem t.seen_violations key)
  then begin
    Hashtbl.replace t.seen_violations key ();
    t.violations <- { code; detail } :: t.violations;
    t.violation_count <- t.violation_count + 1
  end

let anomaly t code detail =
  let key = "a\x00" ^ code ^ "\x00" ^ detail in
  if
    t.anomaly_count < max_violations
    && not (Hashtbl.mem t.seen_violations key)
  then begin
    Hashtbl.replace t.seen_violations key ();
    t.anomaly_list <- { code; detail } :: t.anomaly_list;
    t.anomaly_count <- t.anomaly_count + 1
  end

let violations t = List.rev t.violations
let anomalies t = List.rev t.anomaly_list
let ok t = t.violations = []

let set_level t txn level = Hashtbl.replace t.levels txn level

let is_si t txn =
  Hashtbl.find_opt t.levels txn = Some Ent_txn.Engine.Snapshot

let obj_str x = Format.asprintf "%a" History.pp_obj x

(* Group keys: tables and named objects live in disjoint namespaces
   (a [Named x] never overlaps a [Table x]). *)
let key_of_obj = function
  | History.Named s -> "n:" ^ s
  | History.Table tbl | History.Row (tbl, _) -> "t:" ^ tbl

let new_side () = { r = Hashtbl.create 8; w = Hashtbl.create 8 }

let group_for t key =
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
    let g = { rows = Hashtbl.create 16; whole = new_side (); agg = new_side () } in
    Hashtbl.add t.groups key g;
    g

let side_for_row g row =
  match Hashtbl.find_opt g.rows row with
  | Some s -> s
  | None ->
    let s = new_side () in
    Hashtbl.add g.rows row s;
    s

let touch tbl txn p =
  match Hashtbl.find_opt tbl txn with
  | Some s ->
    if p < s.first then s.first <- p;
    if p > s.last then s.last <- p
  | None -> Hashtbl.add tbl txn { first = p; last = p }

(* --- conflict edges and incremental cycle detection --- *)

let incident_of t txn =
  match Hashtbl.find_opt t.incident txn with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.incident txn l;
    l

let succs_of t txn =
  match Hashtbl.find_opt t.succs txn with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.succs txn l;
    l

(* On activation of a -> b: a path b ->* a in the committed graph
   closes a cycle through the new edge. DFS with parents reconstructs
   it for the witness. A cycle whose members all run under snapshot
   isolation and whose edges are all pure read-write antidependencies
   is write-skew — SI permits it, so it is reported as the named
   anomaly [si-write-skew] instead of failing certification. *)
let check_cycle t a b witness =
  let parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec dfs u =
    if u = a then true
    else
      List.exists
        (fun v ->
          if Hashtbl.mem parent v then false
          else begin
            Hashtbl.replace parent v u;
            dfs v
          end)
        !(succs_of t u)
  in
  Hashtbl.replace parent b b;
  if dfs b then begin
    let rec collect acc u = if u = b then u :: acc else collect (u :: acc) (Hashtbl.find parent u) in
    let path = collect [] a (* b ... a *) in
    let detail =
      Printf.sprintf "%s -> T%d (closing conflict: %s)"
        (String.concat " -> " (List.map (fun i -> "T" ^ string_of_int i) path))
        b witness
    in
    let rec cycle_edges = function
      | u :: (v :: _ as rest) -> (u, v) :: cycle_edges rest
      | [ last ] -> [ (last, b) ]
      | [] -> []
    in
    let all_rw =
      List.for_all
        (fun uv ->
          match Hashtbl.find_opt t.potential uv with
          | Some e -> e.rw_only
          | None -> false)
        (cycle_edges path)
    in
    if all_rw && List.for_all (is_si t) path then
      anomaly t "si-write-skew" detail
    else violate t "conflict-cycle" detail
  end

let activate t (a, b) (e : edge) =
  e.state <- Active;
  t.active_edges <- t.active_edges + 1;
  let s = succs_of t a in
  s := b :: !s;
  check_cycle t a b e.ewitness

let add_edge t ?(rw = false) a b witness =
  if a <> b then begin
    match Hashtbl.find_opt t.potential (a, b) with
    | Some e -> e.rw_only <- e.rw_only && rw
    | None -> (
      let status x = Hashtbl.find_opt t.status x in
      match status a, status b with
      | Some Aborted, _ | _, Some Aborted -> ()
      | sa, sb ->
        let e = { state = Pending; ewitness = witness; rw_only = rw } in
        Hashtbl.add t.potential (a, b) e;
        if sa = Some Committed && sb = Some Committed then activate t (a, b) e
        else begin
          (* park on the not-yet-committed endpoint(s) *)
          if sa = None then begin
            let l = incident_of t a in
            l := (a, b) :: !l
          end;
          if sb = None then begin
            let l = incident_of t b in
            l := (a, b) :: !l
          end
        end)
  end

(* --- data operations --- *)

type rw =
  | R  (* plain read *)
  | G  (* grounding read *)
  | Q  (* quasi-read (retroactive) *)
  | W

let is_read = function
  | R | G | Q -> true
  | W -> false

(* Scan one span table of potential conflict partners: every other
   transaction whose span starts before [p] conflicts towards the new
   operation, every one extending past [p] conflicts away from it.
   [other_is_write] says whether [spans] is a write-span table and
   [new_is_write] whether the new operation writes; a conflict is a
   pure read-write antidependency exactly when the earlier side reads
   and the later writes. *)
let scan_spans t ~txn ~p ~wit_new ~other_is_write ~new_is_write ~taint_reads
    spans =
  Hashtbl.iter
    (fun j (s : span) ->
      if j <> txn then begin
        if s.first < p then
          add_edge t ~rw:((not other_is_write) && new_is_write) j txn
            (Printf.sprintf "T%d@%d before %s" j s.first wit_new);
        if s.last > p then
          add_edge t ~rw:((not new_is_write) && other_is_write) txn j
            (Printf.sprintf "%s before T%d@%d" wit_new j s.last);
        if
          taint_reads && other_is_write && s.first < p
          && Hashtbl.find_opt t.status j = Some Aborted
          && not (Hashtbl.mem t.tainted txn)
        then
          Hashtbl.replace t.tainted txn
            (Printf.sprintf "read after aborted T%d's write (%s)" j wit_new)
      end)
    spans

let data_op t kind txn obj p =
  t.op_count <- t.op_count + 1;
  Hashtbl.replace t.seen_txns txn ();
  (* C.1 validity: terminated transactions stay terminated. *)
  (match Hashtbl.find_opt t.status txn with
  | Some _ when not (Hashtbl.mem t.post_terminal_reported txn) ->
    Hashtbl.replace t.post_terminal_reported txn ();
    violate t "post-terminal"
      (Printf.sprintf "T%d continues after its terminal operation (%s)" txn
         (obj_str obj))
  | _ -> ());
  (* C.1 validity: nothing but grounding reads between a grounding
     read and its entanglement. Quasi-reads are retroactive inserts,
     not actions of [txn], so they are exempt. *)
  (match kind with
  | R | W ->
    (match Hashtbl.find_opt t.ground_buffer txn with
    | Some l when !l <> [] ->
      violate t "ground-gap"
        (Printf.sprintf
           "T%d performs a read or write between a grounding read and its \
            entanglement (%s)"
           txn (obj_str obj))
    | _ -> ())
  | G | Q -> ());
  let key = key_of_obj obj in
  let g = group_for t key in
  let is_w = not (is_read kind) in
  let wit_new =
    Printf.sprintf "%s%d(%s)@%d" (if is_w then "W" else "R") txn (obj_str obj) p
  in
  let scan ?(taint = false) spans =
    scan_spans t ~txn ~p ~wit_new ~other_is_write:taint ~new_is_write:is_w
      ~taint_reads:(taint && is_read kind)
      spans
  in
  (match obj with
  | History.Row (_, row) ->
    let s = side_for_row g row in
    (* writes conflict with everything on the row and with table-level
       spans; reads only with writes *)
    scan ~taint:true s.w;
    scan ~taint:true g.whole.w;
    if is_w then begin
      scan s.r;
      scan g.whole.r
    end;
    let dest = if is_w then s.w else s.r in
    touch dest txn p;
    touch (if is_w then g.agg.w else g.agg.r) txn p
  | History.Table _ | History.Named _ ->
    scan ~taint:true g.whole.w;
    scan ~taint:true g.agg.w;
    if is_w then begin
      scan g.whole.r;
      scan g.agg.r
    end;
    touch (if is_w then g.whole.w else g.whole.r) txn p);
  if is_w then begin
    (let l =
       match Hashtbl.find_opt t.writes_of txn with
       | Some l -> l
       | None ->
         let l = ref [] in
         Hashtbl.add t.writes_of txn l;
         l
     in
     l := (obj, p) :: !l);
    (* arm quasi-reads this write invalidates *)
    match Hashtbl.find_opt t.quasi_by_key key with
    | Some records ->
      List.iter
        (fun q ->
          if q.armed < 0 && q.qtxn <> txn && q.qpos < p
             && History.overlaps q.qobj obj
          then q.armed <- p)
        !records
    | None -> ()
  end
  else begin
    (* a read of an object whose quasi-read was invalidated earlier —
       except under snapshot isolation, where every read of the
       transaction comes from the same begin-stamp snapshot and a
       foreign write cannot make a re-read observe a different state *)
    match Hashtbl.find_opt t.quasi_by_txn_key (txn, key) with
    | Some records when not (is_si t txn) ->
      List.iter
        (fun q ->
          if q.armed >= 0 && q.armed < p && History.overlaps q.qobj obj then
            violate t "unrepeatable-quasi-read"
              (Printf.sprintf
                 "T%d quasi-read %s@%d, a foreign write at %d invalidated it, \
                  and T%d read it again at %d"
                 txn (obj_str q.qobj) q.qpos q.armed txn p))
        !records
    | Some _ | None -> ()
  end

let buffer_of t txn =
  match Hashtbl.find_opt t.ground_buffer txn with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.ground_buffer txn l;
    l

(* --- terminal operations --- *)

let groups_of t txn =
  match Hashtbl.find_opt t.groups_of_txn txn with
  | Some l -> !l
  | None -> []

let check_widow t event (gi : ginfo) =
  match gi.committed_member, gi.aborted_member with
  | Some c, Some a when not gi.g_reported ->
    gi.g_reported <- true;
    violate t "widowed"
      (Printf.sprintf "entanglement E%d joins T%d (aborted) with T%d (committed)"
         event a c)
  | _ -> ()

let terminal t txn ~committed =
  Hashtbl.replace t.seen_txns txn ();
  (match Hashtbl.find_opt t.status txn with
  | Some _ ->
    violate t "double-terminal"
      (Printf.sprintf "T%d has several terminal operations" txn)
  | None -> ());
  Hashtbl.replace t.status txn (if committed then Committed else Aborted);
  if committed then Hashtbl.replace t.commit_pos txn t.pos;
  (* C.1: no commit with an unanswered grounding read *)
  (match Hashtbl.find_opt t.ground_buffer txn with
  | Some l when !l <> [] ->
    if committed then
      violate t "unanswered-ground"
        (Printf.sprintf "T%d commits with an unanswered grounding read" txn);
    l := []
  | _ -> ());
  if committed then begin
    (* C.3: tainted readers of aborted writes become violations now.
       For a snapshot reader the same evidence means its MVCC read
       observed an uncommitted (later aborted) version — a distinct
       defect, since version visibility should have hidden it. *)
    (match Hashtbl.find_opt t.tainted txn with
    | Some why ->
      violate t
        (if is_si t txn then "si-read-uncommitted" else "read-from-aborted")
        (Printf.sprintf "T%d committed after it %s" txn why)
    | None -> ());
    (* First-committer-wins audit: a snapshot transaction that commits
       a write to a row some other transaction committed after this
       one's snapshot was taken is a lost update the engine should
       have aborted. *)
    if is_si t txn then begin
      let my_begin =
        Option.value ~default:0 (Hashtbl.find_opt t.begin_pos txn)
      in
      let audit obj (w_spans : (int, span) Hashtbl.t) =
        Hashtbl.iter
          (fun j (_ : span) ->
            (* entanglement partners commit as one unit and share lock
               ownership; their interleaved writes are not lost
               updates *)
            let same_group =
              List.exists
                (fun e -> List.mem e (groups_of t j))
                (groups_of t txn)
            in
            if
              j <> txn && (not same_group)
              && Hashtbl.find_opt t.status j = Some Committed
            then
              match Hashtbl.find_opt t.commit_pos j with
              | Some cp when cp > my_begin ->
                violate t "si-lost-update"
                  (Printf.sprintf
                     "T%d (snapshot from %d) committed a write to %s \
                      although T%d committed its own write to it at %d"
                     txn my_begin (obj_str obj) j cp)
              | _ -> ())
          w_spans
      in
      match Hashtbl.find_opt t.writes_of txn with
      | Some writes ->
        List.iter
          (fun (obj, _) ->
            let g = group_for t (key_of_obj obj) in
            match obj with
            | History.Row (_, row) ->
              (* same-row writers, plus table-level writers (a whole-
                 table write overlaps every row) *)
              (match Hashtbl.find_opt g.rows row with
              | Some s -> audit obj s.w
              | None -> ());
              audit obj g.whole.w
            | History.Table _ ->
              (* a table-level write overlaps both the other table-
                 level writes and every row write *)
              audit obj g.whole.w;
              audit obj g.agg.w
            | History.Named _ ->
              (* the synthetic notation's single-cell objects *)
              audit obj g.whole.w)
          !writes
      | None -> ()
    end;
    (* activate conflict edges whose other endpoint already committed *)
    match Hashtbl.find_opt t.incident txn with
    | Some l ->
      List.iter
        (fun (a, b) ->
          match Hashtbl.find_opt t.potential (a, b) with
          | Some e when e.state = Pending ->
            let other = if a = txn then b else a in
            if Hashtbl.find_opt t.status other = Some Committed then
              activate t (a, b) e
          | _ -> ())
        !l;
      Hashtbl.remove t.incident txn
    | None -> ()
  end
  else begin
    (* edges through an aborted transaction never activate *)
    (match Hashtbl.find_opt t.incident txn with
    | Some l ->
      List.iter
        (fun ab ->
          match Hashtbl.find_opt t.potential ab with
          | Some e -> e.state <- Dead
          | None -> ())
        !l;
      Hashtbl.remove t.incident txn
    | None -> ());
    (* C.3: committed transactions that already read this one's writes *)
    match Hashtbl.find_opt t.writes_of txn with
    | Some writes ->
      List.iter
        (fun (obj, wpos) ->
          let g = group_for t (key_of_obj obj) in
          let readers spans f =
            Hashtbl.iter
              (fun j (s : span) -> if j <> txn && s.last > wpos then f j)
              spans
          in
          let consider j =
            let why =
              Printf.sprintf "read %s after aborted T%d wrote it at %d"
                (obj_str obj) txn wpos
            in
            match Hashtbl.find_opt t.status j with
            | Some Committed ->
              violate t
                (if is_si t j then "si-read-uncommitted"
                 else "read-from-aborted")
                (Printf.sprintf "T%d committed after it %s" j why)
            | Some Aborted -> ()
            | None ->
              if not (Hashtbl.mem t.tainted j) then
                Hashtbl.replace t.tainted j why
          in
          match obj with
          | History.Row (_, row) ->
            (match Hashtbl.find_opt g.rows row with
            | Some s -> readers s.r consider
            | None -> ());
            readers g.whole.r consider
          | History.Table _ | History.Named _ ->
            readers g.whole.r consider;
            readers g.agg.r consider)
        !writes
    | None -> ()
  end;
  (* C.4: widowed entanglement groups *)
  List.iter
    (fun event ->
      match Hashtbl.find_opt t.ginfos event with
      | Some gi ->
        if committed then begin
          if gi.committed_member = None then gi.committed_member <- Some txn
        end
        else if gi.aborted_member = None then gi.aborted_member <- Some txn;
        check_widow t event gi
      | None -> ())
    (groups_of t txn)

(* --- entanglement --- *)

let entangle t event participants =
  (* group bookkeeping, seeded from any already-terminated members
     (only possible in hand-written or mutated histories) *)
  let gi =
    {
      committed_member =
        List.find_opt (fun i -> Hashtbl.find_opt t.status i = Some Committed)
          participants;
      aborted_member =
        List.find_opt (fun i -> Hashtbl.find_opt t.status i = Some Aborted)
          participants;
      g_reported = false;
    }
  in
  Hashtbl.replace t.ginfos event gi;
  List.iter
    (fun i ->
      let l =
        match Hashtbl.find_opt t.groups_of_txn i with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add t.groups_of_txn i l;
          l
      in
      l := event :: !l)
    participants;
  check_widow t event gi;
  (* expand buffered grounding reads into quasi-reads of the other
     participants, at the grounding read's original position *)
  List.iter
    (fun j ->
      match Hashtbl.find_opt t.ground_buffer j with
      | Some buffered ->
        List.iter
          (fun (p, x) ->
            List.iter
              (fun i ->
                if i <> j then begin
                  t.quasi_count <- t.quasi_count + 1;
                  let q = { qtxn = i; qpos = p; qobj = x; armed = -1 } in
                  let key = key_of_obj x in
                  let push tbl k =
                    match Hashtbl.find_opt tbl k with
                    | Some l -> l := q :: !l
                    | None -> Hashtbl.add tbl k (ref [ q ])
                  in
                  push t.quasi_by_key key;
                  push t.quasi_by_txn_key (i, key);
                  data_op t Q i x p
                end)
              participants)
          !buffered;
        buffered := []
      | None -> ())
    participants

(* --- public entry points --- *)

let next_pos t =
  t.pos <- t.pos + 1;
  t.pos

(* The schedule position an operation of [txn] is judged at. Snapshot
   transactions read from their begin-stamp snapshot, so every read is
   repositioned to the snapshot anchor — the Ev_begin position when
   the stream carries begins, else the transaction's first operation.
   Writes stay at their live position (they hit the live table). *)
let read_pos t txn p =
  if is_si t txn then begin
    match Hashtbl.find_opt t.begin_pos txn with
    | Some b -> b
    | None ->
      Hashtbl.replace t.begin_pos txn p;
      p
  end
  else p

let anchor t txn p =
  if is_si t txn && not (Hashtbl.mem t.begin_pos txn) then
    Hashtbl.replace t.begin_pos txn p

let on_op t (op : History.op) =
  match op with
  | Read (i, x) ->
    let p = next_pos t in
    data_op t R i x (read_pos t i p)
  | Ground_read (i, x) ->
    let p = read_pos t i (next_pos t) in
    let l = buffer_of t i in
    l := !l @ [ (p, x) ];
    data_op t G i x p
  | Quasi_read (i, x) ->
    (* pre-expanded input (e.g. a checked file): track it like one the
       certifier expanded itself *)
    t.quasi_count <- t.quasi_count + 1;
    let p = next_pos t in
    let q = { qtxn = i; qpos = p; qobj = x; armed = -1 } in
    let key = key_of_obj x in
    let push tbl k =
      match Hashtbl.find_opt tbl k with
      | Some l -> l := q :: !l
      | None -> Hashtbl.add tbl k (ref [ q ])
    in
    push t.quasi_by_key key;
    push t.quasi_by_txn_key (i, key);
    data_op t Q i x p
  | Write (i, x) ->
    let p = next_pos t in
    anchor t i p;
    data_op t W i x p
  | Entangle (k, participants) ->
    ignore (next_pos t);
    entangle t k participants
  | Commit i ->
    ignore (next_pos t);
    terminal t i ~committed:true
  | Abort i ->
    ignore (next_pos t);
    terminal t i ~committed:false

let on_engine_event t (ev : Ent_txn.Engine.event) =
  match ev with
  | Ev_read (txn, T_table table) -> on_op t (History.Read (txn, Table table))
  | Ev_read (txn, T_row (table, row)) ->
    on_op t (History.Read (txn, Row (table, row)))
  | Ev_grounding_read (txn, table) ->
    on_op t (History.Ground_read (txn, Table table))
  | Ev_write (txn, table, row) -> on_op t (History.Write (txn, Row (table, row)))
  | Ev_commit txn -> on_op t (History.Commit txn)
  | Ev_abort txn -> on_op t (History.Abort txn)
  | Ev_begin (txn, level) ->
    (* not a schedule position of its own; it declares the level and,
       for snapshot transactions, pins the snapshot anchor *)
    set_level t txn level;
    if level = Ent_txn.Engine.Snapshot then
      Hashtbl.replace t.begin_pos txn t.pos

let on_entangle t ~event participants =
  on_op t (History.Entangle (event, List.map fst participants))

let stats t =
  let committed = ref 0 and aborted = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      match s with
      | Committed -> incr committed
      | Aborted -> incr aborted)
    t.status;
  {
    ops = t.op_count;
    txns = Hashtbl.length t.seen_txns;
    committed = !committed;
    aborted = !aborted;
    edges = t.active_edges;
    quasi_reads = t.quasi_count;
  }

let check_history ?(levels = []) history =
  let t = create () in
  List.iter (fun (txn, level) -> set_level t txn level) levels;
  List.iter (on_op t) history;
  violations t

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.code v.detail

let pp_report ppf t =
  let s = stats t in
  (match violations t with
  | [] -> Format.fprintf ppf "certify: ok"
  | vs ->
    Format.fprintf ppf "certify: %d violation%s" (List.length vs)
      (if List.length vs = 1 then "" else "s"));
  Format.fprintf ppf
    " (%d ops, %d committed, %d aborted, %d conflict edges, %d quasi-reads)"
    s.ops s.committed s.aborted s.edges s.quasi_reads;
  List.iter
    (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v)
    (violations t);
  List.iter
    (fun a -> Format.fprintf ppf "@\n  (anomaly, allowed by SI) %a" pp_violation a)
    (anomalies t)
