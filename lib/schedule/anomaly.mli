(** Entangled isolation, anomaly-based (§C.2.2).

    A schedule is entangled-isolated (Definition C.5) when it satisfies:
    - Requirement C.2 (no cycles): acyclic conflict graph over
      committed transactions, quasi-reads made explicit;
    - Requirement C.3 (no read-from-aborted): no committed transaction
      reads an object after an aborted transaction wrote it;
    - Requirement C.4 (no widowed transactions): no entanglement
      operation whose participants include both an aborted and a
      committed transaction.

    The individual detectors are exposed for tests and for the anomaly
    demonstrations of Figure 3. *)

(** Requirement C.2. Expands quasi-reads itself. *)
val req_no_cycles : History.t -> bool

(** Requirement C.3. *)
val req_no_read_from_aborted : History.t -> bool

(** Requirement C.4. *)
val req_no_widowed : History.t -> bool

(** Definition C.5. *)
val entangled_isolated : History.t -> bool

(** Demonstration finders (subsumed by the requirements above but
    useful to point at a specific anomaly):
    a witness for a widowed transaction is [(aborted, committed)]
    sharing an entanglement operation. *)
val find_widowed : History.t -> (int * int) option

(** A witness for an unrepeatable quasi-read: [(txn, obj)] such that
    txn quasi-reads obj, another transaction writes obj, and txn then
    reads obj again (Figure 3b: Mickey, Airlines). Expands quasi-reads
    itself. *)
val find_unrepeatable_quasi_read : History.t -> (int * History.obj) option

(** A dirty read: [(writer, reader)] where the reader observed a write
    by a transaction that had not yet terminated (and later aborted). *)
val find_dirty_read : History.t -> (int * int) option

(** As {!find_dirty_read}, also naming the object the reader observed. *)
val find_dirty_read_witness : History.t -> (int * int * History.obj) option

(** Which anomaly classes a schedule exhibits — the basis for the
    paper's relaxed isolation levels (§3.3.1: lower levels permit "a
    specific subset of the above anomalies"). *)
type report = {
  conflict_cycle : bool;
  read_from_aborted : bool;
  widowed : bool;
  unrepeatable_quasi_read : bool;
}

val report : History.t -> report

(** The strongest level a schedule satisfies, by permitted-anomaly
    subset: [`Full] (none — Definition C.5), [`No_widow] (only
    widowed transactions excluded), [`Loose] (anything else). *)
val level : History.t -> [ `Full | `No_widow | `Loose ]

val pp_report : Format.formatter -> report -> unit
