(** Online schedule certification: a sanitizer for the scheduler.

    Subscribe {!on_engine_event} / {!on_entangle} next to a
    {!Recorder} (or feed a complete schedule through {!check_history})
    and the certifier maintains the committed-prefix conflict graph
    incrementally, flagging — as the run unfolds, without retaining
    the operation history — every condition the offline Appendix C
    checker ({!Ent_analysis.Histcheck}) would reject:

    - [conflict-cycle]: the conflict graph over committed transactions
      (quasi-reads expanded, C.2) acquired a cycle;
    - [read-from-aborted]: a committed transaction read an object after
      an aborted transaction wrote it (C.3);
    - [widowed]: an entanglement group with both an aborted and a
      committed member (C.4);
    - [unrepeatable-quasi-read]: a quasi-read was invalidated by a
      foreign write and then re-read (Figure 3b);
    - [unanswered-ground]: a transaction committed between a grounding
      read and its entanglement (C.1 validity);
    - [ground-gap]: a read or write between a grounding read and its
      entanglement (C.1 validity);
    - [post-terminal] / [double-terminal]: operations after, or more
      than one, terminal operation (C.1 validity).

    Instead of the history, the certifier keeps per-object first/last
    access positions per transaction, so memory is bounded by (live
    objects x touching transactions), not by run length. Conflict
    edges activate when both endpoints commit; each activation runs an
    incremental reachability check, so a cycle is reported at the
    commit that closes it. *)

type violation = {
  code : string;
  detail : string;
}

type stats = {
  ops : int;  (** data operations observed (quasi-reads included) *)
  txns : int;  (** distinct transactions seen *)
  committed : int;
  aborted : int;
  edges : int;  (** active conflict edges between committed transactions *)
  quasi_reads : int;
}

type t

val create : unit -> t

(** Feed one schedule operation. Operations must arrive in schedule
    order; [Entangle] expands the participants' buffered grounding
    reads into quasi-reads retroactively, exactly like
    {!History.expand_quasi_reads}. *)
val on_op : t -> History.op -> unit

(** Adapter for [Ent_txn.Engine.set_on_event] — same event mapping as
    {!Recorder.on_engine_event}. *)
val on_engine_event : t -> Ent_txn.Engine.event -> unit

(** Adapter for the scheduler's entanglement hook — same payload as
    {!Recorder.on_entangle}. *)
val on_entangle : t -> event:int -> (int * string list) list -> unit

(** Violations found so far, in detection order (deduplicated; at most
    {!max_violations} retained). *)
val violations : t -> violation list

val max_violations : int
val ok : t -> bool
val stats : t -> stats

(** Replay a complete recorded history through a fresh certifier —
    the offline entry point (mutation tests, [entlint]). *)
val check_history : History.t -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** One-paragraph certification report: ok/violation count, stats,
    then each violation on its own line. *)
val pp_report : Format.formatter -> t -> unit
