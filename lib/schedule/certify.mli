(** Online schedule certification: a sanitizer for the scheduler.

    Subscribe {!on_engine_event} / {!on_entangle} next to a
    {!Recorder} (or feed a complete schedule through {!check_history})
    and the certifier maintains the committed-prefix conflict graph
    incrementally, flagging — as the run unfolds, without retaining
    the operation history — every condition the offline Appendix C
    checker ({!Ent_analysis.Histcheck}) would reject:

    - [conflict-cycle]: the conflict graph over committed transactions
      (quasi-reads expanded, C.2) acquired a cycle;
    - [read-from-aborted]: a committed transaction read an object after
      an aborted transaction wrote it (C.3);
    - [widowed]: an entanglement group with both an aborted and a
      committed member (C.4);
    - [unrepeatable-quasi-read]: a quasi-read was invalidated by a
      foreign write and then re-read (Figure 3b);
    - [unanswered-ground]: a transaction committed between a grounding
      read and its entanglement (C.1 validity);
    - [ground-gap]: a read or write between a grounding read and its
      entanglement (C.1 validity);
    - [post-terminal] / [double-terminal]: operations after, or more
      than one, terminal operation (C.1 validity).

    {b Mixed isolation levels.} Transactions declared as
    {!Ent_txn.Engine.Snapshot} (via [Ev_begin], {!set_level} or the
    [levels] argument of {!check_history}) are judged against snapshot
    isolation instead of strict serializability: their reads are
    repositioned to the snapshot anchor (the begin position, or the
    first operation when the stream carries no begins), re-reads after
    a foreign write are not unrepeatable (same snapshot), and two SI
    checks are added — [si-lost-update], a committed SI write to a row
    another transaction committed after the snapshot was taken
    (first-committer-wins must have aborted it), and
    [si-read-uncommitted], the SI rename of [read-from-aborted]
    (version visibility should have hidden the aborted write). A
    conflict cycle whose members are all SI and whose edges are all
    pure read-write antidependencies is write-skew — allowed by SI —
    and is reported through {!anomalies} as [si-write-skew] without
    failing certification.

    Instead of the history, the certifier keeps per-object first/last
    access positions per transaction, so memory is bounded by (live
    objects x touching transactions), not by run length. Conflict
    edges activate when both endpoints commit; each activation runs an
    incremental reachability check, so a cycle is reported at the
    commit that closes it. *)

type violation = {
  code : string;
  detail : string;
}

type stats = {
  ops : int;  (** data operations observed (quasi-reads included) *)
  txns : int;  (** distinct transactions seen *)
  committed : int;
  aborted : int;
  edges : int;  (** active conflict edges between committed transactions *)
  quasi_reads : int;
}

type t

val create : unit -> t

(** Feed one schedule operation. Operations must arrive in schedule
    order; [Entangle] expands the participants' buffered grounding
    reads into quasi-reads retroactively, exactly like
    {!History.expand_quasi_reads}. *)
val on_op : t -> History.op -> unit

(** Adapter for [Ent_txn.Engine.set_on_event] — same event mapping as
    {!Recorder.on_engine_event}. *)
val on_engine_event : t -> Ent_txn.Engine.event -> unit

(** Adapter for the scheduler's entanglement hook — same payload as
    {!Recorder.on_entangle}. *)
val on_entangle : t -> event:int -> (int * string list) list -> unit

(** Declare a transaction's isolation level (normally learned from
    [Ev_begin]; explicit declaration serves offline histories). *)
val set_level : t -> int -> Ent_txn.Engine.level -> unit

(** Violations found so far, in detection order (deduplicated; at most
    {!max_violations} retained). *)
val violations : t -> violation list

(** SI-permitted anomalies ([si-write-skew]) found so far: named and
    reported, but not certification failures — {!ok} ignores them. *)
val anomalies : t -> violation list

val max_violations : int
val ok : t -> bool
val stats : t -> stats

(** Replay a complete recorded history through a fresh certifier —
    the offline entry point (mutation tests, [entlint]). [levels]
    declares per-transaction isolation ahead of replay (2PL when
    absent). *)
val check_history :
  ?levels:(int * Ent_txn.Engine.level) list -> History.t -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** One-paragraph certification report: ok/violation count, stats,
    then each violation on its own line. *)
val pp_report : Format.formatter -> t -> unit
