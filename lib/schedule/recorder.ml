type t = {
  mutable ops : History.op list;  (* newest first *)
  mutable len : int;
  cap : int option;
  sink : (History.op -> unit) option;
  mutable dropped_count : int;
}

let create ?cap ?sink () =
  (match cap with
  | Some c when c < 1 -> invalid_arg "Recorder.create: cap must be positive"
  | _ -> ());
  { ops = []; len = 0; cap; sink; dropped_count = 0 }

(* With a cap, let the list grow to 2*cap and then cut it back to the
   newest cap operations — amortized O(1) per push, never retaining
   more than 2*cap. *)
let push t op =
  (match t.sink with
  | Some f -> f op
  | None -> ());
  t.ops <- op :: t.ops;
  t.len <- t.len + 1;
  match t.cap with
  | Some cap when t.len >= 2 * cap ->
    t.ops <- List.filteri (fun i _ -> i < cap) t.ops;
    t.dropped_count <- t.dropped_count + (t.len - cap);
    t.len <- cap
  | _ -> ()

let dropped t = t.dropped_count

let on_engine_event t (ev : Ent_txn.Engine.event) =
  match ev with
  | Ev_read (txn, T_table table) -> push t (History.Read (txn, Table table))
  | Ev_read (txn, T_row (table, row)) -> push t (History.Read (txn, Row (table, row)))
  | Ev_grounding_read (txn, table) -> push t (History.Ground_read (txn, Table table))
  | Ev_write (txn, table, row) -> push t (History.Write (txn, Row (table, row)))
  | Ev_commit txn -> push t (History.Commit txn)
  | Ev_abort txn -> push t (History.Abort txn)
  | Ev_begin _ -> ()

let on_entangle t ~event participants =
  push t (History.Entangle (event, List.map fst participants))

let history t = List.rev t.ops

let completed_history t =
  let all = history t in
  let terminated = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace terminated i ())
    (History.committed all @ History.aborted all);
  let is_terminated i = Hashtbl.mem terminated i in
  List.filter_map
    (fun (op : History.op) ->
      match op with
      | Entangle (k, participants) ->
        let live = List.filter is_terminated participants in
        if live = [] then None else Some (History.Entangle (k, live))
      | op ->
        if List.for_all is_terminated (History.txns_of_op op) then Some op
        else None)
    all
