(** Entangled transaction schedules (Appendix C.1).

    A schedule is a sequence of read, grounding-read, quasi-read,
    write, entangle, commit and abort operations tagged with
    transaction ids. Objects carry enough structure to express both the
    synthetic histories of the property tests (named objects) and the
    recorded histories of real executions (tables and rows, where a
    table-level read overlaps every row of that table). *)

type obj =
  | Named of string  (** abstract object, synthetic tests *)
  | Table of string
  | Row of string * int

(** Do two objects denote overlapping data (for conflicts)? A [Table]
    overlaps itself and every [Row] of the same table. *)
val overlaps : obj -> obj -> bool

(** Objects can only overlap when they share this key (the table name,
    or the name of a [Named] object) — the partition used by the
    checkers to avoid quadratic scans. *)
val group_key : obj -> string

type op =
  | Read of int * obj
  | Ground_read of int * obj
  | Quasi_read of int * obj
  | Write of int * obj
  | Entangle of int * int list  (** (event id, participant txns) *)
  | Commit of int
  | Abort of int

type t = op list

(** The transaction an operation belongs to ([Entangle] belongs to all
    its participants; this returns them all). *)
val txns_of_op : op -> int list

val txns : t -> int list
val committed : t -> int list
val aborted : t -> int list

(** The §C.1 validity constraints; empty list = valid schedule:
    - every transaction has exactly one of commit/abort, as its last op;
    - every grounding read is followed by an entangle (involving the
      transaction) or an abort;
    - between a grounding read and that entangle/abort the transaction
      performs only further grounding reads (quasi-reads are injected
      by the system, so they are exempt). *)
val validity_errors : t -> string list

(** Make quasi-reads explicit (§C.2.1): for every entanglement
    operation, every participant quasi-reads (simultaneously, i.e.
    immediately after) each grounding read of every other participant
    associated with that operation. A grounding read with no subsequent
    entangle operation induces no quasi-reads. Existing quasi-reads are
    preserved. *)
val expand_quasi_reads : t -> t

val pp_obj : Format.formatter -> obj -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
