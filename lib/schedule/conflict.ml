type t = {
  nodes : int list;
  edges : (int * int) list;
}

let read_write_of (op : History.op) =
  match op with
  | Read (i, x) | Ground_read (i, x) | Quasi_read (i, x) -> Some (i, x, false)
  | Write (i, x) -> Some (i, x, true)
  | Entangle _ | Commit _ | Abort _ -> None

(* Objects can only overlap within the same table (or the same Named
   object), so group data operations by that key; within a group only
   pairs involving at least one write can conflict, so it suffices to
   compare every write against the group. This keeps construction near
   O(ops + writes * group size) instead of O(ops^2) — recorded
   histories of benchmark workloads reach hundreds of thousands of
   operations. *)
let of_schedule schedule =
  let committed = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace committed i ()) (History.committed schedule);
  let groups : (string, (int * int * History.obj * bool) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let position = ref 0 in
  List.iter
    (fun op ->
      match read_write_of op with
      | Some (txn, obj, is_write) when Hashtbl.mem committed txn ->
        incr position;
        let key = History.group_key obj in
        let group =
          match Hashtbl.find_opt groups key with
          | Some g -> g
          | None ->
            let g = ref [] in
            Hashtbl.add groups key g;
            g
        in
        group := (!position, txn, obj, is_write) :: !group
      | Some _ | None -> ())
    schedule;
  let edge_set = Hashtbl.create 64 in
  let add_edge a b = if a <> b then Hashtbl.replace edge_set (a, b) () in
  Hashtbl.iter
    (fun _ group ->
      let ops = !group in  (* newest first *)
      let writes = List.filter (fun (_, _, _, w) -> w) ops in
      List.iter
        (fun (wpos, wtxn, wobj, _) ->
          List.iter
            (fun (opos, otxn, oobj, _) ->
              if otxn <> wtxn && History.overlaps wobj oobj then
                if opos < wpos then add_edge otxn wtxn
                else if opos > wpos then add_edge wtxn otxn)
            ops)
        writes)
    groups;
  {
    nodes = History.committed schedule;
    edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edge_set []);
  }

let nodes t = t.nodes
let edges t = t.edges

let successors t i =
  List.filter_map (fun (a, b) -> if a = i then Some b else None) t.edges

let topo_order t =
  (* Kahn's algorithm; deterministic (lowest id first). *)
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) t.nodes;
  List.iter
    (fun (_, b) -> Hashtbl.replace in_degree b (1 + Hashtbl.find in_degree b))
    t.edges;
  let rec go order remaining =
    if remaining = [] then Some (List.rev order)
    else
      let ready =
        List.filter (fun n -> Hashtbl.find in_degree n = 0) remaining
      in
      match List.sort Int.compare ready with
      | [] -> None
      | n :: _ ->
        List.iter
          (fun s -> Hashtbl.replace in_degree s (Hashtbl.find in_degree s - 1))
          (successors t n);
        go (n :: order) (List.filter (fun m -> m <> n) remaining)
  in
  go [] t.nodes

let has_cycle t = topo_order t = None

let find_cycle t =
  (* DFS with grey/black colouring; a back edge u -> v closes the cycle
     v -> ... -> u -> v, reconstructed through DFS parents. *)
  let color : (int, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let result = ref None in
  let rec dfs u =
    Hashtbl.replace color u `Grey;
    List.iter
      (fun v ->
        if !result = None then
          match Hashtbl.find_opt color v with
          | Some `Grey ->
            let rec collect acc w =
              if w = v then w :: acc else collect (w :: acc) (Hashtbl.find parent w)
            in
            result := Some (collect [] u)
          | Some `Black -> ()
          | None ->
            Hashtbl.replace parent v u;
            dfs v)
      (successors t u);
    Hashtbl.replace color u `Black
  in
  List.iter
    (fun n -> if !result = None && not (Hashtbl.mem color n) then dfs n)
    t.nodes;
  !result
