(** Recording real executions as formal schedules.

    Subscribe {!on_engine_event} to [Ent_txn.Engine.set_on_event] and
    {!on_entangle} to the scheduler's entanglement hook; {!history}
    then returns the execution as a {!History.t} (quasi-reads not yet
    expanded — use {!History.expand_quasi_reads}). *)

type t

(** [create ?cap ?sink ()]. With [~cap:n] the recorder retains at most
    the [2n] newest operations (cut back to [n] amortized), so memory
    stays bounded on long runs — {!history} is then a suffix and
    {!dropped} counts what was discarded. [~sink] streams every
    operation as it is recorded (before any truncation), e.g. into
    {!Certify.on_op}; combine both for bounded-memory certified runs.

    @raise Invalid_argument if [cap < 1]. *)
val create : ?cap:int -> ?sink:(History.op -> unit) -> unit -> t

val on_engine_event : t -> Ent_txn.Engine.event -> unit

(** [on_entangle t ~event participants] where each participant is
    [(txn, grounding_tables)] — matching the scheduler hook's payload. *)
val on_entangle : t -> event:int -> (int * string list) list -> unit

(** Operations discarded so far under [cap] (0 without a cap). *)
val dropped : t -> int

(** Operations recorded so far, oldest first. Transactions still
    running have no terminal operation yet; filter or complete before
    validity checking. With a [cap] this is only the retained suffix —
    check {!dropped} before treating it as complete. *)
val history : t -> History.t

(** The recorded history restricted to transactions that terminated,
    i.e. a complete schedule suitable for the checkers. *)
val completed_history : t -> History.t
