(** Conflict graphs over the committed transactions of a schedule
    (§C.2.1): nodes are committed transaction ids; an edge i -> j means
    an operation of i precedes a conflicting operation of j. Two
    operations conflict when they touch overlapping objects, come from
    different transactions, and at least one is a write. All read
    flavours (plain, grounding, quasi) count as reads. *)

type t

(** Build the graph. Quasi-reads should already be explicit
    ({!History.expand_quasi_reads}) for entangled isolation checks. *)
val of_schedule : History.t -> t

val nodes : t -> int list
val edges : t -> (int * int) list
val has_cycle : t -> bool

(** A topological order of the committed transactions, if acyclic. *)
val topo_order : t -> int list option

(** A concrete witness cycle [t1; ...; tk] (with an edge from each
    element to the next and from [tk] back to [t1]), if any. *)
val find_cycle : t -> int list option
