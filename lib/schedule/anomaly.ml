let req_no_cycles schedule =
  not (Conflict.has_cycle (Conflict.of_schedule (History.expand_quasi_reads schedule)))

let reads_of (op : History.op) =
  match op with
  | Read (i, x) | Ground_read (i, x) | Quasi_read (i, x) -> Some (i, x)
  | Write _ | Entangle _ | Commit _ | Abort _ -> None

let req_no_read_from_aborted schedule =
  let aborted = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace aborted i ()) (History.aborted schedule);
  let committed = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace committed i ()) (History.committed schedule);
  let rec scan = function
    | [] -> true
    | History.Write (i, x) :: rest when Hashtbl.mem aborted i ->
      let bad =
        List.exists
          (fun op ->
            match reads_of op with
            | Some (j, y) ->
              j <> i && Hashtbl.mem committed j && History.overlaps x y
            | None -> false)
          rest
      in
      (not bad) && scan rest
    | _ :: rest -> scan rest
  in
  scan (History.expand_quasi_reads schedule)

let find_widowed schedule =
  let aborted = History.aborted schedule in
  let committed = History.committed schedule in
  List.find_map
    (fun (op : History.op) ->
      match op with
      | Entangle (_, participants) -> (
        let a = List.find_opt (fun i -> List.mem i aborted) participants in
        let c = List.find_opt (fun i -> List.mem i committed) participants in
        match a, c with
        | Some a, Some c -> Some (a, c)
        | _ -> None)
      | _ -> None)
    schedule

let req_no_widowed schedule = find_widowed schedule = None

let entangled_isolated schedule =
  req_no_cycles schedule
  && req_no_read_from_aborted schedule
  && req_no_widowed schedule

(* A witness RQ_i(x) ... W_j(y) ... R_i(y') (x, y, y' overlapping,
   j <> i) exists iff, after the quasi-read, some other transaction
   writes an overlapping object and i reads an overlapping object after
   the FIRST such write. Indexing writes per table and reads per
   (transaction, table) makes this near-linear — recorded benchmark
   histories reach hundreds of thousands of operations. *)
let find_unrepeatable_quasi_read schedule =
  let expanded = Array.of_list (History.expand_quasi_reads schedule) in
  let writes_by_key : (string, (int * int * History.obj) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let reads_by_txn_key : (int * string, (int * History.obj) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let push tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some l -> l := v :: !l  (* newest first; reversed below *)
    | None -> Hashtbl.add tbl key (ref [ v ])
  in
  Array.iteri
    (fun pos (op : History.op) ->
      match op with
      | Write (j, y) -> push writes_by_key (History.group_key y) (pos, j, y)
      | Read (i, y) | Ground_read (i, y) ->
        push reads_by_txn_key (i, History.group_key y) (pos, y)
      | Quasi_read _ | Entangle _ | Commit _ | Abort _ -> ())
    expanded;
  Hashtbl.iter (fun _ l -> l := List.rev !l) writes_by_key;
  Hashtbl.iter (fun _ l -> l := List.rev !l) reads_by_txn_key;
  let witness_for i x pos =
    let key = History.group_key x in
    let writes =
      Option.value ~default:(ref []) (Hashtbl.find_opt writes_by_key key)
    in
    let first_write =
      List.find_opt
        (fun (wpos, j, y) -> wpos > pos && j <> i && History.overlaps x y)
        !writes
    in
    match first_write with
    | None -> false
    | Some (wpos, _, _) ->
      let reads =
        Option.value ~default:(ref []) (Hashtbl.find_opt reads_by_txn_key (i, key))
      in
      List.exists
        (fun (rpos, y') -> rpos > wpos && History.overlaps x y')
        !reads
  in
  let result = ref None in
  Array.iteri
    (fun pos (op : History.op) ->
      match op with
      | Quasi_read (i, x) when !result = None ->
        if witness_for i x pos then result := Some (i, x)
      | _ -> ())
    expanded;
  !result

let find_dirty_read_witness schedule =
  let aborted = History.aborted schedule in
  let rec scan = function
    | [] -> None
    | History.Write (i, x) :: rest when List.mem i aborted -> (
      let found =
        List.find_map
          (fun op ->
            match reads_of op with
            | Some (j, y) when j <> i && History.overlaps x y -> Some (i, j, y)
            | _ -> None)
          rest
      in
      match found with
      | Some _ -> found
      | None -> scan rest)
    | _ :: rest -> scan rest
  in
  scan (History.expand_quasi_reads schedule)

let find_dirty_read schedule =
  Option.map (fun (i, j, _) -> (i, j)) (find_dirty_read_witness schedule)


type report = {
  conflict_cycle : bool;
  read_from_aborted : bool;
  widowed : bool;
  unrepeatable_quasi_read : bool;
}

let report schedule =
  {
    conflict_cycle = not (req_no_cycles schedule);
    read_from_aborted = not (req_no_read_from_aborted schedule);
    widowed = find_widowed schedule <> None;
    unrepeatable_quasi_read = find_unrepeatable_quasi_read schedule <> None;
  }

let level schedule =
  let r = report schedule in
  if
    (not r.conflict_cycle) && (not r.read_from_aborted) && (not r.widowed)
    && not r.unrepeatable_quasi_read
  then `Full
  else if not r.widowed then `No_widow
  else `Loose

let pp_report ppf r =
  let flag name b = if b then [ name ] else [] in
  let anomalies =
    flag "conflict-cycle" r.conflict_cycle
    @ flag "read-from-aborted" r.read_from_aborted
    @ flag "widowed" r.widowed
    @ flag "unrepeatable-quasi-read" r.unrepeatable_quasi_read
  in
  match anomalies with
  | [] -> Format.pp_print_string ppf "none"
  | xs -> Format.pp_print_string ppf (String.concat ", " xs)
