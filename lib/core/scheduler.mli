(** The run-based execution model for non-interactive entangled
    transactions (§4).

    Arriving transactions enter a dormant pool. A run takes every
    dormant transaction, executes each until it blocks on an entangled
    query (or a lock), evaluates all pending entangled queries
    together, resumes the answered ones, and repeats until nobody can
    proceed. Transactions that reach COMMIT are committed as soon as
    their whole entanglement group is ready (group commit; Figure 4:
    Mickey and Minnie commit while Donald is still blocked).
    Transactions still blocked at the end of the run are aborted and
    returned to the pool for a later run; a transaction whose timeout
    has expired fails permanently.

    Time is simulated: statement costs accrue on the transaction's
    connection ({!Ent_sim.Pool}), entangled query evaluation is a
    centralized barrier phase, and the figure benchmarks read
    {!now} after driving a workload through. *)

type trigger =
  | Every_arrivals of int
      (** start a run once this many new transactions arrived (the
          paper's run frequency [f]) *)
  | Every_seconds of float
      (** start a run when at least this much simulated time has passed
          since the previous run ended and work is waiting (§4: "the
          frequency can be explicitly given as a time interval") *)
  | Manual  (** runs start only via {!run_once} *)

type evaluation_strategy =
  | Search  (** goal-driven coordination-set search ({!Ent_entangle.Coordinate}) *)
  | Combined  (** combined-query compilation, the algorithm of [6] ({!Ent_entangle.Combined}) *)

type config = {
  isolation : Isolation.t;
  connections : int;
  costs : Ent_sim.Cost.t;
  trigger : trigger;
  snapshot_pool : bool;  (** persist dormant pool to the WAL after each run *)
  evaluation : evaluation_strategy;
  runner : Ent_par.Pool.t option;
      (** [None] (the default) is the deterministic single-domain mode,
          bit-identical to the pre-parallel scheduler. [Some pool]
          executes the step phase and the grounding phase of each run
          on the pool's domains (DESIGN.md §9): independent
          transactions take no shared lock thanks to the sharded lock
          manager, per-table storage mutexes and the gcache mutex.
          Wake-ups, group commits, coordination rounds and all
          simulated-time accounting remain on the coordinator. *)
}

val default_config : config

type outcome =
  | Committed
  | Timed_out
  | Rolled_back  (** the program executed ROLLBACK *)
  | Errored of string

type stats = {
  mutable runs : int;
  mutable commits : int;
  mutable repooled : int;  (** aborted-and-returned-to-pool occurrences *)
  mutable timeouts : int;
  mutable entangle_events : int;
  mutable deadlocks : int;
  mutable si_aborts : int;
      (** snapshot transactions aborted by first-committer-wins
          validation (at commit or mid-statement) *)
  mutable coordination_rounds : int;
  mutable coord_wall_s : float;
      (** wall-clock (monotonic, not simulated) seconds spent in the
          grounding+coordination phase; bench reports it as each
          scale-up point's [coordination_share] *)
}

type t

val create : ?config:config -> Ent_txn.Engine.t -> t

val engine : t -> Ent_txn.Engine.t
val config : t -> config

(** Install a hook called at each entanglement operation with the event
    id and, per participant, its transaction id and the tables its
    grounding read — the information a schedule recorder needs to emit
    [E] operations and quasi-reads. *)
val set_on_entangle : t -> (event:int -> (int * string list) list -> unit) option -> unit

(** Add an entanglement hook without displacing the installed one: both
    run, in installation order. *)
val add_on_entangle : t -> (event:int -> (int * string list) list -> unit) -> unit

(** [submit t program] adds a transaction to the dormant pool and
    returns its task id. May trigger a run, per the configured
    trigger. *)
val submit : t -> Program.t -> int

(** Execute one run over the current dormant pool (no-op when empty). *)
val run_once : t -> unit

(** Run until the dormant pool is empty or a run makes no progress
    (every remaining transaction failed to find a partner again).
    [max_runs] is a safety bound (default 10_000). *)
val drain : ?max_runs:int -> t -> unit

(** Final outcome of a task, if decided. *)
val outcome : t -> int -> outcome option

val results : t -> (int * outcome) list

(** The task ids currently waiting in the dormant pool. *)
val dormant : t -> int list

(** The programs currently waiting in the dormant pool (for external
    persistence, e.g. checkpoint files). *)
val dormant_programs : t -> Program.t list

(** Answer tuples a task received (empty until answered). *)
val answers_of : t -> int -> Ent_entangle.Ir.ground_atom list

(** Simulated time (seconds). *)
val now : t -> float

(** Let wall-clock time pass with no work arriving (e.g. waiting out a
    transaction timeout). *)
val advance_time : t -> float -> unit

val stats : t -> stats

(** Grounding-cache (hits, misses, invalidations) since {!create}
    ({!Ent_entangle.Gcache.stats} of the scheduler's own cache). *)
val gcache_stats : t -> int * int * int

(** Per-connection simulated load (diagnostics / benchmarks). *)
val connection_loads : t -> float array

(** Snapshot of who is blocked on whom and why: every unfinished task,
    with lock-wait edges (contested resource and holder mode) and
    entanglement-group edges from the most recent run. Meaningful both
    at quiescence (dormant tasks awaiting partners) and after a crash
    (stranded lock holders). *)
val wait_graph : t -> Waitgraph.t
