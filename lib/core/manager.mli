(** The system façade: a Youtopia-style middle tier over the storage
    engine (Figure 5). Create a manager, define and load tables, submit
    entangled transactions, drive runs, inspect outcomes — and crash
    and recover.

    {[
      let m = Manager.create () in
      Manager.define_table m "Flights"
        [ ("fno", Schema.T_int); ("fdate", Schema.T_date); ("dest", Schema.T_str) ];
      Manager.load_row m "Flights" [ Int 122; date; Str "LA" ];
      let mickey = Manager.submit_string m "BEGIN TRANSACTION; ... COMMIT;" in
      Manager.drain m;
      Manager.outcome m mickey
    ]} *)

open Ent_storage

type t

(** [create ()] builds an empty system. [wal] (default true) enables
    logging and recovery; [config] tunes scheduling (defaults:
    full isolation, 100 connections, run per arrival). *)
val create : ?wal:bool -> ?config:Scheduler.config -> unit -> t

(** Wrap an existing engine (e.g. one rebuilt by hand from a crash
    image) in a fresh manager. *)
val create_with_engine : ?config:Scheduler.config -> Ent_txn.Engine.t -> t

val engine : t -> Ent_txn.Engine.t
val scheduler : t -> Scheduler.t
val catalog : t -> Catalog.t

val define_table : t -> string -> (string * Schema.col_type) list -> unit

(** Bulk-load a row outside any transaction (bootstrap data). *)
val load_row : t -> string -> Value.t list -> unit

(** Add a hash index on the named columns. *)
val add_index : t -> string -> string list -> unit

(** Register a named integrity constraint over the database; a (group
    of) transaction(s) whose writes violate it is aborted at commit
    with [Errored]. *)
val add_constraint : t -> string -> (Catalog.t -> bool) -> unit

(** Attach an observer pair — engine events plus the scheduler's
    entanglement hook — without displacing observers already installed
    (e.g. a {!Ent_schedule.Recorder} and a certifier side by side). *)
val observe :
  t ->
  on_event:(Ent_txn.Engine.event -> unit) ->
  on_entangle:(event:int -> (int * string list) list -> unit) ->
  unit

val submit : t -> Program.t -> int
val submit_string : t -> ?label:string -> string -> int

(** Run until the pool drains or stops making progress. *)
val drain : t -> unit

val run_once : t -> unit
val outcome : t -> int -> Scheduler.outcome option
val results : t -> (int * Scheduler.outcome) list
val answers_of : t -> int -> Ent_entangle.Ir.ground_atom list
val now : t -> float

(** Let simulated wall-clock time pass (e.g. to expire timeouts). *)
val advance_time : t -> float -> unit

val stats : t -> Scheduler.stats

(** Evaluate a read-only SELECT directly against the store (no locks) —
    for tests and examples. *)
val query : t -> string -> Value.t array list

(** Build a fresh system from a list of log records (a crash image):
    replays committed work, re-submits the persisted dormant pool. *)
val recover_records : ?config:Scheduler.config -> Ent_txn.Wal.record list -> t

(** Simulate a crash and recover a fresh system from the WAL: the
    database is rebuilt from effectively-committed transactions (a torn
    final record does not survive) and the dormant pool is repopulated
    from its last snapshot.
    @raise Invalid_argument when the manager was created without WAL. *)
val crash_and_recover : t -> t

(** Take a sharp checkpoint, compact the log to it, and persist it to a
    file. Requires a quiescent system (between runs) and a WAL.
    @raise Invalid_argument without WAL or with active transactions. *)
val checkpoint_to_file : t -> string -> unit

(** Boot a fresh system from a WAL file written by
    {!checkpoint_to_file} (or any saved log): replays committed work,
    re-submits the persisted dormant pool. *)
val recover_from_file : ?config:Scheduler.config -> string -> t
