(** Wait/entanglement graph snapshot: who is blocked on whom, and why.

    Nodes are the scheduler's unfinished tasks (dormant in the pool,
    or stranded mid-run by a crash); edges are lock waits (annotated
    with the contested resource and the holder's mode) and
    entanglement-group membership. Rendered as plain text for the CLI
    and as DOT for graphviz. Built by {!Scheduler.wait_graph}. *)

type node = {
  n_task : int;
  n_txn : int;  (** engine txn id, [-1] when no attempt is active *)
  n_label : string;  (** program label *)
  n_state : string;  (** "in-pool", "waiting-lock", ... *)
  n_detail : string;  (** e.g. contested resources, or "" *)
}

type edge = {
  e_src : int;  (** waiting/entangled task *)
  e_dst : int;
  e_why : string;  (** e.g. ["lock table Flights (holds X)"] or ["entangled"] *)
}

type t = {
  g_now : float;  (** simulated seconds at capture *)
  nodes : node list;  (** ascending task id *)
  edges : edge list;
}

val render_text : t -> string
val render_dot : t -> string
