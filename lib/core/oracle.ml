open Ent_entangle

type t = { answer : Ir.t -> Ir.ground_atom list option }

let of_fn answer = { answer }

let scripted script =
  let remaining = ref script in
  of_fn (fun _query ->
      match !remaining with
      | [] -> failwith "Oracle.scripted: script exhausted"
      | ans :: rest ->
        remaining := rest;
        ans)

type solo_outcome =
  | Solo_committed
  | Solo_rolled_back
  | Solo_error of string

type solo_result = {
  outcome : solo_outcome;
  valid : bool;
  answers_given : Ir.ground_atom list list;
}

let run_solo engine (program : Program.t) oracle =
  let costs = Ent_sim.Cost.default in
  let isolation = Isolation.full in
  let task = Executor.make_task ~task_id:0 ~arrival:0.0 program in
  Executor.start engine costs task;
  let valid = ref true in
  let answers_given = ref [] in
  let rec loop () =
    match task.status with
    | Executor.Runnable ->
      Executor.step engine isolation costs task;
      loop ()
    | Executor.Waiting_entangled -> (
      match task.pending with
      | None -> { outcome = Solo_error "pending query missing"; valid = !valid; answers_given = List.rev !answers_given }
      | Some query -> (
        (* Validity check (Def 3.3): the answer must correspond to a
           grounding of the query on the current database. *)
        let access = Ent_txn.Engine.access engine task.txn ~grounding:true () in
        let groundings = Ground.compute ~access ~env:task.env query in
        match oracle.answer query with
        | Some atoms ->
          let matching =
            List.find_opt
              (fun (g : Ground.grounding) ->
                List.for_all (fun a -> List.mem a g.g_head) atoms
                && List.for_all (fun h -> List.mem h atoms) g.g_head)
              groundings
          in
          (match matching with
          | Some g ->
            answers_given := atoms :: !answers_given;
            Executor.deliver engine costs task (Coordinate.Answered g)
          | None ->
            (* invalid answer: deliver it anyway (the oracle is not
               constrained to be valid, §C.3.1), flag the execution *)
            valid := false;
            answers_given := atoms :: !answers_given;
            Executor.deliver engine costs task
              (Coordinate.Answered { g_head = atoms; g_post = [] }));
          loop ()
        | None ->
          answers_given := [] :: !answers_given;
          Executor.deliver engine costs task Coordinate.Empty;
          loop ()))
    | Executor.Waiting_lock ->
      { outcome = Solo_error "solo transaction blocked on a lock";
        valid = !valid;
        answers_given = List.rev !answers_given }
    | Executor.Ready -> (
      match Ent_txn.Engine.violated_constraint engine with
      | Some name ->
        Ent_txn.Engine.abort engine task.txn;
        { outcome = Solo_error ("constraint violated: " ^ name);
          valid = !valid;
          answers_given = List.rev !answers_given }
      | None ->
        Ent_txn.Engine.commit engine task.txn;
        { outcome = Solo_committed; valid = !valid; answers_given = List.rev !answers_given })
    | Executor.Failed Executor.Explicit_rollback ->
      { outcome = Solo_rolled_back; valid = !valid; answers_given = List.rev !answers_given }
    | Executor.Failed (Executor.Program_error msg) ->
      { outcome = Solo_error msg; valid = !valid; answers_given = List.rev !answers_given }
    | Executor.Failed Executor.Deadlock ->
      { outcome = Solo_error "deadlock in solo execution";
        valid = !valid;
        answers_given = List.rev !answers_given }
    | Executor.Failed (Executor.Si_conflict _) ->
      { outcome = Solo_error "snapshot conflict in solo execution";
        valid = !valid;
        answers_given = List.rev !answers_given }
  in
  loop ()
