type t = {
  label : string;
  ast : Ent_sql.Ast.program;
  transactional : bool;
}

let make ?(label = "txn") ?(transactional = true) ast = { label; ast; transactional }

let of_string ?(label = "txn") ?(transactional = true) input =
  { label; ast = Ent_sql.Parser.parse_program input; transactional }

let to_string t =
  Format.asprintf "-- label: %s@\n-- transactional: %b@\n%a" t.label
    t.transactional Ent_sql.Pretty.pp_program t.ast

let header_value line prefix =
  if String.length line > String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
  else None

let of_serialized input =
  let lines = String.split_on_char '\n' input in
  let label =
    List.find_map (fun l -> header_value l "-- label: ") lines
    |> Option.value ~default:"txn"
  in
  let transactional =
    match List.find_map (fun l -> header_value l "-- transactional: ") lines with
    | Some "false" -> false
    | Some _ | None -> true
  in
  { label; ast = Ent_sql.Parser.parse_program input; transactional }

let entangled_count t =
  List.length
    (List.filter
       (fun (s : Ent_sql.Ast.stmt) ->
         match s with
         | Entangled _ -> true
         | _ -> false)
       (Ent_sql.Ast.statements t.ast))
