type t = {
  label : string;
  ast : Ent_sql.Ast.program;
  transactional : bool;
  isolation : Ent_txn.Engine.level;
}

let make ?(label = "txn") ?(transactional = true)
    ?(isolation = Ent_txn.Engine.Serializable_2pl) ast =
  { label; ast; transactional; isolation }

let of_string ?(label = "txn") ?(transactional = true)
    ?(isolation = Ent_txn.Engine.Serializable_2pl) input =
  { label; ast = Ent_sql.Parser.parse_program input; transactional; isolation }

let to_string t =
  (* The isolation header appears only for non-default levels, keeping
     serialized 2PL programs byte-identical to the pre-MVCC format. *)
  match t.isolation with
  | Ent_txn.Engine.Serializable_2pl ->
    Format.asprintf "-- label: %s@\n-- transactional: %b@\n%a" t.label
      t.transactional Ent_sql.Pretty.pp_program t.ast
  | Ent_txn.Engine.Snapshot ->
    Format.asprintf "-- label: %s@\n-- transactional: %b@\n-- isolation: %s@\n%a"
      t.label t.transactional
      (Ent_txn.Engine.level_to_string t.isolation)
      Ent_sql.Pretty.pp_program t.ast

let header_value line prefix =
  if String.length line > String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
  else None

let of_serialized input =
  let lines = String.split_on_char '\n' input in
  let label =
    List.find_map (fun l -> header_value l "-- label: ") lines
    |> Option.value ~default:"txn"
  in
  let transactional =
    match List.find_map (fun l -> header_value l "-- transactional: ") lines with
    | Some "false" -> false
    | Some _ | None -> true
  in
  let isolation =
    match List.find_map (fun l -> header_value l "-- isolation: ") lines with
    | Some s ->
      Option.value ~default:Ent_txn.Engine.Serializable_2pl
        (Ent_txn.Engine.level_of_string s)
    | None -> Ent_txn.Engine.Serializable_2pl
  in
  { label; ast = Ent_sql.Parser.parse_program input; transactional; isolation }

let entangled_count t =
  List.length
    (List.filter
       (fun (s : Ent_sql.Ast.stmt) ->
         match s with
         | Entangled _ -> true
         | _ -> false)
       (Ent_sql.Ast.statements t.ast))
