type node = {
  n_task : int;
  n_txn : int;
  n_label : string;
  n_state : string;
  n_detail : string;
}

type edge = { e_src : int; e_dst : int; e_why : string }

type t = { g_now : float; nodes : node list; edges : edge list }

let render_text g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "wait graph @ sim %.6fs: %d waiting task(s), %d edge(s)\n"
       g.g_now (List.length g.nodes) (List.length g.edges));
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  task %d [txn %d] %s: %s%s\n" n.n_task n.n_txn
           n.n_label n.n_state
           (if n.n_detail = "" then "" else " — " ^ n.n_detail)))
    g.nodes;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  task %d -> task %d [%s]\n" e.e_src e.e_dst e.e_why))
    g.edges;
  Buffer.contents buf

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let render_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph waits {\n  rankdir=LR;\n  node [shape=box];\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=\"wait graph @ sim %.6fs\";\n" g.g_now);
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"task %d (txn %d)\\n%s\\n%s%s\"];\n"
           n.n_task n.n_task n.n_txn (dot_escape n.n_label)
           (dot_escape n.n_state)
           (if n.n_detail = "" then "" else "\\n" ^ dot_escape n.n_detail)))
    g.nodes;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d -> t%d [label=\"%s\"%s];\n" e.e_src e.e_dst
           (dot_escape e.e_why)
           (if e.e_why = "entangled" then " style=dashed dir=none" else "")))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
