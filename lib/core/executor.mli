(** Statement-level execution of one entangled transaction.

    A {!task} is the scheduler's unit of bookkeeping: a program plus
    its execution state. Tasks survive aborts — a task returned to the
    dormant pool restarts from its first statement under a fresh
    transaction id (the paper's execution model restarts blocked
    transactions in a later run). *)

open Ent_entangle

type failure =
  | Deadlock  (** chosen as deadlock victim; retryable *)
  | Si_conflict of string * int
      (** snapshot transaction lost first-committer-wins validation on
          (table, row) — [("", -1)] when the conflict surfaced
          mid-statement; retryable on a fresh snapshot *)
  | Explicit_rollback  (** the program executed ROLLBACK; final *)
  | Program_error of string  (** unsafe query, type error...; final *)

type status =
  | Runnable
  | Waiting_entangled  (** blocked at an entangled query, needs partners *)
  | Waiting_lock
  | Ready  (** all statements done, waiting to (group-)commit *)
  | Failed of failure  (** engine transaction already aborted *)

type task = {
  task_id : int;
  program : Program.t;
  arrival : float;
  deadline : float option;
  mutable txn : int;  (** current engine transaction id; -1 when none *)
  mutable pc : int;
  mutable env : Ent_sql.Eval.env;
  mutable status : status;
  mutable pending : Ir.t option;  (** translated query when [Waiting_entangled] *)
  mutable attempts : int;  (** how many runs have started this task *)
  mutable work : float;  (** simulated seconds accumulated since last drained *)
  mutable conn : int;  (** connection index, -1 when unassigned *)
  mutable answers : Ir.ground_atom list;  (** answer tuples received, newest first *)
  mutable entangled_since : float option;
      (** simulated time the task reached [Waiting_entangled], for the
          core.entangle.blocked_s metric; cleared on answer/reset *)
}

val make_task :
  task_id:int -> arrival:float -> Program.t -> task

(** [start engine costs task] begins a fresh engine transaction for the
    task and marks it runnable. *)
val start : Ent_txn.Engine.t -> Ent_sim.Cost.t -> task -> unit

(** [step engine isolation costs task] executes statements until the
    task blocks (lock or entangled query), finishes ([Ready]), or
    fails. Simulated cost is accumulated into [task.work]. *)
val step :
  Ent_txn.Engine.t -> Isolation.t -> Ent_sim.Cost.t -> task -> unit

(** Deliver the result of entangled-query evaluation.
    [Answered g] binds the [AS @var] positions from the task's own
    answer tuple and resumes; [Empty] resumes with [Null] bindings;
    [No_partner] leaves the task waiting. *)
val deliver :
  Ent_txn.Engine.t -> Ent_sim.Cost.t -> task -> Coordinate.outcome -> unit

(** Reset a task for re-execution in a later run (after its engine
    transaction was aborted). *)
val reset_for_retry : task -> unit

(** True for failures that end the task rather than retrying it. *)
val failure_is_final : failure -> bool

val pp_status : Format.formatter -> status -> unit
