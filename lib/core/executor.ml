open Ent_storage
open Ent_entangle
module Event = Ent_obs.Event

type failure =
  | Deadlock
  | Si_conflict of string * int
  | Explicit_rollback
  | Program_error of string

type status =
  | Runnable
  | Waiting_entangled
  | Waiting_lock
  | Ready
  | Failed of failure

type task = {
  task_id : int;
  program : Program.t;
  arrival : float;
  deadline : float option;
  mutable txn : int;
  mutable pc : int;
  mutable env : Ent_sql.Eval.env;
  mutable status : status;
  mutable pending : Ir.t option;
  mutable attempts : int;
  mutable work : float;
  mutable conn : int;
  mutable answers : Ir.ground_atom list;
  mutable entangled_since : float option;
}

let make_task ~task_id ~arrival (program : Program.t) =
  {
    task_id;
    program;
    arrival;
    deadline = Option.map (fun s -> arrival +. s) program.ast.timeout;
    txn = -1;
    pc = 0;
    env = Ent_sql.Eval.fresh_env ();
    status = Runnable;
    pending = None;
    attempts = 0;
    work = 0.0;
    conn = -1;
    answers = [];
    entangled_since = None;
  }

let start engine (costs : Ent_sim.Cost.t) task =
  task.txn <-
    Ent_txn.Engine.begin_txn ~isolation:task.program.isolation engine;
  (* The engine allocates the txn id, so the txn→task registration (and
     hence the Begin event, which needs both ids) must happen here, the
     first place both are known. *)
  if Event.logging () then begin
    Event.register_txn ~txn:task.txn ~task:task.task_id;
    Event.emit ~txn:task.txn ~task:task.task_id Event.Begin
  end;
  task.status <- Runnable;
  task.attempts <- task.attempts + 1;
  task.work <- task.work +. costs.c_begin;
  (* explicit BEGIN TRANSACTION is one more client round trip *)
  if task.program.transactional then task.work <- task.work +. costs.c_stmt

(* Wrap an access so row traffic is charged to the task. Reads are
   lazy sequences, so the charge lands per row actually consumed: a
   LIMIT that stops pulling stops paying. *)
let counting_access (costs : Ent_sim.Cost.t) task (access : Ent_sql.Eval.access) :
    Ent_sql.Eval.access =
  let charge_rows rows =
    Seq.map
      (fun pair ->
        task.work <- task.work +. costs.c_row;
        pair)
      rows
  in
  {
    access with
    scan = (fun name -> charge_rows (access.scan name));
    lookup = (fun name ~positions key -> charge_rows (access.lookup name ~positions key));
    range =
      (fun name ~position ~lo ~hi ->
        charge_rows (access.range name ~position ~lo ~hi));
    insert =
      (fun name row ->
        task.work <- task.work +. costs.c_write;
        access.insert name row);
    update =
      (fun name id row ->
        task.work <- task.work +. costs.c_write;
        access.update name id row);
    delete =
      (fun name id ->
        task.work <- task.work +. costs.c_write;
        access.delete name id);
  }

let statements task = Ent_sql.Ast.statements task.program.ast

(* -Q workloads: every statement is its own transaction. The commit
   costs a log flush only when the statement actually wrote (MySQL
   autocommit does not force the log for reads). *)
let autocommit_boundary engine (costs : Ent_sim.Cost.t) task =
  if not task.program.transactional then begin
    let wrote = Ent_txn.Engine.savepoint engine task.txn > 0 in
    Ent_txn.Engine.commit engine task.txn;
    if wrote then task.work <- task.work +. costs.c_commit;
    task.txn <-
      Ent_txn.Engine.begin_txn ~isolation:task.program.isolation engine;
    if Event.logging () then begin
      Event.register_txn ~txn:task.txn ~task:task.task_id;
      Event.emit ~txn:task.txn ~task:task.task_id Event.Begin
    end
  end

let rec step engine (isolation : Isolation.t) (costs : Ent_sim.Cost.t) task =
  let body = statements task in
  if task.pc >= List.length body then begin
    task.status <- Ready;
    Event.emit ~txn:task.txn ~task:task.task_id Event.Ready
  end
  else
    let stmt = List.nth body task.pc in
    match stmt with
    | Ent_sql.Ast.Entangled e -> (
      try
        task.pending <- Some (Translate.of_ast ~env:task.env e);
        task.work <- task.work +. costs.c_stmt;
        task.status <- Waiting_entangled;
        Event.emit ~txn:task.txn ~task:task.task_id Event.Entangle_block
      with
      | Translate.Translate_error msg | Ir.Unsafe msg ->
        Ent_txn.Engine.abort engine task.txn;
        task.work <- task.work +. costs.c_abort;
        task.status <- Failed (Program_error msg))
    | Ent_sql.Ast.Rollback ->
      Ent_txn.Engine.abort engine task.txn;
      task.work <- task.work +. costs.c_abort;
      task.status <- Failed Explicit_rollback
    | stmt -> (
      let sp = Ent_txn.Engine.savepoint engine task.txn in
      let access =
        counting_access costs task
          (Ent_txn.Engine.access engine task.txn ~grounding:false
             ~lock_reads:isolation.lock_classical_reads ())
      in
      task.work <- task.work +. costs.c_stmt;
      match Ent_sql.Eval.exec_stmt access task.env stmt with
      | _ ->
        task.pc <- task.pc + 1;
        autocommit_boundary engine costs task;
        step engine isolation costs task
      | exception Ent_txn.Engine.Blocked _ ->
        Ent_txn.Engine.rollback_to engine task.txn sp;
        task.status <- Waiting_lock
      | exception Ent_txn.Engine.Deadlock_victim _ ->
        Ent_txn.Engine.abort engine task.txn;
        task.work <- task.work +. costs.c_abort;
        task.status <- Failed Deadlock
      | exception Ent_txn.Engine.Si_conflict _ ->
        (* snapshot write lost first-committer-wins mid-statement;
           abort and retry on a fresh snapshot (row id unknown here) *)
        Ent_txn.Engine.abort engine task.txn;
        task.work <- task.work +. costs.c_abort;
        task.status <- Failed (Si_conflict ("", -1))
      | exception Ent_sql.Eval.Eval_error msg ->
        Ent_txn.Engine.abort engine task.txn;
        task.work <- task.work +. costs.c_abort;
        task.status <- Failed (Program_error msg))

let bind_answer task (query : Ir.t) (values : Value.t list option) =
  List.iter
    (fun (var, pos) ->
      let value =
        match values with
        | Some vs when pos < List.length vs -> List.nth vs pos
        | _ -> Value.Null
      in
      Hashtbl.replace task.env var value)
    query.binds

let deliver engine (costs : Ent_sim.Cost.t) task outcome =
  match task.pending, outcome with
  | None, _ -> invalid_arg "Executor.deliver: task has no pending query"
  | Some query, Coordinate.Answered g ->
    (* The first head atom is the query's own contribution; its values
       feed the AS @var bindings (Figure 2's @ArrivalDay). *)
    let own =
      match g.g_head with
      | (_, values) :: _ -> Some values
      | [] -> None
    in
    bind_answer task query own;
    task.answers <- g.g_head @ task.answers;
    task.pending <- None;
    task.pc <- task.pc + 1;
    task.work <- task.work +. costs.c_entangle_answer;
    autocommit_boundary engine costs task;
    task.status <- Runnable
  | Some query, Coordinate.Empty ->
    (* Appendix B: evaluation included the query but produced no
       answer; this is success with an empty result, the transaction
       proceeds. *)
    bind_answer task query None;
    task.pending <- None;
    task.pc <- task.pc + 1;
    autocommit_boundary engine costs task;
    task.status <- Runnable
  | Some _, Coordinate.No_partner -> ()

let reset_for_retry task =
  task.txn <- -1;
  task.status <- Runnable;
  task.pending <- None;
  task.entangled_since <- None;
  (* -T programs were rolled back entirely and restart from the top.
     -Q programs committed statement by statement: that progress is
     durable, so a retry resumes at the statement that blocked. *)
  if task.program.transactional then begin
    task.pc <- 0;
    task.env <- Ent_sql.Eval.fresh_env ();
    task.answers <- []
  end

let failure_is_final = function
  | Deadlock | Si_conflict _ -> false
  | Explicit_rollback | Program_error _ -> true

let pp_status ppf status =
  let s =
    match status with
    | Runnable -> "runnable"
    | Waiting_entangled -> "waiting-entangled"
    | Waiting_lock -> "waiting-lock"
    | Ready -> "ready"
    | Failed Deadlock -> "failed(deadlock)"
    | Failed (Si_conflict (table, row)) ->
      if table = "" then "failed(si-conflict)"
      else Printf.sprintf "failed(si-conflict %s/%d)" table row
    | Failed Explicit_rollback -> "failed(rollback)"
    | Failed (Program_error msg) -> "failed(" ^ msg ^ ")"
  in
  Format.pp_print_string ppf s
