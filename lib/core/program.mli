(** Entangled transaction programs: a labelled {!Ent_sql.Ast.program}
    that can be serialized (for dormant-pool persistence) and parsed
    back. *)

type t = {
  label : string;
  ast : Ent_sql.Ast.program;
  transactional : bool;
      (** [false] models the paper's -Q workloads: the same code
          without a transaction block, i.e. every statement commits by
          itself (MySQL autocommit). Entangled queries still
          coordinate, but atomicity, group commit and held locks only
          span one statement. *)
  isolation : Ent_txn.Engine.level;
      (** Isolation level the program's transactions run at
          ([Serializable_2pl] by default). [Snapshot] programs read a
          begin-stamp snapshot without read locks and validate their
          write set at commit. *)
}

val make :
  ?label:string ->
  ?transactional:bool ->
  ?isolation:Ent_txn.Engine.level ->
  Ent_sql.Ast.program ->
  t

(** Parse a [BEGIN TRANSACTION ... COMMIT] block. *)
val of_string :
  ?label:string ->
  ?transactional:bool ->
  ?isolation:Ent_txn.Engine.level ->
  string ->
  t

(** Serialize to re-parseable SQL. The label (and, for non-default
    levels, the isolation) is carried in leading comments. *)
val to_string : t -> string

(** Inverse of {!to_string} (label recovered from the comment). *)
val of_serialized : string -> t

(** Number of entangled queries in the program. *)
val entangled_count : t -> int
